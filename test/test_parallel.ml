(* Differential tests for the domain-parallel worker pool: for a fixed
   modelled partition, running the worker slices on real OCaml domains
   must produce bit-identical global memory and identical merged
   statistics to the serial reference — across the registry, on
   barrier-heavy multi-CTA kernels, and under fault injection.  Also
   covers the monotonic compile clock. *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module EM = Vekt_runtime.Exec_manager
module WP = Vekt_runtime.Worker_pool
module Clock = Vekt_runtime.Clock
module Fault = Vekt_runtime.Fault
module Stats = Vekt_runtime.Stats
module Interp = Vekt_vm.Interp
open Vekt_ptx
open Vekt_workloads

(* A dozen registry workloads covering every category; enough for the
   differential acceptance criterion (>= 12). *)
let some_workloads = List.filteri (fun i _ -> i < 12) Registry.all

(* ---- helpers ---- *)

(* Run one workload through the worker pool with an explicit modelled
   partition [workers] and physical [domains] (forcing domains > 1 even
   on single-core test hosts, where the default would clamp to 1). *)
let run_pool ?(config = Api.default_config) (w : Workload.t) ~workers ~domains
    =
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let cache = Api.kernel_cache m ~kernel:w.Workload.kernel in
  let k =
    match Ast.find_kernel m.Api.ast w.Workload.kernel with
    | Some k -> k
    | None -> Alcotest.failf "%s: kernel missing" w.Workload.name
  in
  let params = Launch.param_block k inst.Workload.args in
  let stats =
    WP.launch ~workers ~domains ?inject:m.Api.fault cache
      ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~global:dev.Api.global ~params ~consts:m.Api.consts
  in
  (dev, m, inst, stats)

let hist_list h =
  Hashtbl.fold (fun ws c acc -> (ws, c) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Integer statistics must be exactly partition-independent; float cycle
   totals agree up to summation order; wall cycles (max over workers)
   legitimately shrink with more workers. *)
let check_stats_match what ~(serial : Stats.t) ~(par : Stats.t) =
  let ci name a b = Alcotest.(check int) (what ^ ": " ^ name) a b in
  let sc = serial.Stats.counters and pc = par.Stats.counters in
  ci "dyn_instrs" sc.Interp.dyn_instrs pc.Interp.dyn_instrs;
  ci "blocks_executed" sc.Interp.blocks_executed pc.Interp.blocks_executed;
  ci "kernel_calls" sc.Interp.kernel_calls pc.Interp.kernel_calls;
  ci "restores" sc.Interp.restores pc.Interp.restores;
  ci "spills" sc.Interp.spills pc.Interp.spills;
  ci "flops" sc.Interp.flops pc.Interp.flops;
  ci "barrier_releases" serial.Stats.barrier_releases par.Stats.barrier_releases;
  ci "threads_launched" serial.Stats.threads_launched par.Stats.threads_launched;
  Alcotest.(check (list (pair int int)))
    (what ^ ": warp histogram")
    (hist_list serial.Stats.warp_hist)
    (hist_list par.Stats.warp_hist);
  let cf name a b =
    let tol = 1e-6 *. Float.max 1.0 (Float.abs a) in
    if Float.abs (a -. b) > tol then
      Alcotest.failf "%s: %s drifted: serial %f vs parallel %f" what name a b
  in
  cf "em_cycles" serial.Stats.em_cycles par.Stats.em_cycles;
  cf "cycles_body" sc.Interp.cycles_body pc.Interp.cycles_body;
  cf "cycles_scheduler" sc.Interp.cycles_scheduler pc.Interp.cycles_scheduler;
  cf "cycles_entry" sc.Interp.cycles_entry pc.Interp.cycles_entry;
  cf "cycles_exit" sc.Interp.cycles_exit pc.Interp.cycles_exit

(* ---- registry differential: domains {2,4} vs the serial reference ---- *)

(* For each workload and each worker count, the same partition is run
   once serially (domains=1: the loop the seed repo always used) and
   once on real domains; memory and merged stats must match.  Then
   across worker counts, memory and integer totals must still match the
   1-worker run, while wall cycles may only improve. *)
let test_registry_differential (w : Workload.t) () =
  let dev1, _, inst1, stats1 = run_pool w ~workers:1 ~domains:1 in
  (match inst1.Workload.check dev1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s workers=1: %s" w.Workload.name e);
  List.iter
    (fun workers ->
      let _, _, _, serial = run_pool w ~workers ~domains:1 in
      let devp, _, instp, par = run_pool w ~workers ~domains:workers in
      (match instp.Workload.check devp with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s workers=%d (parallel): %s" w.Workload.name workers
            e);
      Alcotest.(check bool)
        (Fmt.str "%s workers=%d: memory bit-identical to workers=1"
           w.Workload.name workers)
        true
        (Mem.equal dev1.Api.global devp.Api.global);
      check_stats_match
        (Fmt.str "%s workers=%d domains=%d vs serial slices" w.Workload.name
           workers workers)
        ~serial ~par;
      (* integer totals are partition-independent *)
      Alcotest.(check int)
        (Fmt.str "%s workers=%d: dyn_instrs matches workers=1" w.Workload.name
           workers)
        stats1.Stats.counters.Interp.dyn_instrs
        par.Stats.counters.Interp.dyn_instrs;
      Alcotest.(check int)
        (Fmt.str "%s workers=%d: threads matches workers=1" w.Workload.name
           workers)
        stats1.Stats.threads_launched par.Stats.threads_launched;
      if par.Stats.wall_cycles > stats1.Stats.wall_cycles *. (1. +. 1e-9) then
        Alcotest.failf
          "%s workers=%d: wall cycles grew over serial (%f > %f)"
          w.Workload.name workers par.Stats.wall_cycles
          stats1.Stats.wall_cycles)
    [ 2; 4 ]

let registry_cases =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case w.Workload.name `Quick (test_registry_differential w))
    some_workloads

(* ---- barrier-heavy multi-CTA kernels ---- *)

(* Multi-CTA ringsum: each CTA doubles its slice into tmp, crosses a
   barrier, then sums each element with its ring neighbour within the
   CTA.  Barrier disposition and the divergent wrap branch, spread over
   several CTAs per worker. *)
let ringsum_src =
  {|
.entry ringsum (.param .u64 x, .param .u64 tmp, .param .u64 out, .param .u32 nt)
{
  .reg .u32 %t, %b, %nt, %g, %j, %jg;
  .reg .u64 %px, %pt, %po, %off, %offj;
  .reg .f32 %v, %w;
  .reg .pred %p;

  mov.u32 %t, %tid.x;
  mov.u32 %b, %ctaid.x;
  ld.param.u32 %nt, [nt];
  mad.lo.u32 %g, %b, %nt, %t;

  cvt.u64.u32 %off, %g;
  shl.b64 %off, %off, 2;
  ld.param.u64 %px, [x];
  add.u64 %px, %px, %off;
  ld.global.f32 %v, [%px];
  add.f32 %v, %v, %v;
  ld.param.u64 %pt, [tmp];
  add.u64 %pt, %pt, %off;
  st.global.f32 [%pt], %v;

  bar.sync 0;

  add.u32 %j, %t, 1;
  setp.lt.u32 %p, %j, %nt;
  @%p bra HAVEJ;
  mov.u32 %j, 0;
HAVEJ:
  mad.lo.u32 %jg, %b, %nt, %j;
  cvt.u64.u32 %offj, %jg;
  shl.b64 %offj, %offj, 2;
  ld.param.u64 %pt, [tmp];
  add.u64 %pt, %pt, %offj;
  ld.global.f32 %w, [%pt];
  ld.param.u64 %pt, [tmp];
  add.u64 %pt, %pt, %off;
  ld.global.f32 %v, [%pt];
  add.f32 %v, %v, %w;
  ld.param.u64 %po, [out];
  add.u64 %po, %po, %off;
  st.global.f32 [%po], %v;
  exit;
}
|}

(* Divergent odd/even kernel from examples/ (already multi-CTA). *)
let oddeven_src =
  {|
.entry oddeven (.param .u64 x, .param .u64 out, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %i, %n, %b, %v;
  .reg .u64 %px, %po, %off;
  .reg .pred %p;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %i, %r2, %r3, %r1;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;

  cvt.u64.u32 %off, %i;
  shl.b64 %off, %off, 2;
  ld.param.u64 %px, [x];
  add.u64 %px, %px, %off;
  ld.global.u32 %v, [%px];

  and.b32 %b, %i, 1;
  setp.eq.u32 %p, %b, 0;
  @%p bra EVEN;
  add.u32 %v, %v, 1;
  bra STORE;
EVEN:
  add.u32 %v, %v, %v;
STORE:
  ld.param.u64 %po, [out];
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %v;
DONE:
  exit;
}
|}

let run_raw ~src ~kernel ~grid ~block ~setup ~workers ~domains =
  let dev = Api.create_device () in
  let m = Api.load_module dev src in
  let args = setup dev in
  let cache = Api.kernel_cache m ~kernel in
  let k = Option.get (Ast.find_kernel m.Api.ast kernel) in
  let params = Launch.param_block k args in
  let stats =
    WP.launch ~workers ~domains cache ~grid:(Launch.dim3 grid)
      ~block:(Launch.dim3 block) ~global:dev.Api.global ~params
      ~consts:m.Api.consts
  in
  (dev, stats)

let test_ringsum_parallel () =
  let ncta = 4 and block = 8 in
  let n = ncta * block in
  let xs = List.init n (fun i -> float_of_int ((i mod 7) + 1)) in
  let setup dev =
    let px = Api.malloc dev (4 * n) in
    Api.write_f32s dev px xs;
    let pt = Api.malloc dev (4 * n) and po = Api.malloc dev (4 * n) in
    [ Launch.Ptr px; Launch.Ptr pt; Launch.Ptr po; Launch.I32 block ]
  in
  let dev1, stats1 =
    run_raw ~src:ringsum_src ~kernel:"ringsum" ~grid:ncta ~block ~setup
      ~workers:1 ~domains:1
  in
  (* out buffer starts at the second malloc'd slot: 64 + n*4 aligned *)
  let out dev =
    let base = 64 + (2 * ((4 * n + 15) / 16 * 16)) in
    Api.read_f32s dev base n
  in
  let expected =
    List.init n (fun g ->
        let cta = g / block and t = g mod block in
        let j = if t + 1 < block then t + 1 else 0 in
        let x i = List.nth xs i in
        (2. *. x g) +. (2. *. x ((cta * block) + j)))
  in
  List.iteri
    (fun i (got, want) ->
      if Float.abs (got -. want) > 1e-6 then
        Alcotest.failf "ringsum serial out[%d]: got %f want %f" i got want)
    (List.combine (out dev1) expected);
  List.iter
    (fun workers ->
      let devp, par =
        run_raw ~src:ringsum_src ~kernel:"ringsum" ~grid:ncta ~block ~setup
          ~workers ~domains:workers
      in
      Alcotest.(check bool)
        (Fmt.str "ringsum workers=%d bit-identical" workers)
        true
        (Mem.equal dev1.Api.global devp.Api.global);
      Alcotest.(check int)
        (Fmt.str "ringsum workers=%d barrier releases" workers)
        stats1.Stats.barrier_releases par.Stats.barrier_releases)
    [ 2; 4 ]

let test_oddeven_parallel () =
  let ncta = 8 and block = 8 in
  let n = ncta * block in
  let xs = List.init n (fun i -> (10 * i) + 3) in
  let setup dev =
    let px = Api.malloc dev (4 * n) in
    Api.write_i32s dev px xs;
    let po = Api.malloc dev (4 * n) in
    [ Launch.Ptr px; Launch.Ptr po; Launch.I32 n ]
  in
  let dev1, stats1 =
    run_raw ~src:oddeven_src ~kernel:"oddeven" ~grid:ncta ~block ~setup
      ~workers:1 ~domains:1
  in
  let out dev =
    let base = 64 + ((4 * n + 15) / 16 * 16) in
    Api.read_i32s dev base n
  in
  let expected =
    List.map (fun i -> if i mod 2 = 0 then 2 * List.nth xs i else List.nth xs i + 1)
      (List.init n (fun i -> i))
  in
  Alcotest.(check (list int)) "oddeven serial results" expected (out dev1);
  List.iter
    (fun workers ->
      let devp, par =
        run_raw ~src:oddeven_src ~kernel:"oddeven" ~grid:ncta ~block ~setup
          ~workers ~domains:workers
      in
      Alcotest.(check bool)
        (Fmt.str "oddeven workers=%d bit-identical" workers)
        true
        (Mem.equal dev1.Api.global devp.Api.global);
      Alcotest.(check int)
        (Fmt.str "oddeven workers=%d dyn_instrs" workers)
        stats1.Stats.counters.Interp.dyn_instrs
        par.Stats.counters.Interp.dyn_instrs)
    [ 2; 4 ]

(* ---- fault-injection differential ---- *)

(* Every 4-wide build fails (p = 1.0, deterministic under the cache
   lock), so every run — serial or parallel — degrades to the 2-wide
   specialization and quarantines width 4.  Memory must still be
   bit-identical across worker counts. *)
let test_fault_differential () =
  let inject =
    Some
      {
        Fault.seed = Fault.default_seed;
        specs = [ Fault.Compile_fail { ws = Some 4; tier = None; kernel = None; p = 1.0 } ];
      }
  in
  let config = { Api.default_config with inject; widths = [ 4; 2; 1 ] } in
  List.iter
    (fun (w : Workload.t) ->
      let dev1, _, inst1, _ = run_pool ~config w ~workers:1 ~domains:1 in
      (match inst1.Workload.check dev1 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s (fault, serial): %s" w.Workload.name e);
      List.iter
        (fun workers ->
          let devp, m, instp, par = run_pool ~config w ~workers ~domains:workers in
          (match instp.Workload.check devp with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s (fault, workers=%d): %s" w.Workload.name
                workers e);
          Alcotest.(check bool)
            (Fmt.str "%s fault workers=%d bit-identical" w.Workload.name workers)
            true
            (Mem.equal dev1.Api.global devp.Api.global);
          (* no warp ever ran 4-wide *)
          Alcotest.(check int)
            (Fmt.str "%s fault workers=%d: no 4-wide warps" w.Workload.name
               workers)
            0
            (Option.value
               (Hashtbl.find_opt par.Stats.warp_hist 4)
               ~default:0);
          ignore m)
        [ 2; 4 ])
    (List.filteri (fun i _ -> i < 4) some_workloads)

(* ---- monotonic compile clock ---- *)

let test_clock_monotonic () =
  let t0 = Clock.now_us () in
  let prev = ref t0 in
  for _ = 1 to 1000 do
    let t = Clock.now_us () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done;
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_us t0 >= 0.0)

let test_compile_us_non_negative () =
  let w = List.hd Registry.all in
  let _, m, _, _ = run_pool w ~workers:4 ~domains:2 in
  let cache = Api.kernel_cache m ~kernel:w.Workload.kernel in
  if cache.TC.compile_wall_us < 0.0 then
    Alcotest.failf "compile_wall_us negative: %f" cache.TC.compile_wall_us;
  Hashtbl.iter
    (fun (ws, _) (e : TC.entry) ->
      if e.TC.compile_us < 0.0 then
        Alcotest.failf "w%d compile_us negative: %f" ws e.TC.compile_us)
    cache.TC.specializations

(* ---- event-trace determinism across domains ---- *)

(* For one partition, the per-worker event buffers replayed in worker
   order must reproduce the serial emission: same number of warp
   formations and yields (cache events can migrate between workers —
   whichever domain wins the compile race emits them). *)
let test_event_replay_counts () =
  let w = List.hd Registry.all in
  let count ~domains =
    let formed = ref 0 and yields = ref 0 in
    let sink =
      Vekt_obs.Sink.fn (function
        | Vekt_obs.Event.Warp_formed _ -> incr formed
        | Vekt_obs.Event.Yield _ -> incr yields
        | _ -> ())
    in
    let dev = Api.create_device () in
    let m = Api.load_module dev w.Workload.src in
    let inst = w.Workload.setup dev in
    let cache = Api.kernel_cache m ~kernel:w.Workload.kernel in
    let k = Option.get (Ast.find_kernel m.Api.ast w.Workload.kernel) in
    let params = Launch.param_block k inst.Workload.args in
    ignore
      (WP.launch ~workers:4 ~domains ~sink cache ~grid:inst.Workload.grid
         ~block:inst.Workload.block ~global:dev.Api.global ~params
         ~consts:m.Api.consts);
    (!formed, !yields)
  in
  let serial = count ~domains:1 and par = count ~domains:4 in
  Alcotest.(check (pair int int)) "warp/yield event counts" serial par

(* ---- Api-level --workers plumbing ---- *)

let test_api_workers_config () =
  let w = List.hd Registry.all in
  let run workers =
    let config = { Api.default_config with workers } in
    let dev = Api.create_device () in
    let m = Api.load_module ~config dev w.Workload.src in
    let inst = w.Workload.setup dev in
    let r =
      Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
        ~block:inst.Workload.block ~args:inst.Workload.args
    in
    (match inst.Workload.check dev with
    | Ok () -> ()
    | Error e -> Alcotest.failf "api workers=%a: %s" Fmt.(option int) workers e);
    (dev, r)
  in
  let dev1, r1 = run (Some 1) in
  let dev4, r4 = run (Some 4) in
  Alcotest.(check bool) "api workers 4 vs 1 memory" true
    (Mem.equal dev1.Api.global dev4.Api.global);
  Alcotest.(check int) "api workers 4 vs 1 dyn_instrs"
    r1.Api.stats.Stats.counters.Interp.dyn_instrs
    r4.Api.stats.Stats.counters.Interp.dyn_instrs;
  if r4.Api.stats.Stats.wall_cycles > r1.Api.stats.Stats.wall_cycles then
    Alcotest.fail "api workers=4 wall cycles exceed workers=1"

let () =
  Alcotest.run "parallel"
    [
      ("registry-differential", registry_cases);
      ( "barrier-kernels",
        [
          Alcotest.test_case "ringsum multi-CTA" `Quick test_ringsum_parallel;
          Alcotest.test_case "oddeven multi-CTA" `Quick test_oddeven_parallel;
        ] );
      ( "fault-differential",
        [ Alcotest.test_case "compile-fail ws=4" `Quick test_fault_differential ]
      );
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "compile_us >= 0" `Quick
            test_compile_us_non_negative;
        ] );
      ( "events",
        [ Alcotest.test_case "replay counts" `Quick test_event_replay_counts ]
      );
      ( "api",
        [ Alcotest.test_case "--workers plumbing" `Quick test_api_workers_config ]
      );
    ]
