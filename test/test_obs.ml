(* Tests for the observability library (Vekt_obs) and its runtime
   wiring: trace ring buffer, Chrome trace-event export (validated with
   a standalone JSON parser), metrics registry exporters, divergence
   profiles reconciling with Stats aggregates on real workloads, and
   the zero-overhead guarantee of the no-op sink. *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module EM = Vekt_runtime.Exec_manager
module Stats = Vekt_runtime.Stats
module Interp = Vekt_vm.Interp
module Event = Vekt_obs.Event
module Sink = Vekt_obs.Sink
module Trace = Vekt_obs.Trace
module Metrics = Vekt_obs.Metrics
module Divergence = Vekt_obs.Divergence
open Vekt_workloads

(* --- a strict little JSON syntax checker (no JSON library in the
   dependency set, and the point is to validate the hand-rolled
   exporters against an independent reader) --- *)

exception Bad_json of string

let check_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Fmt.str "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Fmt.str "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      let any = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            any := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !any then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let literal l =
    String.iter (fun c -> if peek () = Some c then advance () else fail ("expected " ^ l)) l
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected value");
    skip_ws ()
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let json_valid what s =
  match check_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON: %s" what msg

(* --- trace ring buffer --- *)

let mk_event i =
  Event.Warp_formed { ts = float_of_int i; worker = 0; entry_id = 0; size = 4; scanned = i }

let test_ring_wraps () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t (mk_event i)
  done;
  Alcotest.(check int) "recorded" 10 (Trace.recorded t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let kept = Trace.events t in
  Alcotest.(check int) "retains capacity" 4 (List.length kept);
  Alcotest.(check (list (float 1e-9)))
    "oldest dropped, order kept" [ 7.; 8.; 9.; 10. ]
    (List.map Event.ts kept)

let test_ring_partial () =
  let t = Trace.create ~capacity:8 () in
  Trace.record t (mk_event 1);
  Trace.record t (mk_event 2);
  Alcotest.(check int) "dropped" 0 (Trace.dropped t);
  Alcotest.(check (list (float 1e-9)))
    "in order" [ 1.; 2. ]
    (List.map Event.ts (Trace.events t))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_exports_valid () =
  let t = Trace.create ~capacity:16 () in
  Trace.record t (mk_event 1);
  Trace.record t
    (Event.Compile_end
       {
         ts = 2.0;
         worker = 0;
         kernel = "k\"with\\quotes\n";
         ws = 4;
         tier = 1;
         wall_us = 12.5;
         static_instrs = 7;
       });
  Trace.record t
    (Event.Yield { ts = 3.0; worker = 1; entry_id = 2; kind = Event.Yield_barrier; lanes = 4 });
  json_valid "chrome trace" (Trace.to_chrome_json t);
  let text = Trace.to_text t in
  Alcotest.(check bool) "text mentions yield" true (contains ~sub:"yield" text)

(* --- metrics registry --- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "calls" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.set (Metrics.gauge m "temp") 1.5;
  let h = Metrics.histogram m "ws" in
  Metrics.observe h 4;
  Metrics.observe h 4;
  Metrics.observe h 1;
  Alcotest.(check int) "counter" 5 !(Metrics.counter m "calls");
  Alcotest.(check (float 1e-9)) "hist mean" 3.0 (Metrics.hist_mean h);
  Alcotest.(check (list (pair int int))) "bins" [ (1, 1); (4, 2) ] (Metrics.hist_bins h);
  Alcotest.(check (list string)) "registration order" [ "calls"; "temp"; "ws" ]
    (Metrics.names m);
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "calls");
       false
     with Invalid_argument _ -> true)

let test_metrics_exports () =
  let m = Metrics.create () in
  Metrics.incr ~by:42 (Metrics.counter m "a.count");
  Metrics.set (Metrics.gauge m "b.gauge") 2.25;
  Metrics.observe (Metrics.histogram m "c.hist") 3;
  json_valid "metrics json" (Metrics.to_json m);
  let csv = Metrics.to_csv m in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "name,kind,key,value" (List.hd lines);
  Alcotest.(check bool) "counter row" true (List.mem "a.count,counter,,42" lines);
  Alcotest.(check bool) "gauge row" true (List.mem "b.gauge,gauge,,2.25" lines);
  Alcotest.(check bool) "hist bin row" true (List.mem "c.hist,histogram,bin:3,1" lines)

(* --- wiring: real launches --- *)

let run_workload ?sink ?profile (w : Workload.t) =
  let dev = Api.create_device () in
  let m = Api.load_module dev w.Workload.src in
  let inst = w.Workload.setup ~scale:1 dev in
  let r =
    Api.launch ?sink ?profile m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: wrong results: %s" w.Workload.name e);
  (m, r)

let test_trace_of_launch_has_expected_events () =
  let tracer = Trace.create () in
  let _, _ = run_workload ~sink:(Trace.sink tracer) W_mersenne.workload in
  let json = Trace.to_chrome_json tracer in
  json_valid "launch trace" json;
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (contains ~sub json))
    [
      "\"compile\"";
      "\"warp_formed\"";
      "\"yield\"";
      "\"subkernel\"";
      "\"cache_hit\"";
      "\"traceEvents\"";
    ]

(* Per-entry divergence totals must reconcile with the launch-wide Stats
   aggregates (acceptance: at least two workloads). *)
let check_profile_reconciles (w : Workload.t) =
  let profile = Divergence.create () in
  let _, r = run_workload ~profile w in
  let stats = r.Api.stats in
  Alcotest.(check int)
    (w.Workload.name ^ ": restores")
    stats.Stats.counters.Interp.restores
    (Divergence.total_restores profile);
  Alcotest.(check int)
    (w.Workload.name ^ ": spills")
    stats.Stats.counters.Interp.spills
    (Divergence.total_spills profile);
  Alcotest.(check int)
    (w.Workload.name ^ ": warps")
    (Hashtbl.fold (fun _ c a -> a + c) stats.Stats.warp_hist 0)
    (Divergence.total_entries profile);
  let stats_hist =
    Hashtbl.fold (fun ws c l -> (ws, c) :: l) stats.Stats.warp_hist []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    (w.Workload.name ^ ": warp histogram")
    stats_hist (Divergence.warp_hist profile);
  (* hotness recorded and the profile renders *)
  Alcotest.(check bool)
    (w.Workload.name ^ ": hotness populated")
    true
    (Hashtbl.length profile.Divergence.hotness > 0);
  let rendered = Fmt.str "%a" (Divergence.report ?top:None) profile in
  Alcotest.(check bool)
    (w.Workload.name ^ ": report renders")
    true
    (contains ~sub:"divergence profile" rendered)

let test_profile_reconciles_mersenne () = check_profile_reconciles W_mersenne.workload
let test_profile_reconciles_reduction () = check_profile_reconciles W_reduction.workload

(* With no sink attached the instrumented paths must not change the
   modelled execution at all; with a sink attached the *modelled* cycle
   totals must still be identical (observation does not perturb). *)
let test_noop_sink_zero_overhead () =
  let w = W_reduction.workload in
  let _, bare = run_workload w in
  let _, noop = run_workload ~sink:Sink.noop w in
  let tracer = Trace.create () in
  let profile = Divergence.create () in
  let _, traced = run_workload ~sink:(Trace.sink tracer) ~profile w in
  Alcotest.(check (float 0.0)) "noop sink: identical wall cycles"
    bare.Api.cycles noop.Api.cycles;
  Alcotest.(check (float 0.0)) "traced: identical wall cycles"
    bare.Api.cycles traced.Api.cycles;
  Alcotest.(check int) "identical dyn instrs"
    bare.Api.stats.Stats.counters.Interp.dyn_instrs
    traced.Api.stats.Stats.counters.Interp.dyn_instrs;
  Alcotest.(check (float 0.0)) "identical em cycles"
    bare.Api.stats.Stats.em_cycles traced.Api.stats.Stats.em_cycles;
  Alcotest.(check bool) "trace non-empty" true (Trace.recorded tracer > 0)

let test_divergence_merge () =
  let a = Divergence.create () and b = Divergence.create () in
  Divergence.record_entry a ~entry_id:0 ~ws:4 ~restores:0 ~spills:2;
  Divergence.record_entry a ~entry_id:1 ~ws:2 ~restores:4 ~spills:0;
  Divergence.record_entry b ~entry_id:1 ~ws:2 ~restores:6 ~spills:0;
  Divergence.touch_block a "B1";
  Divergence.touch_block b "B1";
  let into = Divergence.create () in
  Divergence.merge ~into a;
  Divergence.merge ~into b;
  Alcotest.(check int) "warps" 3 (Divergence.total_entries into);
  Alcotest.(check int) "restores" 10 (Divergence.total_restores into);
  Alcotest.(check (list (pair int int))) "hist" [ (2, 2); (4, 1) ]
    (Divergence.warp_hist into);
  Alcotest.(check (option int)) "hotness" (Some 2)
    (Hashtbl.find_opt into.Divergence.hotness "B1")

let test_metrics_of_launch () =
  let w = W_vecadd.workload in
  let m, r = run_workload w in
  let reg = Api.metrics m ~kernel:w.Workload.kernel r in
  json_valid "launch metrics json" (Metrics.to_json reg);
  Alcotest.(check int) "vm.kernel_calls matches stats"
    r.Api.stats.Stats.counters.Interp.kernel_calls
    !(Metrics.counter reg "vm.kernel_calls");
  Alcotest.(check bool) "jit hit/miss exported" true
    (!(Metrics.counter reg "jit.cache_misses") > 0);
  Alcotest.(check bool) "compile cost exported" true
    (Metrics.find reg "jit.w4.compile_us" <> None)

(* --- span trees rebuilt from a traced launch --- *)

module Span = Vekt_obs.Span
module Attribution = Vekt_obs.Attribution
module Report = Vekt_runtime.Report
module Fault = Vekt_runtime.Fault

let run_traced ?attr ?profile ~config (w : Workload.t) tracer =
  let sink = Trace.sink tracer in
  let dev = Api.create_device () in
  let m = Api.load_module ~config ~sink dev w.Workload.src in
  let inst = w.Workload.setup ~scale:1 dev in
  let r =
    Api.launch ~sink ?attr ?profile m ~kernel:w.Workload.kernel
      ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~args:inst.Workload.args
  in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: wrong results: %s" w.Workload.name e);
  (dev, inst, r)

let check_span_tree workers (w : Workload.t) =
  let tracer = Trace.create ~capacity:(1 lsl 18) () in
  let config = { Api.default_config with workers = Some workers } in
  let _, inst, _ = run_traced ~config w tracer in
  Alcotest.(check int)
    (Fmt.str "%s w%d: no events dropped" w.Workload.name workers)
    0 (Trace.dropped tracer);
  let forest = Span.of_events (Trace.events tracer) in
  Alcotest.(check bool)
    (Fmt.str "%s w%d: balanced" w.Workload.name workers)
    true (Span.balanced forest);
  (match forest.Span.roots with
  | [ root ] ->
      Alcotest.(check bool)
        (Fmt.str "%s w%d: single launch root" w.Workload.name workers)
        true
        (root.Span.kind = Event.Sk_launch)
  | roots ->
      Alcotest.failf "%s w%d: expected one root, got %d" w.Workload.name
        workers (List.length roots));
  let flat = Span.flatten forest in
  let count k = List.length (List.filter (fun (s : Span.t) -> s.Span.kind = k) flat) in
  Alcotest.(check int)
    (Fmt.str "%s w%d: one cta span per CTA" w.Workload.name workers)
    (Vekt_ptx.Launch.count inst.Workload.grid)
    (count Event.Sk_cta);
  List.iter
    (fun (what, k) ->
      Alcotest.(check bool)
        (Fmt.str "%s w%d: has %s span" w.Workload.name workers what)
        true (count k > 0))
    [
      ("parse", Event.Sk_parse);
      ("typecheck", Event.Sk_typecheck);
      ("cache lookup", Event.Sk_cache_lookup);
      ("compile", Event.Sk_compile);
      ("pass", Event.Sk_pass);
    ];
  json_valid "span json" (Span.to_json forest)

let test_span_tree_serial () = check_span_tree 1 W_vecadd.workload
let test_span_tree_parallel () = check_span_tree 4 W_vecadd.workload
let test_span_tree_subkernels () = check_span_tree 4 W_mersenne.workload

(* --- source-line attribution: bit-exact conservation across the whole
   registry at 1 and 4 workers.  Everything is integer addition, so the
   per-(entry, line) buckets must sum to the charged total under any
   worker merge order, and the total itself must not depend on the
   worker count. --- *)

let test_attribution_conserved_registry () =
  List.iter
    (fun (w : Workload.t) ->
      let totals =
        List.map
          (fun workers ->
            let attr = Attribution.create () in
            let config = { Api.default_config with workers = Some workers } in
            let dev = Api.create_device () in
            let m = Api.load_module ~config dev w.Workload.src in
            let inst = w.Workload.setup ~scale:1 dev in
            ignore
              (Api.launch ~attr m ~kernel:w.Workload.kernel
                 ~grid:inst.Workload.grid ~block:inst.Workload.block
                 ~args:inst.Workload.args);
            Alcotest.(check bool)
              (Fmt.str "%s w%d: charged" w.Workload.name workers)
              true
              (attr.Attribution.total_units > 0);
            Alcotest.(check bool)
              (Fmt.str "%s w%d: conserved" w.Workload.name workers)
              true (Attribution.conserved attr);
            Alcotest.(check int)
              (Fmt.str "%s w%d: by_line sums to total" w.Workload.name workers)
              attr.Attribution.total_units
              (List.fold_left
                 (fun acc (_, u) -> acc + u)
                 0
                 (Attribution.by_line attr));
            attr.Attribution.total_units)
          [ 1; 4 ]
      in
      match totals with
      | [ t1; t4 ] ->
          Alcotest.(check int)
            (w.Workload.name ^ ": total independent of worker count")
            t1 t4
      | _ -> assert false)
    Registry.all

(* --- post-launch report --- *)

let test_report_json_and_render () =
  let w = W_mersenne.workload in
  let tracer = Trace.create ~capacity:(1 lsl 18) () in
  let attr = Attribution.create () in
  let profile = Divergence.create () in
  let dev, _, r =
    run_traced ~attr ~profile ~config:Api.default_config w tracer
  in
  let rep =
    Report.build ~kernel:w.Workload.kernel ~src:w.Workload.src
      ~workers:dev.Api.workers ~trace:tracer ~attr ~profile r
  in
  let json = Report.to_json rep in
  json_valid "report json" json;
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Fmt.str "json has %S" key)
        true
        (contains ~sub:(Fmt.str "\"%s\":" key) json))
    [
      "kernel"; "workers"; "launch"; "phases"; "hot_lines"; "divergence";
      "cache_timeline"; "spans"; "attribution";
    ]

(* The human-readable rendering is what `vektc run --report -` prints;
   pin its stable structure (headers, phase rows, conservation flag)
   without golden-matching the timing-dependent numbers. *)
let test_report_golden_structure () =
  let w = W_vecadd.workload in
  let tracer = Trace.create ~capacity:(1 lsl 18) () in
  let attr = Attribution.create () in
  let profile = Divergence.create () in
  let dev, _, r =
    run_traced ~attr ~profile ~config:Api.default_config w tracer
  in
  let rep =
    Report.build ~kernel:w.Workload.kernel ~src:w.Workload.src
      ~workers:dev.Api.workers ~trace:tracer ~attr ~profile r
  in
  let text = Report.render rep in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Fmt.str "render has %S" sub) true
        (contains ~sub text))
    [
      "launch report: vecadd";
      "phase breakdown (wall µs / modelled cycles):";
      "parse"; "typecheck"; "launch"; "cta"; "cache_lookup"; "compile"; "pass";
      "conserved=true";
      "hottest source lines";
      "(runtime overhead)";
      "divergence profile";
      "cache timeline:";
    ]

(* --- flight recorder: a launch dying on an injected fault leaves its
   launch and CTA spans open, and the crash bundle captures them --- *)

let test_crash_bundle_on_injected_fault () =
  let w = W_vecadd.workload in
  let tracer = Trace.create () in
  let sink = Trace.sink tracer in
  let config =
    {
      Api.default_config with
      inject =
        Some
          { Fault.seed = 7; specs = [ Fault.Mem_trap { nth = 5; kernel = None } ] };
      recover = false;
    }
  in
  let dev = Api.create_device () in
  let m = Api.load_module ~config ~sink dev w.Workload.src in
  let inst = w.Workload.setup ~scale:1 dev in
  match
    Api.launch ~sink m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  with
  | _ -> Alcotest.fail "expected the injected trap to escape"
  | exception Vekt_error.Error err ->
      let forest = Span.of_events (Trace.events tracer) in
      Alcotest.(check bool) "launch span left open" true
        (List.exists
           (fun (s : Span.t) -> s.Span.kind = Event.Sk_launch)
           forest.Span.open_spans);
      let bundle =
        Report.crash_bundle ~kernel:w.Workload.kernel ~error:err ~trace:tracer ()
      in
      json_valid "crash bundle" bundle;
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Fmt.str "bundle has %S" sub) true
            (contains ~sub bundle))
        [
          "\"error_kind\":\"trap\"";
          "\"open_spans\"";
          "\"ring\"";
          "launch vecadd";
        ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
          Alcotest.test_case "ring partial" `Quick test_ring_partial;
          Alcotest.test_case "exports valid" `Quick test_trace_exports_valid;
          Alcotest.test_case "launch events" `Quick
            test_trace_of_launch_has_expected_events;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "exports" `Quick test_metrics_exports;
          Alcotest.test_case "launch metrics" `Quick test_metrics_of_launch;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "reconciles (mersenne)" `Quick
            test_profile_reconciles_mersenne;
          Alcotest.test_case "reconciles (reduction)" `Quick
            test_profile_reconciles_reduction;
          Alcotest.test_case "merge" `Quick test_divergence_merge;
        ] );
      ( "overhead",
        [ Alcotest.test_case "noop sink" `Quick test_noop_sink_zero_overhead ] );
      ( "spans",
        [
          Alcotest.test_case "tree balanced w1" `Quick test_span_tree_serial;
          Alcotest.test_case "tree balanced w4" `Quick test_span_tree_parallel;
          Alcotest.test_case "subkernel launch" `Quick test_span_tree_subkernels;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "conserved across registry w1/w4" `Quick
            test_attribution_conserved_registry;
        ] );
      ( "report",
        [
          Alcotest.test_case "json keys" `Quick test_report_json_and_render;
          Alcotest.test_case "rendered structure" `Quick
            test_report_golden_structure;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "crash bundle on injected fault" `Quick
            test_crash_bundle_on_injected_fault;
        ] );
    ]
