(* Tests for the observability library (Vekt_obs) and its runtime
   wiring: trace ring buffer, Chrome trace-event export (validated with
   a standalone JSON parser), metrics registry exporters, divergence
   profiles reconciling with Stats aggregates on real workloads, and
   the zero-overhead guarantee of the no-op sink. *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module EM = Vekt_runtime.Exec_manager
module Stats = Vekt_runtime.Stats
module Interp = Vekt_vm.Interp
module Event = Vekt_obs.Event
module Sink = Vekt_obs.Sink
module Trace = Vekt_obs.Trace
module Metrics = Vekt_obs.Metrics
module Divergence = Vekt_obs.Divergence
open Vekt_workloads

(* --- a strict little JSON syntax checker (no JSON library in the
   dependency set, and the point is to validate the hand-rolled
   exporters against an independent reader) --- *)

exception Bad_json of string

let check_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Fmt.str "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Fmt.str "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      let any = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            any := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !any then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let literal l =
    String.iter (fun c -> if peek () = Some c then advance () else fail ("expected " ^ l)) l
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected value");
    skip_ws ()
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let json_valid what s =
  match check_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON: %s" what msg

(* --- trace ring buffer --- *)

let mk_event i =
  Event.Warp_formed { ts = float_of_int i; worker = 0; entry_id = 0; size = 4; scanned = i }

let test_ring_wraps () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t (mk_event i)
  done;
  Alcotest.(check int) "recorded" 10 (Trace.recorded t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let kept = Trace.events t in
  Alcotest.(check int) "retains capacity" 4 (List.length kept);
  Alcotest.(check (list (float 1e-9)))
    "oldest dropped, order kept" [ 7.; 8.; 9.; 10. ]
    (List.map Event.ts kept)

let test_ring_partial () =
  let t = Trace.create ~capacity:8 () in
  Trace.record t (mk_event 1);
  Trace.record t (mk_event 2);
  Alcotest.(check int) "dropped" 0 (Trace.dropped t);
  Alcotest.(check (list (float 1e-9)))
    "in order" [ 1.; 2. ]
    (List.map Event.ts (Trace.events t))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_exports_valid () =
  let t = Trace.create ~capacity:16 () in
  Trace.record t (mk_event 1);
  Trace.record t
    (Event.Compile_end
       {
         ts = 2.0;
         worker = 0;
         kernel = "k\"with\\quotes\n";
         ws = 4;
         tier = 1;
         wall_us = 12.5;
         static_instrs = 7;
       });
  Trace.record t
    (Event.Yield { ts = 3.0; worker = 1; entry_id = 2; kind = Event.Yield_barrier; lanes = 4 });
  json_valid "chrome trace" (Trace.to_chrome_json t);
  let text = Trace.to_text t in
  Alcotest.(check bool) "text mentions yield" true (contains ~sub:"yield" text)

(* --- metrics registry --- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "calls" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.set (Metrics.gauge m "temp") 1.5;
  let h = Metrics.histogram m "ws" in
  Metrics.observe h 4;
  Metrics.observe h 4;
  Metrics.observe h 1;
  Alcotest.(check int) "counter" 5 !(Metrics.counter m "calls");
  Alcotest.(check (float 1e-9)) "hist mean" 3.0 (Metrics.hist_mean h);
  Alcotest.(check (list (pair int int))) "bins" [ (1, 1); (4, 2) ] (Metrics.hist_bins h);
  Alcotest.(check (list string)) "registration order" [ "calls"; "temp"; "ws" ]
    (Metrics.names m);
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "calls");
       false
     with Invalid_argument _ -> true)

let test_metrics_exports () =
  let m = Metrics.create () in
  Metrics.incr ~by:42 (Metrics.counter m "a.count");
  Metrics.set (Metrics.gauge m "b.gauge") 2.25;
  Metrics.observe (Metrics.histogram m "c.hist") 3;
  json_valid "metrics json" (Metrics.to_json m);
  let csv = Metrics.to_csv m in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "name,kind,key,value" (List.hd lines);
  Alcotest.(check bool) "counter row" true (List.mem "a.count,counter,,42" lines);
  Alcotest.(check bool) "gauge row" true (List.mem "b.gauge,gauge,,2.25" lines);
  Alcotest.(check bool) "hist bin row" true (List.mem "c.hist,histogram,bin:3,1" lines)

(* --- wiring: real launches --- *)

let run_workload ?sink ?profile (w : Workload.t) =
  let dev = Api.create_device () in
  let m = Api.load_module dev w.Workload.src in
  let inst = w.Workload.setup ~scale:1 dev in
  let r =
    Api.launch ?sink ?profile m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: wrong results: %s" w.Workload.name e);
  (m, r)

let test_trace_of_launch_has_expected_events () =
  let tracer = Trace.create () in
  let _, _ = run_workload ~sink:(Trace.sink tracer) W_mersenne.workload in
  let json = Trace.to_chrome_json tracer in
  json_valid "launch trace" json;
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (contains ~sub json))
    [
      "\"compile\"";
      "\"warp_formed\"";
      "\"yield\"";
      "\"subkernel\"";
      "\"cache_hit\"";
      "\"traceEvents\"";
    ]

(* Per-entry divergence totals must reconcile with the launch-wide Stats
   aggregates (acceptance: at least two workloads). *)
let check_profile_reconciles (w : Workload.t) =
  let profile = Divergence.create () in
  let _, r = run_workload ~profile w in
  let stats = r.Api.stats in
  Alcotest.(check int)
    (w.Workload.name ^ ": restores")
    stats.Stats.counters.Interp.restores
    (Divergence.total_restores profile);
  Alcotest.(check int)
    (w.Workload.name ^ ": spills")
    stats.Stats.counters.Interp.spills
    (Divergence.total_spills profile);
  Alcotest.(check int)
    (w.Workload.name ^ ": warps")
    (Hashtbl.fold (fun _ c a -> a + c) stats.Stats.warp_hist 0)
    (Divergence.total_entries profile);
  let stats_hist =
    Hashtbl.fold (fun ws c l -> (ws, c) :: l) stats.Stats.warp_hist []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    (w.Workload.name ^ ": warp histogram")
    stats_hist (Divergence.warp_hist profile);
  (* hotness recorded and the profile renders *)
  Alcotest.(check bool)
    (w.Workload.name ^ ": hotness populated")
    true
    (Hashtbl.length profile.Divergence.hotness > 0);
  let rendered = Fmt.str "%a" (Divergence.report ?top:None) profile in
  Alcotest.(check bool)
    (w.Workload.name ^ ": report renders")
    true
    (contains ~sub:"divergence profile" rendered)

let test_profile_reconciles_mersenne () = check_profile_reconciles W_mersenne.workload
let test_profile_reconciles_reduction () = check_profile_reconciles W_reduction.workload

(* With no sink attached the instrumented paths must not change the
   modelled execution at all; with a sink attached the *modelled* cycle
   totals must still be identical (observation does not perturb). *)
let test_noop_sink_zero_overhead () =
  let w = W_reduction.workload in
  let _, bare = run_workload w in
  let _, noop = run_workload ~sink:Sink.noop w in
  let tracer = Trace.create () in
  let profile = Divergence.create () in
  let _, traced = run_workload ~sink:(Trace.sink tracer) ~profile w in
  Alcotest.(check (float 0.0)) "noop sink: identical wall cycles"
    bare.Api.cycles noop.Api.cycles;
  Alcotest.(check (float 0.0)) "traced: identical wall cycles"
    bare.Api.cycles traced.Api.cycles;
  Alcotest.(check int) "identical dyn instrs"
    bare.Api.stats.Stats.counters.Interp.dyn_instrs
    traced.Api.stats.Stats.counters.Interp.dyn_instrs;
  Alcotest.(check (float 0.0)) "identical em cycles"
    bare.Api.stats.Stats.em_cycles traced.Api.stats.Stats.em_cycles;
  Alcotest.(check bool) "trace non-empty" true (Trace.recorded tracer > 0)

let test_divergence_merge () =
  let a = Divergence.create () and b = Divergence.create () in
  Divergence.record_entry a ~entry_id:0 ~ws:4 ~restores:0 ~spills:2;
  Divergence.record_entry a ~entry_id:1 ~ws:2 ~restores:4 ~spills:0;
  Divergence.record_entry b ~entry_id:1 ~ws:2 ~restores:6 ~spills:0;
  Divergence.touch_block a "B1";
  Divergence.touch_block b "B1";
  let into = Divergence.create () in
  Divergence.merge ~into a;
  Divergence.merge ~into b;
  Alcotest.(check int) "warps" 3 (Divergence.total_entries into);
  Alcotest.(check int) "restores" 10 (Divergence.total_restores into);
  Alcotest.(check (list (pair int int))) "hist" [ (2, 2); (4, 1) ]
    (Divergence.warp_hist into);
  Alcotest.(check (option int)) "hotness" (Some 2)
    (Hashtbl.find_opt into.Divergence.hotness "B1")

let test_metrics_of_launch () =
  let w = W_vecadd.workload in
  let m, r = run_workload w in
  let reg = Api.metrics m ~kernel:w.Workload.kernel r in
  json_valid "launch metrics json" (Metrics.to_json reg);
  Alcotest.(check int) "vm.kernel_calls matches stats"
    r.Api.stats.Stats.counters.Interp.kernel_calls
    !(Metrics.counter reg "vm.kernel_calls");
  Alcotest.(check bool) "jit hit/miss exported" true
    (!(Metrics.counter reg "jit.cache_misses") > 0);
  Alcotest.(check bool) "compile cost exported" true
    (Metrics.find reg "jit.w4.compile_us" <> None)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
          Alcotest.test_case "ring partial" `Quick test_ring_partial;
          Alcotest.test_case "exports valid" `Quick test_trace_exports_valid;
          Alcotest.test_case "launch events" `Quick
            test_trace_of_launch_has_expected_events;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "exports" `Quick test_metrics_exports;
          Alcotest.test_case "launch metrics" `Quick test_metrics_of_launch;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "reconciles (mersenne)" `Quick
            test_profile_reconciles_mersenne;
          Alcotest.test_case "reconciles (reduction)" `Quick
            test_profile_reconciles_reduction;
          Alcotest.test_case "merge" `Quick test_divergence_merge;
        ] );
      ( "overhead",
        [ Alcotest.test_case "noop sink" `Quick test_noop_sink_zero_overhead ] );
    ]
