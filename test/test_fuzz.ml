(* Fuzzer regression suite.

   - replays every kernel in corpus/ (shrunk reproducers and gap-closure
     kernels) through the full differential configuration matrix;
   - property-checks the generator's own invariants (well-typedness,
     seed determinism);
   - unit-tests the fixes the fuzzer forced: the widened select temp for
     guarded mul.wide, mul.wide scalar semantics, the 64-bit-aware shift
     transfer in the affine analysis, and the verifier's rejection of
     scalar immediates as vector store values. *)

open Vekt_ptx
open Vekt_ir
open Vekt_fuzz

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)

(* Under [dune runtest] the cwd is the staged test directory; under
   [dune exec test/test_fuzz.exe] it is the project root. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ptx")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay path () =
  let spec = Gen.spec_of_src (read_file path) in
  match Runner.run_spec spec with
  | Runner.Clean n -> Alcotest.(check bool) "ran some configs" true (n > 0)
  | Runner.Rejected why -> Alcotest.failf "%s rejected: %s" path why
  | Runner.Diverged ds ->
      Alcotest.failf "%s diverged: %a" path
        Fmt.(list ~sep:semi (fun fmt (d : Runner.divergence) ->
                 Fmt.pf fmt "[%s] %s" d.cfg d.what))
        ds

let corpus_tests () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus has >= 5 kernels" true (List.length files >= 5);
  List.map
    (fun f -> Alcotest.test_case (Filename.basename f) `Slow (replay f))
    files

(* ------------------------------------------------------------------ *)
(* Generator invariants                                                *)

(* Everything the generator emits that the parser accepts must be
   well-typed; parse failures are legitimate only as frontier probes,
   which the campaign tallies rather than runs. *)
let gen_well_typed =
  QCheck.Test.make ~name:"generated kernels are well-typed" ~count:40
    Gen.arbitrary (fun spec ->
      match Parser.parse_module spec.Gen.src with
      | exception _ -> true
      | m -> Typecheck.check_module m = [])

let gen_deterministic () =
  for seed = 0 to 24 do
    let a = Gen.generate ~seed and b = Gen.generate ~seed in
    Alcotest.(check string) (Fmt.str "seed %d src" seed) a.Gen.src b.Gen.src;
    Alcotest.(check int) (Fmt.str "seed %d grid" seed) a.Gen.grid b.Gen.grid;
    Alcotest.(check int) (Fmt.str "seed %d block" seed) a.Gen.block b.Gen.block
  done

let header_round_trip () =
  let spec = Gen.generate ~seed:3 in
  let spec' = Gen.spec_of_src spec.Gen.src in
  Alcotest.(check int) "grid survives reparse" spec.Gen.grid spec'.Gen.grid;
  Alcotest.(check int) "block survives reparse" spec.Gen.block spec'.Gen.block

(* ------------------------------------------------------------------ *)
(* Guarded mul.wide (fuzz seed 16): the select temp introduced by
   if-conversion must live at the widened type. *)

let ifconv_guarded_mul_wide () =
  let k =
    Parser.parse_kernel_exn
      ".entry k (.param .u64 p) {\n\
      \  .reg .s32 %s0;\n\
      \  .reg .s64 %w0;\n\
      \  .reg .pred %q0;\n\
      \  @%q0 mul.wide.s32 %w0, 14, %s0;\n\
      \  ret;\n\
       }"
  in
  let k' = Vekt_transform.Ifconv.run k in
  Alcotest.(check bool) "postcondition" true (Vekt_transform.Ifconv.is_clean k');
  match List.assoc_opt "%__ifc1" k'.Ast.k_regs with
  | Some ty ->
      Alcotest.(check bool)
        "select temp declared at widened type (.s64)" true (ty = Ast.S64)
  | None -> Alcotest.fail "if-conversion introduced no temp register"

(* ------------------------------------------------------------------ *)
(* mul.wide scalar semantics *)

let scalar_mul_wide () =
  let open Scalar_ops in
  let check name exp got =
    Alcotest.(check int64) name exp (match got with I x -> x | F _ -> -1L)
  in
  check "u32 max square" 0xFFFF_FFFE_0000_0001L
    (binop Ast.Mul_wide Ast.U32 (I 0xFFFF_FFFFL) (I 0xFFFF_FFFFL));
  check "s32 sign-extends operands" (-15L)
    (binop Ast.Mul_wide Ast.S32 (I (-3L)) (I 5L));
  check "s32 negative product wide" (Int64.mul (-2147483648L) 2L)
    (binop Ast.Mul_wide Ast.S32 (I 0x8000_0000L) (I 2L));
  check "u16 widens to u32" 0xFFFE_0001L
    (binop Ast.Mul_wide Ast.U16 (I 0xFFFFL) (I 0xFFFFL));
  Alcotest.check_raises "64-bit rejected"
    (Unsupported "mul.wide on 64-bit types") (fun () ->
      ignore (binop Ast.Mul_wide Ast.U64 (I 1L) (I 1L)))

(* ------------------------------------------------------------------ *)
(* Affine shift transfer: 64-bit aware bound *)

let cls = Alcotest.testable Vekt_analysis.Affine.pp_cls Vekt_analysis.Affine.equal_cls

let affine_shl () =
  let open Vekt_analysis.Affine in
  let check name exp got = Alcotest.check cls name exp got in
  (* the address idiom: affine tid stride scaled by an element size *)
  check "affine << 2 @64" (Affine 4L) (shl_cls ~bits:64 (Affine 1L) (Const 2L));
  check "affine << 3 @64" (Affine 32L) (shl_cls ~bits:64 (Affine 4L) (Const 3L));
  (* shifts in [32, 64) are in range for 64-bit values — the old 32-bit
     bound classified these as total shifts *)
  check "const << 40 @64" (Const (Int64.shift_left 1L 40))
    (shl_cls ~bits:64 (Const 1L) (Const 40L));
  check "affine << 33 @64" (Affine (Int64.shift_left 1L 33))
    (shl_cls ~bits:64 (Affine 1L) (Const 33L));
  (* total shifts really do zero every lane *)
  check "affine << 35 @32" (Const 0L) (shl_cls ~bits:32 (Affine 4L) (Const 35L));
  check "const << 64 @64" (Const 0L) (shl_cls ~bits:64 (Const 7L) (Const 64L));
  check "uniform << const" Uniform (shl_cls ~bits:32 Uniform (Const 31L));
  check "affine << uniform" Unknown (shl_cls ~bits:32 (Affine 1L) Uniform);
  check "bot propagates" Bot (shl_cls ~bits:32 Bot (Const 1L))

(* ------------------------------------------------------------------ *)
(* Verifier rejects scalar immediates as vector store values, and
   accepts the Broadcast + Vstore shape vectorize now emits. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let verify_vstore_imm_rejected () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let base = Builder.fresh_reg b (Ty.scalar Ast.U64) in
  Builder.emit b
    (Ir.Vstore (Ast.Global, Ast.U32, Ir.R base, 0, Ir.Imm (Scalar_ops.I 7L, Ast.U32)));
  Builder.set_term b Ir.Return;
  let errs = Verify.check_func (Builder.func b) in
  Alcotest.(check bool)
    "flags scalar immediate" true
    (List.exists (fun e -> contains e "scalar immediate") errs)

let verify_vstore_broadcast_ok () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let base = Builder.fresh_reg b (Ty.scalar Ast.U64) in
  let v = Builder.fresh_reg b (Ty.make Ast.U32 4) in
  Builder.emit b (Ir.Broadcast (Ty.make Ast.U32 4, v, Ir.Imm (Scalar_ops.I 7L, Ast.U32)));
  Builder.emit b (Ir.Vstore (Ast.Global, Ast.U32, Ir.R base, 0, Ir.R v));
  Builder.set_term b Ir.Return;
  let errs = Verify.check_func (Builder.func b) in
  Alcotest.(check (list string)) "broadcast + vstore verifies" [] errs

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ("corpus", corpus_tests ());
      ( "generator",
        [
          QCheck_alcotest.to_alcotest gen_well_typed;
          Alcotest.test_case "seed determinism" `Quick gen_deterministic;
          Alcotest.test_case "header round trip" `Quick header_round_trip;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "ifconv guarded mul.wide" `Quick ifconv_guarded_mul_wide;
          Alcotest.test_case "mul.wide scalar semantics" `Quick scalar_mul_wide;
          Alcotest.test_case "affine shl transfer" `Quick affine_shl;
          Alcotest.test_case "vstore imm rejected" `Quick verify_vstore_imm_rejected;
          Alcotest.test_case "broadcast vstore ok" `Quick verify_vstore_broadcast_ok;
        ] );
    ]
