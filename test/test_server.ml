(* Tests for the engine/session split and the persistent daemon layers:
   the JSON wire codec, the shared config construction path, the
   allocator's free list, cross-session translation-cache sharing
   (second tenant's hot launch compiles nothing), concurrent sessions
   over one engine vs the serial one-shot path, the admission queue's
   fairness / quotas / cancellation, checkpoint-based preemption with
   bit-identical resume, and the protocol dispatcher end to end. *)

module Api = Vekt_runtime.Api
module Engine = Vekt_runtime.Engine
module Checkpoint = Vekt_runtime.Checkpoint
module TC = Vekt_runtime.Translation_cache
module Stats = Vekt_runtime.Stats
module Obs = Vekt_obs
module J = Vekt_server.Jsonx
module Queue = Vekt_server.Queue
module Server = Vekt_server.Server
open Vekt_ptx
open Vekt_workloads

let tmpdir =
  Filename.concat (Filename.get_temp_dir_name ())
    (Fmt.str "vekt-test-server-%d" (Unix.getpid ()))

let () = (try Sys.mkdir tmpdir 0o755 with Sys_error _ -> ())

let json = Alcotest.testable (Fmt.of_to_string J.to_string) ( = )

(* ---- jsonx: the wire codec ---- *)

let test_jsonx_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Int 42;
      J.Int (-7);
      J.Float 1.5;
      J.Str "hello";
      J.Str "esc \" \\ \n \t end";
      J.List [ J.Int 1; J.Int 2; J.Int 3 ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("xs", J.List [ J.Bool false; J.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' -> Alcotest.check json (J.to_string v) v v'
      | Error e -> Alcotest.failf "round-trip %s: %s" (J.to_string v) e)
    cases

let test_jsonx_parse () =
  let ok s v =
    match J.of_string s with
    | Ok v' -> Alcotest.check json s v v'
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok {| {"a": 1, "b": [true, null], "c": "x"} |}
    (J.Obj
       [ ("a", J.Int 1); ("b", J.List [ J.Bool true; J.Null ]); ("c", J.Str "x") ]);
  ok {|"Aé"|} (J.Str "A\xc3\xa9");
  ok {|"😀"|} (J.Str "\xf0\x9f\x98\x80");
  ok "1e3" (J.Float 1000.0);
  ok "-12" (J.Int (-12));
  let bad s =
    match J.of_string s with
    | Ok v -> Alcotest.failf "%s: expected parse error, got %s" s (J.to_string v)
    | Error _ -> ()
  in
  bad "{\"a\":}";
  bad "[1,2";
  bad "tru";
  bad "1 2";
  bad "{\"a\":1,}";
  (* nesting bound: 70 levels of array must be rejected, not crash *)
  bad (String.concat "" (List.init 70 (fun _ -> "[")))

let test_jsonx_accessors () =
  let o = J.Obj [ ("n", J.Int 3); ("f", J.Float 2.0); ("s", J.Str "x") ] in
  Alcotest.(check (option int)) "int" (Some 3) (J.int_mem "n" o);
  Alcotest.(check (option int)) "integral float" (Some 2) (J.int_mem "f" o);
  Alcotest.(check (option int)) "wrong type" None (J.int_mem "s" o);
  Alcotest.(check (option string)) "str" (Some "x") (J.str_mem "s" o);
  Alcotest.(check (option string)) "missing" None (J.str_mem "zz" o)

(* ---- config_of_spec: the shared CLI/daemon construction path ---- *)

let config_ok spec =
  match Api.config_of_spec spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "config_of_spec: unexpected error %s" e

let test_config_of_spec () =
  let c = config_ok [] in
  Alcotest.(check (list int)) "default widths" Api.default_config.Api.widths
    c.Api.widths;
  let c = config_ok [ ("ws", "8") ] in
  Alcotest.(check (list int)) "ws=8 widths" [ 8; 1 ] c.Api.widths;
  let c = config_ok [ ("widths", "2,8,4,8") ] in
  Alcotest.(check (list int)) "widths sorted/deduped" [ 8; 4; 2 ] c.Api.widths;
  let c = config_ok [ ("tiered", "true"); ("hot-threshold", "2") ] in
  (match c.Api.tiering with
  | TC.Tiered { hot_threshold } ->
      Alcotest.(check int) "hot threshold" 2 hot_threshold
  | TC.Eager -> Alcotest.fail "expected tiered");
  let c = config_ok [ ("static", "yes") ] in
  Alcotest.(check bool) "static mode" true
    (c.Api.mode = Vekt_transform.Vectorize.Static_tie);
  let c = config_ok [ ("inject", "yield:every=8") ] in
  Alcotest.(check bool) "inject implies recover" true c.Api.recover;
  Alcotest.(check bool) "inject armed" true (Option.is_some c.Api.inject);
  let c = config_ok [ ("workers", "3"); ("checkpoint-every", "5") ] in
  Alcotest.(check (option int)) "workers" (Some 3) c.Api.workers;
  Alcotest.(check int) "checkpoint-every" 5 c.Api.checkpoint_every;
  let contains s frag =
    let n = String.length s and m = String.length frag in
    let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
    m = 0 || go 0
  in
  let expect_err spec frag =
    match Api.config_of_spec spec with
    | Ok _ -> Alcotest.failf "expected error on %s" frag
    | Error e ->
        Alcotest.(check bool)
          (Fmt.str "error mentions %s: %s" frag e)
          true (contains e frag)
  in
  expect_err [ ("no-such-knob", "1") ] "unknown config key";
  expect_err [ ("ws", "four") ] "bad integer";
  expect_err [ ("mode", "quantum") ] "mode";
  expect_err [ ("sched", "zzz") ] "sched";
  expect_err [ ("inject", "frobnicate:p=1") ] "inject"

(* ---- the allocator: free-list reuse, coalescing, errors ---- *)

let test_malloc_free_reuse () =
  let dev = Api.create_device () in
  let a = Api.malloc dev 100 in
  Alcotest.(check int) "16-aligned" 0 (a mod 16);
  let b = Api.malloc dev 100 in
  Api.free dev a;
  let a' = Api.malloc dev 64 in
  Alcotest.(check int) "freed block reused" a a';
  Api.free dev a';
  Api.free dev b;
  let c = Api.malloc dev 100 in
  Alcotest.(check int) "brk lowered after tail frees" a c

let test_malloc_coalesce () =
  let dev = Api.create_device () in
  let a = Api.malloc dev 16 in
  let b = Api.malloc dev 16 in
  let _guard = Api.malloc dev 16 in
  Api.free dev a;
  Api.free dev b;
  (* a and b are adjacent; coalesced they fit a 32-byte block *)
  let d = Api.malloc dev 32 in
  Alcotest.(check int) "coalesced neighbours reused" a d

let expect_resource what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Resource error" what
  | exception Vekt_error.Error (Vekt_error.Resource _) -> ()

let test_malloc_errors () =
  let dev = Api.create_device ~global_bytes:1024 () in
  expect_resource "exhaustion" (fun () -> Api.malloc dev 4096);
  let a = Api.malloc dev 64 in
  Api.write_f32s dev a [ 1.0; 2.0 ];
  Api.free dev a;
  Alcotest.(check (list (float 0.0))) "freed memory zeroed" [ 0.0; 0.0 ]
    (Api.read_f32s dev a 2);
  expect_resource "double free" (fun () -> Api.free dev a);
  expect_resource "bogus free" (fun () -> Api.free dev 4)

let test_reset_arena () =
  let dev = Api.create_device () in
  let a = Api.malloc dev 64 in
  Api.write_f32s dev a [ 9.0; 9.0 ];
  Alcotest.(check bool) "live bytes" true (Api.allocated_bytes dev > 0);
  Api.reset_arena dev;
  Alcotest.(check int) "no live allocations" 0 (Api.allocated_bytes dev);
  let a' = Api.malloc dev 64 in
  Alcotest.(check int) "arena restarts at the base" a a';
  Alcotest.(check (list (float 0.0))) "memory zeroed" [ 0.0; 0.0 ]
    (Api.read_f32s dev a' 2)

(* ---- metrics merge (per-tenant scrape aggregation) ---- *)

let test_metrics_merge () =
  let module M = Obs.Metrics in
  let src = M.create () in
  M.incr ~by:2 (M.counter src "jit.cache_hits");
  M.set (M.gauge src "g") 1.5;
  M.observe (M.histogram src "h") 1;
  M.observe (M.histogram src "h") 3;
  let into = M.create () in
  M.merge_into ~into src;
  M.merge_into ~into src;
  Alcotest.(check int) "counters add" 4 !(M.counter into "jit.cache_hits");
  Alcotest.(check (float 0.0)) "gauge takes last" 1.5 !(M.gauge into "g");
  let pref = M.create () in
  M.merge_into ~into:pref ~prefix:"t." src;
  Alcotest.(check int) "prefix applied" 2 !(M.counter pref "t.jit.cache_hits")

(* ---- engine: cross-session cache sharing ---- *)

let vecadd = W_vecadd.workload

let hot_config =
  {
    Api.default_config with
    Api.tiering = TC.Tiered { hot_threshold = 1 };
    workers = Some 1;
  }

let run_in_session ?sink engine (w : Workload.t) =
  let dev = Api.create_device ~engine () in
  let m = Api.load_module ~config:hot_config ?sink dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let r =
    Api.launch ?sink m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" w.Workload.name e);
  (dev, m, r)

let test_engine_cache_sharing () =
  let engine = Engine.create () in
  (* session 1 pays the compilations and promotes the kernel hot *)
  let _ = run_in_session engine vecadd in
  (* session 2: same source, same config -> every specialization is
     already in the shared cache; nothing compiles *)
  let compile_begins = ref 0 in
  let reg = Obs.Metrics.create () in
  let sink =
    Obs.Sink.tee (Obs.Tally.sink reg)
      (Obs.Sink.fn (function
        | Obs.Event.Compile_begin _ -> incr compile_begins
        | _ -> ()))
  in
  let _ = run_in_session ~sink engine vecadd in
  Alcotest.(check int) "no Compile_begin span in second session" 0
    !compile_begins;
  Alcotest.(check int) "tally: second session compiles nothing" 0
    !(Obs.Metrics.counter reg "jit.compiles");
  Alcotest.(check bool) "tally: second session hits the shared cache" true
    (!(Obs.Metrics.counter reg "jit.cache_hits") > 0);
  let ereg = Obs.Metrics.create () in
  Engine.metrics_into engine ereg;
  Alcotest.(check int) "one shared cache built" 1
    !(Obs.Metrics.counter ereg "engine.cache_builds");
  Alcotest.(check bool) "table served the reuse" true
    (!(Obs.Metrics.counter ereg "engine.cache_reuses") >= 1);
  Alcotest.(check int) "two sessions attached" 2
    !(Obs.Metrics.counter ereg "engine.sessions")

let test_engine_private_without_sharing () =
  (* one-shot path: a device without an explicit engine gets a private
     one, so a second one-shot device recompiles from scratch *)
  let compile_begins = ref 0 in
  let sink =
    Obs.Sink.fn (function
      | Obs.Event.Compile_begin _ -> incr compile_begins
      | _ -> ())
  in
  let _ = run_in_session ~sink (Engine.create ()) vecadd in
  let first = !compile_begins in
  Alcotest.(check bool) "cold session compiles" true (first > 0);
  let _ = run_in_session ~sink (Engine.create ()) vecadd in
  Alcotest.(check int) "fresh engine recompiles" (2 * first) !compile_begins

(* ---- concurrent sessions over one engine vs serial one-shot ---- *)

let test_concurrent_sessions_differential () =
  (* serial one-shot reference *)
  let dev0, _, _ = run_in_session (Engine.create ()) vecadd in
  (* two sessions racing on the same shared engine, on real domains *)
  let engine = Engine.create () in
  let spawn () = Domain.spawn (fun () -> run_in_session engine vecadd) in
  let d1 = spawn () and d2 = spawn () in
  let dev1, _, r1 = Domain.join d1 and dev2, _, r2 = Domain.join d2 in
  Alcotest.(check bool) "session 1 memory = serial one-shot" true
    (Mem.equal dev0.Api.global dev1.Api.global);
  Alcotest.(check bool) "session 2 memory = serial one-shot" true
    (Mem.equal dev0.Api.global dev2.Api.global);
  Alcotest.(check int) "same dynamic instruction count"
    r1.Api.stats.Stats.counters.Vekt_vm.Interp.dyn_instrs
    r2.Api.stats.Stats.counters.Vekt_vm.Interp.dyn_instrs;
  let ereg = Obs.Metrics.create () in
  Engine.metrics_into engine ereg;
  Alcotest.(check int) "racing sessions built exactly one shared cache" 1
    !(Obs.Metrics.counter ereg "engine.cache_builds")

(* ---- the admission queue ---- *)

let drain q = while Queue.step q do () done

let test_queue_fairness () =
  let q = Queue.create () in
  Queue.set_tenant q ~name:"a" ~weight:1 ();
  Queue.set_tenant q ~name:"b" ~weight:3 ();
  let order = ref [] in
  let submit tenant n =
    for i = 1 to n do
      match
        Queue.submit q ~tenant ~label:(Fmt.str "%s%d" tenant i)
          ~run:(fun ~resume:_ ~preempt:_ ~deadline_ms:_ ~wait_us:_ ->
            order := tenant :: !order;
            raise Exit)
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "submit: %a" Vekt_error.pp e
    done
  in
  submit "a" 4;
  submit "b" 4;
  drain q;
  let picks = List.rev !order in
  (* stride scheduling: weight-3 tenant gets 3 of the first 4 slots
     (the very first pick goes to "a" on the alphabetical tie-break) *)
  Alcotest.(check (list string)) "first four picks" [ "a"; "b"; "b"; "b" ]
    (List.filteri (fun i _ -> i < 4) picks);
  Alcotest.(check int) "everything ran" 8 (List.length picks)

let test_queue_priority () =
  let q = Queue.create () in
  let order = ref [] in
  let submit tenant priority label =
    match
      Queue.submit q ~tenant ~priority ~label
        ~run:(fun ~resume:_ ~preempt:_ ~deadline_ms:_ ~wait_us:_ ->
          order := label :: !order;
          raise Exit)
        ()
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "submit: %a" Vekt_error.pp e
  in
  let _ = submit "t" 0 "low1" in
  let _ = submit "t" 0 "low2" in
  let _ = submit "u" 5 "high" in
  drain q;
  (* strictly higher priority bypasses stride order, but tenant "t"'s
     own FIFO order is preserved *)
  Alcotest.(check (list string)) "priority first" [ "high"; "low1"; "low2" ]
    (List.rev !order)

let test_queue_quota () =
  let q = Queue.create ~quota:2 () in
  let submit () =
    Queue.submit q ~tenant:"t"
      ~run:(fun ~resume:_ ~preempt:_ ~deadline_ms:_ ~wait_us:_ -> raise Exit)
      ()
  in
  (match (submit (), submit ()) with
  | Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "first two submissions admitted");
  (match submit () with
  | Ok _ -> Alcotest.fail "third submission should be rejected"
  | Error (Vekt_error.Resource { requested; available; _ }) ->
      Alcotest.(check int) "requested" 3 requested;
      Alcotest.(check int) "available" 2 available
  | Error e -> Alcotest.failf "wrong error: %a" Vekt_error.pp e);
  drain q;
  (* slots free up once jobs finish *)
  match submit () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-drain submit: %a" Vekt_error.pp e

let test_queue_cancel () =
  let q = Queue.create () in
  let ran = ref false in
  let j =
    match
      Queue.submit q ~tenant:"t"
        ~run:(fun ~resume:_ ~preempt:_ ~deadline_ms:_ ~wait_us:_ ->
          ran := true;
          raise Exit)
        ()
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "submit: %a" Vekt_error.pp e
  in
  Alcotest.(check bool) "cancel admitted job" true (Queue.cancel q ~id:j.Queue.id);
  Alcotest.(check bool) "second cancel is a no-op" false
    (Queue.cancel q ~id:j.Queue.id);
  Alcotest.(check bool) "nothing runnable" false (Queue.step q);
  Alcotest.(check bool) "run body never executed" false !ran;
  match Queue.info q ~id:j.Queue.id with
  | Some i ->
      Alcotest.(check string) "state" "cancelled" (Queue.state_name i.Queue.i_state)
  | None -> Alcotest.fail "job vanished"

(* ---- checkpoint preemption: preempt -> resume = uninterrupted ---- *)

let test_api_preempt_resume_bit_identical () =
  let dir = Filename.concat tmpdir "api-preempt" in
  let config = { Api.default_config with Api.workers = Some 1 } in
  (* uninterrupted reference *)
  let dev0 = Api.create_device () in
  let m0 = Api.load_module ~config dev0 vecadd.Workload.src in
  let inst0 = vecadd.Workload.setup dev0 in
  let r0 =
    Api.launch m0 ~kernel:"vecadd" ~grid:inst0.Workload.grid
      ~block:inst0.Workload.block ~args:inst0.Workload.args
  in
  (* preempted run: token armed before launch, so the very first safe
     point snapshots and stops *)
  let dev1 = Api.create_device () in
  let m1 = Api.load_module ~config dev1 vecadd.Workload.src in
  let inst1 = vecadd.Workload.setup dev1 in
  let preempt = Checkpoint.preempt_token () in
  Checkpoint.request_preempt preempt;
  let snap =
    match
      Api.launch ~preempt ~ckpt_dir:dir m1 ~kernel:"vecadd"
        ~grid:inst1.Workload.grid ~block:inst1.Workload.block
        ~args:inst1.Workload.args
    with
    | _ -> Alcotest.fail "expected Checkpoint.Stop"
    | exception Checkpoint.Stop path -> path
  in
  Alcotest.(check bool) "token consumed at the safe point" false
    (Checkpoint.preempt_requested preempt);
  (* resume in a fresh session *)
  let dev2 = Api.create_device () in
  let m2 = Api.load_module ~config dev2 vecadd.Workload.src in
  let inst2 = vecadd.Workload.setup dev2 in
  let r2 =
    Api.launch ~resume:snap m2 ~kernel:"vecadd" ~grid:inst2.Workload.grid
      ~block:inst2.Workload.block ~args:inst2.Workload.args
  in
  (match inst2.Workload.check dev2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resumed: %s" e);
  Alcotest.(check bool) "preempted-then-resumed memory bit-identical" true
    (Mem.equal dev0.Api.global dev2.Api.global);
  Alcotest.(check int) "dynamic instructions preserved"
    r0.Api.stats.Stats.counters.Vekt_vm.Interp.dyn_instrs
    r2.Api.stats.Stats.counters.Vekt_vm.Interp.dyn_instrs

let test_queue_preempt_resume () =
  let dir = Filename.concat tmpdir "queue-preempt" in
  let config = { Api.default_config with Api.workers = Some 1 } in
  let dev0 = Api.create_device () in
  let m0 = Api.load_module ~config dev0 vecadd.Workload.src in
  let inst0 = vecadd.Workload.setup dev0 in
  let _ =
    Api.launch m0 ~kernel:"vecadd" ~grid:inst0.Workload.grid
      ~block:inst0.Workload.block ~args:inst0.Workload.args
  in
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev vecadd.Workload.src in
  let inst = vecadd.Workload.setup dev in
  let q = Queue.create () in
  let j =
    match
      Queue.submit q ~tenant:"t" ~label:"vecadd"
        ~run:(fun ~resume ~preempt ~deadline_ms:_ ~wait_us:_ ->
          (* first attempt preempts itself at the first safe point;
             the resumed attempt runs to completion *)
          if resume = None then Checkpoint.request_preempt preempt;
          Api.launch ~preempt ?resume ~ckpt_dir:dir m ~kernel:"vecadd"
            ~grid:inst.Workload.grid ~block:inst.Workload.block
            ~args:inst.Workload.args)
        ()
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "submit: %a" Vekt_error.pp e
  in
  Alcotest.(check bool) "first step runs the job" true (Queue.step q);
  (match Queue.info q ~id:j.Queue.id with
  | Some i ->
      Alcotest.(check string) "preempted at the safe point" "preempted"
        (Queue.state_name i.Queue.i_state);
      Alcotest.(check int) "one preemption" 1 i.Queue.i_preemptions;
      Alcotest.(check bool) "snapshot retained" true
        (Option.is_some i.Queue.i_resume_path)
  | None -> Alcotest.fail "job vanished");
  Alcotest.(check bool) "second step resumes it" true (Queue.step q);
  (match Queue.info q ~id:j.Queue.id with
  | Some i ->
      Alcotest.(check string) "done" "done" (Queue.state_name i.Queue.i_state)
  | None -> Alcotest.fail "job vanished");
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resumed: %s" e);
  Alcotest.(check bool) "preempt-mid-flight then resume is bit-identical" true
    (Mem.equal dev0.Api.global dev.Api.global)

(* ---- the protocol dispatcher, end to end ---- *)

let req fields = J.Obj fields
let cmd c fields = req (("cmd", J.Str c) :: fields)

let get_ok what (r : J.t) =
  if J.bool_mem "ok" r <> Some true then
    Alcotest.failf "%s: %s" what (J.to_string r);
  r

let get_err what (r : J.t) : string =
  if J.bool_mem "ok" r <> Some false then
    Alcotest.failf "%s: expected ok:false, got %s" what (J.to_string r);
  match Option.bind (J.mem "error" r) (J.str_mem "kind") with
  | Some kind -> kind
  | None -> Alcotest.failf "%s: malformed error %s" what (J.to_string r)

let vecadd_args = [ "f32s:1,2,3,4"; "f32s:5,6,7,8"; "zeros:16"; "i32:4" ]

let submit_vecadd srv session =
  let r =
    get_ok "submit-launch"
      (Server.handle srv
         (cmd "submit-launch"
            [
              ("session", J.Int session);
              ("module", J.Int 0);
              ("kernel", J.Str "vecadd");
              ("grid", J.Int 1);
              ("block", J.Int 4);
              ("args", J.List (List.map (fun s -> J.Str s) vecadd_args));
            ]))
  in
  let job = Option.get (J.int_mem "job" r) in
  let out_addr =
    match J.list_mem "args" r with
    | Some [ _; _; J.Int addr; _ ] -> addr
    | _ -> Alcotest.failf "submit-launch args: %s" (J.to_string r)
  in
  (job, out_addr)

let open_session srv ?quota tenant =
  let fields =
    ("tenant", J.Str tenant)
    :: (match quota with None -> [] | Some q -> [ ("quota", J.Int q) ])
  in
  let r = get_ok "open-session" (Server.handle srv (cmd "open-session" fields)) in
  Option.get (J.int_mem "session" r)

let load_vecadd srv session =
  let r =
    get_ok "load-module"
      (Server.handle srv
         (cmd "load-module"
            [
              ("session", J.Int session);
              ("src", J.Str vecadd.Workload.src);
              ( "config",
                J.Obj
                  [
                    ("tiered", J.Bool true);
                    ("hot-threshold", J.Int 1);
                    ("workers", J.Int 1);
                  ] );
            ]))
  in
  Option.get (J.int_mem "module" r)

let tenant_counter stats tenant name =
  let v =
    Option.bind (J.mem "tenants" stats) (fun t ->
        Option.bind (J.mem tenant t) (fun o ->
            Option.bind (J.mem "metrics" o) (fun m ->
                Option.bind (J.mem name m) (J.int_mem "value"))))
  in
  match v with
  | Some n -> n
  | None -> Alcotest.failf "stats: missing %s for tenant %s" name tenant

let test_server_handle_end_to_end () =
  let srv =
    Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-e2e") ()
  in
  let q = Server.queue srv in
  let r = get_ok "ping" (Server.handle srv (cmd "ping" [])) in
  Alcotest.(check (option int)) "version" (Some 1) (J.int_mem "version" r);
  (* two tenants, one engine *)
  let alice = open_session srv "alice" in
  let bob = open_session srv "bob" in
  Alcotest.(check int) "alice module id" 0 (load_vecadd srv alice);
  Alcotest.(check int) "bob module id" 0 (load_vecadd srv bob);
  (* alice pays the compilations *)
  let job_a, out_a = submit_vecadd srv alice in
  Alcotest.(check bool) "job runs" true (Queue.step q);
  let r = get_ok "poll" (Server.handle srv (cmd "poll" [ ("job", J.Int job_a) ])) in
  Alcotest.(check (option string)) "alice job done" (Some "done")
    (J.str_mem "state" r);
  Alcotest.(check bool) "result attached" true (J.mem "result" r <> None);
  let r =
    get_ok "read"
      (Server.handle srv
         (cmd "read"
            [
              ("session", J.Int alice);
              ("addr", J.Int out_a);
              ("ty", J.Str "f32");
              ("count", J.Int 4);
            ]))
  in
  Alcotest.check json "vecadd output read back"
    (J.List [ J.Float 6.0; J.Float 8.0; J.Float 10.0; J.Float 12.0 ])
    (Option.get (J.mem "values" r));
  (* bob's identical launch must be pure cache hits *)
  let job_b, _ = submit_vecadd srv bob in
  Alcotest.(check bool) "bob's job runs" true (Queue.step q);
  let r = get_ok "poll" (Server.handle srv (cmd "poll" [ ("job", J.Int job_b) ])) in
  Alcotest.(check (option string)) "bob job done" (Some "done")
    (J.str_mem "state" r);
  let stats = get_ok "stats" (Server.handle srv (cmd "stats" [])) in
  Alcotest.(check bool) "alice compiled" true
    (tenant_counter stats "alice" "jit.compiles" > 0);
  Alcotest.(check int) "bob compiled nothing" 0
    (tenant_counter stats "bob" "jit.compiles");
  Alcotest.(check bool) "bob hit the shared cache" true
    (tenant_counter stats "bob" "jit.cache_hits" > 0);
  (* free through the protocol; double free is a structured error *)
  let _ =
    get_ok "free"
      (Server.handle srv
         (cmd "free" [ ("session", J.Int alice); ("addr", J.Int out_a) ]))
  in
  Alcotest.(check string) "double free" "resource"
    (get_err "double free"
       (Server.handle srv
          (cmd "free" [ ("session", J.Int alice); ("addr", J.Int out_a) ])));
  (* malformed requests answered, not crashed on *)
  Alcotest.(check string) "unknown command" "bad-request"
    (get_err "unknown cmd" (Server.handle srv (cmd "frobnicate" [])));
  Alcotest.(check string) "unknown session" "bad-request"
    (get_err "unknown session"
       (Server.handle srv (cmd "malloc" [ ("session", J.Int 99); ("bytes", J.Int 4) ])));
  Alcotest.(check string) "parse error" "bad-request"
    (match J.of_string (Server.handle_line srv "{oops") with
    | Ok r -> get_err "parse" r
    | Error e -> Alcotest.failf "unparseable response: %s" e);
  Alcotest.(check string) "bad config key" "bad-request"
    (get_err "bad config"
       (Server.handle srv
          (cmd "load-module"
             [
               ("session", J.Int alice);
               ("src", J.Str vecadd.Workload.src);
               ("config", J.Obj [ ("no-such-knob", J.Int 1) ]);
             ])));
  (* per-tenant attribution survives session close *)
  let _ =
    get_ok "close" (Server.handle srv (cmd "close-session" [ ("session", J.Int bob) ]))
  in
  let stats = get_ok "stats" (Server.handle srv (cmd "stats" [])) in
  Alcotest.(check int) "bob's tally archived after close" 0
    (tenant_counter stats "bob" "jit.compiles")

let test_server_quota_rejection () =
  let srv =
    Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-quota") ()
  in
  let carol = open_session srv ~quota:1 "carol" in
  Alcotest.(check int) "carol module id" 0 (load_vecadd srv carol);
  let _ = submit_vecadd srv carol in
  (* quota 1: a second in-flight submission is rejected with a
     structured resource error *)
  let r =
    Server.handle srv
      (cmd "submit-launch"
         [
           ("session", J.Int carol);
           ("module", J.Int 0);
           ("kernel", J.Str "vecadd");
           ("grid", J.Int 1);
           ("block", J.Int 4);
           ("args", J.List (List.map (fun s -> J.Str s) vecadd_args));
         ])
  in
  Alcotest.(check string) "quota exceeded" "resource" (get_err "quota" r);
  while Queue.step (Server.queue srv) do
    ()
  done

(* ---- jsonx hardening: input bounds + property fuzzing ---- *)

let test_jsonx_limits () =
  let expect_error what s =
    match J.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected a structured parse error" what
    | Error _ -> ()
  in
  expect_error "overlong input" (String.make (J.max_input + 1) ' ');
  expect_error "overlong string"
    ("\"" ^ String.make (J.max_string + 1) 'a' ^ "\"");
  expect_error "too many array items"
    ("[" ^ String.concat "," (List.init (J.max_items + 1) (fun _ -> "1")) ^ "]");
  expect_error "too many object members"
    ("{"
    ^ String.concat ","
        (List.init (J.max_items + 1) (fun i -> Fmt.str "\"k%d\":1" i))
    ^ "}")

(* Random JSON documents.  Floats are kept non-integral on purpose:
   the printer renders integral floats as integer literals, which
   deliberately re-parse as Int — a normalization, not a bug. *)
let json_arb =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.return J.Null;
        Gen.map (fun b -> J.Bool b) Gen.bool;
        Gen.map (fun n -> J.Int n) Gen.small_signed_int;
        Gen.map (fun n -> J.Float (float_of_int n +. 0.5)) Gen.small_signed_int;
        Gen.map (fun s -> J.Str s) Gen.string;
      ]
  in
  let gen =
    Gen.sized (fun size ->
        Gen.fix
          (fun self n ->
            if n <= 0 then leaf
            else
              Gen.oneof
                [
                  leaf;
                  Gen.map
                    (fun l -> J.List l)
                    (Gen.list_size (Gen.int_range 0 4) (self (n / 2)));
                  Gen.map
                    (fun l -> J.Obj l)
                    (Gen.list_size (Gen.int_range 0 4)
                       (Gen.pair Gen.string (self (n / 2))));
                ])
          (min size 5))
  in
  QCheck.make ~print:J.to_string gen

let prop_jsonx_roundtrip =
  QCheck.Test.make ~count:500 ~name:"printer output always re-parses" json_arb
    (fun v ->
      match J.of_string (J.to_string v) with Ok v' -> v = v' | Error _ -> false)

let prop_jsonx_no_crash =
  QCheck.Test.make ~count:1000 ~name:"byte soup gets Error, never an exception"
    QCheck.string (fun s ->
      match J.of_string s with Ok _ | Error _ -> true)

let prop_jsonx_truncation =
  QCheck.Test.make ~count:500 ~name:"truncated documents answered with Error"
    QCheck.(pair json_arb small_nat)
    (fun (v, n) ->
      let s = J.to_string v in
      let s = String.sub s 0 (n mod (String.length s + 1)) in
      match J.of_string s with Ok _ | Error _ -> true)

(* One long-lived server shared by the dispatcher fuzzers: hostile
   requests must never crash it or wedge later requests. *)
let fuzz_server =
  lazy (Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-fuzz") ())

let prop_server_line_total =
  QCheck.Test.make ~count:300 ~name:"handle_line is total on arbitrary bytes"
    QCheck.string (fun s ->
      let srv = Lazy.force fuzz_server in
      match J.of_string (String.trim (Server.handle_line srv s)) with
      | Ok r -> Option.is_some (J.bool_mem "ok" r)
      | Error _ -> false)

let prop_server_hostile_requests =
  QCheck.Test.make ~count:300
    ~name:"handle answers hostile well-formed requests"
    QCheck.(
      pair
        (oneofl
           [
             "ping"; "open-session"; "close-session"; "load-module"; "malloc";
             "free"; "reset-arena"; "write"; "read"; "submit-launch"; "poll";
             "cancel"; "stats";
           ])
        json_arb)
    (fun (c, v) ->
      let srv = Lazy.force fuzz_server in
      let fields = match v with J.Obj kvs -> kvs | v -> [ ("x", v) ] in
      let resp = Server.handle srv (J.Obj (("cmd", J.Str c) :: fields)) in
      Option.is_some (J.bool_mem "ok" resp))

(* ---- deadlines: queued expiry and running kill ---- *)

let test_queue_deadline_expiry () =
  let q = Queue.create () in
  let cleaned = ref 0 in
  let ran = ref false in
  let j =
    match
      Queue.submit q ~tenant:"t" ~label:"patience" ~deadline_ms:1
        ~cleanup:(fun () -> incr cleaned)
        ~run:(fun ~resume:_ ~preempt:_ ~deadline_ms:_ ~wait_us:_ ->
          ran := true;
          raise Exit)
        ()
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "submit: %a" Vekt_error.pp e
  in
  Unix.sleepf 0.005;
  Alcotest.(check int) "tick expires one job" 1 (Queue.tick q);
  Alcotest.(check bool) "nothing left to run" false (Queue.step q);
  Alcotest.(check bool) "body never ran" false !ran;
  Alcotest.(check int) "cleanup fired once" 1 !cleaned;
  (match Queue.info q ~id:j.Queue.id with
  | Some i -> (
      match i.Queue.i_state with
      | Queue.Done
          (Queue.Failed (Vekt_error.Deadline { deadline_ms; elapsed_ms; _ })) ->
          Alcotest.(check int) "budget recorded" 1 deadline_ms;
          Alcotest.(check bool) "elapsed counted" true (elapsed_ms >= 1)
      | _ -> Alcotest.fail "expected a structured Deadline failure")
  | None -> Alcotest.fail "job vanished");
  let reg = Obs.Metrics.create () in
  Queue.metrics_into q reg;
  Alcotest.(check int) "queue.expired counted" 1
    !(Obs.Metrics.counter reg "queue.expired")

let test_queue_running_deadline_kill () =
  let dir = Filename.concat tmpdir "deadline-kill" in
  let config = { Api.default_config with Api.workers = Some 1 } in
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev vecadd.Workload.src in
  let inst = vecadd.Workload.setup dev in
  let q = Queue.create () in
  let j =
    match
      Queue.submit q ~tenant:"t" ~label:"vecadd"
        ~run:(fun ~resume ~preempt ~deadline_ms:_ ~wait_us:_ ->
          (* a zero budget has lapsed by the launch's first safe point,
             so the kill path runs deterministically *)
          Api.launch ~preempt ?resume ~ckpt_dir:dir ~deadline_ms:0 m
            ~kernel:"vecadd" ~grid:inst.Workload.grid
            ~block:inst.Workload.block ~args:inst.Workload.args)
        ()
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "submit: %a" Vekt_error.pp e
  in
  Alcotest.(check bool) "job runs" true (Queue.step q);
  (match Queue.info q ~id:j.Queue.id with
  | Some i -> (
      Alcotest.(check string) "killed" "failed"
        (Queue.state_name i.Queue.i_state);
      match i.Queue.i_state with
      | Queue.Done
          (Queue.Failed (Vekt_error.Deadline { deadline_ms; snapshot; _ })) ->
          Alcotest.(check int) "budget recorded" 0 deadline_ms;
          Alcotest.(check bool) "partial snapshot named in the error" true
            (Option.is_some snapshot)
      | _ -> Alcotest.fail "expected a structured Deadline failure")
  | None -> Alcotest.fail "job vanished");
  let reg = Obs.Metrics.create () in
  Queue.metrics_into q reg;
  Alcotest.(check int) "deadline kill counted" 1
    !(Obs.Metrics.counter reg "queue.deadline_kills")

let submit_vecadd_fields srv session extra =
  Server.handle srv
    (cmd "submit-launch"
       ([
          ("session", J.Int session);
          ("module", J.Int 0);
          ("kernel", J.Str "vecadd");
          ("grid", J.Int 1);
          ("block", J.Int 4);
          ("args", J.List (List.map (fun s -> J.Str s) vecadd_args));
        ]
       @ extra))

let engine_counter stats name =
  match
    Option.bind (J.mem "engine" stats) (fun e ->
        Option.bind (J.mem name e) (J.int_mem "value"))
  with
  | Some n -> n
  | None -> Alcotest.failf "stats: missing engine counter %s" name

let test_server_deadline_over_protocol () =
  let srv =
    Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-deadline") ()
  in
  let s = open_session srv "dl" in
  let _ = load_vecadd srv s in
  (* per-request deadline: the job expires in queue, never runs, and
     poll carries the structured error with its budget arithmetic *)
  let r =
    get_ok "submit-launch"
      (submit_vecadd_fields srv s [ ("deadline-ms", J.Int 1) ])
  in
  let job = Option.get (J.int_mem "job" r) in
  Unix.sleepf 0.005;
  Alcotest.(check int) "tick expires it" 1 (Queue.tick (Server.queue srv));
  let r = get_ok "poll" (Server.handle srv (cmd "poll" [ ("job", J.Int job) ])) in
  Alcotest.(check (option string)) "failed" (Some "failed") (J.str_mem "state" r);
  let err = Option.get (J.mem "error" r) in
  Alcotest.(check (option string)) "structured kind" (Some "deadline")
    (J.str_mem "kind" err);
  Alcotest.(check (option int)) "budget in extras" (Some 1)
    (J.int_mem "deadline_ms" err);
  Alcotest.(check bool) "elapsed in extras" true
    (match J.int_mem "elapsed_ms" err with Some n -> n >= 1 | None -> false);
  (* per-tenant default deadline applies to submits that carry none *)
  let s2 =
    let r =
      get_ok "open-session"
        (Server.handle srv
           (cmd "open-session"
              [ ("tenant", J.Str "dl2"); ("deadline-ms", J.Int 1) ]))
    in
    Option.get (J.int_mem "session" r)
  in
  let _ = load_vecadd srv s2 in
  let r = get_ok "submit-launch" (submit_vecadd_fields srv s2 []) in
  let job2 = Option.get (J.int_mem "job" r) in
  Unix.sleepf 0.005;
  Alcotest.(check int) "default deadline expires it" 1
    (Queue.tick (Server.queue srv));
  let r =
    get_ok "poll" (Server.handle srv (cmd "poll" [ ("job", J.Int job2) ]))
  in
  Alcotest.(check (option string)) "tenant default enforced" (Some "deadline")
    (Option.bind (J.mem "error" r) (J.str_mem "kind"))

(* ---- overload control: shedding, hysteresis, idempotent retries ---- *)

let test_queue_shedding () =
  let q = Queue.create ~high_watermark:3 ~low_watermark:1 () in
  let submit ?(priority = 0) () =
    Queue.submit q ~tenant:"t" ~priority
      ~run:(fun ~resume:_ ~preempt:_ ~deadline_ms:_ ~wait_us:_ -> raise Exit)
      ()
  in
  for i = 1 to 3 do
    match submit () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "submit %d: %a" i Vekt_error.pp e
  done;
  (* at the high watermark: same-priority submits are shed with a
     machine-actionable retry hint *)
  (match submit () with
  | Ok _ -> Alcotest.fail "submit above the high watermark admitted"
  | Error (Vekt_error.Overloaded { queued; limit; retry_after_ms }) ->
      Alcotest.(check int) "queued depth" 3 queued;
      Alcotest.(check int) "limit is the high watermark" 3 limit;
      Alcotest.(check bool) "retry hint clamped sane" true
        (retry_after_ms >= 10 && retry_after_ms <= 30_000)
  | Error e -> Alcotest.failf "wrong error: %a" Vekt_error.pp e);
  (* strictly higher priority still cuts through the shed *)
  (match submit ~priority:5 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "priority bypass: %a" Vekt_error.pp e);
  let reg = Obs.Metrics.create () in
  Queue.metrics_into q reg;
  Alcotest.(check int) "one shed counted" 1 !(Obs.Metrics.counter reg "queue.shed");
  Alcotest.(check (float 0.0)) "shedding gauge up" 1.0
    !(Obs.Metrics.gauge reg "queue.shedding");
  (* hysteresis: draining below the low watermark re-opens admission *)
  drain q;
  match submit () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-drain submit still shed: %a" Vekt_error.pp e

let test_server_idempotent_retry () =
  let srv = Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-idem") () in
  let s = open_session srv "ida" in
  let _ = load_vecadd srv s in
  let submit () =
    get_ok "submit-launch"
      (submit_vecadd_fields srv s [ ("idempotency-key", J.Str "retry-1") ])
  in
  let r1 = submit () in
  let r2 = submit () in
  Alcotest.check json "retry replays the original admission verbatim" r1 r2;
  Alcotest.(check bool) "exactly one job admitted" true
    (Queue.step (Server.queue srv));
  Alcotest.(check bool) "no double launch" false (Queue.step (Server.queue srv));
  let stats = get_ok "stats" (Server.handle srv (cmd "stats" [])) in
  Alcotest.(check int) "dedup hit counted" 1
    (engine_counter stats "server.dedup_hits");
  (* a different key is a different request *)
  let r3 =
    get_ok "submit-launch"
      (submit_vecadd_fields srv s [ ("idempotency-key", J.Str "retry-2") ])
  in
  Alcotest.(check bool) "fresh key admits a fresh job" true
    (J.int_mem "job" r3 <> J.int_mem "job" r1);
  drain (Server.queue srv)

(* ---- dead-tenant reaping: the eviction gap closes ---- *)

let test_server_reap_idle () =
  let srv =
    Server.create
      ~ckpt_dir:(Filename.concat tmpdir "srv-reap")
      ~session_ttl_s:0.005 ~archive_cap:2 ()
  in
  let baseline = Server.total_allocated_bytes srv in
  let tenants = [ "t0"; "t1"; "t2"; "t3" ] in
  List.iter
    (fun tn ->
      let s = open_session srv tn in
      let _ = load_vecadd srv s in
      let _ =
        get_ok "malloc"
          (Server.handle srv
             (cmd "malloc" [ ("session", J.Int s); ("bytes", J.Int 4096) ]))
      in
      ())
    tenants;
  Alcotest.(check bool) "abandoned sessions hold arena bytes" true
    (Server.total_allocated_bytes srv > baseline);
  Unix.sleepf 0.02;
  Alcotest.(check int) "all four idle sessions reaped" 4 (Server.reap_idle srv);
  Alcotest.(check int) "arena bytes returned to baseline" baseline
    (Server.total_allocated_bytes srv);
  Alcotest.(check int) "reaping is idempotent" 0 (Server.reap_idle srv);
  let stats = get_ok "stats" (Server.handle srv (cmd "stats" [])) in
  Alcotest.(check int) "server.reaped counted" 4
    (engine_counter stats "server.reaped");
  Alcotest.(check int) "cold archives evicted" 2
    (engine_counter stats "server.archive_evicted");
  (* the archive is LRU-bounded: only archive_cap tenants survive *)
  match J.mem "tenants" stats with
  | Some (J.Obj kvs) ->
      Alcotest.(check int) "archive LRU-bounded" 2 (List.length kvs)
  | _ -> Alcotest.fail "stats: missing tenants"

(* ---- restart recovery: kill mid-launch, resume bit-identical ---- *)

let test_server_restart_recovery () =
  (* uninterrupted reference *)
  let srv0 = Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-ref") () in
  let s0 = open_session srv0 "ref" in
  let _ = load_vecadd srv0 s0 in
  let job0, out0 = submit_vecadd srv0 s0 in
  Alcotest.(check bool) "reference runs" true (Queue.step (Server.queue srv0));
  let read_values srv session addr =
    let r =
      get_ok "read"
        (Server.handle srv
           (cmd "read"
              [
                ("session", J.Int session);
                ("addr", J.Int addr);
                ("ty", J.Str "f32");
                ("count", J.Int 4);
              ]))
    in
    Option.get (J.mem "values" r)
  in
  let reference = read_values srv0 s0 out0 in
  ignore job0;
  (* predecessor: admit a launch, force a mid-flight snapshot, then
     "die" — no shutdown, no cleanup, exactly like kill -9 *)
  let ckpt = Filename.concat tmpdir "srv-crash" in
  let srv1 = Server.create ~ckpt_dir:ckpt () in
  let s1 = open_session srv1 "crash-tenant" in
  let _ = load_vecadd srv1 s1 in
  let job1, out1 = submit_vecadd srv1 s1 in
  Queue.request_preempt (Server.queue srv1) ~id:job1;
  Alcotest.(check bool) "first step snapshots and yields" true
    (Queue.step (Server.queue srv1));
  (match Queue.info (Server.queue srv1) ~id:job1 with
  | Some i ->
      Alcotest.(check string) "preempted mid-flight" "preempted"
        (Queue.state_name i.Queue.i_state);
      Alcotest.(check bool) "snapshot on disk" true
        (Option.is_some i.Queue.i_resume_path)
  | None -> Alcotest.fail "job vanished");
  (* successor on the same checkpoint root: recovery runs at create *)
  let srv2 = Server.create ~ckpt_dir:ckpt () in
  let recs = Server.recovered srv2 in
  Alcotest.(check int) "one launch recovered" 1 (List.length recs);
  let rc = List.hd recs in
  Alcotest.(check string) "re-admitted under its original tenant"
    "crash-tenant" rc.Server.r_tenant;
  drain (Server.queue srv2);
  let r =
    get_ok "poll"
      (Server.handle srv2 (cmd "poll" [ ("job", J.Int rc.Server.r_job) ]))
  in
  Alcotest.(check (option string)) "recovered launch completed" (Some "done")
    (J.str_mem "state" r);
  (* the snapshot's memory image puts the output at the address the
     dead predecessor handed its client *)
  Alcotest.check json "crash + restart + resume is bit-identical" reference
    (read_values srv2 rc.Server.r_session out1);
  let stats = get_ok "stats" (Server.handle srv2 (cmd "stats" [])) in
  Alcotest.(check int) "recovery counted" 1
    (engine_counter stats "server.recovered_launches")

let test_server_tally_journal () =
  let ckpt = Filename.concat tmpdir "srv-journal" in
  let srv1 = Server.create ~ckpt_dir:ckpt () in
  let s = open_session srv1 "dana" in
  let _ = load_vecadd srv1 s in
  let _ = submit_vecadd srv1 s in
  Alcotest.(check bool) "launch runs" true (Queue.step (Server.queue srv1));
  let _ =
    get_ok "close"
      (Server.handle srv1 (cmd "close-session" [ ("session", J.Int s) ]))
  in
  Alcotest.(check bool) "archiving left compiles on the books" true
    (let stats = get_ok "stats" (Server.handle srv1 (cmd "stats" [])) in
     tenant_counter stats "dana" "jit.compiles" > 0);
  (* crash (no shutdown): the journal in the checkpoint root survives
     and the successor restores per-tenant attribution from it *)
  let srv2 = Server.create ~ckpt_dir:ckpt () in
  let stats = get_ok "stats" (Server.handle srv2 (cmd "stats" [])) in
  Alcotest.(check bool) "dana's compile tally survives the restart" true
    (tenant_counter stats "dana" "jit.compiles" > 0)

(* ---- transport: stale-socket reclaim and the read deadline ---- *)

let test_serve_transport_robustness () =
  let sock = Filename.concat tmpdir "slow.sock" in
  (* a dead predecessor's socket file: serve must probe and reclaim it *)
  (let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
   (try Unix.bind fd (Unix.ADDR_UNIX sock) with Unix.Unix_error _ -> ());
   Unix.close fd);
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists sock);
  let srv = Server.create ~ckpt_dir:(Filename.concat tmpdir "srv-slow") () in
  let d =
    Domain.spawn (fun () -> Server.serve srv ~read_deadline_s:0.2 ~socket:sock ())
  in
  let connect () =
    let rec go n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> fd
      | exception Unix.Unix_error _ ->
          Unix.close fd;
          if n = 0 then Alcotest.fail "daemon never came up";
          Unix.sleepf 0.05;
          go (n - 1)
    in
    go 100
  in
  let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let recv_line fd =
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
    let b = Buffer.create 64 in
    let buf = Bytes.create 1 in
    let rec go () =
      match Unix.read fd buf 0 1 with
      | 0 -> `Eof
      | _ ->
          if Bytes.get buf 0 = '\n' then `Line (Buffer.contents b)
          else begin
            Buffer.add_char b (Bytes.get buf 0);
            go ()
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Alcotest.fail "timed out waiting for the daemon"
    in
    go ()
  in
  let fd = connect () in
  send fd "{\"cmd\":\"ping\"}\n";
  (match recv_line fd with
  | `Line l -> (
      match J.of_string l with
      | Ok r ->
          Alcotest.(check (option bool)) "ping ok" (Some true) (J.bool_mem "ok" r)
      | Error e -> Alcotest.failf "ping response: %s" e)
  | `Eof -> Alcotest.fail "connection closed on ping");
  (* stall mid-line: the read deadline must hang up on us *)
  send fd "{\"cmd\":\"pi";
  (match recv_line fd with
  | `Eof -> ()
  | `Line l -> Alcotest.failf "expected hang-up, got %s" l);
  Unix.close fd;
  (* ...without wedging service for anyone else *)
  let fd2 = connect () in
  send fd2 "{\"cmd\":\"ping\"}\n";
  (match recv_line fd2 with
  | `Line _ -> ()
  | `Eof -> Alcotest.fail "daemon wedged by the stalled client");
  send fd2 "{\"cmd\":\"shutdown\"}\n";
  (match recv_line fd2 with `Line _ | `Eof -> ());
  Unix.close fd2;
  Domain.join d;
  Alcotest.(check bool) "socket path unlinked at shutdown" false
    (Sys.file_exists sock)

let () =
  Alcotest.run "server"
    [
      ( "jsonx",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "parse" `Quick test_jsonx_parse;
          Alcotest.test_case "accessors" `Quick test_jsonx_accessors;
        ] );
      ( "config-spec",
        [ Alcotest.test_case "config_of_spec" `Quick test_config_of_spec ] );
      ( "allocator",
        [
          Alcotest.test_case "free-list reuse" `Quick test_malloc_free_reuse;
          Alcotest.test_case "coalescing" `Quick test_malloc_coalesce;
          Alcotest.test_case "structured errors" `Quick test_malloc_errors;
          Alcotest.test_case "reset arena" `Quick test_reset_arena;
        ] );
      ( "metrics",
        [ Alcotest.test_case "merge_into" `Quick test_metrics_merge ] );
      ( "engine",
        [
          Alcotest.test_case "cross-session cache sharing" `Quick
            test_engine_cache_sharing;
          Alcotest.test_case "private engines do not share" `Quick
            test_engine_private_without_sharing;
          Alcotest.test_case "concurrent sessions differential" `Quick
            test_concurrent_sessions_differential;
        ] );
      ( "queue",
        [
          Alcotest.test_case "weighted fairness" `Quick test_queue_fairness;
          Alcotest.test_case "priority bypass" `Quick test_queue_priority;
          Alcotest.test_case "quota rejection" `Quick test_queue_quota;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
        ] );
      ( "preemption",
        [
          Alcotest.test_case "api preempt/resume bit-identical" `Quick
            test_api_preempt_resume_bit_identical;
          Alcotest.test_case "queue preempt mid-flight" `Quick
            test_queue_preempt_resume;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "handle end-to-end" `Quick
            test_server_handle_end_to_end;
          Alcotest.test_case "quota rejection over protocol" `Quick
            test_server_quota_rejection;
        ] );
      ( "jsonx-hardening",
        [
          Alcotest.test_case "input bounds" `Quick test_jsonx_limits;
          QCheck_alcotest.to_alcotest prop_jsonx_roundtrip;
          QCheck_alcotest.to_alcotest prop_jsonx_no_crash;
          QCheck_alcotest.to_alcotest prop_jsonx_truncation;
          QCheck_alcotest.to_alcotest prop_server_line_total;
          QCheck_alcotest.to_alcotest prop_server_hostile_requests;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "queued job expires unrun" `Quick
            test_queue_deadline_expiry;
          Alcotest.test_case "running launch killed at safe point" `Quick
            test_queue_running_deadline_kill;
          Alcotest.test_case "structured deadline over protocol" `Quick
            test_server_deadline_over_protocol;
        ] );
      ( "overload",
        [
          Alcotest.test_case "watermark shedding + hysteresis" `Quick
            test_queue_shedding;
          Alcotest.test_case "idempotent retries" `Quick
            test_server_idempotent_retry;
        ] );
      ( "crash-only",
        [
          Alcotest.test_case "reaping closes the eviction gap" `Quick
            test_server_reap_idle;
          Alcotest.test_case "restart recovery bit-identical" `Quick
            test_server_restart_recovery;
          Alcotest.test_case "tally journal survives restart" `Quick
            test_server_tally_journal;
          Alcotest.test_case "stalled client + stale socket" `Quick
            test_serve_transport_robustness;
        ] );
    ]
