(* Tests for the PTX frontend: lexer, parser, printer round-trip, type
   checker, CFG construction and the reference emulator. *)

open Vekt_ptx

let vecadd_src =
  {|
.entry vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %r4, %n;
  .reg .u64 %rd1, %rd2, %rd3, %rd4, %off;
  .reg .f32 %f1, %f2, %f3;
  .reg .pred %p1;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %r4, %r2, %r3, %r1;     // global thread index
  ld.param.u32 %n, [n];
  setp.ge.u32 %p1, %r4, %n;
  @%p1 bra DONE;

  cvt.u64.u32 %off, %r4;
  shl.b64 %off, %off, 2;
  ld.param.u64 %rd1, [a];
  ld.param.u64 %rd2, [b];
  ld.param.u64 %rd3, [c];
  add.u64 %rd1, %rd1, %off;
  add.u64 %rd2, %rd2, %off;
  add.u64 %rd4, %rd3, %off;
  ld.global.f32 %f1, [%rd1];
  ld.global.f32 %f2, [%rd2];
  add.f32 %f3, %f1, %f2;
  st.global.f32 [%rd4], %f3;

DONE:
  exit;
}
|}

let check_no_type_errors m =
  match Typecheck.check_module m with
  | [] -> ()
  | errs ->
      Alcotest.failf "type errors: %a" (Fmt.list ~sep:Fmt.comma Typecheck.pp_error) errs

(* --- Lexer --- *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "add.f32 %f1, %f2, 0f3f800000; // cmt" in
  let kinds = List.map fst toks in
  Alcotest.(check int) "token count" 8 (List.length kinds);
  (match kinds with
  | [ Ident "add.f32"; Ident "%f1"; Comma; Ident "%f2"; Comma; Float f; Semi; Eof ] ->
      Alcotest.(check (float 0.0)) "hex float" 1.0 f
  | _ -> Alcotest.fail "unexpected token stream")

let test_lexer_numbers () =
  let one tok src =
    match Lexer.tokenize src with
    | [ (t, _); (Lexer.Eof, _) ] -> Alcotest.(check bool) src true (t = tok)
    | _ -> Alcotest.failf "bad lex of %s" src
  in
  one (Lexer.Int 42L) "42";
  one (Lexer.Int 255L) "0xff";
  one (Lexer.Float 2.5) "2.5";
  one (Lexer.Float 1e3) "1e3";
  one (Lexer.Float 1.5e-3) "1.5e-3";
  one (Lexer.Float 1.0) "0f3F800000";
  one (Lexer.Float 1.0) "0d3FF0000000000000"

let test_lexer_comments () =
  let toks = Lexer.tokenize "/* block\ncomment */ mov.u32 // line\n %r1" in
  Alcotest.(check int) "tokens" 3 (List.length toks)

let test_lexer_error () =
  Alcotest.check_raises "bad char"
    (Lexer.Error ("unexpected character '#'", 1))
    (fun () -> ignore (Lexer.tokenize "#"))

(* --- Parser --- *)

let test_parse_vecadd () =
  let m = Parser.parse_module vecadd_src in
  Alcotest.(check int) "one kernel" 1 (List.length m.Ast.m_kernels);
  let k = List.hd m.Ast.m_kernels in
  Alcotest.(check string) "name" "vecadd" k.Ast.k_name;
  Alcotest.(check int) "params" 4 (List.length k.Ast.k_params);
  Alcotest.(check int) "regs" 14 (List.length k.Ast.k_regs);
  check_no_type_errors m

let test_parse_guard () =
  let k =
    Parser.parse_kernel_exn
      {|.entry g () { .reg .pred %p; .reg .u32 %r; @!%p add.u32 %r, %r, 1; exit; }|}
  in
  match k.Ast.k_body with
  | [ Ast.Inst (Ast.Ifnot "%p", Ast.Binary (Ast.Add, Ast.U32, "%r", _, _), _); _ ] -> ()
  | _ -> Alcotest.fail "guard not parsed"

let test_parse_shared_local () =
  let k =
    Parser.parse_kernel_exn
      {|.entry s ()
        { .shared .f32 tile[128]; .local .u32 scratch[4]; .reg .u64 %a;
          mov.u64 %a, tile; exit; }|}
  in
  Alcotest.(check int) "shared" 1 (List.length k.Ast.k_shared);
  Alcotest.(check int) "local" 1 (List.length k.Ast.k_local);
  match k.Ast.k_body with
  | [ Ast.Inst (_, Ast.Mov (_, _, Ast.Var "tile"), _); _ ] -> ()
  | _ -> Alcotest.fail "address-of shared not parsed as Var"

let test_parse_const () =
  let m =
    Parser.parse_module
      {|.const .f32 coeffs[4] = { 1.0, 2.0, 3.0, 4.0 };
        .entry k () { exit; }|}
  in
  match m.Ast.m_consts with
  | [ { Ast.c_decl = { a_name = "coeffs"; a_elems = 4; _ }; c_init = Some (Ast.Init_float fs) } ]
    ->
      Alcotest.(check int) "init count" 4 (List.length fs)
  | _ -> Alcotest.fail "const decl not parsed"

(* typecheck helper used by the .func tests below *)
let tc_errors_fwd src = Typecheck.check_module (Parser.parse_module src)

let func_src =
  {|
.func (.reg .f32 %out) axpy (.reg .f32 %a, .reg .f32 %x, .reg .f32 %y)
{
  fma.rn.f32 %out, %a, %x, %y;
  ret;
}

.entry k (.param .u64 p)
{
  .reg .f32 %r, %v;
  .reg .u64 %po;
  mov.f32 %v, 3.0;
  call (%r), axpy, (2.0, %v, 1.0);
  call (%r), axpy, (%r, %r, %r);
  ld.param.u64 %po, [p];
  st.global.f32 [%po], %r;
  exit;
}
|}

let test_parse_func_and_call () =
  let m = Parser.parse_module func_src in
  Alcotest.(check int) "one func" 1 (List.length m.Ast.m_funcs);
  check_no_type_errors m;
  let f = List.hd m.Ast.m_funcs in
  Alcotest.(check int) "rets" 1 (List.length f.Ast.f_rets);
  Alcotest.(check int) "params" 3 (List.length f.Ast.f_params);
  (* and it round-trips through the printer *)
  Alcotest.(check bool) "roundtrip" true
    (Ast.equal_modul m (Parser.parse_module (Printer.to_string m)))

let test_call_undefined_func () =
  Alcotest.(check bool) "undefined callee flagged" true
    (tc_errors_fwd {|.entry k () { .reg .u32 %r; call (%r), nope, (%r); exit; }|} <> [])

let test_func_barrier_rejected () =
  Alcotest.(check bool) "barrier in .func flagged" true
    (tc_errors_fwd
       {|.func f () { bar.sync 0; ret; }
         .entry k () { call f; exit; }|}
    <> [])

let test_inline_semantics () =
  (* axpy(2, 3, 1) = 7; axpy(7,7,7) = 56 *)
  let m = Parser.parse_module func_src in
  let global = Mem.create 4 in
  ignore
    (Emulator.run m ~kernel:"k" ~args:[ Launch.Ptr 0 ] ~global ~grid:(Launch.dim3 1)
       ~block:(Launch.dim3 1));
  Alcotest.(check (float 0.0)) "nested result" 56.0 (Mem.read_f32 global 0)

let test_inline_recursion_rejected () =
  let m =
    Parser.parse_module
      {|.func f (.reg .u32 %x) { call f, (%x); ret; }
        .entry k () { .reg .u32 %r; call f, (%r); exit; }|}
  in
  Alcotest.(check bool) "recursion rejected" true
    (try
       ignore (Inline.expand m (List.hd m.Ast.m_kernels));
       false
     with Inline.Error _ -> true)

let test_inline_divergent_call_sites () =
  (* functions called under divergent control flow: inlining must preserve
     per-thread semantics *)
  let src =
    {|
.func (.reg .u32 %r) double_or_inc (.reg .u32 %v, .reg .u32 %sel)
{
  .reg .pred %p;
  setp.eq.u32 %p, %sel, 0;
  @%p bra DBL;
  add.u32 %r, %v, 1;
  ret;
DBL:
  shl.b32 %r, %v, 1;
  ret;
}

.entry k (.param .u64 p)
{
  .reg .u32 %tid, %sel, %out;
  .reg .u64 %po, %off;
  mov.u32 %tid, %tid.x;
  and.b32 %sel, %tid, 1;
  call (%out), double_or_inc, (%tid, %sel);
  ld.param.u64 %po, [p];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %out;
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  check_no_type_errors m;
  let global = Mem.create 64 in
  ignore
    (Emulator.run m ~kernel:"k" ~args:[ Launch.Ptr 0 ] ~global ~grid:(Launch.dim3 1)
       ~block:(Launch.dim3 16));
  let expected = List.init 16 (fun t -> if t land 1 = 0 then t * 2 else t + 1) in
  Alcotest.(check (list int)) "per-thread" expected (Mem.read_i32s global ~at:0 16)

let test_parse_atom () =
  let k =
    Parser.parse_kernel_exn
      {|.entry a (.param .u64 p)
        { .reg .u32 %old, %v; .reg .u64 %addr; ld.param.u64 %addr, [p];
          atom.global.add.u32 %old, [%addr], %v; exit; }|}
  in
  match k.Ast.k_body with
  | [ _; Ast.Inst (_, Ast.Atom (Ast.Global, Ast.Atom_add, Ast.U32, "%old", _, _, None), _); _ ]
    ->
      ()
  | _ -> Alcotest.fail "atom not parsed"

let test_parse_error_line () =
  match Parser.parse_module ".entry k (\n) {\n  bogus.u32 %r;\n}" with
  | exception Parser.Error (_, line) -> Alcotest.(check int) "error line" 3 line
  | _ -> Alcotest.fail "expected parse error"

(* --- Printer round-trip --- *)

let test_roundtrip_vecadd () =
  let m = Parser.parse_module vecadd_src in
  let printed = Printer.to_string m in
  let m' = Parser.parse_module printed in
  Alcotest.(check bool) "roundtrip equal" true (Ast.equal_modul m m')

(* --- Typecheck --- *)

let tc_errors src = Typecheck.check_module (Parser.parse_module src)

let test_tc_undeclared_reg () =
  Alcotest.(check bool) "undeclared" true
    (tc_errors {|.entry k () { .reg .u32 %a; add.u32 %a, %a, %b; exit; }|} <> [])

let test_tc_width_mismatch () =
  Alcotest.(check bool) "width mismatch" true
    (tc_errors {|.entry k () { .reg .u32 %a; .reg .u64 %b; add.u32 %a, %a, %b; exit; }|}
    <> [])

let test_tc_b32_compatible () =
  Alcotest.(check int) "b32 as s32 ok" 0
    (List.length (tc_errors {|.entry k () { .reg .b32 %a; add.s32 %a, %a, 1; exit; }|}))

let test_tc_pred_in_arith () =
  Alcotest.(check bool) "pred arith" true
    (tc_errors {|.entry k () { .reg .pred %p; add.pred %p, %p, %p; exit; }|} <> [])

let test_tc_bad_branch () =
  Alcotest.(check bool) "bad branch" true
    (tc_errors {|.entry k () { bra NOWHERE; exit; }|} <> [])

let test_tc_dup_label () =
  Alcotest.(check bool) "dup label" true
    (tc_errors {|.entry k () { L: exit; L: exit; }|} <> [])

let test_tc_store_to_param () =
  Alcotest.(check bool) "store to param" true
    (tc_errors
       {|.entry k (.param .u32 n) { .reg .u32 %r; st.param.u32 [n], %r; exit; }|}
    <> [])

let test_tc_float_bitwise () =
  Alcotest.(check bool) "float and" true
    (tc_errors {|.entry k () { .reg .f32 %f; and.f32 %f, %f, %f; exit; }|} <> [])

let test_tc_clean_vecadd () =
  Alcotest.(check int) "vecadd clean" 0 (List.length (tc_errors vecadd_src))

(* --- CFG --- *)

let test_cfg_blocks () =
  let k = Parser.parse_kernel_exn vecadd_src in
  let cfg = Cfg.of_kernel k in
  (* entry block, fallthrough block, DONE *)
  Alcotest.(check int) "block count" 3 (List.length cfg.Cfg.blocks);
  let entry = Cfg.find_block cfg cfg.Cfg.entry in
  match entry.Cfg.term with
  | Cfg.Cbr ("%p1", true, "DONE", ft) ->
      let ftb = Cfg.find_block cfg ft in
      Alcotest.(check (list string)) "ft successors" [ "DONE" ] (Cfg.successors ftb)
  | _ -> Alcotest.fail "entry should end in cbr to DONE"

let test_cfg_barrier_splits () =
  let k =
    Parser.parse_kernel_exn
      {|.entry b () { .reg .u32 %r; add.u32 %r, %r, 1; bar.sync 0; add.u32 %r, %r, 2; exit; }|}
  in
  let cfg = Cfg.of_kernel k in
  Alcotest.(check int) "blocks" 2 (List.length cfg.Cfg.blocks);
  match (List.hd cfg.Cfg.blocks).Cfg.term with
  | Cfg.Bar_then _ -> ()
  | _ -> Alcotest.fail "barrier should terminate the block"

let test_cfg_guarded_exit () =
  let k =
    Parser.parse_kernel_exn
      {|.entry e () { .reg .pred %p; .reg .u32 %r; @%p exit; add.u32 %r, %r, 1; exit; }|}
  in
  let cfg = Cfg.of_kernel k in
  let entry = Cfg.find_block cfg cfg.Cfg.entry in
  match entry.Cfg.term with
  | Cfg.Cbr (_, true, stub, _) ->
      let sb = Cfg.find_block cfg stub in
      Alcotest.(check bool) "stub exits" true (sb.Cfg.term = Cfg.Exit_term)
  | _ -> Alcotest.fail "guarded exit should become cbr to exit stub"

let test_cfg_roundtrip_body () =
  let k = Parser.parse_kernel_exn vecadd_src in
  let cfg = Cfg.of_kernel k in
  let k2 = { k with Ast.k_body = Cfg.to_body cfg } in
  (* Rebuilt body must still typecheck and produce an equivalent CFG. *)
  (match Typecheck.check_kernel k2 with
  | [] -> ()
  | e :: _ -> Alcotest.failf "rebuilt kernel: %a" Typecheck.pp_error e);
  let cfg2 = Cfg.of_kernel k2 in
  Alcotest.(check int) "same block count"
    (List.length cfg.Cfg.blocks)
    (List.length cfg2.Cfg.blocks)

let test_cfg_rpo () =
  let k = Parser.parse_kernel_exn vecadd_src in
  let cfg = Cfg.of_kernel k in
  let rpo = Cfg.reverse_postorder cfg in
  Alcotest.(check string) "entry first" cfg.Cfg.entry (List.hd rpo).Cfg.label

(* --- Emulator --- *)

let run_vecadd n =
  let m = Parser.parse_module vecadd_src in
  let global = Mem.create (3 * 4 * n) in
  let a_base = 0 and b_base = 4 * n and c_base = 8 * n in
  Mem.write_f32s global ~at:a_base (List.init n float_of_int);
  Mem.write_f32s global ~at:b_base (List.init n (fun i -> float_of_int (10 * i)));
  let block = 64 in
  let grid = (n + block - 1) / block in
  ignore
    (Emulator.run m ~kernel:"vecadd"
       ~args:[ Launch.Ptr a_base; Launch.Ptr b_base; Launch.Ptr c_base; Launch.I32 n ]
       ~global ~grid:(Launch.dim3 grid) ~block:(Launch.dim3 block));
  Mem.read_f32s global ~at:c_base n

let test_emu_vecadd () =
  let n = 100 in
  let out = run_vecadd n in
  List.iteri
    (fun i v -> Alcotest.(check (float 0.0)) (Fmt.str "c[%d]" i) (float_of_int (11 * i)) v)
    out

let test_emu_vecadd_nonmultiple () =
  (* n not a multiple of the block size: the guard must keep extra threads
     from faulting. *)
  let out = run_vecadd 37 in
  Alcotest.(check int) "length" 37 (List.length out)

let test_emu_barrier_reduction () =
  (* Tree reduction over shared memory: hard dependency on barrier order. *)
  let src =
    {|
.entry reduce (.param .u64 inp, .param .u64 outp)
{
  .reg .u32 %tid, %i, %half;
  .reg .u64 %in, %out, %addr, %off, %saddr;
  .reg .f32 %a, %b;
  .reg .pred %p, %q;
  .shared .f32 buf[64];

  mov.u32 %tid, %tid.x;
  ld.param.u64 %in, [inp];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %addr, %in, %off;
  ld.global.f32 %a, [%addr];
  mov.u64 %saddr, buf;
  add.u64 %saddr, %saddr, %off;
  st.shared.f32 [%saddr], %a;
  bar.sync 0;

  mov.u32 %half, 32;
LOOP:
  setp.ge.u32 %p, %tid, %half;
  @%p bra SKIP;
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  mov.u64 %saddr, buf;
  add.u64 %saddr, %saddr, %off;
  ld.shared.f32 %a, [%saddr];
  cvt.u64.u32 %off, %half;
  shl.b64 %off, %off, 2;
  add.u64 %off, %saddr, %off;
  ld.shared.f32 %b, [%off];
  add.f32 %a, %a, %b;
  st.shared.f32 [%saddr], %a;
SKIP:
  bar.sync 0;
  shr.u32 %half, %half, 1;
  setp.gt.u32 %q, %half, 0;
  @%q bra LOOP;

  setp.ne.u32 %p, %tid, 0;
  @%p bra DONE;
  ld.param.u64 %out, [outp];
  mov.u64 %saddr, buf;
  ld.shared.f32 %a, [%saddr];
  st.global.f32 [%out], %a;
DONE:
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  check_no_type_errors m;
  let n = 64 in
  let global = Mem.create ((n + 1) * 4) in
  Mem.write_f32s global ~at:0 (List.init n (fun i -> float_of_int (i + 1)));
  ignore
    (Emulator.run m ~kernel:"reduce"
       ~args:[ Launch.Ptr 0; Launch.Ptr (4 * n) ]
       ~global ~grid:(Launch.dim3 1) ~block:(Launch.dim3 n));
  Alcotest.(check (float 0.0)) "sum 1..64" 2080.0 (Mem.read_f32 global (4 * n))

let test_emu_atomics () =
  let src =
    {|
.entry count (.param .u64 p)
{
  .reg .u64 %addr; .reg .u32 %old;
  ld.param.u64 %addr, [p];
  atom.global.add.u32 %old, [%addr], 1;
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  check_no_type_errors m;
  let global = Mem.create 4 in
  ignore
    (Emulator.run m ~kernel:"count" ~args:[ Launch.Ptr 0 ] ~global
       ~grid:(Launch.dim3 4) ~block:(Launch.dim3 32));
  Alcotest.(check int) "counter" 128 (Mem.read_i32 global 0)

let test_emu_divergent_loop () =
  (* Each thread loops tid times: heavily divergent trip counts. *)
  let src =
    {|
.entry loops (.param .u64 outp)
{
  .reg .u32 %tid, %i, %acc;
  .reg .u64 %out, %off;
  .reg .pred %p;
  mov.u32 %tid, %tid.x;
  mov.u32 %i, 0;
  mov.u32 %acc, 0;
LOOP:
  setp.ge.u32 %p, %i, %tid;
  @%p bra DONE;
  add.u32 %acc, %acc, %i;
  add.u32 %i, %i, 1;
  bra LOOP;
DONE:
  ld.param.u64 %out, [outp];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %out, %out, %off;
  st.global.u32 [%out], %acc;
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  check_no_type_errors m;
  let n = 16 in
  let global = Mem.create (4 * n) in
  ignore
    (Emulator.run m ~kernel:"loops" ~args:[ Launch.Ptr 0 ] ~global
       ~grid:(Launch.dim3 1) ~block:(Launch.dim3 n));
  List.iteri
    (fun i v -> Alcotest.(check int) (Fmt.str "acc[%d]" i) (i * (i - 1) / 2) v)
    (Mem.read_i32s global ~at:0 n)

let test_emu_const_bank () =
  let src =
    {|
.const .f32 scale[2] = { 2.0, 3.0 };
.entry sc (.param .u64 outp)
{
  .reg .f32 %a, %b, %c; .reg .u64 %out;
  ld.const.f32 %a, [scale];
  ld.const.f32 %b, [scale+4];
  mul.f32 %c, %a, %b;
  ld.param.u64 %out, [outp];
  st.global.f32 [%out], %c;
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  check_no_type_errors m;
  let global = Mem.create 4 in
  ignore
    (Emulator.run m ~kernel:"sc" ~args:[ Launch.Ptr 0 ] ~global ~grid:(Launch.dim3 1)
       ~block:(Launch.dim3 1));
  Alcotest.(check (float 0.0)) "2*3" 6.0 (Mem.read_f32 global 0)

let test_emu_barrier_after_exit () =
  (* Thread 0 exits before the barrier.  Our defined semantics: barriers
     synchronize the remaining live threads, so the launch completes (and
     the surviving threads still see thread 0's pre-exit store). *)
  let src =
    {|
.entry dl (.param .u64 p)
{
  .reg .u32 %tid, %v; .reg .pred %q; .reg .u64 %out;
  .shared .u32 flag[1];
  mov.u32 %tid, %tid.x;
  setp.ne.u32 %q, %tid, 0;
  @%q bra WAIT;
  st.shared.u32 [flag], 7;
  exit;
WAIT:
  bar.sync 0;
  ld.shared.u32 %v, [flag];
  ld.param.u64 %out, [p];
  st.global.u32 [%out], %v;
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  check_no_type_errors m;
  let global = Mem.create 4 in
  ignore
    (Emulator.run m ~kernel:"dl" ~args:[ Launch.Ptr 0 ] ~global ~grid:(Launch.dim3 1)
       ~block:(Launch.dim3 4));
  Alcotest.(check int) "flag visible" 7 (Mem.read_i32 global 0)

let test_emu_out_of_fuel () =
  let src = {|.entry spin () { L: bra L; }|} in
  let m = Parser.parse_module src in
  Alcotest.check_raises "fuel" Emulator.Out_of_fuel (fun () ->
      ignore
        (Emulator.run ~fuel:1000 m ~kernel:"spin" ~args:[] ~global:(Mem.create 0)
           ~grid:(Launch.dim3 1) ~block:(Launch.dim3 1)))

let test_emu_f32_rounding () =
  (* f32 arithmetic must round to single precision: 1e8 + 1 == 1e8 in f32. *)
  let src =
    {|
.entry round (.param .u64 outp)
{
  .reg .f32 %a, %b; .reg .u64 %out;
  mov.f32 %a, 0f4CBEBC20;   // 1.0e8f
  add.f32 %b, %a, 1.0;
  sub.f32 %b, %b, %a;
  ld.param.u64 %out, [outp];
  st.global.f32 [%out], %b;
  exit;
}
|}
  in
  let m = Parser.parse_module src in
  let global = Mem.create 4 in
  ignore
    (Emulator.run m ~kernel:"round" ~args:[ Launch.Ptr 0 ] ~global
       ~grid:(Launch.dim3 1) ~block:(Launch.dim3 1));
  Alcotest.(check (float 0.0)) "absorbed" 0.0 (Mem.read_f32 global 0)

(* --- Scalar_ops unit tests --- *)

let test_ops_unsigned_div () =
  match Scalar_ops.(binop Ast.Div Ast.U32 (I 0xFFFFFFFFL) (I 2L)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "u32 div" 0x7FFFFFFFL v
  | _ -> Alcotest.fail "expected int"

let test_ops_signed_div () =
  match Scalar_ops.(binop Ast.Div Ast.S32 (I (-7L)) (I 2L)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "s32 div" (-3L) v
  | _ -> Alcotest.fail "expected int"

let test_ops_div_by_zero () =
  match Scalar_ops.(binop Ast.Div Ast.S32 (I 5L) (I 0L)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "div0 deterministic" 0L v
  | _ -> Alcotest.fail "expected int"

let test_ops_shift_clamp () =
  (match Scalar_ops.(binop Ast.Shl Ast.U32 (I 1L) (I 40L)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "shl clamp" 0L v
  | _ -> Alcotest.fail "int");
  match Scalar_ops.(binop Ast.Shr Ast.S32 (I (-8L)) (I 50L)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "sar clamp" (-1L) v
  | _ -> Alcotest.fail "int"

let test_ops_mul_hi () =
  match Scalar_ops.(binop Ast.Mul_hi Ast.U32 (I 0xFFFFFFFFL) (I 0xFFFFFFFFL)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "mul.hi.u32" 0xFFFFFFFEL v
  | _ -> Alcotest.fail "int"

let test_ops_norm_sign () =
  Alcotest.(check int64) "s8 norm" (-1L) (Scalar_ops.norm_int Ast.S8 255L);
  Alcotest.(check int64) "u8 norm" 255L (Scalar_ops.norm_int Ast.U8 255L);
  Alcotest.(check int64) "s16 norm" (-32768L) (Scalar_ops.norm_int Ast.S16 32768L)

let test_ops_cvt_trunc () =
  (match Scalar_ops.(cvt ~dst:Ast.S32 ~src:Ast.F32 (F 2.9)) with
  | Scalar_ops.I v -> Alcotest.(check int64) "trunc pos" 2L v
  | _ -> Alcotest.fail "int");
  match Scalar_ops.(cvt ~dst:Ast.S32 ~src:Ast.F32 (F (-2.9))) with
  | Scalar_ops.I v -> Alcotest.(check int64) "trunc neg" (-2L) v
  | _ -> Alcotest.fail "int"

let test_ops_ucompare () =
  Alcotest.(check bool) "unsigned lt" false
    Scalar_ops.(cmp Ast.Lt Ast.U32 (I 0xFFFFFFFFL) (I 1L));
  Alcotest.(check bool) "signed lt" true Scalar_ops.(cmp Ast.Lt Ast.S32 (I (-1L)) (I 1L))

let test_ops_bits_roundtrip () =
  List.iter
    (fun f ->
      let bits = Scalar_ops.to_bits Ast.F32 (Scalar_ops.F f) in
      match Scalar_ops.of_bits Ast.F32 bits with
      | Scalar_ops.F f' ->
          Alcotest.(check bool) "f32 bits roundtrip" true
            (Scalar_ops.equal_value Ast.F32 (Scalar_ops.F f) (Scalar_ops.F f'))
      | _ -> Alcotest.fail "float")
    [ 0.0; 1.5; -2.25; Float.infinity; Float.nan; 1e-38 ]

(* --- QCheck properties --- *)

let arb_dtype =
  QCheck.make ~print:Ast.show_dtype
    (QCheck.Gen.oneofl [ Ast.U8; Ast.U16; Ast.U32; Ast.U64; Ast.S8; Ast.S16; Ast.S32; Ast.S64 ])

let prop_norm_idempotent =
  QCheck.Test.make ~name:"norm_int idempotent" ~count:500
    (QCheck.pair arb_dtype (QCheck.map Int64.of_int QCheck.int))
    (fun (ty, v) ->
      let n = Scalar_ops.norm_int ty v in
      Int64.equal n (Scalar_ops.norm_int ty n))

let prop_binop_normalized =
  QCheck.Test.make ~name:"binop results are normalized" ~count:500
    (QCheck.triple arb_dtype
       (QCheck.map Int64.of_int QCheck.int)
       (QCheck.map Int64.of_int QCheck.int))
    (fun (ty, a, b) ->
      List.for_all
        (fun op ->
          match Scalar_ops.(binop op ty (I a) (I b)) with
          | Scalar_ops.I v -> Int64.equal v (Scalar_ops.norm_int ty v)
          | _ -> false)
        [ Ast.Add; Ast.Sub; Ast.Mul_lo; Ast.Min; Ast.Max; Ast.And; Ast.Or; Ast.Xor ])

let prop_printer_roundtrip =
  (* Round-trip arbitrary straight-line integer kernels through the printer. *)
  let gen_kernel =
    let open QCheck.Gen in
    let reg i = Fmt.str "%%r%d" i in
    let nregs = 6 in
    let op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul_lo; Ast.And; Ast.Or; Ast.Xor; Ast.Min; Ast.Max ] in
    let operand =
      oneof
        [ map (fun i -> Ast.Reg (reg (abs i mod nregs))) small_int;
          map (fun i -> Ast.Imm_int (Int64.of_int i)) small_signed_int ]
    in
    let inst = map3 (fun op a b -> (op, a, b)) op operand operand in
    list_size (int_range 1 20) inst
    |> map (fun insts ->
           {
             Ast.k_name = "gen";
             k_params = [];
             k_regs = List.init nregs (fun i -> (reg i, Ast.U32));
             k_shared = [];
             k_local = [];
             k_body =
               List.mapi
                 (fun i (op, a, b) ->
                   Ast.Inst (Ast.Always, Ast.Binary (op, Ast.U32, reg (i mod nregs), a, b), 0))
                 insts
               @ [ Ast.Inst (Ast.Always, Ast.Exit, 0) ];
           })
  in
  QCheck.Test.make ~name:"printer/parser roundtrip" ~count:200
    (QCheck.make ~print:Printer.kernel_to_string gen_kernel)
    (fun k ->
      let m = { Ast.m_consts = []; m_funcs = []; m_kernels = [ k ] } in
      Ast.equal_modul m (Parser.parse_module (Printer.to_string m)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_norm_idempotent; prop_binop_normalized; prop_printer_roundtrip ]

let () =
  Alcotest.run "ptx"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "vecadd" `Quick test_parse_vecadd;
          Alcotest.test_case "guard" `Quick test_parse_guard;
          Alcotest.test_case "shared/local" `Quick test_parse_shared_local;
          Alcotest.test_case "const" `Quick test_parse_const;
          Alcotest.test_case "func and call" `Quick test_parse_func_and_call;
          Alcotest.test_case "atom" `Quick test_parse_atom;
          Alcotest.test_case "error line" `Quick test_parse_error_line;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_vecadd;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "undeclared reg" `Quick test_tc_undeclared_reg;
          Alcotest.test_case "width mismatch" `Quick test_tc_width_mismatch;
          Alcotest.test_case "b32 compatible" `Quick test_tc_b32_compatible;
          Alcotest.test_case "pred arith" `Quick test_tc_pred_in_arith;
          Alcotest.test_case "bad branch" `Quick test_tc_bad_branch;
          Alcotest.test_case "dup label" `Quick test_tc_dup_label;
          Alcotest.test_case "store to param" `Quick test_tc_store_to_param;
          Alcotest.test_case "float bitwise" `Quick test_tc_float_bitwise;
          Alcotest.test_case "vecadd clean" `Quick test_tc_clean_vecadd;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "blocks" `Quick test_cfg_blocks;
          Alcotest.test_case "barrier splits" `Quick test_cfg_barrier_splits;
          Alcotest.test_case "guarded exit" `Quick test_cfg_guarded_exit;
          Alcotest.test_case "roundtrip body" `Quick test_cfg_roundtrip_body;
          Alcotest.test_case "rpo" `Quick test_cfg_rpo;
        ] );
      ( "inline",
        [
          Alcotest.test_case "undefined callee" `Quick test_call_undefined_func;
          Alcotest.test_case "barrier in func" `Quick test_func_barrier_rejected;
          Alcotest.test_case "semantics" `Quick test_inline_semantics;
          Alcotest.test_case "recursion" `Quick test_inline_recursion_rejected;
          Alcotest.test_case "divergent call sites" `Quick test_inline_divergent_call_sites;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "vecadd" `Quick test_emu_vecadd;
          Alcotest.test_case "vecadd non-multiple" `Quick test_emu_vecadd_nonmultiple;
          Alcotest.test_case "barrier reduction" `Quick test_emu_barrier_reduction;
          Alcotest.test_case "atomics" `Quick test_emu_atomics;
          Alcotest.test_case "divergent loops" `Quick test_emu_divergent_loop;
          Alcotest.test_case "const bank" `Quick test_emu_const_bank;
          Alcotest.test_case "barrier after exit" `Quick test_emu_barrier_after_exit;
          Alcotest.test_case "out of fuel" `Quick test_emu_out_of_fuel;
          Alcotest.test_case "f32 rounding" `Quick test_emu_f32_rounding;
        ] );
      ( "scalar_ops",
        [
          Alcotest.test_case "unsigned div" `Quick test_ops_unsigned_div;
          Alcotest.test_case "signed div" `Quick test_ops_signed_div;
          Alcotest.test_case "div by zero" `Quick test_ops_div_by_zero;
          Alcotest.test_case "shift clamp" `Quick test_ops_shift_clamp;
          Alcotest.test_case "mul hi" `Quick test_ops_mul_hi;
          Alcotest.test_case "norm sign" `Quick test_ops_norm_sign;
          Alcotest.test_case "cvt trunc" `Quick test_ops_cvt_trunc;
          Alcotest.test_case "ucompare" `Quick test_ops_ucompare;
          Alcotest.test_case "bits roundtrip" `Quick test_ops_bits_roundtrip;
        ] );
      ("properties", qcheck_tests);
    ]
