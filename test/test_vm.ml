(* Tests for the vector-machine substrate: machine descriptions, the µop
   timing model (scoreboard, chunking, register-pressure spills) and the
   IR interpreter. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Builder = Vekt_ir.Builder
module Machine = Vekt_vm.Machine
module Timing = Vekt_vm.Timing
module Interp = Vekt_vm.Interp
open Vekt_ptx

let s32 = Ty.scalar Ast.S32
let f32 = Ty.scalar Ast.F32
let imm_i n = Ir.Imm (Scalar_ops.I (Int64.of_int n), Ast.S32)
let imm_f x = Ir.Imm (Scalar_ops.F x, Ast.F32)

(* --- Machine --- *)

let test_machine_peak () =
  Alcotest.(check (float 0.1)) "sse4 peak" 108.8 (Machine.peak_sp_gflops Machine.sse4);
  Alcotest.(check (float 0.1)) "avx peak" 217.6 (Machine.peak_sp_gflops Machine.avx)

let test_machine_chunks () =
  Alcotest.(check int) "4xf32 on sse" 1 (Machine.chunks Machine.sse4 Ast.F32 4);
  Alcotest.(check int) "8xf32 on sse" 2 (Machine.chunks Machine.sse4 Ast.F32 8);
  Alcotest.(check int) "8xf32 on avx" 1 (Machine.chunks Machine.avx Ast.F32 8);
  Alcotest.(check int) "4xf64 on sse" 2 (Machine.chunks Machine.sse4 Ast.F64 4)

(* --- Timing --- *)

(* A block of [n] dependent vector fmas (a serial chain) vs [n] independent
   ones: the chain must cost roughly latency*n, the independent set roughly
   n/throughput. *)
let fma_block ~dependent n =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let v4 = Ty.vector Ast.F32 4 in
  let acc = Builder.fresh_reg b v4 in
  Builder.emit b (Ir.Mov (v4, acc, imm_f 1.0));
  let regs = Array.init n (fun _ -> Builder.fresh_reg b v4) in
  for i = 0 to n - 1 do
    let src = if dependent then (if i = 0 then acc else regs.(i - 1)) else acc in
    Builder.emit b (Ir.Fma (v4, regs.(i), Ir.R src, imm_f 0.5, imm_f 0.25))
  done;
  (* keep everything alive through a store of the last value *)
  Builder.emit b
    (Ir.Store (Ast.Global, Ast.F32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0,
               Ir.Imm (Scalar_ops.F 0.0, Ast.F32)));
  Builder.set_term b Ir.Return;
  Builder.func b

let test_timing_dependent_slower () =
  let dep = Timing.analyze Machine.sse4 (fma_block ~dependent:true 32) in
  let ind = Timing.analyze Machine.sse4 (fma_block ~dependent:false 32) in
  let c t = (Option.get (Timing.block_cost t "entry")).Timing.cycles in
  Alcotest.(check bool)
    (Fmt.str "chain %.0f >> independent %.0f" (c dep) (c ind))
    true
    (c dep > 2.0 *. c ind)

let test_timing_flops_counted () =
  let t = Timing.analyze Machine.sse4 (fma_block ~dependent:false 10) in
  (* 10 fmas x 4 lanes x 2 flops *)
  Alcotest.(check int) "flops" 80 (Timing.flops t "entry")

let test_timing_wide_vectors_chunked () =
  let mk w =
    let b = Builder.create ~warp_size:w "t" in
    ignore (Builder.start_block b "entry");
    let v = Ty.vector Ast.F32 w in
    let x = Builder.fresh_reg b v in
    Builder.emit b (Ir.Bin (Ast.Add, v, x, imm_f 1.0, imm_f 2.0));
    Builder.emit b
      (Ir.Store (Ast.Global, Ast.F32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0, imm_f 0.0));
    Builder.set_term b Ir.Return;
    Builder.func b
  in
  let u w =
    (Option.get (Timing.block_cost (Timing.analyze Machine.sse4 (mk w)) "entry"))
      .Timing.uops
  in
  (* the store contributes 1 µop; the add contributes chunks *)
  Alcotest.(check int) "4-wide 1 chunk" 2 (u 4);
  Alcotest.(check int) "8-wide 2 chunks" 3 (u 8);
  Alcotest.(check int) "16-wide 4 chunks" 5 (u 16)

let test_timing_pressure_spills () =
  (* many simultaneously-live vector registers -> spill penalty *)
  let mk n =
    let b = Builder.create ~warp_size:4 "t" in
    ignore (Builder.start_block b "entry");
    let v4 = Ty.vector Ast.F32 4 in
    let regs = Array.init n (fun _ -> Builder.fresh_reg b v4) in
    Array.iter (fun r -> Builder.emit b (Ir.Mov (v4, r, imm_f 1.0))) regs;
    (* keep all alive: a use after all defs *)
    let acc = Builder.fresh_reg b v4 in
    Builder.emit b (Ir.Mov (v4, acc, imm_f 0.0));
    Array.iter
      (fun r -> Builder.emit b (Ir.Bin (Ast.Add, v4, acc, Ir.R acc, Ir.R r)))
      regs;
    Builder.emit b
      (Ir.Store (Ast.Global, Ast.F32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0, imm_f 0.0));
    Builder.set_term b Ir.Return;
    Builder.func b
  in
  let cost n =
    Option.get (Timing.block_cost (Timing.analyze Machine.sse4 (mk n)) "entry")
  in
  Alcotest.(check int) "8 regs fit" 0 (cost 8).Timing.spill_uops;
  Alcotest.(check bool) "40 regs spill" true ((cost 40).Timing.spill_uops > 0);
  Alcotest.(check bool) "pressure reported" true ((cost 40).Timing.max_vec_pressure > 16)

let test_timing_scalar_cheaper_ports () =
  (* a vector f32 add and a scalar f32 add cost the same port slots, so
     4x the work at equal cost: the vector machine's raison d'etre *)
  let mk width =
    let b = Builder.create ~warp_size:width "t" in
    ignore (Builder.start_block b "entry");
    let ty = Ty.make Ast.F32 width in
    for _ = 1 to 16 do
      let r = Builder.fresh_reg b ty in
      Builder.emit b (Ir.Bin (Ast.Add, ty, r, imm_f 1.0, imm_f 2.0));
      Builder.emit b
        (Ir.Store (Ast.Global, Ast.F32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0,
                   (if width = 1 then Ir.R r else imm_f 0.0)))
    done;
    Builder.set_term b Ir.Return;
    Builder.func b
  in
  let c w =
    (Option.get (Timing.block_cost (Timing.analyze Machine.sse4 (mk w)) "entry"))
      .Timing.cycles
  in
  Alcotest.(check bool) "within 30%" true (Float.abs (c 4 -. c 1) /. c 1 < 0.3)

(* --- Interp --- *)

let mems ?(global = 64) ?(shared = 64) ?(local = 256) () =
  {
    Interp.global = Mem.create global;
    shared = Mem.create shared;
    local = Mem.create local;
    params = Mem.create 16;
    consts = Mem.create 16;
  }

let warp4 ?(entry = 0) () =
  {
    Interp.lanes =
      Array.init 4 (fun i ->
          {
            Interp.tid = Launch.dim3 i;
            ctaid = Launch.dim3 0;
            local_base = i * 64;
            resume_point = 0;
          });
    entry_id = entry;
    status = Ir.Status_exit;
  }

let launch1 = { Interp.grid = Launch.dim3 2; block = Launch.dim3 4 }

let test_interp_vector_arith () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let v4 = Ty.vector Ast.S32 4 in
  let tid = Builder.fresh_reg b v4 in
  for l = 0 to 3 do
    let s = Builder.fresh_reg b s32 in
    Builder.emit b (Ir.Ctx_read (s, Ir.Tid Ast.X, l));
    Builder.emit b (Ir.Insert (v4, tid, Ir.R tid, l, Ir.R s))
  done;
  let sq = Builder.fresh_reg b v4 in
  Builder.emit b (Ir.Bin (Ast.Mul_lo, v4, sq, Ir.R tid, Ir.R tid));
  (* store each lane to global[4*lane] *)
  for l = 0 to 3 do
    let s = Builder.fresh_reg b s32 in
    Builder.emit b (Ir.Extract (Ast.S32, s, Ir.R sq, l));
    Builder.emit b
      (Ir.Store (Ast.Global, Ast.S32, Ir.Imm (Scalar_ops.I (Int64.of_int (4 * l)), Ast.S64), 0, Ir.R s))
  done;
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  Vekt_ir.Verify.check_exn f;
  let mem = mems () in
  Interp.exec f ~launch:launch1 (warp4 ()) mem;
  Alcotest.(check (list int)) "squares" [ 0; 1; 4; 9 ] (Mem.read_i32s mem.Interp.global ~at:0 4)

let test_interp_spill_restore_roundtrip () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let v4 = Ty.vector Ast.F32 4 in
  let x = Builder.fresh_reg b v4 in
  for l = 0 to 3 do
    let s = Builder.fresh_reg b (Ty.scalar Ast.U32) in
    Builder.emit b (Ir.Ctx_read (s, Ir.Tid Ast.X, l));
    let c = Builder.fresh_reg b f32 in
    Builder.emit b (Ir.Cvt (f32, Ty.scalar Ast.U32, c, Ir.R s));
    Builder.emit b (Ir.Insert (v4, x, Ir.R x, l, Ir.R c))
  done;
  for l = 0 to 3 do
    Builder.emit b (Ir.Spill (l, 16, Ast.F32, Ir.R x))
  done;
  (* restore into fresh scalars and write out *)
  for l = 0 to 3 do
    let r = Builder.fresh_reg b f32 in
    Builder.emit b (Ir.Restore (r, l, 16, Ast.F32));
    Builder.emit b
      (Ir.Store (Ast.Global, Ast.F32, Ir.Imm (Scalar_ops.I (Int64.of_int (4 * l)), Ast.S64), 0, Ir.R r))
  done;
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  Vekt_ir.Verify.check_exn f;
  let mem = mems () in
  let counters = Interp.fresh_counters () in
  Interp.exec ~counters f ~launch:launch1 (warp4 ()) mem;
  Alcotest.(check (list (float 0.0))) "roundtrip" [ 0.; 1.; 2.; 3. ]
    (Mem.read_f32s mem.Interp.global ~at:0 4);
  Alcotest.(check int) "restores counted" 4 counters.Interp.restores;
  Alcotest.(check int) "spills counted" 4 counters.Interp.spills

let test_interp_switch_and_resume () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry" ~kind:Ir.Scheduler);
  let eid = Builder.emit_val b s32 (fun d -> Ir.Ctx_read (d, Ir.Entry_id, 0)) in
  Builder.set_term b (Ir.Switch (Ir.R eid, [ (0, "a"); (7, "bb") ], "a"));
  ignore (Builder.start_block b "a");
  Builder.emit b (Ir.Set_status Ir.Status_exit);
  Builder.set_term b Ir.Return;
  ignore (Builder.start_block b "bb");
  for l = 0 to 3 do
    Builder.emit b (Ir.Set_resume (l, imm_i (100 + l)))
  done;
  Builder.emit b (Ir.Set_status Ir.Status_barrier);
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  let mem = mems () in
  let w = warp4 ~entry:7 () in
  Interp.exec f ~launch:launch1 w mem;
  Alcotest.(check bool) "status barrier" true (w.Interp.status = Ir.Status_barrier);
  Alcotest.(check int) "lane 2 resume" 102 w.Interp.lanes.(2).Interp.resume_point

let test_interp_reduce_add () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let p4 = Ty.vector Ast.Pred 4 in
  let v4 = Ty.vector Ast.S32 4 in
  let tid = Builder.fresh_reg b v4 in
  for l = 0 to 3 do
    let s = Builder.fresh_reg b s32 in
    Builder.emit b (Ir.Ctx_read (s, Ir.Tid Ast.X, l));
    Builder.emit b (Ir.Insert (v4, tid, Ir.R tid, l, Ir.R s))
  done;
  let p = Builder.fresh_reg b p4 in
  Builder.emit b (Ir.Cmp (Ast.Ge, v4, p, Ir.R tid, imm_i 2));
  let sum = Builder.fresh_reg b s32 in
  Builder.emit b (Ir.Reduce_add (sum, Ir.R p));
  Builder.emit b
    (Ir.Store (Ast.Global, Ast.S32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0, Ir.R sum));
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  let mem = mems () in
  Interp.exec f ~launch:launch1 (warp4 ()) mem;
  Alcotest.(check int) "two lanes >= 2" 2 (Mem.read_i32 mem.Interp.global 0)

let test_interp_wrong_warp_width () =
  let b = Builder.create ~warp_size:2 "t" in
  ignore (Builder.start_block b "entry");
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  Alcotest.(check bool) "trapped with warp context" true
    (try
       Interp.exec f ~launch:launch1 (warp4 ()) (mems ());
       false
     with Vekt_error.Error (Vekt_error.Trap { kernel = "t"; _ }) -> true)

let test_interp_fuel () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  Builder.set_term b (Ir.Jump "entry");
  let f = Builder.func b in
  Alcotest.check_raises "fuel" Interp.Out_of_fuel (fun () ->
      Interp.exec ~fuel:100 f ~launch:launch1 (warp4 ()) (mems ()))

let test_interp_imm_splat () =
  let b = Builder.create ~warp_size:4 "t" in
  ignore (Builder.start_block b "entry");
  let v4 = Ty.vector Ast.F32 4 in
  let x = Builder.fresh_reg b v4 in
  Builder.emit b (Ir.Bin (Ast.Add, v4, x, imm_f 1.5, imm_f 2.0));
  let s = Builder.fresh_reg b f32 in
  Builder.emit b (Ir.Extract (Ast.F32, s, Ir.R x, 3));
  Builder.emit b
    (Ir.Store (Ast.Global, Ast.F32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0, Ir.R s));
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  let mem = mems () in
  Interp.exec f ~launch:launch1 (warp4 ()) mem;
  Alcotest.(check (float 0.0)) "splat lane 3" 3.5 (Mem.read_f32 mem.Interp.global 0)

let () =
  Alcotest.run "vm"
    [
      ( "machine",
        [
          Alcotest.test_case "peak" `Quick test_machine_peak;
          Alcotest.test_case "chunks" `Quick test_machine_chunks;
        ] );
      ( "timing",
        [
          Alcotest.test_case "dependent slower" `Quick test_timing_dependent_slower;
          Alcotest.test_case "flops" `Quick test_timing_flops_counted;
          Alcotest.test_case "chunking" `Quick test_timing_wide_vectors_chunked;
          Alcotest.test_case "pressure spills" `Quick test_timing_pressure_spills;
          Alcotest.test_case "vector parity" `Quick test_timing_scalar_cheaper_ports;
        ] );
      ( "interp",
        [
          Alcotest.test_case "vector arith" `Quick test_interp_vector_arith;
          Alcotest.test_case "spill/restore" `Quick test_interp_spill_restore_roundtrip;
          Alcotest.test_case "switch/resume" `Quick test_interp_switch_and_resume;
          Alcotest.test_case "reduce add" `Quick test_interp_reduce_add;
          Alcotest.test_case "warp width" `Quick test_interp_wrong_warp_width;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "imm splat" `Quick test_interp_imm_splat;
        ] );
    ]
