(* Tests for the IR substrate: types, builder, printer, verifier, and the
   analyses (liveness, dominators, invariance) that the transforms rely
   on. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Builder = Vekt_ir.Builder
module Verify = Vekt_ir.Verify
module Pp = Vekt_ir.Pp
module Liveness = Vekt_analysis.Liveness
module Dominators = Vekt_analysis.Dominators
module Invariance = Vekt_analysis.Invariance
module ISet = Set.Make (Int)
open Vekt_ptx

let imm n = Ir.Imm (Scalar_ops.I (Int64.of_int n), Ast.S32)
let s32 = Ty.scalar Ast.S32

(* A diamond: entry -> (then | else) -> join, computing into %acc. *)
let build_diamond () =
  let b = Builder.create "diamond" in
  ignore (Builder.start_block b "entry");
  let x = Builder.emit_val b s32 (fun d -> Ir.Mov (s32, d, imm 5)) in
  let p =
    Builder.emit_val b (Ty.scalar Ast.Pred) (fun d ->
        Ir.Cmp (Ast.Lt, s32, d, Ir.R x, imm 10))
  in
  let acc = Builder.fresh_reg b s32 in
  Builder.set_term b (Ir.Branch (Ir.R p, "then", "else"));
  ignore (Builder.start_block b "then");
  Builder.emit b (Ir.Bin (Ast.Add, s32, acc, Ir.R x, imm 1));
  Builder.set_term b (Ir.Jump "join");
  ignore (Builder.start_block b "else");
  Builder.emit b (Ir.Bin (Ast.Add, s32, acc, Ir.R x, imm 2));
  Builder.set_term b (Ir.Jump "join");
  ignore (Builder.start_block b "join");
  Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 0, 0, Ir.R acc));
  Builder.set_term b Ir.Return;
  (Builder.func b, x, p, acc)

(* --- Ty --- *)

let test_ty_basics () =
  Alcotest.(check bool) "scalar" false (Ty.is_vector s32);
  Alcotest.(check bool) "vector" true (Ty.is_vector (Ty.vector Ast.F32 4));
  Alcotest.(check int) "bytes" 16 (Ty.byte_size (Ty.vector Ast.F32 4));
  Alcotest.(check string) "pp" "<4 x .f32>" (Ty.to_string (Ty.vector Ast.F32 4));
  Alcotest.(check bool) "width 1 rejected" true
    (try
       ignore (Ty.vector Ast.F32 1);
       false
     with Invalid_argument _ -> true)

(* --- Builder / structure --- *)

let test_builder_entry_is_first () =
  let f, _, _, _ = build_diamond () in
  Alcotest.(check string) "entry" "entry" f.Ir.entry;
  Alcotest.(check int) "blocks" 4 (List.length (Ir.blocks f))

let test_successors_and_preds () =
  let f, _, _, _ = build_diamond () in
  Alcotest.(check (list string)) "entry succs" [ "then"; "else" ]
    (Ir.successors (Ir.block f "entry"));
  let preds = Ir.predecessors f in
  Alcotest.(check (list string)) "join preds" [ "else"; "then" ]
    (List.sort compare (Hashtbl.find preds "join"))

let test_rpo () =
  let f, _, _, _ = build_diamond () in
  let rpo = Ir.reverse_postorder f in
  Alcotest.(check string) "entry first" "entry" (List.hd rpo);
  Alcotest.(check string) "join last" "join" (List.nth rpo 3)

let test_def_uses () =
  let f, x, p, acc = build_diamond () in
  ignore f;
  let i = Ir.Bin (Ast.Add, s32, acc, Ir.R x, imm 1) in
  Alcotest.(check (option int)) "def" (Some acc) (Ir.def i);
  Alcotest.(check (list int)) "uses" [ x ] (Ir.uses i);
  Alcotest.(check (list int)) "term uses"
    [ p ]
    (Ir.term_uses (Ir.Branch (Ir.R p, "a", "b")))

let test_map_operands_with_def () =
  let i = Ir.Bin (Ast.Add, s32, 7, Ir.R 1, Ir.R 2) in
  let j = Ir.map_operands (function Ir.R r -> Ir.R (r + 10) | o -> o) i in
  Alcotest.(check (list int)) "mapped uses" [ 11; 12 ] (Ir.uses j);
  let k = Ir.with_def 9 j in
  Alcotest.(check (option int)) "new def" (Some 9) (Ir.def k)

(* Large build: 2000 blocks x 100 instructions, plus block revisits via
   switch_to.  The builder accumulates instructions and block order in
   reverse and flushes on block switches, so this completes in
   milliseconds; the old append-per-emit representation was quadratic
   and took minutes at this size.  Structure is verified exactly. *)
let test_builder_large_linear () =
  let nblocks = 2000 and ninsts = 100 in
  let b = Builder.create "big" in
  let r = Builder.fresh_reg b s32 in
  for blk = 0 to nblocks - 1 do
    ignore (Builder.start_block b (Fmt.str "b%d" blk));
    for _ = 1 to ninsts do
      Builder.emit b (Ir.Bin (Ast.Add, s32, r, Ir.R r, imm 1))
    done;
    Builder.set_term b
      (if blk = nblocks - 1 then Ir.Return else Ir.Jump (Fmt.str "b%d" (blk + 1)))
  done;
  (* revisit earlier blocks: flushed instructions must be preserved and
     appended to, not clobbered *)
  Builder.switch_to b "b0";
  Builder.emit b (Ir.Bin (Ast.Add, s32, r, Ir.R r, imm 2));
  let f = Builder.func b in
  Alcotest.(check int) "block count" nblocks (List.length (Ir.blocks f));
  Alcotest.(check (list string)) "order preserved"
    (List.init nblocks (Fmt.str "b%d"))
    f.Ir.order;
  Alcotest.(check int) "b0 insts (revisit appended)" (ninsts + 1)
    (List.length (Ir.block f "b0").Ir.insts);
  Alcotest.(check int) "b1 insts" ninsts
    (List.length (Ir.block f "b1").Ir.insts);
  Alcotest.(check int) "total size" ((nblocks * ninsts) + 1) (Ir.size f)

(* --- Verifier --- *)

let test_verify_clean () =
  let f, _, _, _ = build_diamond () in
  Alcotest.(check int) "no errors" 0 (List.length (Verify.check_func f))

let test_verify_bad_target () =
  let b = Builder.create "bad" in
  ignore (Builder.start_block b "entry");
  Builder.set_term b (Ir.Jump "nowhere");
  Alcotest.(check bool) "caught" true (Verify.check_func (Builder.func b) <> [])

let test_verify_type_mismatch () =
  let b = Builder.create "bad" in
  ignore (Builder.start_block b "entry");
  let x = Builder.fresh_reg b (Ty.scalar Ast.F32) in
  let d = Builder.fresh_reg b s32 in
  (* f32 operand in an s32 add *)
  Builder.emit b (Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 1));
  Builder.set_term b Ir.Return;
  Alcotest.(check bool) "caught" true (Verify.check_func (Builder.func b) <> [])

let test_verify_lane_bounds () =
  let b = Builder.create ~warp_size:2 "bad" in
  ignore (Builder.start_block b "entry");
  let d = Builder.fresh_reg b (Ty.scalar Ast.U32) in
  Builder.emit b (Ir.Ctx_read (d, Ir.Lane, 5));
  Builder.set_term b Ir.Return;
  Alcotest.(check bool) "caught" true (Verify.check_func (Builder.func b) <> [])

let test_verify_vector_cond_select () =
  let b = Builder.create ~warp_size:4 "v" in
  ignore (Builder.start_block b "entry");
  let v4 = Ty.vector Ast.F32 4 in
  let p4 = Ty.vector Ast.Pred 4 in
  let c = Builder.fresh_reg b p4 in
  let x = Builder.fresh_reg b v4 in
  let d = Builder.fresh_reg b v4 in
  Builder.emit b (Ir.Select (v4, d, Ir.R c, Ir.R x, Ir.R x));
  Builder.set_term b Ir.Return;
  Alcotest.(check int) "clean" 0 (List.length (Verify.check_func (Builder.func b)))

let test_verify_scalar_cond_on_vector_select () =
  let b = Builder.create ~warp_size:4 "v" in
  ignore (Builder.start_block b "entry");
  let v4 = Ty.vector Ast.F32 4 in
  let c = Builder.fresh_reg b (Ty.scalar Ast.Pred) in
  let x = Builder.fresh_reg b v4 in
  let d = Builder.fresh_reg b v4 in
  Builder.emit b (Ir.Select (v4, d, Ir.R c, Ir.R x, Ir.R x));
  Builder.set_term b Ir.Return;
  Alcotest.(check bool) "caught" true (Verify.check_func (Builder.func b) <> [])

(* --- Liveness --- *)

let test_liveness_diamond () =
  let f, x, _, acc = build_diamond () in
  let live = Liveness.compute f in
  (* x is live into both arms; acc is live into the join. *)
  Alcotest.(check bool) "x live into then" true (ISet.mem x (Liveness.live_in live "then"));
  Alcotest.(check bool) "x live into else" true (ISet.mem x (Liveness.live_in live "else"));
  Alcotest.(check bool) "acc live into join" true
    (ISet.mem acc (Liveness.live_in live "join"));
  Alcotest.(check bool) "x dead into join" false
    (ISet.mem x (Liveness.live_in live "join"));
  Alcotest.(check bool) "entry live-in empty" true
    (ISet.is_empty (Liveness.live_in live "entry"))

let test_liveness_loop () =
  (* A counted loop: the counter must be live around the back edge. *)
  let b = Builder.create "loop" in
  ignore (Builder.start_block b "entry");
  let i = Builder.fresh_reg b s32 in
  Builder.emit b (Ir.Mov (s32, i, imm 0));
  Builder.set_term b (Ir.Jump "head");
  ignore (Builder.start_block b "head");
  Builder.emit b (Ir.Bin (Ast.Add, s32, i, Ir.R i, imm 1));
  let p = Builder.fresh_reg b (Ty.scalar Ast.Pred) in
  Builder.emit b (Ir.Cmp (Ast.Lt, s32, p, Ir.R i, imm 10));
  Builder.set_term b (Ir.Branch (Ir.R p, "head", "exit"));
  ignore (Builder.start_block b "exit");
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  let live = Liveness.compute f in
  Alcotest.(check bool) "i live into head" true (ISet.mem i (Liveness.live_in live "head"));
  Alcotest.(check bool) "i live out of head" true
    (ISet.mem i (Liveness.live_out live "head"))

let test_liveness_per_instruction () =
  let f, x, _, acc = build_diamond () in
  let live = Liveness.compute f in
  let entry = Ir.block f "entry" in
  let after = Liveness.per_instruction live entry in
  (* After the first instruction (def of x), x is live. *)
  Alcotest.(check bool) "x live after def" true (ISet.mem x after.(0));
  Alcotest.(check bool) "acc not yet live" false (ISet.mem acc after.(0))

let test_max_pressure () =
  let f, _, _, _ = build_diamond () in
  let live = Liveness.compute f in
  let p = Liveness.max_pressure f live in
  Alcotest.(check bool) "pressure sane" true (p >= 1 && p <= 4)

(* --- Dominators --- *)

let test_dominators_diamond () =
  let f, _, _, _ = build_diamond () in
  let dom = Dominators.compute f in
  Alcotest.(check bool) "entry dom join" true (Dominators.dominates dom "entry" "join");
  Alcotest.(check bool) "then not dom join" false
    (Dominators.dominates dom "then" "join");
  Alcotest.(check (option string)) "idom join" (Some "entry") (Dominators.idom dom "join");
  Alcotest.(check bool) "reflexive" true (Dominators.dominates dom "then" "then")

let test_back_edges () =
  let b = Builder.create "loop" in
  ignore (Builder.start_block b "entry");
  Builder.set_term b (Ir.Jump "head");
  ignore (Builder.start_block b "head");
  let p = Builder.fresh_reg b (Ty.scalar Ast.Pred) in
  Builder.emit b (Ir.Cmp (Ast.Lt, s32, p, imm 1, imm 2));
  Builder.set_term b (Ir.Branch (Ir.R p, "head", "exit"));
  ignore (Builder.start_block b "exit");
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  let dom = Dominators.compute f in
  Alcotest.(check (list (pair string string))) "one back edge"
    [ ("head", "head") ]
    (Dominators.back_edges f dom)

(* --- Invariance --- *)

let build_tid_kernel () =
  (* %a = ntid.x * ctaid.x (invariant); %b = a + tid.x (variant) *)
  let b = Builder.create "inv" in
  ignore (Builder.start_block b "entry");
  let u32 = Ty.scalar Ast.U32 in
  let ntid = Builder.emit_val b u32 (fun d -> Ir.Ctx_read (d, Ir.Ntid Ast.X, 0)) in
  let ctaid = Builder.emit_val b u32 (fun d -> Ir.Ctx_read (d, Ir.Ctaid Ast.X, 0)) in
  let a =
    Builder.emit_val b u32 (fun d -> Ir.Bin (Ast.Mul_lo, u32, d, Ir.R ntid, Ir.R ctaid))
  in
  let tid = Builder.emit_val b u32 (fun d -> Ir.Ctx_read (d, Ir.Tid Ast.X, 0)) in
  let v = Builder.emit_val b u32 (fun d -> Ir.Bin (Ast.Add, u32, d, Ir.R a, Ir.R tid)) in
  Builder.emit b (Ir.Store (Ast.Global, Ast.U32, Ir.R v, 0, Ir.R a));
  Builder.set_term b Ir.Return;
  (Builder.func b, a, tid, v)

let test_invariance_basic () =
  let f, a, tid, v = build_tid_kernel () in
  let variants = Invariance.variant_regs f in
  Alcotest.(check bool) "block-index product invariant" false (ISet.mem a variants);
  Alcotest.(check bool) "tid variant" true (ISet.mem tid variants);
  Alcotest.(check bool) "taint propagates" true (ISet.mem v variants)

let test_invariance_tid_y_static () =
  let b = Builder.create "inv" in
  ignore (Builder.start_block b "entry");
  let u32 = Ty.scalar Ast.U32 in
  let ty = Builder.emit_val b u32 (fun d -> Ir.Ctx_read (d, Ir.Tid Ast.Y, 0)) in
  Builder.emit b (Ir.Store (Ast.Global, Ast.U32, imm 0, 0, Ir.R ty));
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  Alcotest.(check bool) "tid.y variant dynamically" true
    (ISet.mem ty (Invariance.variant_regs f));
  Alcotest.(check bool) "tid.y invariant under static warps" false
    (ISet.mem ty (Invariance.variant_regs ~static_warps:true f))

let test_invariance_loads () =
  let b = Builder.create "inv" in
  ignore (Builder.start_block b "entry");
  let pl = Builder.emit_val b (Ty.scalar Ast.U64) (fun d ->
      Ir.Load (Ast.Param, Ast.U64, d, imm 0, 0)) in
  let gl = Builder.emit_val b (Ty.scalar Ast.F32) (fun d ->
      Ir.Load (Ast.Global, Ast.F32, d, Ir.R pl, 0)) in
  Builder.emit b (Ir.Store (Ast.Global, Ast.F32, Ir.R pl, 0, Ir.R gl));
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  let variants = Invariance.variant_regs f in
  Alcotest.(check bool) "param load invariant" false (ISet.mem pl variants);
  Alcotest.(check bool) "global load variant" true (ISet.mem gl variants)

let test_invariant_fraction () =
  let f, _, _, _ = build_tid_kernel () in
  let frac = Invariance.invariant_fraction f in
  Alcotest.(check bool) "fraction in (0,1)" true (frac > 0.0 && frac < 1.0)

let test_uniform_branches () =
  let b = Builder.create "ub" in
  ignore (Builder.start_block b "entry");
  let u32 = Ty.scalar Ast.U32 in
  let n = Builder.emit_val b u32 (fun d -> Ir.Ctx_read (d, Ir.Ntid Ast.X, 0)) in
  let p = Builder.emit_val b (Ty.scalar Ast.Pred) (fun d ->
      Ir.Cmp (Ast.Gt, u32, d, Ir.R n, imm 64)) in
  Builder.set_term b (Ir.Branch (Ir.R p, "a", "b"));
  ignore (Builder.start_block b "a");
  Builder.set_term b Ir.Return;
  ignore (Builder.start_block b "b");
  Builder.set_term b Ir.Return;
  let f = Builder.func b in
  Alcotest.(check (list string)) "entry branch uniform" [ "entry" ]
    (Invariance.uniform_branches f)

let () =
  Alcotest.run "ir"
    [
      ("ty", [ Alcotest.test_case "basics" `Quick test_ty_basics ]);
      ( "structure",
        [
          Alcotest.test_case "entry first" `Quick test_builder_entry_is_first;
          Alcotest.test_case "succs/preds" `Quick test_successors_and_preds;
          Alcotest.test_case "rpo" `Quick test_rpo;
          Alcotest.test_case "def/uses" `Quick test_def_uses;
          Alcotest.test_case "map/with_def" `Quick test_map_operands_with_def;
          Alcotest.test_case "large build is linear" `Quick
            test_builder_large_linear;
        ] );
      ( "verify",
        [
          Alcotest.test_case "clean" `Quick test_verify_clean;
          Alcotest.test_case "bad target" `Quick test_verify_bad_target;
          Alcotest.test_case "type mismatch" `Quick test_verify_type_mismatch;
          Alcotest.test_case "lane bounds" `Quick test_verify_lane_bounds;
          Alcotest.test_case "vector select" `Quick test_verify_vector_cond_select;
          Alcotest.test_case "scalar cond rejected" `Quick
            test_verify_scalar_cond_on_vector_select;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "diamond" `Quick test_liveness_diamond;
          Alcotest.test_case "loop" `Quick test_liveness_loop;
          Alcotest.test_case "per instruction" `Quick test_liveness_per_instruction;
          Alcotest.test_case "pressure" `Quick test_max_pressure;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "back edges" `Quick test_back_edges;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "basic" `Quick test_invariance_basic;
          Alcotest.test_case "tid.y static" `Quick test_invariance_tid_y_static;
          Alcotest.test_case "loads" `Quick test_invariance_loads;
          Alcotest.test_case "fraction" `Quick test_invariant_fraction;
          Alcotest.test_case "uniform branches" `Quick test_uniform_branches;
        ] );
    ]
