(* Tests for the compilation transforms: if-conversion, PTX→IR translation,
   the divergence plan, the vectorizer (Algorithms 1-4) and DCE. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Verify = Vekt_ir.Verify
module Ifconv = Vekt_transform.Ifconv
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
module Vectorize = Vekt_transform.Vectorize
module Dce = Vekt_transform.Dce
module Liveness = Vekt_analysis.Liveness
module ISet = Set.Make (Int)
open Vekt_ptx

let parse src = Parser.parse_module src
let kernel_of src = Parser.parse_kernel_exn src

(* --- Ifconv --- *)

let test_ifconv_arith_to_selp () =
  let k =
    kernel_of
      {|.entry k () { .reg .pred %p; .reg .u32 %r;
         @%p add.u32 %r, %r, 1; exit; }|}
  in
  let k' = Ifconv.run k in
  Alcotest.(check bool) "clean" true (Ifconv.is_clean k');
  (* add into temp + selp *)
  match k'.Ast.k_body with
  | [ Ast.Inst (Ast.Always, Ast.Binary (Ast.Add, _, t, _, _), _);
      Ast.Inst (Ast.Always, Ast.Selp (_, "%r", Ast.Reg t', Ast.Reg "%r", "%p"), _); _ ] ->
      Alcotest.(check string) "selp takes temp when guard true" t t'
  | _ -> Alcotest.fail "unexpected if-conversion shape"

let test_ifconv_negated_guard () =
  let k =
    kernel_of
      {|.entry k () { .reg .pred %p; .reg .u32 %r;
         @!%p mov.u32 %r, 7; exit; }|}
  in
  let k' = Ifconv.run k in
  match k'.Ast.k_body with
  | [ _; Ast.Inst (Ast.Always, Ast.Selp (_, "%r", Ast.Reg "%r", Ast.Reg _, "%p"), _); _ ] ->
      ()
  | _ -> Alcotest.fail "negated guard should select old value when p is true"

let test_ifconv_store_diamond () =
  let k =
    kernel_of
      {|.entry k (.param .u64 out) { .reg .pred %p; .reg .u64 %a; .reg .u32 %r;
         ld.param.u64 %a, [out];
         @%p st.global.u32 [%a], %r; exit; }|}
  in
  let k' = Ifconv.run k in
  Alcotest.(check bool) "clean" true (Ifconv.is_clean k');
  (* A branch around the store must have been introduced. *)
  let has_branch =
    List.exists
      (function Ast.Inst ((Ast.If _ | Ast.Ifnot _), Ast.Bra _, _) -> true | _ -> false)
      k'.Ast.k_body
  in
  Alcotest.(check bool) "diamond" true has_branch;
  (* And the transformed kernel must still typecheck and build a CFG. *)
  Alcotest.(check int) "typechecks" 0 (List.length (Typecheck.check_kernel k'));
  ignore (Cfg.of_kernel k')

let test_ifconv_guarded_setp_diamond () =
  let k =
    kernel_of
      {|.entry k () { .reg .pred %p, %q; .reg .u32 %r;
         @%p setp.eq.u32 %q, %r, 0; exit; }|}
  in
  let k' = Ifconv.run k in
  Alcotest.(check bool) "clean" true (Ifconv.is_clean k')

let test_ifconv_semantics_preserved () =
  (* Same results from emulator before and after the transform. *)
  let src =
    {|
.entry k (.param .u64 out)
{
  .reg .u32 %tid, %v; .reg .u64 %o, %off; .reg .pred %p;
  mov.u32 %tid, %tid.x;
  setp.gt.u32 %p, %tid, 3;
  mov.u32 %v, 10;
  @%p add.u32 %v, %v, 100;
  @!%p mul.lo.u32 %v, %v, 3;
  ld.param.u64 %o, [out];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %o, %o, %off;
  st.global.u32 [%o], %v;
  exit;
}
|}
  in
  let m = parse src in
  let k' = Ifconv.run (List.hd m.Ast.m_kernels) in
  let m' = { m with Ast.m_kernels = [ k' ] } in
  let run m =
    let g = Mem.create 32 in
    ignore
      (Emulator.run m ~kernel:"k" ~args:[ Launch.Ptr 0 ] ~global:g
         ~grid:(Launch.dim3 1) ~block:(Launch.dim3 8));
    Mem.read_i32s g ~at:0 8
  in
  Alcotest.(check (list int)) "same results" (run m) (run m')

(* --- Ptx_to_ir --- *)

let vecadd_src =
  {|
.entry vecadd (.param .u64 a, .param .u64 c, .param .u32 n)
{
  .reg .u32 %i, %n; .reg .u64 %pa, %pc, %off; .reg .f32 %x; .reg .pred %p;
  mov.u32 %i, %tid.x;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;
  cvt.u64.u32 %off, %i;
  shl.b64 %off, %off, 2;
  ld.param.u64 %pa, [a];
  ld.param.u64 %pc, [c];
  add.u64 %pa, %pa, %off;
  add.u64 %pc, %pc, %off;
  ld.global.f32 %x, [%pa];
  st.global.f32 [%pc], %x;
DONE:
  exit;
}
|}

let test_translate_verifies () =
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  Alcotest.(check int) "verifier clean" 0
    (List.length (Verify.check_func tr.Ptx_to_ir.func));
  Alcotest.(check int) "warp 1" 1 tr.Ptx_to_ir.func.Ir.warp_size

let test_translate_specials_to_ctx () =
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  let has_tid_read =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (function
            | { Ir.i = Ir.Ctx_read (_, Ir.Tid Ast.X, 0); _ } -> true | _ -> false)
          b.Ir.insts)
      (Ir.blocks tr.Ptx_to_ir.func)
  in
  Alcotest.(check bool) "tid.x becomes ctx read" true has_tid_read

let test_translate_terminators () =
  let src =
    {|.entry k () { .reg .u32 %r; L: add.u32 %r, %r, 1; bar.sync 0; bra L; }|}
  in
  let tr = Ptx_to_ir.frontend (parse src) ~kernel:"k" in
  let terms = List.map (fun b -> b.Ir.term) (Ir.blocks tr.Ptx_to_ir.func) in
  Alcotest.(check bool) "has barrier" true
    (List.exists (function Ir.Barrier _ -> true | _ -> false) terms)

let test_translate_local_rebased () =
  let src =
    {|.entry k () { .local .u32 scratch[4]; .reg .u64 %a; .reg .u32 %v;
       mov.u64 %a, scratch; st.local.u32 [%a], 3; ld.local.u32 %v, [%a]; exit; }|}
  in
  let tr = Ptx_to_ir.frontend (parse src) ~kernel:"k" in
  Alcotest.(check int) "local bytes" 16 tr.Ptx_to_ir.local_decl_bytes;
  (* Local accesses read Local_base from the context. *)
  let base_reads =
    List.fold_left
      (fun acc (b : Ir.block) ->
        acc
        + List.length
            (List.filter
               (function
                 | { Ir.i = Ir.Ctx_read (_, Ir.Local_base, _); _ } -> true
                 | _ -> false)
               b.Ir.insts))
      0 (Ir.blocks tr.Ptx_to_ir.func)
  in
  Alcotest.(check int) "one base read per access" 2 base_reads

let test_translate_rejects_guards () =
  (* frontend if-converts, so guards never reach translate; but calling
     translate directly with a guarded kernel must fail. *)
  let k =
    kernel_of {|.entry k () { .reg .pred %p; .reg .u32 %r; @%p add.u32 %r, %r, 1; exit; }|}
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ptx_to_ir.translate { Ast.m_consts = []; m_funcs = []; m_kernels = [ k ] } k);
       false
     with Ptx_to_ir.Unsupported _ -> true)

(* --- Plan --- *)

let test_plan_entry_ids () =
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  (* entry (id 0) + two branch successors *)
  Alcotest.(check int) "three entries" 3 (List.length plan.Plan.entry_ids);
  Alcotest.(check (option int)) "entry is 0" (Some 0)
    (Plan.id_of_label plan tr.Ptx_to_ir.func.Ir.entry);
  Alcotest.(check (option string)) "id 0 roundtrip"
    (Some tr.Ptx_to_ir.func.Ir.entry)
    (Plan.label_of_id plan 0)

let test_plan_slots_cover_live_ins () =
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  List.iter
    (fun (l, _) ->
      ISet.iter
        (fun r ->
          match Plan.slot plan r with
          | Some _ -> ()
          | None -> Alcotest.failf "live-in %%%d at %s has no slot" r l)
        (Plan.entry_live plan l))
    plan.Plan.entry_ids

let test_plan_slots_disjoint () =
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:32 in
  let slots = Hashtbl.fold (fun r off acc -> (r, off) :: acc) plan.Plan.slots [] in
  List.iter
    (fun (r1, o1) ->
      let s1 = Ast.size_of (Ir.reg_ty tr.Ptx_to_ir.func r1).Ty.elt in
      Alcotest.(check bool) "after locals" true (o1 >= 32);
      List.iter
        (fun (r2, o2) ->
          if r1 <> r2 then
            let s2 = Ast.size_of (Ir.reg_ty tr.Ptx_to_ir.func r2).Ty.elt in
            Alcotest.(check bool) "no overlap" true (o1 + s1 <= o2 || o2 + s2 <= o1))
        slots)
    slots

(* --- Vectorize --- *)

let vectorized ?mode ws =
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  (tr, Vectorize.run ?mode ~plan tr.Ptx_to_ir.func ~ws)

let test_vectorize_verifies_all_widths () =
  List.iter
    (fun ws ->
      let _, v = vectorized ws in
      match Verify.check_func v.Vectorize.func with
      | [] -> ()
      | e :: _ -> Alcotest.failf "ws=%d: %s" ws e)
    [ 1; 2; 4; 8 ]

let test_vectorize_scheduler_first () =
  let _, v = vectorized 4 in
  let f = v.Vectorize.func in
  let entry = Ir.block f f.Ir.entry in
  Alcotest.(check bool) "entry is scheduler" true (entry.Ir.kind = Ir.Scheduler);
  match entry.Ir.term with
  | Ir.Switch (_, cases, _) ->
      Alcotest.(check int) "one case per entry point" (List.length v.Vectorize.entry_ids)
        (List.length cases)
  | _ -> Alcotest.fail "scheduler must switch on entry id"

let test_vectorize_divergence_check () =
  let _, v = vectorized 4 in
  let f = v.Vectorize.func in
  (* The block with the bounds check must end in switch(sum) with cases 0
     and 4 and an exit-handler default. *)
  let found =
    List.exists
      (fun (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Switch (_, [ (0, _); (4, _) ], d) ->
            (Ir.block f d).Ir.kind = Ir.Exit_handler
        | _ -> false)
      (Ir.blocks f)
  in
  Alcotest.(check bool) "sum switch present" true found

let test_vectorize_vector_ops_present () =
  let _, v = vectorized 4 in
  let has_vec_op =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (function
            | { Ir.i = Ir.Cmp (_, ty, _, _, _); _ } -> ty.Ty.width = 4
            | _ -> false)
          b.Ir.insts)
      (Ir.blocks v.Vectorize.func)
  in
  Alcotest.(check bool) "4-wide compare promoted" true has_vec_op

let test_vectorize_loads_stay_scalar () =
  List.iter
    (fun ws ->
      let _, v = vectorized ws in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun ({ Ir.i; _ } : Ir.li) ->
              match i with
              | Ir.Load (_, _, _, base, _) | Ir.Store (_, _, base, _, _) -> (
                  match base with
                  | Ir.R r ->
                      Alcotest.(check int) "scalar base" 1
                        (Ir.reg_ty v.Vectorize.func r).Ty.width
                  | Ir.Imm _ -> ())
              | _ -> ())
            b.Ir.insts)
        (Ir.blocks v.Vectorize.func))
    [ 2; 4 ]

let test_vectorize_ws1_structure () =
  let _, v = vectorized 1 in
  (* Scalar specialization: no vector types anywhere. *)
  Hashtbl.iter
    (fun _ (ty : Ty.t) -> Alcotest.(check int) "width 1" 1 ty.Ty.width)
    v.Vectorize.func.Ir.rty

let test_vectorize_exit_sets_status () =
  let _, v = vectorized 4 in
  List.iter
    (fun (b : Ir.block) ->
      if b.Ir.term = Ir.Return then
        Alcotest.(check bool)
          (Fmt.str "%s sets status" b.Ir.label)
          true
          (List.exists
             (function { Ir.i = Ir.Set_status _; _ } -> true | _ -> false)
             b.Ir.insts))
    (Ir.blocks v.Vectorize.func)

let test_vectorize_restores_match_plan () =
  let tr, v = vectorized 4 in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  List.iter
    (fun (id, count) ->
      match Plan.label_of_id plan id with
      | None -> Alcotest.fail "unknown entry id"
      | Some l ->
          Alcotest.(check int)
            (Fmt.str "restores at entry %d" id)
            (ISet.cardinal (Plan.entry_live plan l))
            count)
    v.Vectorize.restores_per_entry

let test_vectorize_static_uniform_branch () =
  (* Under TIE, the bounds check (tid-free in a 1-thread-per-lane uniform
     sense) stays divergent, but a branch on ntid must become uniform. *)
  let src =
    {|
.entry k (.param .u64 out)
{
  .reg .u32 %n, %v; .reg .u64 %o; .reg .pred %p;
  mov.u32 %n, %ntid.x;
  setp.gt.u32 %p, %n, 64;
  @%p bra BIG;
  mov.u32 %v, 1;
  bra OUT;
BIG:
  mov.u32 %v, 2;
OUT:
  ld.param.u64 %o, [out];
  st.global.u32 [%o], %v;
  exit;
}
|}
  in
  let tr = Ptx_to_ir.frontend (parse src) ~kernel:"k" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  let v = Vectorize.run ~mode:Vectorize.Static_tie ~plan tr.Ptx_to_ir.func ~ws:4 in
  Verify.check_exn v.Vectorize.func;
  let has_uniform_branch =
    List.exists
      (fun (b : Ir.block) ->
        match b.Ir.term with Ir.Branch _ -> true | _ -> false)
      (Ir.blocks v.Vectorize.func)
  in
  Alcotest.(check bool) "uniform branch kept scalar" true has_uniform_branch

let test_vectorize_static_fewer_instrs () =
  let _, dyn = vectorized ~mode:Vectorize.Dynamic 4 in
  let _, sta = vectorized ~mode:Vectorize.Static_tie 4 in
  ignore (Dce.run dyn.Vectorize.func);
  ignore (Dce.run sta.Vectorize.func);
  Alcotest.(check bool) "TIE reduces static instructions" true
    (Ir.size sta.Vectorize.func < Ir.size dyn.Vectorize.func)

(* --- DCE --- *)

let test_dce_removes_dead_pure () =
  let b = Vekt_ir.Builder.create "d" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let s32 = Ty.scalar Ast.S32 in
  let dead = Vekt_ir.Builder.fresh_reg b s32 in
  Vekt_ir.Builder.emit b (Ir.Mov (s32, dead, Ir.Imm (Scalar_ops.I 5L, Ast.S32)));
  let live = Vekt_ir.Builder.fresh_reg b s32 in
  Vekt_ir.Builder.emit b (Ir.Mov (s32, live, Ir.Imm (Scalar_ops.I 6L, Ast.S32)));
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0, Ir.R live));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  let removed = Dce.run f in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check int) "two remain" 2 (Ir.size f)

let test_dce_transitive () =
  let b = Vekt_ir.Builder.create "d" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let s32 = Ty.scalar Ast.S32 in
  let a = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Mov (s32, d, Ir.Imm (Scalar_ops.I 1L, Ast.S32))) in
  let c = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R a, Ir.R a)) in
  ignore c;
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "both removed" 2 (Dce.run f)

let test_dce_keeps_side_effects () =
  let b = Vekt_ir.Builder.create "d" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let s32 = Ty.scalar Ast.S32 in
  let old = Vekt_ir.Builder.fresh_reg b s32 in
  (* atomic's destination is dead but the RMW must stay *)
  Vekt_ir.Builder.emit b
    (Ir.Atomic (Ast.Global, Ast.Atom_add, Ast.S32, old,
                Ir.Imm (Scalar_ops.I 0L, Ast.S64), 0, Ir.Imm (Scalar_ops.I 1L, Ast.S32), None));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "nothing removed" 0 (Dce.run f)


(* --- Constfold / CSE / Fusion / Passes --- *)

module Constfold = Vekt_transform.Constfold
module Cse = Vekt_transform.Cse
module Fusion = Vekt_transform.Fusion
module Passes = Vekt_transform.Passes

let s32 = Ty.scalar Ast.S32
let imm n = Ir.Imm (Scalar_ops.I (Int64.of_int n), Ast.S32)

let test_constfold_arith () =
  let b = Vekt_ir.Builder.create "cf" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let x = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Mov (s32, d, imm 6)) in
  let y = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Mul_lo, s32, d, Ir.R x, imm 7)) in
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 0, 0, Ir.R y));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  let st = Constfold.run f in
  Alcotest.(check int) "folded" 1 st.Constfold.folded;
  (* y must now be a constant move of 42 *)
  let has42 =
    List.exists
      (function
        | { Ir.i = Ir.Mov (_, d, Ir.Imm (Scalar_ops.I 42L, _)); _ } -> d = y
        | _ -> false)
      (Ir.block f "entry").Ir.insts
  in
  Alcotest.(check bool) "42" true has42

let test_constfold_kill_on_redef () =
  let b = Vekt_ir.Builder.create "cf" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let x = Vekt_ir.Builder.fresh_reg b s32 in
  Vekt_ir.Builder.emit b (Ir.Mov (s32, x, imm 6));
  (* redefinition from memory: x is no longer constant *)
  Vekt_ir.Builder.emit b (Ir.Load (Ast.Global, Ast.S32, x, imm 0, 0));
  let y = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 1)) in
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 8, 0, Ir.R y));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  let st = Constfold.run f in
  Alcotest.(check int) "nothing folded" 0 st.Constfold.folded

let test_constfold_branch () =
  let b = Vekt_ir.Builder.create "cf" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let p = Vekt_ir.Builder.emit_val b (Ty.scalar Ast.Pred) (fun d ->
      Ir.Cmp (Ast.Lt, s32, d, imm 1, imm 2)) in
  Vekt_ir.Builder.set_term b (Ir.Branch (Ir.R p, "a", "bb"));
  ignore (Vekt_ir.Builder.start_block b "a");
  Vekt_ir.Builder.set_term b Ir.Return;
  ignore (Vekt_ir.Builder.start_block b "bb");
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  let st = Constfold.run f in
  Alcotest.(check int) "branch folded" 1 st.Constfold.branches_folded;
  Alcotest.(check bool) "now a jump" true
    ((Ir.block f "entry").Ir.term = Ir.Jump "a")

let test_cse_basic () =
  let b = Vekt_ir.Builder.create "cse" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let x = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Load (Ast.Global, Ast.S32, d, imm 0, 0)) in
  let a = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 3)) in
  let c = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 3)) in
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 8, 0, Ir.R a));
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 16, 0, Ir.R c));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "one replaced" 1 (Cse.run f);
  let is_copy =
    List.exists
      (function
        | { Ir.i = Ir.Mov (_, d, Ir.R s); _ } -> d = c && s = a | _ -> false)
      (Ir.block f "entry").Ir.insts
  in
  Alcotest.(check bool) "copy of first" true is_copy

let test_cse_respects_redefinition () =
  (* non-SSA: x is redefined between the two identical expressions, so the
     second must NOT be replaced. *)
  let b = Vekt_ir.Builder.create "cse" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let x = Vekt_ir.Builder.fresh_reg b s32 in
  Vekt_ir.Builder.emit b (Ir.Mov (s32, x, imm 1));
  let a = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 3)) in
  Vekt_ir.Builder.emit b (Ir.Mov (s32, x, imm 2));
  let c = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 3)) in
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 8, 0, Ir.R a));
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 16, 0, Ir.R c));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "nothing replaced" 0 (Cse.run f)

let test_cse_result_clobbered () =
  (* the previous result register is overwritten before the reuse point *)
  let b = Vekt_ir.Builder.create "cse" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let x = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Mov (s32, d, imm 1)) in
  let a = Vekt_ir.Builder.fresh_reg b s32 in
  Vekt_ir.Builder.emit b (Ir.Bin (Ast.Add, s32, a, Ir.R x, imm 3));
  Vekt_ir.Builder.emit b (Ir.Load (Ast.Global, Ast.S32, a, imm 0, 0));
  let c = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 3)) in
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 8, 0, Ir.R a));
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 16, 0, Ir.R c));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "nothing replaced" 0 (Cse.run f)

let test_fusion_chain () =
  let b = Vekt_ir.Builder.create "fuse" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let x = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Mov (s32, d, imm 1)) in
  Vekt_ir.Builder.set_term b (Ir.Jump "mid");
  ignore (Vekt_ir.Builder.start_block b "mid");
  let y = Vekt_ir.Builder.emit_val b s32 (fun d -> Ir.Bin (Ast.Add, s32, d, Ir.R x, imm 1)) in
  Vekt_ir.Builder.set_term b (Ir.Jump "last");
  ignore (Vekt_ir.Builder.start_block b "last");
  Vekt_ir.Builder.emit b (Ir.Store (Ast.Global, Ast.S32, imm 0, 0, Ir.R y));
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "two fused" 2 (Fusion.run f);
  Alcotest.(check int) "one block" 1 (List.length (Ir.blocks f));
  Alcotest.(check int) "verifies" 0 (List.length (Verify.check_func f))

let test_fusion_respects_kinds () =
  let b = Vekt_ir.Builder.create "fuse" in
  ignore (Vekt_ir.Builder.start_block b ~kind:Ir.Entry_handler "entry");
  Vekt_ir.Builder.set_term b (Ir.Jump "body");
  ignore (Vekt_ir.Builder.start_block b "body");
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "no fusion across kinds" 0 (Fusion.run f)

let test_fusion_multiple_preds () =
  let b = Vekt_ir.Builder.create "fuse" in
  ignore (Vekt_ir.Builder.start_block b "entry");
  let p = Vekt_ir.Builder.fresh_reg b (Ty.scalar Ast.Pred) in
  Vekt_ir.Builder.emit b (Ir.Cmp (Ast.Lt, s32, p, imm 1, imm 2));
  Vekt_ir.Builder.set_term b (Ir.Branch (Ir.R p, "a", "bb"));
  ignore (Vekt_ir.Builder.start_block b "a");
  Vekt_ir.Builder.set_term b (Ir.Jump "join");
  ignore (Vekt_ir.Builder.start_block b "bb");
  Vekt_ir.Builder.set_term b (Ir.Jump "join");
  ignore (Vekt_ir.Builder.start_block b "join");
  Vekt_ir.Builder.set_term b Ir.Return;
  let f = Vekt_ir.Builder.func b in
  Alcotest.(check int) "join not fused" 0 (Fusion.run f)

let test_passes_semantics_preserved () =
  (* optimize must not change results of a whole-pipeline run; this is also
     covered by the pipeline differential suite, but here we check the
     pass-pipeline on the raw scalar translation. *)
  let tr = Ptx_to_ir.frontend (parse vecadd_src) ~kernel:"vecadd" in
  let st = Passes.optimize tr.Ptx_to_ir.func in
  Alcotest.(check bool) "did something or nothing, but verified" true
    (Passes.changes_of st "dce" >= 0);
  Alcotest.(check int) "verifies after passes" 0
    (List.length (Verify.check_func tr.Ptx_to_ir.func))


(* --- Affine analysis & coalesced memory accesses --- *)

module Affine = Vekt_analysis.Affine

let classify_of src ~kernel =
  let tr = Ptx_to_ir.frontend (parse src) ~kernel in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  let slotted = Hashtbl.fold (fun r _ acc -> r :: acc) plan.Plan.slots [] in
  (tr, plan, Affine.classify ~slotted tr.Ptx_to_ir.func)

let cls_of tr cls name =
  let r = Hashtbl.find tr.Ptx_to_ir.reg_map name in
  Option.value (Hashtbl.find_opt cls r) ~default:Affine.Unknown

let test_affine_straightline () =
  let src =
    {|.entry k (.param .u64 p)
      { .reg .u32 %t; .reg .u64 %a, %o; .reg .f32 %v;
        mov.u32 %t, %tid.x;
        cvt.u64.u32 %o, %t;
        shl.b64 %o, %o, 2;
        ld.param.u64 %a, [p];
        add.u64 %a, %a, %o;
        ld.global.f32 %v, [%a];
        st.global.f32 [%a], %v;
        exit; }|}
  in
  let tr, _, cls = classify_of src ~kernel:"k" in
  Alcotest.(check bool) "tid affine 1" true
    (Affine.equal_cls (cls_of tr cls "%t") (Affine.Affine 1L));
  (* %a and %o are redefined, so the flow-insensitive class degrades — the
     vectorizer's per-block refinement recovers them (tested below) *)
  Alcotest.(check bool) "param base uniform before add" true
    (cls_of tr cls "%a" <> Affine.Affine 4L)

let test_affine_transfer_local () =
  (* the transfer function itself computes the refined classes *)
  let get = function 0 -> Affine.Affine 1L | 1 -> Affine.Uniform | _ -> Affine.Unknown in
  let s32t = Ty.scalar Ast.S32 in
  Alcotest.(check bool) "add" true
    (Affine.equal_cls
       (Affine.transfer ~get (Ir.Bin (Ast.Add, s32t, 9, Ir.R 0, Ir.R 1)))
       (Affine.Affine 1L));
  Alcotest.(check bool) "shl" true
    (Affine.equal_cls
       (Affine.transfer ~get
          (Ir.Bin (Ast.Shl, s32t, 9, Ir.R 0, Ir.Imm (Scalar_ops.I 2L, Ast.U32))))
       (Affine.Affine 4L));
  Alcotest.(check bool) "mul by const" true
    (Affine.equal_cls
       (Affine.transfer ~get
          (Ir.Bin (Ast.Mul_lo, s32t, 9, Ir.Imm (Scalar_ops.I 12L, Ast.S32), Ir.R 0)))
       (Affine.Affine 12L));
  Alcotest.(check bool) "affine - affine is uniform" true
    (Affine.equal_cls
       (Affine.transfer ~get (Ir.Bin (Ast.Sub, s32t, 9, Ir.R 0, Ir.R 0)))
       Affine.Uniform);
  Alcotest.(check bool) "affine * affine unknown" true
    (Affine.equal_cls
       (Affine.transfer ~get (Ir.Bin (Ast.Mul_lo, s32t, 9, Ir.R 0, Ir.R 0)))
       Affine.Unknown)

let vecadd_affine_src =
  {|
.entry va (.param .u64 a, .param .u64 c, .param .u32 n)
{
  .reg .u32 %i, %n; .reg .u64 %pa, %pc, %off; .reg .f32 %x; .reg .pred %p;
  mov.u32 %i, %tid.x;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;
  cvt.u64.u32 %off, %i;
  shl.b64 %off, %off, 2;
  ld.param.u64 %pa, [a];
  ld.param.u64 %pc, [c];
  add.u64 %pa, %pa, %off;
  add.u64 %pc, %pc, %off;
  ld.global.f32 %x, [%pa];
  st.global.f32 [%pc], %x;
DONE:
  exit;
}
|}

let count_kind f pred =
  List.fold_left
    (fun acc (b : Ir.block) ->
      acc
      + List.length
          (List.filter (fun ({ Ir.i; _ } : Ir.li) -> pred i) b.Ir.insts))
    0 (Ir.blocks f)

let test_affine_vectorize_emits_vload () =
  let tr = Ptx_to_ir.frontend (parse vecadd_affine_src) ~kernel:"va" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  let v =
    Vectorize.run ~mode:Vectorize.Static_tie ~affine:true ~plan tr.Ptx_to_ir.func ~ws:4
  in
  Verify.check_exn v.Vectorize.func;
  Alcotest.(check int) "one vload" 1
    (count_kind v.Vectorize.func (function Ir.Vload _ -> true | _ -> false));
  Alcotest.(check int) "one vstore" 1
    (count_kind v.Vectorize.func (function Ir.Vstore _ -> true | _ -> false));
  Alcotest.(check int) "no scalar global loads remain" 0
    (count_kind v.Vectorize.func (function
      | Ir.Load (Ast.Global, _, _, _, _) -> true
      | _ -> false))

let test_affine_dynamic_no_vload () =
  (* dynamic warps are not consecutive, so affine vector loads must not be
     emitted; uniform loads are still allowed *)
  let tr = Ptx_to_ir.frontend (parse vecadd_affine_src) ~kernel:"va" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  let v = Vectorize.run ~mode:Vectorize.Dynamic ~affine:true ~plan tr.Ptx_to_ir.func ~ws:4 in
  Verify.check_exn v.Vectorize.func;
  Alcotest.(check int) "no vloads" 0
    (count_kind v.Vectorize.func (function Ir.Vload _ | Ir.Vstore _ -> true | _ -> false))

let test_affine_off_no_vload () =
  let tr = Ptx_to_ir.frontend (parse vecadd_affine_src) ~kernel:"va" in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:0 in
  let v = Vectorize.run ~mode:Vectorize.Static_tie ~plan tr.Ptx_to_ir.func ~ws:4 in
  Alcotest.(check int) "no vloads without the flag" 0
    (count_kind v.Vectorize.func (function Ir.Vload _ | Ir.Vstore _ -> true | _ -> false))

let () =
  Alcotest.run "transform"
    [
      ( "ifconv",
        [
          Alcotest.test_case "arith to selp" `Quick test_ifconv_arith_to_selp;
          Alcotest.test_case "negated guard" `Quick test_ifconv_negated_guard;
          Alcotest.test_case "store diamond" `Quick test_ifconv_store_diamond;
          Alcotest.test_case "guarded setp" `Quick test_ifconv_guarded_setp_diamond;
          Alcotest.test_case "semantics" `Quick test_ifconv_semantics_preserved;
        ] );
      ( "ptx_to_ir",
        [
          Alcotest.test_case "verifies" `Quick test_translate_verifies;
          Alcotest.test_case "specials" `Quick test_translate_specials_to_ctx;
          Alcotest.test_case "terminators" `Quick test_translate_terminators;
          Alcotest.test_case "local rebased" `Quick test_translate_local_rebased;
          Alcotest.test_case "rejects guards" `Quick test_translate_rejects_guards;
        ] );
      ( "plan",
        [
          Alcotest.test_case "entry ids" `Quick test_plan_entry_ids;
          Alcotest.test_case "slots cover live-ins" `Quick test_plan_slots_cover_live_ins;
          Alcotest.test_case "slots disjoint" `Quick test_plan_slots_disjoint;
        ] );
      ( "vectorize",
        [
          Alcotest.test_case "verifies all widths" `Quick test_vectorize_verifies_all_widths;
          Alcotest.test_case "scheduler first" `Quick test_vectorize_scheduler_first;
          Alcotest.test_case "divergence check" `Quick test_vectorize_divergence_check;
          Alcotest.test_case "vector ops" `Quick test_vectorize_vector_ops_present;
          Alcotest.test_case "loads scalar" `Quick test_vectorize_loads_stay_scalar;
          Alcotest.test_case "ws1 structure" `Quick test_vectorize_ws1_structure;
          Alcotest.test_case "exit status" `Quick test_vectorize_exit_sets_status;
          Alcotest.test_case "restores match plan" `Quick test_vectorize_restores_match_plan;
          Alcotest.test_case "static uniform branch" `Quick test_vectorize_static_uniform_branch;
          Alcotest.test_case "TIE fewer instrs" `Quick test_vectorize_static_fewer_instrs;
        ] );
      ( "dce",
        [
          Alcotest.test_case "dead pure" `Quick test_dce_removes_dead_pure;
          Alcotest.test_case "transitive" `Quick test_dce_transitive;
          Alcotest.test_case "side effects" `Quick test_dce_keeps_side_effects;
        ] );
      ( "constfold",
        [
          Alcotest.test_case "arith" `Quick test_constfold_arith;
          Alcotest.test_case "kill on redef" `Quick test_constfold_kill_on_redef;
          Alcotest.test_case "branch" `Quick test_constfold_branch;
        ] );
      ( "cse",
        [
          Alcotest.test_case "basic" `Quick test_cse_basic;
          Alcotest.test_case "operand redefined" `Quick test_cse_respects_redefinition;
          Alcotest.test_case "result clobbered" `Quick test_cse_result_clobbered;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "chain" `Quick test_fusion_chain;
          Alcotest.test_case "kinds" `Quick test_fusion_respects_kinds;
          Alcotest.test_case "multiple preds" `Quick test_fusion_multiple_preds;
        ] );
      ( "passes",
        [ Alcotest.test_case "semantics preserved" `Quick test_passes_semantics_preserved ] );
      ( "affine",
        [
          Alcotest.test_case "straightline" `Quick test_affine_straightline;
          Alcotest.test_case "transfer" `Quick test_affine_transfer_local;
          Alcotest.test_case "vload emitted" `Quick test_affine_vectorize_emits_vload;
          Alcotest.test_case "dynamic no vload" `Quick test_affine_dynamic_no_vload;
          Alcotest.test_case "flag off" `Quick test_affine_off_no_vload;
        ] );
    ]
