(* Tests for the runtime: translation cache, execution manager (warp
   formation policies, barrier bookkeeping, CTA partitioning), statistics
   and the host API. *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module EM = Vekt_runtime.Exec_manager
module Stats = Vekt_runtime.Stats
module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx

let diverging_src =
  {|
.entry div4 (.param .u64 out)
{
  .reg .u32 %tid, %v, %bucket;
  .reg .u64 %po, %off;
  .reg .pred %p;
  mov.u32 %tid, %tid.x;
  and.b32 %bucket, %tid, 3;
  setp.eq.u32 %p, %bucket, 0;
  @%p bra B0;
  setp.eq.u32 %p, %bucket, 1;
  @%p bra B1;
  setp.eq.u32 %p, %bucket, 2;
  @%p bra B2;
  mov.u32 %v, 33;
  bra OUT;
B0: mov.u32 %v, 10;
  bra OUT;
B1: mov.u32 %v, 11;
  bra OUT;
B2: mov.u32 %v, 22;
OUT:
  ld.param.u64 %po, [out];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %v;
  exit;
}
|}

let barrier_src =
  {|
.entry bexch (.param .u64 out)
{
  .reg .u32 %tid, %v, %other;
  .reg .u64 %po, %off, %sa;
  .shared .u32 buf[32];
  mov.u32 %tid, %tid.x;
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  mov.u64 %sa, buf;
  add.u64 %sa, %sa, %off;
  st.shared.u32 [%sa], %tid;
  bar.sync 0;
  xor.b32 %other, %tid, 31;
  cvt.u64.u32 %off, %other;
  shl.b64 %off, %off, 2;
  mov.u64 %sa, buf;
  add.u64 %sa, %sa, %off;
  ld.shared.u32 %v, [%sa];
  ld.param.u64 %po, [out];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %v;
  exit;
}
|}

(* --- Translation cache --- *)

let prepare ?mode ?widths src ~kernel =
  TC.prepare ?mode ?widths (Parser.parse_module src) ~kernel

let test_cache_lazy_and_memoized () =
  let c = prepare diverging_src ~kernel:"div4" in
  Alcotest.(check int) "nothing compiled yet" 0 c.TC.compile_count;
  let e1 = TC.get c ~ws:4 () in
  Alcotest.(check int) "one compile" 1 c.TC.compile_count;
  let e2 = TC.get c ~ws:4 () in
  Alcotest.(check int) "cached" 1 c.TC.compile_count;
  Alcotest.(check bool) "same entry" true (e1 == e2);
  ignore (TC.get c ~ws:1 ());
  Alcotest.(check int) "second width compiles" 2 c.TC.compile_count

let test_cache_rejects_unknown_width () =
  let c = prepare diverging_src ~kernel:"div4" in
  Alcotest.(check bool) "width 3 invalid" true
    (try
       ignore (TC.get c ~ws:3 ());
       false
     with Invalid_argument _ -> true)

let test_cache_best_width () =
  let c = prepare diverging_src ~kernel:"div4" in
  Alcotest.(check int) "7 -> 4" 4 (TC.best_width c 7);
  Alcotest.(check int) "3 -> 2" 2 (TC.best_width c 3);
  Alcotest.(check int) "1 -> 1" 1 (TC.best_width c 1)

let test_cache_requires_scalar () =
  Alcotest.(check bool) "widths without 1 rejected" true
    (try
       ignore (prepare ~widths:[ 4; 2 ] diverging_src ~kernel:"div4");
       false
     with Invalid_argument _ -> true)

let test_cache_entry_ids_shared () =
  let c = prepare diverging_src ~kernel:"div4" in
  let e4 = TC.get c ~ws:4 () in
  let e1 = TC.get c ~ws:1 () in
  Alcotest.(check bool) "same entry ids across widths" true
    (e4.TC.vect.Vectorize.entry_ids = e1.TC.vect.Vectorize.entry_ids)

(* --- Execution manager --- *)

let launch ?(mode = Vectorize.Dynamic) ?(block = 32) ?(grid = 1) ?workers ?fuel
    src ~kernel =
  let cache = TC.prepare ~mode (Parser.parse_module src) ~kernel in
  let global = Mem.create 1024 in
  let k = Option.get (Ast.find_kernel (Parser.parse_module src) kernel) in
  let params = Launch.param_block k [ Launch.Ptr 0 ] in
  let stats =
    EM.launch_kernel ?workers ?fuel cache ~grid:(Launch.dim3 grid)
      ~block:(Launch.dim3 block) ~global ~params ~consts:(Mem.create 0)
  in
  (stats, global)

let test_em_four_way_divergence () =
  (* four-way bucket switch: after full divergence, reformation should
     rebuild full warps (threads mod 4 reconverge at OUT). *)
  let stats, global = launch diverging_src ~kernel:"div4" in
  let expected = List.init 32 (fun t -> [| 10; 11; 22; 33 |].(t land 3)) in
  Alcotest.(check (list int)) "values" expected (Mem.read_i32s global ~at:0 32);
  Alcotest.(check bool) "warps reformed" true (Stats.average_warp_size stats > 1.5)

let test_em_barrier_exchange () =
  let stats, global = launch barrier_src ~kernel:"bexch" in
  let expected = List.init 32 (fun t -> t lxor 31) in
  Alcotest.(check (list int)) "exchange" expected (Mem.read_i32s global ~at:0 32);
  Alcotest.(check bool) "barrier released" true (stats.Stats.barrier_releases >= 32)

let test_em_static_warps_row_aligned () =
  (* static policy with 2-D blocks: warps never cross tid.y rows *)
  let src =
    {|
.entry rows (.param .u64 out)
{
  .reg .u32 %tx, %ty, %idx;
  .reg .u64 %po, %off;
  mov.u32 %tx, %tid.x;
  mov.u32 %ty, %tid.y;
  mad.lo.u32 %idx, %ty, 6, %tx;
  ld.param.u64 %po, [out];
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %idx;
  exit;
}
|}
  in
  let cache = TC.prepare ~mode:Vectorize.Static_tie (Parser.parse_module src) ~kernel:"rows" in
  let global = Mem.create 1024 in
  let k = Option.get (Ast.find_kernel (Parser.parse_module src) "rows") in
  let params = Launch.param_block k [ Launch.Ptr 0 ] in
  let stats =
    EM.launch_kernel cache ~grid:(Launch.dim3 1)
      ~block:(Launch.dim3 6 ~y:4) (* 6-wide rows: warps must split 4+2 *)
      ~global ~params ~consts:(Mem.create 0)
  in
  Alcotest.(check (list int)) "identity" (List.init 24 Fun.id)
    (Mem.read_i32s global ~at:0 24);
  (* 4 rows x (one warp of 4 + one warp of 2) *)
  Alcotest.(check (option int)) "warps of 4" (Some 4)
    (Hashtbl.find_opt stats.Stats.warp_hist 4);
  Alcotest.(check (option int)) "warps of 2" (Some 4)
    (Hashtbl.find_opt stats.Stats.warp_hist 2)

let test_em_multicta_partitioning () =
  (* results must be independent of the worker count *)
  let run workers =
    let _, global = launch ~grid:8 ~workers diverging_src ~kernel:"div4" in
    Bytes.to_string (Mem.bytes global)
  in
  let r1 = run 1 in
  Alcotest.(check bool) "1 vs 3 workers" true (String.equal r1 (run 3));
  Alcotest.(check bool) "1 vs 8 workers" true (String.equal r1 (run 8))

let test_em_wall_cycles_max_not_sum () =
  let stats1, _ = launch ~grid:4 ~workers:1 diverging_src ~kernel:"div4" in
  let stats4, _ = launch ~grid:4 ~workers:4 diverging_src ~kernel:"div4" in
  Alcotest.(check bool) "parallel wall < serial wall" true
    (stats4.Stats.wall_cycles < stats1.Stats.wall_cycles);
  (* total work is the same *)
  Alcotest.(check int) "same dyn instrs"
    stats1.Stats.counters.Interp.dyn_instrs stats4.Stats.counters.Interp.dyn_instrs

(* --- Stats --- *)

let test_stats_empty_edge_cases () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "avg warp size of empty" 0.0 (Stats.average_warp_size s);
  Alcotest.(check (float 0.0)) "warp fraction of empty" 0.0 (Stats.warp_fraction s 4);
  Alcotest.(check (float 0.0)) "restores/thread of empty" 0.0
    (Stats.average_restores_per_thread s);
  (* restores with no kernel entries must not divide by zero *)
  s.Stats.counters.Interp.restores <- 17;
  Alcotest.(check (float 0.0)) "restores with empty histogram" 0.0
    (Stats.average_restores_per_thread s);
  (* a size never recorded has fraction 0 even with a populated histogram *)
  Stats.record_warp s 4;
  Alcotest.(check (float 0.0)) "absent size fraction" 0.0 (Stats.warp_fraction s 2);
  Alcotest.(check (float 1e-9)) "present size fraction" 1.0 (Stats.warp_fraction s 4)

let test_stats_merge_wall_max_counters_sum () =
  (* wall cycles model parallel workers (max); everything else is total
     work (sum). *)
  let mk em body restores ws =
    let s = Stats.create () in
    s.Stats.em_cycles <- em;
    s.Stats.counters.Interp.cycles_body <- body;
    s.Stats.counters.Interp.restores <- restores;
    Stats.record_warp s ws;
    Stats.record_warp s ws;
    s
  in
  let a = mk 100.0 50.0 3 4 in
  let b = mk 10.0 20.0 4 2 in
  let into = Stats.create () in
  Stats.merge_into ~into a;
  Stats.merge_into ~into b;
  Alcotest.(check (float 1e-9)) "em cycles sum" 110.0 into.Stats.em_cycles;
  Alcotest.(check (float 1e-9)) "body cycles sum" 70.0
    into.Stats.counters.Interp.cycles_body;
  Alcotest.(check int) "restores sum" 7 into.Stats.counters.Interp.restores;
  Alcotest.(check (float 1e-9)) "wall is max worker, not serial sum" 150.0
    into.Stats.wall_cycles;
  Alcotest.(check (float 1e-9)) "serial total is the sum" 180.0
    (Stats.total_cycles into);
  Alcotest.(check (option int)) "hist 4 merged" (Some 2)
    (Hashtbl.find_opt into.Stats.warp_hist 4);
  Alcotest.(check (option int)) "hist 2 merged" (Some 2)
    (Hashtbl.find_opt into.Stats.warp_hist 2);
  (* merging a third worker below the current wall leaves the max *)
  Stats.merge_into ~into (mk 5.0 1.0 0 1);
  Alcotest.(check (float 1e-9)) "wall keeps max" 150.0 into.Stats.wall_cycles

let test_fuel_exhaustion_has_context () =
  (* a loop that diverges every iteration yields forever, burning the
     subkernel-call budget; the error must name the kernel and CTA
     rather than being a bare Out_of_fuel *)
  match
    launch ~block:2 ~fuel:64
      {|
.entry spin (.param .u64 out)
{
  .reg .u32 %tid;
  .reg .pred %p;
LOOP:
  mov.u32 %tid, %tid.x;
  setp.eq.u32 %p, %tid, 0;
  @%p bra LOOP;
  bra LOOP;
}
|}
      ~kernel:"spin"
  with
  | _ -> Alcotest.fail "expected a structured fuel error"
  | exception Vekt_error.Error (Vekt_error.Fuel _ as e) ->
      let msg = Vekt_error.to_string e in
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Fmt.str "message %S mentions %S" msg sub)
            true
            (let n = String.length msg and m = String.length sub in
             let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
             go 0))
        [ "spin"; "out of fuel"; "CTA (0,0,0)"; "subkernel calls made" ]

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.record_warp a 4;
  Stats.record_warp b 4;
  Stats.record_warp b 2;
  a.Stats.em_cycles <- 100.0;
  b.Stats.em_cycles <- 50.0;
  let into = Stats.create () in
  Stats.merge_into ~into a;
  Stats.merge_into ~into b;
  Alcotest.(check (option int)) "hist 4" (Some 2) (Hashtbl.find_opt into.Stats.warp_hist 4);
  Alcotest.(check (float 1e-9)) "em sums" 150.0 into.Stats.em_cycles;
  Alcotest.(check (float 0.01)) "avg ws" (10.0 /. 3.0) (Stats.average_warp_size into)

(* --- API --- *)

let test_api_malloc_alignment_and_oom () =
  let dev = Api.create_device ~global_bytes:4096 () in
  let a = Api.malloc dev 10 in
  let b = Api.malloc dev 10 in
  Alcotest.(check int) "aligned" 0 (a mod 16);
  Alcotest.(check bool) "disjoint" true (b >= a + 10);
  Alcotest.(check bool) "oom" true
    (try
       ignore (Api.malloc dev 100_000);
       false
     with Vekt_error.Error (Vekt_error.Resource r) ->
       r.what = "device global memory" && r.requested = 100_000)

let test_api_bad_module () =
  let dev = Api.create_device () in
  Alcotest.(check bool) "parse error surfaced" true
    (try
       ignore (Api.load_module dev ".entry k ( { }");
       false
     with Vekt_error.Error (Vekt_error.Compile c) ->
       c.stage = Vekt_error.Parse && c.line <> None);
  Alcotest.(check bool) "type error surfaced" true
    (try
       ignore (Api.load_module dev {|.entry k () { add.u32 %a, %a, 1; exit; }|});
       false
     with Vekt_error.Error (Vekt_error.Compile c) ->
       c.stage = Vekt_error.Typecheck)

let test_api_unknown_kernel () =
  let dev = Api.create_device () in
  let m = Api.load_module dev {|.entry k () { exit; }|} in
  Alcotest.(check bool) "unknown kernel" true
    (try
       ignore (Api.launch m ~kernel:"nope" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 1) ~args:[]);
       false
     with Vekt_error.Error (Vekt_error.Compile c) ->
       c.kernel = "nope" && c.stage = Vekt_error.Frontend)

let test_api_arg_mismatch () =
  let dev = Api.create_device () in
  let m = Api.load_module dev {|.entry k (.param .u32 n) { exit; }|} in
  Alcotest.(check bool) "arity" true
    (try
       ignore (Api.launch m ~kernel:"k" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 1) ~args:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kind" true
    (try
       ignore
         (Api.launch m ~kernel:"k" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 1)
            ~args:[ Launch.F32 1.0 ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "runtime"
    [
      ( "translation_cache",
        [
          Alcotest.test_case "lazy+memoized" `Quick test_cache_lazy_and_memoized;
          Alcotest.test_case "unknown width" `Quick test_cache_rejects_unknown_width;
          Alcotest.test_case "best width" `Quick test_cache_best_width;
          Alcotest.test_case "requires scalar" `Quick test_cache_requires_scalar;
          Alcotest.test_case "entry ids shared" `Quick test_cache_entry_ids_shared;
        ] );
      ( "exec_manager",
        [
          Alcotest.test_case "4-way divergence" `Quick test_em_four_way_divergence;
          Alcotest.test_case "barrier exchange" `Quick test_em_barrier_exchange;
          Alcotest.test_case "static rows" `Quick test_em_static_warps_row_aligned;
          Alcotest.test_case "partitioning" `Quick test_em_multicta_partitioning;
          Alcotest.test_case "wall cycles" `Quick test_em_wall_cycles_max_not_sum;
          Alcotest.test_case "fuel error context" `Quick
            test_fuel_exhaustion_has_context;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge wall max" `Quick
            test_stats_merge_wall_max_counters_sum;
          Alcotest.test_case "empty edge cases" `Quick test_stats_empty_edge_cases;
        ] );
      ( "api",
        [
          Alcotest.test_case "malloc" `Quick test_api_malloc_alignment_and_oom;
          Alcotest.test_case "bad module" `Quick test_api_bad_module;
          Alcotest.test_case "unknown kernel" `Quick test_api_unknown_kernel;
          Alcotest.test_case "arg mismatch" `Quick test_api_arg_mismatch;
        ] );
    ]
