(* Tests for the chaos engine (DESIGN.md §3.10): the fault-injecting
   I/O layer keeps save_atomic old-or-new at every crash point; the
   fsync-less tmp+rename the daemon shipped with loses acknowledged
   manifests (the pre-fix bug, demonstrated and kept as a regression);
   the hardened daemon survives a bounded crash-point sweep with zero
   invariant violations; restart recovery pins a recovered launch's
   buffers at the addresses the dead daemon acknowledged; an expired
   deadline beats a pending preemption at the shared safe point; and
   the server's write_all survives every short-write shape a real
   socket exposes.  Failing schedules minimize and round-trip through
   replayable repro files. *)

module Io = Vekt_chaos.Io
module Injector = Vekt_chaos.Injector
module Harness = Vekt_chaos_harness.Harness
module Script = Vekt_chaos_harness.Script
module Server = Vekt_server.Server
module Queue = Vekt_server.Queue
module J = Vekt_server.Jsonx
module Api = Vekt_runtime.Api
module Checkpoint = Vekt_runtime.Checkpoint
open Vekt_workloads

let tmpdir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "vekt-test-chaos" in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- save_atomic is old-or-new at every crash point ---- *)

(* Drill every I/O boundary of one save_atomic over an existing durable
   file: whatever the crash flavor, a reader afterwards must see the
   complete old payload or the complete new one — never a torn mix,
   never nothing.  Holds in both durability modes (rename atomicity is
   not what the fsyncs buy; ack-durability is, and the daemon-level
   regression below covers that). *)
let drill_save_atomic ~durable () =
  let dir =
    Filename.concat tmpdir (if durable then "sa-durable" else "sa-legacy")
  in
  Harness.rm_rf dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "state.json" in
  Io.save_atomic ~durable ~path "one";
  let count = Injector.create ~root:dir ~seed:7 ~plan:Injector.Count () in
  Io.with_impl (Injector.impl count) (fun () ->
      Io.save_atomic ~durable ~path "two");
  let trace = Injector.trace count in
  Alcotest.(check bool)
    "a save has several boundaries" true
    (List.length trace >= 2);
  List.iteri
    (fun boundary label ->
      List.iter
        (fun flavor ->
          Harness.rm_rf dir;
          Unix.mkdir dir 0o755;
          Io.save_atomic ~durable ~path "one";
          let inj =
            Injector.create ~root:dir ~seed:7
              ~plan:(Injector.Crash { boundary; flavor })
              ()
          in
          (match
             Io.with_impl (Injector.impl inj) (fun () ->
                 Io.save_atomic ~durable ~path "two")
           with
          | () -> ()
          | exception Io.Crash -> ());
          let got = try read_file path with Sys_error _ -> "(missing)" in
          Alcotest.(check bool)
            (Fmt.str "old-or-new @%d %s [%s]: got %S" boundary
               (Injector.flavor_name flavor) label got)
            true
            (got = "one" || got = "two"))
        (Harness.flavors_for_label label))
    trace;
  Harness.rm_rf dir

let test_save_atomic_durable () = drill_save_atomic ~durable:true ()
let test_save_atomic_legacy () = drill_save_atomic ~durable:false ()

(* ---- the pre-fix bug: fsync-less renames lose acknowledged jobs ---- *)

(* Two tenants, two acknowledged submits, nothing run yet — the
   smallest schedule the minimizer converges to. *)
let lost_script : Script.step list =
  [
    Script.Open { sid = "a"; tenant = "alice" };
    Script.Load { sid = "a" };
    Script.Open { sid = "b"; tenant = "bob" };
    Script.Load { sid = "b" };
    Script.Submit { sid = "a"; job = "a1" };
    Script.Submit { sid = "b"; job = "b1" };
  ]

(* Under the fsync-less tmp+rename the daemon shipped with, a crash
   shortly after a submit was acknowledged can roll the manifest's
   directory entry back: the successor recovers nothing and the client
   waits forever for a job the daemon no longer knows.  The crash-point
   sweep must find such a point; the full durable protocol (fsync file
   + parent dir) closes it, so this is the committed demonstration of
   the bug the chaos engine surfaced.  The witness then round-trips
   through minimization and a replayable repro file. *)
let test_legacy_lost_manifest () =
  let dir = Filename.concat tmpdir "legacy-lost" in
  let saved = !Io.durability in
  Io.durability := false;
  Fun.protect
    ~finally:(fun () ->
      Io.durability := saved;
      Harness.rm_rf dir)
    (fun () ->
      match
        Harness.first_failure ~seed:0x5eed ~dir ~flavor:Injector.Before
          ~sweep_cap:16 lost_script
      with
      | None ->
          Alcotest.fail
            "fsync-less tmp+rename survived the crash sweep: the lost-rename \
             bug should reproduce"
      | Some f ->
          Alcotest.(check bool)
            (Fmt.str "a lost-job violation (%s)"
               (String.concat "; " f.Harness.f_violations))
            true
            (List.exists
               (fun v -> has_substring v "lost job")
               f.Harness.f_violations);
          (* minimize, write the repro, parse it back, replay it *)
          let steps', f' = Harness.minimize ~seed:0x5eed ~dir f lost_script in
          Alcotest.(check bool)
            "minimization never grows the schedule" true
            (List.length steps' <= List.length lost_script);
          let path = Filename.concat tmpdir "repro.json" in
          Harness.write_repro ~path ~seed:0x5eed ~durable:false f' steps';
          (match Harness.parse_repro (read_file path) with
          | Error e -> Alcotest.failf "repro did not parse back: %s" e
          | Ok r ->
              let violations = Harness.replay ~dir r in
              Alcotest.(check bool)
                "replayed repro still violates" true (violations <> [])))

(* ---- the hardened daemon survives a bounded crash-point sweep ---- *)

let test_durable_sweep_clean () =
  let dir = Filename.concat tmpdir "durable-sweep" in
  let c =
    Harness.run_campaign ~seed:0x5eed ~budget:32 ~dir ~steps:Script.default ()
  in
  Alcotest.(check bool) "drills ran" true (c.Harness.c_drills > 0);
  List.iter
    (fun (f : Harness.failure) ->
      Alcotest.failf "crash point @%d %s [%s]: %s" f.Harness.f_boundary
        (Injector.flavor_name f.Harness.f_flavor)
        f.Harness.f_label
        (String.concat "; " f.Harness.f_violations))
    c.Harness.c_failures

(* ---- recovery pins recovered buffers at acknowledged addresses ---- *)

let test_reserve_to () =
  let dev = Api.create_device () in
  let a1 = Api.malloc dev 16 in
  Api.reserve_to dev 256;
  let a2 = Api.malloc dev 16 in
  Alcotest.(check int) "first alloc at the arena base" 64 a1;
  Alcotest.(check int) "post-reserve alloc lands at the pin" 256 a2;
  (match Api.reserve_to dev 100 with
  | () -> Alcotest.fail "unaligned pin accepted"
  | exception Invalid_argument _ -> ());
  match Api.reserve_to dev 64 with
  | () -> Alcotest.fail "pin behind the watermark accepted"
  | exception Invalid_argument _ -> ()

(* A session's second job sits above the first in its arena; a fresh
   recovery session replaying only the second job's specs would land
   them lower.  The manifest records the acknowledged addresses, so the
   successor must rerun the job from scratch and still put its outputs
   where the dead daemon told the client to look. *)
let test_recovery_pins_addresses () =
  let pin_script =
    [
      Script.Open { sid = "a"; tenant = "t" };
      Script.Load { sid = "a" };
      Script.Submit { sid = "a"; job = "j1" };
      Script.Submit { sid = "a"; job = "j2" };
    ]
  in
  let dirb = Filename.concat tmpdir "pin-baseline" in
  let baseline =
    Harness.run_baseline ~seed:1 ~dir:dirb
      ~steps:(pin_script @ [ Script.Pump 4 ])
  in
  let dir = Filename.concat tmpdir "pin-crash" in
  Harness.rm_rf dir;
  let w =
    match Harness.run_pass ~alive:(fun () -> true) ~dir pin_script with
    | Some w -> w
    | None -> Alcotest.fail "setup pass crashed"
  in
  (* abandon w.srv with both jobs queued: a kill -9 before either ran *)
  let srv2 = Server.create ~ckpt_dir:dir () in
  let recs = Server.recovered srv2 in
  Alcotest.(check int) "both jobs re-admitted" 2 (List.length recs);
  Alcotest.(check bool) "successor quiesces" true
    (Harness.drain (Server.queue srv2));
  List.iter
    (fun (r : Server.recovered) ->
      let ji = Hashtbl.find w.Harness.jobs r.Server.r_label in
      let addr =
        match ji.Harness.j_out with
        | Some a -> a
        | None -> Alcotest.failf "job %s never acknowledged" r.Server.r_label
      in
      let resp =
        Server.handle srv2
          (J.Obj
             [
               ("cmd", J.Str "read");
               ("session", J.Int r.Server.r_session);
               ("addr", J.Int addr);
               ("ty", J.Str "f32");
               ("count", J.Int 4);
             ])
      in
      match
        ( J.mem "values" resp,
          List.assoc_opt r.Server.r_label baseline.Harness.b_values )
      with
      | Some got, Some want ->
          Alcotest.(check string)
            (Fmt.str "%s recovered at its acknowledged address"
               r.Server.r_label)
            (J.to_string want) (J.to_string got)
      | _ ->
          Alcotest.failf "%s: no values at the acknowledged address (%s)"
            r.Server.r_label (J.to_string resp))
    recs;
  Server.decommission srv2;
  Harness.rm_rf dir

(* ---- an expired deadline beats a pending preemption ---- *)

(* Both conditions mature at the same safe point: the token was armed
   before the launch started and the zero budget lapsed immediately.
   The launch must die with the structured Deadline error (carrying a
   valid snapshot for post-mortem) — honoring the preemption instead
   would requeue-and-resume a job whose budget is already gone. *)
let test_deadline_beats_preempt () =
  let dir = Filename.concat tmpdir "deadline-edge" in
  let w = W_vecadd.workload in
  let config = { Api.default_config with Api.workers = Some 1 } in
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let preempt = Checkpoint.preempt_token () in
  Checkpoint.request_preempt preempt;
  match
    Api.launch ~preempt ~ckpt_dir:dir ~deadline_ms:0 m
      ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  with
  | _ -> Alcotest.fail "zero-budget launch completed"
  | exception Checkpoint.Stop _ ->
      Alcotest.fail
        "preemption won over an expired deadline: the job would resume and \
         overrun its budget"
  | exception Vekt_error.Error (Vekt_error.Deadline { snapshot; _ }) -> (
      match snapshot with
      | None -> Alcotest.fail "deadline kill without a snapshot"
      | Some p ->
          let snap = Checkpoint.read p in
          Alcotest.(check string)
            "snapshot is valid and names the kernel" w.Workload.kernel
            snap.Checkpoint.kernel;
          Harness.rm_rf dir)

(* ---- write_all survives every short-write shape ---- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () -> f a b)

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd buf off (n - off) with
      | 0 -> Alcotest.fail "peer closed early"
      | k -> go (off + k)
  in
  go 0;
  Bytes.to_string buf

let test_write_all_short_writes () =
  with_socketpair (fun a b ->
      let calls = ref 0 in
      let impl =
        {
          Io.real with
          Io.send =
            (fun fd s off len ->
              incr calls;
              match !calls mod 3 with
              | 1 -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
              | 2 -> raise (Unix.Unix_error (Unix.EAGAIN, "write", ""))
              | _ -> Unix.write_substring fd s off (min len 3));
        }
      in
      let msg = "{\"ok\":true,\"payload\":\"0123456789abcdef\"}\n" in
      Io.with_impl impl (fun () -> Server.write_all a msg);
      Alcotest.(check string)
        "every byte arrived, in order" msg
        (read_exactly b (String.length msg)))

let test_write_all_stall_budget () =
  with_socketpair (fun a _ ->
      let impl = { Io.real with Io.send = (fun _ _ _ _ -> 0) } in
      match Io.with_impl impl (fun () -> Server.write_all a "x\n") with
      | () -> Alcotest.fail "a permanently stalled peer went unnoticed"
      | exception Unix.Unix_error (Unix.EAGAIN, "write_all", _) -> ())

let test_write_all_epipe () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
    (fun () ->
      with_socketpair (fun a b ->
          Unix.close b;
          match Server.write_all a "hello\n" with
          | () -> Alcotest.fail "write to a closed peer succeeded"
          | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()))

let () =
  Alcotest.run "chaos"
    [
      ( "save-atomic",
        [
          Alcotest.test_case "old-or-new, durable protocol" `Quick
            test_save_atomic_durable;
          Alcotest.test_case "old-or-new, legacy protocol" `Quick
            test_save_atomic_legacy;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "legacy io loses acknowledged manifests" `Quick
            test_legacy_lost_manifest;
          Alcotest.test_case "durable sweep finds no violations" `Slow
            test_durable_sweep_clean;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reserve_to pins the arena" `Quick test_reserve_to;
          Alcotest.test_case "scratch rerun lands at acknowledged addresses"
            `Quick test_recovery_pins_addresses;
        ] );
      ( "edges",
        [
          Alcotest.test_case "deadline beats preemption at a safe point" `Quick
            test_deadline_beats_preempt;
        ] );
      ( "write-all",
        [
          Alcotest.test_case "short writes, EINTR, EAGAIN" `Quick
            test_write_all_short_writes;
          Alcotest.test_case "stalled peer exhausts the retry budget" `Quick
            test_write_all_stall_budget;
          Alcotest.test_case "EPIPE propagates to the connection owner" `Quick
            test_write_all_epipe;
        ] );
    ]
