(* Tests for the policy-driven runtime: scheduler policies (differential
   matrix against the oracle), the declarative pass manager (spec parsing
   and the fixpoint-is-no-worse-than-two-rounds guarantee), and the tiered
   translation cache (hotness promotion, LRU eviction, pinning). *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module EM = Vekt_runtime.Exec_manager
module Sched = Vekt_runtime.Scheduler
module Stats = Vekt_runtime.Stats
module Passes = Vekt_transform.Passes
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx
open Vekt_workloads

(* --- differential matrix: policy × width × cache tier vs the oracle --- *)

let tiered = TC.Tiered { hot_threshold = 2 }

(* Dynamic vectorization runs under any formation policy; Static_tie code
   is only legal under the static policy (validated) and is already
   matrixed in test_pipeline. *)
let matrix_configs =
  let base sched widths =
    { Api.default_config with sched = Some sched; widths }
  in
  List.concat_map
    (fun (pname, policy) ->
      [
        (Fmt.str "%s/w1" pname, base policy [ 1 ]);
        (Fmt.str "%s/w2" pname, base policy [ 2; 1 ]);
        (Fmt.str "%s/w4" pname, base policy [ 4; 2; 1 ]);
        ( Fmt.str "%s/w4-tiered" pname,
          { (base policy [ 4; 2; 1 ]) with tiering = tiered; cache_capacity = Some 2 }
        );
      ])
    [
      ("dynamic", Sched.Dynamic);
      ("static", Sched.Static);
      ("barrier", Sched.Barrier_aware);
    ]

let run_workload (w : Workload.t) (config : Api.config) =
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let reference =
    Api.launch_reference m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  let report =
    Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (dev, inst, reference, report)

let test_workload_config (w : Workload.t) name config () =
  let dev, inst, reference, _report = run_workload w config in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s/%s: host check: %s" w.Workload.name name e);
  Alcotest.(check bool)
    (Fmt.str "%s/%s bit-exact vs oracle" w.Workload.name name)
    true
    (Mem.equal reference dev.Api.global)

let matrix_cases =
  List.concat_map
    (fun (w : Workload.t) ->
      List.map
        (fun (name, config) ->
          Alcotest.test_case
            (Fmt.str "%s/%s" w.Workload.name name)
            `Quick
            (test_workload_config w name config))
        matrix_configs)
    Registry.all

(* --- scheduler policy behaviour --- *)

let test_static_tie_requires_consecutive_policy () =
  let dev = Api.create_device () in
  let bad =
    {
      Api.default_config with
      mode = Vectorize.Static_tie;
      sched = Some Sched.Barrier_aware;
    }
  in
  Alcotest.(check bool) "barrier policy on TIE code rejected" true
    (try
       ignore (Api.load_module ~config:bad dev W_vecadd.src);
       false
     with Invalid_argument _ -> true);
  (* the explicit static policy on TIE code is fine *)
  let ok =
    { Api.default_config with mode = Vectorize.Static_tie; sched = Some Sched.Static }
  in
  ignore (Api.load_module ~config:ok dev W_vecadd.src)

let test_barrier_aware_exercises_barriers () =
  let config = { Api.default_config with sched = Some Sched.Barrier_aware } in
  let _, _, _, report = run_workload W_reduction.workload config in
  Alcotest.(check bool) "barrier releases happened" true
    (report.Api.stats.Stats.barrier_releases > 0);
  Alcotest.(check bool) "warps formed" true (report.Api.avg_warp_size > 1.0)

(* --- fuel accounting --- *)

let test_fuel_exact_budget_suffices () =
  (* fuel is a per-CTA budget of subkernel calls; with the former
     off-by-one the nth call raised before executing, so a budget equal
     to the exact call count failed.  Measure the count on a single-CTA
     launch, then require that exactly that much fuel succeeds and one
     unit less does not. *)
  let single_cta ?fuel () =
    let dev = Api.create_device () in
    let m = Api.load_module dev W_reduction.src in
    let inst = W_reduction.workload.Workload.setup dev in
    Api.launch ?fuel m ~kernel:W_reduction.workload.Workload.kernel
      ~grid:(Launch.dim3 1) ~block:inst.Workload.block ~args:inst.Workload.args
  in
  let r = single_cta () in
  let calls = Hashtbl.fold (fun _ c a -> a + c) r.Api.stats.Stats.warp_hist 0 in
  Alcotest.(check bool) "kernel makes several calls" true (calls > 1);
  (* exact budget: every one of the [calls] calls must execute *)
  ignore (single_cta ~fuel:calls ());
  (* one less must exhaust *)
  Alcotest.(check bool) "fuel = calls - 1 exhausts" true
    (try
       ignore (single_cta ~fuel:(calls - 1) ());
       false
     with Vekt_error.Error (Vekt_error.Fuel _) -> true)

let test_fuel_error_reports_exact_calls () =
  (* the barrier makes every loop iteration yield back to the execution
     manager, so each iteration costs exactly one subkernel call *)
  let spin_src =
    {|
.entry spin (.param .u64 out)
{
LOOP:
  bar.sync 0;
  bra LOOP;
}
|}
  in
  let cache = TC.prepare (Parser.parse_module spin_src) ~kernel:"spin" in
  let k = Option.get (Ast.find_kernel (Parser.parse_module spin_src) "spin") in
  let params = Launch.param_block k [ Launch.Ptr 0 ] in
  match
    EM.launch_kernel ~fuel:64 cache ~grid:(Launch.dim3 1) ~block:(Launch.dim3 2)
      ~global:(Mem.create 64) ~params ~consts:(Mem.create 0)
  with
  | _ -> Alcotest.fail "expected a structured fuel error"
  | exception Vekt_error.Error (Vekt_error.Fuel _ as e) ->
      let msg = Vekt_error.to_string e in
      let contains sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      (* all 64 budgeted calls really executed, and the count is exact *)
      Alcotest.(check bool)
        (Fmt.str "message %S reports 64 calls" msg)
        true
        (contains "64 subkernel calls made" msg)

(* --- pass manager --- *)

let test_pipeline_parse () =
  (match Passes.parse_pipeline "constfold,cse,dce,fusion:fix" with
  | Ok p ->
      Alcotest.(check int) "4 passes" 4 (List.length p.Passes.passes);
      Alcotest.(check bool) "fixpoint" true p.Passes.fixpoint;
      Alcotest.(check int) "default bound" Passes.default_max_rounds
        p.Passes.max_rounds
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Passes.parse_pipeline "cse,dce:fix=3" with
  | Ok p ->
      Alcotest.(check bool) "fixpoint" true p.Passes.fixpoint;
      Alcotest.(check int) "bound 3" 3 p.Passes.max_rounds
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Passes.parse_pipeline "dce" with
  | Ok p ->
      Alcotest.(check int) "1 pass" 1 (List.length p.Passes.passes);
      Alcotest.(check bool) "single round" false p.Passes.fixpoint
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check bool) "unknown pass rejected" true
    (Result.is_error (Passes.parse_pipeline "constfold,nosuchpass"));
  Alcotest.(check bool) "bad bound rejected" true
    (Result.is_error (Passes.parse_pipeline "dce:fix=0"));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Passes.parse_pipeline ""))

(* Acceptance criterion: the fixpoint pass manager yields static
   instruction counts <= the frozen two-round pipeline on every kernel. *)
let test_fixpoint_no_worse_than_two_rounds () =
  List.iter
    (fun (w : Workload.t) ->
      let instrs pipeline =
        let c =
          TC.prepare ~pipeline (Parser.parse_module w.Workload.src)
            ~kernel:w.Workload.kernel
        in
        (TC.get c ~ws:4 ()).TC.static_instrs
      in
      let fix = instrs Passes.default_pipeline in
      let two = instrs Passes.two_round_pipeline in
      Alcotest.(check bool)
        (Fmt.str "%s: fixpoint %d <= two-round %d" w.Workload.name fix two)
        true (fix <= two))
    Registry.all

(* --- tiered translation cache --- *)

let div_src =
  {|
.entry div4 (.param .u64 out)
{
  .reg .u32 %tid, %v;
  .reg .u64 %po, %off;
  .reg .pred %p;
  mov.u32 %tid, %tid.x;
  setp.eq.u32 %p, %tid, 0;
  @%p bra B0;
  mov.u32 %v, 33;
  bra OUT;
B0: mov.u32 %v, 10;
OUT:
  ld.param.u64 %po, [out];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %v;
  exit;
}
|}

let prepare_tiered ?capacity ~hot_threshold () =
  TC.prepare
    ~tiering:(TC.Tiered { hot_threshold })
    ?capacity (Parser.parse_module div_src) ~kernel:"div4"

let test_tier_promotion_at_exact_threshold () =
  let c = prepare_tiered ~hot_threshold:3 () in
  let e1 = TC.get c ~ws:4 () in
  Alcotest.(check int) "first query: tier 0" 0 e1.TC.tier;
  Alcotest.(check int) "one compile" 1 c.TC.compile_count;
  let e2 = TC.get c ~ws:4 () in
  Alcotest.(check int) "below threshold: still tier 0" 0 e2.TC.tier;
  Alcotest.(check int) "no recompile below threshold" 1 c.TC.compile_count;
  Alcotest.(check int) "no promotion yet" 0 c.TC.promotions;
  let e3 = TC.get c ~ws:4 () in
  Alcotest.(check int) "at threshold: promoted to tier 1" 1 e3.TC.tier;
  Alcotest.(check int) "promotion recompiled" 2 c.TC.compile_count;
  Alcotest.(check int) "promotion counted" 1 c.TC.promotions;
  let e4 = TC.get c ~ws:4 () in
  Alcotest.(check bool) "promoted entry is stable" true (e3 == e4);
  Alcotest.(check int) "no further compiles" 2 c.TC.compile_count;
  (* the optimized result must be no larger than the tier-0 build *)
  Alcotest.(check bool) "tier 1 no larger than tier 0" true
    (e3.TC.static_instrs <= e1.TC.static_instrs)

let test_eager_compiles_optimized_immediately () =
  let c = TC.prepare (Parser.parse_module div_src) ~kernel:"div4" in
  let e = TC.get c ~ws:4 () in
  Alcotest.(check int) "eager builds tier 1" 1 e.TC.tier;
  Alcotest.(check int) "no promotions under eager" 0 c.TC.promotions

let test_eviction_lru_and_capacity () =
  let c = prepare_tiered ~capacity:2 ~hot_threshold:100 () in
  ignore (TC.get c ~ws:4 ());
  ignore (TC.get c ~ws:2 ());
  Alcotest.(check int) "at capacity" 2 (Hashtbl.length c.TC.specializations);
  (* refresh ws=4 so ws=2 is the LRU victim *)
  ignore (TC.get c ~ws:4 ());
  ignore (TC.get c ~ws:1 ());
  Alcotest.(check int) "still at capacity" 2 (Hashtbl.length c.TC.specializations);
  Alcotest.(check int) "one eviction" 1 c.TC.evictions;
  Alcotest.(check bool) "LRU (ws=2) evicted" true
    (Hashtbl.find_opt c.TC.specializations (2, "") = None);
  Alcotest.(check bool) "recently-used ws=4 survives" true
    (Hashtbl.find_opt c.TC.specializations (4, "") <> None);
  (* a re-query of the evicted width recompiles *)
  let compiles = c.TC.compile_count in
  ignore (TC.get c ~ws:2 ());
  Alcotest.(check int) "evicted width recompiles" (compiles + 1) c.TC.compile_count

let test_eviction_never_evicts_executing_entry () =
  let c = prepare_tiered ~capacity:1 ~hot_threshold:100 () in
  let e4 = TC.get c ~ws:4 () in
  TC.pin e4;
  (* inserting another width would need to evict ws=4, but it is pinned
     (currently executing): the table must temporarily exceed the bound *)
  ignore (TC.get c ~ws:2 ());
  Alcotest.(check bool) "pinned entry survives over-capacity insert" true
    (Hashtbl.find_opt c.TC.specializations (4, "") <> None);
  Alcotest.(check int) "nothing evicted while pinned" 0 c.TC.evictions;
  TC.unpin e4;
  (* with the pin released, the next insert evicts normally *)
  ignore (TC.get c ~ws:1 ());
  Alcotest.(check bool) "unpinned entries evictable again" true
    (c.TC.evictions > 0);
  Alcotest.(check int) "back within bound" 1 (Hashtbl.length c.TC.specializations)

let test_tiered_metrics_exported () =
  let dev = Api.create_device () in
  let config =
    {
      Api.default_config with
      tiering = TC.Tiered { hot_threshold = 2 };
      widths = [ 4; 2; 1 ];
    }
  in
  let m = Api.load_module ~config dev W_reduction.src in
  let inst = W_reduction.workload.Workload.setup dev in
  let r =
    Api.launch m ~kernel:W_reduction.workload.Workload.kernel
      ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~args:inst.Workload.args
  in
  let reg = Api.metrics m ~kernel:W_reduction.workload.Workload.kernel r in
  let module M = Vekt_obs.Metrics in
  Alcotest.(check bool) "hits exported" true (!(M.counter reg "jit.cache_hits") > 0);
  Alcotest.(check bool) "promotions exported" true
    (!(M.counter reg "jit.promotions") > 0);
  Alcotest.(check bool) "per-pass stats exported" true
    (!(M.counter reg "opt.dce.changes") > 0)

let () =
  Alcotest.run "scheduler"
    [
      ("policy_matrix", matrix_cases);
      ( "policies",
        [
          Alcotest.test_case "TIE needs consecutive warps" `Quick
            test_static_tie_requires_consecutive_policy;
          Alcotest.test_case "barrier-aware runs barriers" `Quick
            test_barrier_aware_exercises_barriers;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "exact budget suffices" `Quick
            test_fuel_exact_budget_suffices;
          Alcotest.test_case "error reports exact calls" `Quick
            test_fuel_error_reports_exact_calls;
        ] );
      ( "pass_manager",
        [
          Alcotest.test_case "pipeline parse" `Quick test_pipeline_parse;
          Alcotest.test_case "fixpoint <= two rounds" `Quick
            test_fixpoint_no_worse_than_two_rounds;
        ] );
      ( "tiered_cache",
        [
          Alcotest.test_case "promotion at threshold" `Quick
            test_tier_promotion_at_exact_threshold;
          Alcotest.test_case "eager is tier 1" `Quick
            test_eager_compiles_optimized_immediately;
          Alcotest.test_case "LRU eviction" `Quick test_eviction_lru_and_capacity;
          Alcotest.test_case "pinned never evicted" `Quick
            test_eviction_never_evicts_executing_entry;
          Alcotest.test_case "metrics exported" `Quick test_tiered_metrics_exported;
        ] );
    ]
