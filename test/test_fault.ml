(* Tests for the fault-tolerant launch subsystem: the structured error
   taxonomy, the compile-fallback chain with quarantine, the
   barrier-deadlock and livelock watchdogs, deterministic fault
   injection, and the no-fault overhead invariant. *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module EM = Vekt_runtime.Exec_manager
module Fault = Vekt_runtime.Fault
module Sched = Vekt_runtime.Scheduler
module Stats = Vekt_runtime.Stats
module M = Vekt_obs.Metrics
open Vekt_ptx
open Vekt_workloads

(* A dozen registry workloads covering every category; enough for the
   differential acceptance criterion (>= 10). *)
let some_workloads = List.filteri (fun i _ -> i < 12) Registry.all

let widths = [ 4; 2; 1 ]

let run_with_config (w : Workload.t) (config : Api.config) =
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let report =
    Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (dev, m, inst, report)

let counter_value m ~kernel report name =
  !(M.counter (Api.metrics m ~kernel report) name)

let check_ok (w : Workload.t) dev inst what =
  match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s (%s): host check: %s" w.Workload.name what e

(* --- fault spec parsing --- *)

let test_parse_spec () =
  (match Fault.parse_spec "compile-fail:ws=4,tier=1,kernel=k,p=0.5" with
  | Ok (Fault.Compile_fail { ws = Some 4; tier = Some 1; kernel = Some "k"; p })
    ->
      Alcotest.(check (float 1e-9)) "p" 0.5 p
  | Ok _ -> Alcotest.fail "wrong spec shape"
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "compile-fail" with
  | Ok (Fault.Compile_fail { ws = None; tier = None; kernel = None; p }) ->
      Alcotest.(check (float 1e-9)) "default p" 1.0 p
  | _ -> Alcotest.fail "filterless compile-fail");
  (match Fault.parse_spec "mem-trap:nth=100" with
  | Ok (Fault.Mem_trap { nth = 100; kernel = None }) -> ()
  | _ -> Alcotest.fail "mem-trap");
  (match Fault.parse_spec "yield:every=8" with
  | Ok (Fault.Spurious_yield { every = 8 }) -> ()
  | _ -> Alcotest.fail "yield");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Fmt.str "%S rejected" bad)
        true
        (Result.is_error (Fault.parse_spec bad)))
    [ "nope"; "compile-fail:ws=x"; "compile-fail:p=2.0"; "mem-trap:nth" ]

(* --- fallback chain: one width fails, narrower ones serve --- *)

let inject_ws4 =
  Some
    {
      Fault.seed = 7;
      specs = [ Fault.Compile_fail { ws = Some 4; tier = None; kernel = None; p = 1.0 } ];
    }

let test_fallback_narrows_width () =
  List.iter
    (fun (w : Workload.t) ->
      let config =
        { Api.default_config with widths; inject = inject_ws4; recover = true }
      in
      let dev, m, inst, report = run_with_config w config in
      check_ok w dev inst "ws=4 build injected to fail";
      Alcotest.(check bool)
        (Fmt.str "%s: no emulator fallback needed" w.Workload.name)
        true
        (report.Api.recovered = None);
      let kernel = w.Workload.kernel in
      Alcotest.(check bool)
        (Fmt.str "%s: >=1 compile fallback" w.Workload.name)
        true
        (counter_value m ~kernel report "fallback.compile_failures" >= 1);
      Alcotest.(check int)
        (Fmt.str "%s: no emulator runs" w.Workload.name)
        0
        (counter_value m ~kernel report "fallback.emulator_runs"))
    some_workloads

(* --- fallback chain exhausted: the emulator oracle takes over --- *)

let test_all_widths_fail_recovers_on_emulator () =
  List.iter
    (fun (w : Workload.t) ->
      let config =
        {
          Api.default_config with
          widths;
          inject =
            Some
              {
                Fault.seed = 7;
                specs =
                  [
                    Fault.Compile_fail
                      { ws = None; tier = None; kernel = None; p = 1.0 };
                  ];
              };
          recover = true;
        }
      in
      let dev, m, inst, report = run_with_config w config in
      (* every tier/width build fails, so the output below comes from the
         reference emulator: host validation proves oracle-identical *)
      check_ok w dev inst "all builds injected to fail";
      (match report.Api.recovered with
      | Some (Vekt_error.Compile c) ->
          Alcotest.(check bool)
            (Fmt.str "%s: injected stage" w.Workload.name)
            true
            (c.stage = Vekt_error.Inject)
      | _ -> Alcotest.failf "%s: expected Compile recovery" w.Workload.name);
      let kernel = w.Workload.kernel in
      Alcotest.(check int)
        (Fmt.str "%s: one emulator run" w.Workload.name)
        1
        (counter_value m ~kernel report "fallback.emulator_runs"))
    some_workloads

(* --- quarantine: a failed width is skipped on later launches --- *)

let test_quarantine_skips_failed_width () =
  let w = Registry.find_exn "vecadd" in
  let config =
    { Api.default_config with widths; inject = inject_ws4; recover = true }
  in
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let kernel = w.Workload.kernel in
  let launch () =
    Api.launch m ~kernel ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~args:inst.Workload.args
  in
  let r1 = launch () in
  check_ok w dev inst "first launch";
  Alcotest.(check int) "first launch: one failed build" 1
    (counter_value m ~kernel r1 "fallback.compile_failures");
  Alcotest.(check int) "first launch: width quarantined" 1
    (counter_value m ~kernel r1 "fallback.quarantine_adds");
  let r2 = launch () in
  check_ok w dev inst "second launch";
  (* the quarantined width is skipped without re-attempting the build *)
  Alcotest.(check int) "second launch: no new failed build" 1
    (counter_value m ~kernel r2 "fallback.compile_failures");
  Alcotest.(check bool) "second launch: quarantine skips" true
    (counter_value m ~kernel r2 "fallback.quarantine_skips" > 0)

let test_quarantine_expires_after_ttl () =
  let w = Registry.find_exn "vecadd" in
  let config =
    {
      Api.default_config with
      widths;
      inject = inject_ws4;
      recover = true;
      quarantine_ttl = 2;
    }
  in
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let kernel = w.Workload.kernel in
  let launch () =
    Api.launch m ~kernel ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~args:inst.Workload.args
  in
  let _ = launch () in
  let _ = launch () in
  (* ttl=2 expired after two successful launches: the third re-attempts
     the width (and the injector fails it again) *)
  let r3 = launch () in
  Alcotest.(check bool) "quarantine expired" true
    (counter_value m ~kernel r3 "fallback.quarantine_expiries" >= 1);
  Alcotest.(check int) "failed width re-attempted" 2
    (counter_value m ~kernel r3 "fallback.compile_failures")

(* --- watchdogs --- *)

(* Thread 0's flag is set, so every warp that pairs it with a
   zero-flagged partner diverges at the loop branch and thread 0 yields
   back Ready at the entry it was dispatched from — the no-progress
   signature the livelock watchdog counts.  (A uniform warp would follow
   the branch inside the subkernel and burn fuel instead, which is why
   divergence is load-bearing here.) *)
let livelock_src =
  {|
.entry spin (.param .u64 flags)
{
  .reg .u64 %fp, %off;
  .reg .u32 %t, %v;
  .reg .pred %p;
LOOP:
  ld.param.u64 %fp, [flags];
  mov.u32 %t, %tid.x;
  cvt.u64.u32 %off, %t;
  shl.b64 %off, %off, 2;
  add.u64 %fp, %fp, %off;
  ld.global.u32 %v, [%fp];
  setp.ne.u32 %p, %v, 0;
  @%p bra LOOP;
  exit;
}
|}

let test_livelock_watchdog () =
  let dev = Api.create_device () in
  let config = { Api.default_config with watchdog = Some 2 } in
  let m = Api.load_module ~config dev livelock_src in
  let flags = Api.malloc dev 12 in
  Api.write_i32s dev flags [ 1; 0; 0 ];
  match
    Api.launch m ~kernel:"spin" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 3)
      ~args:[ Launch.Ptr flags ]
  with
  | _ -> Alcotest.fail "expected a livelock deadlock error"
  | exception Vekt_error.Error (Vekt_error.Deadlock d) ->
      Alcotest.(check bool) "kind" true (d.kind = Vekt_error.Livelock);
      Alcotest.(check string) "kernel" "spin" d.kernel;
      Alcotest.(check bool) "stuck threads listed" true (d.threads <> [])

let barrier_spin_src =
  {|
.entry spin (.param .u64 out)
{
LOOP:
  bar.sync 0;
  bra LOOP;
}
|}

let test_barrier_starvation_diagnostic () =
  (* a policy that never selects anything starves Ready threads: the
     manager must report a structured barrier-starvation deadlock
     listing each stuck thread, not a bare string *)
  let never =
    {
      Sched.name = "never";
      consecutive = false;
      select = (fun _ -> None);
      form =
        (fun _ ~start ~want:_ -> { Sched.members = [ start ]; count = 1; scanned = 0 });
    }
  in
  let cache = TC.prepare (Parser.parse_module barrier_spin_src) ~kernel:"spin" in
  let k =
    Option.get (Ast.find_kernel (Parser.parse_module barrier_spin_src) "spin")
  in
  let params = Launch.param_block k [ Launch.Ptr 0 ] in
  match
    EM.launch_kernel ~sched:never cache ~grid:(Launch.dim3 1)
      ~block:(Launch.dim3 4) ~global:(Mem.create 64) ~params
      ~consts:(Mem.create 0)
  with
  | _ -> Alcotest.fail "expected a barrier-starvation deadlock"
  | exception Vekt_error.Error (Vekt_error.Deadlock d) ->
      Alcotest.(check bool) "kind" true (d.kind = Vekt_error.Barrier_starvation);
      Alcotest.(check int) "all four threads stuck" 4 (List.length d.threads);
      List.iter
        (fun (t : Vekt_error.thread_diag) ->
          Alcotest.(check string)
            (Fmt.str "thread %d state" t.Vekt_error.t_linear)
            "ready" t.Vekt_error.t_state)
        d.threads

let test_all_exited_is_not_deadlock () =
  (* regression for the all-exited-vs-blocked boundary: a barrier kernel
     whose threads all run to completion must terminate normally — the
     deadlock diagnostic only fires with live-but-unrunnable threads *)
  let src =
    {|
.entry bk (.param .u64 out)
{
  .reg .u32 %tid;
  .reg .u64 %po, %off;
  mov.u32 %tid, %tid.x;
  bar.sync 0;
  ld.param.u64 %po, [out];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %tid;
  exit;
}
|}
  in
  let dev = Api.create_device () in
  let m = Api.load_module dev src in
  let out = Api.malloc dev 64 in
  let r =
    Api.launch m ~kernel:"bk" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 8)
      ~args:[ Launch.Ptr out ]
  in
  Alcotest.(check bool) "completed" true (r.Api.recovered = None);
  Alcotest.(check (list int)) "identity" (List.init 8 Fun.id)
    (Api.read_i32s dev out 8)

(* --- structured load_module failures --- *)

let test_load_module_structured_payloads () =
  let dev = Api.create_device () in
  (match Api.load_module dev ".entry k ( { }" with
  | _ -> Alcotest.fail "parse error expected"
  | exception Vekt_error.Error (Vekt_error.Compile c) ->
      Alcotest.(check bool) "parse stage" true (c.stage = Vekt_error.Parse);
      Alcotest.(check bool) "parse line attached" true (c.line <> None));
  (match Api.load_module dev ".entry k () { § }" with
  | _ -> Alcotest.fail "lex error expected"
  | exception Vekt_error.Error (Vekt_error.Compile c) ->
      Alcotest.(check bool) "lex stage" true (c.stage = Vekt_error.Lex);
      Alcotest.(check bool) "lex line attached" true (c.line <> None));
  match Api.load_module dev {|.entry k () { add.u32 %a, %a, 1; exit; }|} with
  | _ -> Alcotest.fail "type error expected"
  | exception Vekt_error.Error (Vekt_error.Compile c) ->
      Alcotest.(check bool) "typecheck stage" true
        (c.stage = Vekt_error.Typecheck)

(* --- memory fault payloads and trap context --- *)

let test_mem_fault_payload () =
  let t = Mem.create ~name:"global" 16 in
  (match Mem.load t Ast.F32 100 with
  | _ -> Alcotest.fail "expected out-of-bounds fault"
  | exception Mem.Fault a ->
      Alcotest.(check string) "segment" "global" a.Vekt_error.segment;
      Alcotest.(check int) "addr" 100 a.Vekt_error.addr;
      Alcotest.(check int) "width" 4 a.Vekt_error.width;
      Alcotest.(check int) "segment size" 16 a.Vekt_error.size;
      Alcotest.(check string) "op" "load" a.Vekt_error.op);
  match Mem.store t Ast.S64 12 (Scalar_ops.I 1L) with
  | _ -> Alcotest.fail "expected straddling-store fault"
  | exception Mem.Fault a ->
      Alcotest.(check string) "store op" "store" a.Vekt_error.op;
      Alcotest.(check int) "store width" 8 a.Vekt_error.width

let test_trap_attaches_thread_context () =
  let src =
    {|
.entry oob ()
{
  .reg .u64 %a;
  .reg .u32 %v;
  mov.u64 %a, 1073741824;
  mov.u32 %v, 7;
  st.global.u32 [%a], %v;
  exit;
}
|}
  in
  let dev = Api.create_device () in
  let m = Api.load_module dev src in
  match
    Api.launch m ~kernel:"oob" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 4)
      ~args:[]
  with
  | _ -> Alcotest.fail "expected a memory trap"
  | exception Vekt_error.Error (Vekt_error.Trap t) ->
      Alcotest.(check string) "kernel" "oob" t.kernel;
      Alcotest.(check bool) "CTA attached" true (t.cta = Some (0, 0, 0));
      Alcotest.(check bool) "thread attached" true (t.tid <> None);
      Alcotest.(check bool) "entry attached" true (t.entry <> None);
      Alcotest.(check bool) "cycle attached" true (t.cycle <> None);
      (match t.access with
      | Some a ->
          Alcotest.(check string) "space" "global" a.Vekt_error.space;
          Alcotest.(check int) "addr" 1073741824 a.Vekt_error.addr
      | None -> Alcotest.fail "access payload missing")

(* --- deterministic injection: mem traps and spurious yields --- *)

let test_injected_mem_trap_recovers () =
  let w = Registry.find_exn "vecadd" in
  let config =
    {
      Api.default_config with
      widths;
      inject =
        Some
          { Fault.seed = 7; specs = [ Fault.Mem_trap { nth = 5; kernel = None } ] };
      recover = true;
    }
  in
  let dev, m, inst, report = run_with_config w config in
  check_ok w dev inst "mem trap injected";
  (match report.Api.recovered with
  | Some (Vekt_error.Trap t) -> (
      match t.access with
      | Some a ->
          Alcotest.(check string) "injected op" "injected trap" a.Vekt_error.op
      | None -> Alcotest.fail "injected trap lost its access payload")
  | _ -> Alcotest.fail "expected trap recovery");
  let kernel = w.Workload.kernel in
  Alcotest.(check int) "one injected trap" 1
    (counter_value m ~kernel report "fault.injected_mem_traps");
  Alcotest.(check int) "one emulator run" 1
    (counter_value m ~kernel report "fallback.emulator_runs")

let test_spurious_yield_preserves_results () =
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      let config =
        {
          Api.default_config with
          widths;
          inject =
            Some { Fault.seed = 7; specs = [ Fault.Spurious_yield { every = 4 } ] };
          recover = true;
        }
      in
      let dev, m, inst, report = run_with_config w config in
      (* skipped dispatches delay threads but never corrupt them *)
      check_ok w dev inst "spurious yields injected";
      Alcotest.(check bool) (name ^ ": no recovery needed") true
        (report.Api.recovered = None);
      Alcotest.(check bool) (name ^ ": yields injected") true
        (counter_value m ~kernel:w.Workload.kernel report "fault.injected_yields"
        > 0))
    [ "vecadd"; "reduction"; "matrixmul" ]

(* --- no-fault overhead: armed-but-idle injection is cycle-invisible --- *)

let test_no_fault_overhead_bit_identical_cycles () =
  let w = Registry.find_exn "reduction" in
  let baseline = { Api.default_config with widths } in
  let armed_idle =
    {
      Api.default_config with
      widths;
      recover = true;
      inject =
        Some
          {
            Fault.seed = 7;
            specs =
              [
                (* counts accesses but never reaches the threshold *)
                Fault.Mem_trap { nth = max_int; kernel = None };
                (* filter never matches any kernel *)
                Fault.Compile_fail
                  { ws = None; tier = None; kernel = Some "no-such-kernel"; p = 1.0 };
              ];
          };
    }
  in
  let _, _, _, r1 = run_with_config w baseline in
  let _, _, _, r2 = run_with_config w armed_idle in
  Alcotest.(check bool) "modelled cycles bit-identical" true
    (Float.equal r1.Api.cycles r2.Api.cycles);
  Alcotest.(check int) "same dynamic instructions"
    r1.Api.stats.Stats.counters.Vekt_vm.Interp.dyn_instrs
    r2.Api.stats.Stats.counters.Vekt_vm.Interp.dyn_instrs

let () =
  Alcotest.run "fault"
    [
      ("spec", [ Alcotest.test_case "parse" `Quick test_parse_spec ]);
      ( "fallback",
        [
          Alcotest.test_case "width narrowing differential" `Quick
            test_fallback_narrows_width;
          Alcotest.test_case "emulator recovery differential" `Quick
            test_all_widths_fail_recovers_on_emulator;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "skips failed width" `Quick
            test_quarantine_skips_failed_width;
          Alcotest.test_case "expires after ttl" `Quick
            test_quarantine_expires_after_ttl;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "livelock" `Quick test_livelock_watchdog;
          Alcotest.test_case "barrier starvation" `Quick
            test_barrier_starvation_diagnostic;
          Alcotest.test_case "all-exited is clean" `Quick
            test_all_exited_is_not_deadlock;
        ] );
      ( "errors",
        [
          Alcotest.test_case "load_module payloads" `Quick
            test_load_module_structured_payloads;
          Alcotest.test_case "mem fault payload" `Quick test_mem_fault_payload;
          Alcotest.test_case "trap thread context" `Quick
            test_trap_attaches_thread_context;
        ] );
      ( "injection",
        [
          Alcotest.test_case "mem trap recovery" `Quick
            test_injected_mem_trap_recovers;
          Alcotest.test_case "spurious yields" `Quick
            test_spurious_yield_preserves_results;
          Alcotest.test_case "no-fault overhead" `Quick
            test_no_fault_overhead_bit_identical_cycles;
        ] );
    ]
