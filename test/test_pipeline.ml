(* End-to-end differential tests: every workload, every configuration, is
   run through the dynamic vectorizing pipeline and must (a) satisfy its
   host-computed check and (b) leave global memory bit-identical to the
   reference PTX emulator.  A QCheck generator then hammers the same
   equivalence with random divergent kernels. *)

module Api = Vekt_runtime.Api
module Stats = Vekt_runtime.Stats
module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx
open Vekt_workloads

let configs =
  [
    ("scalar", { Api.default_config with widths = [ 1 ] });
    ("w2", { Api.default_config with widths = [ 2; 1 ] });
    ("w4-dynamic", Api.default_config);
    ("w4-static-tie", { Api.default_config with mode = Vectorize.Static_tie });
    ("w4-noopt", { Api.default_config with optimize = false });
    ("w8", { Api.default_config with widths = [ 8; 4; 2; 1 ] });
    ("w4-affine-uniform", { Api.default_config with affine = true });
    ( "w4-static-affine",
      { Api.default_config with mode = Vectorize.Static_tie; affine = true } );
    ("w4-spec-args", { Api.default_config with specialize_args = true });
    ( "w4-everything",
      {
        Api.default_config with
        mode = Vectorize.Static_tie;
        affine = true;
        specialize_args = true;
      } );
  ]

let run_workload (w : Workload.t) (config : Api.config) =
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let reference =
    Api.launch_reference m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  let report =
    Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (dev, inst, reference, report)

let test_workload_config (w : Workload.t) name config () =
  let dev, inst, reference, report = run_workload w config in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s/%s: host check: %s" w.Workload.name name e);
  Alcotest.(check bool)
    (Fmt.str "%s/%s bit-exact vs oracle" w.Workload.name name)
    true
    (Mem.equal reference dev.Api.global);
  Alcotest.(check bool) "progress recorded" true (report.Api.cycles > 0.0)

(* --- behavioural assertions on the statistics --- *)

let test_uniform_kernel_full_warps () =
  (* blackscholes is fully convergent: every warp entry must be width 4. *)
  let _, _, _, report = run_workload W_blackscholes.workload Api.default_config in
  Alcotest.(check (float 0.001)) "avg warp size" 4.0 report.Api.avg_warp_size;
  Alcotest.(check (float 0.001)) "all entries at 4" 1.0
    (Stats.warp_fraction report.Api.stats 4)

let test_divergent_kernel_small_warps () =
  let _, _, _, report = run_workload W_mersenne.workload Api.default_config in
  Alcotest.(check bool) "some narrow warps" true
    (Stats.warp_fraction report.Api.stats 4 < 0.999);
  Alcotest.(check bool) "avg < max" true (report.Api.avg_warp_size < 4.0)

let test_speedup_compute_bound () =
  (* cp must get close to the lane-count speedup over the scalar pipeline. *)
  let _, _, _, scalar =
    run_workload W_cp.workload { Api.default_config with widths = [ 1 ] }
  in
  let _, _, _, vec4 = run_workload W_cp.workload Api.default_config in
  let speedup = scalar.Api.cycles /. vec4.Api.cycles in
  Alcotest.(check bool) (Fmt.str "cp speedup %.2f > 2.5" speedup) true (speedup > 2.5)

let test_mersenne_dwf_slowdown () =
  (* The paper's MersenneTwister pathology: dynamic warp formation makes it
     slower than scalar; static warp formation recovers. *)
  let _, _, _, scalar =
    run_workload W_mersenne.workload { Api.default_config with widths = [ 1 ] }
  in
  let _, _, _, dwf = run_workload W_mersenne.workload Api.default_config in
  let _, _, _, swf =
    run_workload W_mersenne.workload
      { Api.default_config with mode = Vectorize.Static_tie }
  in
  Alcotest.(check bool) "DWF slower than scalar" true (dwf.Api.cycles > scalar.Api.cycles);
  Alcotest.(check bool) "SWF much better than DWF" true
    (swf.Api.cycles *. 1.5 < dwf.Api.cycles)

let test_barrier_kernel_restores () =
  (* reduction yields at every barrier, so entry handlers must restore
     live values; the average must be positive and modest (Fig. 8). *)
  let _, _, _, report = run_workload W_reduction.workload Api.default_config in
  let avg = Stats.average_restores_per_thread report.Api.stats in
  Alcotest.(check bool) (Fmt.str "avg restores %.2f in (0, 16)" avg) true
    (avg > 0.0 && avg < 16.0)

let test_breakdown_sums_to_one () =
  List.iter
    (fun (w : Workload.t) ->
      let _, _, _, report = run_workload w Api.default_config in
      let em, yld, body = Stats.cycle_breakdown report.Api.stats in
      Alcotest.(check (float 1e-6)) (w.Workload.name ^ " fractions") 1.0 (em +. yld +. body))
    Registry.all

let test_compute_bound_body_dominates () =
  let _, _, _, report = run_workload W_throughput.workload Api.default_config in
  let _, _, body = Stats.cycle_breakdown report.Api.stats in
  Alcotest.(check bool) (Fmt.str "body fraction %.2f > 0.8" body) true (body > 0.8)

let test_scalar_pipeline_never_diverges () =
  (* Width-1 specializations can never take the divergent exit: every
     branch sum is 0 or 1.  The warp histogram must be all-1s. *)
  let _, _, _, report =
    run_workload W_mersenne.workload { Api.default_config with widths = [ 1 ] }
  in
  Alcotest.(check (float 0.0)) "all width 1" 1.0 (Stats.warp_fraction report.Api.stats 1)

let test_spec_args_caches_per_arguments () =
  (* two launches with different scalar arguments must produce two
     specializations, and both must be correct *)
  let dev = Api.create_device () in
  let config = { Api.default_config with specialize_args = true; widths = [ 4; 1 ] } in
  let m = Api.load_module ~config dev W_vecadd.src in
  let inst = W_vecadd.workload.Workload.setup dev in
  let r1 =
    Api.launch m ~kernel:"vecadd" ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~args:inst.Workload.args
  in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first launch: %s" e);
  let cache = Api.kernel_cache m ~kernel:"vecadd" in
  let compiles_before = cache.Vekt_runtime.Translation_cache.compile_count in
  (* different n: different param digest *)
  let args2 =
    List.mapi
      (fun i a -> if i = 3 then Launch.I32 123 else a)
      inst.Workload.args
  in
  ignore
    (Api.launch m ~kernel:"vecadd" ~grid:inst.Workload.grid ~block:inst.Workload.block
       ~args:args2);
  Alcotest.(check bool) "new specialization compiled" true
    (cache.Vekt_runtime.Translation_cache.compile_count > compiles_before);
  ignore r1

let test_spec_args_folds_params () =
  (* argument specialization must shrink the static instruction count *)
  let cache_instrs specialize_args =
    let dev = Api.create_device () in
    let config = { Api.default_config with specialize_args; widths = [ 4; 1 ] } in
    let m = Api.load_module ~config dev W_vecadd.src in
    let inst = W_vecadd.workload.Workload.setup dev in
    ignore
      (Api.launch m ~kernel:"vecadd" ~grid:inst.Workload.grid
         ~block:inst.Workload.block ~args:inst.Workload.args);
    let cache = Api.kernel_cache m ~kernel:"vecadd" in
    Hashtbl.fold
      (fun (ws, _) (e : Vekt_runtime.Translation_cache.entry) acc ->
        if ws = 4 then e.Vekt_runtime.Translation_cache.static_instrs else acc)
      cache.Vekt_runtime.Translation_cache.specializations 0
  in
  Alcotest.(check bool) "fewer instructions when specialized" true
    (cache_instrs true < cache_instrs false)

let test_device_functions_through_pipeline () =
  (* a kernel built from .func calls must run bit-exact through the full
     vectorizing pipeline in every configuration *)
  let src =
    {|
.func (.reg .f32 %r) sq (.reg .f32 %x)
{
  mul.f32 %r, %x, %x;
  ret;
}

.func (.reg .f32 %r) poly (.reg .f32 %x)
{
  .reg .f32 %t;
  call (%t), sq, (%x);
  fma.rn.f32 %r, %t, 0f3f000000, %x;
  ret;
}

.entry fk (.param .u64 p, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %gid, %n;
  .reg .u64 %po, %off;
  .reg .f32 %x, %y;
  .reg .pred %pr;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %gid, %r2, %r3, %r1;
  ld.param.u32 %n, [n];
  setp.ge.u32 %pr, %gid, %n;
  @%pr bra DONE;
  cvt.rn.f32.u32 %x, %gid;
  mul.f32 %x, %x, 0f3d4ccccd;
  call (%y), poly, (%x);
  ld.param.u64 %po, [p];
  cvt.u64.u32 %off, %gid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.f32 [%po], %y;
DONE:
  exit;
}
|}
  in
  let n = 100 in
  List.iter
    (fun (name, config) ->
      let dev = Api.create_device () in
      let m = Api.load_module ~config dev src in
      let p = Api.malloc dev (4 * n) in
      let args = [ Launch.Ptr p; Launch.I32 n ] in
      let reference =
        Api.launch_reference m ~kernel:"fk" ~grid:(Launch.dim3 2)
          ~block:(Launch.dim3 64) ~args
      in
      ignore (Api.launch m ~kernel:"fk" ~grid:(Launch.dim3 2) ~block:(Launch.dim3 64) ~args);
      Alcotest.(check bool) (name ^ " bit-exact") true
        (Mem.equal reference dev.Api.global))
    configs;
  (* spot-check a value on the host: poly(x) = 0.5 x^2 + x *)
  let dev = Api.create_device () in
  let m = Api.load_module dev src in
  let p = Api.malloc dev (4 * n) in
  ignore
    (Api.launch m ~kernel:"fk" ~grid:(Launch.dim3 2) ~block:(Launch.dim3 64)
       ~args:[ Launch.Ptr p; Launch.I32 n ]);
  let r32 = Vekt_ptx.Scalar_ops.round_f32 in
  let x = r32 (r32 20.0 *. Int32.float_of_bits 0x3d4ccccdl) in
  let expect = r32 (r32 (r32 (x *. x) *. 0.5) +. x) in
  Alcotest.(check (float 0.0)) "poly(x20)" expect (List.nth (Api.read_f32s dev p n) 20)

let test_throughput_table1_shape () =
  let gflops ws =
    let dev = Api.create_device () in
    let config =
      { Api.default_config with widths = (if ws = 1 then [ 1 ] else [ ws; 1 ]) }
    in
    let m = Api.load_module ~config dev W_throughput.src in
    let inst = W_throughput.setup ~scale:2 dev in
    let r =
      Api.launch m ~kernel:"throughput" ~grid:inst.Workload.grid
        ~block:inst.Workload.block ~args:inst.Workload.args
    in
    r.Api.gflops
  in
  let g1 = gflops 1 and g2 = gflops 2 and g4 = gflops 4 and g8 = gflops 8 in
  Alcotest.(check bool) (Fmt.str "scaling 1→2 (%.1f, %.1f)" g1 g2) true (g2 > 1.6 *. g1);
  Alcotest.(check bool) (Fmt.str "scaling 2→4 (%.1f, %.1f)" g2 g4) true (g4 > 1.6 *. g2);
  Alcotest.(check bool) (Fmt.str "ws8 collapses (%.1f < %.1f)" g8 g4) true (g8 < 0.7 *. g4)

(* --- random-kernel differential property --- *)

(* Structured generator: straight-line u32 arithmetic, divergent diamonds,
   data-dependent bounded loops, CTA barriers and global atomics; each
   thread finally stores a digest of its registers.  Any semantic mismatch
   between the reference emulator and any pipeline configuration fails. *)
module Gen_kernel = struct
  open QCheck.Gen

  let nregs = 6

  type stmt =
    | Arith of string * int * string * string (* op, dst, a, b *)
    | If of string * int * stmt list * stmt list (* cmp, reg, then, else *)
    | Loop of int * int * stmt list (* counter reg bound mask, body *)
    | Barrier
    | Atomic_add of int (* source reg *)

  let op = oneofl [ "add.u32"; "sub.u32"; "mul.lo.u32"; "xor.b32"; "and.b32"; "min.u32"; "shl.b32" ]
  let cmp = oneofl [ "lt"; "gt"; "eq"; "ne" ]
  let reg = map (fun i -> abs i mod nregs) small_int

  let operand =
    oneof
      [ map (fun r -> Fmt.str "%%r%d" r) reg;
        map (fun i -> string_of_int (abs i mod 64)) small_int ]

  let rec stmt ~depth =
    if depth <= 0 then arith
    else
      frequency
        [
          (6, arith);
          (2, if_stmt ~depth);
          (2, loop ~depth);
          (1, return Barrier);
          (1, map (fun r -> Atomic_add r) reg);
        ]

  and arith =
    map3 (fun o d (a, b) -> Arith (o, d, a, b)) op reg (pair operand operand)

  and if_stmt ~depth =
    let body = list_size (int_range 1 3) (stmt ~depth:(depth - 1)) in
    map3 (fun c r (t, e) -> If (c, r, t, e)) cmp reg (pair body body)

  and loop ~depth =
    let body = list_size (int_range 1 3) (stmt ~depth:(depth - 1)) in
    map3 (fun r m body -> Loop (r, m, body)) reg (int_range 1 7) body

  let kernel_gen = list_size (int_range 2 8) (stmt ~depth:2)

  let to_src stmts =
    let buf = Buffer.create 1024 in
    let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
    let label = ref 0 in
    let fresh () =
      incr label;
      Fmt.str "L%d" !label
    in
    pf ".entry rand (.param .u64 out, .param .u64 acc)\n{\n";
    pf "  .reg .u32 %s, %%t, %%cnt0, %%cnt1, %%cnt2, %%cnt3, %%old;\n"
      (String.concat ", " (List.init nregs (fun i -> Fmt.str "%%r%d" i)));
    pf "  .reg .u64 %%po, %%pacc, %%off;\n  .reg .pred %%p;\n";
    pf "  mov.u32 %%r0, %%tid.x;\n";
    pf "  mad.lo.u32 %%r1, %%r0, 2654435761, 977;\n";
    pf "  mov.u32 %%r2, %%ntid.x;\n  mov.u32 %%r3, %%ctaid.x;\n";
    pf "  mad.lo.u32 %%r4, %%r3, %%r2, %%r0;\n  mov.u32 %%r5, 12345;\n";
    let rec emit ~lvl = function
      | Arith (o, d, a, b) ->
          (* shifts need small amounts; mask via operand choice is fine
             because Scalar_ops clamps identically on both sides *)
          pf "  %s %%r%d, %s, %s;\n" o d a b
      | If (c, r, t, e) ->
          let le = fresh () and lj = fresh () in
          pf "  setp.%s.u32 %%p, %%r%d, 13;\n" c r;
          pf "  @@!%%p bra %s;\n" le;
          List.iter (emit ~lvl) t;
          pf "  bra %s;\n" lj;
          pf "%s:\n" le;
          List.iter (emit ~lvl) e;
          pf "%s:\n" lj
      | Loop (r, m, body) ->
          (* each nesting level owns its counter register, so inner loops
             cannot clobber an outer trip count *)
          let lh = fresh () and lx = fresh () in
          pf "  and.b32 %%cnt%d, %%r%d, %d;\n" lvl r m;
          pf "%s:\n" lh;
          pf "  setp.eq.u32 %%p, %%cnt%d, 0;\n" lvl;
          pf "  @@%%p bra %s;\n" lx;
          List.iter (emit ~lvl:(lvl + 1)) body;
          pf "  sub.u32 %%cnt%d, %%cnt%d, 1;\n" lvl lvl;
          pf "  bra %s;\n" lh;
          pf "%s:\n" lx
      | Barrier -> pf "  bar.sync 0;\n"
      | Atomic_add r ->
          pf "  ld.param.u64 %%pacc, [acc];\n";
          pf "  atom.global.add.u32 %%old, [%%pacc], %%r%d;\n" r;
          pf "  xor.b32 %%r%d, %%r%d, %%old;\n" r r
    in
    List.iter (emit ~lvl:0) stmts;
    (* digest all registers into out[gid]; gid is recomputed because the
       random statements may clobber %r4 *)
    pf "  mov.u32 %%cnt0, %%tid.x;\n";
    pf "  mov.u32 %%cnt1, %%ntid.x;\n";
    pf "  mov.u32 %%cnt2, %%ctaid.x;\n";
    pf "  mad.lo.u32 %%r4, %%cnt2, %%cnt1, %%cnt0;\n";
    pf "  xor.b32 %%t, %%r0, %%r1;\n";
    pf "  xor.b32 %%t, %%t, %%r2;\n";
    pf "  xor.b32 %%t, %%t, %%r3;\n";
    pf "  xor.b32 %%t, %%t, %%r5;\n";
    pf "  ld.param.u64 %%po, [out];\n";
    pf "  cvt.u64.u32 %%off, %%r4;\n";
    pf "  shl.b64 %%off, %%off, 2;\n";
    pf "  add.u64 %%po, %%po, %%off;\n";
    pf "  st.global.u32 [%%po], %%t;\n";
    pf "  exit;\n}\n";
    Buffer.contents buf
end

(* Note: Loop bodies may contain atomics whose interleaving is
   order-dependent through the xor of the fetched old value; warps change
   the interleaving, so generated kernels with Atomic_add inside loops or
   ifs would be racy.  The generator keeps atomics commutative (sum is
   deterministic), and the xor digests only the thread's own values, which
   are interleaving-dependent for %old — so the digest drops %r4 and any
   register clobbered by Atomic_add would break comparability.  To keep
   the differential property sound, atomics are rewritten to not feed the
   digest: we compare only the accumulated counter (commutative) and the
   digest of non-atomic registers. *)

let atomic_free stmts =
  let rec clean = function
    | Gen_kernel.Atomic_add _ -> Gen_kernel.Arith ("add.u32", 5, "%r5", "1")
    | Gen_kernel.If (c, r, t, e) -> Gen_kernel.If (c, r, List.map clean t, List.map clean e)
    | Gen_kernel.Loop (r, m, b) -> Gen_kernel.Loop (r, m, List.map clean b)
    | s -> s
  in
  List.map clean stmts

let prop_random_kernel_differential =
  QCheck.Test.make ~name:"random kernels: pipeline == oracle" ~count:60
    (QCheck.make
       ~print:(fun s -> Gen_kernel.to_src (atomic_free s))
       Gen_kernel.kernel_gen)
    (fun stmts ->
      let src = Gen_kernel.to_src (atomic_free stmts) in
      let threads = 32 and ctas = 2 in
      let n = threads * ctas in
      let run config =
        let dev = Api.create_device () in
        let m = Api.load_module ~config dev src in
        let out = Api.malloc dev (4 * n) in
        let acc = Api.malloc dev 4 in
        ignore
          (Api.launch ~fuel:2_000_000 m ~kernel:"rand" ~grid:(Launch.dim3 ctas)
             ~block:(Launch.dim3 threads)
             ~args:[ Launch.Ptr out; Launch.Ptr acc ]);
        Mem.bytes dev.Api.global |> Bytes.to_string
      in
      let oracle =
        let dev = Api.create_device () in
        let m = Api.load_module dev src in
        let out = Api.malloc dev (4 * n) in
        let acc = Api.malloc dev 4 in
        let g =
          Api.launch_reference m ~kernel:"rand" ~grid:(Launch.dim3 ctas)
            ~block:(Launch.dim3 threads)
            ~args:[ Launch.Ptr out; Launch.Ptr acc ]
        in
        Mem.bytes g |> Bytes.to_string
      in
      List.for_all (fun (_, config) -> String.equal (run config) oracle) configs)

let workload_cases =
  List.concat_map
    (fun (w : Workload.t) ->
      List.map
        (fun (name, config) ->
          Alcotest.test_case
            (Fmt.str "%s/%s" w.Workload.name name)
            `Quick
            (test_workload_config w name config))
        configs)
    Registry.all

let () =
  Alcotest.run "pipeline"
    [
      ("workloads", workload_cases);
      ( "behaviour",
        [
          Alcotest.test_case "uniform full warps" `Quick test_uniform_kernel_full_warps;
          Alcotest.test_case "divergent small warps" `Quick test_divergent_kernel_small_warps;
          Alcotest.test_case "cp speedup" `Quick test_speedup_compute_bound;
          Alcotest.test_case "mersenne DWF pathology" `Quick test_mersenne_dwf_slowdown;
          Alcotest.test_case "barrier restores" `Quick test_barrier_kernel_restores;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums_to_one;
          Alcotest.test_case "body dominates" `Quick test_compute_bound_body_dominates;
          Alcotest.test_case "scalar never diverges" `Quick test_scalar_pipeline_never_diverges;
          Alcotest.test_case "spec-args caching" `Quick test_spec_args_caches_per_arguments;
          Alcotest.test_case "device functions" `Quick test_device_functions_through_pipeline;
          Alcotest.test_case "spec-args folding" `Quick test_spec_args_folds_params;
          Alcotest.test_case "table1 shape" `Quick test_throughput_table1_shape;
        ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest prop_random_kernel_differential ] );
    ]
