(* Tests for checkpoint/restore and record-replay (DESIGN.md §3.5):
   snapshot serialization round trips bit-identically and rejects any
   corruption; an interrupted-then-resumed launch is indistinguishable
   from an uninterrupted one (memory and integer statistics) across the
   registry at workers 1 and 4; replay reproduces the exact recorded
   warp-formation sequence; a corrupted snapshot is rejected with a
   structured error and falls back to the emulator oracle.  Also covers
   the config-validation and monotonic quarantine-age satellites. *)

module Api = Vekt_runtime.Api
module TC = Vekt_runtime.Translation_cache
module Checkpoint = Vekt_runtime.Checkpoint
module Replay = Vekt_runtime.Replay
module Sched = Vekt_runtime.Scheduler
module Fault = Vekt_runtime.Fault
module Stats = Vekt_runtime.Stats
module M = Vekt_obs.Metrics
module Obs = Vekt_obs
module Interp = Vekt_vm.Interp
open Vekt_ptx
open Vekt_workloads

(* A dozen registry workloads covering every category; enough for the
   differential acceptance criterion (>= 12). *)
let some_workloads = List.filteri (fun i _ -> i < 12) Registry.all

let tmpdir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "vekt-test-ckpt" in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let counter_value m ~kernel report name =
  !(M.counter (Api.metrics m ~kernel report) name)

let is_ckpt_error = function
  | Vekt_error.Error (Vekt_error.Checkpoint _) -> true
  | _ -> false

(* ---- synthetic snapshots: a deterministic generator over one seed ---- *)

let mk_rng seed =
  let r = ref (if seed = 0 then 1 else seed land 0x3FFFFFFF) in
  fun () ->
    r := (!r * 48271 + 11) land 0x3FFFFFFF;
    !r

let mk_stats next =
  let s = Stats.create () in
  List.iter
    (fun (_, _, set) -> set s.Stats.counters (next () land 0xFFFFF))
    Interp.int_counter_fields;
  List.iter
    (fun (_, _, set) -> set s.Stats.counters (float_of_int (next ()) /. 7.0))
    Interp.cycle_counter_fields;
  s.Stats.em_cycles <- float_of_int (next ()) /. 3.0;
  s.Stats.barrier_releases <- next () land 0xFF;
  s.Stats.threads_launched <- next () land 0xFFFF;
  s.Stats.wall_cycles <- float_of_int (next ());
  Hashtbl.replace s.Stats.warp_hist 1 (next () land 0xFF);
  Hashtbl.replace s.Stats.warp_hist 4 (next () land 0xFF);
  s

let mk_bytes next n = Bytes.init n (fun _ -> Char.chr (next () land 0xFF))

let mk_cta next : Checkpoint.cta_snap =
  let n = 1 + (next () land 7) in
  {
    Checkpoint.c_ctaid =
      { Launch.x = next () land 3; y = next () land 1; z = 0 };
    c_shared = mk_bytes next (next () land 63);
    c_local = mk_bytes next (n * (next () land 15));
    c_threads =
      Array.init n (fun _ ->
          {
            Checkpoint.t_resume = next () land 7;
            t_state =
              (match next () mod 3 with
              | 0 -> Sched.Ready
              | 1 -> Sched.Blocked
              | _ -> Sched.Done);
          });
    c_cursor = next () mod n;
    c_remaining = next () land 7;
    c_calls_used = next () land 0xFFF;
    c_stalls = (if next () land 1 = 0 then [||] else Array.init n (fun _ -> next () land 3));
  }

let mk_snap seed : Checkpoint.t =
  let next = mk_rng seed in
  let nworkers = 1 + (next () land 3) in
  {
    Checkpoint.kernel = Fmt.str "k%d" (next () land 0xFF);
    grid = { Launch.x = 1 + (next () land 7); y = 1; z = 1 };
    block = { Launch.x = 1 + (next () land 31); y = 1; z = 1 };
    workers = nworkers;
    seq = 1 + (next () land 0xFF);
    global_size = 1 lsl 20;
    global_image = mk_bytes next (next () land 1023);
    params_image = mk_bytes next (next () land 63);
    worker_snaps =
      Array.init nworkers (fun _ ->
          {
            Checkpoint.w_next_cta = next () land 15;
            w_stats = mk_stats next;
            w_inflight =
              (if next () land 1 = 0 then None else Some (mk_cta next));
          });
    fault_state =
      (if next () land 1 = 0 then None
       else Some (Array.init 6 (fun _ -> next ())));
    hotness = [ (4, "digest-a", next () land 0xFF); (2, "digest-b", 1) ];
    quarantine = [ (4, "digest-a", 1 + (next () land 7)) ];
  }

(* ---- serialization round trip and corruption rejection ---- *)

let test_roundtrip_bit_identical =
  QCheck.Test.make ~count:100 ~name:"snapshot serialize/deserialize round trip"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let t = mk_snap seed in
      let data = Checkpoint.to_bytes t in
      let t' = Checkpoint.of_bytes ~path:"(test)" data in
      Bytes.equal data (Checkpoint.to_bytes t'))

let test_truncation_rejected =
  QCheck.Test.make ~count:60 ~name:"truncated snapshot rejected"
    QCheck.(pair (int_bound 1_000_000) (int_bound 10_000))
    (fun (seed, cut) ->
      let data = Checkpoint.to_bytes (mk_snap seed) in
      let cut = cut mod Bytes.length data in
      match
        Checkpoint.of_bytes ~path:"(test)" (Bytes.sub data 0 cut)
      with
      | _ -> false
      | exception e -> is_ckpt_error e)

let test_bitflip_rejected =
  QCheck.Test.make ~count:100 ~name:"corrupted snapshot byte rejected"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, pos) ->
      let data = Checkpoint.to_bytes (mk_snap seed) in
      let pos = pos mod Bytes.length data in
      let bad = Bytes.copy data in
      Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x5A));
      match Checkpoint.of_bytes ~path:"(test)" bad with
      | _ -> false
      | exception e -> is_ckpt_error e)

let test_trailing_bytes_rejected () =
  let data = Checkpoint.to_bytes (mk_snap 42) in
  let padded = Bytes.cat data (Bytes.make 3 'x') in
  match Checkpoint.of_bytes ~path:"(test)" padded with
  | _ -> Alcotest.fail "trailing bytes accepted"
  | exception e ->
      Alcotest.(check bool) "structured error" true (is_ckpt_error e)

(* ---- interrupted + resumed = uninterrupted, across the registry ---- *)

let fresh_run ?(config = Api.default_config) ?checkpoint_stop (w : Workload.t)
    =
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  let report =
    Api.launch ?checkpoint_stop m ~kernel:w.Workload.kernel
      ~grid:inst.Workload.grid ~block:inst.Workload.block
      ~args:inst.Workload.args
  in
  (dev, m, inst, report)

let check_int_stats what ~(expect : Stats.t) ~(got : Stats.t) =
  let ci name a b = Alcotest.(check int) (what ^ ": " ^ name) a b in
  List.iter
    (fun (name, get, _) ->
      ci name (get expect.Stats.counters) (get got.Stats.counters))
    Interp.int_counter_fields;
  ci "barrier_releases" expect.Stats.barrier_releases got.Stats.barrier_releases;
  ci "threads_launched" expect.Stats.threads_launched got.Stats.threads_launched

(* Run the workload once uninterrupted; then again with the checkpoint
   policy stopping the launch after its [stop]th snapshot, and resume
   the interrupted launch from that snapshot in a third, fresh module.
   Final global memory must be bit-identical and the merged integer
   statistics equal. *)
let test_resume_differential ~workers ~stop (w : Workload.t) () =
  let dir = Filename.concat tmpdir (Fmt.str "%s-w%d" w.Workload.name workers) in
  let config =
    {
      Api.default_config with
      workers = Some workers;
      checkpoint_every = 3;
      checkpoint_dir = dir;
    }
  in
  let dev0, _, inst0, r0 =
    fresh_run ~config:{ config with checkpoint_every = 0 } w
  in
  (match inst0.Workload.check dev0 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s uninterrupted: %s" w.Workload.name e);
  match fresh_run ~config ~checkpoint_stop:stop w with
  | dev1, _, inst1, r1 ->
      (* the launch completed before [stop] snapshots accumulated: it
         still ran under the checkpoint policy, so the results must be
         untouched by snapshotting *)
      (match inst1.Workload.check dev1 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s checkpointed: %s" w.Workload.name e);
      Alcotest.(check bool)
        (Fmt.str "%s w%d: checkpointing leaves memory identical"
           w.Workload.name workers)
        true
        (Mem.equal dev0.Api.global dev1.Api.global);
      check_int_stats
        (Fmt.str "%s w%d ckpt-on" w.Workload.name workers)
        ~expect:r0.Api.stats ~got:r1.Api.stats
  | exception Checkpoint.Stop snap_path ->
      let dev2 = Api.create_device () in
      let m2 = Api.load_module ~config dev2 w.Workload.src in
      let inst2 = w.Workload.setup dev2 in
      let r2 =
        Api.launch ~resume:snap_path m2 ~kernel:w.Workload.kernel
          ~grid:inst2.Workload.grid ~block:inst2.Workload.block
          ~args:inst2.Workload.args
      in
      (match inst2.Workload.check dev2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s resumed: %s" w.Workload.name e);
      Alcotest.(check bool)
        (Fmt.str "%s w%d: resumed memory bit-identical to uninterrupted"
           w.Workload.name workers)
        true
        (Mem.equal dev0.Api.global dev2.Api.global);
      check_int_stats
        (Fmt.str "%s w%d resumed" w.Workload.name workers)
        ~expect:r0.Api.stats ~got:r2.Api.stats;
      Alcotest.(check bool)
        (Fmt.str "%s w%d: resume accounted" w.Workload.name workers)
        true
        (counter_value m2 ~kernel:w.Workload.kernel r2 "ckpt.resumes" >= 1)

(* ---- spill/restore round trip at a forced yield point ----

   Two-phase barrier kernel: phase 1 doubles x into tmp, phase 2 reads
   the wrapped right neighbour after bar.sync.  Stopping at the second
   snapshot with checkpoint_every=1 lands inside the CTA with live
   values spilled by the exit handlers and threads parked at the
   barrier; the resumed run must restore them through the entry
   handlers and still produce the exact ring sums. *)
let ringsum_src =
  {|
.entry ringsum (.param .u64 x, .param .u64 tmp, .param .u64 out, .param .u32 n)
{
  .reg .u32 %t, %n, %j;
  .reg .u64 %px, %pt, %po, %off, %offj;
  .reg .f32 %v, %w;
  .reg .pred %p;

  mov.u32 %t, %tid.x;
  ld.param.u32 %n, [n];
  cvt.u64.u32 %off, %t;
  shl.b64 %off, %off, 2;
  ld.param.u64 %px, [x];
  add.u64 %px, %px, %off;
  ld.global.f32 %v, [%px];
  add.f32 %v, %v, %v;
  ld.param.u64 %pt, [tmp];
  add.u64 %pt, %pt, %off;
  st.global.f32 [%pt], %v;

  bar.sync 0;

  add.u32 %j, %t, 1;
  setp.lt.u32 %p, %j, %n;
  @%p bra NOWRAP;
  mov.u32 %j, 0;
NOWRAP:
  cvt.u64.u32 %offj, %j;
  shl.b64 %offj, %offj, 2;
  ld.param.u64 %pt, [tmp];
  add.u64 %pt, %pt, %offj;
  ld.global.f32 %w, [%pt];
  add.f32 %v, %v, %w;
  ld.param.u64 %po, [out];
  add.u64 %po, %po, %off;
  st.global.f32 [%po], %v;
  exit;
}
|}

let ringsum_setup dev =
  let n = 8 in
  let x = Api.malloc dev (4 * n) in
  Api.write_f32s dev x (List.init n (fun i -> float_of_int (i + 1)));
  let tmp = Api.malloc dev (4 * n) in
  let out = Api.malloc dev (4 * n) in
  let args = [ Launch.Ptr x; Launch.Ptr tmp; Launch.Ptr out; Launch.I32 n ] in
  (n, out, args)

let ringsum_expected n =
  List.init n (fun i ->
      float_of_int (2 * (i + 1)) +. float_of_int (2 * (((i + 1) mod n) + 1)))

let test_spill_restore_roundtrip () =
  let dir = Filename.concat tmpdir "ringsum" in
  let config =
    {
      Api.default_config with
      checkpoint_every = 1;
      checkpoint_dir = dir;
      workers = Some 1;
    }
  in
  let launch ?resume ?checkpoint_stop () =
    let dev = Api.create_device () in
    let m = Api.load_module ~config dev ringsum_src in
    let n, out, args = ringsum_setup dev in
    ignore
      (Api.launch ?resume ?checkpoint_stop m ~kernel:"ringsum"
         ~grid:(Launch.dim3 1) ~block:(Launch.dim3 n) ~args);
    Api.read_f32s dev out n
  in
  (* stop at snapshot 2: past the first dispatches, threads blocked at
     the barrier with their registers spilled to the local arena *)
  match launch ~checkpoint_stop:2 () with
  | _ -> Alcotest.fail "expected Checkpoint.Stop"
  | exception Checkpoint.Stop snap ->
      let s = Checkpoint.read snap in
      let parked =
        Array.fold_left
          (fun acc (ws : Checkpoint.worker_snap) ->
            match ws.Checkpoint.w_inflight with
            | None -> acc
            | Some c ->
                acc
                + Array.fold_left
                    (fun a (t : Checkpoint.thread_snap) ->
                      if t.Checkpoint.t_state <> Sched.Done then a + 1 else a)
                    0 c.Checkpoint.c_threads)
          0 s.Checkpoint.worker_snaps
      in
      Alcotest.(check bool) "snapshot holds live thread contexts" true
        (parked > 0);
      Alcotest.(check (list (float 1e-6)))
        "resumed ring sums exact" (ringsum_expected 8)
        (launch ~resume:snap ())

(* ---- record / replay determinism ---- *)

let warp_formed_list events =
  List.filter_map
    (function
      | Obs.Event.Warp_formed { worker; entry_id; size; _ } ->
          Some (worker, entry_id, size)
      | _ -> None)
    events

let test_record_replay_determinism () =
  List.iter
    (fun (w : Workload.t) ->
      let log = Filename.concat tmpdir (w.Workload.name ^ ".sched") in
      let run config =
        let events = ref [] in
        let sink = Obs.Sink.fn (fun e -> events := e :: !events) in
        let dev = Api.create_device () in
        let m = Api.load_module ~config dev w.Workload.src in
        let inst = w.Workload.setup dev in
        ignore
          (Api.launch ~sink m ~kernel:w.Workload.kernel
             ~grid:inst.Workload.grid ~block:inst.Workload.block
             ~args:inst.Workload.args);
        (match inst.Workload.check dev with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" w.Workload.name e);
        List.rev !events
      in
      let base = { Api.default_config with workers = Some 4 } in
      let recorded = run { base with record = Some log } in
      let replayed = run { base with replay = Some log } in
      Alcotest.(check bool)
        (Fmt.str "%s: replay begins" w.Workload.name)
        true
        (List.exists
           (function Obs.Event.Replay_begin _ -> true | _ -> false)
           replayed);
      Alcotest.(check (list (triple int int int)))
        (Fmt.str "%s: identical warp-formation sequence" w.Workload.name)
        (warp_formed_list recorded)
        (warp_formed_list replayed))
    (List.filteri (fun i _ -> i < 6) Registry.all)

let test_replay_divergence_detected () =
  let w = Registry.find_exn "vecadd" in
  let log = Filename.concat tmpdir "diverge.sched" in
  let run config ~grid =
    let dev = Api.create_device () in
    let m = Api.load_module ~config dev w.Workload.src in
    let inst = w.Workload.setup dev in
    ignore
      (Api.launch m ~kernel:w.Workload.kernel ~grid
         ~block:inst.Workload.block ~args:inst.Workload.args)
  in
  let dev = Api.create_device () in
  let inst = (Registry.find_exn "vecadd").Workload.setup dev in
  let grid = inst.Workload.grid in
  run { Api.default_config with record = Some log } ~grid;
  (* a different block shape cannot follow the recorded schedule *)
  match
    run { Api.default_config with replay = Some log }
      ~grid:{ grid with Launch.x = grid.Launch.x + 1 }
  with
  | () -> Alcotest.fail "replay against a different grid accepted"
  | exception e ->
      Alcotest.(check bool) "structured divergence" true (is_ckpt_error e)

let test_replay_log_truncation_rejected () =
  let w = Registry.find_exn "vecadd" in
  let log = Filename.concat tmpdir "trunc.sched" in
  let dev = Api.create_device () in
  let m =
    Api.load_module ~config:{ Api.default_config with record = Some log } dev
      w.Workload.src
  in
  let inst = w.Workload.setup dev in
  ignore
    (Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
       ~block:inst.Workload.block ~args:inst.Workload.args);
  let lines = In_channel.with_open_bin log In_channel.input_lines in
  let keep = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  Out_channel.with_open_bin log (fun oc ->
      List.iter (fun l -> Printf.fprintf oc "%s\n" l) keep);
  match Replay.load log with
  | _ -> Alcotest.fail "truncated log accepted"
  | exception e ->
      Alcotest.(check bool) "structured truncation error" true
        (is_ckpt_error e)

(* ---- corrupted snapshot: structured rejection, oracle fallback ---- *)

let corrupt_copy snap =
  let data =
    In_channel.with_open_bin snap In_channel.input_all |> Bytes.of_string
  in
  let pos = Bytes.length data - 8 in
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0xFF));
  let bad = snap ^ ".bad" in
  Out_channel.with_open_bin bad (fun oc -> Out_channel.output_bytes oc data);
  bad

let test_corrupt_resume () =
  let w = Registry.find_exn "vecadd" in
  let dir = Filename.concat tmpdir "corrupt" in
  let config =
    {
      Api.default_config with
      checkpoint_every = 1;
      checkpoint_dir = dir;
      workers = Some 1;
    }
  in
  let snap =
    match fresh_run ~config ~checkpoint_stop:1 w with
    | _ -> Alcotest.fail "expected Checkpoint.Stop"
    | exception Checkpoint.Stop snap -> snap
  in
  let bad = corrupt_copy snap in
  (* without recovery: the structured error surfaces *)
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup dev in
  (match
     Api.launch ~resume:bad m ~kernel:w.Workload.kernel
       ~grid:inst.Workload.grid ~block:inst.Workload.block
       ~args:inst.Workload.args
   with
  | _ -> Alcotest.fail "corrupted snapshot accepted"
  | exception e ->
      Alcotest.(check bool) "structured rejection" true (is_ckpt_error e));
  (* with recovery armed: rejected, then the emulator oracle completes
     the launch with correct results *)
  let dev2 = Api.create_device () in
  let m2 =
    Api.load_module ~config:{ config with recover = true } dev2 w.Workload.src
  in
  let inst2 = w.Workload.setup dev2 in
  let r =
    Api.launch ~resume:bad m2 ~kernel:w.Workload.kernel
      ~grid:inst2.Workload.grid ~block:inst2.Workload.block
      ~args:inst2.Workload.args
  in
  (match inst2.Workload.check dev2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "oracle fallback results: %s" e);
  (match r.Api.recovered with
  | Some (Vekt_error.Checkpoint _) -> ()
  | _ -> Alcotest.fail "expected Checkpoint recovery cause");
  Alcotest.(check int) "one emulator run" 1
    (counter_value m2 ~kernel:w.Workload.kernel r "fallback.emulator_runs");
  Alcotest.(check bool) "rejection counted" true
    (counter_value m2 ~kernel:w.Workload.kernel r "ckpt.rejected" >= 1)

(* ---- in-launch fault recovery resumes from the newest snapshot ---- *)

let test_fault_recovery_resumes_from_checkpoint () =
  let w = Registry.find_exn "vecadd" in
  let dir = Filename.concat tmpdir "fault-resume" in
  let config =
    {
      Api.default_config with
      checkpoint_every = 2;
      checkpoint_dir = dir;
      workers = Some 1;
      recover = true;
      inject =
        Some
          {
            Fault.seed = 7;
            specs = [ Fault.Mem_trap { nth = 40; kernel = None } ];
          };
    }
  in
  let dev0, _, inst0, _ = fresh_run w (* uninterrupted reference *) in
  ignore inst0;
  let dev, m, inst, r = fresh_run ~config w in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "recovered results: %s" e);
  Alcotest.(check bool) "memory identical to clean run" true
    (Mem.equal dev0.Api.global dev.Api.global);
  Alcotest.(check bool) "no oracle run" true (r.Api.recovered = None);
  Alcotest.(check int) "no emulator fallback" 0
    (counter_value m ~kernel:w.Workload.kernel r "fallback.emulator_runs");
  Alcotest.(check bool) "resumed from a snapshot" true
    (counter_value m ~kernel:w.Workload.kernel r "ckpt.resumes" >= 1)

(* ---- satellite: config validation at module load ---- *)

let test_config_validation () =
  let w = Registry.find_exn "vecadd" in
  let dev = Api.create_device () in
  let reject what config =
    match Api.load_module ~config dev w.Workload.src with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Vekt_error.Error (Vekt_error.Resource _) -> ()
    | exception Vekt_error.Error (Vekt_error.Checkpoint _) -> ()
  in
  reject "workers=0" { Api.default_config with workers = Some 0 };
  reject "workers=-2" { Api.default_config with workers = Some (-2) };
  reject "checkpoint_every=-1"
    { Api.default_config with checkpoint_every = -1 };
  reject "cache_capacity=0" { Api.default_config with cache_capacity = Some 0 };
  reject "empty pipeline"
    {
      Api.default_config with
      pipeline =
        {
          Vekt_transform.Passes.default_pipeline with
          Vekt_transform.Passes.passes = [];
        };
    };
  reject "record+replay"
    { Api.default_config with record = Some "a"; replay = Some "b" };
  (* a healthy config still loads *)
  ignore (Api.load_module dev w.Workload.src)

(* ---- satellite: quarantine ages out on the monotonic clock ---- *)

let test_quarantine_max_age () =
  let w = Registry.find_exn "vecadd" in
  let base max_age =
    {
      Api.default_config with
      widths = [ 4; 2; 1 ];
      inject =
        Some
          {
            Fault.seed = 7;
            specs =
              [
                Fault.Compile_fail
                  { ws = Some 4; tier = None; kernel = None; p = 1.0 };
              ];
          };
      recover = true;
      quarantine_ttl = 1000 (* launch-count TTL effectively never *);
      quarantine_max_age_us = max_age;
    }
  in
  let failures_per_launch config =
    let dev = Api.create_device () in
    let m = Api.load_module ~config dev w.Workload.src in
    let inst = w.Workload.setup dev in
    let launch () =
      Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
        ~block:inst.Workload.block ~args:inst.Workload.args
    in
    let f1 =
      counter_value m ~kernel:w.Workload.kernel (launch ())
        "fallback.compile_failures"
    in
    let f2 =
      counter_value m ~kernel:w.Workload.kernel (launch ())
        "fallback.compile_failures"
    in
    (f1, f2)
  in
  (* control: under the launch-count TTL alone the width stays
     quarantined, so a second launch adds no compile failures *)
  let c1, c2 = failures_per_launch (base None) in
  Alcotest.(check bool) "count TTL: width attempted once" true (c1 >= 1);
  Alcotest.(check int) "count TTL: second launch skips the width" c1 c2;
  (* a zero age bound expires the entry on the monotonic clock the
     moment it lands, so the width keeps being re-attempted (and keeps
     failing) — the cumulative count grows across launches despite the
     huge launch-count TTL *)
  let a1, a2 = failures_per_launch (base (Some 0.0)) in
  Alcotest.(check bool) "age bound: width attempted" true (a1 >= 1);
  Alcotest.(check bool)
    (Fmt.str "age bound: second launch re-attempts (%d -> %d)" a1 a2)
    true (a2 > a1)

(* ---- registration ---- *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "checkpoint"
    [
      ( "serialization",
        [
          q test_roundtrip_bit_identical;
          q test_truncation_rejected;
          q test_bitflip_rejected;
          Alcotest.test_case "trailing bytes rejected" `Quick
            test_trailing_bytes_rejected;
        ] );
      ( "resume-differential-w1",
        List.map
          (fun (w : Workload.t) ->
            Alcotest.test_case w.Workload.name `Quick
              (test_resume_differential ~workers:1 ~stop:1 w))
          some_workloads );
      ( "resume-differential-w4",
        List.map
          (fun (w : Workload.t) ->
            Alcotest.test_case w.Workload.name `Quick
              (test_resume_differential ~workers:4 ~stop:2 w))
          some_workloads );
      ( "spill-restore",
        [
          Alcotest.test_case "barrier yield round trip" `Quick
            test_spill_restore_roundtrip;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "determinism across registry" `Quick
            test_record_replay_determinism;
          Alcotest.test_case "divergence detected" `Quick
            test_replay_divergence_detected;
          Alcotest.test_case "truncated log rejected" `Quick
            test_replay_log_truncation_rejected;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "corrupt resume rejects, oracle completes" `Quick
            test_corrupt_resume;
        ] );
      ( "fault-recovery",
        [
          Alcotest.test_case "resumes from newest snapshot" `Quick
            test_fault_recovery_resumes_from_checkpoint;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation at load" `Quick test_config_validation;
        ] );
      ( "quarantine-age",
        [
          Alcotest.test_case "monotonic age bound" `Quick
            test_quarantine_max_age;
        ] );
    ]
