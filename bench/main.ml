(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (§6):

     table1   peak FP throughput vs warp size        (Table 1)
     fig6     speedup of dynamic vectorization       (Figure 6)
     fig7     average warp size / size fractions     (Figure 7)
     fig8     live values restored per entry         (Figure 8)
     fig9     cycle attribution EM/yield/subkernel   (Figure 9)
     sec62    TIE static instruction reduction       (§6.2)
     fig10    static+TIE speedup over dynamic        (Figure 10)
     ablate-cap    max-warp-size sweep (motivated by §6.1's observation
                   that capping helps irregular apps)
     ablate-yield  EM-overhead sensitivity (§6.1, "improving efficiency of
                   the execution manager is key")
     ablate-sched  warp-formation policy sweep (dynamic vs barrier-aware)
     ablate-tier   tiered JIT vs eager compilation (compile wall time)
     bechamel      wall-clock microbenchmarks of the dynamic compiler

   `main.exe` with no arguments runs all paper experiments; pass section
   names to select.  `--scale N` grows problem sizes. *)

module Api = Vekt_runtime.Api
module Stats = Vekt_runtime.Stats
module TC = Vekt_runtime.Translation_cache
module Interp = Vekt_vm.Interp
module Machine = Vekt_vm.Machine
module Vectorize = Vekt_transform.Vectorize
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
open Vekt_ptx
open Vekt_workloads

let scale = ref 2

(* ------------------------------------------------------------------ *)
(* Runner *)

type run = { report : Api.report; name : string }

(* With [--trace-dir DIR], every workload launch writes a Chrome
   trace-event artifact DIR/<workload>-<seq>.json (multiple configs of
   the same workload get successive sequence numbers), so any figure
   regression can be drilled into in Perfetto. *)
let trace_dir : string option ref = ref None
let trace_seq = ref 0

let emit_trace name (t : Vekt_obs.Trace.t) =
  match !trace_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      incr trace_seq;
      let path = Fmt.str "%s/%s-%03d.json" dir name !trace_seq in
      let oc = open_out_bin path in
      output_string oc (Vekt_obs.Trace.to_chrome_json t);
      close_out oc

let run_workload ?em_costs (w : Workload.t) (config : Api.config) : run =
  let dev = Api.create_device ?em_costs () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup ~scale:!scale dev in
  let tracer =
    match !trace_dir with
    | Some _ -> Some (Vekt_obs.Trace.create ~capacity:(1 lsl 18) ())
    | None -> None
  in
  let sink =
    match tracer with
    | Some t -> Vekt_obs.Trace.sink t
    | None -> Vekt_obs.Sink.noop
  in
  let report =
    Api.launch ~sink m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  Option.iter (emit_trace w.Workload.name) tracer;
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Fmt.failwith "%s: wrong results under %s: %s" w.Workload.name "bench" e);
  { report; name = w.Workload.name }

let scalar_config = { Api.default_config with widths = [ 1 ] }
let dynamic_config = Api.default_config
let static_config = { Api.default_config with mode = Vectorize.Static_tie }

let header title =
  Fmt.pr "@.=== %s ===@." title

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 () =
  header "Table 1: peak single-precision throughput vs warp size";
  Fmt.pr "(microbenchmark: %d threads of unrolled independent FMA chains)@."
    W_throughput.threads;
  let paper = [ (1, 25.0); (2, 47.9); (4, 97.1); (8, 37.0) ] in
  Fmt.pr "%-10s %14s %14s@." "warp size" "GFLOP/s" "paper GFLOP/s";
  List.iter
    (fun (ws, paper_gflops) ->
      let config =
        { Api.default_config with widths = (if ws = 1 then [ 1 ] else [ ws; 1 ]) }
      in
      let dev = Api.create_device () in
      let m = Api.load_module ~config dev W_throughput.src in
      let inst = W_throughput.setup ~scale:(4 * !scale) dev in
      let r =
        Api.launch m ~kernel:"throughput" ~grid:inst.Workload.grid
          ~block:inst.Workload.block ~args:inst.Workload.args
      in
      (match inst.Workload.check dev with
      | Ok () -> ()
      | Error e -> Fmt.failwith "throughput ws=%d wrong: %s" ws e);
      Fmt.pr "%-10d %14.1f %14.1f@." ws r.Api.gflops paper_gflops)
    paper;
  Fmt.pr "machine peak: %.1f GFLOP/s (paper estimate: 108)@."
    (Machine.peak_sp_gflops Machine.sse4)

(* ------------------------------------------------------------------ *)
(* Figure 6 *)

(* Speedups the paper states in its text; most bars are only readable
   approximately, so we list the explicitly named ones. *)
let paper_fig6 =
  [ ("binomial", 2.25); ("cp", 3.9) ]

let fig6 () =
  header "Figure 6: speedup of 4-wide dynamic vectorization over scalar";
  Fmt.pr "%-14s %10s %10s %10s %12s@." "application" "scalar" "vec4" "speedup"
    "paper";
  let speedups =
    List.map
      (fun (w : Workload.t) ->
        let s = run_workload w scalar_config in
        let v = run_workload w dynamic_config in
        let speedup = s.report.Api.cycles /. v.report.Api.cycles in
        let paper =
          match List.assoc_opt w.Workload.name paper_fig6 with
          | Some x -> Fmt.str "%.2fx" x
          | None -> "-"
        in
        Fmt.pr "%-14s %10.0f %10.0f %9.2fx %12s@." w.Workload.name
          s.report.Api.cycles v.report.Api.cycles speedup paper;
        speedup)
      Registry.all
  in
  Fmt.pr "average speedup: %.2fx (paper: 1.45x)@." (mean speedups)

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

let fig7 () =
  header "Figure 7: warp-size distribution at maximum warp size 4";
  Fmt.pr "%-14s %8s %8s %8s %10s@." "application" "ws=1" "ws=2" "ws=4" "avg size";
  List.iter
    (fun (w : Workload.t) ->
      let v = run_workload w dynamic_config in
      let f ws = Stats.warp_fraction v.report.Api.stats ws in
      Fmt.pr "%-14s %7.1f%% %7.1f%% %7.1f%% %10.2f@." w.Workload.name
        (100. *. f 1) (100. *. f 2) (100. *. f 4)
        (Stats.average_warp_size v.report.Api.stats))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

let fig8 () =
  header "Figure 8: average live values restored per thread per entry";
  Fmt.pr "%-14s %12s@." "application" "restores";
  let avgs =
    List.map
      (fun (w : Workload.t) ->
        let v = run_workload w dynamic_config in
        let avg = Stats.average_restores_per_thread v.report.Api.stats in
        Fmt.pr "%-14s %12.2f@." w.Workload.name avg;
        avg)
      Registry.all
  in
  Fmt.pr "average: %.2f values/thread (paper: 4.54)@." (mean avgs)

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

let fig9 () =
  header "Figure 9: cycle attribution (execution manager / yields / subkernel)";
  Fmt.pr "%-14s %8s %8s %10s@." "application" "EM" "yield" "subkernel";
  List.iter
    (fun (w : Workload.t) ->
      let v = run_workload w dynamic_config in
      let em, yld, body = Stats.cycle_breakdown v.report.Api.stats in
      Fmt.pr "%-14s %7.1f%% %7.1f%% %9.1f%%@." w.Workload.name (100. *. em)
        (100. *. yld) (100. *. body))
    Registry.all

(* ------------------------------------------------------------------ *)
(* §6.2 static instruction counts *)

let sec62 () =
  header "Section 6.2: thread-invariant elimination, static instruction reduction";
  List.iter
    (fun ws ->
      let reductions =
        List.map
          (fun (w : Workload.t) ->
            let dev = Api.create_device () in
            let dyn_m =
              Api.load_module ~config:{ dynamic_config with widths = [ ws; 1 ] } dev
                w.Workload.src
            in
            let sta_m =
              Api.load_module ~config:{ static_config with widths = [ ws; 1 ] } dev
                w.Workload.src
            in
            let dyn = TC.get (Api.kernel_cache dyn_m ~kernel:w.Workload.kernel) ~ws () in
            let sta = TC.get (Api.kernel_cache sta_m ~kernel:w.Workload.kernel) ~ws () in
            let d = float_of_int dyn.TC.static_instrs in
            let s = float_of_int sta.TC.static_instrs in
            (d -. s) /. d)
          Registry.all
      in
      Fmt.pr "warp size %d: %.1f%% of instructions eliminated (paper: %s)@." ws
        (100. *. mean reductions)
        (if ws = 2 then "9.5%" else "11.5%"))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

let fig10 () =
  header "Figure 10: static warp formation + TIE, speedup over dynamic formation";
  Fmt.pr "%-14s %10s %10s %10s@." "application" "dynamic" "static" "speedup";
  let speedups =
    List.map
      (fun (w : Workload.t) ->
        let d = run_workload w dynamic_config in
        let s = run_workload w static_config in
        let speedup = d.report.Api.cycles /. s.report.Api.cycles in
        Fmt.pr "%-14s %10.0f %10.0f %9.2fx@." w.Workload.name d.report.Api.cycles
          s.report.Api.cycles speedup;
        speedup)
      Registry.all
  in
  Fmt.pr "average speedup: %.2fx (paper: 1.113x, MersenneTwister up to 6.4x)@."
    (mean speedups)

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablate_cap () =
  header "Ablation: capping the maximum warp size (per-application best width)";
  Fmt.pr "%-14s %10s %10s %10s %8s@." "application" "cap=1" "cap=2" "cap=4" "best";
  List.iter
    (fun (w : Workload.t) ->
      let cycles cap =
        let widths = List.filter (fun x -> x <= cap) [ 4; 2; 1 ] in
        (run_workload w { dynamic_config with widths }).report.Api.cycles
      in
      let c1 = cycles 1 and c2 = cycles 2 and c4 = cycles 4 in
      let best = if c1 <= c2 && c1 <= c4 then 1 else if c2 <= c4 then 2 else 4 in
      Fmt.pr "%-14s %10.0f %10.0f %10.0f %8d@." w.Workload.name c1 c2 c4 best)
    Registry.all

let ablate_affine () =
  header "Ablation: affine/uniform memory coalescing (paper §4 future work)";
  Fmt.pr "(static warp formation; vector loads need consecutive-tid lanes)@.";
  Fmt.pr "%-14s %12s %12s %10s@." "application" "static" "static+affine" "speedup";
  let speedups =
    List.map
      (fun (w : Workload.t) ->
        let s = run_workload w static_config in
        let a = run_workload w { static_config with affine = true } in
        let speedup = s.report.Api.cycles /. a.report.Api.cycles in
        Fmt.pr "%-14s %12.0f %12.0f %9.2fx@." w.Workload.name s.report.Api.cycles
          a.report.Api.cycles speedup;
        speedup)
      Registry.all
  in
  Fmt.pr "average speedup: %.2fx (largest gains on memory-bound kernels)@."
    (mean speedups)

let ablate_machine () =
  header "Ablation: AVX-class 8-wide machine (paper: \"expected to scale\")";
  Fmt.pr "%-10s %16s %16s@." "warp size" "SSE4 GFLOP/s" "AVX GFLOP/s";
  List.iter
    (fun ws ->
      let gflops machine =
        let dev = Api.create_device ~machine () in
        let config =
          { Api.default_config with widths = (if ws = 1 then [ 1 ] else [ ws; 1 ]) }
        in
        let m = Api.load_module ~config dev W_throughput.src in
        let inst = W_throughput.setup ~scale:(2 * !scale) dev in
        let r =
          Api.launch m ~kernel:"throughput" ~grid:inst.Workload.grid
            ~block:inst.Workload.block ~args:inst.Workload.args
        in
        r.Api.gflops
      in
      Fmt.pr "%-10d %16.1f %16.1f@." ws (gflops Machine.sse4) (gflops Machine.avx))
    [ 1; 2; 4; 8 ];
  Fmt.pr "AVX peak: %.1f GFLOP/s — the 8-wide specialization that collapses on a\n4-wide machine scales on an 8-wide one.@."
    (Machine.peak_sp_gflops Machine.avx)

let ablate_spec () =
  header "Ablation: kernel-argument specialization (paper §5.1 future work)";
  Fmt.pr "%-14s %12s %12s %10s@." "application" "generic" "specialized" "speedup";
  let speedups =
    List.map
      (fun (w : Workload.t) ->
        let g = run_workload w dynamic_config in
        let s = run_workload w { dynamic_config with specialize_args = true } in
        let speedup = g.report.Api.cycles /. s.report.Api.cycles in
        Fmt.pr "%-14s %12.0f %12.0f %9.2fx@." w.Workload.name g.report.Api.cycles
          s.report.Api.cycles speedup;
        speedup)
      Registry.all
  in
  Fmt.pr "average speedup: %.2fx (param loads fold into the code)@." (mean speedups)

let ablate_yield () =
  header "Ablation: execution-manager overhead sensitivity (speedup of vec4 vs scalar)";
  let factors = [ 0.0; 0.5; 1.0; 2.0; 4.0 ] in
  Fmt.pr "%-14s" "application";
  List.iter (fun f -> Fmt.pr " %9s" (Fmt.str "em x%.1f" f)) factors;
  Fmt.pr "@.";
  List.iter
    (fun (w : Workload.t) ->
      Fmt.pr "%-14s" w.Workload.name;
      List.iter
        (fun f ->
          let c = Vekt_runtime.Exec_manager.default_costs in
          let em_costs =
            {
              Vekt_runtime.Exec_manager.per_kernel_call = c.per_kernel_call *. f;
              per_candidate_scan = c.per_candidate_scan *. f;
              per_lane_update = c.per_lane_update *. f;
              per_barrier_release = c.per_barrier_release *. f;
            }
          in
          let s = run_workload ~em_costs w scalar_config in
          let v = run_workload ~em_costs w dynamic_config in
          Fmt.pr " %8.2fx" (s.report.Api.cycles /. v.report.Api.cycles))
        factors;
      Fmt.pr "@.")
    (List.filter
       (fun (w : Workload.t) ->
         List.mem w.Workload.name [ "reduction"; "matrixmul"; "binomial"; "cp"; "vecadd" ])
       Registry.all)

let ablate_sched () =
  header "Ablation: warp-formation policy (cycles under dynamic vectorization)";
  Fmt.pr "%-14s %10s %10s %12s %10s@." "application" "dynamic" "barrier"
    "barrier/dyn" "avg ws";
  let module Sched = Vekt_runtime.Scheduler in
  let ratios =
    List.map
      (fun (w : Workload.t) ->
        let d =
          run_workload w { dynamic_config with sched = Some Sched.Dynamic }
        in
        let b =
          run_workload w { dynamic_config with sched = Some Sched.Barrier_aware }
        in
        let ratio = b.report.Api.cycles /. d.report.Api.cycles in
        Fmt.pr "%-14s %10.0f %10.0f %11.3fx %10.2f@." w.Workload.name
          d.report.Api.cycles b.report.Api.cycles ratio
          (Stats.average_warp_size b.report.Api.stats);
        ratio)
      Registry.all
  in
  Fmt.pr
    "average barrier-aware/dynamic cycle ratio: %.3fx (gains concentrate on\nbarrier-heavy kernels; uniform kernels are unchanged)@."
    (mean ratios)

let ablate_tier () =
  header "Ablation: tiered JIT compilation (compile wall time vs eager)";
  Fmt.pr "%-14s %12s %12s %10s %6s %6s@." "application" "eager us" "tiered us"
    "compiles" "promo" "evict";
  let tiered_config =
    {
      dynamic_config with
      tiering = TC.Tiered { hot_threshold = TC.default_hot_threshold };
      cache_capacity = Some 8;
    }
  in
  List.iter
    (fun (w : Workload.t) ->
      let cache config =
        let dev = Api.create_device () in
        let m = Api.load_module ~config dev w.Workload.src in
        let inst = w.Workload.setup ~scale:!scale dev in
        ignore
          (Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
             ~block:inst.Workload.block ~args:inst.Workload.args);
        Api.kernel_cache m ~kernel:w.Workload.kernel
      in
      let e = cache dynamic_config in
      let t = cache tiered_config in
      Fmt.pr "%-14s %12.1f %12.1f %10d %6d %6d@." w.Workload.name
        e.TC.compile_wall_us t.TC.compile_wall_us t.TC.compile_count
        t.TC.promotions t.TC.evictions)
    Registry.all;
  Fmt.pr
    "tier 0 serves cold launches without the pass pipeline; hot widths are\npromoted after %d queries, so steady-state code quality matches eager.@."
    TC.default_hot_threshold

(* ------------------------------------------------------------------ *)
(* Worker-pool scaling: real wall-clock over domain counts *)

(* Unlike every section above (which reports *modelled* cycles), this
   one measures host wall-clock time of the launch itself, because the
   worker pool is real parallelism: one OCaml domain per execution
   manager.  Each (workload, workers) cell gets a fresh module, one
   untimed warmup launch (pays JIT compilation once), then the best of
   [reps] timed launches.  Results land in BENCH_parallel.json;
   speedups only materialize on hosts with spare cores, so the host's
   core count is recorded alongside. *)
let scaling_out = ref "BENCH_parallel.json"

let scaling () =
  header "Scaling: domain-parallel worker pool (host wall-clock)";
  let worker_counts = [ 1; 2; 4; 8 ] in
  let reps = 5 in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr
    "host reports %d usable cores; best-of-%d per cell, percentiles over reps@."
    cores reps;
  Fmt.pr "%-14s %6s" "application" "ncta";
  List.iter (fun w -> Fmt.pr " %10s" (Fmt.str "w%d us" w)) worker_counts;
  Fmt.pr " %9s %8s %8s %8s@." "x at w4" "p50 w4" "p95 w4" "p99 w4";
  let module Clock = Vekt_runtime.Clock in
  let module Metrics = Vekt_obs.Metrics in
  let reg = Metrics.create () in
  let results =
    List.map
      (fun (w : Workload.t) ->
        let cell workers =
          let dev = Api.create_device () in
          let config = { Api.default_config with workers = Some workers } in
          let m = Api.load_module ~config dev w.Workload.src in
          let inst = w.Workload.setup ~scale:!scale dev in
          let launch () =
            ignore
              (Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
                 ~block:inst.Workload.block ~args:inst.Workload.args)
          in
          launch () (* warmup: JIT compiles land here *);
          (* Every rep lands in a histogram so the artifact carries the
             rep-to-rep launch-latency spread, not just the minimum. *)
          let h =
            Metrics.histogram reg
              (Fmt.str "%s.w%d.launch_us" w.Workload.name workers)
          in
          let best = ref infinity in
          for _ = 1 to reps do
            let t0 = Clock.now_us () in
            launch ();
            let us = Clock.elapsed_us t0 in
            Metrics.observe h (int_of_float us);
            best := Float.min !best us
          done;
          (Launch.count inst.Workload.grid, !best, h)
        in
        let cells = List.map (fun n -> (n, cell n)) worker_counts in
        let ncta, base, _ = snd (List.hd cells) in
        Fmt.pr "%-14s %6d" w.Workload.name ncta;
        List.iter (fun (_, (_, us, _)) -> Fmt.pr " %10.0f" us) cells;
        let sp4 =
          match List.assoc_opt 4 cells with
          | Some (_, us, _) when us > 0.0 -> base /. us
          | _ -> 0.0
        in
        (match List.assoc_opt 4 cells with
        | Some (_, _, h4) ->
            let p50, p95, p99 = Metrics.percentiles h4 in
            Fmt.pr " %8.2fx %8d %8d %8d@." sp4 p50 p95 p99
        | None -> Fmt.pr " %8.2fx@." sp4);
        (w.Workload.name, ncta, List.map (fun (n, (_, us, h)) -> (n, us, h)) cells))
      Registry.all
  in
  let wall_of n cells =
    List.find_opt (fun (m, _, _) -> m = n) cells
    |> Option.map (fun (_, us, _) -> us)
  in
  let fast4 =
    List.filter
      (fun (_, ncta, cells) ->
        ncta >= 2
        &&
        match (wall_of 1 cells, wall_of 4 cells) with
        | Some b, Some u when u > 0.0 -> b /. u >= 1.5
        | _ -> false)
      results
  in
  Fmt.pr "%d/%d multi-CTA workloads reach >=1.5x at 4 workers on this host@."
    (List.length fast4)
    (List.length (List.filter (fun (_, ncta, _) -> ncta >= 2) results));
  (* hand-rolled JSON: no JSON library in the dependency set *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str
       "{\n  \"host_cores\": %d,\n  \"scale\": %d,\n  \"reps\": %d,\n  \
        \"workers\": [%s],\n  \"workloads\": [\n"
       cores !scale reps
       (String.concat ", " (List.map string_of_int worker_counts)));
  List.iteri
    (fun i (name, ncta, cells) ->
      let base = Option.value (wall_of 1 cells) ~default:0.0 in
      let wall =
        String.concat ", "
          (List.map (fun (n, us, _) -> Fmt.str "\"%d\": %.1f" n us) cells)
      in
      let speedup =
        String.concat ", "
          (List.map
             (fun (n, us, _) ->
               Fmt.str "\"%d\": %.3f" n
                 (if us > 0.0 && base > 0.0 then base /. us else 0.0))
             cells)
      in
      let pcts =
        String.concat ", "
          (List.map
             (fun (n, _, h) ->
               let p50, p95, p99 = Metrics.percentiles h in
               Fmt.str "\"%d\": {\"p50\": %d, \"p95\": %d, \"p99\": %d}" n p50
                 p95 p99)
             cells)
      in
      Buffer.add_string buf
        (Fmt.str
           "    {\"name\": %S, \"ncta\": %d, \"wall_us\": {%s}, \"speedup\": \
            {%s}, \"launch_us_pct\": {%s}}%s\n"
           name ncta wall speedup pcts
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out_bin !scaling_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." !scaling_out

(* ------------------------------------------------------------------ *)
(* Checkpoint overhead: wall-clock cost of snapshotting in-flight
   launches (DESIGN.md §3.5) *)

(* Wall-clock again, like [scaling]: snapshot serialization and the
   write to disk are host-side costs invisible to the modelled-cycle
   clocks.  Each (workload, interval) cell gets a fresh module, one
   untimed warmup launch, then the best of [reps] timed launches; the
   snapshot count and bytes written come from the launch's checkpoint
   bookkeeping.  Interval 0 is the no-checkpoint baseline (run serial,
   as checkpointing is, so the ratio isolates the snapshot cost). *)
let ckpt_out = ref "BENCH_checkpoint.json"

let ckpt () =
  header "Checkpoint overhead: snapshot interval vs wall-clock";
  let intervals = [ 0; 64; 512 ] in
  let reps = 2 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "vekt-bench-ckpt" in
  let module Clock = Vekt_runtime.Clock in
  Fmt.pr "snapshots land in %s; timing best-of-%d per cell@." dir reps;
  Fmt.pr "%-14s %6s" "application" "ncta";
  List.iter
    (fun n -> Fmt.pr " %10s" (if n = 0 then "off us" else Fmt.str "e%d us" n))
    intervals;
  Fmt.pr " %9s %9s@." "ovh e64" "snaps e64";
  let results =
    List.map
      (fun (w : Workload.t) ->
        let cell every =
          let dev = Api.create_device () in
          let config =
            {
              Api.default_config with
              workers = Some 1;
              checkpoint_every = every;
              checkpoint_dir = dir;
            }
          in
          let m = Api.load_module ~config dev w.Workload.src in
          let inst = w.Workload.setup ~scale:!scale dev in
          let launch () =
            ignore
              (Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
                 ~block:inst.Workload.block ~args:inst.Workload.args)
          in
          launch () (* warmup: JIT compiles land here *);
          let best = ref infinity in
          for _ = 1 to reps do
            let t0 = Clock.now_us () in
            launch ();
            best := Float.min !best (Clock.elapsed_us t0)
          done;
          let snaps, bytes =
            match m.Api.last_ckpt with
            | Some c ->
                ( c.Vekt_runtime.Checkpoint.writes,
                  c.Vekt_runtime.Checkpoint.bytes_written )
            | None -> (0, 0)
          in
          (Launch.count inst.Workload.grid, !best, snaps, bytes)
        in
        let cells = List.map (fun n -> (n, cell n)) intervals in
        let ncta, base, _, _ = snd (List.hd cells) in
        Fmt.pr "%-14s %6d" w.Workload.name ncta;
        List.iter (fun (_, (_, us, _, _)) -> Fmt.pr " %10.0f" us) cells;
        (match List.assoc_opt 64 cells with
        | Some (_, us, snaps, _) when base > 0.0 ->
            Fmt.pr " %8.2fx %9d@." (us /. base) snaps
        | _ -> Fmt.pr "@.");
        (w.Workload.name, ncta, cells))
      Registry.all
  in
  (* hand-rolled JSON: no JSON library in the dependency set *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str
       "{\n  \"scale\": %d,\n  \"reps\": %d,\n  \"intervals\": [%s],\n  \
        \"workloads\": [\n"
       !scale reps
       (String.concat ", " (List.map string_of_int intervals)));
  List.iteri
    (fun i (name, ncta, cells) ->
      let _, base, _, _ = List.assoc 0 cells in
      let field f =
        String.concat ", "
          (List.map (fun (n, c) -> Fmt.str "\"%d\": %s" n (f c)) cells)
      in
      let wall = field (fun (_, us, _, _) -> Fmt.str "%.1f" us) in
      let snaps = field (fun (_, _, s, _) -> string_of_int s) in
      let bytes = field (fun (_, _, _, b) -> string_of_int b) in
      let overhead =
        field (fun (_, us, _, _) ->
            Fmt.str "%.3f" (if base > 0.0 then us /. base else 0.0))
      in
      Buffer.add_string buf
        (Fmt.str
           "    {\"name\": %S, \"ncta\": %d, \"wall_us\": {%s}, \
            \"snapshots\": {%s}, \"bytes\": {%s}, \"overhead\": {%s}}%s\n"
           name ncta wall snaps bytes overhead
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out_bin !ckpt_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." !ckpt_out

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks of the dynamic compiler itself *)

let bechamel () =
  header "Bechamel: dynamic-compiler wall-clock microbenchmarks";
  let open Bechamel in
  let src = W_blackscholes.src in
  let parsed = Parser.parse_module src in
  let tr () = Ptx_to_ir.frontend parsed ~kernel:"blackscholes" in
  let translated = tr () in
  let plan =
    Plan.compute translated.Ptx_to_ir.func
      ~local_decl_bytes:translated.Ptx_to_ir.local_decl_bytes
  in
  let tests =
    [
      Test.make ~name:"parse" (Staged.stage (fun () -> Parser.parse_module src));
      Test.make ~name:"frontend (typecheck+ifconv+translate)"
        (Staged.stage (fun () -> tr ()));
      Test.make ~name:"vectorize w4"
        (Staged.stage (fun () ->
             Vectorize.run ~plan translated.Ptx_to_ir.func ~ws:4));
      Test.make ~name:"vectorize+optimize w4"
        (Staged.stage (fun () ->
             let v = Vectorize.run ~plan translated.Ptx_to_ir.func ~ws:4 in
             Vekt_transform.Passes.optimize v.Vectorize.func));
      Test.make ~name:"timing analysis w4"
        (Staged.stage
           (let v = Vectorize.run ~plan translated.Ptx_to_ir.func ~ws:4 in
            fun () -> Vekt_vm.Timing.analyze Machine.sse4 v.Vectorize.func));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let t = Test.make_grouped ~name:"compiler" ~fmt:"%s %s" tests in
  let results = analyze (benchmark t) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "%-45s %10.1f ns/run@." name est
      | _ -> Fmt.pr "%-45s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("table1", table1);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("sec62", sec62);
    ("fig10", fig10);
    ("ablate-cap", ablate_cap);
    ("ablate-yield", ablate_yield);
    ("ablate-affine", ablate_affine);
    ("ablate-machine", ablate_machine);
    ("ablate-spec", ablate_spec);
    ("ablate-sched", ablate_sched);
    ("ablate-tier", ablate_tier);
    ("scaling", scaling);
    ("ckpt", ckpt);
    ("bechamel", bechamel);
  ]

let paper_sections =
  [ "table1"; "fig6"; "fig7"; "fig8"; "fig9"; "sec62"; "fig10" ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse_args = function
    | "--scale" :: n :: rest ->
        scale := int_of_string n;
        parse_args rest
    | "--trace-dir" :: dir :: rest ->
        trace_dir := Some dir;
        parse_args rest
    | "--scaling-out" :: path :: rest ->
        scaling_out := path;
        parse_args rest
    | "--ckpt-out" :: path :: rest ->
        ckpt_out := path;
        parse_args rest
    | x :: rest -> x :: parse_args rest
    | [] -> []
  in
  let selected = parse_args args in
  let selected = if selected = [] then paper_sections else selected in
  Fmt.pr "vekt benchmark harness — machine model: %s, scale %d@."
    Machine.sse4.Machine.name !scale;
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown section %s (available: %s)@." name
            (String.concat ", " (List.map fst all_sections));
          exit 1)
    selected
