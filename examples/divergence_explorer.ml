(* Divergence explorer: watch yield-on-diverge and warp formation at work.

     dune exec examples/divergence_explorer.exe

   Runs a control-flow-irregular kernel (a per-thread twisted PRNG) and a
   convergent one (BlackScholes) under three policies, printing the
   warp-size histogram, values restored per re-entry, and where the cycles
   went.  Reproduces in miniature the paper's §6.1/§6.2 story: dynamic warp
   formation shines on convergent code, collapses on uncorrelated branches,
   and static warp formation recovers it. *)

module Api = Vekt_runtime.Api
module Stats = Vekt_runtime.Stats
module Vectorize = Vekt_transform.Vectorize
open Vekt_workloads

let policies =
  [
    ("scalar (no vectorization)", { Api.default_config with widths = [ 1 ] });
    ("dynamic warp formation", Api.default_config);
    ("static warp formation + TIE", { Api.default_config with mode = Vectorize.Static_tie });
  ]

let explore (w : Workload.t) =
  Fmt.pr "@.--- %s (%s) ---@." w.Workload.paper_name
    (Workload.category_name w.Workload.category);
  let baseline = ref 0.0 in
  List.iter
    (fun (name, config) ->
      let dev = Api.create_device () in
      let m = Api.load_module ~config dev w.Workload.src in
      let inst = w.Workload.setup ~scale:2 dev in
      let r =
        Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
          ~block:inst.Workload.block ~args:inst.Workload.args
      in
      (match inst.Workload.check dev with
      | Ok () -> ()
      | Error e -> Fmt.failwith "wrong results: %s" e);
      if !baseline = 0.0 then baseline := r.Api.cycles;
      let em, yld, body = Stats.cycle_breakdown r.Api.stats in
      Fmt.pr "%-30s %9.0f cycles (%.2fx)@." name r.Api.cycles
        (!baseline /. r.Api.cycles);
      Fmt.pr "    warp sizes: 1 -> %4.1f%%   2 -> %4.1f%%   4 -> %4.1f%%   (avg %.2f)@."
        (100. *. Stats.warp_fraction r.Api.stats 1)
        (100. *. Stats.warp_fraction r.Api.stats 2)
        (100. *. Stats.warp_fraction r.Api.stats 4)
        (Stats.average_warp_size r.Api.stats);
      Fmt.pr
        "    cycles: %4.1f%% execution manager, %4.1f%% yield save/restore, %4.1f%% subkernel@."
        (100. *. em) (100. *. yld) (100. *. body);
      Fmt.pr "    restores per thread-entry: %.2f@."
        (Stats.average_restores_per_thread r.Api.stats))
    policies

let () =
  explore W_blackscholes.workload;
  explore W_mersenne.workload;
  explore W_bitonic.workload
