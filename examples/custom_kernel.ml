(* Writing a kernel and inspecting every compilation stage.

     dune exec examples/custom_kernel.exe

   Takes a small divergent kernel through the same pipeline the runtime
   uses — parse, type-check, if-convert, translate to scalar IR, compute
   the divergence plan, vectorize for a warp of 4 with yield-on-diverge
   handlers, optimize — printing the intermediate forms, then validates
   execution against the reference emulator. *)

module Ir = Vekt_ir.Ir
module Pp = Vekt_ir.Pp
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
module Vectorize = Vekt_transform.Vectorize
module Passes = Vekt_transform.Passes
module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry collatz (.param .u64 outp, .param .u32 bound)
{
  .reg .u32 %tid, %x, %steps, %bound, %bit;
  .reg .u64 %po, %off;
  .reg .pred %p, %odd;

  mov.u32 %tid, %tid.x;
  add.u32 %x, %tid, 1;
  mov.u32 %steps, 0;
  ld.param.u32 %bound, [bound];

LOOP:
  setp.le.u32 %p, %x, 1;
  @%p bra DONE;
  setp.ge.u32 %p, %steps, %bound;
  @%p bra DONE;
  and.b32 %bit, %x, 1;
  setp.eq.u32 %odd, %bit, 1;
  @%odd bra ODD;
  shr.u32 %x, %x, 1;           // even: x /= 2
  bra NEXT;
ODD:
  mad.lo.u32 %x, %x, 3, 1;     // odd: x = 3x + 1
NEXT:
  add.u32 %steps, %steps, 1;
  bra LOOP;

DONE:
  ld.param.u64 %po, [outp];
  cvt.u64.u32 %off, %tid;
  shl.b64 %off, %off, 2;
  add.u64 %po, %po, %off;
  st.global.u32 [%po], %steps;
  exit;
}
|}

let () =
  let m = Parser.parse_module src in
  Fmt.pr "== source PTX round-trips through the printer ==@.%s@."
    (Printer.to_string m);

  (* Frontend: typecheck + if-conversion + translation to scalar IR. *)
  let tr = Ptx_to_ir.frontend m ~kernel:"collatz" in
  Fmt.pr "== scalar IR (%d instructions) ==@.%a@." (Ir.size tr.Ptx_to_ir.func)
    Pp.func tr.Ptx_to_ir.func;

  (* The divergence plan: entry points and spill slots shared by all
     specializations. *)
  let plan =
    Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes
  in
  Fmt.pr "== divergence plan ==@.";
  List.iter
    (fun (label, id) ->
      Fmt.pr "  entry %d at block %s restores %d registers@." id label
        (Vekt_analysis.Liveness.ISet.cardinal (Plan.entry_live plan label)))
    plan.Plan.entry_ids;
  Fmt.pr "  spill area: %d bytes per thread@." plan.Plan.spill_bytes;

  (* Vectorize for a warp of 4 and optimize. *)
  let v = Vectorize.run ~plan tr.Ptx_to_ir.func ~ws:4 in
  let stats = Passes.optimize v.Vectorize.func in
  Fmt.pr
    "== vectorized for warp size 4: %d instructions after optimization ==@."
    (Ir.size v.Vectorize.func);
  Fmt.pr "   (DCE removed %d, CSE replaced %d, %d blocks fused; %d rounds)@."
    (Passes.changes_of stats "dce")
    (Passes.changes_of stats "cse")
    (Passes.changes_of stats "fusion")
    stats.Passes.rounds;
  Fmt.pr "%a@." Pp.func v.Vectorize.func;

  (* Run through the full runtime and cross-check against the oracle. *)
  let dev = Api.create_device () in
  let api_m = Api.load_module dev src in
  let n = 64 in
  let out = Api.malloc dev (4 * n) in
  let launch_args = [ Launch.Ptr out; Launch.I32 64 ] in
  let reference =
    Api.launch_reference api_m ~kernel:"collatz" ~grid:(Launch.dim3 1)
      ~block:(Launch.dim3 n) ~args:launch_args
  in
  let r =
    Api.launch api_m ~kernel:"collatz" ~grid:(Launch.dim3 1) ~block:(Launch.dim3 n)
      ~args:launch_args
  in
  assert (Mem.equal reference dev.Api.global);
  Fmt.pr "== execution ==@.";
  Fmt.pr "collatz steps for 1..8: %a@."
    Fmt.(list ~sep:sp int)
    (Api.read_i32s dev out 8);
  Fmt.pr "bit-identical to the reference emulator; average warp size %.2f@."
    r.Api.avg_warp_size
