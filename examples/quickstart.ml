(* Quickstart: compile and launch a CUDA-style data-parallel kernel on the
   simulated vector CPU.

     dune exec examples/quickstart.exe

   The kernel is plain PTX: thousands of scalar threads, each adding one
   element.  The runtime translates it once, specializes it for warp sizes
   {1,2,4}, forms warps dynamically and executes them on the modelled
   4-wide SIMD machine. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let kernel_src =
  {|
.entry saxpy (.param .u64 x, .param .u64 y, .param .f32 a, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %i, %n;
  .reg .u64 %px, %py, %off;
  .reg .f32 %a, %xv, %yv;
  .reg .pred %p;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %i, %r2, %r3, %r1;      // global thread index
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;

  cvt.u64.u32 %off, %i;
  shl.b64 %off, %off, 2;
  ld.param.u64 %px, [x];
  ld.param.u64 %py, [y];
  add.u64 %px, %px, %off;
  add.u64 %py, %py, %off;
  ld.param.f32 %a, [a];
  ld.global.f32 %xv, [%px];
  ld.global.f32 %yv, [%py];
  fma.rn.f32 %yv, %a, %xv, %yv;      // y[i] = a*x[i] + y[i]
  st.global.f32 [%py], %yv;

DONE:
  exit;
}
|}

let () =
  (* 1. A simulated device: 4 cores, 4-wide SSE-class vector units. *)
  let dev = Api.create_device () in

  (* 2. Register the PTX module (parses, type-checks; compiles lazily). *)
  let m = Api.load_module dev kernel_src in

  (* 3. Device memory and inputs. *)
  let n = 10_000 in
  let x = Api.malloc dev (4 * n) and y = Api.malloc dev (4 * n) in
  Api.write_f32s dev x (List.init n (fun i -> float_of_int i));
  Api.write_f32s dev y (List.init n (fun _ -> 1.0));

  (* 4. Launch over a grid of cooperative thread arrays. *)
  let block = 128 in
  let report =
    Api.launch m ~kernel:"saxpy"
      ~grid:(Launch.dim3 ((n + block - 1) / block))
      ~block:(Launch.dim3 block)
      ~args:[ Launch.Ptr x; Launch.Ptr y; Launch.F32 0.5; Launch.I32 n ]
  in

  (* 5. Read results back and look at what the runtime did. *)
  let first = Api.read_f32s dev y 5 in
  Fmt.pr "y[0..4] = %a@." Fmt.(list ~sep:sp float) first;
  assert (List.nth first 4 = 3.0);
  Fmt.pr "simulated: %.0f cycles, %.3f ms on a %.1f GHz machine, %.2f GFLOP/s@."
    report.Api.cycles report.Api.time_ms
    (Vekt_vm.Machine.sse4 : Vekt_vm.Machine.t).Vekt_vm.Machine.clock_ghz
    report.Api.gflops;
  Fmt.pr "average warp size: %.2f of 4 (fully convergent kernel)@."
    report.Api.avg_warp_size;
  Fmt.pr "threads launched: %d, kernel entries: %d@."
    report.Api.stats.Vekt_runtime.Stats.threads_launched
    report.Api.stats.Vekt_runtime.Stats.counters.Vekt_vm.Interp.kernel_calls
