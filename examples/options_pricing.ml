(* Options pricing across vector widths — the workloads the paper's
   evaluation leans on (BlackScholes, BinomialOptions, MonteCarlo), swept
   over warp-size specializations to show throughput scaling.

     dune exec examples/options_pricing.exe *)

module Api = Vekt_runtime.Api
open Vekt_workloads

let price (w : Workload.t) widths =
  let config = { Api.default_config with widths } in
  let dev = Api.create_device () in
  let m = Api.load_module ~config dev w.Workload.src in
  let inst = w.Workload.setup ~scale:2 dev in
  let r =
    Api.launch m ~kernel:w.Workload.kernel ~grid:inst.Workload.grid
      ~block:inst.Workload.block ~args:inst.Workload.args
  in
  (match inst.Workload.check dev with
  | Ok () -> ()
  | Error e -> Fmt.failwith "%s produced wrong prices: %s" w.Workload.name e);
  r

let () =
  Fmt.pr "Pricing workloads on the simulated vector CPU@.@.";
  Fmt.pr "%-16s %12s %12s %12s %10s@." "workload" "scalar(cyc)" "2-wide(cyc)"
    "4-wide(cyc)" "speedup";
  List.iter
    (fun w ->
      let r1 = price w [ 1 ] in
      let r2 = price w [ 2; 1 ] in
      let r4 = price w [ 4; 2; 1 ] in
      Fmt.pr "%-16s %12.0f %12.0f %12.0f %9.2fx@." w.Workload.name r1.Api.cycles
        r2.Api.cycles r4.Api.cycles
        (r1.Api.cycles /. r4.Api.cycles))
    [ W_blackscholes.workload; W_binomial.workload; W_montecarlo.workload ];
  Fmt.pr
    "@.BlackScholes is branch-free per option and vectorizes almost perfectly;@.";
  Fmt.pr
    "BinomialOptions synchronizes at every tree level, so part of its runtime@.";
  Fmt.pr "moves into the execution manager (see `bench/main.exe fig9`).@."
