(* vektc — command-line driver for the vekt dynamic kernel compiler.

   Subcommands:
     check    parse and type-check a PTX module
     compile  run the compilation pipeline, dumping IR at each stage
     run      launch a kernel on the simulated vector machine
     emulate  launch a kernel on the reference scalar emulator
     info     static facts about a kernel (entry points, invariance, ...)

   Argument values for `run`/`emulate` are comma-separated specs:
     i32:42         32-bit integer argument
     i64:42         64-bit integer argument
     f32:1.5        float argument
     zeros:N        allocate N bytes of zeroed device memory, pass pointer
     f32s:a,b,c     allocate and fill with floats, pass pointer
     i32s:a,b,c     allocate and fill with ints, pass pointer
   e.g.  vektc run k.ptx -k vecadd --grid 8 --block 128 \
           -a f32s:1,2,3,4 -a f32s:5,6,7,8 -a zeros:16 -a i32:4 --dump f32:2:4 *)

module Ir = Vekt_ir.Ir
module Pp = Vekt_ir.Pp
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
module Vectorize = Vekt_transform.Vectorize
module Passes = Vekt_transform.Passes
module Invariance = Vekt_analysis.Invariance
module Api = Vekt_runtime.Api
module Stats = Vekt_runtime.Stats
module Obs = Vekt_obs
open Vekt_ptx
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let src = read_file path in
  let m =
    try Parser.parse_module src with
    | Parser.Error (msg, line) ->
        Fmt.epr "%s:%d: parse error: %s@." path line msg;
        exit 1
    | Lexer.Error (msg, line) ->
        Fmt.epr "%s:%d: lex error: %s@." path line msg;
        exit 1
  in
  (match Typecheck.check_module m with
  | [] -> ()
  | errs ->
      List.iter (fun e -> Fmt.epr "type error: %a@." Typecheck.pp_error e) errs;
      exit 1);
  (src, m)

let pick_kernel m = function
  | Some k -> k
  | None -> (
      match m.Ast.m_kernels with
      | [ k ] -> k.Ast.k_name
      | ks ->
          Fmt.epr "module has %d kernels; pick one with -k@." (List.length ks);
          exit 1)

(* ---- common options ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ptx" ~doc:"PTX source file")

let kernel_arg =
  Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"NAME" ~doc:"Kernel name")

let ws_arg =
  Arg.(value & opt int 4 & info [ "ws"; "warp-size" ] ~docv:"N" ~doc:"Warp size to specialize for")

let static_arg =
  Arg.(value & flag & info [ "static" ] ~doc:"Static warp formation with thread-invariant elimination")

let affine_arg =
  Arg.(value & flag & info [ "affine" ] ~doc:"Coalesce affine/uniform memory accesses")

let pipeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pipeline" ] ~docv:"SPEC"
        ~doc:
          "Optimization pass pipeline, e.g. constfold,cse,dce,fusion:fix \
           (comma-separated pass names; :fix or :fix=N runs the sequence to \
           fixpoint with bound N). Default: every pass to fixpoint.")

let parse_pipeline_opt = function
  | None -> Vekt_transform.Passes.default_pipeline
  | Some spec -> (
      match Vekt_transform.Passes.parse_pipeline spec with
      | Ok p -> p
      | Error e ->
          Fmt.epr "bad --pipeline: %s@." e;
          exit 1)

(* ---- check ---- *)

let check_cmd =
  let run file =
    let _, m = load file in
    Fmt.pr "%s: %d kernel(s), %d const bank(s) — OK@." file
      (List.length m.Ast.m_kernels) (List.length m.Ast.m_consts);
    List.iter
      (fun (k : Ast.kernel) ->
        Fmt.pr "  %s(%d params): %d registers, %d statements@." k.Ast.k_name
          (List.length k.Ast.k_params) (List.length k.Ast.k_regs)
          (List.length k.Ast.k_body))
      m.Ast.m_kernels
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type-check a PTX module")
    Term.(const run $ file_arg)

(* ---- compile ---- *)

let compile_cmd =
  let run file kernel ws static stage pipeline =
    let _, m = load file in
    let kernel = pick_kernel m kernel in
    let tr = Ptx_to_ir.frontend m ~kernel in
    if stage = "scalar" then Fmt.pr "%a@." Pp.func tr.Ptx_to_ir.func
    else begin
      let plan =
        Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes
      in
      let mode = if static then Vectorize.Static_tie else Vectorize.Dynamic in
      let v = Vectorize.run ~mode ~plan tr.Ptx_to_ir.func ~ws in
      if stage = "vectorized" then Fmt.pr "%a@." Pp.func v.Vectorize.func
      else begin
        let pipeline = parse_pipeline_opt pipeline in
        let st = Passes.run ~pipeline v.Vectorize.func in
        Fmt.pr "%a@." Pp.func v.Vectorize.func;
        Fmt.epr "; optimized (%a, %d round%s): %s — %d instructions@."
          Passes.pp_pipeline pipeline st.Passes.rounds
          (if st.Passes.rounds = 1 then "" else "s")
          (String.concat ", "
             (List.map
                (fun (name, c) -> Fmt.str "%s %d" name c)
                st.Passes.per_pass))
          (Ir.size v.Vectorize.func)
      end
    end
  in
  let stage_arg =
    Arg.(
      value
      & opt (enum [ ("scalar", "scalar"); ("vectorized", "vectorized"); ("optimized", "optimized") ]) "optimized"
      & info [ "stage" ] ~doc:"Pipeline stage to dump: scalar, vectorized, optimized")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a kernel and dump the IR")
    Term.(
      const run $ file_arg $ kernel_arg $ ws_arg $ static_arg $ stage_arg
      $ pipeline_arg)

(* ---- argument specs for run/emulate ---- *)

(* Spec parsing lives in Api (shared with the daemon's submit-launch
   request); the CLI just turns an Error into an exit. *)
let parse_arg_spec (dev : Api.device) spec : Api.parsed_arg =
  match Api.arg_of_spec dev spec with
  | Ok a -> a
  | Error e -> Fmt.failwith "%s" e

let dump_result dev (args : Api.parsed_arg list) spec =
  (* spec: ty:argindex:count *)
  match String.split_on_char ':' spec with
  | [ ty; idx; count ] -> (
      let idx = int_of_string idx and count = int_of_string count in
      match (List.nth args idx).Api.addr with
      | None -> Fmt.failwith "argument %d is not a buffer" idx
      | Some a -> (
          match ty with
          | "f32" ->
              Fmt.pr "arg%d: %a@." idx
                Fmt.(list ~sep:sp float)
                (Api.read_f32s dev a count)
          | "i32" ->
              Fmt.pr "arg%d: %a@." idx Fmt.(list ~sep:sp int) (Api.read_i32s dev a count)
          | _ -> Fmt.failwith "dump type must be f32 or i32"))
  | _ -> Fmt.failwith "bad dump spec %S (want ty:arg:count)" spec

let grid_arg = Arg.(value & opt int 1 & info [ "grid" ] ~docv:"N" ~doc:"Grid size (x)")
let block_arg = Arg.(value & opt int 32 & info [ "block" ] ~docv:"N" ~doc:"CTA size (x)")

let args_arg =
  Arg.(value & opt_all string [] & info [ "a"; "arg" ] ~docv:"SPEC" ~doc:"Kernel argument spec")

let dump_arg =
  Arg.(value & opt_all string [] & info [ "dump" ] ~docv:"TY:ARG:N" ~doc:"Dump buffer after run")

(* ---- run ---- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let run_cmd =
  let run file kernel grid block arg_specs dumps static affine ws workers sched
      pipeline tiered hot_threshold cache_cap inject inject_seed watchdog
      quarantine_ttl recover checkpoint_every checkpoint_dir checkpoint_stop
      resume deadline_ms record replay trace profile metrics report =
    let src, m = load file in
    let kernel = pick_kernel m kernel in
    let dev = Api.create_device () in
    (* The flag set is flattened to the same string-keyed spec the
       daemon's load-module request uses; Api.config_of_spec is the one
       construction path, so CLI and server semantics cannot drift. *)
    let opt key f v = Option.map (fun x -> (key, f x)) v in
    let spec =
      List.filter_map Fun.id
        [
          Some ("static", string_of_bool static);
          Some ("affine", string_of_bool affine);
          Some ("ws", string_of_int ws);
          opt "workers" string_of_int workers;
          opt "sched" Fun.id sched;
          opt "pipeline" Fun.id pipeline;
          Some ("tiered", string_of_bool tiered);
          Some ("hot-threshold", string_of_int hot_threshold);
          opt "cache-cap" string_of_int cache_cap;
          (match inject with
          | [] -> None
          | specs -> Some ("inject", String.concat ";" specs));
          Some ("inject-seed", string_of_int inject_seed);
          opt "watchdog" string_of_int watchdog;
          Some ("quarantine-ttl", string_of_int quarantine_ttl);
          Some ("recover", string_of_bool recover);
          Some ("checkpoint-every", string_of_int checkpoint_every);
          Some ("checkpoint-dir", checkpoint_dir);
          opt "record" Fun.id record;
          opt "replay" Fun.id replay;
        ]
    in
    let config =
      match Api.config_of_spec spec with
      | Ok c -> c
      | Error e ->
          Fmt.epr "bad configuration: %s@." e;
          exit 1
    in
    let args = List.map (parse_arg_spec dev) arg_specs in
    (* --report is the full observatory: it force-enables the tracer
       (spans), line attribution and the divergence profile even when
       their individual flags are off *)
    let tracer =
      if Option.is_some trace || Option.is_some report then
        Some (Obs.Trace.create ())
      else None
    in
    let sink =
      match tracer with Some t -> Obs.Trace.sink t | None -> Obs.Sink.noop
    in
    let attr = Option.map (fun _ -> Obs.Attribution.create ()) report in
    let prof =
      if profile || Option.is_some report then Some (Obs.Divergence.create ())
      else None
    in
    let api_m = Api.load_module ~config ~sink dev src in
    (* flight recorder: a launch that dies on a structured error dumps
       the ring tail, the open span stack and the error itself before
       the error propagates *)
    let crash_dump (err : Vekt_error.t) =
      match (report, tracer) with
      | Some rpath, Some t ->
          let bundle =
            Vekt_runtime.Report.crash_bundle ~kernel ~error:err ~trace:t ()
          in
          if rpath = "-" then Fmt.pr "%s@." bundle
          else begin
            let path = rpath ^ ".crash.json" in
            write_file path bundle;
            Fmt.epr "crash bundle -> %s@." path
          end
      | _ -> ()
    in
    let r =
      try
        Api.launch ~sink ?profile:prof ?attr ?resume ?checkpoint_stop
          ?deadline_ms api_m ~kernel ~grid:(Launch.dim3 grid)
          ~block:(Launch.dim3 block)
          ~args:(List.map (fun a -> a.Api.launch_arg) args)
      with
      | Vekt_runtime.Checkpoint.Stop path ->
          Fmt.pr "checkpointed and stopped; resume with --resume %s@." path;
          exit 0
      | Vekt_error.Error err ->
          crash_dump err;
          raise (Vekt_error.Error err)
    in
    (match r.Api.recovered with
    | Some err ->
        Fmt.epr "recovered from fault via reference emulator: %a@."
          Vekt_error.pp err
    | None -> ());
    List.iter (dump_result dev args) dumps;
    let em, yld, body = Stats.cycle_breakdown r.Api.stats in
    Fmt.pr
      "%.0f cycles (%.3f ms), %.2f GFLOP/s, avg warp %.2f; cycles: EM %.0f%% yield %.0f%% kernel %.0f%%@."
      r.Api.cycles r.Api.time_ms r.Api.gflops r.Api.avg_warp_size (100. *. em)
      (100. *. yld) (100. *. body);
    (match (trace, tracer) with
    | Some path, Some t ->
        let contents =
          if has_suffix ~suffix:".txt" path then Obs.Trace.to_text t
          else Obs.Trace.to_chrome_json t
        in
        write_file path contents;
        Fmt.pr "trace: %d events (%d dropped) -> %s@." (Obs.Trace.recorded t)
          (Obs.Trace.dropped t) path
    | _ -> ());
    (match prof with
    | Some p when profile ->
        Obs.Divergence.report Fmt.stdout p;
        Fmt.pr
          "profile totals: %d warps, %d restores (stats: %d warps, %d restores)@."
          (Obs.Divergence.total_entries p)
          (Obs.Divergence.total_restores p)
          (Hashtbl.fold (fun _ c a -> a + c) r.Api.stats.Stats.warp_hist 0)
          r.Api.stats.Stats.counters.Vekt_vm.Interp.restores
    | _ -> ());
    (match (report, tracer) with
    | Some rpath, Some t ->
        let rep =
          Vekt_runtime.Report.build ~kernel ~src
            ~workers:(Option.value workers ~default:dev.Api.workers)
            ~trace:t
            ~attr:(Option.value attr ~default:(Obs.Attribution.create ()))
            ?profile:prof r
        in
        if rpath = "-" then Fmt.pr "%s" (Vekt_runtime.Report.render rep)
        else begin
          write_file rpath (Vekt_runtime.Report.to_json rep);
          Fmt.pr "report -> %s@." rpath
        end
    | _ -> ());
    match metrics with
    | Some path ->
        let reg = Api.metrics api_m ~kernel r in
        if path = "-" then Obs.Metrics.pp Fmt.stdout reg
        else begin
          let contents =
            if has_suffix ~suffix:".json" path then Obs.Metrics.to_json reg
            else Obs.Metrics.to_csv reg
          in
          write_file path contents;
          Fmt.pr "metrics: %d series -> %s@."
            (List.length (Obs.Metrics.names reg))
            path
        end
    | None -> ()
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record an event trace and write it to $(docv): Chrome \
             trace-event JSON (open in Perfetto), or plain text if $(docv) \
             ends in .txt")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print the per-entry-point divergence profile after the run")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export the metrics registry to $(docv): CSV by default, JSON if \
             $(docv) ends in .json, human-readable on stdout if $(docv) is -")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a post-launch report to $(docv) (JSON), or print the \
             human-readable form on stdout if $(docv) is -. Implies span \
             tracing, source-line cycle attribution and divergence \
             profiling. If the launch dies on a structured error, a crash \
             bundle is dumped to $(docv).crash.json instead.")
  in
  let sched_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sched" ] ~docv:"POLICY"
          ~doc:
            "Warp-formation policy: dynamic, static, or barrier \
             (barrier-aware). Default: dynamic formation, or static when \
             $(b,--static) vectorization is on (TIE code requires it).")
  in
  let tiered_arg =
    Arg.(
      value & flag
      & info [ "tiered" ]
          ~doc:
            "Tiered JIT: serve an unoptimized specialization immediately and \
             promote it through the full pass pipeline once hot (see \
             $(b,--hot-threshold)).")
  in
  let hot_threshold_arg =
    Arg.(
      value
      & opt int Vekt_runtime.Translation_cache.default_hot_threshold
      & info [ "hot-threshold" ] ~docv:"N"
          ~doc:"Cache queries of one specialization before tier promotion")
  in
  let inject_arg =
    Arg.(
      value & opt_all string []
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Inject a deterministic fault (repeatable):              $(b,compile-fail:ws=4,tier=1,kernel=K,p=0.5),              $(b,mem-trap:nth=100,kernel=K), or $(b,yield:every=8).              Implies $(b,--recover).")
  in
  let inject_seed_arg =
    Arg.(
      value & opt int Vekt_runtime.Fault.default_seed
      & info [ "inject-seed" ] ~docv:"N"
          ~doc:"Seed for probabilistic fault injection (deterministic)")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog" ] ~docv:"N"
          ~doc:
            "Arm the livelock watchdog: fail the launch when a thread is              re-dispatched at the same entry point with no progress $(docv)              times in a row")
  in
  let quarantine_ttl_arg =
    Arg.(
      value
      & opt int Vekt_runtime.Translation_cache.default_quarantine_ttl
      & info [ "quarantine-ttl" ] ~docv:"N"
          ~doc:
            "Successful launches a failed specialization width sits in              quarantine before being retried")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "On a recoverable fault (compile failure, trap, deadlock), roll              device memory back and re-run the launch on the reference              emulator")
  in
  let cache_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:
            "Bound the specialization table to $(docv) entries with LRU \
             eviction (default: unbounded)")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Execution-manager worker domains: the grid's CTAs are \
             statically partitioned over $(docv) parallel workers \
             (clamped to the CTA count; 1 = serial). Default: the \
             simulated device's core count. Results are bit-identical \
             to $(b,--workers 1).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Snapshot the in-flight launch every $(docv) scheduler \
             iterations (0 = off). Snapshots land in \
             $(b,--checkpoint-dir); the newest one is the resume \
             candidate for $(b,--resume) and for in-launch fault \
             recovery under $(b,--recover).")
  in
  let checkpoint_dir_arg =
    Arg.(
      value & opt string "vekt-ckpt"
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Directory snapshots are written to")
  in
  let checkpoint_stop_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-stop" ] ~docv:"K"
          ~doc:
            "Stop the launch (exit 0) right after its $(docv)th snapshot \
             is written — a forced preemption, to be continued later with \
             $(b,--resume)")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"SNAP"
          ~doc:
            "Resume an interrupted launch from snapshot file $(docv) \
             instead of starting from scratch (same kernel, grid, block \
             and $(b,--workers) as the snapshotted run)")
  in
  let deadline_ms_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the launch: past $(docv) milliseconds \
             the launch is killed at its next safe point with a structured \
             deadline error (a partial snapshot is kept when checkpointing \
             is on)")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"LOG"
          ~doc:
            "Record every warp-formation decision of the launch to \
             $(docv) for later $(b,--replay)")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"LOG"
          ~doc:
            "Re-execute the exact schedule recorded in $(docv), failing \
             with a structured error if execution diverges from it")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Launch a kernel on the simulated vector machine")
    Term.(
      const run $ file_arg $ kernel_arg $ grid_arg $ block_arg $ args_arg $ dump_arg
      $ static_arg $ affine_arg $ ws_arg $ workers_arg $ sched_arg $ pipeline_arg
      $ tiered_arg
      $ hot_threshold_arg $ cache_cap_arg $ inject_arg $ inject_seed_arg
      $ watchdog_arg $ quarantine_ttl_arg $ recover_arg $ checkpoint_every_arg
      $ checkpoint_dir_arg $ checkpoint_stop_arg $ resume_arg $ deadline_ms_arg
      $ record_arg $ replay_arg $ trace_arg $ profile_arg $ metrics_arg
      $ report_arg)

(* ---- emulate ---- *)

let emulate_cmd =
  let run file kernel grid block arg_specs dumps =
    let src, m = load file in
    ignore m;
    let kernel' = pick_kernel (Parser.parse_module src) kernel in
    let dev = Api.create_device () in
    let api_m = Api.load_module dev src in
    let args = List.map (parse_arg_spec dev) arg_specs in
    let g =
      Api.launch_reference api_m ~kernel:kernel' ~grid:(Launch.dim3 grid)
        ~block:(Launch.dim3 block)
        ~args:(List.map (fun a -> a.Api.launch_arg) args)
    in
    (* copy emulator results back so dumps read them *)
    Bytes.blit (Mem.bytes g) 0 (Mem.bytes dev.Api.global) 0 (Mem.size g);
    List.iter (dump_result dev args) dumps;
    Fmt.pr "emulated OK@."
  in
  Cmd.v
    (Cmd.info "emulate" ~doc:"Launch a kernel on the reference scalar emulator")
    Term.(const run $ file_arg $ kernel_arg $ grid_arg $ block_arg $ args_arg $ dump_arg)

(* ---- info ---- *)

let info_cmd =
  let run file kernel =
    let _, m = load file in
    let kernel = pick_kernel m kernel in
    let tr = Ptx_to_ir.frontend m ~kernel in
    let f = tr.Ptx_to_ir.func in
    let plan = Plan.compute f ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes in
    Fmt.pr "kernel %s@." kernel;
    Fmt.pr "  scalar IR: %d instructions in %d blocks@." (Ir.size f)
      (List.length (Ir.blocks f));
    Fmt.pr "  shared memory: %d bytes/CTA; local: %d bytes/thread (+%d spill)@."
      tr.Ptx_to_ir.shared_bytes tr.Ptx_to_ir.local_decl_bytes plan.Plan.spill_bytes;
    Fmt.pr "  entry points:@.";
    List.iter
      (fun (l, id) ->
        Fmt.pr "    %d: %s (restores %d values)@." id l
          (Vekt_analysis.Liveness.ISet.cardinal (Plan.entry_live plan l)))
      plan.Plan.entry_ids;
    Fmt.pr "  thread-invariant instructions: %.1f%% (%.1f%% under static warps)@."
      (100. *. Invariance.invariant_fraction f)
      (100.
      *. (let variants = Invariance.variant_regs ~static_warps:true f in
          let total = ref 0 and inv = ref 0 in
          List.iter
            (fun (b : Ir.block) ->
              List.iter
                (fun ({ Ir.i; _ } : Ir.li) ->
                  incr total;
                  if Invariance.instr_invariant ~static_warps:true variants i then incr inv)
                b.Ir.insts)
            (Ir.blocks f);
          if !total = 0 then 0.0 else float_of_int !inv /. float_of_int !total));
    Fmt.pr "  uniform branches: %d@." (List.length (Invariance.uniform_branches f))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Static facts about a kernel")
    Term.(const run $ file_arg $ kernel_arg)

(* ---- fuzz: differential kernel fuzzing (DESIGN.md §3.9) ---- *)

let fuzz_cmd =
  let run seed count budget_s repro_dir replay_file =
    match replay_file with
    | Some file ->
        (* replay one kernel (e.g. a corpus file) through the full matrix *)
        let src = read_file file in
        let spec = Vekt_fuzz.Gen.spec_of_src src in
        (match Vekt_fuzz.Runner.run_spec spec with
        | Vekt_fuzz.Runner.Clean n -> Fmt.pr "clean: %d configurations agree@." n
        | Vekt_fuzz.Runner.Rejected tag ->
            Fmt.pr "rejected: %s@." tag;
            exit 2
        | Vekt_fuzz.Runner.Diverged divs ->
            List.iter
              (fun d ->
                Fmt.pr "[%s] %s@." d.Vekt_fuzz.Runner.cfg d.Vekt_fuzz.Runner.what)
              divs;
            exit 1)
    | None ->
        let s =
          Vekt_fuzz.Runner.run_campaign ~log:(Fmt.pr "%s@.") ?budget_s ~seed
            ~count ()
        in
        Fmt.pr "%a" Vekt_fuzz.Runner.pp_summary s;
        (* write each shrunk reproducer next to the campaign *)
        if s.Vekt_fuzz.Runner.failures <> [] then begin
          (try Sys.mkdir repro_dir 0o755 with Sys_error _ -> ());
          List.iter
            (fun (f : Vekt_fuzz.Runner.failure) ->
              let path =
                Filename.concat repro_dir (Fmt.str "repro-seed-%d.ptx" f.seed)
              in
              let oc = open_out path in
              output_string oc f.repro.Vekt_fuzz.Gen.src;
              close_out oc;
              Fmt.pr "shrunk reproducer written to %s@." path)
            s.Vekt_fuzz.Runner.failures;
          exit 1
        end
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"First seed")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of kernels to generate")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; the campaign stops early when exceeded")
  in
  let repro_arg =
    Arg.(
      value & opt string "_fuzz"
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Where shrunk reproducers are written")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one PTX kernel (fuzz protocol, [// vekt-fuzz] header) \
             through the full configuration matrix instead of generating")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the compiler: generated well-typed kernels run \
          through the emulator oracle and every execution configuration; any \
          mismatch is shrunk to a minimal reproducer")
    Term.(
      const run $ seed_arg $ count_arg $ budget_arg $ repro_arg $ replay_arg)

(* ---- serve / submit / client: the persistent daemon ---- *)

module Server = Vekt_server.Server
module Jsonx = Vekt_server.Jsonx

let socket_arg =
  Arg.(
    value & opt string "vekt.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let serve_cmd =
  let run socket ckpt_dir quota weight global_mb high_watermark low_watermark
      session_ttl archive_cap read_deadline =
    let t =
      Server.create ~quota ~weight ~ckpt_dir
        ~global_bytes:(global_mb * 1024 * 1024) ~high_watermark ~low_watermark
        ?session_ttl_s:session_ttl ~archive_cap ()
    in
    (match Server.recovered t with
    | [] -> ()
    | rs ->
        List.iter
          (fun (r : Server.recovered) ->
            Fmt.pr "recovered job %d (%s, tenant %s) from previous instance@."
              r.Server.r_job r.Server.r_label r.Server.r_tenant)
          rs);
    Fmt.pr "vekt daemon listening on %s@." socket;
    Server.serve t ~read_deadline_s:read_deadline ~socket ();
    Fmt.pr "vekt daemon: clean shutdown@."
  in
  let ckpt_dir_arg =
    Arg.(
      value & opt string "vekt-serve-ckpt"
      & info [ "ckpt-dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint root: each preemptible job snapshots into its own \
             subdirectory, swept on completion and at clean shutdown. After \
             a crash, the next serve on the same root re-admits the jobs it \
             finds there and resumes them from their newest snapshots.")
  in
  let quota_arg =
    Arg.(
      value & opt int 16
      & info [ "quota" ] ~docv:"N"
          ~doc:"Default per-tenant limit on jobs in flight")
  in
  let weight_arg =
    Arg.(
      value & opt int 1
      & info [ "weight" ] ~docv:"N"
          ~doc:"Default tenant fairness weight (stride scheduling)")
  in
  let global_mb_arg =
    Arg.(
      value & opt int 64
      & info [ "global-mb" ] ~docv:"MB" ~doc:"Per-session global memory size")
  in
  let high_watermark_arg =
    Arg.(
      value & opt int 64
      & info [ "high-watermark" ] ~docv:"N"
          ~doc:
            "Backlog size that trips overload shedding: past $(docv) queued \
             jobs, new submits that don't beat the best queued priority are \
             rejected with a structured overloaded error and a \
             retry_after_ms hint")
  in
  let low_watermark_arg =
    Arg.(
      value & opt int 48
      & info [ "low-watermark" ] ~docv:"N"
          ~doc:
            "Backlog size at which shedding stops again (hysteresis; must \
             be below the high watermark)")
  in
  let session_ttl_arg =
    Arg.(
      value & opt (some float) None
      & info [ "session-ttl" ] ~docv:"SECONDS"
          ~doc:
            "Reap sessions idle longer than $(docv) whose jobs have all \
             finished: their arenas are freed and their tallies archived, \
             exactly as on close-session. Default: never reap.")
  in
  let archive_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "archive-cap" ] ~docv:"N"
          ~doc:
            "Keep archived tallies for at most $(docv) tenants, evicting \
             the least recently closed")
  in
  let read_deadline_arg =
    Arg.(
      value & opt float 10.0
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Drop a connection that sits on an incomplete request line (or \
             stalls reading a response) longer than $(docv)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent multi-tenant vekt daemon: sessions over a \
          Unix-domain socket share one engine, so hot kernels compiled for \
          one tenant are cache hits for the next")
    Term.(
      const run $ socket_arg $ ckpt_dir_arg $ quota_arg $ weight_arg
      $ global_mb_arg $ high_watermark_arg $ low_watermark_arg
      $ session_ttl_arg $ archive_cap_arg $ read_deadline_arg)

(* A tiny synchronous client: one request line out, one response line
   back. *)
let connect socket =
  try Unix.open_connection (Unix.ADDR_UNIX socket)
  with Unix.Unix_error (e, _, _) ->
    Fmt.epr "cannot connect to %s: %s (is `vektc serve` running?)@." socket
      (Unix.error_message e);
    exit 1

let request (ic, oc) (j : Jsonx.t) : Jsonx.t =
  output_string oc (Jsonx.to_string j);
  output_char oc '\n';
  flush oc;
  let line = try input_line ic with End_of_file ->
    Fmt.epr "daemon closed the connection@.";
    exit 1
  in
  match Jsonx.of_string line with
  | Ok r -> r
  | Error e ->
      Fmt.epr "malformed response: %s@." e;
      exit 1

(* Unwrap a response, exiting with the daemon's structured error. *)
let expect_ok what (r : Jsonx.t) : Jsonx.t =
  if Jsonx.bool_mem "ok" r = Some true then r
  else begin
    let kind =
      Option.value ~default:"?"
        (Option.bind (Jsonx.mem "error" r) (Jsonx.str_mem "kind"))
    in
    let message =
      Option.value ~default:(Jsonx.to_string r)
        (Option.bind (Jsonx.mem "error" r) (Jsonx.str_mem "message"))
    in
    Fmt.epr "%s: %s error: %s@." what kind message;
    exit 1
  end

(* Capped exponential backoff with full jitter for shed submits: the
   daemon's overloaded error carries a retry_after_ms hint computed
   from its live backlog; we honor it (floored by our own doubling
   backoff, capped at 10 s), and jitter the sleep so a burst of shed
   clients doesn't reconverge in lockstep.  Safe to retry because the
   request carries an idempotency key: if the daemon actually admitted
   an earlier attempt, the retry is answered from its dedup cache
   instead of double-launching. *)
let submit_with_backoff ~req ~max_retries fields : Jsonx.t =
  let rec go attempt backoff_ms =
    let r = req "submit-launch" fields in
    let kind =
      Option.bind (Jsonx.mem "error" r) (Jsonx.str_mem "kind")
    in
    if
      Jsonx.bool_mem "ok" r <> Some true
      && kind = Some "overloaded"
      && attempt < max_retries
    then begin
      let hint =
        Option.value ~default:backoff_ms
          (Option.bind (Jsonx.mem "error" r) (Jsonx.int_mem "retry_after_ms"))
      in
      let wait = min 10_000 (max hint backoff_ms) in
      let wait = (wait / 2) + Random.int (max 1 ((wait / 2) + 1)) in
      Fmt.epr "daemon overloaded; retry %d/%d in %d ms@." (attempt + 1)
        max_retries wait;
      Unix.sleepf (float_of_int wait /. 1000.0);
      go (attempt + 1) (min 10_000 (backoff_ms * 2))
    end
    else expect_ok "submit-launch" r
  in
  go 0 100

let submit_cmd =
  let run file kernel grid block arg_specs dumps socket tenant priority label
      config_pairs poll_ms deadline_ms max_retries idem_key =
    Random.self_init ();
    let src, m = load file in
    let kernel = pick_kernel m kernel in
    let conn = connect socket in
    let req cmd fields = request conn (Jsonx.Obj (("cmd", Jsonx.Str cmd) :: fields)) in
    let r = expect_ok "open-session" (req "open-session" [ ("tenant", Jsonx.Str tenant) ]) in
    let session = Option.get (Jsonx.int_mem "session" r) in
    let sfield = ("session", Jsonx.Int session) in
    let config =
      Jsonx.Obj
        (List.map
           (fun kv ->
             match String.index_opt kv '=' with
             | Some i ->
                 ( String.sub kv 0 i,
                   Jsonx.Str (String.sub kv (i + 1) (String.length kv - i - 1))
                 )
             | None -> (kv, Jsonx.Str "true"))
           config_pairs)
    in
    let r =
      expect_ok "load-module"
        (req "load-module" [ sfield; ("src", Jsonx.Str src); ("config", config) ])
    in
    let modul = Option.get (Jsonx.int_mem "module" r) in
    let idem_key =
      match idem_key with
      | Some k -> k
      | None ->
          (* fresh per invocation: retries of *this* submit dedup, a
             re-run of the command is a new launch *)
          Fmt.str "vektc-%d-%.0f" (Unix.getpid ())
            (Unix.gettimeofday () *. 1e6)
    in
    let r =
      submit_with_backoff ~req ~max_retries
        ([
           sfield;
           ("module", Jsonx.Int modul);
           ("kernel", Jsonx.Str kernel);
           ("grid", Jsonx.Int grid);
           ("block", Jsonx.Int block);
           ("args", Jsonx.List (List.map (fun s -> Jsonx.Str s) arg_specs));
           ("priority", Jsonx.Int priority);
           ("label", Jsonx.Str (Option.value label ~default:kernel));
           ("idempotency-key", Jsonx.Str idem_key);
         ]
        @
        match deadline_ms with
        | None -> []
        | Some ms -> [ ("deadline-ms", Jsonx.Int ms) ])
    in
    let job = Option.get (Jsonx.int_mem "job" r) in
    let arg_addrs = Option.value (Jsonx.list_mem "args" r) ~default:[] in
    Fmt.pr "job %d submitted (tenant %s)@." job tenant;
    let rec poll () =
      let r = expect_ok "poll" (req "poll" [ ("job", Jsonx.Int job) ]) in
      match Option.get (Jsonx.str_mem "state" r) with
      | "done" -> r
      | "failed" | "cancelled" ->
          Fmt.epr "job %d: %s@." job (Jsonx.to_string r);
          exit 1
      | _ ->
          Unix.sleepf (float_of_int poll_ms /. 1000.0);
          poll ()
    in
    let r = poll () in
    (match Jsonx.mem "result" r with
    | Some res ->
        let f k = Option.value ~default:0.0 (match Jsonx.mem k res with
          | Some (Jsonx.Float x) -> Some x
          | Some (Jsonx.Int n) -> Some (float_of_int n)
          | _ -> None)
        in
        Fmt.pr "%.0f cycles (%.3f ms), %.2f GFLOP/s, avg warp %.2f@."
          (f "cycles") (f "time_ms") (f "gflops") (f "avg_warp_size")
    | None -> ());
    (match (Jsonx.int_mem "preemptions" r, Jsonx.mem "wait_us" r) with
    | Some p, Some (Jsonx.Float w) when p > 0 ->
        Fmt.pr "preempted %d time(s); queue wait %.1f ms@." p (w /. 1000.)
    | _ -> ());
    (* dumps read buffers back through the protocol, by submit-time addr *)
    List.iter
      (fun spec ->
        match String.split_on_char ':' spec with
        | [ ty; idx; count ] -> (
            let idx = int_of_string idx in
            match List.nth_opt arg_addrs idx with
            | Some (Jsonx.Int addr) ->
                let r =
                  expect_ok "read"
                    (req "read"
                       [
                         sfield;
                         ("addr", Jsonx.Int addr);
                         ("ty", Jsonx.Str ty);
                         ("count", Jsonx.Int (int_of_string count));
                       ])
                in
                let vals = Option.value (Jsonx.list_mem "values" r) ~default:[] in
                Fmt.pr "arg%d:%a@." idx
                  (fun ppf ->
                    List.iter (function
                      | Jsonx.Int n -> Fmt.pf ppf " %d" n
                      | Jsonx.Float x -> Fmt.pf ppf " %g" x
                      | _ -> ()))
                  vals
            | _ -> Fmt.failwith "argument %d is not a buffer" idx)
        | _ -> Fmt.failwith "bad dump spec %S (want ty:arg:count)" spec)
      dumps;
    ignore (expect_ok "close-session" (req "close-session" [ sfield ]))
  in
  let tenant_arg =
    Arg.(
      value & opt string "default"
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant to submit as")
  in
  let priority_arg =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"N"
          ~doc:
            "Job priority: strictly higher priorities run first and preempt \
             a running lower-priority launch at its next safe point")
  in
  let label_arg =
    Arg.(
      value & opt (some string) None
      & info [ "label" ] ~docv:"NAME" ~doc:"Job label (default: kernel name)")
  in
  let config_arg =
    Arg.(
      value & opt_all string []
      & info [ "c"; "config" ] ~docv:"KEY=VALUE"
          ~doc:
            "Module configuration knob (repeatable), same keys as the \
             load-module protocol request: tiered=true, hot-threshold=2, \
             ws=4, sched=barrier, ...")
  in
  let poll_ms_arg =
    Arg.(
      value & opt int 20
      & info [ "poll-ms" ] ~docv:"MS" ~doc:"Completion polling interval")
  in
  let deadline_ms_arg =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Whole-job wall-clock budget (queue wait + run): a job past it \
             is failed with a structured deadline error — expired unrun if \
             still queued, killed at its next safe point if running")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 5
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Retries when the daemon sheds the submit as overloaded \
             (capped exponential backoff with jitter, honoring the \
             daemon's retry_after_ms hint)")
  in
  let idem_key_arg =
    Arg.(
      value & opt (some string) None
      & info [ "idempotency-key" ] ~docv:"KEY"
          ~doc:
            "Idempotency key sent with the submit so retries never \
             double-launch (default: generated fresh per invocation)")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a kernel launch to a running vekt daemon and wait for the \
          result")
    Term.(
      const run $ file_arg $ kernel_arg $ grid_arg $ block_arg $ args_arg
      $ dump_arg $ socket_arg $ tenant_arg $ priority_arg $ label_arg
      $ config_arg $ poll_ms_arg $ deadline_ms_arg $ max_retries_arg
      $ idem_key_arg)

let client_cmd =
  let run socket exprs =
    let ((ic, oc) as conn) = connect socket in
    let send line =
      if String.trim line <> "" then
        match Jsonx.of_string line with
        | Error e -> Fmt.epr "request not sent, parse error: %s@." e
        | Ok j -> Fmt.pr "%s@." (Jsonx.to_string (request conn j))
    in
    (match exprs with
    | [] -> ( try
        while true do
          send (input_line stdin)
        done
      with End_of_file -> ())
    | es -> List.iter send es);
    close_out_noerr oc;
    close_in_noerr ic
  in
  let expr_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "expr" ] ~docv:"JSON"
          ~doc:
            "Request to send (repeatable); without it, requests are read \
             line by line from stdin")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Speak raw protocol JSON to a running vekt daemon (one request per \
          line)")
    Term.(const run $ socket_arg $ expr_arg)

(* ---- chaos: crash-point enumeration over the daemon ---- *)

let chaos_cmd =
  let module H = Vekt_chaos_harness.Harness in
  let module Injector = Vekt_chaos.Injector in
  let run seed budget state_dir repro_dir legacy_io stop_on_first replay_file =
    let dir =
      match state_dir with
      | Some d -> d
      | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Fmt.str "vekt-chaos-%d" (Unix.getpid ()))
    in
    match replay_file with
    | Some file -> (
        match H.parse_repro (read_file file) with
        | Error msg ->
            Fmt.epr "bad repro file: %s@." msg;
            exit 2
        | Ok r -> (
            Fmt.pr "replaying crash @%d (%s) over %d steps, seed %d%s@."
              r.H.r_boundary
              (Injector.flavor_name r.H.r_flavor)
              (List.length r.H.r_steps) r.H.r_seed
              (if r.H.r_durable then "" else " [legacy fsync-less I/O]");
            match H.replay ~dir r with
            | [] -> Fmt.pr "no violation: the schedule no longer fails@."
            | violations ->
                List.iter (Fmt.pr "violation: %s@.") violations;
                exit 1))
    | None ->
        if legacy_io then Vekt_chaos.Io.durability := false;
        let c =
          H.run_campaign ~seed ~budget ~stop_on_first ~log:(Fmt.pr "%s@.") ~dir
            ~steps:Vekt_chaos_harness.Script.default ()
        in
        Fmt.pr "chaos: %d boundaries, %d drills, %d failing crash points@."
          c.H.c_boundaries c.H.c_drills
          (List.length c.H.c_failures);
        if c.H.c_failures <> [] then begin
          (try Sys.mkdir repro_dir 0o755 with Sys_error _ -> ());
          List.iter
            (fun (f : H.failure) ->
              let steps, f' =
                H.minimize ~seed ~dir f Vekt_chaos_harness.Script.default
              in
              let path =
                Filename.concat repro_dir
                  (Fmt.str "chaos-%d-%s.json" f.H.f_boundary
                     (Injector.flavor_name f.H.f_flavor))
              in
              H.write_repro ~path ~seed ~durable:(not legacy_io) f' steps;
              Fmt.pr "minimized repro (%d steps) written to %s@."
                (List.length steps) path)
            c.H.c_failures;
          exit 1
        end
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5eed
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the injector's worst-case rollback choices")
  in
  let budget_arg =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Cap on crash points drilled (evenly thinned across the \
             timeline); 0 drills every one")
  in
  let state_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:"Server state directory to torture (default: a temp dir)")
  in
  let repro_arg =
    Arg.(
      value & opt string "_chaos"
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Where minimized repro schedules are written")
  in
  let legacy_arg =
    Arg.(
      value & flag
      & info [ "legacy-io" ]
          ~doc:
            "Run with the pre-chaos fsync-less tmp+rename protocol — \
             demonstrates the lost-rename durability bugs the full protocol \
             fixes")
  in
  let stop_arg =
    Arg.(
      value & flag
      & info [ "stop-on-first" ] ~doc:"Stop at the first failing crash point")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one minimized repro schedule instead of enumerating")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash-test the daemon: enumerate every I/O boundary a scripted \
          multi-tenant workload reaches, simulate a process death at each \
          (torn writes, lost renames, bit-flipped tails included), restart \
          on the surviving state and verify no acknowledged job is lost, \
          duplicated or corrupted; failing schedules are minimized to \
          replayable repro files")
    Term.(
      const run $ seed_arg $ budget_arg $ state_arg $ repro_arg $ legacy_arg
      $ stop_arg $ replay_arg)

let () =
  let doc = "dynamic compilation of data-parallel kernels for vector processors" in
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group (Cmd.info "vektc" ~version:"1.0.0" ~doc)
            [
              check_cmd; compile_cmd; run_cmd; emulate_cmd; info_cmd;
              fuzz_cmd; serve_cmd; submit_cmd; client_cmd; chaos_cmd;
            ]))
  with
  | Failure e | Invalid_argument e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Vekt_ptx.Emulator.Trap e | Vekt_vm.Interp.Trap e ->
      Fmt.epr "runtime trap: %s@." e;
      exit 1
  | Vekt_ptx.Mem.Fault a ->
      Fmt.epr "memory fault: %a@." Vekt_error.pp_access a;
      exit 1
  | Vekt_error.Error e ->
      Fmt.epr "error: %a@." Vekt_error.pp e;
      exit 1
