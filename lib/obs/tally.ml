(** Per-session event tallies: a {!Sink.t} that counts JIT and
    checkpoint events into a {!Metrics.t} registry.

    In a shared engine the translation cache's own counters
    ({!Vekt_runtime.Translation_cache.metrics_into}) aggregate over
    every session that touches the cache — useful for the engine-wide
    view, useless for billing a specific tenant.  The events flowing
    through a launch's sink, however, are intrinsically attributable:
    they are emitted by *this* launch.  Teeing a tally sink onto each
    session's sink therefore gives exact per-tenant [jit.*] /
    [fallback.*] / [ckpt.*] counters while the one-shot CLI keeps its
    existing unlabeled registry untouched.

    Scrape-side, several sessions of one tenant are folded together
    with {!Metrics.merge_into}. *)

(** A sink that increments counters in [reg] for every countable event.
    Span and scheduling events (warp formation, yields, subkernel
    calls) are deliberately not tallied — they are high-frequency and
    already summarized by {!Vekt_runtime.Stats}. *)
let sink (reg : Metrics.t) : Sink.t =
  let hits = Metrics.counter reg "jit.cache_hits" in
  let misses = Metrics.counter reg "jit.cache_misses" in
  let compiles = Metrics.counter reg "jit.compiles" in
  let compile_us = Metrics.gauge reg "jit.compile_us" in
  let fallbacks = Metrics.counter reg "fallback.steps" in
  let quarantined = Metrics.counter reg "fallback.quarantined" in
  let ckpt_writes = Metrics.counter reg "ckpt.writes" in
  let ckpt_resumes = Metrics.counter reg "ckpt.resumes" in
  Sink.fn (function
    | Event.Cache_hit _ -> Metrics.incr hits
    | Event.Cache_miss _ -> Metrics.incr misses
    | Event.Compile_end e ->
        Metrics.incr compiles;
        Metrics.set compile_us (!compile_us +. e.wall_us)
    | Event.Compile_fallback _ -> Metrics.incr fallbacks
    | Event.Quarantine { action = Event.Q_added; _ } -> Metrics.incr quarantined
    | Event.Ckpt_write _ -> Metrics.incr ckpt_writes
    | Event.Ckpt_resume _ -> Metrics.incr ckpt_resumes
    | Event.Server_health e ->
        (* daemon health decisions are per-tenant billing events too:
           [server.shed], [server.deadline_kill], … registered lazily
           because most sessions never suffer any of them *)
        Metrics.incr
          (Metrics.counter reg ("server." ^ Event.server_action_name e.action))
    | _ -> ())
