(** Hierarchical span trees, rebuilt from the flat event stream.

    Instrumented code emits flat {!Event.Span_begin}/{!Event.Span_end}
    pairs through the ordinary {!Sink} plumbing (so spans ride the same
    ring buffer, worker-private buffers and worker-order replay as every
    other event, which keeps them domain-safe and deterministic).  This
    module folds a recorded event list back into a tree:

    - spans nest {e per worker}: a worker's [Span_begin] opens a child
      of that worker's innermost open span;
    - compile intervals are synthesized from the existing
      {!Event.Compile_begin}/{!Event.Compile_end} pairs, and subkernel
      executions from {!Event.Subkernel_call} (a complete [ts]+[dur]
      interval), so those subsystems need no duplicate span emission;
    - when exactly one [launch] span is present, the other workers'
      top-level spans are re-parented under it, giving one tree per
      launch.

    The fold also reports balance violations (ends without matching
    begins) and the stack of spans still open at the end of the stream —
    which is precisely the "where was everyone?" information the crash
    bundle wants when a launch dies mid-flight. *)

type t = {
  kind : Event.span_kind;
  name : string;
  worker : int;
  t0 : float;  (** modelled cycles at begin *)
  mutable t1 : float;  (** modelled cycles at end *)
  wall0 : float;  (** monotonic µs at begin *)
  mutable wall1 : float;  (** monotonic µs at end *)
  mutable children : t list;  (** in emission order *)
}

type forest = {
  roots : t list;  (** completed top-level spans, in completion order *)
  open_spans : t list;
      (** innermost first, all workers — non-empty means the stream
          ended (or the launch died) with spans still open *)
  unmatched_ends : int;  (** [Span_end]s with no open matching begin *)
}

let cycles (s : t) = Float.max 0.0 (s.t1 -. s.t0)
let wall_us (s : t) = Float.max 0.0 (s.wall1 -. s.wall0)

(** Is the begin/end structure balanced?  True iff nothing was left open
    and every end matched a begin. *)
let balanced (f : forest) = f.open_spans = [] && f.unmatched_ends = 0

let rec span_count (s : t) =
  1 + List.fold_left (fun acc c -> acc + span_count c) 0 s.children

let total_spans (f : forest) =
  List.fold_left (fun acc r -> acc + span_count r) 0 f.roots

(** Rebuild the span forest from an event list (oldest first, e.g.
    {!Trace.events}). *)
let of_events (evts : Event.t list) : forest =
  let stacks : (int, t list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack w =
    match Hashtbl.find_opt stacks w with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks w s;
        s
  in
  let roots = ref [] (* reversed *) in
  let unmatched = ref 0 in
  let attach ~worker span =
    match !(stack worker) with
    | parent :: _ -> parent.children <- parent.children @ [ span ]
    | [] -> roots := span :: !roots
  in
  let open_span ~kind ~name ~worker ~ts ~wall =
    let s =
      { kind; name; worker; t0 = ts; t1 = ts; wall0 = wall; wall1 = wall;
        children = [] }
    in
    let st = stack worker in
    st := s :: !st
  in
  let close_span ~kind ~name ~worker ~ts ~wall =
    let st = stack worker in
    match !st with
    | top :: rest when top.kind = kind && top.name = name ->
        top.t1 <- ts;
        top.wall1 <- wall;
        st := rest;
        attach ~worker top
    | _ -> incr unmatched
  in
  let leaf ~kind ~name ~worker ~t0 ~t1 ~wall =
    attach ~worker
      { kind; name; worker; t0; t1; wall0 = wall; wall1 = wall; children = [] }
  in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Span_begin v ->
          open_span ~kind:v.kind ~name:v.name ~worker:v.worker ~ts:v.ts
            ~wall:v.wall_us
      | Event.Span_end v ->
          close_span ~kind:v.kind ~name:v.name ~worker:v.worker ~ts:v.ts
            ~wall:v.wall_us
      | Event.Compile_begin v ->
          open_span ~kind:Event.Sk_compile
            ~name:(Printf.sprintf "compile %s.w%d.t%d" v.kernel v.ws v.tier)
            ~worker:v.worker ~ts:v.ts ~wall:0.0
      | Event.Compile_end v ->
          (* compile has no modelled cost (off the measured path); the
             span's wall width is the measured build time *)
          let name = Printf.sprintf "compile %s.w%d.t%d" v.kernel v.ws v.tier in
          let st = stack v.worker in
          (match !st with
          | top :: rest when top.kind = Event.Sk_compile && top.name = name ->
              top.t1 <- v.ts;
              top.wall1 <- top.wall0 +. v.wall_us;
              st := rest;
              attach ~worker:v.worker top
          | _ -> incr unmatched)
      | Event.Subkernel_call v ->
          leaf ~kind:Event.Sk_subkernel
            ~name:(Printf.sprintf "subkernel %s@%d.w%d" v.kernel v.entry_id v.ws)
            ~worker:v.worker ~t0:v.ts ~t1:(v.ts +. v.dur) ~wall:0.0
      | _ -> ())
    evts;
  let open_spans =
    Hashtbl.fold (fun _ st acc -> !st @ acc) stacks []
    |> List.sort (fun a b -> compare (a.worker, a.t0) (b.worker, b.t0))
  in
  let roots = List.rev !roots in
  (* one launch span present: adopt the other top-level spans (e.g. CTA
     spans of workers > 0, whose stacks never saw the root) under it *)
  let roots =
    match List.partition (fun s -> s.kind = Event.Sk_launch) roots with
    | [ launch ], others when others <> [] ->
        launch.children <- launch.children @ others;
        [ launch ]
    | _ -> roots
  in
  { roots; open_spans; unmatched_ends = !unmatched }

(* ---- exports ---- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b x =
  if Float.is_nan x then Buffer.add_string b "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.3f" x)

let rec add_span_json b (s : t) =
  Buffer.add_string b "{\"kind\":\"";
  json_escape b (Event.span_kind_name s.kind);
  Buffer.add_string b "\",\"name\":\"";
  json_escape b s.name;
  Buffer.add_string b (Printf.sprintf "\",\"worker\":%d,\"cycles\":" s.worker);
  add_num b (cycles s);
  Buffer.add_string b ",\"wall_us\":";
  add_num b (wall_us s);
  Buffer.add_string b ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      add_span_json b c)
    s.children;
  Buffer.add_string b "]}"

(** The whole forest as a JSON tree (plus balance diagnostics). *)
let to_json (f : forest) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"balanced\":";
  Buffer.add_string b (if balanced f then "true" else "false");
  Buffer.add_string b
    (Printf.sprintf ",\"unmatched_ends\":%d,\"open\":[" f.unmatched_ends);
  List.iteri
    (fun i (s : t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"kind\":\"";
      json_escape b (Event.span_kind_name s.kind);
      Buffer.add_string b "\",\"name\":\"";
      json_escape b s.name;
      Buffer.add_string b (Printf.sprintf "\",\"worker\":%d}" s.worker))
    f.open_spans;
  Buffer.add_string b "],\"spans\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      add_span_json b r)
    f.roots;
  Buffer.add_string b "]}";
  Buffer.contents b

(** Indented plain-text rendering of the tree. *)
let pp ppf (f : forest) =
  let rec go indent (s : t) =
    Fmt.pf ppf "%s%-12s %-32s w%d  %10.1f cyc  %10.1f µs@." indent
      (Event.span_kind_name s.kind)
      s.name s.worker (cycles s) (wall_us s);
    List.iter (go (indent ^ "  ")) s.children
  in
  List.iter (go "") f.roots;
  if f.open_spans <> [] then begin
    Fmt.pf ppf "open at end of stream:@.";
    List.iter
      (fun (s : t) ->
        Fmt.pf ppf "  %s %s (w%d)@." (Event.span_kind_name s.kind) s.name
          s.worker)
      f.open_spans
  end

(** Flatten: every span in the forest, preorder. *)
let flatten (f : forest) : t list =
  let rec go acc s = List.fold_left go (s :: acc) s.children in
  List.rev (List.fold_left go [] f.roots)
