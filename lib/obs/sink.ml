(** Event sink: where instrumented code sends {!Event.t}s.

    [Noop] is the default everywhere, and instrumented call sites are
    written as

    {[ if Sink.enabled sink then Sink.emit sink (Event.Warp_formed { ... }) ]}

    so that with no sink attached no event is even constructed — the
    hot path pays one branch and allocates nothing. *)

type t = Noop | Fn of (Event.t -> unit)

let noop = Noop
let fn f = Fn f
let enabled = function Noop -> false | Fn _ -> true
let emit t e = match t with Noop -> () | Fn f -> f e

(** Fan out to two sinks (e.g. a trace ring plus a live counter). *)
let tee a b =
  match (a, b) with
  | Noop, s | s, Noop -> s
  | Fn f, Fn g -> Fn (fun e -> f e; g e)
