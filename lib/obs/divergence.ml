(** Divergence profiles: per-entry-point warp/restore/spill histograms
    plus per-block execution hotness.

    Entry points are the yield targets the divergence plan assigns ids
    to ({!Vekt_transform.Plan.entry_ids}); entry 0 is the kernel start,
    every other id is a reconvergence point reached after a divergent
    yield.  The execution manager records one {!record_entry} per
    subkernel call with the restore/spill deltas of that call, so the
    profile decomposes Figure 7 (warp sizes) and Figure 8 (restores)
    *per entry point* instead of per launch; the interpreter bumps
    {!touch_block} per executed block, which ranks the hot divergent
    branches.

    The profiler is allocation-free per warp after the first call for a
    given entry id (one [entry_prof] record per entry point, reused). *)

type entry_prof = {
  mutable entries : int;  (** subkernel calls made at this entry point *)
  mutable threads : int;  (** lanes across those calls *)
  mutable restores : int;
  mutable spills : int;
  warp_hist : (int, int) Hashtbl.t;  (** warp size → calls *)
}

type t = {
  by_entry : (int, entry_prof) Hashtbl.t;
  hotness : (string, int) Hashtbl.t;  (** block label → executions *)
  mutable entry_names : (string * int) list;  (** (block label, entry id) *)
}

let create () =
  { by_entry = Hashtbl.create 8; hotness = Hashtbl.create 32; entry_names = [] }

(** Attach the kernel's (label, id) entry-point table (from the plan) so
    reports print labels instead of bare ids. *)
let set_entry_names t names = t.entry_names <- names

let entry_name t id =
  match List.find_opt (fun (_, i) -> i = id) t.entry_names with
  | Some (l, _) -> l
  | None -> Fmt.str "entry#%d" id

let prof t entry_id =
  match Hashtbl.find_opt t.by_entry entry_id with
  | Some p -> p
  | None ->
      let p =
        { entries = 0; threads = 0; restores = 0; spills = 0; warp_hist = Hashtbl.create 4 }
      in
      Hashtbl.replace t.by_entry entry_id p;
      p

let record_entry t ~entry_id ~ws ~restores ~spills =
  let p = prof t entry_id in
  p.entries <- p.entries + 1;
  p.threads <- p.threads + ws;
  p.restores <- p.restores + restores;
  p.spills <- p.spills + spills;
  Hashtbl.replace p.warp_hist ws
    (Option.value (Hashtbl.find_opt p.warp_hist ws) ~default:0 + 1)

let touch_block t label =
  Hashtbl.replace t.hotness label
    (Option.value (Hashtbl.find_opt t.hotness label) ~default:0 + 1)

(* ---- aggregate views (used by reports and reconciliation tests) ---- *)

let entry_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.by_entry [] |> List.sort compare

let total_entries t = Hashtbl.fold (fun _ p a -> a + p.entries) t.by_entry 0
let total_threads t = Hashtbl.fold (fun _ p a -> a + p.threads) t.by_entry 0
let total_restores t = Hashtbl.fold (fun _ p a -> a + p.restores) t.by_entry 0
let total_spills t = Hashtbl.fold (fun _ p a -> a + p.spills) t.by_entry 0

(** Warp-size histogram summed over all entry points (must reconcile
    with {!Vekt_runtime.Stats.t.warp_hist}). *)
let warp_hist t =
  let acc = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ p ->
      Hashtbl.iter
        (fun ws c ->
          Hashtbl.replace acc ws (Option.value (Hashtbl.find_opt acc ws) ~default:0 + c))
        p.warp_hist)
    t.by_entry;
  Hashtbl.fold (fun ws c l -> (ws, c) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let avg_ws (p : entry_prof) =
  if p.entries = 0 then 0.0 else float_of_int p.threads /. float_of_int p.entries

let restores_per_thread (p : entry_prof) =
  if p.threads = 0 then 0.0 else float_of_int p.restores /. float_of_int p.threads

let merge ~into t =
  Hashtbl.iter
    (fun id (p : entry_prof) ->
      let q = prof into id in
      Hashtbl.iter
        (fun ws c ->
          Hashtbl.replace q.warp_hist ws
            (Option.value (Hashtbl.find_opt q.warp_hist ws) ~default:0 + c))
        p.warp_hist;
      q.entries <- q.entries + p.entries;
      q.threads <- q.threads + p.threads;
      q.restores <- q.restores + p.restores;
      q.spills <- q.spills + p.spills)
    t.by_entry;
  Hashtbl.iter
    (fun l c ->
      Hashtbl.replace into.hotness l
        (Option.value (Hashtbl.find_opt into.hotness l) ~default:0 + c))
    t.hotness;
  if into.entry_names = [] then into.entry_names <- t.entry_names

(** Per-entry-point divergence table plus the top divergent branches
    (re-entry points ranked by warps formed below full width) and the
    hottest interpreted blocks. *)
let report ?(top = 8) ppf t =
  let ids = entry_ids t in
  Fmt.pf ppf "per-entry-point divergence profile (%d entry points)@."
    (List.length ids);
  Fmt.pf ppf "  %3s %-16s %8s %8s %7s %9s %9s %7s@." "id" "entry" "warps"
    "threads" "avg-ws" "restores" "rest/thr" "spills";
  List.iter
    (fun id ->
      let p = Hashtbl.find t.by_entry id in
      Fmt.pf ppf "  %3d %-16s %8d %8d %7.2f %9d %9.2f %7d@." id
        (entry_name t id) p.entries p.threads (avg_ws p) p.restores
        (restores_per_thread p) p.spills)
    ids;
  let max_ws =
    List.fold_left (fun acc (ws, _) -> max acc ws) 1 (warp_hist t)
  in
  let divergent =
    List.filter_map
      (fun id ->
        if id = 0 then None
        else
          let p = Hashtbl.find t.by_entry id in
          let narrow =
            Hashtbl.fold
              (fun ws c acc -> if ws < max_ws then acc + c else acc)
              p.warp_hist 0
          in
          if p.entries = 0 then None else Some (id, p, narrow))
      ids
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  (match divergent with
  | [] -> Fmt.pf ppf "no divergent re-entries (fully convergent launch)@."
  | ds ->
      Fmt.pf ppf "top divergent branches (re-entries below full width %d):@."
        max_ws;
      List.iteri
        (fun i (id, p, narrow) ->
          if i < top then
            Fmt.pf ppf "  %-16s %6d re-entries, %6d narrow, avg width %.2f, %d restores@."
              (entry_name t id) p.entries narrow (avg_ws p) p.restores)
        ds);
  let hot =
    Hashtbl.fold (fun l c acc -> (l, c) :: acc) t.hotness []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if hot <> [] then begin
    Fmt.pf ppf "hottest blocks:@.";
    List.iteri
      (fun i (l, c) -> if i < top then Fmt.pf ppf "  %-24s %10d@." l c)
      hot
  end

(** Snapshot the profile into a metrics registry under [prefix]. *)
let to_metrics ?(prefix = "divergence") t (m : Metrics.t) =
  Metrics.incr ~by:(total_entries t) (Metrics.counter m (prefix ^ ".warps"));
  Metrics.incr ~by:(total_threads t) (Metrics.counter m (prefix ^ ".threads"));
  Metrics.incr ~by:(total_restores t) (Metrics.counter m (prefix ^ ".restores"));
  Metrics.incr ~by:(total_spills t) (Metrics.counter m (prefix ^ ".spills"));
  List.iter
    (fun id ->
      let p = Hashtbl.find t.by_entry id in
      let h = Metrics.histogram m (Fmt.str "%s.entry%d.warp_size" prefix id) in
      Hashtbl.iter (fun ws c -> Metrics.observe_n h ~bin:ws c) p.warp_hist)
    (entry_ids t)
