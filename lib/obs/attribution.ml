(** Source-line cycle attribution.

    Buckets modelled execution cost per PTX source line, keyed by the
    entry point the warp was dispatched at.  Costs arrive as {e integer}
    sub-cycle units (the timing model fixes the scale; see
    [Vekt_vm.Timing.attr_scale]): every dynamic block execution charges a
    precomputed per-line share array whose elements sum exactly to the
    block's total units.  Because everything is integer addition, the
    conservation invariant

    {[ sum over (entry, line) buckets = total_units ]}

    holds bit-exactly under any accumulation order — including merging
    per-worker attributions from a multi-domain run — which a test
    asserts against the interpreter's own cycle counters.

    Line 0 is the "runtime overhead" bucket: block terminators and
    instructions synthesized by the compiler with no source provenance
    (scheduler dispatch, entry/exit handlers, spill and resume glue). *)

type t = {
  mutable total_units : int;
  by_entry : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (** entry_id -> (source line -> accumulated units) *)
}

let create () = { total_units = 0; by_entry = Hashtbl.create 8 }

let entry_tbl t entry_id =
  match Hashtbl.find_opt t.by_entry entry_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.replace t.by_entry entry_id tbl;
      tbl

(** Charge one dynamic execution of a block: [shares] is the per-line
    split, [units] its exact sum (both precomputed by the timing model). *)
let charge t ~entry_id ((shares, units) : (int * int) array * int) =
  t.total_units <- t.total_units + units;
  let tbl = entry_tbl t entry_id in
  Array.iter
    (fun (line, u) ->
      Hashtbl.replace tbl line (Option.value (Hashtbl.find_opt tbl line) ~default:0 + u))
    shares

(** Fold [d] into [into].  Pure integer sums, so merge order cannot
    change any bucket or the total. *)
let merge ~(into : t) (d : t) =
  into.total_units <- into.total_units + d.total_units;
  Hashtbl.iter
    (fun entry_id tbl ->
      let dst = entry_tbl into entry_id in
      Hashtbl.iter
        (fun line u ->
          Hashtbl.replace dst line
            (Option.value (Hashtbl.find_opt dst line) ~default:0 + u))
        tbl)
    d.by_entry

(** The conservation invariant: buckets sum exactly to the total. *)
let bucket_sum t =
  Hashtbl.fold
    (fun _ tbl acc -> Hashtbl.fold (fun _ u acc -> acc + u) tbl acc)
    t.by_entry 0

let conserved t = bucket_sum t = t.total_units

(** Per-line totals collapsed across entry points, sorted by line. *)
let by_line t : (int * int) list =
  let tbl = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ et ->
      Hashtbl.iter
        (fun line u ->
          Hashtbl.replace tbl line
            (Option.value (Hashtbl.find_opt tbl line) ~default:0 + u))
        et)
    t.by_entry;
  Hashtbl.fold (fun l u acc -> (l, u) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** The [n] costliest source lines (line 0 overhead included), heaviest
    first; ties broken by line number for determinism. *)
let hottest ?(n = 10) t : (int * int) list =
  by_line t
  |> List.sort (fun (la, ua) (lb, ub) ->
         if ua <> ub then compare ub ua else compare la lb)
  |> List.filteri (fun i _ -> i < n)

let entries t =
  Hashtbl.fold (fun e _ acc -> e :: acc) t.by_entry [] |> List.sort compare

(** JSON export.  [scale] is units per modelled cycle (the timing model's
    [attr_scale]); cycles are reported as floats alongside exact units. *)
let to_json ~scale t : string =
  let buf = Buffer.create 1024 in
  let cyc u = float_of_int u /. float_of_int scale in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"total_units\":%d,\"units_per_cycle\":%d,\"total_cycles\":%.6f,\"conserved\":%b,\"entries\":["
       t.total_units scale (cyc t.total_units) (conserved t));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      let tbl = Hashtbl.find t.by_entry e in
      let lines =
        Hashtbl.fold (fun l u acc -> (l, u) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Buffer.add_string buf (Printf.sprintf "{\"entry\":%d,\"lines\":[" e);
      List.iteri
        (fun j (l, u) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"line\":%d,\"units\":%d,\"cycles\":%.6f}" l u (cyc u)))
        lines;
      Buffer.add_string buf "]}")
    (entries t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
