(** Metrics registry: named counters, gauges and histograms with JSON
    and CSV exporters.

    A registry is the export-side companion of the raw mutable stats
    records kept on the hot paths ({!Vekt_vm.Interp.counters},
    {!Vekt_runtime.Stats}): those stay plain records for speed, and are
    snapshotted into a registry by name when a machine-readable dump is
    requested ([vektc run --metrics], bench artifacts).  Registration
    order is preserved so exports are stable and diffable.

    Histograms are integer-binned (bin value → occurrence count), which
    matches every distribution the paper reports: warp sizes, restores
    per entry, specialization widths. *)

type hist = {
  mutable count : int;
  mutable sum : float;
  bins : (int, int) Hashtbl.t;
}

type value = Counter of int ref | Gauge of float ref | Hist of hist

type t = {
  tbl : (string, value) Hashtbl.t;
  mutable rev_order : string list;
}

let create () = { tbl = Hashtbl.create 32; rev_order = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let find_or_register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace t.tbl name v;
      t.rev_order <- name :: t.rev_order;
      v

let wrong_kind name v want =
  invalid_arg (Fmt.str "Metrics: %s is a %s, not a %s" name (kind_name v) want)

(** Get or create the counter [name]. *)
let counter t name : int ref =
  match find_or_register t name (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | v -> wrong_kind name v "counter"

(** Get or create the gauge [name]. *)
let gauge t name : float ref =
  match find_or_register t name (fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r
  | v -> wrong_kind name v "gauge"

(** Get or create the histogram [name]. *)
let histogram t name : hist =
  match
    find_or_register t name (fun () ->
        Hist { count = 0; sum = 0.0; bins = Hashtbl.create 8 })
  with
  | Hist h -> h
  | v -> wrong_kind name v "histogram"

let incr ?(by = 1) (c : int ref) = c := !c + by
let set (g : float ref) v = g := v

(** Record [n] observations of [bin]. *)
let observe_n (h : hist) ~bin n =
  h.count <- h.count + n;
  h.sum <- h.sum +. (float_of_int bin *. float_of_int n);
  Hashtbl.replace h.bins bin
    (Option.value (Hashtbl.find_opt h.bins bin) ~default:0 + n)

let observe h bin = observe_n h ~bin 1

let hist_mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let hist_bins h =
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.bins []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Exact quantile over the integer-binned histogram: the smallest bin
    value [v] such that at least [ceil (q * count)] observations are
    [<= v].  Exact because bins hold every observation (no bucketing
    error); [0] on an empty histogram.  [q] is clamped to [0;1]. *)
let quantile (h : hist) q =
  if h.count = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let need =
      max 1 (min h.count (int_of_float (Float.ceil (q *. float_of_int h.count))))
    in
    let rec go acc = function
      | [] -> 0 (* unreachable: cumulative count reaches h.count *)
      | (bin, c) :: rest ->
          let acc = acc + c in
          if acc >= need then bin else go acc rest
    in
    go 0 (hist_bins h)
  end

(** The standard latency percentiles (p50, p95, p99). *)
let percentiles h = (quantile h 0.50, quantile h 0.95, quantile h 0.99)

(** Registered names in registration order. *)
let names t = List.rev t.rev_order

let find t name = Hashtbl.find_opt t.tbl name

(** Read the counter [name] without creating it: [0] when absent.
    Scrape paths (the daemon's health report, tests asserting on
    tallies) use this so probing never mutates the registry it probes.
    Raises [Invalid_argument] if [name] exists but is not a counter. *)
let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> !c
  | Some v -> wrong_kind name v "counter"
  | None -> 0

(** Merge [src] into [into], optionally namespacing every metric under
    [prefix] (e.g. ["tenant.alice."]).  Counters add, gauges take the
    source value (last merge wins), histograms merge bin-wise — so
    scraping a shared engine can fold several per-session registries
    into one view without losing attribution.  Kind mismatches between
    [src] and an existing metric raise [Invalid_argument], same as the
    typed accessors. *)
let merge_into ~into ?(prefix = "") (src : t) =
  List.iter
    (fun name ->
      let dst_name = prefix ^ name in
      match Hashtbl.find src.tbl name with
      | Counter c -> incr ~by:!c (counter into dst_name)
      | Gauge g -> set (gauge into dst_name) !g
      | Hist h ->
          let dh = histogram into dst_name in
          List.iter (fun (bin, n) -> observe_n dh ~bin n) (hist_bins h))
    (names src)

(* ---- exporters ---- *)

let add_float b x =
  if Float.is_nan x then Buffer.add_string b "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.6g" x)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(** [{"name": {"type": ..., ...}, ...}] in registration order. *)
let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b name;
      Buffer.add_string b "\":";
      match Hashtbl.find t.tbl name with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" !c)
      | Gauge g ->
          Buffer.add_string b "{\"type\":\"gauge\",\"value\":";
          add_float b !g;
          Buffer.add_char b '}'
      | Hist h ->
          let p50, p95, p99 = percentiles h in
          Buffer.add_string b
            (Printf.sprintf "{\"type\":\"histogram\",\"count\":%d,\"sum\":" h.count);
          add_float b h.sum;
          Buffer.add_string b
            (Printf.sprintf ",\"p50\":%d,\"p95\":%d,\"p99\":%d" p50 p95 p99);
          Buffer.add_string b ",\"bins\":{";
          List.iteri
            (fun j (bin, c) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b (Printf.sprintf "\"%d\":%d" bin c))
            (hist_bins h);
          Buffer.add_string b "}}")
    (names t);
  Buffer.add_char b '}';
  Buffer.contents b

(** [name,kind,key,value] rows; histograms expand to one [bin:N] row per
    bin plus [count] and [sum] rows. *)
let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "name,kind,key,value\n";
  let esc s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  List.iter
    (fun key ->
      let name = esc key in
      match Hashtbl.find t.tbl key with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%s,counter,,%d\n" name !c)
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "%s,gauge,," name);
          add_float b !g;
          Buffer.add_char b '\n'
      | Hist h ->
          let p50, p95, p99 = percentiles h in
          Buffer.add_string b (Printf.sprintf "%s,histogram,count,%d\n" name h.count);
          Buffer.add_string b (Printf.sprintf "%s,histogram,sum," name);
          add_float b h.sum;
          Buffer.add_char b '\n';
          Buffer.add_string b (Printf.sprintf "%s,histogram,p50,%d\n" name p50);
          Buffer.add_string b (Printf.sprintf "%s,histogram,p95,%d\n" name p95);
          Buffer.add_string b (Printf.sprintf "%s,histogram,p99,%d\n" name p99);
          List.iter
            (fun (bin, c) ->
              Buffer.add_string b (Printf.sprintf "%s,histogram,bin:%d,%d\n" name bin c))
            (hist_bins h))
    (names t);
  Buffer.contents b

(** Human-readable dump (the [--metrics -] form). *)
let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> Fmt.pf ppf "%-32s %d@." name !c
      | Gauge g -> Fmt.pf ppf "%-32s %g@." name !g
      | Hist h ->
          let p50, p95, p99 = percentiles h in
          Fmt.pf ppf "%-32s count=%d mean=%.2f p50=%d p95=%d p99=%d %a@." name
            h.count (hist_mean h) p50 p95 p99
            Fmt.(list ~sep:sp (pair ~sep:(any ":") int int))
            (hist_bins h))
    (names t)
