(** Low-overhead event tracer: a preallocated ring buffer of typed events.

    Recording is O(1) with no allocation beyond the event itself; when
    the ring is full the oldest events are overwritten (and counted as
    dropped, which the exporters report).  Export formats:

    - {!to_chrome_json}: Chrome trace-event JSON (the ["traceEvents"]
      array form), loadable in Perfetto / [chrome://tracing].  Modelled
      cycles are written as microsecond timestamps (1 cycle = 1 µs of
      trace time); each worker is a [tid], so parallel execution
      managers render as parallel tracks.
    - {!to_text}: one event per line, for grepping and diffing. *)

type t = {
  buf : Event.t array;
  mutable next : int;  (** next write slot *)
  mutable total : int;  (** events ever recorded (>= capacity ⇒ drops) *)
}

let dummy = Event.Barrier_release { ts = 0.0; worker = 0; released = 0 }

let create ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { buf = Array.make capacity dummy; next = 0; total = 0 }

let capacity t = Array.length t.buf
let recorded t = t.total
let dropped t = max 0 (t.total - capacity t)

let record t e =
  t.buf.(t.next) <- e;
  t.next <- (t.next + 1) mod capacity t;
  t.total <- t.total + 1

(** The tracer as a {!Sink.t}, for plugging into the runtime hooks. *)
let sink t = Sink.fn (record t)

(** Retained events, oldest first. *)
let events t =
  let cap = capacity t in
  let n = min t.total cap in
  List.init n (fun i -> t.buf.(((t.next - n + i) mod cap + cap) mod cap))

(* ---- Chrome trace-event export ---- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

type jarg = S of string | I of int | F of float

let add_num b x =
  (* JSON has no NaN/inf literals; clamp defensively. *)
  if Float.is_nan x then Buffer.add_string b "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.3f" x)

let add_record b ~name ~cat ~ph ~ts ?dur ~pid ~tid (args : (string * jarg) list) =
  Buffer.add_string b "{\"name\":\"";
  json_escape b name;
  Buffer.add_string b "\",\"cat\":\"";
  json_escape b cat;
  Buffer.add_string b (Printf.sprintf "\",\"ph\":\"%s\",\"ts\":" ph);
  add_num b ts;
  (match dur with
  | Some d ->
      Buffer.add_string b ",\"dur\":";
      add_num b d
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
  if args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        json_escape b k;
        Buffer.add_string b "\":";
        match v with
        | S s ->
            Buffer.add_char b '"';
            json_escape b s;
            Buffer.add_char b '"'
        | I n -> Buffer.add_string b (string_of_int n)
        | F x -> add_num b x)
      args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

(* Execution-manager events live in pid 0; JIT events in pid 1 so
   Perfetto shows compilation as its own process track. *)
let em_pid = 0
let jit_pid = 1

(* JIT-side span kinds render on the translation track; everything else
   (launch, parse, typecheck, CTA execution) on the execution manager's. *)
let span_pid = function
  | Event.Sk_pass | Event.Sk_cache_lookup | Event.Sk_compile -> jit_pid
  | Event.Sk_launch | Event.Sk_parse | Event.Sk_typecheck | Event.Sk_cta
  | Event.Sk_subkernel | Event.Sk_queue ->
      em_pid

(* The (pid, tid) track an event renders on — must mirror the pid/tid
   choices of [add_chrome_event] so thread-name metadata covers exactly
   the tracks that appear. *)
let track_of_event (e : Event.t) =
  match e with
  | Event.Warp_formed _ | Event.Subkernel_call _ | Event.Yield _
  | Event.Barrier_release _ | Event.Ckpt_write _ | Event.Ckpt_resume _
  | Event.Replay_begin _ | Event.Server_health _ ->
      (em_pid, Event.worker e)
  | Event.Compile_begin _ | Event.Compile_end _ | Event.Cache_hit _
  | Event.Cache_miss _ | Event.Compile_fallback _ | Event.Quarantine _ ->
      (jit_pid, Event.worker e)
  | Event.Span_begin v -> (span_pid v.kind, v.worker)
  | Event.Span_end v -> (span_pid v.kind, v.worker)

let add_chrome_event b (e : Event.t) =
  match e with
  | Event.Warp_formed v ->
      add_record b ~name:"warp_formed" ~cat:"em" ~ph:"i" ~ts:v.ts ~pid:em_pid
        ~tid:v.worker
        [ ("entry", I v.entry_id); ("size", I v.size); ("scanned", I v.scanned) ]
  | Event.Subkernel_call v ->
      add_record b ~name:"subkernel" ~cat:"em" ~ph:"X" ~ts:v.ts ~dur:v.dur
        ~pid:em_pid ~tid:v.worker
        [ ("kernel", S v.kernel); ("entry", I v.entry_id); ("ws", I v.ws) ]
  | Event.Yield v ->
      add_record b ~name:"yield" ~cat:"em" ~ph:"i" ~ts:v.ts ~pid:em_pid
        ~tid:v.worker
        [
          ("entry", I v.entry_id);
          ("kind", S (Event.yield_kind_name v.kind));
          ("lanes", I v.lanes);
        ]
  | Event.Barrier_release v ->
      add_record b ~name:"barrier_release" ~cat:"em" ~ph:"i" ~ts:v.ts ~pid:em_pid
        ~tid:v.worker
        [ ("released", I v.released) ]
  | Event.Compile_begin v ->
      add_record b ~name:"compile" ~cat:"jit" ~ph:"B" ~ts:v.ts ~pid:jit_pid
        ~tid:v.worker
        [ ("kernel", S v.kernel); ("ws", I v.ws); ("tier", I v.tier) ]
  | Event.Compile_end v ->
      add_record b ~name:"compile" ~cat:"jit" ~ph:"E" ~ts:v.ts ~pid:jit_pid
        ~tid:v.worker
        [
          ("kernel", S v.kernel);
          ("ws", I v.ws);
          ("tier", I v.tier);
          ("wall_us", F v.wall_us);
          ("static_instrs", I v.static_instrs);
        ]
  | Event.Cache_hit v ->
      add_record b ~name:"cache_hit" ~cat:"jit" ~ph:"i" ~ts:v.ts ~pid:jit_pid
        ~tid:v.worker
        [ ("kernel", S v.kernel); ("ws", I v.ws) ]
  | Event.Cache_miss v ->
      add_record b ~name:"cache_miss" ~cat:"jit" ~ph:"i" ~ts:v.ts ~pid:jit_pid
        ~tid:v.worker
        [ ("kernel", S v.kernel); ("ws", I v.ws) ]
  | Event.Compile_fallback v ->
      add_record b ~name:"compile_fallback" ~cat:"jit" ~ph:"i" ~ts:v.ts
        ~pid:jit_pid ~tid:v.worker
        [
          ("kernel", S v.kernel);
          ("from_ws", I v.from_ws);
          ("to_ws", I v.to_ws);
          ("reason", S v.reason);
        ]
  | Event.Quarantine v ->
      add_record b ~name:"quarantine" ~cat:"jit" ~ph:"i" ~ts:v.ts ~pid:jit_pid
        ~tid:v.worker
        [
          ("kernel", S v.kernel);
          ("ws", I v.ws);
          ("action", S (Event.quarantine_action_name v.action));
        ]
  | Event.Ckpt_write v ->
      add_record b ~name:"ckpt_write" ~cat:"em" ~ph:"i" ~ts:v.ts ~pid:em_pid
        ~tid:v.worker
        [ ("seq", I v.seq); ("bytes", I v.bytes) ]
  | Event.Ckpt_resume v ->
      add_record b ~name:"ckpt_resume" ~cat:"em" ~ph:"i" ~ts:v.ts ~pid:em_pid
        ~tid:v.worker
        [ ("seq", I v.seq); ("path", S v.path) ]
  | Event.Replay_begin v ->
      add_record b ~name:"replay_begin" ~cat:"em" ~ph:"i" ~ts:v.ts ~pid:em_pid
        ~tid:v.worker
        [ ("decisions", I v.decisions); ("path", S v.path) ]
  | Event.Span_begin v ->
      add_record b ~name:v.name
        ~cat:("span." ^ Event.span_kind_name v.kind)
        ~ph:"B" ~ts:v.ts ~pid:(span_pid v.kind) ~tid:v.worker
        [ ("wall_us", F v.wall_us) ]
  | Event.Span_end v ->
      add_record b ~name:v.name
        ~cat:("span." ^ Event.span_kind_name v.kind)
        ~ph:"E" ~ts:v.ts ~pid:(span_pid v.kind) ~tid:v.worker
        [ ("wall_us", F v.wall_us) ]
  | Event.Server_health v ->
      add_record b ~name:"server_health" ~cat:"server" ~ph:"i" ~ts:v.ts
        ~pid:em_pid ~tid:v.worker
        [
          ("action", S (Event.server_action_name v.action));
          ("tenant", S v.tenant);
          ("detail", S v.detail);
        ]

(* One thread_name + thread_sort_index metadata pair per (pid, tid)
   track that actually carries events, so Perfetto labels every worker
   lane and orders them by worker index instead of first-event time. *)
let add_thread_metadata b (evts : Event.t list) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let track = track_of_event e in
      Hashtbl.replace seen track ())
    evts;
  let tracks = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
  List.iter
    (fun (pid, tid) ->
      let label = if pid = jit_pid then "jit worker" else "worker" in
      Buffer.add_char b ',';
      add_record b ~name:"thread_name" ~cat:"__metadata" ~ph:"M" ~ts:0.0 ~pid
        ~tid
        [ ("name", S (Printf.sprintf "%s %d" label tid)) ];
      Buffer.add_char b ',';
      add_record b ~name:"thread_sort_index" ~cat:"__metadata" ~ph:"M" ~ts:0.0
        ~pid ~tid
        [ ("sort_index", I tid) ])
    (List.sort compare tracks)

(* Timestamps are microseconds (the trace-event format's native [ts]
   unit) under the convention 1 modelled cycle = 1 µs of trace time;
   [displayTimeUnit] selects the viewer's default zoom and only accepts
   "ms" or "ns" — "ms" matches µs-scale data ("ns" here was a bug that
   made viewers zoom 1000x too deep). *)
let to_chrome_json t =
  let b = Buffer.create 4096 in
  let evts = events t in
  Buffer.add_string b "{\"traceEvents\":[";
  add_record b ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:0.0 ~pid:em_pid
    ~tid:0
    [ ("name", S "execution manager") ];
  Buffer.add_char b ',';
  add_record b ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:0.0
    ~pid:jit_pid ~tid:0
    [ ("name", S "dynamic translation") ];
  add_thread_metadata b evts;
  List.iter
    (fun e ->
      Buffer.add_char b ',';
      add_chrome_event b e)
    evts;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Buffer.add_string b
    (Printf.sprintf
       "\"recorded\":%d,\"dropped\":%d,\"timeUnit\":\"us\",\"cycle_us\":1"
       (recorded t) (dropped t));
  Buffer.add_string b "}}";
  Buffer.contents b

let to_text t =
  let b = Buffer.create 4096 in
  if dropped t > 0 then
    Buffer.add_string b
      (Printf.sprintf "# ring full: %d oldest events dropped\n" (dropped t));
  List.iter (fun e -> Buffer.add_string b (Fmt.str "%a\n" Event.pp e)) (events t);
  Buffer.contents b
