(** Typed observability events emitted by the instrumented runtime.

    One constructor per interesting transition in the JIT + execution
    manager: warp formation, subkernel dispatch, yields back to the
    manager, barrier releases, JIT compilations and translation-cache
    queries.  Timestamps ([ts]) are *modelled* cycles — the same clock
    the paper's Figure 9 attribution uses — taken per worker as
    [em_cycles + total interpreter cycles] at emission time, so each
    worker's timeline is monotone.  JIT compilation has no modelled
    cost (the paper translates off the measured path), so compile
    events carry measured wall microseconds instead; see DESIGN.md. *)

type yield_kind = Yield_exit | Yield_barrier | Yield_branch

let yield_kind_name = function
  | Yield_exit -> "exit"
  | Yield_barrier -> "barrier"
  | Yield_branch -> "branch"

type quarantine_action = Q_added | Q_skipped | Q_expired

let quarantine_action_name = function
  | Q_added -> "added"
  | Q_skipped -> "skipped"
  | Q_expired -> "expired"

(** Daemon health transitions (the crash-only machinery of DESIGN.md
    §3.8).  Each one is a policy decision the server made about a
    tenant's work, emitted through the session's sink so the tally layer
    attributes it to the tenant that suffered (or caused) it. *)
type server_action =
  | Sv_shed  (** submit rejected: admission queue above its high watermark *)
  | Sv_deadline_kill  (** running launch killed at a safe point past its deadline *)
  | Sv_expired  (** queued job's deadline lapsed before it was ever admitted *)
  | Sv_reaped  (** idle session closed server-side after its TTL *)
  | Sv_recovered  (** in-flight launch re-enqueued after a daemon restart *)

let server_action_name = function
  | Sv_shed -> "shed"
  | Sv_deadline_kill -> "deadline_kill"
  | Sv_expired -> "expired"
  | Sv_reaped -> "reaped"
  | Sv_recovered -> "recovered"

(** Phases of a launch that carry hierarchical {!Span_begin}/{!Span_end}
    pairs.  Spans nest per worker ({!Vekt_obs.Span} rebuilds the tree);
    compile and subkernel intervals are not re-emitted as spans — the
    span builder synthesizes them from the dedicated events above. *)
type span_kind =
  | Sk_launch  (** one whole kernel launch (root) *)
  | Sk_parse  (** PTX parse at module load *)
  | Sk_typecheck  (** module typecheck at load *)
  | Sk_pass  (** one optimization pass execution within a compile *)
  | Sk_cache_lookup  (** translation-cache query incl. fallback chain *)
  | Sk_compile  (** one specialization build (synthesized from compile events) *)
  | Sk_cta  (** one CTA executed by a worker *)
  | Sk_subkernel  (** one specialization call (synthesized from Subkernel_call) *)
  | Sk_queue  (** time a submitted job waited in the daemon's admission queue *)

let span_kind_name = function
  | Sk_launch -> "launch"
  | Sk_parse -> "parse"
  | Sk_typecheck -> "typecheck"
  | Sk_pass -> "pass"
  | Sk_cache_lookup -> "cache_lookup"
  | Sk_compile -> "compile"
  | Sk_cta -> "cta"
  | Sk_subkernel -> "subkernel"
  | Sk_queue -> "queue"

type t =
  | Warp_formed of {
      ts : float;
      worker : int;
      entry_id : int;
      size : int;  (** lanes packed into the warp (after width trimming) *)
      scanned : int;  (** candidate contexts examined to form it *)
    }
  | Subkernel_call of {
      ts : float;
      dur : float;  (** modelled cycles spent inside the specialization *)
      worker : int;
      kernel : string;
      entry_id : int;
      ws : int;
    }
  | Yield of {
      ts : float;
      worker : int;
      entry_id : int;  (** entry point the warp was called at *)
      kind : yield_kind;
      lanes : int;
    }
  | Barrier_release of { ts : float; worker : int; released : int }
  | Compile_begin of {
      ts : float;
      worker : int;
      kernel : string;
      ws : int;
      tier : int;  (** 0 = immediate unoptimized build, 1 = full pipeline *)
    }
  | Compile_end of {
      ts : float;
      worker : int;
      kernel : string;
      ws : int;
      tier : int;  (** 0 = immediate unoptimized build, 1 = full pipeline *)
      wall_us : float;  (** measured compilation wall time, microseconds *)
      static_instrs : int;
    }
  | Cache_hit of { ts : float; worker : int; kernel : string; ws : int }
  | Cache_miss of { ts : float; worker : int; kernel : string; ws : int }
  | Compile_fallback of {
      ts : float;
      worker : int;
      kernel : string;
      from_ws : int;  (** width whose build failed *)
      to_ws : int;  (** narrower width tried next; 0 = emulator oracle *)
      reason : string;
    }
  | Quarantine of {
      ts : float;
      worker : int;
      kernel : string;
      ws : int;
      action : quarantine_action;
    }
  | Ckpt_write of {
      ts : float;
      worker : int;  (** worker whose in-flight CTA the snapshot captured *)
      seq : int;  (** monotone snapshot sequence number within the launch *)
      bytes : int;  (** serialized snapshot size on disk *)
    }
  | Ckpt_resume of {
      ts : float;
      worker : int;
      seq : int;  (** sequence number of the snapshot resumed from *)
      path : string;
    }
  | Replay_begin of {
      ts : float;
      worker : int;
      path : string;  (** schedule log driving this launch *)
      decisions : int;  (** recorded warp-formation decisions to re-execute *)
    }
  | Span_begin of {
      ts : float;  (** modelled cycles on the worker's clock (0 off-path) *)
      wall_us : float;  (** monotonic {!Vekt_runtime.Clock} reading *)
      worker : int;
      kind : span_kind;
      name : string;
    }
  | Span_end of {
      ts : float;
      wall_us : float;
      worker : int;
      kind : span_kind;
      name : string;  (** must match the open {!Span_begin} of this worker *)
    }
  | Server_health of {
      ts : float;  (** wall µs — daemon decisions are off the modelled clock *)
      worker : int;  (** always 0: the server loop, not a pool worker *)
      action : server_action;
      tenant : string;
      detail : string;  (** job or session id, free-form context *)
    }

let ts = function
  | Warp_formed e -> e.ts
  | Subkernel_call e -> e.ts
  | Yield e -> e.ts
  | Barrier_release e -> e.ts
  | Compile_begin e -> e.ts
  | Compile_end e -> e.ts
  | Cache_hit e -> e.ts
  | Cache_miss e -> e.ts
  | Compile_fallback e -> e.ts
  | Quarantine e -> e.ts
  | Ckpt_write e -> e.ts
  | Ckpt_resume e -> e.ts
  | Replay_begin e -> e.ts
  | Span_begin e -> e.ts
  | Span_end e -> e.ts
  | Server_health e -> e.ts

let worker = function
  | Warp_formed e -> e.worker
  | Subkernel_call e -> e.worker
  | Yield e -> e.worker
  | Barrier_release e -> e.worker
  | Compile_begin e -> e.worker
  | Compile_end e -> e.worker
  | Cache_hit e -> e.worker
  | Cache_miss e -> e.worker
  | Compile_fallback e -> e.worker
  | Quarantine e -> e.worker
  | Ckpt_write e -> e.worker
  | Ckpt_resume e -> e.worker
  | Replay_begin e -> e.worker
  | Span_begin e -> e.worker
  | Span_end e -> e.worker
  | Server_health e -> e.worker

let name = function
  | Warp_formed _ -> "warp_formed"
  | Subkernel_call _ -> "subkernel_call"
  | Yield _ -> "yield"
  | Barrier_release _ -> "barrier_release"
  | Compile_begin _ -> "compile_begin"
  | Compile_end _ -> "compile_end"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Compile_fallback _ -> "compile_fallback"
  | Quarantine _ -> "quarantine"
  | Ckpt_write _ -> "ckpt_write"
  | Ckpt_resume _ -> "ckpt_resume"
  | Replay_begin _ -> "replay_begin"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Server_health _ -> "server_health"

(** One-line plain-text rendering (the [--trace out.txt] format). *)
let pp ppf e =
  let p fmt = Fmt.pf ppf fmt in
  match e with
  | Warp_formed e ->
      p "%12.1f w%d warp_formed entry=%d size=%d scanned=%d" e.ts e.worker
        e.entry_id e.size e.scanned
  | Subkernel_call e ->
      p "%12.1f w%d subkernel_call kernel=%s entry=%d ws=%d dur=%.1f" e.ts
        e.worker e.kernel e.entry_id e.ws e.dur
  | Yield e ->
      p "%12.1f w%d yield entry=%d kind=%s lanes=%d" e.ts e.worker e.entry_id
        (yield_kind_name e.kind) e.lanes
  | Barrier_release e ->
      p "%12.1f w%d barrier_release released=%d" e.ts e.worker e.released
  | Compile_begin e ->
      p "%12.1f w%d compile_begin kernel=%s ws=%d tier=%d" e.ts e.worker
        e.kernel e.ws e.tier
  | Compile_end e ->
      p "%12.1f w%d compile_end kernel=%s ws=%d tier=%d wall_us=%.1f instrs=%d"
        e.ts e.worker e.kernel e.ws e.tier e.wall_us e.static_instrs
  | Cache_hit e -> p "%12.1f w%d cache_hit kernel=%s ws=%d" e.ts e.worker e.kernel e.ws
  | Cache_miss e ->
      p "%12.1f w%d cache_miss kernel=%s ws=%d" e.ts e.worker e.kernel e.ws
  | Compile_fallback e ->
      p "%12.1f w%d compile_fallback kernel=%s from_ws=%d to_ws=%d reason=%s"
        e.ts e.worker e.kernel e.from_ws e.to_ws e.reason
  | Quarantine e ->
      p "%12.1f w%d quarantine kernel=%s ws=%d action=%s" e.ts e.worker
        e.kernel e.ws
        (quarantine_action_name e.action)
  | Ckpt_write e ->
      p "%12.1f w%d ckpt_write seq=%d bytes=%d" e.ts e.worker e.seq e.bytes
  | Ckpt_resume e ->
      p "%12.1f w%d ckpt_resume seq=%d path=%s" e.ts e.worker e.seq e.path
  | Replay_begin e ->
      p "%12.1f w%d replay_begin decisions=%d path=%s" e.ts e.worker
        e.decisions e.path
  | Span_begin e ->
      p "%12.1f w%d span_begin kind=%s name=%s wall_us=%.1f" e.ts e.worker
        (span_kind_name e.kind) e.name e.wall_us
  | Span_end e ->
      p "%12.1f w%d span_end kind=%s name=%s wall_us=%.1f" e.ts e.worker
        (span_kind_name e.kind) e.name e.wall_us
  | Server_health e ->
      p "%12.1f w%d server_health action=%s tenant=%s detail=%s" e.ts e.worker
        (server_action_name e.action) e.tenant e.detail
