(** Kernel launch configuration and parameter-block construction. *)

type dim3 = { x : int; y : int; z : int }

let dim3 ?(y = 1) ?(z = 1) x = { x; y; z }
let count d = d.x * d.y * d.z
let pp_dim3 fmt d = Fmt.pf fmt "(%d,%d,%d)" d.x d.y d.z

(** Linear index of a coordinate within its dimensions (x fastest). *)
let linear ~dims { x; y; z } = x + (dims.x * (y + (dims.y * z)))

let unlinear ~dims i =
  let x = i mod dims.x in
  let y = i / dims.x mod dims.y in
  let z = i / (dims.x * dims.y) in
  { x; y; z }

type config = { grid : dim3; block : dim3 }

(** Host-side kernel argument values. *)
type arg =
  | I32 of int
  | I64 of int64
  | F32 of float
  | F64 of float
  | Ptr of int  (** device address (offset in the global segment) *)

(** Build the parameter block for [kernel] from positional arguments,
    checking that argument kinds match the declared parameter types. *)
let param_block (kernel : Ast.kernel) (args : arg list) : Mem.t =
  let layout = Ast.param_layout kernel.k_params in
  if List.length args <> List.length kernel.k_params then
    invalid_arg
      (Fmt.str "kernel %s expects %d arguments, got %d" kernel.k_name
         (List.length kernel.k_params) (List.length args));
  let mem = Mem.create ~name:"param" (Ast.param_block_size kernel.k_params) in
  (* walk parameters and arguments in lockstep (indexing the parameter
     list with [List.nth] per argument is quadratic in the arity), with
     an O(1) layout lookup *)
  let layout_tbl = Hashtbl.create (List.length layout) in
  List.iter (fun (name, slot) -> Hashtbl.replace layout_tbl name slot) layout;
  List.iteri
    (fun i (p, arg) ->
      let off, ty = Hashtbl.find layout_tbl p.Ast.p_name in
      let v =
        match (arg, ty) with
        | I32 v, (Ast.U32 | Ast.S32 | Ast.B32 | Ast.U16 | Ast.S16 | Ast.B16 | Ast.U8 | Ast.S8 | Ast.B8) ->
            Scalar_ops.I (Int64.of_int v)
        | I64 v, (Ast.U64 | Ast.S64 | Ast.B64) -> Scalar_ops.I v
        | Ptr v, (Ast.U64 | Ast.S64 | Ast.B64) -> Scalar_ops.I (Int64.of_int v)
        | F32 v, Ast.F32 -> Scalar_ops.F v
        | F64 v, Ast.F64 -> Scalar_ops.F v
        | _ ->
            invalid_arg
              (Fmt.str "argument %d of %s: kind mismatch for %s parameter" i
                 kernel.k_name (Printer.dtype_str ty))
      in
      Mem.store mem ty off v)
    (List.combine kernel.k_params args);
  mem
