(** Hand-written lexer for the PTX subset.

    Identifiers may embed dots so that dotted opcodes ([add.s32]), special
    registers ([%tid.x]) and directives ([.reg]) each arrive as a single
    token; the parser splits on the dots. *)

type token =
  | Ident of string  (** identifiers, opcodes, directives, registers *)
  | Int of int64
  | Float of float
  | Comma
  | Semi
  | Colon
  | At
  | Bang
  | Plus
  | Minus
  | Eq
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Eof

let pp_token fmt = function
  | Ident s -> Fmt.pf fmt "%s" s
  | Int i -> Fmt.pf fmt "%Ld" i
  | Float f -> Fmt.pf fmt "%g" f
  | Comma -> Fmt.string fmt ","
  | Semi -> Fmt.string fmt ";"
  | Colon -> Fmt.string fmt ":"
  | At -> Fmt.string fmt "@"
  | Bang -> Fmt.string fmt "!"
  | Plus -> Fmt.string fmt "+"
  | Minus -> Fmt.string fmt "-"
  | Eq -> Fmt.string fmt "="
  | Lbracket -> Fmt.string fmt "["
  | Rbracket -> Fmt.string fmt "]"
  | Lbrace -> Fmt.string fmt "{"
  | Rbrace -> Fmt.string fmt "}"
  | Lparen -> Fmt.string fmt "("
  | Rparen -> Fmt.string fmt ")"
  | Eof -> Fmt.string fmt "<eof>"

exception Error of string * int  (** message, line number *)

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }
let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = '%' || c = '$' || c = '.'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws_and_comments lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
      match lx.src.[lx.pos + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_ws_and_comments lx
      | '*' ->
          advance lx;
          advance lx;
          let rec loop () =
            match peek_char lx with
            | None -> raise (Error ("unterminated comment", lx.line))
            | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                loop ()
          in
          loop ();
          skip_ws_and_comments lx
      | _ -> ())
  | _ -> ()

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

(* Numbers: decimal and hex integers, decimal floats with optional exponent,
   and PTX hex floats 0f<8 hex digits> / 0d<16 hex digits>. *)
let lex_number lx =
  let start = lx.pos in
  let len = String.length lx.src in
  if
    lx.pos + 1 < len
    && lx.src.[lx.pos] = '0'
    && (lx.src.[lx.pos + 1] = 'f' || lx.src.[lx.pos + 1] = 'F')
    && lx.pos + 2 < len
    && (match lx.src.[lx.pos + 2] with
       | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
       | _ -> false)
  then (
    advance lx;
    advance lx;
    let hstart = lx.pos in
    while
      match peek_char lx with
      | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> true
      | _ -> false
    do
      advance lx
    done;
    let hex = String.sub lx.src hstart (lx.pos - hstart) in
    if String.length hex <> 8 then raise (Error ("0f float needs 8 hex digits", lx.line));
    Float (Int32.float_of_bits (Int32.of_string ("0x" ^ hex))))
  else if
    lx.pos + 1 < len
    && lx.src.[lx.pos] = '0'
    && (lx.src.[lx.pos + 1] = 'd' || lx.src.[lx.pos + 1] = 'D')
    && lx.pos + 2 < len
    && (match lx.src.[lx.pos + 2] with
       | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
       | _ -> false)
  then (
    advance lx;
    advance lx;
    let hstart = lx.pos in
    while
      match peek_char lx with
      | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> true
      | _ -> false
    do
      advance lx
    done;
    let hex = String.sub lx.src hstart (lx.pos - hstart) in
    if String.length hex <> 16 then raise (Error ("0d float needs 16 hex digits", lx.line));
    Float (Int64.float_of_bits (Int64.of_string ("0x" ^ hex))))
  else if
    lx.pos + 1 < len
    && lx.src.[lx.pos] = '0'
    && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  then (
    advance lx;
    advance lx;
    let hstart = lx.pos in
    while
      match peek_char lx with
      | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> true
      | _ -> false
    do
      advance lx
    done;
    Int (Int64.of_string ("0x" ^ String.sub lx.src hstart (lx.pos - hstart))))
  else begin
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    let is_float = ref false in
    (match peek_char lx with
    | Some '.'
      when lx.pos + 1 < len && is_digit lx.src.[lx.pos + 1] ->
        is_float := true;
        advance lx;
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance lx
        done
    | _ -> ());
    (match peek_char lx with
    | Some ('e' | 'E')
      when lx.pos + 1 < len
           && (is_digit lx.src.[lx.pos + 1]
              || ((lx.src.[lx.pos + 1] = '+' || lx.src.[lx.pos + 1] = '-')
                 && lx.pos + 2 < len
                 && is_digit lx.src.[lx.pos + 2])) ->
        is_float := true;
        advance lx;
        (match peek_char lx with Some ('+' | '-') -> advance lx | _ -> ());
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance lx
        done
    | _ -> ());
    let text = String.sub lx.src start (lx.pos - start) in
    if !is_float then Float (float_of_string text) else Int (Int64.of_string text)
  end

let next lx =
  skip_ws_and_comments lx;
  match peek_char lx with
  | None -> Eof
  | Some c when is_digit c -> lex_number lx
  | Some c when is_ident_start c -> Ident (lex_ident lx)
  | Some c ->
      advance lx;
      (match c with
      | ',' -> Comma
      | ';' -> Semi
      | ':' -> Colon
      | '@' -> At
      | '!' -> Bang
      | '+' -> Plus
      | '-' -> Minus
      | '=' -> Eq
      | '[' -> Lbracket
      | ']' -> Rbracket
      | '{' -> Lbrace
      | '}' -> Rbrace
      | '(' -> Lparen
      | ')' -> Rparen
      | _ -> raise (Error (Fmt.str "unexpected character %C" c, lx.line)))

(** Lex the whole source, returning tokens paired with their line numbers
    (the trailing [Eof] included). *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    let line = lx.line in
    match next lx with
    | Eof -> List.rev ((Eof, line) :: acc)
    | t -> go ((t, line) :: acc)
  in
  go []
