(** Reference emulator for the PTX subset.

    Executes a kernel launch by serializing scalar threads directly over the
    AST — no vectorization, no warps — with CTA-barrier-aware round-robin
    scheduling.  This is the correctness oracle against which the dynamic
    vectorizing pipeline is validated: both share {!Scalar_ops}, so results
    must match bit-for-bit. *)

open Ast

exception Trap of string
exception Out_of_fuel

type stats = {
  mutable dyn_instrs : int;  (** dynamically executed instructions *)
  mutable dyn_branches : int;
  mutable barrier_waits : int;  (** thread-barrier arrival events *)
}

let empty_stats () = { dyn_instrs = 0; dyn_branches = 0; barrier_waits = 0 }

type thread_state = Running | At_barrier | Done

type thread = {
  tid : Launch.dim3;
  regs : (reg, Scalar_ops.value) Hashtbl.t;
  local : Mem.t;
  mutable pc : int;
  mutable state : thread_state;
}

type cta_env = {
  kernel : kernel;
  code : stmt array;
  labels : (string, int) Hashtbl.t;
  global : Mem.t;
  params : Mem.t;
  consts : Mem.t;
  const_layout : (string * int) list;
  shared : Mem.t;
  shared_layout : (string * int) list;
  local_layout : (string * int) list;
  local_size : int;
  grid : Launch.dim3;
  block : Launch.dim3;
  ctaid : Launch.dim3;
  stats : stats;
}

(** Build the module's constant bank from its [.const] declarations. *)
let build_consts (m : modul) : Mem.t * (string * int) list =
  let decls = List.map (fun c -> c.c_decl) m.m_consts in
  let layout, total = Mem.layout decls in
  let mem = Mem.create ~name:"const" total in
  List.iter
    (fun c ->
      let base = List.assoc c.c_decl.a_name layout in
      let ty = c.c_decl.a_ty in
      let sz = size_of ty in
      match c.c_init with
      | None -> ()
      | Some (Init_int vs) ->
          List.iteri (fun i v -> Mem.store mem ty (base + (i * sz)) (Scalar_ops.I v)) vs
      | Some (Init_float vs) ->
          List.iteri (fun i v -> Mem.store mem ty (base + (i * sz)) (Scalar_ops.F v)) vs)
    m.m_consts;
  (mem, layout)

let reg_default ty = if is_float ty then Scalar_ops.F 0.0 else Scalar_ops.I 0L

let special_value env t = function
  | Tid d -> (
      match d with X -> t.tid.Launch.x | Y -> t.tid.Launch.y | Z -> t.tid.Launch.z)
  | Ntid d -> (
      match d with
      | X -> env.block.Launch.x
      | Y -> env.block.Launch.y
      | Z -> env.block.Launch.z)
  | Ctaid d -> (
      match d with
      | X -> env.ctaid.Launch.x
      | Y -> env.ctaid.Launch.y
      | Z -> env.ctaid.Launch.z)
  | Nctaid d -> (
      match d with
      | X -> env.grid.Launch.x
      | Y -> env.grid.Launch.y
      | Z -> env.grid.Launch.z)
  | Laneid -> 0  (* scalar reference execution: every thread is lane 0 *)
  | Warpsize -> 1

let var_offset env name =
  match List.assoc_opt name env.shared_layout with
  | Some off -> off
  | None -> (
      match List.assoc_opt name env.local_layout with
      | Some off -> off
      | None -> (
          match List.assoc_opt name env.const_layout with
          | Some off -> off
          | None -> (
              match List.assoc_opt name (Ast.param_layout env.kernel.k_params) with
              | Some (off, _) -> off
              | None -> raise (Trap (Fmt.str "unknown variable %s" name)))))

let eval_operand env t : operand -> Scalar_ops.value = function
  | Reg r -> (
      match Hashtbl.find_opt t.regs r with
      | Some v -> v
      | None -> raise (Trap (Fmt.str "read of undeclared register %s" r)))
  | Imm_int v -> Scalar_ops.I v
  | Imm_float v -> Scalar_ops.F v
  | Special s -> Scalar_ops.I (Int64.of_int (special_value env t s))
  | Var v -> Scalar_ops.I (Int64.of_int (var_offset env v))

let set_reg t r v = Hashtbl.replace t.regs r v

let segment env (t : thread) = function
  | Param -> env.params
  | Global -> env.global
  | Shared -> env.shared
  | Local -> t.local
  | Const -> env.consts

let resolve_addr env t ({ base; offset } : address) : int =
  let b =
    match base with
    | Areg r -> (
        match eval_operand env t (Reg r) with
        | Scalar_ops.I v -> Int64.to_int v
        | Scalar_ops.F _ -> raise (Trap "float used as address"))
    | Avar v -> var_offset env v
  in
  b + offset

let guard_passes env t = function
  | Always -> true
  | If p -> Scalar_ops.to_bool (eval_operand env t (Reg p))
  | Ifnot p -> not (Scalar_ops.to_bool (eval_operand env t (Reg p)))

(** Execute one thread until it blocks at a barrier, exits, or runs out of
    fuel.  Returns the number of instructions executed. *)
let run_thread env (t : thread) ~fuel : int =
  let executed = ref 0 in
  let continue_ = ref true in
  while !continue_ && t.state = Running do
    if !executed > fuel then raise Out_of_fuel;
    if t.pc >= Array.length env.code then t.state <- Done
    else begin
      let stmt = env.code.(t.pc) in
      t.pc <- t.pc + 1;
      match stmt with
      | Label _ -> ()
      | Inst (g, i, _) ->
          incr executed;
          env.stats.dyn_instrs <- env.stats.dyn_instrs + 1;
          if guard_passes env t g then (
            match i with
            | Binary (op, ty, d, a, b) ->
                set_reg t d
                  (Scalar_ops.binop op ty (eval_operand env t a) (eval_operand env t b))
            | Unary (op, ty, d, a) ->
                set_reg t d (Scalar_ops.unop op ty (eval_operand env t a))
            | Mad (ty, d, a, b, c) ->
                set_reg t d
                  (Scalar_ops.mad ty (eval_operand env t a) (eval_operand env t b)
                     (eval_operand env t c))
            | Setp (op, ty, d, a, b) ->
                set_reg t d
                  (Scalar_ops.of_bool
                     (Scalar_ops.cmp op ty (eval_operand env t a) (eval_operand env t b)))
            | Selp (ty, d, a, b, p) ->
                ignore ty;
                let v =
                  if Scalar_ops.to_bool (eval_operand env t (Reg p)) then
                    eval_operand env t a
                  else eval_operand env t b
                in
                set_reg t d v
            | Mov (ty, d, a) ->
                ignore ty;
                set_reg t d (eval_operand env t a)
            | Cvt (dty, sty, d, a) ->
                set_reg t d (Scalar_ops.cvt ~dst:dty ~src:sty (eval_operand env t a))
            | Ld (sp, ty, d, addr) ->
                let seg = segment env t sp in
                set_reg t d (Mem.load seg ty (resolve_addr env t addr))
            | St (sp, ty, addr, v) ->
                let seg = segment env t sp in
                Mem.store seg ty (resolve_addr env t addr) (eval_operand env t v)
            | Atom (sp, op, ty, d, addr, b, c) ->
                let seg = segment env t sp in
                let a = resolve_addr env t addr in
                let old = Mem.load seg ty a in
                let v = eval_operand env t b in
                let extra = Option.map (eval_operand env t) c in
                Mem.store seg ty a (Scalar_ops.atom op ty old v extra);
                set_reg t d old
            | Call _ -> raise (Trap "call survived inlining")
            | Bra target -> (
                env.stats.dyn_branches <- env.stats.dyn_branches + 1;
                match Hashtbl.find_opt env.labels target with
                | Some pc -> t.pc <- pc
                | None -> raise (Trap (Fmt.str "branch to unknown label %s" target)))
            | Bar ->
                env.stats.barrier_waits <- env.stats.barrier_waits + 1;
                t.state <- At_barrier;
                continue_ := false
            | Ret | Exit ->
                t.state <- Done;
                continue_ := false)
    end
  done;
  !executed

(** Run one CTA to completion: round-robin over threads, releasing barriers
    when every non-exited thread has arrived. *)
let run_cta env ~fuel =
  let n = Launch.count env.block in
  let threads =
    Array.init n (fun i ->
        let tid = Launch.unlinear ~dims:env.block i in
        let regs = Hashtbl.create 64 in
        List.iter (fun (r, ty) -> Hashtbl.replace regs r (reg_default ty)) env.kernel.k_regs;
        {
          tid;
          regs;
          local = Mem.create ~name:"local" env.local_size;
          pc = 0;
          state = Running;
        })
  in
  let fuel_left = ref fuel in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun t ->
        if t.state = Running then begin
          let used = run_thread env t ~fuel:!fuel_left in
          fuel_left := !fuel_left - used;
          if !fuel_left <= 0 then raise Out_of_fuel;
          if used > 0 || t.state <> Running then progress := true
        end)
      threads;
    (* A barrier synchronizes the CTA's live (non-exited) threads: it
       releases when every one of them has arrived.  CUDA leaves barriers
       with exited threads undefined; this deterministic choice matches the
       dynamic execution manager so the oracle and the vectorized pipeline
       agree. *)
    let live = Array.to_list threads |> List.filter (fun t -> t.state <> Done) in
    if live <> [] && List.for_all (fun t -> t.state = At_barrier) live then begin
      List.iter (fun t -> t.state <- Running) live;
      progress := true
    end
  done;
  Array.iter
    (fun t -> if t.state <> Done then raise (Trap "thread failed to terminate"))
    threads

(** Launch a kernel over a grid.

    @param fuel maximum dynamic instructions per CTA (default 100M);
      {!Out_of_fuel} is raised when exceeded, bounding runaway loops in
      randomly generated kernels. *)
let run ?(fuel = 100_000_000) (m : modul) ~kernel ~(args : Launch.arg list)
    ~(global : Mem.t) ~(grid : Launch.dim3) ~(block : Launch.dim3) : stats =
  let k =
    match find_kernel m kernel with
    | Some k -> k
    | None -> raise (Trap (Fmt.str "no kernel named %s" kernel))
  in
  (* device functions are exhaustively inlined before execution *)
  let k = Inline.expand m k in
  let params = Launch.param_block k args in
  let consts, const_layout = build_consts m in
  let code = Array.of_list k.k_body in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i s -> match s with Label l -> Hashtbl.replace labels l (i + 1) | _ -> ())
    code;
  let shared_layout, shared_size = Mem.layout k.k_shared in
  let local_layout, local_size = Mem.layout k.k_local in
  let stats = empty_stats () in
  let ncta = Launch.count grid in
  for c = 0 to ncta - 1 do
    let ctaid = Launch.unlinear ~dims:grid c in
    let env =
      {
        kernel = k;
        code;
        labels;
        global;
        params;
        consts;
        const_layout;
        shared = Mem.create ~name:"shared" shared_size;
        shared_layout;
        local_layout;
        local_size;
        grid;
        block;
        ctaid;
        stats;
      }
    in
    run_cta env ~fuel
  done;
  stats
