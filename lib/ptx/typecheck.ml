(** Static checks on a parsed PTX kernel: every register is declared exactly
    once, operand register classes match instruction types (predicate
    vs. data registers), branch targets exist, labels are unique, and
    address bases refer to declared variables.

    PTX tolerates width-compatible register reuse (e.g. a [.b32] register in
    an [.s32] add); we check bit-width compatibility rather than exact type
    equality, matching the PTX spec's untyped-register semantics. *)

open Ast

type error = { what : string; where : string }

let err what where = { what; where }
let pp_error fmt e = Fmt.pf fmt "%s (in %s)" e.what e.where

exception Type_error of error

let width_class ty =
  match ty with Pred -> `Pred | _ -> `Bits (size_of ty * 8)

let compatible declared used =
  match (width_class declared, width_class used) with
  | `Pred, `Pred -> true
  | `Bits a, `Bits b -> a = b
  | _ -> false

let check_kernel ?(consts = []) ?(funcs = []) (k : kernel) : error list =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let where = k.k_name in
  (* Registers: unique declaration, build env. *)
  let regs = Hashtbl.create 64 in
  List.iter
    (fun (r, ty) ->
      if Hashtbl.mem regs r then add (err (Fmt.str "register %s declared twice" r) where)
      else Hashtbl.add regs r ty)
    k.k_regs;
  let vars = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace vars p.p_name `Param) k.k_params;
  List.iter (fun a -> Hashtbl.replace vars a.a_name `Shared) k.k_shared;
  List.iter (fun a -> Hashtbl.replace vars a.a_name `Local) k.k_local;
  List.iter (fun c -> Hashtbl.replace vars c `Const) consts;
  (* Labels: unique, collect for branch-target checking. *)
  let labels = Hashtbl.create 16 in
  List.iter
    (function
      | Label l ->
          if Hashtbl.mem labels l then add (err (Fmt.str "label %s defined twice" l) where)
          else Hashtbl.add labels l ()
      | Inst _ -> ())
    k.k_body;
  let check_reg r expect ctx =
    match Hashtbl.find_opt regs r with
    | None -> add (err (Fmt.str "register %s not declared" r) ctx)
    | Some declared ->
        if not (compatible declared expect) then
          add
            (err
               (Fmt.str "register %s has type %s, incompatible with %s" r
                  (Printer.dtype_str declared) (Printer.dtype_str expect))
               ctx)
  in
  let check_operand o expect ctx =
    match o with
    | Reg r -> check_reg r expect ctx
    | Imm_int _ ->
        if is_float expect && size_of expect < 4 then
          add (err "integer immediate used as narrow float" ctx)
    | Imm_float _ ->
        if not (is_float expect) then add (err "float immediate in integer context" ctx)
    | Special _ ->
        (* Special registers are 32-bit unsigned. *)
        if not (compatible U32 expect) then
          add (err "special register used at non-32-bit width" ctx)
    | Var v ->
        (* Address-of a declared variable; must land in an integer register
           wide enough for an address. *)
        if not (Hashtbl.mem vars v) then
          add (err (Fmt.str "unknown variable %s" v) ctx)
        else if not (is_integer expect) || size_of expect < 4 then
          add (err (Fmt.str "address of %s needs a 32/64-bit integer" v) ctx)
  in
  let check_addr (a : address) ctx =
    match a.base with
    | Areg r -> (
        match Hashtbl.find_opt regs r with
        | None -> add (err (Fmt.str "address register %s not declared" r) ctx)
        | Some ty ->
            if size_of ty <> 8 && size_of ty <> 4 then
              add (err (Fmt.str "address register %s must be 32 or 64 bit" r) ctx))
    | Avar v ->
        if not (Hashtbl.mem vars v) then
          add (err (Fmt.str "unknown variable %s in address" v) ctx)
  in
  let check_space_var (a : address) (sp : space) ctx =
    match (a.base, sp) with
    | Avar v, Param when Hashtbl.find_opt vars v <> Some `Param ->
        add (err (Fmt.str "%s is not a parameter" v) ctx)
    | Avar v, Shared when Hashtbl.find_opt vars v <> Some `Shared ->
        add (err (Fmt.str "%s is not a shared array" v) ctx)
    | Avar v, Local when Hashtbl.find_opt vars v <> Some `Local ->
        add (err (Fmt.str "%s is not a local array" v) ctx)
    | Avar v, Const when Hashtbl.find_opt vars v <> Some `Const ->
        add (err (Fmt.str "%s is not a constant array" v) ctx)
    | _ -> ()
  in
  let check_instr g i =
    let ctx = Printer.instr_str i in
    (match g with
    | Always -> ()
    | If r | Ifnot r -> check_reg r Pred ctx);
    match i with
    | Binary (op, ty, d, a, b) ->
        if ty = Pred && not (List.mem op [ And; Or; Xor ]) then
          add (err "arithmetic on predicates" ctx);
        if is_float ty && List.mem op [ And; Or; Xor; Shl; Shr; Mul_hi; Mul_wide; Rem ]
        then add (err "bitwise/integer op on float type" ctx);
        (* mul.wide reads at the source type but defines a register of
           twice the width; 64-bit sources have no 128-bit destination. *)
        (match op with
        | Mul_wide -> (
            match widened ty with
            | Some wide -> check_reg d wide ctx
            | None -> add (err "mul.wide needs an integer type of at most 32 bits" ctx))
        | _ -> check_reg d ty ctx);
        check_operand a ty ctx;
        (* Shift amounts are .u32 regardless of the value type. *)
        if op = Shl || op = Shr then check_operand b U32 ctx else check_operand b ty ctx
    | Unary (op, ty, d, a) ->
        if
          List.mem op [ Sqrt; Rsqrt; Rcp; Sin; Cos; Ex2; Lg2 ] && not (is_float ty)
        then add (err "transcendental on integer type" ctx);
        if op = Not && is_float ty then add (err "bitwise not on float" ctx);
        check_reg d ty ctx;
        check_operand a ty ctx
    | Mad (ty, d, a, b, c) ->
        check_reg d ty ctx;
        check_operand a ty ctx;
        check_operand b ty ctx;
        check_operand c ty ctx
    | Setp (_, ty, d, a, b) ->
        if ty = Pred then add (err "setp on predicate type" ctx);
        check_reg d Pred ctx;
        check_operand a ty ctx;
        check_operand b ty ctx
    | Selp (ty, d, a, b, p) ->
        check_reg d ty ctx;
        check_operand a ty ctx;
        check_operand b ty ctx;
        check_reg p Pred ctx
    | Mov (ty, d, a) ->
        check_reg d ty ctx;
        check_operand a ty ctx
    | Cvt (dty, sty, d, a) ->
        check_reg d dty ctx;
        check_operand a sty ctx
    | Ld (sp, ty, d, addr) ->
        if ty = Pred then add (err "loads of predicates are not addressable" ctx);
        check_reg d ty ctx;
        check_addr addr ctx;
        check_space_var addr sp ctx
    | St (sp, ty, addr, v) ->
        if ty = Pred then add (err "stores of predicates are not addressable" ctx);
        if sp = Param || sp = Const then add (err "store to read-only space" ctx);
        check_addr addr ctx;
        check_space_var addr sp ctx;
        check_operand v ty ctx
    | Atom (sp, op, ty, d, addr, b, c) ->
        if sp <> Shared && sp <> Global then add (err "atomics only on shared/global" ctx);
        if is_float ty && op <> Atom_add && op <> Atom_exch then
          add (err "float atomic other than add/exch" ctx);
        check_reg d ty ctx;
        check_addr addr ctx;
        check_space_var addr sp ctx;
        check_operand b ty ctx;
        Option.iter (fun c -> check_operand c ty ctx) c
    | Bra t ->
        if not (Hashtbl.mem labels t) then
          add (err (Fmt.str "branch to undefined label %s" t) ctx)
    | Call (rets, fname, args) -> (
        match List.find_opt (fun (f : func_decl) -> f.f_name = fname) funcs with
        | None -> add (err (Fmt.str "call of undefined .func %s" fname) ctx)
        | Some f ->
            if List.length rets <> List.length f.f_rets then
              add (err (Fmt.str "call of %s: wrong number of return registers" fname) ctx)
            else
              List.iter2 (fun r (_, ty) -> check_reg r ty ctx) rets f.f_rets;
            if List.length args <> List.length f.f_params then
              add (err (Fmt.str "call of %s: wrong number of arguments" fname) ctx)
            else List.iter2 (fun a (_, ty) -> check_operand a ty ctx) args f.f_params)
    | Bar | Ret | Exit -> ()
  in
  List.iter (function Inst (g, i, _) -> check_instr g i | Label _ -> ()) k.k_body;
  (* Guarded non-branch instructions are permitted in source PTX; the
     if-conversion pass removes them before translation. Guarded barriers
     are rejected outright (divergent barrier = UB in the execution model). *)
  List.iter
    (function
      | Inst ((If _ | Ifnot _), Bar, _) -> add (err "guarded barrier" where)
      | _ -> ())
    k.k_body;
  List.rev !errors

(** Check a device function body: registers declared, labels resolved, no
    barriers, no nested shared state. *)
let check_func_decl ?(funcs = []) (f : func_decl) : error list =
  let as_kernel =
    {
      k_name = "(func " ^ f.f_name ^ ")";
      k_params = [];
      k_regs = f.f_rets @ f.f_params @ f.f_regs;
      k_shared = [];
      k_local = [];
      k_body = f.f_body;
    }
  in
  let bar_errors =
    List.filter_map
      (function
        | Inst (_, Bar, _) ->
            Some (err "barrier inside .func" ("(func " ^ f.f_name ^ ")"))
        | _ -> None)
      f.f_body
  in
  bar_errors @ check_kernel ~funcs as_kernel

let check_module (m : modul) : error list =
  let dup_errors =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun k ->
        if Hashtbl.mem seen k.k_name then
          Some (err (Fmt.str "kernel %s defined twice" k.k_name) "module")
        else (
          Hashtbl.add seen k.k_name ();
          None))
      m.m_kernels
  in
  let consts = List.map (fun c -> c.c_decl.a_name) m.m_consts in
  dup_errors
  @ List.concat_map (check_func_decl ~funcs:m.m_funcs) m.m_funcs
  @ List.concat_map (check_kernel ~consts ~funcs:m.m_funcs) m.m_kernels

(** Raise [Type_error] on the first problem found. *)
let check_module_exn m =
  match check_module m with [] -> () | e :: _ -> raise (Type_error e)
