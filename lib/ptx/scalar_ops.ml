(** Scalar operation semantics shared by the PTX reference emulator and the
    vector-machine interpreter, so that a vectorized kernel's results are
    bit-identical to the oracle's.

    Values are either 64-bit integer patterns or floats.  Integer values are
    kept {e normalized} for the type of the operation that produced them:
    zero-extended for unsigned/untyped ([.bN]/[.uN]) types and sign-extended
    for signed types.  [f32] results are rounded to single precision after
    every operation, emulating 32-bit hardware. *)

open Ast

type value = I of int64 | F of float

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(** Normalize a raw 64-bit pattern for type [ty]. *)
let norm_int ty (v : int64) : int64 =
  let bits = 8 * size_of ty in
  if ty = Pred then if Int64.equal v 0L then 0L else 1L
  else if bits >= 64 then v
  else
    let shift = 64 - bits in
    if is_signed ty then Int64.shift_right (Int64.shift_left v shift) shift
    else Int64.shift_right_logical (Int64.shift_left v shift) shift

let as_int ty = function
  | I v -> norm_int ty v
  | F f -> norm_int ty (Int64.of_float f)

let as_float ty = function
  | F f -> if ty = F32 then round_f32 f else f
  | I v -> Int64.to_float v

let of_bool b = I (if b then 1L else 0L)
let to_bool = function I 0L -> false | I _ -> true | F f -> f <> 0.0

(* Unsigned comparison on normalized (zero-extended) patterns. *)
let ucompare a b =
  let flip x = Int64.add x Int64.min_int in
  Int64.compare (flip a) (flip b)

let int_binop op ty a b =
  let a = as_int ty a and b = as_int ty b in
  let r =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul_lo -> Int64.mul a b
    | Mul_hi ->
        let bits = 8 * size_of ty in
        if bits > 32 then unsupported "mul.hi on 64-bit types"
        else if is_signed ty then Int64.shift_right (Int64.mul a b) bits
        else Int64.shift_right_logical (Int64.mul a b) bits
    | Mul_wide -> assert false (* widened in [binop] before reaching here *)
    | Div ->
        if Int64.equal b 0L then 0L (* deterministic UB: PTX leaves this undefined *)
        else if is_signed ty then Int64.div a b
        else Int64.unsigned_div a b
    | Rem ->
        if Int64.equal b 0L then 0L
        else if is_signed ty then Int64.rem a b
        else Int64.unsigned_rem a b
    | Min -> if (if is_signed ty then compare a b else ucompare a b) <= 0 then a else b
    | Max -> if (if is_signed ty then compare a b else ucompare a b) >= 0 then a else b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl ->
        let bits = 8 * size_of ty in
        let amt = Int64.to_int (norm_int U32 b) in
        if amt >= bits then 0L else Int64.shift_left a amt
    | Shr ->
        let bits = 8 * size_of ty in
        let amt = Int64.to_int (norm_int U32 b) in
        if is_signed ty then Int64.shift_right a (min amt 63)
        else if amt >= bits then 0L
        else Int64.shift_right_logical (norm_int ty a) amt
  in
  I (norm_int ty r)

let float_binop op ty a b =
  let a = as_float ty a and b = as_float ty b in
  let r =
    match op with
    | Add -> a +. b
    | Sub -> a -. b
    | Mul_lo -> a *. b
    | Div -> a /. b
    | Min -> if a <= b || Float.is_nan b then a else b
    | Max -> if a >= b || Float.is_nan b then a else b
    | _ -> unsupported "float %s" (Printer.binop_str op)
  in
  F (if ty = F32 then round_f32 r else r)

let binop op ty a b =
  if is_float ty then float_binop op ty a b
  else if ty = Pred then
    match op with
    | And -> of_bool (to_bool a && to_bool b)
    | Or -> of_bool (to_bool a || to_bool b)
    | Xor -> of_bool (to_bool a <> to_bool b)
    | _ -> unsupported "predicate %s" (Printer.binop_str op)
  else
    match op with
    | Mul_wide -> (
        (* The result lives at twice the operand width, so it must not be
           re-normalized at [ty] like every other integer op; operands of
           at most 32 bits make the int64 product exact. *)
        match widened ty with
        | Some wide -> I (norm_int wide (Int64.mul (as_int ty a) (as_int ty b)))
        | None -> unsupported "mul.wide on 64-bit types")
    | _ -> int_binop op ty a b

let unop op ty a =
  if is_float ty then
    let x = as_float ty a in
    let r =
      match op with
      | Neg -> -.x
      | Abs -> Float.abs x
      | Sqrt -> sqrt x
      | Rsqrt -> 1.0 /. sqrt x
      | Rcp -> 1.0 /. x
      | Sin -> sin x
      | Cos -> cos x
      | Ex2 -> Float.exp2 x
      | Lg2 -> Float.log2 x
      | Not -> unsupported "not on float"
    in
    F (if ty = F32 then round_f32 r else r)
  else
    let x = as_int ty a in
    match op with
    | Neg -> I (norm_int ty (Int64.neg x))
    | Not ->
        if ty = Pred then of_bool (not (to_bool a))
        else I (norm_int ty (Int64.lognot x))
    | Abs -> I (norm_int ty (Int64.abs x))
    | _ -> unsupported "%s on integer type" (Printer.unop_str op)

(** Fused/serial multiply-add: d = a*b + c.  For [f32] we round after each
    step (matching a mul+add sequence) — Ocelot's LLVM backend lowered
    [mad.f32] this way. *)
let mad ty a b c =
  if is_float ty then
    let x = as_float ty a and y = as_float ty b and z = as_float ty c in
    let p = if ty = F32 then round_f32 (x *. y) else x *. y in
    F (if ty = F32 then round_f32 (p +. z) else p +. z)
  else
    let x = as_int ty a and y = as_int ty b and z = as_int ty c in
    I (norm_int ty (Int64.add (Int64.mul x y) z))

let cmp op ty a b =
  if is_float ty then
    let x = as_float ty a and y = as_float ty b in
    match op with
    | Eq -> x = y
    | Ne -> x <> y
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y
  else
    let x = as_int ty a and y = as_int ty b in
    let c = if is_signed ty then compare x y else ucompare x y in
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

(** Type conversion.  Float→int truncates toward zero (PTX [.rzi] default in
    the kernels we accept); int width changes normalize per the destination
    type after extending per the source type's signedness. *)
let cvt ~dst ~src v =
  match (is_float dst, is_float src) with
  | true, true -> F (as_float dst (F (as_float src v)))
  | true, false ->
      let x = as_int src v in
      let f = Int64.to_float x in
      F (if dst = F32 then round_f32 f else f)
  | false, true ->
      let f = as_float src v in
      let truncated = Float.trunc f in
      let i =
        if Float.is_nan truncated then 0L
        else if truncated >= 9.22e18 then Int64.max_int
        else if truncated <= -9.22e18 then Int64.min_int
        else Int64.of_float truncated
      in
      I (norm_int dst i)
  | false, false -> I (norm_int dst (as_int src v))

let atom op ty old v extra =
  match op with
  | Atom_add -> binop Add ty old v
  | Atom_min -> binop Min ty old v
  | Atom_max -> binop Max ty old v
  | Atom_exch -> if is_float ty then F (as_float ty v) else I (as_int ty v)
  | Atom_cas -> (
      match extra with
      | None -> unsupported "cas without comparand"
      | Some c -> if cmp Eq ty old v then c else old)

(** Bit-pattern (de)serialization for memory accesses. *)
let to_bits ty v : int64 =
  if is_float ty then
    match size_of ty with
    | 4 -> Int64.of_int32 (Int32.bits_of_float (as_float ty v))
    | _ -> Int64.bits_of_float (as_float ty v)
  else norm_int ty (as_int ty v)

let of_bits ty (bits : int64) : value =
  if is_float ty then
    match size_of ty with
    | 4 -> F (Int32.float_of_bits (Int64.to_int32 bits))
    | _ -> F (Int64.float_of_bits bits)
  else I (norm_int ty bits)

(** Structural equality usable in tests; NaNs compare equal to themselves. *)
let equal_value ty a b =
  if is_float ty then
    let x = as_float ty a and y = as_float ty b in
    (Float.is_nan x && Float.is_nan y) || x = y
  else Int64.equal (as_int ty a) (as_int ty b)

let pp_value fmt = function
  | I v -> Fmt.pf fmt "%Ld" v
  | F f -> Fmt.pf fmt "%h" f
