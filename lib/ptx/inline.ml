(** Exhaustive inlining of [.func] device functions.

    The paper's toolchain predates reliable function calls in the
    programming model ("this work does not implement function calls, mainly
    due to their relatively new introduction"); contemporary CUDA compilers
    inlined every device function into the kernel before emitting PTX.  We
    do the same as a PTX→PTX pass: each [call] is replaced by argument
    moves, the callee body with freshly renamed registers and labels
    ([ret] becomes a branch to the call's continuation), and return-value
    moves.  Nested calls expand iteratively; recursion is rejected.

    True calls — a thread-local call stack with yield-on-call — remain
    future work here exactly as in the paper (§4.1). *)

open Ast

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let max_depth = 32

(* Rename every register occurrence in an instruction via [ren]. *)
let rename_operand ren = function
  | Reg r -> Reg (ren r)
  | o -> o

let rename_address ren ({ base; offset } : address) =
  match base with Areg r -> { base = Areg (ren r); offset } | Avar _ -> { base; offset }

let rename_instr ren lren (i : instr) : instr =
  let ro = rename_operand ren in
  match i with
  | Binary (op, ty, d, a, b) -> Binary (op, ty, ren d, ro a, ro b)
  | Unary (op, ty, d, a) -> Unary (op, ty, ren d, ro a)
  | Mad (ty, d, a, b, c) -> Mad (ty, ren d, ro a, ro b, ro c)
  | Setp (op, ty, d, a, b) -> Setp (op, ty, ren d, ro a, ro b)
  | Selp (ty, d, a, b, p) -> Selp (ty, ren d, ro a, ro b, ren p)
  | Mov (ty, d, a) -> Mov (ty, ren d, ro a)
  | Cvt (dt, st, d, a) -> Cvt (dt, st, ren d, ro a)
  | Ld (sp, ty, d, addr) -> Ld (sp, ty, ren d, rename_address ren addr)
  | St (sp, ty, addr, v) -> St (sp, ty, rename_address ren addr, ro v)
  | Atom (sp, op, ty, d, addr, b, c) ->
      Atom (sp, op, ty, ren d, rename_address ren addr, ro b, Option.map ro c)
  | Bra l -> Bra (lren l)
  | Call (rets, f, args) -> Call (List.map ren rets, f, List.map ro args)
  | Bar -> Bar
  | Ret -> Ret
  | Exit -> Exit

let rename_guard ren = function
  | Always -> Always
  | If r -> If (ren r)
  | Ifnot r -> Ifnot (ren r)

(** Expand one call site: returns the replacement statements and the
    register declarations to add to the caller. *)
let expand_call (f : func_decl) ~(uid : int) ~(call_line : int) (rets : reg list)
    (args : operand list) : stmt list * (reg * dtype) list =
  if List.length args <> List.length f.f_params then
    err "call of %s: %d arguments for %d parameters" f.f_name (List.length args)
      (List.length f.f_params);
  if List.length rets <> List.length f.f_rets then
    err "call of %s: %d return registers for %d returns" f.f_name (List.length rets)
      (List.length f.f_rets);
  let suffix r = Fmt.str "%s__inl%d" r uid in
  let owned = f.f_rets @ f.f_params @ f.f_regs in
  let ren r = if List.mem_assoc r owned then suffix r else r in
  let lren l = Fmt.str "%s__inl%d" l uid in
  let end_label = Fmt.str "$__ret__inl%d" uid in
  (* Argument/return glue carries the call site's line; the callee body
     keeps its own source lines so hot inlined code attributes to the
     function definition, as a sampling profiler would. *)
  let prologue =
    List.map2
      (fun (p, ty) arg -> Inst (Always, Mov (ty, suffix p, arg), call_line))
      f.f_params args
  in
  let body =
    List.concat_map
      (function
        | Label l -> [ Label (lren l) ]
        | Inst (g, Ret, line) -> [ Inst (rename_guard ren g, Bra end_label, line) ]
        | Inst (g, i, line) ->
            [ Inst (rename_guard ren g, rename_instr ren lren i, line) ])
      f.f_body
  in
  let epilogue =
    Label end_label
    :: List.map2
         (fun (fr, ty) dst -> Inst (Always, Mov (ty, dst, Reg (suffix fr)), call_line))
         f.f_rets rets
  in
  let decls = List.map (fun (r, ty) -> (suffix r, ty)) owned in
  (prologue @ body @ epilogue, decls)

(** Inline every call in [k] (iterating for nested calls).
    @raise Error on unknown callees, arity mismatch, or recursion (detected
    as expansion beyond {!max_depth} rounds). *)
let expand (m : modul) (k : kernel) : kernel =
  let uid = ref 0 in
  let rec rounds depth (k : kernel) =
    let has_call =
      List.exists (function Inst (_, Call _, _) -> true | _ -> false) k.k_body
    in
    if not has_call then k
    else if depth > max_depth then
      err "kernel %s: call expansion exceeded depth %d (recursive .func?)" k.k_name
        max_depth
    else begin
      let new_regs = ref [] in
      let body =
        List.concat_map
          (function
            | Inst (Always, Call (rets, fname, args), line) -> (
                match find_func m fname with
                | None -> err "call of undefined .func %s" fname
                | Some f ->
                    incr uid;
                    let stmts, decls =
                      expand_call f ~uid:!uid ~call_line:line rets args
                    in
                    new_regs := !new_regs @ decls;
                    stmts)
            | Inst ((If _ | Ifnot _), Call _, _) ->
                (* Ifconv runs after inlining, so guarded calls must be
                   handled here; keep the subset simple and reject. *)
                err "guarded call in kernel %s (wrap the call in a branch)" k.k_name
            | s -> [ s ])
          k.k_body
      in
      rounds (depth + 1) { k with k_regs = k.k_regs @ !new_regs; k_body = body }
    end
  in
  rounds 0 k

(** Inline all kernels of a module; [.func] declarations are kept (they
    are harmless and preserve printability). *)
let run (m : modul) : modul = { m with m_kernels = List.map (expand m) m.m_kernels }
