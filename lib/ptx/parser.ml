(** Recursive-descent parser for the PTX subset.

    Grammar (informal):
    {v
      module  ::= { const | func | kernel }
      const   ::= ".const" type ident "[" int "]" [ "=" "{" num ("," num)* "}" ] ";"
      func    ::= ".func" [ "(" rdecl ("," rdecl)* ")" ] ident
                  "(" [ rdecl ("," rdecl)* ] ")" "{" item* "}"
      rdecl   ::= ".reg" type reg
      kernel  ::= ".entry" ident "(" [ param ("," param)* ] ")" "{" item* "}"
      param   ::= ".param" type ident
      item    ::= ".reg" type reg ("," reg)* ";"
              |   ".shared" type ident "[" int "]" ";"
              |   ".local"  type ident "[" int "]" ";"
              |   ident ":"                          (label)
              |   [ "@" ["!"] reg ] opcode operand ("," operand)* ";"
      call    ::= "call" [ "(" reg ("," reg)* ")" "," ] ident [ "," "(" operand ("," operand)* ")" ]
    v} *)

exception Error of string * int

type st = { mutable toks : (Lexer.token * int) list }

let fail st msg =
  let line = match st.toks with (_, l) :: _ -> l | [] -> 0 in
  raise (Error (msg, line))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.Eof

(** Line of the next token — captured before parsing an instruction so the
    resulting [Ast.Inst] records where its opcode appeared. *)
let cur_line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let peek2 st =
  match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.Eof

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok what =
  if peek st = tok then advance st
  else fail st (Fmt.str "expected %s, found %a" what Lexer.pp_token (peek st))

let expect_ident st what =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | t -> fail st (Fmt.str "expected %s, found %a" what Lexer.pp_token t)

let dtype_of_string st = function
  | ".pred" -> Ast.Pred
  | ".b8" -> Ast.B8
  | ".b16" -> Ast.B16
  | ".b32" -> Ast.B32
  | ".b64" -> Ast.B64
  | ".u8" -> Ast.U8
  | ".u16" -> Ast.U16
  | ".u32" -> Ast.U32
  | ".u64" -> Ast.U64
  | ".s8" -> Ast.S8
  | ".s16" -> Ast.S16
  | ".s32" -> Ast.S32
  | ".s64" -> Ast.S64
  | ".f32" -> Ast.F32
  | ".f64" -> Ast.F64
  | s -> fail st (Fmt.str "unknown type %S" s)

let parse_dtype st = dtype_of_string st (expect_ident st "type")

(* Dotted suffix parts of an opcode, e.g. "setp.lt.s32" -> ["lt"; "s32"]. *)
let opcode_parts s =
  match String.split_on_char '.' s with
  | [] -> assert false
  | head :: rest -> (head, rest)

let special_of_ident s =
  match s with
  | "%tid.x" -> Some (Ast.Tid Ast.X)
  | "%tid.y" -> Some (Ast.Tid Ast.Y)
  | "%tid.z" -> Some (Ast.Tid Ast.Z)
  | "%ntid.x" -> Some (Ast.Ntid Ast.X)
  | "%ntid.y" -> Some (Ast.Ntid Ast.Y)
  | "%ntid.z" -> Some (Ast.Ntid Ast.Z)
  | "%ctaid.x" -> Some (Ast.Ctaid Ast.X)
  | "%ctaid.y" -> Some (Ast.Ctaid Ast.Y)
  | "%ctaid.z" -> Some (Ast.Ctaid Ast.Z)
  | "%nctaid.x" -> Some (Ast.Nctaid Ast.X)
  | "%nctaid.y" -> Some (Ast.Nctaid Ast.Y)
  | "%nctaid.z" -> Some (Ast.Nctaid Ast.Z)
  | "%laneid" -> Some Ast.Laneid
  | "%warpsize" | "WARP_SZ" -> Some Ast.Warpsize
  | _ -> None

let parse_operand st =
  match peek st with
  | Lexer.Ident s -> (
      advance st;
      match special_of_ident s with
      | Some sp -> Ast.Special sp
      | None ->
          if String.length s > 0 && s.[0] = '%' then Ast.Reg s else Ast.Var s)
  | Lexer.Int i ->
      advance st;
      Ast.Imm_int i
  | Lexer.Float f ->
      advance st;
      Ast.Imm_float f
  | Lexer.Minus -> (
      advance st;
      match peek st with
      | Lexer.Int i ->
          advance st;
          Ast.Imm_int (Int64.neg i)
      | Lexer.Float f ->
          advance st;
          Ast.Imm_float (-.f)
      | t -> fail st (Fmt.str "expected number after '-', found %a" Lexer.pp_token t))
  | t -> fail st (Fmt.str "expected operand, found %a" Lexer.pp_token t)

let parse_address st =
  expect st Lexer.Lbracket "'['";
  let name = expect_ident st "address base" in
  let base =
    if String.length name > 0 && name.[0] = '%' then Ast.Areg name
    else Ast.Avar name
  in
  let offset =
    match peek st with
    | Lexer.Plus -> (
        advance st;
        match peek st with
        | Lexer.Int i ->
            advance st;
            Int64.to_int i
        | t -> fail st (Fmt.str "expected offset, found %a" Lexer.pp_token t))
    | Lexer.Minus -> (
        advance st;
        match peek st with
        | Lexer.Int i ->
            advance st;
            -Int64.to_int i
        | t -> fail st (Fmt.str "expected offset, found %a" Lexer.pp_token t))
    | _ -> 0
  in
  expect st Lexer.Rbracket "']'";
  { Ast.base; offset }

let parse_reg st = expect_ident st "register"

(* Modifiers that are accepted and ignored because our execution model
   already implements their semantics exactly:
   - rounding/approximation modes ([rn]..[ftz], [approx], [full]): the
     reference emulator and the VM both compute in host precision, like
     Ocelot's LLVM backend did for .approx transcendentals;
   - [rzi] (round-to-zero-integer on [cvt] float→int): {!Scalar_ops.cvt}
     truncates, which {e is} round-toward-zero ([rni]/[rmi]/[rpi] would
     change results, so they stay unsupported);
   - cache operators ([ca]/[cg]/[cs]/[lu]/[cv]/[wb]/[wt]), non-coherent
     loads ([nc]) and [volatile]: pure performance/coherence hints — one
     flat memory per address space makes them no-ops here.
   [wide] is deliberately NOT a modifier: [mul.wide] changes the result
   width and is parsed as its own operation below. *)
let is_modifier = function
  | "rn" | "rz" | "rm" | "rp" | "approx" | "full" | "ftz" | "sat" | "uni"
  | "rzi" | "volatile" | "nc" | "ca" | "cg" | "cs" | "lu" | "cv" | "wb" | "wt"
    ->
      true
  | _ -> false

let strip_modifiers parts = List.filter (fun p -> not (is_modifier p)) parts

let dtype_of_suffix st = function
  | [ t ] -> dtype_of_string st ("." ^ t)
  | parts -> fail st (Fmt.str "expected one type suffix, got [%s]" (String.concat "." parts))

let cmp_of_string st = function
  | "eq" -> Ast.Eq
  | "ne" -> Ast.Ne
  | "lt" | "lo" -> Ast.Lt
  | "le" | "ls" -> Ast.Le
  | "gt" | "hi" -> Ast.Gt
  | "ge" | "hs" -> Ast.Ge
  | s -> fail st (Fmt.str "unknown comparison %S" s)

let space_of_string st = function
  | "param" -> Ast.Param
  | "global" -> Ast.Global
  | "shared" -> Ast.Shared
  | "local" -> Ast.Local
  | "const" -> Ast.Const
  | s -> fail st (Fmt.str "unknown address space %S" s)

let atomop_of_string st = function
  | "add" -> Ast.Atom_add
  | "min" -> Ast.Atom_min
  | "max" -> Ast.Atom_max
  | "exch" -> Ast.Atom_exch
  | "cas" -> Ast.Atom_cas
  | s -> fail st (Fmt.str "unknown atomic %S" s)

let binop3 st op head parts =
  let ty = dtype_of_suffix st (strip_modifiers parts) in
  let d = parse_reg st in
  expect st Lexer.Comma "','";
  let a = parse_operand st in
  expect st Lexer.Comma "','";
  let b = parse_operand st in
  ignore head;
  Ast.Binary (op, ty, d, a, b)

let unop2 st op parts =
  let ty = dtype_of_suffix st (strip_modifiers parts) in
  let d = parse_reg st in
  expect st Lexer.Comma "','";
  let a = parse_operand st in
  Ast.Unary (op, ty, d, a)

let parse_instr st opcode =
  let head, parts = opcode_parts opcode in
  match head with
  | "add" -> binop3 st Ast.Add head parts
  | "sub" -> binop3 st Ast.Sub head parts
  | "mul" -> (
      match parts with
      | "hi" :: rest -> binop3 st Ast.Mul_hi head rest
      | "lo" :: rest -> binop3 st Ast.Mul_lo head rest
      | "wide" :: rest -> binop3 st Ast.Mul_wide head rest
      | rest -> binop3 st Ast.Mul_lo head rest)
  | "div" -> binop3 st Ast.Div head parts
  | "rem" -> binop3 st Ast.Rem head parts
  | "min" -> binop3 st Ast.Min head parts
  | "max" -> binop3 st Ast.Max head parts
  | "and" -> binop3 st Ast.And head parts
  | "or" -> binop3 st Ast.Or head parts
  | "xor" -> binop3 st Ast.Xor head parts
  | "shl" -> binop3 st Ast.Shl head parts
  | "shr" -> binop3 st Ast.Shr head parts
  | "neg" -> unop2 st Ast.Neg parts
  | "not" -> unop2 st Ast.Not parts
  | "abs" -> unop2 st Ast.Abs parts
  | "sqrt" -> unop2 st Ast.Sqrt parts
  | "rsqrt" -> unop2 st Ast.Rsqrt parts
  | "rcp" -> unop2 st Ast.Rcp parts
  | "sin" -> unop2 st Ast.Sin parts
  | "cos" -> unop2 st Ast.Cos parts
  | "ex2" -> unop2 st Ast.Ex2 parts
  | "lg2" -> unop2 st Ast.Lg2 parts
  | "mad" | "fma" ->
      let ty =
        match strip_modifiers parts with
        | [ "lo"; t ] | [ t ] -> dtype_of_string st ("." ^ t)
        | p -> fail st (Fmt.str "bad mad suffix [%s]" (String.concat "." p))
      in
      let d = parse_reg st in
      expect st Lexer.Comma "','";
      let a = parse_operand st in
      expect st Lexer.Comma "','";
      let b = parse_operand st in
      expect st Lexer.Comma "','";
      let c = parse_operand st in
      Ast.Mad (ty, d, a, b, c)
  | "setp" -> (
      match strip_modifiers parts with
      | [ cmp; t ] ->
          let cmp = cmp_of_string st cmp in
          let ty = dtype_of_string st ("." ^ t) in
          let d = parse_reg st in
          expect st Lexer.Comma "','";
          let a = parse_operand st in
          expect st Lexer.Comma "','";
          let b = parse_operand st in
          Ast.Setp (cmp, ty, d, a, b)
      | p -> fail st (Fmt.str "bad setp suffix [%s]" (String.concat "." p)))
  | "selp" ->
      let ty = dtype_of_suffix st (strip_modifiers parts) in
      let d = parse_reg st in
      expect st Lexer.Comma "','";
      let a = parse_operand st in
      expect st Lexer.Comma "','";
      let b = parse_operand st in
      expect st Lexer.Comma "','";
      let p = parse_reg st in
      Ast.Selp (ty, d, a, b, p)
  | "mov" ->
      let ty = dtype_of_suffix st (strip_modifiers parts) in
      let d = parse_reg st in
      expect st Lexer.Comma "','";
      let a = parse_operand st in
      Ast.Mov (ty, d, a)
  | "cvt" -> (
      match strip_modifiers parts with
      | [ dst; src ] ->
          let dty = dtype_of_string st ("." ^ dst) in
          let sty = dtype_of_string st ("." ^ src) in
          let d = parse_reg st in
          expect st Lexer.Comma "','";
          let a = parse_operand st in
          Ast.Cvt (dty, sty, d, a)
      | p -> fail st (Fmt.str "bad cvt suffix [%s]" (String.concat "." p)))
  | "ld" -> (
      match strip_modifiers parts with
      | [ sp; t ] ->
          let sp = space_of_string st sp in
          let ty = dtype_of_string st ("." ^ t) in
          let d = parse_reg st in
          expect st Lexer.Comma "','";
          let addr = parse_address st in
          Ast.Ld (sp, ty, d, addr)
      | p -> fail st (Fmt.str "bad ld suffix [%s]" (String.concat "." p)))
  | "st" -> (
      match strip_modifiers parts with
      | [ sp; t ] ->
          let sp = space_of_string st sp in
          let ty = dtype_of_string st ("." ^ t) in
          let addr = parse_address st in
          expect st Lexer.Comma "','";
          let v = parse_operand st in
          Ast.St (sp, ty, addr, v)
      | p -> fail st (Fmt.str "bad st suffix [%s]" (String.concat "." p)))
  | "atom" -> (
      match strip_modifiers parts with
      | [ sp; op; t ] ->
          let sp = space_of_string st sp in
          let op = atomop_of_string st op in
          let ty = dtype_of_string st ("." ^ t) in
          let d = parse_reg st in
          expect st Lexer.Comma "','";
          let addr = parse_address st in
          expect st Lexer.Comma "','";
          let b = parse_operand st in
          let c =
            if peek st = Lexer.Comma then (
              advance st;
              Some (parse_operand st))
            else None
          in
          if op = Ast.Atom_cas && c = None then fail st "atom.cas needs a third operand";
          Ast.Atom (sp, op, ty, d, addr, b, c)
      | p -> fail st (Fmt.str "bad atom suffix [%s]" (String.concat "." p)))
  | "bra" ->
      let target = expect_ident st "branch target" in
      Ast.Bra target
  | "bar" -> (
      match peek st with
      | Lexer.Int 0L ->
          advance st;
          Ast.Bar
      | Lexer.Int _ -> fail st "only bar.sync 0 is supported"
      | _ -> Ast.Bar)
  | "ret" -> Ast.Ret
  | "exit" -> Ast.Exit
  | "call" ->
      (* call (%r1, %r2), fname, (%a, %b);  — return and argument lists
         optional *)
      let rets =
        if peek st = Lexer.Lparen then begin
          advance st;
          let rec go acc =
            let r = parse_reg st in
            if peek st = Lexer.Comma then (
              advance st;
              go (r :: acc))
            else List.rev (r :: acc)
          in
          let rets = go [] in
          expect st Lexer.Rparen "')'";
          expect st Lexer.Comma "','";
          rets
        end
        else []
      in
      let fname = expect_ident st "function name" in
      let args =
        if peek st = Lexer.Comma then begin
          advance st;
          expect st Lexer.Lparen "'('";
          let rec go acc =
            let a = parse_operand st in
            if peek st = Lexer.Comma then (
              advance st;
              go (a :: acc))
            else List.rev (a :: acc)
          in
          let args = if peek st = Lexer.Rparen then [] else go [] in
          expect st Lexer.Rparen "')'";
          args
        end
        else []
      in
      Ast.Call (rets, fname, args)
  | "tex" -> fail st "texture instructions are outside the supported subset"
  | _ -> fail st (Fmt.str "unknown opcode %S" opcode)

let parse_array_decl st =
  let ty = parse_dtype st in
  let name = expect_ident st "array name" in
  let elems =
    match peek st with
    | Lexer.Lbracket -> (
        advance st;
        match peek st with
        | Lexer.Int n ->
            advance st;
            expect st Lexer.Rbracket "']'";
            Int64.to_int n
        | t -> fail st (Fmt.str "expected array size, found %a" Lexer.pp_token t))
    | _ -> 1
  in
  { Ast.a_name = name; a_ty = ty; a_elems = elems }

let parse_kernel_items st =
  let regs = ref [] and shared = ref [] and local = ref [] and body = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.Rbrace -> ()
    | Lexer.Ident ".reg" ->
        advance st;
        let ty = parse_dtype st in
        let rec regs_loop () =
          let r = parse_reg st in
          regs := (r, ty) :: !regs;
          if peek st = Lexer.Comma then (
            advance st;
            regs_loop ())
        in
        regs_loop ();
        expect st Lexer.Semi "';'";
        loop ()
    | Lexer.Ident ".shared" ->
        advance st;
        shared := parse_array_decl st :: !shared;
        expect st Lexer.Semi "';'";
        loop ()
    | Lexer.Ident ".local" ->
        advance st;
        local := parse_array_decl st :: !local;
        expect st Lexer.Semi "';'";
        loop ()
    | Lexer.Ident name when peek2 st = Lexer.Colon ->
        advance st;
        advance st;
        body := Ast.Label name :: !body;
        loop ()
    | Lexer.At ->
        let line = cur_line st in
        advance st;
        let guard =
          match peek st with
          | Lexer.Bang ->
              advance st;
              Ast.Ifnot (parse_reg st)
          | _ -> Ast.If (parse_reg st)
        in
        let opcode = expect_ident st "opcode" in
        let i = parse_instr st opcode in
        expect st Lexer.Semi "';'";
        body := Ast.Inst (guard, i, line) :: !body;
        loop ()
    | Lexer.Ident opcode ->
        let line = cur_line st in
        advance st;
        let i = parse_instr st opcode in
        expect st Lexer.Semi "';'";
        body := Ast.Inst (Ast.Always, i, line) :: !body;
        loop ()
    | t -> fail st (Fmt.str "unexpected token %a in kernel body" Lexer.pp_token t)
  in
  loop ();
  (List.rev !regs, List.rev !shared, List.rev !local, List.rev !body)

let parse_kernel st =
  expect st (Lexer.Ident ".entry") "'.entry'";
  let name = expect_ident st "kernel name" in
  expect st Lexer.Lparen "'('";
  let params = ref [] in
  (if peek st <> Lexer.Rparen then
     let rec params_loop () =
       expect st (Lexer.Ident ".param") "'.param'";
       let ty = parse_dtype st in
       let pname = expect_ident st "parameter name" in
       params := { Ast.p_name = pname; p_ty = ty } :: !params;
       if peek st = Lexer.Comma then (
         advance st;
         params_loop ())
     in
     params_loop ());
  expect st Lexer.Rparen "')'";
  expect st Lexer.Lbrace "'{'";
  let regs, shared, local, body = parse_kernel_items st in
  expect st Lexer.Rbrace "'}'";
  {
    Ast.k_name = name;
    k_params = List.rev !params;
    k_regs = regs;
    k_shared = shared;
    k_local = local;
    k_body = body;
  }

let parse_const st =
  expect st (Lexer.Ident ".const") "'.const'";
  let decl = parse_array_decl st in
  let init =
    if peek st = Lexer.Eq then (
      advance st;
      expect st Lexer.Lbrace "'{'";
      let ints = ref [] and floats = ref [] and any_float = ref false in
      let rec vals_loop () =
        (match parse_operand st with
        | Ast.Imm_int i ->
            ints := i :: !ints;
            floats := Int64.to_float i :: !floats
        | Ast.Imm_float f ->
            any_float := true;
            floats := f :: !floats;
            ints := Int64.of_float f :: !ints
        | _ -> fail st "const initializers must be literals");
        if peek st = Lexer.Comma then (
          advance st;
          vals_loop ())
      in
      vals_loop ();
      expect st Lexer.Rbrace "'}'";
      if !any_float || Ast.is_float decl.Ast.a_ty then
        Some (Ast.Init_float (List.rev !floats))
      else Some (Ast.Init_int (List.rev !ints)))
    else None
  in
  { Ast.c_decl = decl; c_init = init }

(* .func (ret-decls) name (param-decls) { body } *)
let parse_func st =
  expect st (Lexer.Ident ".func") "'.func'";
  let parse_reg_decl () =
    expect st (Lexer.Ident ".reg") "'.reg'";
    let ty = parse_dtype st in
    let r = parse_reg st in
    (r, ty)
  in
  let rets =
    if peek st = Lexer.Lparen then begin
      advance st;
      let rec go acc =
        let d = parse_reg_decl () in
        if peek st = Lexer.Comma then (
          advance st;
          go (d :: acc))
        else List.rev (d :: acc)
      in
      let rets = go [] in
      expect st Lexer.Rparen "')'";
      rets
    end
    else []
  in
  let name = expect_ident st "function name" in
  expect st Lexer.Lparen "'('";
  let params =
    if peek st = Lexer.Rparen then []
    else begin
      let rec go acc =
        let d = parse_reg_decl () in
        if peek st = Lexer.Comma then (
          advance st;
          go (d :: acc))
        else List.rev (d :: acc)
      in
      go []
    end
  in
  expect st Lexer.Rparen "')'";
  expect st Lexer.Lbrace "'{'";
  let regs, shared, local, body = parse_kernel_items st in
  expect st Lexer.Rbrace "'}'";
  if shared <> [] || local <> [] then
    fail st (Fmt.str ".func %s may not declare .shared/.local arrays" name);
  { Ast.f_name = name; f_rets = rets; f_params = params; f_regs = regs; f_body = body }

(** Parse a PTX module from source text.
    @raise Error on syntax errors (message, line).
    @raise Lexer.Error on lexical errors. *)
let parse_module src =
  let st = { toks = Lexer.tokenize src } in
  (* Accept and ignore a standard PTX preamble. *)
  let rec skip_preamble () =
    match peek st with
    | Lexer.Ident ".version" | Lexer.Ident ".target" | Lexer.Ident ".address_size" ->
        advance st;
        let rec to_newlineish () =
          match peek st with
          | Lexer.Ident s when s.[0] = '.' -> ()
          | Lexer.Eof -> ()
          | _ ->
              advance st;
              to_newlineish ()
        in
        to_newlineish ();
        skip_preamble ()
    | _ -> ()
  in
  skip_preamble ();
  let consts = ref [] and funcs = ref [] and kernels = ref [] in
  while peek st <> Lexer.Eof do
    match peek st with
    | Lexer.Ident ".const" ->
        consts := parse_const st :: !consts;
        expect st Lexer.Semi "';'"
    | Lexer.Ident ".func" -> funcs := parse_func st :: !funcs
    | _ -> kernels := parse_kernel st :: !kernels
  done;
  {
    Ast.m_consts = List.rev !consts;
    m_funcs = List.rev !funcs;
    m_kernels = List.rev !kernels;
  }

(** Convenience: parse a module that contains exactly one kernel. *)
let parse_kernel_exn src =
  match (parse_module src).Ast.m_kernels with
  | [ k ] -> k
  | ks -> invalid_arg (Fmt.str "parse_kernel_exn: %d kernels" (List.length ks))
