(** Abstract syntax for the PTX subset accepted by vekt.

    The subset mirrors the instructions exercised by the CUDA SDK / Parboil
    kernels the paper evaluates: integer and floating-point arithmetic,
    transcendental approximations, typed loads/stores to explicit address
    spaces, predicate-setting comparisons, conditional selects, guarded
    branches, CTA-wide barriers, shared-memory atomics, and [.func] device
    functions (eliminated by exhaustive inlining).  Textures and true
    function calls are outside the subset (the paper defers or omits them
    as well). *)

type dtype =
  | Pred
  | B8
  | B16
  | B32
  | B64
  | U8
  | U16
  | U32
  | U64
  | S8
  | S16
  | S32
  | S64
  | F32
  | F64
[@@deriving show { with_path = false }, eq]

(** Byte width of a datatype as stored in memory.  Predicates are not
    addressable in PTX; we give them one byte for spill slots. *)
let size_of = function
  | Pred -> 1
  | B8 | U8 | S8 -> 1
  | B16 | U16 | S16 -> 2
  | B32 | U32 | S32 | F32 -> 4
  | B64 | U64 | S64 | F64 -> 8

let is_float = function F32 | F64 -> true | _ -> false
let is_signed = function S8 | S16 | S32 | S64 -> true | _ -> false

let is_integer = function
  | B8 | B16 | B32 | B64 | U8 | U16 | U32 | U64 | S8 | S16 | S32 | S64 -> true
  | _ -> false

(** The integer type of twice the width, same signedness ([mul.wide]'s
    destination type).  [None] for floats, predicates and 64-bit types. *)
let widened = function
  | U8 -> Some U16
  | U16 -> Some U32
  | U32 -> Some U64
  | S8 -> Some S16
  | S16 -> Some S32
  | S32 -> Some S64
  | B8 -> Some B16
  | B16 -> Some B32
  | B32 -> Some B64
  | Pred | U64 | S64 | B64 | F32 | F64 -> None

type space = Param | Global | Shared | Local | Const
[@@deriving show { with_path = false }, eq]

type dim = X | Y | Z [@@deriving show { with_path = false }, eq]

(** Read-only special registers giving a thread its position in the launch
    hierarchy.  [Laneid] and [Warpsize] expose the dynamic warp context. *)
type special =
  | Tid of dim
  | Ntid of dim
  | Ctaid of dim
  | Nctaid of dim
  | Laneid
  | Warpsize
[@@deriving show { with_path = false }, eq]

type reg = string [@@deriving show { with_path = false }, eq]

type operand =
  | Reg of reg  (** registers always start with ['%'] *)
  | Imm_int of int64
  | Imm_float of float
  | Special of special
  | Var of string
      (** address-of a named [.shared]/[.local]/[.const]/[.param] variable;
          yields the variable's byte offset within its address space *)
[@@deriving show { with_path = false }, eq]

(** Memory operand: a base plus a constant byte offset.  The base is either
    a register holding an address or a named variable (a kernel parameter or
    a statically declared [.shared]/[.local]/[.const] array). *)
type addr_base = Areg of reg | Avar of string
[@@deriving show { with_path = false }, eq]

type address = { base : addr_base; offset : int }
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul_lo  (** low half of the product; plain [mul] for floats *)
  | Mul_hi
  | Mul_wide
      (** full product of two 16/32-bit integers into a register of twice
          the width ([mul.wide]); the operand type is the {e source} type *)
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr
[@@deriving show { with_path = false }, eq]

type unop = Neg | Not | Abs | Sqrt | Rsqrt | Rcp | Sin | Cos | Ex2 | Lg2
[@@deriving show { with_path = false }, eq]

type cmpop = Eq | Ne | Lt | Le | Gt | Ge
[@@deriving show { with_path = false }, eq]

type atomop = Atom_add | Atom_min | Atom_max | Atom_exch | Atom_cas
[@@deriving show { with_path = false }, eq]

(** Instruction guard: [@%p] executes when [p] is true, [@!%p] when false. *)
type guard = Always | If of reg | Ifnot of reg
[@@deriving show { with_path = false }, eq]

type instr =
  | Binary of binop * dtype * reg * operand * operand
  | Unary of unop * dtype * reg * operand
  | Mad of dtype * reg * operand * operand * operand
      (** [mad.lo] / [fma.rn]: d = a*b + c *)
  | Setp of cmpop * dtype * reg * operand * operand
  | Selp of dtype * reg * operand * operand * reg  (** d = p ? a : b *)
  | Mov of dtype * reg * operand
  | Cvt of dtype * dtype * reg * operand  (** [Cvt (dst_ty, src_ty, d, a)] *)
  | Ld of space * dtype * reg * address
  | St of space * dtype * address * operand
  | Atom of space * atomop * dtype * reg * address * operand * operand option
      (** [Atom (sp, op, ty, d, addr, b, c)]: d = old value; [c] only for CAS *)
  | Bra of string
  | Bar  (** [bar.sync 0]: CTA-wide barrier *)
  | Call of reg list * string * operand list
      (** [Call (rets, fname, args)]: call of a [.func]; eliminated by
          exhaustive inlining ({!module:Inline}) before translation, the
          strategy contemporary CUDA toolchains used (true calls with a
          thread-local stack are the paper's future work) *)
  | Ret
  | Exit
[@@deriving show { with_path = false }, eq]

(** Statement: a label or a (possibly guarded) instruction carrying the
    1-based source line it was parsed from.  Line 0 marks synthetic
    statements (built by tests, inlining glue, or if-conversion).  The
    line is provenance metadata only: it is ignored by structural
    equality so print/parse round-trips compare equal. *)
type stmt =
  | Label of string
  | Inst of guard * instr * (int[@equal fun _ _ -> true])
[@@deriving show { with_path = false }, eq]

(** Source line of a statement (0 when synthetic or a label). *)
let stmt_line = function Label _ -> 0 | Inst (_, _, line) -> line

type param = { p_name : string; p_ty : dtype }
[@@deriving show { with_path = false }, eq]

(** Statically sized array declaration in [.shared], [.local] or [.const]
    space. [a_elems] is the element count, not the byte count. *)
type array_decl = { a_name : string; a_ty : dtype; a_elems : int }
[@@deriving show { with_path = false }, eq]

(** Device function: callable from kernels (and other functions), always
    inlined.  Return values and parameters are registers, PTX-ABI style.
    Functions may not declare shared memory or synchronize. *)
type func_decl = {
  f_name : string;
  f_rets : (reg * dtype) list;
  f_params : (reg * dtype) list;
  f_regs : (reg * dtype) list;
  f_body : stmt list;
}
[@@deriving show { with_path = false }, eq]

type kernel = {
  k_name : string;
  k_params : param list;
  k_regs : (reg * dtype) list;
  k_shared : array_decl list;
  k_local : array_decl list;
  k_body : stmt list;
}
[@@deriving show { with_path = false }, eq]

(** Module-level [.const] array with an optional initializer.  Integer
    initializers are stored as [int64]; float initializers are bit-converted
    at layout time. *)
type const_init = Init_int of int64 list | Init_float of float list
[@@deriving show { with_path = false }, eq]

type const_decl = { c_decl : array_decl; c_init : const_init option }
[@@deriving show { with_path = false }, eq]

type modul = {
  m_consts : const_decl list;
  m_funcs : func_decl list;
  m_kernels : kernel list;
}
[@@deriving show { with_path = false }, eq]

let find_func m name =
  List.find_opt (fun f -> String.equal f.f_name name) m.m_funcs

let find_kernel m name =
  List.find_opt (fun k -> String.equal k.k_name name) m.m_kernels

(** Byte offset of each kernel parameter in the flat parameter block, laid
    out in declaration order with natural alignment. *)
let param_layout params =
  let align off a = (off + a - 1) / a * a in
  let rec go off = function
    | [] -> []
    | p :: rest ->
        let sz = size_of p.p_ty in
        let off = align off sz in
        (p.p_name, (off, p.p_ty)) :: go (off + sz) rest
  in
  go 0 params

let param_block_size params =
  List.fold_left
    (fun acc (_, (off, ty)) -> max acc (off + size_of ty))
    0 (param_layout params)

(** Register kind prefix conventions used by the printer and tests. *)
let defined_reg = function
  | Binary (_, _, d, _, _)
  | Unary (_, _, d, _)
  | Mad (_, d, _, _, _)
  | Setp (_, _, d, _, _)
  | Selp (_, d, _, _, _)
  | Mov (_, d, _)
  | Cvt (_, _, d, _)
  | Ld (_, _, d, _)
  | Atom (_, _, _, d, _, _, _) ->
      Some d
  | St _ | Bra _ | Bar | Call _ | Ret | Exit -> None

let used_operands = function
  | Binary (_, _, _, a, b) -> [ a; b ]
  | Unary (_, _, _, a) -> [ a ]
  | Mad (_, _, a, b, c) -> [ a; b; c ]
  | Setp (_, _, _, a, b) -> [ a; b ]
  | Selp (_, _, a, b, p) -> [ a; b; Reg p ]
  | Mov (_, _, a) -> [ a ]
  | Cvt (_, _, _, a) -> [ a ]
  | Ld (_, _, _, { base = Areg r; _ }) -> [ Reg r ]
  | Ld _ -> []
  | St (_, _, { base = Areg r; _ }, v) -> [ Reg r; v ]
  | St (_, _, _, v) -> [ v ]
  | Atom (_, _, _, _, { base; _ }, b, c) ->
      let base = match base with Areg r -> [ Reg r ] | Avar _ -> [] in
      base @ (b :: Option.to_list c)
  | Call (_, _, args) -> args
  | Bra _ | Bar | Ret | Exit -> []

(** Registers read by an instruction under a guard (the guard register is a
    use as well). *)
let used_regs guard i =
  let of_operand = function Reg r -> [ r ] | _ -> [] in
  let g = match guard with Always -> [] | If r | Ifnot r -> [ r ] in
  g @ List.concat_map of_operand (used_operands i)
