(** Pretty-printer for the PTX subset.  [Parser.parse_module (to_string m)]
    round-trips (tested by property tests). *)

open Ast

let dtype_str = function
  | Pred -> ".pred"
  | B8 -> ".b8"
  | B16 -> ".b16"
  | B32 -> ".b32"
  | B64 -> ".b64"
  | U8 -> ".u8"
  | U16 -> ".u16"
  | U32 -> ".u32"
  | U64 -> ".u64"
  | S8 -> ".s8"
  | S16 -> ".s16"
  | S32 -> ".s32"
  | S64 -> ".s64"
  | F32 -> ".f32"
  | F64 -> ".f64"

let space_str = function
  | Param -> "param"
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"
  | Const -> "const"

let dim_str = function X -> "x" | Y -> "y" | Z -> "z"

let special_str = function
  | Tid d -> "%tid." ^ dim_str d
  | Ntid d -> "%ntid." ^ dim_str d
  | Ctaid d -> "%ctaid." ^ dim_str d
  | Nctaid d -> "%nctaid." ^ dim_str d
  | Laneid -> "%laneid"
  | Warpsize -> "%warpsize"

(* Floats are printed as PTX hex literals so that round-tripping is exact. *)
let operand_str = function
  | Reg r -> r
  | Imm_int i -> Int64.to_string i
  | Imm_float f -> Fmt.str "0d%016Lx" (Int64.bits_of_float f)
  | Special s -> special_str s
  | Var v -> v

let address_str { base; offset } =
  let b = match base with Areg r -> r | Avar v -> v in
  if offset = 0 then Fmt.str "[%s]" b
  else if offset > 0 then Fmt.str "[%s+%d]" b offset
  else Fmt.str "[%s%d]" b offset

let binop_str = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul_lo -> "mul.lo"
  | Mul_hi -> "mul.hi"
  | Mul_wide -> "mul.wide"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let unop_str = function
  | Neg -> "neg"
  | Not -> "not"
  | Abs -> "abs"
  | Sqrt -> "sqrt.approx"
  | Rsqrt -> "rsqrt.approx"
  | Rcp -> "rcp.approx"
  | Sin -> "sin.approx"
  | Cos -> "cos.approx"
  | Ex2 -> "ex2.approx"
  | Lg2 -> "lg2.approx"

let cmp_str = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let atomop_str = function
  | Atom_add -> "add"
  | Atom_min -> "min"
  | Atom_max -> "max"
  | Atom_exch -> "exch"
  | Atom_cas -> "cas"

let instr_str = function
  | Binary (op, ty, d, a, b) ->
      (* mul.lo is only meaningful for integers; floats print plain "mul". *)
      let name =
        match (op, ty) with
        | Mul_lo, (F32 | F64) -> "mul"
        | _ -> binop_str op
      in
      Fmt.str "%s%s %s, %s, %s" name (dtype_str ty) d (operand_str a) (operand_str b)
  | Unary (op, ty, d, a) ->
      Fmt.str "%s%s %s, %s" (unop_str op) (dtype_str ty) d (operand_str a)
  | Mad (ty, d, a, b, c) ->
      let name = if is_float ty then "fma.rn" else "mad.lo" in
      Fmt.str "%s%s %s, %s, %s, %s" name (dtype_str ty) d (operand_str a)
        (operand_str b) (operand_str c)
  | Setp (cmp, ty, d, a, b) ->
      Fmt.str "setp.%s%s %s, %s, %s" (cmp_str cmp) (dtype_str ty) d (operand_str a)
        (operand_str b)
  | Selp (ty, d, a, b, p) ->
      Fmt.str "selp%s %s, %s, %s, %s" (dtype_str ty) d (operand_str a) (operand_str b) p
  | Mov (ty, d, a) -> Fmt.str "mov%s %s, %s" (dtype_str ty) d (operand_str a)
  | Cvt (dty, sty, d, a) ->
      let rn = if is_float dty || is_float sty then ".rn" else "" in
      Fmt.str "cvt%s%s%s %s, %s" rn (dtype_str dty) (dtype_str sty) d (operand_str a)
  | Ld (sp, ty, d, addr) ->
      Fmt.str "ld.%s%s %s, %s" (space_str sp) (dtype_str ty) d (address_str addr)
  | St (sp, ty, addr, v) ->
      Fmt.str "st.%s%s %s, %s" (space_str sp) (dtype_str ty) (address_str addr)
        (operand_str v)
  | Atom (sp, op, ty, d, addr, b, c) ->
      let c = match c with None -> "" | Some c -> ", " ^ operand_str c in
      Fmt.str "atom.%s.%s%s %s, %s, %s%s" (space_str sp) (atomop_str op) (dtype_str ty)
        d (address_str addr) (operand_str b) c
  | Bra t -> Fmt.str "bra %s" t
  | Bar -> "bar.sync 0"
  | Call (rets, f, args) ->
      let rets = match rets with [] -> "" | rs -> Fmt.str "(%s), " (String.concat ", " rs) in
      let args =
        match args with
        | [] -> ""
        | a -> Fmt.str ", (%s)" (String.concat ", " (List.map operand_str a))
      in
      Fmt.str "call %s%s%s" rets f args
  | Ret -> "ret"
  | Exit -> "exit"

let guard_str = function
  | Always -> ""
  | If r -> Fmt.str "@%s " r
  | Ifnot r -> Fmt.str "@!%s " r

let stmt_str = function
  | Label l -> Fmt.str "%s:" l
  | Inst (g, i, _) -> Fmt.str "\t%s%s;" (guard_str g) (instr_str i)

let kernel_to_string k =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf s) fmt in
  pf ".entry %s (" k.k_name;
  List.iteri
    (fun i p ->
      pf "%s.param %s %s" (if i = 0 then "" else ", ") (dtype_str p.p_ty) p.p_name)
    k.k_params;
  pf ")\n{\n";
  (* Group consecutive same-type registers so declaration order (and thus
     structural equality) survives a print/parse round-trip. *)
  let rec reg_groups = function
    | [] -> []
    | (r, ty) :: rest ->
        let same, rest' =
          let rec take acc = function
            | (r', ty') :: tl when equal_dtype ty ty' -> take (r' :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          take [ r ] rest
        in
        (ty, same) :: reg_groups rest'
  in
  List.iter
    (fun (ty, regs) -> pf "\t.reg %s %s;\n" (dtype_str ty) (String.concat ", " regs))
    (reg_groups k.k_regs);
  List.iter
    (fun a -> pf "\t.shared %s %s[%d];\n" (dtype_str a.a_ty) a.a_name a.a_elems)
    k.k_shared;
  List.iter
    (fun a -> pf "\t.local %s %s[%d];\n" (dtype_str a.a_ty) a.a_name a.a_elems)
    k.k_local;
  List.iter (fun s -> pf "%s\n" (stmt_str s)) k.k_body;
  pf "}\n";
  Buffer.contents buf

let const_to_string c =
  let d = c.c_decl in
  let init =
    match c.c_init with
    | None -> ""
    | Some (Init_int is) ->
        Fmt.str " = { %s }" (String.concat ", " (List.map Int64.to_string is))
    | Some (Init_float fs) ->
        Fmt.str " = { %s }"
          (String.concat ", "
             (List.map (fun f -> Fmt.str "0d%016Lx" (Int64.bits_of_float f)) fs))
  in
  Fmt.str ".const %s %s[%d]%s;\n" (dtype_str d.a_ty) d.a_name d.a_elems init

let func_to_string (f : func_decl) =
  let buf = Buffer.create 512 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf s) fmt in
  pf ".func ";
  (match f.f_rets with
  | [] -> ()
  | rs ->
      pf "(%s) "
        (String.concat ", " (List.map (fun (r, ty) -> Fmt.str ".reg %s %s" (dtype_str ty) r) rs)));
  pf "%s (%s)\n{\n" f.f_name
    (String.concat ", "
       (List.map (fun (r, ty) -> Fmt.str ".reg %s %s" (dtype_str ty) r) f.f_params));
  List.iter
    (fun (r, ty) -> pf "\t.reg %s %s;\n" (dtype_str ty) r)
    f.f_regs;
  List.iter (fun s -> pf "%s\n" (stmt_str s)) f.f_body;
  pf "}\n";
  Buffer.contents buf

let to_string m =
  String.concat "\n"
    (List.map const_to_string m.m_consts
    @ List.map func_to_string m.m_funcs
    @ List.map kernel_to_string m.m_kernels)
