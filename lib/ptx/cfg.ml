(** Control-flow graph over PTX kernels.

    Basic blocks end at labels, branches, barriers and thread exits.
    Barriers terminate a block (the paper's translation cache "splits basic
    blocks at barriers") so that the barrier's continuation is a legal warp
    entry point. *)

open Ast

type terminator =
  | Br of string  (** unconditional branch *)
  | Cbr of reg * bool * string * string
      (** [Cbr (p, sense, taken, fallthrough)]: branch to [taken] when
          predicate [p] equals [sense]. *)
  | Bar_then of string  (** CTA barrier, then continue at the label *)
  | Exit_term  (** thread termination ([ret]/[exit]) *)

type block = {
  label : string;
  insts : (guard * instr * int) list;
      (** non-control-flow instructions with their source line (0 =
          synthetic) *)
  term : terminator;
}

type t = {
  entry : string;
  blocks : block list;  (** in layout order; entry first *)
}

let successors b =
  match b.term with
  | Br t -> [ t ]
  | Cbr (_, _, taken, ft) -> [ taken; ft ]
  | Bar_then t -> [ t ]
  | Exit_term -> []

let find_block cfg l = List.find (fun b -> String.equal b.label l) cfg.blocks

let predecessors cfg =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.label []) cfg.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt preds s) ~default:[] in
          Hashtbl.replace preds s (b.label :: cur))
        (successors b))
    cfg.blocks;
  preds

exception Malformed of string

(* A synthetic always-exit block referenced by guarded ret/exit. *)
let exit_stub_label = "$__exit_stub"

(** Build a CFG from a kernel body.  Synthesizes labels for implicit blocks
    (fallthrough after a conditional branch, barrier continuations) and a
    stub exit block for guarded [ret]/[exit]. *)
let of_kernel (k : kernel) : t =
  let existing = Hashtbl.create 16 in
  List.iter
    (function Label l -> Hashtbl.replace existing l () | Inst _ -> ())
    k.k_body;
  let fresh =
    let n = ref 0 in
    fun () ->
      incr n;
      let rec pick () =
        let l = Fmt.str "$__bb%d" !n in
        if Hashtbl.mem existing l then (
          incr n;
          pick ())
        else l
      in
      pick ()
  in
  let emitted = Hashtbl.create 16 in
  let out = ref [] in
  let needs_exit_stub = ref false in
  let emit label insts term =
    if Hashtbl.mem emitted label then
      raise (Malformed (Fmt.str "duplicate block label %s" label));
    Hashtbl.add emitted label ();
    out := { label; insts = List.rev insts; term } :: !out
  in
  (* Label to resume at after a terminator: reuse an immediately following
     source label, otherwise synthesize one. *)
  let next_label rest =
    match rest with Label l :: _ -> l | _ -> fresh ()
  in
  let rec go label insts stmts =
    match stmts with
    | [] -> emit label insts Exit_term
    | Label l :: rest ->
        if String.equal l label && insts = [] && not (Hashtbl.mem emitted l) then
          (* start of the current (not yet emitted) block *)
          go label insts rest
        else begin
          emit label insts (Br l);
          go l [] rest
        end
    | Inst (Always, Bra t, _) :: rest ->
        let next = next_label rest in
        emit label insts (Br t);
        cont ~referenced:false next rest
    | Inst (If p, Bra t, _) :: rest ->
        let next = next_label rest in
        emit label insts (Cbr (p, true, t, next));
        cont ~referenced:true next rest
    | Inst (Ifnot p, Bra t, _) :: rest ->
        let next = next_label rest in
        emit label insts (Cbr (p, false, t, next));
        cont ~referenced:true next rest
    | Inst (Always, Bar, _) :: rest ->
        let next = next_label rest in
        emit label insts (Bar_then next);
        cont ~referenced:true next rest
    | Inst ((If _ | Ifnot _), Bar, _) :: _ -> raise (Malformed "guarded barrier")
    | Inst (Always, (Ret | Exit), _) :: rest ->
        let next = next_label rest in
        emit label insts Exit_term;
        cont ~referenced:false next rest
    | Inst (If p, (Ret | Exit), _) :: rest ->
        needs_exit_stub := true;
        let next = next_label rest in
        emit label insts (Cbr (p, true, exit_stub_label, next));
        cont ~referenced:true next rest
    | Inst (Ifnot p, (Ret | Exit), _) :: rest ->
        needs_exit_stub := true;
        let next = next_label rest in
        emit label insts (Cbr (p, false, exit_stub_label, next));
        cont ~referenced:true next rest
    | Inst (g, i, line) :: rest -> go label ((g, i, line) :: insts) rest
  and cont ~referenced next rest =
    (* A synthesized label after a non-branching terminator with nothing
       following would be an unreachable empty block: skip it unless some
       terminator references it. *)
    match rest with
    | [] -> if referenced then emit next [] Exit_term
    | _ -> go next [] rest
  in
  let entry_label = match k.k_body with Label l :: _ -> l | _ -> "$__entry" in
  go entry_label [] k.k_body;
  if !needs_exit_stub then emit exit_stub_label [] Exit_term;
  let blocks = List.rev !out in
  (* Validate: all branch targets exist. *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem emitted s) then
            raise (Malformed (Fmt.str "block %s branches to unknown %s" b.label s)))
        (successors b))
    blocks;
  { entry = entry_label; blocks }

(** Reachable blocks from the entry, in reverse post-order. *)
let reverse_postorder (cfg : t) : block list =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      let b = find_block cfg l in
      List.iter dfs (successors b);
      order := b :: !order
    end
  in
  dfs cfg.entry;
  !order

(** Rebuild a kernel body from a CFG (used after PTX→PTX transformations).
    Branches to the block laid out immediately after are elided, so
    [of_kernel (to_body cfg)] reproduces the block structure. *)
let to_body (cfg : t) : stmt list =
  let rec go = function
    | [] -> []
    | b :: rest ->
        let next = match rest with nb :: _ -> Some nb.label | [] -> None in
        let falls_to t = Some t = next in
        let tail =
          match b.term with
          | Br t -> if falls_to t then [] else [ Inst (Always, Bra t, 0) ]
          | Cbr (p, sense, taken, ft) ->
              let g = if sense then If p else Ifnot p in
              Inst (g, Bra taken, 0)
              :: (if falls_to ft then [] else [ Inst (Always, Bra ft, 0) ])
          | Bar_then t ->
              Inst (Always, Bar, 0)
              :: (if falls_to t then [] else [ Inst (Always, Bra t, 0) ])
          | Exit_term -> [ Inst (Always, Exit, 0) ]
        in
        (Label b.label :: List.map (fun (g, i, line) -> Inst (g, i, line)) b.insts)
        @ tail @ go rest
  in
  go cfg.blocks

let pp fmt (cfg : t) =
  Fmt.pf fmt "entry: %s@." cfg.entry;
  List.iter
    (fun b ->
      Fmt.pf fmt "%s:@." b.label;
      List.iter
        (fun (g, i, _) ->
          Fmt.pf fmt "  %s%s@." (Printer.guard_str g) (Printer.instr_str i))
        b.insts;
      let t =
        match b.term with
        | Br t -> "br " ^ t
        | Cbr (p, s, t, f) -> Fmt.str "cbr %s=%b ? %s : %s" p s t f
        | Bar_then t -> "bar -> " ^ t
        | Exit_term -> "exit"
      in
      Fmt.pf fmt "  %s@." t)
    cfg.blocks
