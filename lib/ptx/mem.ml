(** Byte-addressed little-endian memory segments.

    One segment per address-space instance: the device global space, each
    CTA's shared space, each thread's local space, the per-launch parameter
    block and the module constant bank all use this representation. *)

type t = { bytes : Bytes.t; name : string }

(** A faulting access, with the segment, address and width it targeted.
    The payload is structured ({!Vekt_error.access}) so upper layers can
    attach thread/CTA context instead of concatenating strings; the
    [space] field starts as the segment name and is refined where the
    PTX address space is known. *)
exception Fault of Vekt_error.access

let fault ~op t addr width =
  raise
    (Fault
       {
         Vekt_error.segment = t.name;
         space = t.name;
         addr;
         width;
         size = Bytes.length t.bytes;
         op;
       })

let create ?(name = "mem") size =
  if size < 0 then invalid_arg "Mem.create: negative size";
  { bytes = Bytes.make size '\000'; name }

let of_bytes ?(name = "mem") bytes = { bytes; name }
let size t = Bytes.length t.bytes
let bytes t = t.bytes

(** Serializable snapshot of the segment's contents.  [live] bounds the
    image to the segment's used prefix (e.g. a bump allocator's
    watermark) so a sparsely-used large segment doesn't serialize as
    gigabytes of zeros; defaults to the whole segment. *)
let image ?live t : Bytes.t =
  let n =
    match live with
    | None -> Bytes.length t.bytes
    | Some l -> max 0 (min l (Bytes.length t.bytes))
  in
  Bytes.sub t.bytes 0 n

(** Restore the segment from an {!image}: the image prefix is copied in
    and the remainder zeroed (everything past a [~live] watermark was
    zero when the image was taken). *)
let load_image t (img : Bytes.t) =
  let n = Bytes.length img in
  if n > Bytes.length t.bytes then
    invalid_arg
      (Fmt.str "Mem.load_image: %d-byte image exceeds %d-byte segment %s" n
         (Bytes.length t.bytes) t.name);
  Bytes.blit img 0 t.bytes 0 n;
  Bytes.fill t.bytes n (Bytes.length t.bytes - n) '\000'

let check ~op t addr width =
  if addr < 0 || addr + width > Bytes.length t.bytes then fault ~op t addr width

(** Load [size_of ty] bytes at [addr] as a value of type [ty]. *)
let load t (ty : Ast.dtype) addr : Scalar_ops.value =
  let width = Ast.size_of ty in
  check ~op:"load" t addr width;
  let bits =
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get t.bytes addr))
    | 2 -> Int64.of_int (Bytes.get_uint16_le t.bytes addr)
    | 4 -> Int64.of_int32 (Bytes.get_int32_le t.bytes addr)
    | 8 -> Bytes.get_int64_le t.bytes addr
    | _ -> fault ~op:"load of unsupported width" t addr width
  in
  Scalar_ops.of_bits ty bits

let store t (ty : Ast.dtype) addr (v : Scalar_ops.value) =
  let width = Ast.size_of ty in
  check ~op:"store" t addr width;
  let bits = Scalar_ops.to_bits ty v in
  match width with
  | 1 -> Bytes.set_uint8 t.bytes addr (Int64.to_int (Int64.logand bits 0xffL))
  | 2 -> Bytes.set_uint16_le t.bytes addr (Int64.to_int (Int64.logand bits 0xffffL))
  | 4 -> Bytes.set_int32_le t.bytes addr (Int64.to_int32 bits)
  | 8 -> Bytes.set_int64_le t.bytes addr bits
  | _ -> fault ~op:"store of unsupported width" t addr width

(** Typed array helpers used by host drivers and tests. *)

let write_f32s t ~at xs =
  List.iteri (fun i x -> store t Ast.F32 (at + (4 * i)) (Scalar_ops.F x)) xs

let write_i32s t ~at xs =
  List.iteri (fun i x -> store t Ast.S32 (at + (4 * i)) (Scalar_ops.I (Int64.of_int x))) xs

(* A typed read observing the wrong value class is a type-confused
   access (e.g. an integer bit pattern where a float was expected): a
   reportable trap, not an [assert false] crash. *)
let type_confusion ~what t at width =
  fault ~op:(Fmt.str "typed read of %s found type-confused value" what) t at
    width

let read_f32 t at =
  match load t Ast.F32 at with
  | Scalar_ops.F f -> f
  | _ -> type_confusion ~what:"f32" t at 4

let read_f32s t ~at n = List.init n (fun i -> read_f32 t (at + (4 * i)))

let read_i32 t at =
  match load t Ast.S32 at with
  | Scalar_ops.I v -> Int64.to_int v
  | _ -> type_confusion ~what:"i32" t at 4

let read_i32s t ~at n = List.init n (fun i -> read_i32 t (at + (4 * i)))

let read_i64 t at =
  match load t Ast.S64 at with
  | Scalar_ops.I v -> v
  | _ -> type_confusion ~what:"i64" t at 8

let read_f64 t at =
  match load t Ast.F64 at with
  | Scalar_ops.F f -> f
  | _ -> type_confusion ~what:"f64" t at 8

let copy t = { t with bytes = Bytes.copy t.bytes }

let equal a b = Bytes.equal a.bytes b.bytes

(** Layout of named arrays within one segment: 16-byte alignment matches
    PTX's default for arrays. *)
let layout (decls : Ast.array_decl list) : (string * int) list * int =
  let align16 n = (n + 15) / 16 * 16 in
  let rec go off = function
    | [] -> ([], off)
    | (d : Ast.array_decl) :: rest ->
        let off = align16 off in
        let size = Ast.size_of d.a_ty * d.a_elems in
        let tail, total = go (off + size) rest in
        ((d.a_name, off) :: tail, total)
  in
  go 0 decls
