(** The pluggable durable-I/O layer (DESIGN.md §3.10).

    Every mutation the daemon makes to durable state — checkpoint
    snapshots, job manifests, the tenant-tally journal, sweeps of all
    of the above — and every byte it sends down a client socket goes
    through the [impl] record below.  The default implementation is
    the real syscalls (with real [fsync]s); the chaos engine installs
    {!Injector} instead, which counts the same calls as I/O boundaries
    and simulates a process death at a chosen one.

    Reads are deliberately {e not} part of the layer: a crash cannot
    corrupt state through a read, and keeping the surface small keeps
    the boundary enumeration meaningful.

    The installed implementation is consulted at call time through
    {!current}, so a recovery server created after {!reset} runs on
    real syscalls even though the dead predecessor ran under the
    injector.  Installation is process-global and not synchronised:
    the chaos harness drives everything single-threaded (the daemon
    under test uses [Queue.step], never a scheduler domain). *)

(** Simulated process death, raised by the chaos injector at the
    drilled boundary.  Never raised by the real implementation. *)
exception Crash

type impl = {
  write_file : string -> string -> unit;
      (** create/truncate [path] and write the whole payload *)
  fsync_file : string -> unit;  (** flush file contents to disk *)
  rename : string -> string -> unit;
  fsync_dir : string -> unit;
      (** flush directory entries — what makes a rename durable *)
  remove : string -> unit;
  mkdir : string -> int -> unit;
  rmdir : string -> unit;
  send : Unix.file_descr -> string -> int -> int -> int;
      (** [send fd s off len]: one socket write attempt; may be short *)
}

(* ---- the real implementation ---- *)

let real_write_file path data =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length data in
      let rec go off =
        if off < n then
          match Unix.write_substring fd data off (n - off) with
          | written -> go (off + written)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      in
      go 0)

(* Some filesystems refuse fsync on directories (or on read-only fds);
   treat "the kernel cannot do it here" as a no-op rather than an
   error — the call is the durability contract we can keep. *)
let real_fsync path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let real : impl =
  {
    write_file = real_write_file;
    fsync_file = real_fsync;
    rename = Unix.rename;
    fsync_dir = real_fsync;
    remove = Unix.unlink;
    mkdir = Unix.mkdir;
    rmdir = Unix.rmdir;
    send = Unix.write_substring;
  }

let current : impl ref = ref real
let install (i : impl) = current := i
let reset () = current := real

let with_impl (i : impl) f =
  let prev = !current in
  current := i;
  Fun.protect ~finally:(fun () -> current := prev) f

(* ---- call-time dispatch ---- *)

let write_file path data = !current.write_file path data
let fsync_file path = !current.fsync_file path
let rename src dst = !current.rename src dst
let fsync_dir dir = !current.fsync_dir dir
let remove path = !current.remove path
let mkdir path perms = !current.mkdir path perms
let rmdir path = !current.rmdir path
let send fd s off len = !current.send fd s off len

(** Process-wide durability switch.  [true] (the default) is the full
    protocol below; [false] reverts {!save_atomic} to the fsync-less
    tmp+rename the daemon shipped with before the chaos engine — kept
    so the regression test (and [vektc chaos --legacy-io]) can
    demonstrate the lost-rename bug the full protocol fixes. *)
let durability = ref true

(** Publish [data] at [path] atomically {e and} durably:

      write [path].tmp → fsync it → rename over [path] → fsync the
      parent directory.

    The first fsync orders the payload before the rename (no window
    where the rename survives a crash but the contents don't); the
    directory fsync makes the rename itself durable (without it a
    crash after [rename] returns can still roll the directory entry
    back to the old file — the exact bug the chaos engine surfaced in
    every tmp+rename path we had). *)
let save_atomic ?durable ~path data =
  let durable = match durable with Some d -> d | None -> !durability in
  let tmp = path ^ ".tmp" in
  write_file tmp data;
  if durable then fsync_file tmp;
  rename tmp path;
  if durable then fsync_dir (Filename.dirname path)
