(** Seeded deterministic fault injection over {!Io} (DESIGN.md §3.10).

    An injector impersonates the filesystem and socket for one run of
    a workload.  In [Count] mode it behaves exactly like the real
    implementation but numbers every mutating call — the run's
    {e I/O boundaries}.  In [Crash] mode it replays the same run and
    simulates a process death at one chosen boundary, in one chosen
    {!flavor}:

    - [Before]  — die before the call takes effect;
    - [Torn]    — a write lands as a strict prefix, then death
                  (partial page write);
    - [Bitflip] — a write lands whole but with one bit flipped near
                  the tail, then death (torn sector / cheap firmware);
    - [After]   — the call completes in-process, then death before
                  anything further is flushed.

    Death is not just an exception: the injector models the volatile
    page cache.  Every un-fsynced effect (a written file before
    [fsync_file], a rename before the parent's [fsync_dir]) sits in an
    undo journal, and at the crash instant the journal is rolled back
    {e worst-case} — un-fsynced file contents may vanish, survive
    truncated, or survive bit-flipped; un-fsynced renames are undone
    and the old directory entry restored.  What remains on disk is a
    state the kernel was allowed to leave behind.  After the crash
    every further call on the same injector is absorbed as a silent
    no-op: the dead process can keep executing OCaml code (the queue
    wraps exceptions), but it can no longer touch the disk.

    Simplifications, on the pessimistic side where it matters:
    [remove]/[mkdir]/[rmdir] are treated as immediately durable, and a
    crash-rollback choice is made per-file rather than per-page.  All
    choices are drawn from a seed mixed with the boundary index, so a
    (seed, boundary, flavor) triple replays bit-identically. *)

type flavor = Before | Torn | Bitflip | After

let flavor_name = function
  | Before -> "before"
  | Torn -> "torn"
  | Bitflip -> "bitflip"
  | After -> "after"

let flavor_of_string = function
  | "before" -> Some Before
  | "torn" -> Some Torn
  | "bitflip" -> Some Bitflip
  | "after" -> Some After
  | _ -> None

(** Flavors that make sense for a given op: only payload-carrying
    writes can land torn or bit-flipped. *)
let flavors_for_write = [ Before; Torn; Bitflip; After ]
let flavors_for_other = [ Before; After ]

type plan = Count | Crash of { boundary : int; flavor : flavor }

(* Volatile (un-fsynced) effects, newest first. *)
type effect_ =
  | Created of { path : string; prior : string option }
      (** [write_file] over [prior] (None = file did not exist) *)
  | Renamed of { src : string; dst : string; prior_dst : string option }

type t = {
  seed : int;
  plan : plan;
  root : string;  (** prefix stripped from labels, for stable traces *)
  mutable rng : int;
  mutable ops : int;  (** boundaries seen so far *)
  mutable crashed : bool;
  mutable labels : string list;  (** op trace, newest first *)
  mutable journal : effect_ list;  (** volatile effects, newest first *)
}

let create ?(root = "") ~seed ~plan () : t =
  let salt =
    match plan with
    | Count -> 0
    | Crash { boundary; flavor } ->
        (boundary * 4)
        + (match flavor with Before -> 0 | Torn -> 1 | Bitflip -> 2 | After -> 3)
  in
  {
    seed;
    plan;
    root;
    rng = (seed lxor (salt * 0x9e3779b9) lxor 0x2545f491) lor 1;
    ops = 0;
    crashed = false;
    labels = [];
    journal = [];
  }

let ops t = t.ops
let crashed t = t.crashed
let trace t = List.rev t.labels

let rand t bound =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  if bound <= 1 then 0 else (x land max_int) mod bound

let rel t path =
  let n = String.length t.root in
  if n > 0 && String.length path >= n && String.sub path 0 n = t.root then
    let rest = String.sub path n (String.length path - n) in
    if String.length rest > 0 && rest.[0] = '/' then
      String.sub rest 1 (String.length rest - 1)
    else rest
  else path

(* ---- raw helpers (never routed through Io: the injector IS the fs) ---- *)

let read_opt path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let raw_write path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let flip_tail t data =
  let n = String.length data in
  if n = 0 then data
  else begin
    let window = max 1 (min n (max 1 (n / 4))) in
    let pos = n - 1 - rand t window in
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl rand t 8)));
    Bytes.to_string b
  end

(* Worst-case the undo journal: newest effect first, exactly the order
   a real page-cache loss would unwind.  Un-fsynced renames are undone
   (old entry restored); un-fsynced creations may vanish, survive as a
   prefix, or survive bit-flipped. *)
let rollback t =
  List.iter
    (function
      | Renamed { src; dst; prior_dst } ->
          (if Sys.file_exists dst then
             try Unix.rename dst src with Unix.Unix_error _ | Sys_error _ -> ());
          Option.iter (raw_write dst) prior_dst
      | Created { path; prior } -> (
          match prior with
          | Some data -> raw_write path data
          | None ->
              if Sys.file_exists path then (
                match rand t 3 with
                | 0 -> ( try Sys.remove path with Sys_error _ -> ())
                | 1 ->
                    let data =
                      Option.value (read_opt path) ~default:""
                    in
                    raw_write path
                      (String.sub data 0 (rand t (String.length data)))
                | _ ->
                    let data = Option.value (read_opt path) ~default:"" in
                    raw_write path (flip_tail t data))))
    t.journal;
  t.journal <- []

let crash t =
  rollback t;
  t.crashed <- true;
  raise Io.Crash

(* Journal maintenance on the durability calls. *)
let drop_created t path =
  t.journal <-
    List.filter
      (function Created { path = p; _ } -> p <> path | Renamed _ -> true)
      t.journal

let drop_renames_under t dir =
  t.journal <-
    List.filter
      (function
        | Renamed { dst; _ } -> Filename.dirname dst <> dir
        | Created _ -> true)
      t.journal

let drop_path t path =
  t.journal <-
    List.filter
      (function
        | Created { path = p; _ } -> p <> path
        | Renamed { dst; _ } -> dst <> path)
      t.journal

(* The gate every op goes through: absorb when dead, count the
   boundary, fire the drill when this is the one.  [full] applies the
   op for real (recording volatility); [partial] applies the torn /
   bit-flipped variant of the trigger and must leave its damage
   durable (it IS the post-crash state). *)
let op (type a) t ~label ~(absorbed : a) ~(full : unit -> a)
    ~(partial : flavor -> unit) : a =
  if t.crashed then absorbed
  else begin
    t.labels <- label :: t.labels;
    let here = t.ops in
    t.ops <- here + 1;
    match t.plan with
    | Crash { boundary; flavor } when boundary = here ->
        (match flavor with
        | Before -> ()
        | Torn | Bitflip -> partial flavor
        | After -> ignore (full ()));
        crash t
    | _ -> full ()
  end

(* ---- the impersonated impl ---- *)

let impl (t : t) : Io.impl =
  let write_file path data =
    op t
      ~label:(Fmt.str "write %s (%d B)" (rel t path) (String.length data))
      ~absorbed:()
      ~full:(fun () ->
        let prior = read_opt path in
        raw_write path data;
        t.journal <- Created { path; prior } :: t.journal)
      ~partial:(fun flavor ->
        (* durable damage: deliberately not journalled *)
        match flavor with
        | Torn -> raw_write path (String.sub data 0 (rand t (String.length data)))
        | _ -> raw_write path (flip_tail t data))
  in
  let fsync_file path =
    op t
      ~label:(Fmt.str "fsync %s" (rel t path))
      ~absorbed:()
      ~full:(fun () -> drop_created t path)
      ~partial:(fun _ -> ())
  in
  let rename src dst =
    op t
      ~label:(Fmt.str "rename %s -> %s" (rel t src) (rel t dst))
      ~absorbed:()
      ~full:(fun () ->
        let prior_dst = read_opt dst in
        Unix.rename src dst;
        t.journal <- Renamed { src; dst; prior_dst } :: t.journal)
      ~partial:(fun _ -> ())
  in
  let fsync_dir dir =
    op t
      ~label:(Fmt.str "fsyncdir %s" (rel t dir))
      ~absorbed:()
      ~full:(fun () -> drop_renames_under t dir)
      ~partial:(fun _ -> ())
  in
  let remove path =
    op t
      ~label:(Fmt.str "remove %s" (rel t path))
      ~absorbed:()
      ~full:(fun () ->
        (* treated as immediately durable; whatever volatility the
           path carried is moot once it is gone in both worlds *)
        drop_path t path;
        Unix.unlink path)
      ~partial:(fun _ -> ())
  in
  let mkdir path perms =
    op t
      ~label:(Fmt.str "mkdir %s" (rel t path))
      ~absorbed:()
      ~full:(fun () -> Unix.mkdir path perms)
      ~partial:(fun _ -> ())
  in
  let rmdir path =
    op t
      ~label:(Fmt.str "rmdir %s" (rel t path))
      ~absorbed:()
      ~full:(fun () -> Unix.rmdir path)
      ~partial:(fun _ -> ())
  in
  let send fd s off len =
    op t
      ~label:(Fmt.str "send %d B" len)
      ~absorbed:len (* the dead process "sends" into the void *)
      ~full:(fun () -> Unix.write_substring fd s off len)
      ~partial:(fun _ ->
        (* mid-response drop: a strict prefix reaches the peer *)
        ignore (Unix.write_substring fd s off (rand t len)))
  in
  { Io.write_file; fsync_file; rename; fsync_dir; remove; mkdir; rmdir; send }
