(** The scripted multi-tenant workload the chaos engine drills
    (DESIGN.md §3.10).

    A script is a list of protocol-level steps against one daemon —
    open sessions for several tenants, load a module, submit launches,
    pump the admission queue, preempt, close sessions.  The harness
    runs the same script three ways: once uninterrupted to record the
    expected world (the {e baseline}), once per enumerated I/O
    boundary with a simulated crash there, and once per surviving
    candidate while a failing script is being minimized.  Steps are
    JSON round-trippable so minimized failures can be written as
    replayable repro files. *)

module J = Vekt_server.Jsonx

type step =
  | Open of { sid : string; tenant : string }
      (** open a session; [sid] is the script-local handle *)
  | Load of { sid : string }  (** load the workload module into [sid] *)
  | Submit of { sid : string; job : string }
      (** submit one launch, labelled [job] (labels are unique) *)
  | Pump of int  (** drive up to [n] admission-queue steps *)
  | Preempt of { job : string }  (** request preemption at a safe point *)
  | Close of { sid : string }  (** close the session, archiving tallies *)

let step_name = function
  | Open { sid; tenant } -> Fmt.str "open %s as %s" sid tenant
  | Load { sid } -> Fmt.str "load %s" sid
  | Submit { sid; job } -> Fmt.str "submit %s on %s" job sid
  | Pump n -> Fmt.str "pump %d" n
  | Preempt { job } -> Fmt.str "preempt %s" job
  | Close { sid } -> Fmt.str "close %s" sid

let step_json : step -> J.t = function
  | Open { sid; tenant } ->
      J.Obj [ ("op", J.Str "open"); ("sid", J.Str sid); ("tenant", J.Str tenant) ]
  | Load { sid } -> J.Obj [ ("op", J.Str "load"); ("sid", J.Str sid) ]
  | Submit { sid; job } ->
      J.Obj [ ("op", J.Str "submit"); ("sid", J.Str sid); ("job", J.Str job) ]
  | Pump n -> J.Obj [ ("op", J.Str "pump"); ("n", J.Int n) ]
  | Preempt { job } -> J.Obj [ ("op", J.Str "preempt"); ("job", J.Str job) ]
  | Close { sid } -> J.Obj [ ("op", J.Str "close"); ("sid", J.Str sid) ]

let step_of_json (j : J.t) : (step, string) result =
  let str k = J.str_mem k j in
  match J.str_mem "op" j with
  | Some "open" -> (
      match (str "sid", str "tenant") with
      | Some sid, Some tenant -> Ok (Open { sid; tenant })
      | _ -> Error "open: want sid, tenant")
  | Some "load" -> (
      match str "sid" with
      | Some sid -> Ok (Load { sid })
      | None -> Error "load: want sid")
  | Some "submit" -> (
      match (str "sid", str "job") with
      | Some sid, Some job -> Ok (Submit { sid; job })
      | _ -> Error "submit: want sid, job")
  | Some "pump" -> (
      match J.int_mem "n" j with
      | Some n -> Ok (Pump n)
      | None -> Error "pump: want n")
  | Some "preempt" -> (
      match str "job" with
      | Some job -> Ok (Preempt { job })
      | None -> Error "preempt: want job")
  | Some "close" -> (
      match str "sid" with
      | Some sid -> Ok (Close { sid })
      | None -> Error "close: want sid")
  | Some op -> Error ("unknown step op: " ^ op)
  | None -> Error "step without op"

(** The canonical streaming kernel, same source the server tests use. *)
let kernel_name = "vecadd"
let kernel_src = Vekt_workloads.W_vecadd.workload.Vekt_workloads.Workload.src

(** Per-job argument specs, derived from the job name so every job
    computes a distinct (but deterministic) result — cross-job output
    confusion after a crash cannot go unnoticed. *)
let args_for (job : string) : string list =
  let h = Hashtbl.hash job in
  let v i = ((h lsr (3 * i)) land 7) + i + 1 in
  [
    Fmt.str "f32s:%d,%d,%d,%d" (v 0) (v 1) (v 2) (v 3);
    Fmt.str "f32s:%d,%d,%d,%d" (v 4) (v 5) (v 6) (v 7);
    "zeros:16";
    "i32:4";
  ]

(** The default multi-tenant workload: two tenants sharing the engine,
    jobs submitted while others run, a mid-flight preemption (which
    writes a snapshot), a session closed mid-script (which rewrites
    the tally journal), and a final burst after the close.  Short
    enough to drill every boundary, broad enough to cross every
    persistence path: manifests, snapshots, the journal, and their
    sweeps. *)
let default : step list =
  [
    Open { sid = "a"; tenant = "alice" };
    Load { sid = "a" };
    Open { sid = "b"; tenant = "bob" };
    Load { sid = "b" };
    Submit { sid = "a"; job = "a1" };
    Submit { sid = "b"; job = "b1" };
    Preempt { job = "b1" };
    Pump 2;
    (* b1 snapshots and yields; a1 (or b1's resume) runs *)
    Submit { sid = "a"; job = "a2" };
    Pump 6;
    (* everything admitted so far runs to completion *)
    Close { sid = "a" };
    (* alice's tallies hit the journal *)
    Submit { sid = "b"; job = "b2" };
    Pump 4;
    Close { sid = "b" };
  ]
