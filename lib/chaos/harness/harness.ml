(** Crash-point enumeration over the daemon (DESIGN.md §3.10).

    The harness answers one question exhaustively: {e is there any
    instant at which this process can die and lose something it
    promised a client?}  It runs the scripted workload ({!Script})
    three ways on the same state directory:

    + a {b counting pass} under an {!Vekt_chaos.Injector} in [Count]
      mode — behaviourally identical to the real filesystem, but every
      mutating I/O call is numbered.  This same uninterrupted run
      records the {e baseline}: each job's expected output values and
      each closed tenant's archived launch tally.
    + one {b drill} per (boundary × flavor): the injector simulates a
      process death at that call — before it, after it, or with the
      write landing torn or bit-flipped — and worst-cases every
      un-fsynced effect.  The dead server is abandoned (its in-memory
      state frozen mid-flight, exactly as [kill -9] leaves it); a
      successor is created on the surviving directory with the real
      I/O implementation, recovery runs, and the invariants below are
      checked.
    + during {b minimization}, candidate sub-scripts of a failing
      schedule, mirroring the greedy delta-debugging of
      [lib/fuzz/shrink.ml].

    Invariants checked after every recovery:
    - {b no lost job}: every launch that was acknowledged to a client
      and not yet terminal when the process died is re-admitted by the
      successor — exactly once — and completes with the baseline's
      output values at the address the dead daemon handed the client;
    - {b no double launch}: no job label is re-admitted twice;
    - {b tally conservation}: a tenant whose session close completed
      before the crash shows exactly its archived launch count in the
      successor's [stats];
    - {b no leaks}: after the successor drains, nothing remains in the
      state directory but the journal; after {!Server.decommission},
      nothing at all.

    The harness drives the daemon in-process ([Server.handle] +
    [Queue.step], no domains, no sockets), so every drill is
    deterministic and replayable from a (seed, boundary, flavor,
    script) quadruple. *)

module Server = Vekt_server.Server
module Queue = Vekt_server.Queue
module J = Vekt_server.Jsonx
module Io = Vekt_chaos.Io
module Injector = Vekt_chaos.Injector

(* ---- local fs helpers (never routed through Io: the harness itself
   is not under test) ---- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* ---- the interpreted world: what a client of the dead daemon can
   legitimately know, plus the oracle's view of the queue ---- *)

type jobinfo = {
  j_name : string;
  j_sid : string;
  j_tenant : string;
  mutable j_id : int option;  (** server job id — Some iff acknowledged *)
  mutable j_out : int option;  (** output address from the ack *)
  mutable j_state : string;  (** queue state at the knowledge cutoff *)
  mutable j_values : J.t option;  (** outputs read back after completion *)
}

type world = {
  srv : Server.t;
  alive : unit -> bool;
  sessions : (string, int) Hashtbl.t;  (* sid -> session id *)
  tenants : (string, string) Hashtbl.t;  (* sid -> tenant *)
  modules : (string, int) Hashtbl.t;  (* sid -> module id *)
  jobs : (string, jobinfo) Hashtbl.t;  (* job name -> info *)
  mutable closed : string list;  (* sids whose Close completed pre-crash *)
}

exception Harness_bug of string

let handle w c fields = Server.handle w.srv (J.Obj (("cmd", J.Str c) :: fields))

let get_ok what (r : J.t) =
  if J.bool_mem "ok" r <> Some true then
    raise (Harness_bug (Fmt.str "%s: %s" what (J.to_string r)));
  r

let session_id w sid =
  match Hashtbl.find_opt w.sessions sid with
  | Some s -> s
  | None -> raise (Harness_bug ("unknown session handle " ^ sid))

(* Update the oracle's view: poll every acknowledged job and read back
   the outputs of freshly-completed ones.  Called between queue steps
   — one [Queue.step] runs exactly one job, so polling at every step
   boundary gives an exact knowledge cutoff when a crash hits. *)
let oracle_sweep w =
  Hashtbl.iter
    (fun _ ji ->
      match ji.j_id with
      | None -> ()
      | Some id -> (
          (match Queue.info (Server.queue w.srv) ~id with
          | Some i -> ji.j_state <- Queue.state_name i.Queue.i_state
          | None -> ());
          if ji.j_state = "done" && ji.j_values = None then
            match (Hashtbl.find_opt w.sessions ji.j_sid, ji.j_out) with
            | Some session, Some addr ->
                let r =
                  get_ok "read"
                    (handle w "read"
                       [
                         ("session", J.Int session);
                         ("addr", J.Int addr);
                         ("ty", J.Str "f32");
                         ("count", J.Int 4);
                       ])
                in
                ji.j_values <- J.mem "values" r
            | _ -> ()))
    w.jobs

(* After a crash, update job states (only) from the dead server's
   frozen queue — the kill -9 core dump.  A job whose terminal
   transition and the crash landed inside the same [Queue.step] (e.g.
   the drilled boundary was the job's own cleanup sweep) went terminal
   before the process died, so the successor is free to sweep it; the
   between-steps [oracle_sweep] cannot have seen that.  No protocol
   reads here: [Queue.info] takes only the queue lock, which a mid-run
   crash provably leaves unlocked, while [Server.handle] would touch
   server locks the crash may have poisoned. *)
let post_crash_states w =
  Hashtbl.iter
    (fun _ ji ->
      match ji.j_id with
      | None -> ()
      | Some id -> (
          match Queue.info (Server.queue w.srv) ~id with
          | Some i -> ji.j_state <- Queue.state_name i.Queue.i_state
          | None -> ()))
    w.jobs

let exec w (st : Script.step) =
  match st with
  | Script.Open { sid; tenant } ->
      let r =
        get_ok "open-session"
          (handle w "open-session" [ ("tenant", J.Str tenant) ])
      in
      Hashtbl.replace w.sessions sid (Option.get (J.int_mem "session" r));
      Hashtbl.replace w.tenants sid tenant
  | Script.Load { sid } ->
      let r =
        get_ok "load-module"
          (handle w "load-module"
             [
               ("session", J.Int (session_id w sid));
               ("src", J.Str Script.kernel_src);
               ( "config",
                 J.Obj
                   [
                     ("tiered", J.Bool true);
                     ("hot-threshold", J.Int 1);
                     ("workers", J.Int 1);
                     ("checkpoint-every", J.Int 2);
                   ] );
             ])
      in
      Hashtbl.replace w.modules sid (Option.get (J.int_mem "module" r))
  | Script.Submit { sid; job } ->
      let tenant =
        match Hashtbl.find_opt w.tenants sid with
        | Some t -> t
        | None -> raise (Harness_bug ("submit on unknown session " ^ sid))
      in
      let ji =
        {
          j_name = job;
          j_sid = sid;
          j_tenant = tenant;
          j_id = None;
          j_out = None;
          j_state = "unsubmitted";
          j_values = None;
        }
      in
      (* recorded before the request: a crash mid-submit leaves the
         job known but unacknowledged *)
      Hashtbl.replace w.jobs job ji;
      let mid =
        match Hashtbl.find_opt w.modules sid with
        | Some m -> m
        | None -> raise (Harness_bug ("submit before load on " ^ sid))
      in
      let r =
        get_ok "submit-launch"
          (handle w "submit-launch"
             [
               ("session", J.Int (session_id w sid));
               ("module", J.Int mid);
               ("kernel", J.Str Script.kernel_name);
               ("grid", J.Int 1);
               ("block", J.Int 4);
               ("label", J.Str job);
               ( "args",
                 J.List (List.map (fun s -> J.Str s) (Script.args_for job)) );
             ])
      in
      ji.j_id <- J.int_mem "job" r;
      ji.j_state <- "queued";
      (match J.list_mem "args" r with
      | Some [ _; _; J.Int addr; _ ] -> ji.j_out <- Some addr
      | _ -> raise (Harness_bug ("submit ack without addresses: " ^ J.to_string r)))
  | Script.Pump n ->
      for _ = 1 to n do
        if w.alive () then begin
          ignore (Queue.step (Server.queue w.srv));
          if w.alive () then oracle_sweep w
        end
      done
  | Script.Preempt { job } -> (
      match Hashtbl.find_opt w.jobs job with
      | Some { j_id = Some id; _ } ->
          ignore (Queue.request_preempt (Server.queue w.srv) ~id)
      | _ -> raise (Harness_bug ("preempt of unsubmitted job " ^ job)))
  | Script.Close { sid } ->
      let s = session_id w sid in
      let _ = get_ok "close-session" (handle w "close-session" [ ("session", J.Int s) ]) in
      Hashtbl.remove w.sessions sid;
      w.closed <- sid :: w.closed

(** Run [steps] against a fresh server on [dir].  Returns the world as
    known at the end — or, when the injector fired, at the crash
    instant (the knowledge cutoff).  [None] when the process "died"
    during [Server.create] itself. *)
let run_pass ~(alive : unit -> bool) ~dir steps : world option =
  match Server.create ~ckpt_dir:dir () with
  | exception Io.Crash -> None
  | srv ->
      let w =
        {
          srv;
          alive;
          sessions = Hashtbl.create 4;
          tenants = Hashtbl.create 4;
          modules = Hashtbl.create 4;
          jobs = Hashtbl.create 8;
          closed = [];
        }
      in
      (try
         List.iter (fun st -> if alive () then exec w st) steps
       with Io.Crash -> ());
      Some w

(* ---- baseline ---- *)

type baseline = {
  b_boundaries : int;
  b_trace : string list;  (** one label per boundary, in order *)
  b_values : (string * J.t) list;  (** job name -> expected outputs *)
  b_tallies : (string * int) list;  (** closed tenant -> launch count *)
}

let tenant_counter stats tenant name =
  Option.bind (J.mem "tenants" stats) (fun t ->
      Option.bind (J.mem tenant t) (fun o ->
          Option.bind (J.mem "metrics" o) (fun m ->
              Option.bind (J.mem name m) (J.int_mem "value"))))

let drain ?(max_steps = 10_000) q =
  let n = ref 0 in
  while Queue.step q && !n < max_steps do incr n done;
  !n < max_steps

let run_baseline ~seed ~dir ~steps : baseline =
  rm_rf dir;
  let inj = Injector.create ~root:dir ~seed ~plan:Injector.Count () in
  let w =
    Io.with_impl (Injector.impl inj) (fun () ->
        run_pass ~alive:(fun () -> not (Injector.crashed inj)) ~dir steps)
  in
  let w =
    match w with
    | Some w -> w
    | None -> raise (Harness_bug "baseline pass crashed without an injector")
  in
  if not (drain (Server.queue w.srv)) then
    raise (Harness_bug "baseline did not quiesce");
  oracle_sweep w;
  let values =
    Hashtbl.fold
      (fun name ji acc ->
        match ji.j_values with
        | Some v -> (name, v) :: acc
        | None ->
            raise
              (Harness_bug
                 (Fmt.str "baseline job %s never completed (state %s)" name
                    ji.j_state)))
      w.jobs []
  in
  let stats = get_ok "stats" (handle w "stats" []) in
  let tallies =
    List.filter_map
      (fun sid ->
        let tenant = Hashtbl.find w.tenants sid in
        Option.map (fun n -> (tenant, n)) (tenant_counter stats tenant "launches"))
      w.closed
  in
  Server.decommission w.srv;
  {
    b_boundaries = Injector.ops inj;
    b_trace = Injector.trace inj;
    b_values = values;
    b_tallies = tallies;
  }

(* ---- one drill ---- *)

let terminal = function "done" | "failed" | "cancelled" -> true | _ -> false

(** Crash at [boundary] with [flavor], recover, check the invariants.
    Returns the violations (empty = this crash point is safe). *)
let drill ~seed ~dir ~steps ~(baseline : baseline) ~boundary ~flavor :
    string list =
  rm_rf dir;
  let inj =
    Injector.create ~root:dir ~seed
      ~plan:(Injector.Crash { boundary; flavor })
      ()
  in
  let w =
    Io.with_impl (Injector.impl inj) (fun () ->
        run_pass ~alive:(fun () -> not (Injector.crashed inj)) ~dir steps)
  in
  if not (Injector.crashed inj) then []
    (* boundary beyond this (possibly minimized) script's reach *)
  else begin
    let violations = ref [] in
    let fail fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
    (* what the dead daemon owed its clients *)
    let must_recover =
      match w with
      | None -> []
      | Some w ->
          post_crash_states w;
          Hashtbl.fold
            (fun name ji acc ->
              if ji.j_id <> None && not (terminal ji.j_state) then
                (name, ji) :: acc
              else acc)
            w.jobs []
    in
    (* the successor: real I/O, same directory *)
    let srv2 = Server.create ~ckpt_dir:dir () in
    let recs = Server.recovered srv2 in
    let count_label l =
      List.length
        (List.filter (fun r -> String.equal r.Server.r_label l) recs)
    in
    List.iter
      (fun (name, _) ->
        match count_label name with
        | 0 -> fail "lost job %s: acknowledged, in flight, not recovered" name
        | 1 -> ()
        | n -> fail "job %s re-admitted %d times" name n)
      must_recover;
    List.iter
      (fun (r : Server.recovered) ->
        if count_label r.Server.r_label > 1 then
          fail "job %s re-admitted %d times" r.Server.r_label
            (count_label r.Server.r_label))
      recs;
    if not (drain (Server.queue srv2)) then
      fail "successor queue did not quiesce"
    else begin
      (* every re-admitted job must finish, and the ones a client was
         promised must land the baseline values at the original address *)
      List.iter
        (fun (r : Server.recovered) ->
          match Queue.info (Server.queue srv2) ~id:r.Server.r_job with
          | None -> fail "recovered job %s vanished" r.Server.r_label
          | Some i -> (
              let state = Queue.state_name i.Queue.i_state in
              if state <> "done" then
                fail "recovered job %s ended %s" r.Server.r_label state
              else
                let promised =
                  List.find_opt
                    (fun (n, _) -> String.equal n r.Server.r_label)
                    must_recover
                in
                match promised with
                | Some (name, ji) -> (
                    let addr =
                      match ji.j_out with Some a -> a | None -> -1
                    in
                    let resp =
                      Server.handle srv2
                        (J.Obj
                           [
                             ("cmd", J.Str "read");
                             ("session", J.Int r.Server.r_session);
                             ("addr", J.Int addr);
                             ("ty", J.Str "f32");
                             ("count", J.Int 4);
                           ])
                    in
                    match
                      (J.mem "values" resp, List.assoc_opt name baseline.b_values)
                    with
                    | Some got, Some want when got = want -> ()
                    | Some got, Some want ->
                        fail "job %s recovered with wrong output: %s, want %s"
                          name (J.to_string got) (J.to_string want)
                    | _ ->
                        fail "job %s: could not read recovered output (%s)"
                          name (J.to_string resp))
                | None -> ()))
        recs;
      (* tally conservation for tenants whose close committed pre-crash *)
      (match w with
      | None -> ()
      | Some w ->
          let stats = Server.handle srv2 (J.Obj [ ("cmd", J.Str "stats") ]) in
          List.iter
            (fun sid ->
              let tenant = Hashtbl.find w.tenants sid in
              match
                ( List.assoc_opt tenant baseline.b_tallies,
                  tenant_counter stats tenant "launches" )
              with
              | Some want, Some got when got = want -> ()
              | Some want, got ->
                  fail "tenant %s tally not conserved: %s, want %d" tenant
                    (match got with
                    | Some g -> string_of_int g
                    | None -> "missing")
                    want
              | None, _ -> ())
            w.closed);
      (* leak check: after the drain nothing may remain but the journal *)
      Array.iter
        (fun name ->
          if name <> "tenant-tallies.journal" then
            fail "stale state leaked after recovery: %s" name)
        (try Sys.readdir dir with Sys_error _ -> [||]);
      Server.decommission srv2;
      if Sys.file_exists dir then fail "decommission left %s behind" dir
    end;
    List.rev !violations
  end

(* ---- the campaign ---- *)

type failure = {
  f_boundary : int;
  f_flavor : Injector.flavor;
  f_label : string;  (** the drilled op, from the counting trace *)
  f_violations : string list;
}

type campaign = {
  c_seed : int;
  c_boundaries : int;
  c_trace : string list;
  c_drills : int;
  c_failures : failure list;
}

let flavors_for_label label =
  if String.length label >= 5 && String.sub label 0 5 = "write" then
    Injector.flavors_for_write
  else Injector.flavors_for_other

(** Every (boundary × applicable flavor) pair, evenly thinned to at
    most [budget] drills (0 = no cap) so a bounded CI run still spans
    the whole timeline rather than only its start. *)
let enumerate ~(baseline : baseline) ~budget =
  let all =
    List.concat
      (List.mapi
         (fun b label ->
           List.map (fun f -> (b, f, label)) (flavors_for_label label))
         baseline.b_trace)
  in
  let total = List.length all in
  if budget <= 0 || total <= budget then all
  else
    List.filteri
      (fun i _ -> i * budget / total <> (i + 1) * budget / total)
      all

let run_campaign ?(seed = 0x5eed) ?(budget = 0) ?(stop_on_first = false)
    ?(log = fun _ -> ()) ~dir ~steps () : campaign =
  let baseline = run_baseline ~seed ~dir ~steps in
  log
    (Fmt.str "chaos: %d I/O boundaries in the scripted workload"
       baseline.b_boundaries);
  let drills = enumerate ~baseline ~budget in
  log (Fmt.str "chaos: drilling %d crash points" (List.length drills));
  let failures = ref [] in
  let ran = ref 0 in
  (try
     List.iter
       (fun (boundary, flavor, label) ->
         incr ran;
         let violations = drill ~seed ~dir ~steps ~baseline ~boundary ~flavor in
         if violations <> [] then begin
           log
             (Fmt.str "chaos: FAIL @%d %s [%s]: %s" boundary
                (Injector.flavor_name flavor) label
                (String.concat "; " violations));
           failures :=
             { f_boundary = boundary; f_flavor = flavor; f_label = label;
               f_violations = violations }
             :: !failures;
           if stop_on_first then raise Exit
         end)
       drills
   with Exit -> ());
  rm_rf dir;
  {
    c_seed = seed;
    c_boundaries = baseline.b_boundaries;
    c_trace = baseline.b_trace;
    c_drills = !ran;
    c_failures = List.rev !failures;
  }

(* ---- minimization (mirrors lib/fuzz/shrink.ml) ---- *)

(* Cap on predicate evaluations: each one replays a bounded drill
   sweep, so a pathological shrink must not dominate the campaign. *)
let max_evals = 48

(* Does any crash point of [steps] with this flavor still violate?
   Scans boundaries in order, stopping at the first failure — in
   practice durability bugs sit early in the timeline, so this is
   cheap.  Returns the witness. *)
let first_failure ~seed ~dir ~flavor ~sweep_cap steps : failure option =
  match run_baseline ~seed ~dir ~steps with
  | exception _ -> None
  | baseline ->
      let cap = min baseline.b_boundaries sweep_cap in
      let rec go b =
        if b >= cap then None
        else
          let violations = drill ~seed ~dir ~steps ~baseline ~boundary:b ~flavor in
          if violations <> [] then
            Some
              {
                f_boundary = b;
                f_flavor = flavor;
                f_label = (try List.nth baseline.b_trace b with _ -> "?");
                f_violations = violations;
              }
          else go (b + 1)
      in
      go 0

let cut l ~at ~len = List.filteri (fun i _ -> i < at || i >= at + len) l

(** Greedy delta-debugging of a failing script: delete chunks of steps
    (halving the chunk size as progress stalls), keep a candidate only
    if some crash point with the failing flavor still violates.  The
    final script, boundary and violations are returned together so the
    repro file records exactly what the minimized schedule does. *)
let minimize ~seed ~dir (f : failure) (steps : Script.step list) :
    Script.step list * failure =
  let sweep_cap = f.f_boundary + 8 in
  let evals = ref 0 in
  let witness = ref f in
  let try_candidate cand =
    incr evals;
    if !evals > max_evals then None
    else
      match first_failure ~seed ~dir ~flavor:f.f_flavor ~sweep_cap cand with
      | Some f' -> Some f'
      | None | (exception Harness_bug _) -> None
  in
  let best = ref steps in
  let chunk = ref (max 1 (List.length steps / 2)) in
  while !chunk >= 1 && !evals <= max_evals do
    let shrunk_this_pass = ref false in
    let i = ref 0 in
    while !i + !chunk <= List.length !best && !evals <= max_evals do
      let cand = cut !best ~at:!i ~len:!chunk in
      match try_candidate cand with
      | Some f' ->
          best := cand;
          witness := f';
          shrunk_this_pass := true
          (* don't advance: the next chunk slid into place *)
      | None -> i := !i + !chunk
    done;
    if not !shrunk_this_pass then chunk := !chunk / 2
  done;
  rm_rf dir;
  (!best, !witness)

(* ---- replayable repro files ---- *)

let repro_json ~seed ~durable (f : failure) (steps : Script.step list) : J.t =
  J.Obj
    [
      ("vekt-chaos-repro", J.Int 1);
      ("seed", J.Int seed);
      ("durable", J.Bool durable);
      ("boundary", J.Int f.f_boundary);
      ("flavor", J.Str (Injector.flavor_name f.f_flavor));
      ("label", J.Str f.f_label);
      ("steps", J.List (List.map Script.step_json steps));
      ("violations", J.List (List.map (fun v -> J.Str v) f.f_violations));
    ]

let write_repro ~path ~seed ~durable (f : failure) steps =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (J.to_line (repro_json ~seed ~durable f steps)))

type repro = {
  r_seed : int;
  r_durable : bool;
  r_boundary : int;
  r_flavor : Injector.flavor;
  r_steps : Script.step list;
}

let parse_repro (data : string) : (repro, string) result =
  match J.of_string (String.trim data) with
  | Error msg -> Error msg
  | Ok j -> (
      match
        ( J.int_mem "seed" j,
          J.int_mem "boundary" j,
          Option.bind (J.str_mem "flavor" j) Injector.flavor_of_string,
          J.list_mem "steps" j )
      with
      | Some seed, Some boundary, Some flavor, Some steps_j -> (
          let steps =
            List.fold_left
              (fun acc sj ->
                match (acc, Script.step_of_json sj) with
                | Error e, _ -> Error e
                | Ok acc, Ok s -> Ok (s :: acc)
                | Ok _, Error e -> Error e)
              (Ok []) steps_j
          in
          match steps with
          | Error e -> Error e
          | Ok rev ->
              Ok
                {
                  r_seed = seed;
                  r_durable =
                    Option.value (J.bool_mem "durable" j) ~default:true;
                  r_boundary = boundary;
                  r_flavor = flavor;
                  r_steps = List.rev rev;
                })
      | _ -> Error "repro: want seed, boundary, flavor, steps")

(** Re-run exactly the drill a repro file records.  Returns the
    violations it reproduces (empty = no longer fails). *)
let replay ~dir (r : repro) : string list =
  let saved = !Io.durability in
  Io.durability := r.r_durable;
  Fun.protect
    ~finally:(fun () ->
      Io.durability := saved;
      rm_rf dir)
    (fun () ->
      let baseline = run_baseline ~seed:r.r_seed ~dir ~steps:r.r_steps in
      drill ~seed:r.r_seed ~dir ~steps:r.r_steps ~baseline
        ~boundary:r.r_boundary ~flavor:r.r_flavor)
