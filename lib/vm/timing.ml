(** Static per-block timing analysis.

    For each block of a compiled function we decompose its instructions
    into machine µops, run a small scoreboard (operand-ready times × issue
    port availability, an idealized out-of-order core with an unbounded
    window), estimate register pressure from per-instruction liveness and
    charge spill traffic for the excess, and record the resulting cycle
    cost.  The interpreter then accumulates [cycles b] for every dynamic
    execution of block [b].

    This is the stand-in for "LLVM JIT code running on the i7-2600": the
    lane-width speedup, the latency-hiding-with-ILP effect and the
    register-pressure collapse at warp 8 on a 4-wide machine (Table 1) all
    fall out of the port/latency/pressure model rather than being wired
    in. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Liveness = Vekt_analysis.Liveness
open Vekt_ptx

type uop = { port : Machine.port; latency : int }

(* µop decomposition of one IR instruction.  [chunks] models a vector
   wider than the machine: the code generator must emit one operation per
   machine-register chunk. *)
let uops_of_instr (m : Machine.t) (f : Ir.func) (i : Ir.instr) : uop list =
  let vec_class (ty : Ty.t) = Ast.is_float ty.Ty.elt || ty.Ty.width > 1 in
  let rep n u = List.init n (fun _ -> u) in
  let arith_uop (ty : Ty.t) ~port ~lat =
    let n = if ty.Ty.width > 1 then Machine.chunks m ty.Ty.elt ty.Ty.width else 1 in
    rep n { port; latency = lat }
  in
  match i with
  | Ir.Bin (op, ty, _, _, _) -> (
      let fl = Ast.is_float ty.Ty.elt in
      match op with
      | Ast.Mul_lo when fl -> arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_mul)
      | Ast.Div when fl -> arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_div)
      | (Ast.Add | Ast.Sub | Ast.Min | Ast.Max) when fl ->
          arith_uop ty ~port:Machine.Fp_add ~lat:(m.latency `Fp_addsub)
      | Ast.Rem when fl -> arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_div)
      | _ when vec_class ty -> arith_uop ty ~port:Machine.Valu ~lat:(m.latency `Alu)
      | Ast.Div | Ast.Rem ->
          (* scalar integer division: long-latency, serialized *)
          rep 1 { port = Machine.Salu; latency = 20 }
      | _ -> arith_uop ty ~port:Machine.Salu ~lat:(m.latency `Alu))
  | Ir.Un (op, ty, _, _) -> (
      match op with
      | Ast.Sqrt | Ast.Rsqrt | Ast.Rcp ->
          arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_div)
      | Ast.Sin | Ast.Cos | Ast.Ex2 | Ast.Lg2 ->
          (* vectorized transcendental approximations: a short polynomial
             kernel; charge several mul+add pairs *)
          arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_trans)
          @ arith_uop ty ~port:Machine.Fp_add ~lat:(m.latency `Fp_addsub)
          @ arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_mul)
      | Ast.Neg | Ast.Abs when Ast.is_float ty.Ty.elt ->
          arith_uop ty ~port:Machine.Fp_add ~lat:(m.latency `Fp_addsub)
      | _ when vec_class ty -> arith_uop ty ~port:Machine.Valu ~lat:(m.latency `Alu)
      | _ -> arith_uop ty ~port:Machine.Salu ~lat:(m.latency `Alu))
  | Ir.Fma (ty, _, _, _, _) ->
      if Ast.is_float ty.Ty.elt then
        (* pre-FMA hardware: a multiply feeding an add *)
        arith_uop ty ~port:Machine.Fp_mul ~lat:(m.latency `Fp_mul)
        @ arith_uop ty ~port:Machine.Fp_add ~lat:(m.latency `Fp_addsub)
      else if vec_class ty then
        arith_uop ty ~port:Machine.Valu ~lat:(m.latency `Alu)
        @ arith_uop ty ~port:Machine.Valu ~lat:(m.latency `Alu)
      else
        arith_uop ty ~port:Machine.Salu ~lat:(m.latency `Alu)
        @ arith_uop ty ~port:Machine.Salu ~lat:(m.latency `Alu)
  | Ir.Cmp (_, ty, _, _, _) ->
      if Ast.is_float ty.Ty.elt then
        arith_uop ty ~port:Machine.Fp_add ~lat:(m.latency `Fp_addsub)
      else if vec_class ty then arith_uop ty ~port:Machine.Valu ~lat:(m.latency `Alu)
      else arith_uop ty ~port:Machine.Salu ~lat:(m.latency `Alu)
  | Ir.Select (ty, _, _, _, _) ->
      if vec_class ty then arith_uop ty ~port:Machine.Valu ~lat:(m.latency `Alu)
      else arith_uop ty ~port:Machine.Salu ~lat:(m.latency `Alu)
  | Ir.Mov (ty, _, _) ->
      (* register moves are largely free on renamed hardware; charge a
         single cheap µop *)
      if vec_class ty then [ { port = Machine.Valu; latency = 0 } ]
      else [ { port = Machine.Salu; latency = 0 } ]
  | Ir.Cvt (dt, _, _, _) ->
      arith_uop dt ~port:Machine.Fp_add ~lat:(m.latency `Fp_addsub)
  | Ir.Load _ -> [ { port = Machine.Mem_ld; latency = m.latency `Load } ]
  | Ir.Store _ -> [ { port = Machine.Mem_st; latency = 0 } ]
  | Ir.Vload (_, ty, _, _, _) ->
      (* one movups-class µop per machine-register chunk *)
      rep (Machine.chunks m ty f.Ir.warp_size)
        { port = Machine.Mem_ld; latency = m.latency `Load }
  | Ir.Vstore (_, ty, _, _, _) ->
      rep (Machine.chunks m ty f.Ir.warp_size) { port = Machine.Mem_st; latency = 0 }
  | Ir.Atomic _ ->
      (* lock-prefixed RMW: long serialized latency *)
      [ { port = Machine.Mem_ld; latency = 18 }; { port = Machine.Mem_st; latency = 0 } ]
  | Ir.Broadcast _ -> [ { port = Machine.Shuf; latency = m.latency `Shuf } ]
  | Ir.Extract _ -> [ { port = Machine.Shuf; latency = m.latency `Shuf } ]
  | Ir.Insert _ -> [ { port = Machine.Shuf; latency = m.latency `Shuf } ]
  | Ir.Reduce_add (_, o) ->
      let w = match o with Ir.R r -> (Ir.reg_ty f r).Ty.width | Ir.Imm _ -> 1 in
      if w <= 1 then [ { port = Machine.Salu; latency = m.latency `Alu } ]
      else
        (* movmsk + popcount style reduction *)
        [
          { port = Machine.Shuf; latency = m.latency `Shuf };
          { port = Machine.Salu; latency = m.latency `Alu };
        ]
  | Ir.Ctx_read _ -> [ { port = Machine.Mem_ld; latency = m.latency `Load } ]
  | Ir.Spill _ -> [ { port = Machine.Mem_st; latency = 0 } ]
  | Ir.Restore _ -> [ { port = Machine.Mem_ld; latency = m.latency `Load } ]
  | Ir.Set_resume _ -> [ { port = Machine.Mem_st; latency = 0 } ]
  | Ir.Set_status _ -> [ { port = Machine.Mem_st; latency = 0 } ]

(* Physical registers a live virtual register occupies. *)
let phys_regs (m : Machine.t) (ty : Ty.t) : [ `Vec of int | `Gpr of int ] =
  if ty.Ty.width > 1 then `Vec (Machine.chunks m ty.Ty.elt ty.Ty.width)
  else if Ast.is_float ty.Ty.elt then `Vec 1
  else `Gpr 1

type block_cost = {
  cycles : float;  (** estimated cycles per execution of the block *)
  uops : int;
  flops : int;  (** FP operations per execution (all lanes) *)
  spill_uops : int;  (** µops added by register-pressure spills *)
  max_vec_pressure : int;
  max_gpr_pressure : int;
}

(** Integer sub-cycle units used for source-line attribution: one modelled
    cycle = [attr_scale] units.  Attribution works in integers because the
    conservation invariant — per-line buckets summing {e exactly} to the
    total — must hold under any summation order, including merges of
    per-worker buckets; float accumulation is not associative. *)
let attr_scale = 1_000_000

let units_of_cycles c = int_of_float (Float.round (c *. float_of_int attr_scale))

type t = {
  machine : Machine.t;
  costs : (string, block_cost) Hashtbl.t;
  term_cost : float;  (** per-block terminator/branch overhead *)
  shares : (string, (int * int) array * int) Hashtbl.t;
      (** per block: source-line shares [(line, units); ...] of the block's
          full cost (terminator included) and their exact sum.  Line 0 is
          the "runtime overhead" bucket: terminators plus synthetic
          instructions with no source provenance. *)
}

let flops_of_instr (f : Ir.func) (i : Ir.instr) =
  match i with
  | Ir.Bin (_, ty, _, _, _) | Ir.Un (_, ty, _, _) | Ir.Cmp (_, ty, _, _, _) ->
      if Ast.is_float ty.Ty.elt then ty.Ty.width else 0
  | Ir.Fma (ty, _, _, _, _) -> if Ast.is_float ty.Ty.elt then 2 * ty.Ty.width else 0
  | _ ->
      ignore f;
      0

(* Scoreboard over one block: µops issue when their operands are ready and
   their port has a free slot; the block cost is when the last µop's result
   would be available, floored by the front-end issue rate. *)
let analyze_block (m : Machine.t) (f : Ir.func) (live : Liveness.t) (b : Ir.block) :
    block_cost =
  let port_free = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace port_free p 0.0) Machine.all_ports;
  let ready : (Ir.vreg, float) Hashtbl.t = Hashtbl.create 32 in
  let total_uops = ref 0 and flops = ref 0 in
  let finish = ref 0.0 in
  let exec_instr i =
    flops := !flops + flops_of_instr f i;
    let operands_ready =
      List.fold_left
        (fun acc r -> Float.max acc (Option.value (Hashtbl.find_opt ready r) ~default:0.0))
        0.0 (Ir.uses i)
    in
    let done_at = ref operands_ready in
    List.iter
      (fun { port; latency } ->
        incr total_uops;
        let free = Hashtbl.find port_free port in
        let issue = Float.max operands_ready free in
        Hashtbl.replace port_free port (issue +. (1.0 /. m.Machine.throughput port));
        done_at := Float.max !done_at (issue +. float_of_int latency))
      (uops_of_instr m f i);
    (match Ir.def i with Some d -> Hashtbl.replace ready d !done_at | None -> ());
    finish := Float.max !finish !done_at
  in
  List.iter (fun ({ Ir.i; _ } : Ir.li) -> exec_instr i) b.Ir.insts;
  (* Register pressure within the block. *)
  let after = Liveness.per_instruction live b in
  let max_vec = ref 0 and max_gpr = ref 0 in
  Array.iter
    (fun set ->
      let v = ref 0 and g = ref 0 in
      Liveness.ISet.iter
        (fun r ->
          match phys_regs m (Ir.reg_ty f r) with
          | `Vec n -> v := !v + n
          | `Gpr n -> g := !g + n)
        set;
      if !v > !max_vec then max_vec := !v;
      if !g > !max_gpr then max_gpr := !g)
    after;
  (* Spill traffic for pressure beyond the architectural registers. *)
  let excess_v = max 0 (!max_vec - m.Machine.vector_regs) in
  let excess_g = max 0 (!max_gpr - m.Machine.scalar_regs) in
  let spill_uops =
    (excess_v + excess_g) * (m.Machine.spill_load_uops + m.Machine.spill_store_uops)
  in
  let spill_cycles =
    float_of_int ((excess_v + excess_g) * m.Machine.spill_load_uops)
    /. m.Machine.throughput Machine.Mem_ld
    +. float_of_int ((excess_v + excess_g) * m.Machine.spill_store_uops)
       /. m.Machine.throughput Machine.Mem_st
    +. (float_of_int excess_v *. float_of_int (m.Machine.latency `Load) *. 0.5)
  in
  (* Once live state exceeds the register file, a fraction of every value's
     uses round-trips through the stack; the store-forward latency lands on
     the dependence chains and cannot be hidden. *)
  let spill_serial =
    let pressure = !max_vec + !max_gpr in
    if excess_v + excess_g = 0 || pressure = 0 then 0.0
    else
      let fraction = float_of_int (excess_v + excess_g) /. float_of_int pressure in
      m.Machine.spill_serial_factor *. fraction *. float_of_int !total_uops
  in
  let frontend = float_of_int (!total_uops + spill_uops) /. m.Machine.issue_width in
  {
    cycles = Float.max !finish frontend +. spill_cycles +. spill_serial;
    uops = !total_uops;
    flops = !flops;
    spill_uops;
    max_vec_pressure = !max_vec;
    max_gpr_pressure = !max_gpr;
  }

(* Apportion [total_units] across the block's source lines proportionally
   to each line's µop count, with largest-remainder rounding so the shares
   sum exactly to [total_units].  The terminator (and any instruction with
   no provenance) weighs in on line 0. *)
let compute_shares (m : Machine.t) (f : Ir.func) (b : Ir.block) ~(total_units : int) :
    (int * int) array * int =
  let weights : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let add_weight line w =
    Hashtbl.replace weights line
      (Option.value (Hashtbl.find_opt weights line) ~default:0 + w)
  in
  add_weight 0 1 (* terminator *);
  List.iter
    (fun ({ Ir.i; line } : Ir.li) -> add_weight line (List.length (uops_of_instr m f i)))
    b.Ir.insts;
  let lines =
    Hashtbl.fold (fun l w acc -> (l, w) :: acc) weights []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let total_w = List.fold_left (fun acc (_, w) -> acc + w) 0 lines in
  let with_rem =
    Array.of_list
      (List.map
         (fun (l, w) -> (l, total_units * w / total_w, total_units * w mod total_w))
         lines)
  in
  let base_sum = Array.fold_left (fun acc (_, u, _) -> acc + u) 0 with_rem in
  let leftover = total_units - base_sum in
  (* hand the rounding leftover to the largest remainders; ties broken by
     position so the result is deterministic *)
  let order = Array.init (Array.length with_rem) Fun.id in
  Array.sort
    (fun i j ->
      let _, _, ri = with_rem.(i) and _, _, rj = with_rem.(j) in
      if ri <> rj then compare rj ri else compare i j)
    order;
  let out = Array.map (fun (l, u, _) -> (l, u)) with_rem in
  for k = 0 to leftover - 1 do
    let idx = order.(k mod Array.length order) in
    let l, u = out.(idx) in
    out.(idx) <- (l, u + 1)
  done;
  (out, total_units)

(** Analyze every block of a compiled function once; the interpreter then
    charges [cycles] per dynamic block execution. *)
let analyze (m : Machine.t) (f : Ir.func) : t =
  let live = Liveness.compute f in
  let term_cost = 1.0 in
  let costs = Hashtbl.create 16 in
  let shares = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let c = analyze_block m f live b in
      Hashtbl.replace costs b.Ir.label c;
      let total_units = units_of_cycles (c.cycles +. term_cost) in
      Hashtbl.replace shares b.Ir.label (compute_shares m f b ~total_units))
    (Ir.blocks f);
  { machine = m; costs; term_cost; shares }

let block_cost t label = Hashtbl.find_opt t.costs label

let cycles t label =
  match block_cost t label with
  | Some c -> c.cycles +. t.term_cost
  | None -> t.term_cost

let flops t label = match block_cost t label with Some c -> c.flops | None -> 0

(** Source-line shares of one execution of [label] (terminator included)
    together with their exact integer sum; [cycles t label] is the same
    quantity in float cycles.  Unknown labels cost [term_cost] only,
    charged to the line-0 overhead bucket. *)
let line_shares t label : (int * int) array * int =
  match Hashtbl.find_opt t.shares label with
  | Some s -> s
  | None ->
      let u = units_of_cycles t.term_cost in
      ([| (0, u) |], u)
