(** Interpreter for compiled (vectorized) IR functions.

    Plays the role of the native code the paper's LLVM JIT emits: the
    execution manager calls a specialization with a warp of thread
    contexts and an entry-point ID; the function runs — through the
    scheduler block, an entry handler, vectorized bodies — until it yields
    ([Return]), having recorded each lane's resume point and the warp's
    resume status in the context objects.

    Results are bit-identical to the {!Vekt_ptx.Emulator} oracle because
    both defer scalar semantics to {!Vekt_ptx.Scalar_ops}.  When a
    {!Timing.t} is supplied, simulated cycles are accumulated per executed
    block and attributed to the block's kind (body / scheduler / entry /
    exit), which Figure 9 reports. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
open Vekt_ptx

exception Trap of string
exception Out_of_fuel

(* Global-space [Ir.Atomic] is interpreted as load / compute / store;
   within one domain that sequence is already indivisible, but when
   {!Vekt_runtime.Worker_pool} runs CTAs on several domains against one
   shared global segment the read-modify-write must be serialized
   process-wide.  Shared and local segments are CTA-private (every CTA
   runs wholly on one worker), so they never need it.  The supported
   atomic ops are commutative integer updates, so serialization order
   does not affect the final memory image. *)
let global_atomic_lock = Mutex.create ()

type thread_info = {
  tid : Launch.dim3;
  ctaid : Launch.dim3;
  local_base : int;  (** byte offset of this thread's block in the local arena *)
  mutable resume_point : int;
}

type warp = {
  lanes : thread_info array;
  mutable entry_id : int;
  mutable status : Ir.status;
}

type memories = {
  global : Mem.t;
  shared : Mem.t;  (** the warp's CTA's shared segment *)
  local : Mem.t;  (** local arena: one block per thread, see [local_base] *)
  params : Mem.t;
  consts : Mem.t;
}

type launch_info = { grid : Launch.dim3; block : Launch.dim3 }

(** Dynamic counters, aggregated across calls (one per execution manager). *)
type counters = {
  mutable dyn_instrs : int;
  mutable blocks_executed : int;
  mutable kernel_calls : int;
  mutable restores : int;  (** Restore instructions executed (Fig. 8) *)
  mutable spills : int;
  mutable flops : int;
  mutable cycles_body : float;
  mutable cycles_scheduler : float;
  mutable cycles_entry : float;
  mutable cycles_exit : float;
}

let fresh_counters () =
  {
    dyn_instrs = 0;
    blocks_executed = 0;
    kernel_calls = 0;
    restores = 0;
    spills = 0;
    flops = 0;
    cycles_body = 0.0;
    cycles_scheduler = 0.0;
    cycles_entry = 0.0;
    cycles_exit = 0.0;
  }

let total_cycles c =
  c.cycles_body +. c.cycles_scheduler +. c.cycles_entry +. c.cycles_exit

(** Field tables naming every counter, driving the generic merge below
    and the metrics-registry export in {!Vekt_runtime.Stats} — the one
    place to extend when adding a counter. *)
let int_counter_fields :
    (string * (counters -> int) * (counters -> int -> unit)) list =
  [
    ("dyn_instrs", (fun c -> c.dyn_instrs), fun c v -> c.dyn_instrs <- v);
    ( "blocks_executed",
      (fun c -> c.blocks_executed),
      fun c v -> c.blocks_executed <- v );
    ("kernel_calls", (fun c -> c.kernel_calls), fun c v -> c.kernel_calls <- v);
    ("restores", (fun c -> c.restores), fun c v -> c.restores <- v);
    ("spills", (fun c -> c.spills), fun c v -> c.spills <- v);
    ("flops", (fun c -> c.flops), fun c v -> c.flops <- v);
  ]

let cycle_counter_fields :
    (string * (counters -> float) * (counters -> float -> unit)) list =
  [
    ("cycles_body", (fun c -> c.cycles_body), fun c v -> c.cycles_body <- v);
    ( "cycles_scheduler",
      (fun c -> c.cycles_scheduler),
      fun c v -> c.cycles_scheduler <- v );
    ("cycles_entry", (fun c -> c.cycles_entry), fun c v -> c.cycles_entry <- v);
    ("cycles_exit", (fun c -> c.cycles_exit), fun c v -> c.cycles_exit <- v);
  ]

(** Sum [d]'s counters into [into], field by field. *)
let merge_counters ~(into : counters) (d : counters) =
  List.iter (fun (_, get, set) -> set into (get into + get d)) int_counter_fields;
  List.iter
    (fun (_, get, set) -> set into (get into +. get d))
    cycle_counter_fields

(** Register values: scalars or lane arrays. *)
type rval = S of Scalar_ops.value | V of Scalar_ops.value array

let default_rval (ty : Ty.t) =
  let z = if Ast.is_float ty.Ty.elt then Scalar_ops.F 0.0 else Scalar_ops.I 0L in
  if ty.Ty.width = 1 then S z else V (Array.make ty.Ty.width z)

let lane_val (v : rval) i =
  match v with S x -> x | V a -> a.(i)

let scalar_val = function
  | S x -> x
  | V _ -> raise (Trap "vector value in scalar position")

let as_addr v =
  match scalar_val v with
  | Scalar_ops.I x -> Int64.to_int x
  | Scalar_ops.F _ -> raise (Trap "float used as address")

(** Execute [f] for [warp] until it returns to the execution manager.

    @param fuel maximum dynamic blocks executed in this call (default 10M):
    uniform loops run entirely inside the function, so a diverging kernel
    with a runaway uniform loop must be bounded here.
    @param profile when given, per-block execution counts are recorded
    into its hotness table (the divergence profiler's input); [None]
    costs one match per block.
    @param on_access called before every memory instruction with the PTX
    address space, guest address and width — the fault-injection
    tripwire ({!Vekt_runtime.Fault}); [None] costs one match per memory
    instruction.

    A guest memory fault ({!Vekt_ptx.Mem.Fault}) or an internal trap is
    re-raised as {!Vekt_error.Error} with the warp's thread/CTA context
    attached at this boundary, so the raw segment exception never
    escapes to the user. *)
let exec ?timing ?(counters = fresh_counters ()) ?(fuel = 10_000_000)
    ?(profile : Vekt_obs.Divergence.t option)
    ?(attr : Vekt_obs.Attribution.t option)
    ?(on_access : (Ast.space -> addr:int -> width:int -> unit) option)
    (f : Ir.func) ~(launch : launch_info) (warp : warp) (mem : memories) :
    unit =
  (* Structured trap with this warp's context: CTA and linear tid of the
     first lane (the faulting lane when the access is per-warp), plus
     the entry point the warp was dispatched at.  The modelled cycle is
     attached one level up, by the execution manager. *)
  let ctx_error ?access reason =
    let t0 = warp.lanes.(0) in
    Vekt_error.Error
      (Vekt_error.Trap
         {
           kernel = f.Ir.fname;
           cta = Some (t0.ctaid.Launch.x, t0.ctaid.Launch.y, t0.ctaid.Launch.z);
           tid = Some (Launch.linear ~dims:launch.block t0.tid);
           entry = Some warp.entry_id;
           cycle = None;
           access;
           reason;
         })
  in
  if Array.length warp.lanes <> f.Ir.warp_size then
    raise
      (ctx_error
         (Fmt.str "warp has %d lanes but %s is a %d-wide specialization"
            (Array.length warp.lanes) f.Ir.fname f.Ir.warp_size));
  counters.kernel_calls <- counters.kernel_calls + 1;
  let regs = Array.init f.Ir.nregs (fun r -> default_rval (Ir.reg_ty f r)) in
  let operand (o : Ir.operand) : rval =
    match o with Ir.R r -> regs.(r) | Ir.Imm (v, _) -> S v
  in
  let seg = function
    | Ast.Param -> mem.params
    | Ast.Global -> mem.global
    | Ast.Shared -> mem.shared
    | Ast.Local -> mem.local
    | Ast.Const -> mem.consts
  in
  let dim3_field (d : Launch.dim3) = function
    | Ast.X -> d.Launch.x
    | Ast.Y -> d.Launch.y
    | Ast.Z -> d.Launch.z
  in
  let ctx_read field lane =
    let t = warp.lanes.(lane) in
    let v =
      match field with
      | Ir.Tid d -> dim3_field t.tid d
      | Ir.Ntid d -> dim3_field launch.block d
      | Ir.Ctaid d -> dim3_field t.ctaid d
      | Ir.Nctaid d -> dim3_field launch.grid d
      | Ir.Lane -> lane
      | Ir.Local_base -> t.local_base
      | Ir.Warp_width -> f.Ir.warp_size
      | Ir.Entry_id -> warp.entry_id
    in
    Scalar_ops.I (Int64.of_int v)
  in
  let elementwise ty fn ops =
    if ty.Ty.width = 1 then S (fn (List.map (fun o -> lane_val o 0) ops))
    else V (Array.init ty.Ty.width (fun i -> fn (List.map (fun o -> lane_val o i) ops)))
  in
  (* One tripwire call per memory instruction executed; a no-op branch
     when no hook is installed, so the uninstrumented path costs nothing
     beyond the match. *)
  let touch sp ~addr ~width =
    match on_access with None -> () | Some h -> h sp ~addr ~width
  in
  let exec_instr (i : Ir.instr) =
    counters.dyn_instrs <- counters.dyn_instrs + 1;
    match i with
    | Ir.Bin (op, ty, d, a, b) ->
        regs.(d) <-
          elementwise ty
            (function [ x; y ] -> Scalar_ops.binop op ty.Ty.elt x y | _ -> assert false)
            [ operand a; operand b ]
    | Ir.Un (op, ty, d, a) ->
        regs.(d) <-
          elementwise ty
            (function [ x ] -> Scalar_ops.unop op ty.Ty.elt x | _ -> assert false)
            [ operand a ]
    | Ir.Fma (ty, d, a, b, c) ->
        regs.(d) <-
          elementwise ty
            (function
              | [ x; y; z ] -> Scalar_ops.mad ty.Ty.elt x y z | _ -> assert false)
            [ operand a; operand b; operand c ]
    | Ir.Cmp (op, ty, d, a, b) ->
        regs.(d) <-
          elementwise ty
            (function
              | [ x; y ] -> Scalar_ops.of_bool (Scalar_ops.cmp op ty.Ty.elt x y)
              | _ -> assert false)
            [ operand a; operand b ]
    | Ir.Select (ty, d, c, a, b) ->
        regs.(d) <-
          elementwise ty
            (function
              | [ cv; x; y ] -> if Scalar_ops.to_bool cv then x else y
              | _ -> assert false)
            [ operand c; operand a; operand b ]
    | Ir.Mov (ty, d, a) ->
        regs.(d) <- elementwise ty (function [ x ] -> x | _ -> assert false) [ operand a ]
    | Ir.Cvt (dt, st, d, a) ->
        regs.(d) <-
          elementwise dt
            (function
              | [ x ] -> Scalar_ops.cvt ~dst:dt.Ty.elt ~src:st.Ty.elt x
              | _ -> assert false)
            [ operand a ]
    | Ir.Load (sp, ty, d, base, off) ->
        let a = as_addr (operand base) + off in
        touch sp ~addr:a ~width:(Ast.size_of ty);
        regs.(d) <- S (Mem.load (seg sp) ty a)
    | Ir.Store (sp, ty, base, off, v) ->
        let a = as_addr (operand base) + off in
        touch sp ~addr:a ~width:(Ast.size_of ty);
        Mem.store (seg sp) ty a (scalar_val (operand v))
    | Ir.Vload (sp, ty, d, base, off) ->
        let seg = seg sp in
        let a = as_addr (operand base) + off in
        let sz = Ast.size_of ty in
        touch sp ~addr:a ~width:(sz * f.Ir.warp_size);
        regs.(d) <-
          V (Array.init f.Ir.warp_size (fun i -> Mem.load seg ty (a + (i * sz))))
    | Ir.Vstore (sp, ty, base, off, v) ->
        let seg = seg sp in
        let a = as_addr (operand base) + off in
        let sz = Ast.size_of ty in
        touch sp ~addr:a ~width:(sz * f.Ir.warp_size);
        let v = operand v in
        for i = 0 to f.Ir.warp_size - 1 do
          Mem.store seg ty (a + (i * sz)) (lane_val v i)
        done
    | Ir.Atomic (sp, op, ty, d, base, off, v, c) ->
        let s = seg sp in
        let addr = as_addr (operand base) + off in
        touch sp ~addr ~width:(Ast.size_of ty);
        let arg = scalar_val (operand v)
        and cmp = Option.map (fun c -> scalar_val (operand c)) c in
        let old =
          match sp with
          | Ast.Global ->
              Mutex.protect global_atomic_lock (fun () ->
                  let old = Mem.load s ty addr in
                  Mem.store s ty addr (Scalar_ops.atom op ty old arg cmp);
                  old)
          | _ ->
              let old = Mem.load s ty addr in
              Mem.store s ty addr (Scalar_ops.atom op ty old arg cmp);
              old
        in
        regs.(d) <- S old
    | Ir.Broadcast (ty, d, a) ->
        let x = scalar_val (operand a) in
        regs.(d) <- V (Array.make ty.Ty.width x)
    | Ir.Extract (_, d, a, lane) -> regs.(d) <- S (lane_val (operand a) lane)
    | Ir.Insert (ty, d, v, lane, s) ->
        let dst =
          match operand v with
          | V a -> Array.copy a
          | S x -> Array.make ty.Ty.width x
        in
        dst.(lane) <- scalar_val (operand s);
        regs.(d) <- V dst
    | Ir.Reduce_add (d, a) ->
        let v = operand a in
        let n = match v with V a -> Array.length a | S _ -> 1 in
        let sum = ref 0L in
        for i = 0 to n - 1 do
          sum := Int64.add !sum (Scalar_ops.as_int Ast.S32 (lane_val v i))
        done;
        regs.(d) <- S (Scalar_ops.I !sum)
    | Ir.Ctx_read (d, field, lane) -> regs.(d) <- S (ctx_read field lane)
    | Ir.Spill (lane, slot, ty, v) ->
        counters.spills <- counters.spills + 1;
        let addr = warp.lanes.(lane).local_base + slot in
        Mem.store mem.local ty addr (lane_val (operand v) lane)
    | Ir.Restore (d, lane, slot, ty) ->
        counters.restores <- counters.restores + 1;
        let addr = warp.lanes.(lane).local_base + slot in
        regs.(d) <- S (Mem.load mem.local ty addr)
    | Ir.Set_resume (lane, v) ->
        warp.lanes.(lane).resume_point <-
          Int64.to_int (Scalar_ops.as_int Ast.S32 (scalar_val (operand v)))
    | Ir.Set_status s -> warp.status <- s
  in
  let account (b : Ir.block) =
    counters.blocks_executed <- counters.blocks_executed + 1;
    (match profile with
    | None -> ()
    | Some p -> Vekt_obs.Divergence.touch_block p b.Ir.label);
    match timing with
    | None -> ()
    | Some t ->
        let c = Timing.cycles t b.Ir.label in
        counters.flops <- counters.flops + Timing.flops t b.Ir.label;
        (match b.Ir.kind with
        | Ir.Body -> counters.cycles_body <- counters.cycles_body +. c
        | Ir.Scheduler -> counters.cycles_scheduler <- counters.cycles_scheduler +. c
        | Ir.Entry_handler -> counters.cycles_entry <- counters.cycles_entry +. c
        | Ir.Exit_handler -> counters.cycles_exit <- counters.cycles_exit +. c);
        (* Source-line attribution: charge the block's precomputed integer
           line shares under the entry point this warp was dispatched at.
           [entry_id] is read at charge time, so scheduler-block work before
           an entry handler runs lands under the entry being dispatched. *)
        (match attr with
        | None -> ()
        | Some a ->
            Vekt_obs.Attribution.charge a ~entry_id:warp.entry_id
              (Timing.line_shares t b.Ir.label))
  in
  let fuel_left = ref fuel in
  let rec run_block label =
    decr fuel_left;
    if !fuel_left <= 0 then raise Out_of_fuel;
    let b = Ir.block f label in
    account b;
    List.iter (fun ({ Ir.i; _ } : Ir.li) -> exec_instr i) b.Ir.insts;
    match b.Ir.term with
    | Ir.Jump l -> run_block l
    | Ir.Branch (c, t, e) ->
        if Scalar_ops.to_bool (scalar_val (operand c)) then run_block t else run_block e
    | Ir.Switch (v, cases, default) ->
        let x = Int64.to_int (Scalar_ops.as_int Ast.S32 (scalar_val (operand v))) in
        run_block
          (match List.assoc_opt x cases with Some l -> l | None -> default)
    | Ir.Barrier _ -> raise (Trap "barrier terminator in compiled function")
    | Ir.Return -> ()
  in
  try run_block f.Ir.entry with
  | Mem.Fault a -> raise (ctx_error ~access:a "memory fault")
  | Trap reason -> raise (ctx_error reason)
