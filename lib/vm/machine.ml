(** Machine descriptions for the vector-processor timing model.

    Stands in for the paper's physical Intel Sandybridge (i7-2600): the
    relevant architectural effects — vector lane width, issue-port
    throughput, operation latencies, architectural register count and the
    cost of spilling when pressure exceeds it — are modelled explicitly, so
    the evaluation's shapes (Table 1, Figures 6/9/10) emerge from the same
    causes the paper ascribes them to. *)

(** Issue ports, loosely following Sandybridge's port groups. *)
type port =
  | Fp_mul  (** port 0: FP multiply / divide / sqrt *)
  | Fp_add  (** port 1: FP add, conversions *)
  | Valu  (** vector integer ALU / blends *)
  | Salu  (** scalar integer ALUs *)
  | Shuf  (** shuffle/pack unit: insert/extract/broadcast *)
  | Mem_ld  (** load pipes *)
  | Mem_st  (** store pipe *)

let all_ports = [ Fp_mul; Fp_add; Valu; Salu; Shuf; Mem_ld; Mem_st ]

let port_name = function
  | Fp_mul -> "fp_mul"
  | Fp_add -> "fp_add"
  | Valu -> "valu"
  | Salu -> "salu"
  | Shuf -> "shuf"
  | Mem_ld -> "ld"
  | Mem_st -> "st"

type t = {
  name : string;
  cores : int;
  clock_ghz : float;
  vec_bytes : int;  (** vector register width in bytes (16 = SSE, 32 = AVX) *)
  vector_regs : int;  (** architectural vector registers (xmm/ymm) *)
  scalar_regs : int;  (** architectural integer registers available *)
  issue_width : float;  (** µops issued per cycle (front-end cap) *)
  throughput : port -> float;  (** µops per cycle per port *)
  latency : [ `Fp_addsub | `Fp_mul | `Fp_div | `Fp_trans | `Alu | `Load | `Shuf ] -> int;
  spill_load_uops : int;  (** extra loads charged per excess live register *)
  spill_store_uops : int;
  spill_serial_factor : float;
      (** unhideable cycles per µop per unit of spilled-live-range fraction:
          models store-forward round trips on the dependence chains once the
          allocator runs out of registers (calibrated against Table 1's
          warp-8 collapse) *)
}

(** Lanes a vector of element [elt] fills per physical register. *)
let lanes_per_reg m elt = max 1 (m.vec_bytes / Vekt_ptx.Ast.size_of elt)

(** Physical registers needed for a [w]-lane vector of [elt]. *)
let chunks m elt w = (w + lanes_per_reg m elt - 1) / lanes_per_reg m elt

(** Sandybridge-class core with SSE4: 4 × f32 lanes, peak 8 SP FLOP/cycle
    per core (one 4-wide multiply + one 4-wide add per cycle); at 3.4 GHz ×
    4 cores ≈ 108 GFLOP/s, the paper's estimated machine peak. *)
let sse4 =
  {
    name = "sandybridge-sse4";
    cores = 4;
    clock_ghz = 3.4;
    vec_bytes = 16;
    vector_regs = 16;
    scalar_regs = 12;
    issue_width = 4.0;
    throughput =
      (function
      | Fp_mul -> 1.0
      | Fp_add -> 1.0
      | Valu -> 2.0
      | Salu -> 3.0
      | Shuf -> 1.0
      | Mem_ld -> 2.0
      | Mem_st -> 1.0);
    latency =
      (function
      | `Fp_addsub -> 3
      | `Fp_mul -> 5
      | `Fp_div -> 14
      | `Fp_trans -> 20
      | `Alu -> 1
      | `Load -> 4
      | `Shuf -> 1);
    spill_load_uops = 2;
    spill_store_uops = 1;
    spill_serial_factor = 2.0;
  }

(** The same core modelled with AVX 8-wide float vectors (the paper's
    "expected to scale to arbitrary widths" target). *)
let avx = { sse4 with name = "sandybridge-avx"; vec_bytes = 32 }

(** A machine with no vector unit: every op is scalar.  Used as a
    sanity baseline in ablations. *)
let scalar_only = { sse4 with name = "scalar"; vec_bytes = 4 }

(** Theoretical peak single-precision GFLOP/s (mul+add dual issue). *)
let peak_sp_gflops m =
  let lanes = float_of_int (m.vec_bytes / 4) in
  2.0 *. lanes *. m.clock_ghz *. float_of_int m.cores
