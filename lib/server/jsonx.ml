(** Minimal JSON for the daemon's line-delimited wire protocol.

    The repo deliberately has no third-party JSON dependency (metrics
    and reports hand-write their exports); the server needs the other
    direction too, so this is a small, total JSON codec: a
    recursive-descent parser returning [Error] on malformed input —
    a daemon answers a bad request, it does not die on one — and a
    printer whose output always round-trips.

    Numbers: integers without ['.'/'e'] parse as [Int], everything
    else as [Float].  Strings handle the standard escapes plus
    [\uXXXX] (encoded back out as UTF-8); other bytes pass through
    untouched.  Every dimension of hostile input is bounded: nesting
    depth (stack), total input length, individual string length, and
    array/object element counts (heap) — a request that exceeds any of
    them gets a structured [Error], never an [Out_of_memory] abort. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

(** Total input bound.  Generous because load-module requests carry
    whole PTX sources inline; the server's read loop enforces the same
    bound on its accumulation buffer, so a client streaming an endless
    line is cut off at this size too. *)
let max_input = 8 * 1024 * 1024

(* Longest single string literal / most elements in one array or object. *)
let max_string = 4 * 1024 * 1024
let max_items = 65536

(* ---- printer ---- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x ->
      if Float.is_nan x || Float.abs x = infinity then Buffer.add_string b "0"
      else if Float.is_integer x && Float.abs x < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" x)
      else Buffer.add_string b (Printf.sprintf "%.17g" x)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string (t : t) =
  let b = Buffer.create 256 in
  add b t;
  Buffer.contents b

(** One framed message of the line-delimited wire protocol: the JSON
    text followed by the terminating newline.  Every response the
    daemon puts on a socket goes through this, so the framing lives in
    exactly one place. *)
let to_line (t : t) = to_string t ^ "\n"

(* ---- parser ---- *)

exception Bad of string

type st = { s : string; mutable pos : int }

let fail st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let lit st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "bad literal (want %s)" word)

let hex4 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.s.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

(* UTF-8 encode a BMP code point (surrogate pairs are combined by the
   string scanner when both halves are present). *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    match st.s.[st.pos] with
    | '"' -> st.pos <- st.pos + 1
    | '\\' ->
        st.pos <- st.pos + 1;
        (if st.pos >= String.length st.s then fail st "truncated escape"
         else
           match st.s.[st.pos] with
           | '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1
           | '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1
           | '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1
           | 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1
           | 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1
           | 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1
           | 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1
           | 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1
           | 'u' ->
               st.pos <- st.pos + 1;
               let cp = hex4 st in
               let cp =
                 (* high surrogate followed by an escaped low surrogate *)
                 if
                   cp >= 0xd800 && cp <= 0xdbff
                   && st.pos + 2 <= String.length st.s
                   && st.s.[st.pos] = '\\'
                   && st.s.[st.pos + 1] = 'u'
                 then begin
                   st.pos <- st.pos + 2;
                   let lo = hex4 st in
                   if lo >= 0xdc00 && lo <= 0xdfff then
                     0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                   else cp
                 end
                 else cp
               in
               add_utf8 b cp
           | c -> fail st (Printf.sprintf "bad escape \\%c" c));
        go ()
    | c ->
        if Buffer.length b >= max_string then fail st "string too long";
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some x -> Float x
    | None -> fail st "bad number"
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> (
        (* out-of-range integer literal: degrade to float *)
        match float_of_string_opt tok with
        | Some x -> Float x
        | None -> fail st "bad number")

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items n acc =
          if n >= max_items then fail st "array too large";
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (n + 1) (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items 0 [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members n acc =
          if n >= max_items then fail st "object too large";
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members (n + 1) ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members 0 [])
      end
  | Some _ -> parse_number st

let of_string (s : string) : (t, string) result =
  if String.length s > max_input then
    Error
      (Printf.sprintf "input too large (%d bytes, limit %d)" (String.length s)
         max_input)
  else
  let st = { s; pos = 0 } in
  match parse_value st 0 with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ---- typed accessors (for picking requests apart) ---- *)

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_mem k j =
  match mem k j with Some (Str s) -> Some s | _ -> None

let int_mem k j =
  match mem k j with
  | Some (Int n) -> Some n
  | Some (Float x) when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let bool_mem k j = match mem k j with Some (Bool b) -> Some b | _ -> None
let list_mem k j = match mem k j with Some (List l) -> Some l | _ -> None
let obj_mem k j = match mem k j with Some (Obj o) -> Some o | _ -> None
