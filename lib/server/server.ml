(** The persistent multi-tenant vekt daemon (DESIGN.md §3.7–3.8).

    One process, one shared {!Vekt_runtime.Engine}, many sessions.  A
    session is a tenant-labelled {!Vekt_runtime.Api.device}: private
    global memory and allocator, private loaded modules, private
    metrics registry — but translation caches, by construction, live
    in the engine and are shared across every session with the same
    (source, config, machine) fingerprint.  The second tenant to
    launch an already-hot kernel skips tier-0/tier-1 compilation
    entirely; that is the whole point of keeping the process alive.

    Launches are not run synchronously on the connection: [submit-launch]
    enqueues a job on the admission {!Queue} and returns a job id; the
    client [poll]s for completion (or [cancel]s).  A dedicated domain
    runs {!Queue.worker_loop}; the socket loop never blocks on a
    launch.  Preemption uses per-job checkpoint directories under the
    server's checkpoint root, cleaned up when the job completes and
    swept entirely at shutdown.

    The daemon is {e crash-only} (DESIGN.md §3.8): the recovery path
    from [kill -9] is the same code that runs at every startup, so
    there is no separate "graceful degradation" mode to rot.  Three
    mechanisms carry state across a crash:

    - every submitted launch writes a [manifest.json] into its job
      directory before admission; a successor process rescans the
      checkpoint root, re-admits manifested jobs at the front of the
      queue under their original tenants, and resumes from the newest
      snapshot each launch had reached;
    - per-tenant archived tallies are journalled (line-JSON, atomically
      rewritten) so [stats] attribution survives the restart;
    - a leftover socket path is reclaimed after probing that no live
      daemon is behind it.

    Clean shutdown (SIGTERM / [shutdown]) is decommission, not crash:
    it drains the checkpoint root, journal included.  Persistence is
    for crashes only.

    On top of that, three protections keep a live daemon from being
    wedged by its own clients: per-request (or per-tenant default)
    deadlines that kill an overrunning launch at its next safe point,
    watermark-based overload shedding with [retry_after_ms] hints and
    idempotency-key dedup for safe retries, and TTL-based reaping of
    sessions whose client went away without [close-session].

    Request handling is deliberately split from transport:
    {!handle} maps request JSON to response JSON and is what the tests
    drive; {!serve} adds the Unix-socket line loop, the scheduler
    domain, and SIGTERM-clean shutdown around it.

    Concurrency note: request handling happens on the socket-loop
    domain while launches run on the scheduler domain.  The server
    mutex guards the session table; per-session metric registries are
    pre-registered at session open (including every [server.*] health
    counter the tally sink may bump), so the scheduler domain only
    ever bumps existing refs while [stats] reads them — no table
    mutation races.  Reading a buffer while a launch of the same
    session is in flight is the client's race to avoid, exactly as
    with a real asynchronous device queue. *)

module Api = Vekt_runtime.Api
module Engine = Vekt_runtime.Engine
module Checkpoint = Vekt_runtime.Checkpoint
module Clock = Vekt_runtime.Clock
module Obs = Vekt_obs
module Io = Vekt_chaos.Io
module J = Jsonx
module P = Protocol

type mod_entry = {
  me_mod : Api.modul;
  me_src : string;  (** PTX source, kept for job manifests *)
  me_spec : (string * string) list;  (** config spec, same reason *)
}

type session = {
  s_id : int;
  s_tenant : string;
  s_dev : Api.device;
  s_reg : Obs.Metrics.t;  (** per-session tally, merged per tenant on scrape *)
  s_sink : Obs.Sink.t;
  s_modules : (int, mod_entry) Hashtbl.t;
  mutable s_next_module : int;
  mutable s_jobs : int list;
  mutable s_last_active : float;  (** monotonic µs of the last request *)
}

type recovered = {
  r_job : int;
  r_session : int;
  r_tenant : string;
  r_label : string;
}

type t = {
  engine : Engine.t;
  queue : Queue.t;
  lock : Mutex.t;
  sessions : (int, session) Hashtbl.t;
  closed_tallies : (string, Obs.Metrics.t) Hashtbl.t;
      (** per-tenant archive of closed sessions' tallies, so [stats]
          attribution survives session close; LRU-bounded at
          [archive_cap] tenants and journalled for restart recovery *)
  archive_touch : (string, float) Hashtbl.t;  (** LRU clock per tenant *)
  archive_cap : int;
  session_ttl_s : float option;
      (** idle sessions older than this are reaped; [None] = never *)
  dedup : (string, float * J.t) Hashtbl.t;
      (** (tenant × idempotency key) → (birth µs, cached response) *)
  dedup_window_s : float;
  ckpt_dir : string;
  global_bytes : int;  (** per-session arena size *)
  mutable next_session : int;
  mutable next_job_dir : int;
  mutable reaped : int;
  mutable dedup_hits : int;
  mutable archive_evicted : int;
  mutable recovered : recovered list;
      (** jobs re-admitted from a dead predecessor's checkpoint root *)
  mutable stopping : bool;
}

(* All durable-state mutation below goes through Vekt_chaos.Io so the
   chaos engine can enumerate and crash-test every boundary; with the
   default implementation these are the plain syscalls they replace. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Io.mkdir dir 0o755 with Unix.Unix_error _ -> () | Sys_error _ -> ()
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Io.rmdir path with Unix.Unix_error _ -> () | Sys_error _ -> ()
    end
    else try Io.remove path with Unix.Unix_error _ -> () | Sys_error _ -> ()

(* ---- tenant-tally journal (restart recovery of [stats]) ----

   One line of JSON per archived tenant, the inverse of
   Metrics.to_json.  p50/p95/sum are recomputed from the bins on load,
   so only counters, gauges and histogram bins need to round-trip. *)

let metrics_of_json (j : J.t) : Obs.Metrics.t =
  let reg = Obs.Metrics.create () in
  (match j with
  | J.Obj kvs ->
      List.iter
        (fun (name, v) ->
          match J.str_mem "type" v with
          | Some "counter" ->
              Option.iter
                (fun n -> Obs.Metrics.incr ~by:n (Obs.Metrics.counter reg name))
                (J.int_mem "value" v)
          | Some "gauge" -> (
              match J.mem "value" v with
              | Some (J.Float x) -> Obs.Metrics.set (Obs.Metrics.gauge reg name) x
              | Some (J.Int n) ->
                  Obs.Metrics.set (Obs.Metrics.gauge reg name) (float_of_int n)
              | _ -> ())
          | Some "histogram" ->
              let h = Obs.Metrics.histogram reg name in
              Option.iter
                (List.iter (fun (bk, bv) ->
                     match (int_of_string_opt bk, bv) with
                     | Some bin, J.Int n -> Obs.Metrics.observe_n h ~bin n
                     | _ -> ()))
                (J.obj_mem "bins" v)
          | _ -> ())
        kvs
  | _ -> ());
  reg

let journal_path t = Filename.concat t.ckpt_dir "tenant-tallies.journal"

(* Caller holds t.lock.  The whole journal is rewritten (compacted)
   atomically on every archive merge: archives change rarely (session
   close / reap), and a crash mid-write must never corrupt the old
   journal. *)
let save_journal_locked t =
  let buf = Buffer.create 512 in
  Hashtbl.iter
    (fun tenant reg ->
      Buffer.add_string buf
        (J.to_line
           (J.Obj [ ("tenant", J.Str tenant); ("metrics", P.metrics_json reg) ])))
    t.closed_tallies;
  try Io.save_atomic ~path:(journal_path t) (Buffer.contents buf)
  with Sys_error _ | Unix.Unix_error _ -> ()

let load_journal t =
  (* a predecessor may have died mid-save: its half-written temp file
     is a crash artifact, never a recovery source — sweep it *)
  let tmp = journal_path t ^ ".tmp" in
  if Sys.file_exists tmp then (
    try Io.remove tmp with Unix.Unix_error _ | Sys_error _ -> ());
  match In_channel.with_open_bin (journal_path t) In_channel.input_all with
  | exception Sys_error _ -> ()
  | data ->
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match J.of_string line with
            | Error _ -> ()  (* torn line: drop it, keep the rest *)
            | Ok j -> (
                match (J.str_mem "tenant" j, J.mem "metrics" j) with
                | Some tenant, Some mj ->
                    Hashtbl.replace t.closed_tallies tenant (metrics_of_json mj);
                    Hashtbl.replace t.archive_touch tenant (Clock.now_us ())
                | _ -> ()))
        (String.split_on_char '\n' data)

(* Caller holds t.lock.  Merge a closing session's tallies into its
   tenant's archive, bump the tenant's LRU clock, evict the coldest
   tenants beyond the cap, persist. *)
let archive_session_locked t (s : session) =
  let archive =
    match Hashtbl.find_opt t.closed_tallies s.s_tenant with
    | Some reg -> reg
    | None ->
        let reg = Obs.Metrics.create () in
        Hashtbl.replace t.closed_tallies s.s_tenant reg;
        reg
  in
  Obs.Metrics.merge_into ~into:archive s.s_reg;
  Hashtbl.replace t.archive_touch s.s_tenant (Clock.now_us ());
  let rec enforce_cap () =
    if Hashtbl.length t.closed_tallies > t.archive_cap then
      let victim =
        Hashtbl.fold
          (fun tenant _ acc ->
            let touch =
              Option.value (Hashtbl.find_opt t.archive_touch tenant) ~default:0.0
            in
            match acc with
            | Some (_, best) when best <= touch -> acc
            | _ -> Some (tenant, touch))
          t.closed_tallies None
      in
      match victim with
      | None -> ()
      | Some (tenant, _) ->
          Hashtbl.remove t.closed_tallies tenant;
          Hashtbl.remove t.archive_touch tenant;
          t.archive_evicted <- t.archive_evicted + 1;
          enforce_cap ()
  in
  enforce_cap ();
  save_journal_locked t

(* Fresh session.  Everything the scheduler domain will ever touch in
   the registry is pre-registered here — including the lazily-named
   server.* health counters the tally sink bumps — so scrape never
   races a Hashtbl insert (see the concurrency note above). *)
let new_session t tenant : session =
  let reg = Obs.Metrics.create () in
  ignore (Obs.Metrics.histogram reg "queue.wait_ms");
  ignore (Obs.Metrics.counter reg "launches");
  List.iter
    (fun a ->
      ignore (Obs.Metrics.counter reg ("server." ^ Obs.Event.server_action_name a)))
    [
      Obs.Event.Sv_shed;
      Obs.Event.Sv_deadline_kill;
      Obs.Event.Sv_expired;
      Obs.Event.Sv_reaped;
      Obs.Event.Sv_recovered;
    ];
  let sink = Obs.Tally.sink reg in
  let dev =
    Api.create_device ~engine:t.engine ~global_bytes:t.global_bytes ()
  in
  Mutex.lock t.lock;
  let id = t.next_session in
  t.next_session <- id + 1;
  let s =
    {
      s_id = id;
      s_tenant = tenant;
      s_dev = dev;
      s_reg = reg;
      s_sink = sink;
      s_modules = Hashtbl.create 4;
      s_next_module = 0;
      s_jobs = [];
      s_last_active = Clock.now_us ();
    }
  in
  Hashtbl.replace t.sessions id s;
  Mutex.unlock t.lock;
  s

(* A config arrives as a JSON object of knobs ({"mode":"static",
   "hot-threshold":2,...}); flatten to the string-keyed spec shared
   with the CLI so both paths go through Api.config_of_spec. *)
let config_spec_of_json req : (string * string) list =
  match J.obj_mem "config" req with
  | None -> []
  | Some kvs ->
      List.map
        (fun (k, v) ->
          let sv =
            match v with
            | J.Str s -> s
            | J.Int n -> string_of_int n
            | J.Float x -> Fmt.str "%g" x
            | J.Bool b -> string_of_bool b
            | J.Null | J.List _ | J.Obj _ ->
                P.bad "config key %S: want a scalar value" k
          in
          (k, sv))
        kvs

(* The queue-run closure shared by live submits and restart recovery.
   Snapshot-directory cleanup is NOT done here: the queue's terminal
   cleanup hook owns it, so preempted and crash-interrupted jobs keep
   their resume state on disk. *)
let launch_run (s : session) (m : Api.modul) ~kernel ~grid ~block ~args
    ~preemptible ~jdir ~resume ~preempt ~deadline_ms ~wait_us =
  Obs.Metrics.observe
    (Obs.Metrics.histogram s.s_reg "queue.wait_ms")
    (int_of_float (wait_us /. 1000.0));
  let preempt = if preemptible then Some preempt else None in
  let r =
    Api.launch ?preempt ?resume ?deadline_ms ~ckpt_dir:jdir ~sink:s.s_sink m
      ~kernel ~grid ~block ~args
  in
  Obs.Metrics.incr (Obs.Metrics.counter s.s_reg "launches");
  r

(* ---- job manifests (restart recovery of in-flight launches) ---- *)

let dim3_json (d : Vekt_ptx.Launch.dim3) =
  J.List [ J.Int d.Vekt_ptx.Launch.x; J.Int d.y; J.Int d.z ]

(* Written atomically and durably (tmp + fsync + rename + directory
   fsync) before the job is admitted, so a crash at any instant leaves
   either no manifest (job was never acknowledged) or a complete one —
   and a manifest that was acknowledged cannot be un-renamed by the
   crash.  The chaos engine drills every boundary of this sequence. *)
let write_manifest ~jdir (fields : (string * J.t) list) =
  mkdir_p jdir;
  Io.save_atomic
    ~path:(Filename.concat jdir "manifest.json")
    (J.to_string (J.Obj fields))

let manifest_fields ~tenant ~label ~priority ~kernel ~grid ~block ~specs ~addrs
    ~src ~spec ~preemptible ~deadline_ms : (string * J.t) list =
  [
    ("tenant", J.Str tenant);
    ("label", J.Str label);
    ("priority", J.Int priority);
    ("kernel", J.Str kernel);
    ("grid", dim3_json grid);
    ("block", dim3_json block);
    ("args", J.List (List.map (fun s -> J.Str s) specs));
    (* resolved buffer addresses, parallel to [args]; the client was
       told these, so a from-scratch recovery must re-pin them *)
    ( "arg-addrs",
      J.List
        (List.map
           (function None -> J.Null | Some a -> J.Int a)
           addrs) );
    ("src", J.Str src);
    ("config", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) spec));
    ("preemptible", J.Bool preemptible);
  ]
  @ match deadline_ms with None -> [] | Some ms -> [ ("deadline-ms", J.Int ms) ]

(* Re-admit one job directory left by a dead predecessor: rebuild the
   module and argument block in a fresh recovery session for the
   original tenant, then enqueue at the front with the newest snapshot
   as the resume point (the snapshot's global-memory image overwrites
   whatever the fresh arg parse allocated, so execution continues with
   the original addresses and data).  A manifest with no snapshot
   reruns from scratch.  The recovered launch runs without a deadline:
   its elapsed budget died with the predecessor, and killing recovered
   work on a guess would defeat the recovery. *)
let recover_one t ~jdir =
  let mj =
    match
      J.of_string
        (In_channel.with_open_bin (Filename.concat jdir "manifest.json")
           In_channel.input_all)
    with
    | Ok j -> j
    | Error msg -> failwith msg
  in
  let tenant = P.req_str mj "tenant" in
  let label = P.req_str mj "label" in
  let kernel = P.req_str mj "kernel" in
  let priority = Option.value (P.opt_int "priority" mj) ~default:0 in
  let preemptible = Option.value (P.opt_bool "preemptible" mj) ~default:true in
  let grid = P.req_dim3 mj "grid" in
  let block = P.req_dim3 mj "block" in
  let src = P.req_str mj "src" in
  let spec = config_spec_of_json mj in
  let specs =
    match J.list_mem "args" mj with
    | None -> []
    | Some l ->
        List.map (function J.Str s -> s | _ -> failwith "manifest args") l
  in
  (* the addresses the dead daemon acknowledged to its client, parallel
     to [specs]; absent in manifests written before they were recorded *)
  let addrs =
    match J.list_mem "arg-addrs" mj with
    | Some l when List.length l = List.length specs ->
        List.map (function J.Int a -> Some a | _ -> None) l
    | _ -> List.map (fun _ -> None) specs
  in
  let s = new_session t tenant in
  let config =
    match Api.config_of_spec spec with Ok c -> c | Error msg -> failwith msg
  in
  let m = Api.load_module ~config ~sink:s.s_sink s.s_dev src in
  let mid = s.s_next_module in
  s.s_next_module <- mid + 1;
  Hashtbl.replace s.s_modules mid { me_mod = m; me_src = src; me_spec = spec };
  (* Re-parse each spec with its buffer pinned at the original address:
     the recovery session's arena is fresh, but the client holds the
     dead daemon's addresses, and a from-scratch rerun must write its
     outputs where the client will read them. *)
  let parsed =
    List.map2
      (fun spec addr ->
        (match addr with
        | Some a -> Api.reserve_to s.s_dev a
        | None -> ());
        match Api.arg_of_spec s.s_dev spec with
        | Ok a -> a
        | Error msg -> failwith msg)
      specs addrs
  in
  let args = List.map (fun a -> a.Api.launch_arg) parsed in
  let resume = Checkpoint.newest_snapshot ~dir:jdir in
  let run = launch_run s m ~kernel ~grid ~block ~args ~preemptible ~jdir in
  match
    Queue.submit t.queue ~tenant ~label ~priority ~sink:s.s_sink ~front:true
      ?resume
      ~cleanup:(fun () -> rm_rf jdir)
      ~run ()
  with
  | Error _ -> ()
  | Ok j ->
      s.s_jobs <- j.Queue.id :: s.s_jobs;
      Queue.emit_health s.s_sink ~tenant ~action:Obs.Event.Sv_recovered
        ~detail:
          (Fmt.str "job %d (%s)%s" j.Queue.id label
             (match resume with
             | Some p -> " from " ^ p
             | None -> " from scratch"));
      t.recovered <-
        { r_job = j.Queue.id; r_session = s.s_id; r_tenant = tenant;
          r_label = label }
        :: t.recovered

(* Rescan the checkpoint root for a dead predecessor's job directories
   and re-admit each, oldest submission first (they all go to the
   queue front, so iterate ascending to preserve original order within
   a tenant).  A directory that fails to recover — torn manifest,
   source that no longer parses — is skipped and left on disk for
   post-mortem rather than failing daemon startup. *)
let recover_jobs t =
  let entries = try Sys.readdir t.ckpt_dir with Sys_error _ -> [||] in
  let jobdirs =
    Array.to_list entries
    |> List.filter_map (fun name ->
           match String.length name > 4 && String.sub name 0 4 = "job-" with
           | false -> None
           | true -> (
               let path = Filename.concat t.ckpt_dir name in
               match
                 ( int_of_string_opt
                     (String.sub name 4 (String.length name - 4)),
                   Sys.is_directory path )
               with
               | Some n, true -> Some (n, path)
               | _ -> None))
    |> List.sort compare
  in
  t.next_job_dir <-
    List.fold_left (fun acc (n, _) -> max acc (n + 1)) t.next_job_dir jobdirs;
  List.iter
    (fun (_, jdir) ->
      if Sys.file_exists (Filename.concat jdir "manifest.json") then
        try recover_one t ~jdir
        with _ -> ()
      else
        (* snapshots but no manifest: a pre-manifest leftover; not
           reconstructible, so sweep it *)
        rm_rf jdir)
    jobdirs

let create ?engine ?(quota = 16) ?(weight = 1)
    ?(global_bytes = 64 * 1024 * 1024) ?(ckpt_dir = "vekt-serve-ckpt")
    ?(high_watermark = 64) ?(low_watermark = 48) ?session_ttl_s
    ?(archive_cap = 64) ?(dedup_window_s = 300.0) () : t =
  let engine =
    match engine with Some e -> e | None -> Engine.create ()
  in
  mkdir_p ckpt_dir;
  let t =
    {
      engine;
      queue = Queue.create ~quota ~weight ~high_watermark ~low_watermark ();
      lock = Mutex.create ();
      sessions = Hashtbl.create 8;
      closed_tallies = Hashtbl.create 8;
      archive_touch = Hashtbl.create 8;
      archive_cap = max 1 archive_cap;
      session_ttl_s;
      dedup = Hashtbl.create 8;
      dedup_window_s;
      ckpt_dir;
      global_bytes;
      next_session = 0;
      next_job_dir = 0;
      reaped = 0;
      dedup_hits = 0;
      archive_evicted = 0;
      recovered = [];
      stopping = false;
    }
  in
  load_journal t;
  recover_jobs t;
  t

let queue t = t.queue
let engine t = t.engine
let stopping t = t.stopping
let recovered t = List.rev t.recovered

(** Live bytes across every open session's arena — the number reaping
    must return to baseline when abandoned sessions are swept. *)
let total_allocated_bytes t =
  Mutex.lock t.lock;
  let n =
    Hashtbl.fold (fun _ s acc -> acc + Api.allocated_bytes s.s_dev) t.sessions 0
  in
  Mutex.unlock t.lock;
  n

(* ---- request handlers (each may raise P.Bad_request / Vekt_error) ---- *)

let session_of t req : session =
  let id = P.req_int req "session" in
  Mutex.lock t.lock;
  let s = Hashtbl.find_opt t.sessions id in
  Mutex.unlock t.lock;
  match s with
  | Some s ->
      s.s_last_active <- Clock.now_us ();
      s
  | None -> P.bad "unknown session %d" id

let module_of s req : mod_entry =
  let id = P.req_int req "module" in
  match Hashtbl.find_opt s.s_modules id with
  | Some m -> m
  | None -> P.bad "unknown module %d in session %d" id s.s_id

let open_session t req : J.t =
  let tenant = P.req_str req "tenant" in
  (match
     (P.opt_int "weight" req, P.opt_int "quota" req, P.opt_int "deadline-ms" req)
   with
  | None, None, None -> ()
  | weight, quota, deadline_ms ->
      Queue.set_tenant t.queue ~name:tenant ?weight ?quota ?deadline_ms ());
  let s = new_session t tenant in
  P.ok [ ("session", J.Int s.s_id); ("tenant", J.Str tenant) ]

let close_session t req : J.t =
  let s = session_of t req in
  List.iter (fun id -> ignore (Queue.cancel t.queue ~id)) s.s_jobs;
  Mutex.lock t.lock;
  Hashtbl.remove t.sessions s.s_id;
  archive_session_locked t s;
  Mutex.unlock t.lock;
  P.ok []

let load_module t req : J.t =
  let s = session_of t req in
  let src = P.req_str req "src" in
  let spec = config_spec_of_json req in
  let config =
    match Api.config_of_spec spec with
    | Ok c -> c
    | Error msg -> raise (P.Bad_request msg)
  in
  let m = Api.load_module ~config ~sink:s.s_sink s.s_dev src in
  let id = s.s_next_module in
  s.s_next_module <- id + 1;
  Hashtbl.replace s.s_modules id { me_mod = m; me_src = src; me_spec = spec };
  P.ok [ ("module", J.Int id) ]

let malloc t req : J.t =
  let s = session_of t req in
  let bytes = P.req_int req "bytes" in
  let addr = Api.malloc s.s_dev bytes in
  P.ok [ ("addr", J.Int addr) ]

let free t req : J.t =
  let s = session_of t req in
  Api.free s.s_dev (P.req_int req "addr");
  P.ok []

let reset_arena t req : J.t =
  let s = session_of t req in
  Api.reset_arena s.s_dev;
  P.ok []

let float_of_json k = function
  | J.Int n -> float_of_int n
  | J.Float x -> x
  | _ -> P.bad "field %S: want numbers" k

let write t req : J.t =
  let s = session_of t req in
  let addr = P.req_int req "addr" in
  (match (J.list_mem "f32s" req, J.list_mem "i32s" req) with
  | Some xs, _ -> Api.write_f32s s.s_dev addr (List.map (float_of_json "f32s") xs)
  | None, Some xs ->
      Api.write_i32s s.s_dev addr
        (List.map
           (function
             | J.Int n -> n | _ -> P.bad "field \"i32s\": want integers")
           xs)
  | None, None -> P.bad "write: want \"f32s\" or \"i32s\"");
  P.ok []

let read t req : J.t =
  let s = session_of t req in
  let addr = P.req_int req "addr" in
  let count = P.req_int req "count" in
  if count < 0 || count > 1 lsl 24 then P.bad "read: unreasonable count %d" count;
  let values =
    match P.req_str req "ty" with
    | "f32" -> List.map (fun x -> J.Float x) (Api.read_f32s s.s_dev addr count)
    | "i32" ->
        List.map (fun x -> J.Int x) (Api.read_i32s s.s_dev addr count)
    | ty -> P.bad "read: unknown type %S" ty
  in
  P.ok [ ("values", J.List values) ]

(* ---- idempotent retries ----

   A client retrying after an [Overloaded] response (or a dropped
   connection) must not double-launch work its first attempt actually
   admitted.  Submits may carry an ["idempotency-key"]; the first
   successful admission per (tenant, key) is cached for
   [dedup_window_s] and replayed verbatim on retries.  Failures are
   not cached — a retry after a shed should get a fresh admission
   attempt. *)

let dedup_key (s : session) key = s.s_tenant ^ "\x1f" ^ key

let dedup_find t s key : J.t option =
  let k = dedup_key s key in
  Mutex.lock t.lock;
  let hit =
    match Hashtbl.find_opt t.dedup k with
    | Some (born, resp) when Clock.now_us () -. born <= t.dedup_window_s *. 1e6
      ->
        t.dedup_hits <- t.dedup_hits + 1;
        Some resp
    | _ -> None
  in
  Mutex.unlock t.lock;
  hit

let dedup_store t s key (resp : J.t) =
  if J.bool_mem "ok" resp = Some true then begin
    Mutex.lock t.lock;
    if Hashtbl.length t.dedup > 1024 then begin
      let now = Clock.now_us () in
      let stale =
        Hashtbl.fold
          (fun k (born, _) acc ->
            if now -. born > t.dedup_window_s *. 1e6 then k :: acc else acc)
          t.dedup []
      in
      List.iter (Hashtbl.remove t.dedup) stale
    end;
    Hashtbl.replace t.dedup (dedup_key s key) (Clock.now_us (), resp);
    Mutex.unlock t.lock
  end

let do_submit_launch t (s : session) req : J.t =
  let me = module_of s req in
  let kernel = P.req_str req "kernel" in
  let grid = P.req_dim3 req "grid" in
  let block = P.req_dim3 req "block" in
  let priority = Option.value (P.opt_int "priority" req) ~default:0 in
  let label = Option.value (P.opt_str "label" req) ~default:kernel in
  let preemptible = Option.value (P.opt_bool "preemptible" req) ~default:true in
  let deadline_ms = P.opt_int "deadline-ms" req in
  let specs =
    match J.list_mem "args" req with
    | None -> []
    | Some l ->
        List.map
          (function J.Str s -> s | _ -> P.bad "args: want spec strings")
          l
  in
  let parsed =
    List.map
      (fun spec ->
        match Api.arg_of_spec s.s_dev spec with
        | Ok a -> a
        | Error msg -> raise (P.Bad_request msg))
      specs
  in
  let args = List.map (fun a -> a.Api.launch_arg) parsed in
  Mutex.lock t.lock;
  let jdir =
    Filename.concat t.ckpt_dir (Fmt.str "job-%d" t.next_job_dir)
  in
  t.next_job_dir <- t.next_job_dir + 1;
  Mutex.unlock t.lock;
  write_manifest ~jdir
    (manifest_fields ~tenant:s.s_tenant ~label ~priority ~kernel ~grid ~block
       ~specs
       ~addrs:(List.map (fun a -> a.Api.addr) parsed)
       ~src:me.me_src ~spec:me.me_spec ~preemptible ~deadline_ms);
  let run =
    launch_run s me.me_mod ~kernel ~grid ~block ~args ~preemptible ~jdir
  in
  match
    Queue.submit t.queue ~tenant:s.s_tenant ~label ~priority ~sink:s.s_sink
      ?deadline_ms
      ~cleanup:(fun () -> rm_rf jdir)
      ~run ()
  with
  | Error e ->
      (* never admitted: no recovery state to keep *)
      rm_rf jdir;
      P.error_json e
  | Ok j ->
      s.s_jobs <- j.Queue.id :: s.s_jobs;
      P.ok
        [
          ("job", J.Int j.Queue.id);
          ( "args",
            J.List
              (List.map
                 (fun a ->
                   match a.Api.addr with None -> J.Null | Some n -> J.Int n)
                 parsed) );
        ]

let submit_launch t req : J.t =
  let s = session_of t req in
  match P.opt_str "idempotency-key" req with
  | None -> do_submit_launch t s req
  | Some key -> (
      match dedup_find t s key with
      | Some resp -> resp
      | None ->
          let resp = do_submit_launch t s req in
          dedup_store t s key resp;
          resp)

let poll t req : J.t =
  let id = P.req_int req "job" in
  match Queue.info t.queue ~id with
  | None -> P.bad "unknown job %d" id
  | Some i ->
      let base =
        [
          ("job", J.Int i.Queue.i_id);
          ("state", J.Str (Queue.state_name i.Queue.i_state));
          ("tenant", J.Str i.Queue.i_tenant);
          ("wait_us", J.Float i.Queue.i_wait_us);
          ("preemptions", J.Int i.Queue.i_preemptions);
        ]
      in
      let extra =
        match i.Queue.i_state with
        | Queue.Done (Queue.Finished r) -> [ ("result", P.report_json r) ]
        | Queue.Done (Queue.Failed e) ->
            [
              ( "error",
                J.Obj
                  ([
                     ("kind", J.Str (Vekt_error.kind_name e));
                     ("message", J.Str (Vekt_error.to_string e));
                   ]
                  @ P.error_extras e) );
            ]
        | _ -> []
      in
      P.ok (base @ extra)

let cancel t req : J.t =
  let id = P.req_int req "job" in
  P.ok [ ("cancelled", J.Bool (Queue.cancel t.queue ~id)) ]

(* ---- dead-tenant reaping ---- *)

let job_terminal t id =
  match Queue.info t.queue ~id with
  | None -> true
  | Some i -> (
      match i.Queue.i_state with
      | Queue.Done _ | Queue.Cancelled -> true
      | Queue.Queued | Queue.Running | Queue.Preempted -> false)

(** Close sessions whose client has been silent past the TTL and whose
    jobs are all terminal (a session with work in flight is not dead,
    however silent).  Goes through the same archive path as
    [close-session] — tallies merged, journal saved — plus
    {!Api.reset_arena} so the arena bytes actually return to the pool.
    Returns how many sessions were reaped; called on the serve loop's
    tick cadence and directly by tests. *)
let reap_idle t : int =
  match t.session_ttl_s with
  | None -> 0
  | Some ttl ->
      let now = Clock.now_us () in
      Mutex.lock t.lock;
      let idle =
        Hashtbl.fold
          (fun _ s acc ->
            if now -. s.s_last_active > ttl *. 1e6 then s :: acc else acc)
          t.sessions []
      in
      Mutex.unlock t.lock;
      let n = ref 0 in
      List.iter
        (fun s ->
          if List.for_all (job_terminal t) s.s_jobs then begin
            incr n;
            (* on the session's own sink *before* archiving, so the
               server.reaped tally lands in the tenant's archive *)
            Queue.emit_health s.s_sink ~tenant:s.s_tenant
              ~action:Obs.Event.Sv_reaped
              ~detail:(Fmt.str "session %d idle" s.s_id);
            Api.reset_arena s.s_dev;
            Mutex.lock t.lock;
            Hashtbl.remove t.sessions s.s_id;
            archive_session_locked t s;
            t.reaped <- t.reaped + 1;
            Mutex.unlock t.lock
          end)
        idle;
      !n

(* stats: engine-wide counters plus per-tenant views.  Each tenant's
   object is the merge of its sessions' tally registries (jit.*,
   fallback.*, ckpt.*, server.*, queue.wait_ms, launches) — so cache
   hits and fallbacks are attributed to the tenant whose launch
   produced them even though the caches themselves are shared. *)
let stats t : J.t =
  let reg = Obs.Metrics.create () in
  Engine.metrics_into t.engine reg;
  Queue.metrics_into t.queue reg;
  let module M = Obs.Metrics in
  M.counter reg "server.reaped" := t.reaped;
  M.counter reg "server.recovered_launches" := List.length t.recovered;
  M.counter reg "server.dedup_hits" := t.dedup_hits;
  M.counter reg "server.archive_evicted" := t.archive_evicted;
  M.set (M.gauge reg "server.allocated_bytes")
    (float_of_int (total_allocated_bytes t));
  Mutex.lock t.lock;
  M.set (M.gauge reg "server.sessions_open")
    (float_of_int (Hashtbl.length t.sessions));
  let by_tenant = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ s ->
      let prev =
        Option.value (Hashtbl.find_opt by_tenant s.s_tenant) ~default:[]
      in
      Hashtbl.replace by_tenant s.s_tenant (s :: prev))
    t.sessions;
  (* tenants whose sessions have all closed still appear, from the archive *)
  Hashtbl.iter
    (fun tenant _ ->
      if not (Hashtbl.mem by_tenant tenant) then
        Hashtbl.replace by_tenant tenant [])
    t.closed_tallies;
  Mutex.unlock t.lock;
  let tstats = Queue.tenant_stats t.queue in
  let tenants =
    Hashtbl.fold
      (fun tenant sessions acc ->
        let merged = Obs.Metrics.create () in
        (match Hashtbl.find_opt t.closed_tallies tenant with
        | Some archive -> Obs.Metrics.merge_into ~into:merged archive
        | None -> ());
        List.iter (fun s -> Obs.Metrics.merge_into ~into:merged s.s_reg) sessions;
        let extra =
          match List.assoc_opt tenant tstats with
          | None -> []
          | Some (weight, quota, active) ->
              [
                ("weight", J.Int weight);
                ("quota", J.Int quota);
                ("active_jobs", J.Int active);
              ]
        in
        ( tenant,
          J.Obj
            (("sessions", J.Int (List.length sessions))
            :: extra
            @ [ ("metrics", P.metrics_json merged) ]) )
        :: acc)
      by_tenant []
    |> List.sort compare
  in
  P.ok
    [
      ("engine", P.metrics_json reg);
      ("tenants", J.Obj tenants);
      ( "recovered",
        J.List
          (List.rev_map
             (fun r ->
               J.Obj
                 [
                   ("job", J.Int r.r_job);
                   ("session", J.Int r.r_session);
                   ("tenant", J.Str r.r_tenant);
                   ("label", J.Str r.r_label);
                 ])
             t.recovered) );
    ]

(** Map one request to one response.  Total: malformed or failing
    requests produce [ok:false] responses, never exceptions. *)
let handle t (req : J.t) : J.t =
  match
    match J.str_mem "cmd" req with
    | None -> P.bad_request "missing \"cmd\""
    | Some cmd -> (
        match cmd with
        | "ping" -> P.ok [ ("version", J.Int P.version) ]
        | "open-session" -> open_session t req
        | "close-session" -> close_session t req
        | "load-module" -> load_module t req
        | "malloc" -> malloc t req
        | "free" -> free t req
        | "reset-arena" -> reset_arena t req
        | "write" -> write t req
        | "read" -> read t req
        | "submit-launch" -> submit_launch t req
        | "poll" -> poll t req
        | "cancel" -> cancel t req
        | "stats" -> stats t
        | "shutdown" ->
            t.stopping <- true;
            P.ok []
        | cmd -> P.bad_request (Fmt.str "unknown command %S" cmd))
  with
  | resp -> resp
  | exception P.Bad_request msg -> P.bad_request msg
  | exception Vekt_error.Error e -> P.error_json e
  | exception (Invalid_argument msg | Failure msg) -> P.bad_request msg

let handle_line t (line : string) : string =
  let resp =
    match J.of_string line with
    | Error msg -> P.bad_request (Fmt.str "parse error: %s" msg)
    | Ok req -> handle t req
  in
  J.to_line resp

(* ---- transport: line-delimited JSON over a Unix-domain socket ---- *)

type client = {
  c_fd : Unix.file_descr;
  mutable c_acc : string;
  mutable c_line_start : float option;
      (* monotonic µs when the current (incomplete) line started; not
         refreshed on new bytes, so a one-byte-per-poll trickler hits
         the read deadline just like a fully stalled client *)
}

(* Retries before a stalled peer is declared dead.  Each retry waits
   for writability (below), so this bounds patience, not CPU. *)
let max_write_stalls = 8

(** Put the whole response on the wire.  A bare [write] is wrong on
    every axis a real socket exposes: partial writes (we loop), EINTR
    (retry), EAGAIN/EWOULDBLOCK or a zero-length write from a stalled
    reader (wait for writability and retry, a bounded number of
    times).  EPIPE and a peer that stays stalled past the retry budget
    still raise — the {e caller} owns the connection and drops it
    cleanly; the accept loop never dies for one broken client.  The
    send itself goes through {!Vekt_chaos.Io} so the chaos engine can
    drill mid-response socket failures. *)
let write_all fd s =
  let n = String.length s in
  let wait_writable () =
    match Unix.select [] [ fd ] [] 0.25 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec go off stalls =
    if off < n then
      if stalls > max_write_stalls then
        raise (Unix.Unix_error (Unix.EAGAIN, "write_all", "peer stalled"))
      else
        match Io.send fd s off (n - off) with
        | 0 ->
            wait_writable ();
            go off (stalls + 1)
        | written -> go (off + written) 0
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off stalls
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            wait_writable ();
            go off (stalls + 1)
  in
  go 0 0

(* Peel complete lines off a client's accumulation buffer, answer each. *)
let drain_client t (c : client) =
  let rec go () =
    match String.index_opt c.c_acc '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub c.c_acc 0 i in
        c.c_acc <-
          String.sub c.c_acc (i + 1) (String.length c.c_acc - i - 1);
        if String.trim line <> "" then write_all c.c_fd (handle_line t line);
        go ()
  in
  go ();
  if c.c_acc = "" then c.c_line_start <- None
  else if c.c_line_start = None then c.c_line_start <- Some (Clock.now_us ())

(** Ask the serve loop (and scheduler) to wind down: cancel every live
    job so the scheduler domain reaches a safe point promptly, then
    stop the queue. *)
let initiate_shutdown t =
  t.stopping <- true;
  Queue.cancel_all t.queue;
  Queue.shutdown t.queue

(** Clean shutdown is decommission: stop the queue and sweep the
    checkpoint root, journal included — persistence is for crashes
    only.  Idempotent.  [serve] ends with this; the chaos harness
    calls it directly after driving a recovery to completion, and then
    checks that nothing of the state directory remains. *)
let decommission t =
  initiate_shutdown t;
  rm_rf t.ckpt_dir

(* A left-over socket path from a crashed predecessor must not block
   startup — but a live daemon behind it must.  Probe by connecting:
   refused/failed means dead (unlink and claim), accepted means a live
   daemon owns it. *)
let claim_socket socket =
  if Sys.file_exists socket then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      failwith (Fmt.str "socket %s is served by a live daemon" socket);
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  end

(** Run the daemon on [socket] until SIGTERM/SIGINT or a [shutdown]
    request.  [read_deadline_s] bounds how long a client may sit on an
    incomplete request line (and, via [SO_SNDTIMEO], how long a write
    to a stalled reader may block) before the connection is dropped —
    one slow client must not wedge the accept loop for everyone else.
    Cleans up on exit: scheduler domain joined, client and listen
    sockets closed, socket path unlinked, checkpoint root (journal
    included) swept — clean shutdown is decommission; persistence is
    for crashes. *)
let serve t ?(read_deadline_s = 10.0) ~socket () =
  claim_socket socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let sched = Domain.spawn (fun () -> Queue.worker_loop t.queue) in
  let stop = ref false in
  let on_signal _ = stop := true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  (* a peer that hangs up between select and our write must surface as
     EPIPE on that one connection, not as a process-killing SIGPIPE *)
  let prev_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  let close_client fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let buf = Bytes.create 65536 in
  while not (!stop || t.stopping) do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    (match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              match Unix.accept listen_fd with
              | cfd, _ ->
                  (try Unix.setsockopt_float cfd Unix.SO_SNDTIMEO read_deadline_s
                   with Unix.Unix_error _ | Invalid_argument _ -> ());
                  Hashtbl.replace clients cfd
                    { c_fd = cfd; c_acc = ""; c_line_start = None }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some c -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> close_client fd
                  | n ->
                      c.c_acc <- c.c_acc ^ Bytes.sub_string buf 0 n;
                      if String.length c.c_acc > J.max_input then begin
                        (* an endless line: answer once, hang up *)
                        (try
                           write_all c.c_fd
                             (J.to_line (P.bad_request "request line too long"))
                         with Unix.Unix_error _ -> ());
                        close_client fd
                      end
                      else begin
                        try drain_client t c
                        with Unix.Unix_error _ -> close_client fd
                      end
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | exception Unix.Unix_error _ -> close_client fd))
          readable);
    (* tick work, on the select cadence: expire queued jobs whose
       deadline lapsed, reap idle sessions, cut off stalled clients *)
    ignore (Queue.tick t.queue);
    ignore (reap_idle t);
    let now = Clock.now_us () in
    let stalled =
      Hashtbl.fold
        (fun fd c acc ->
          match c.c_line_start with
          | Some t0 when now -. t0 > read_deadline_s *. 1e6 -> fd :: acc
          | _ -> acc)
        clients []
    in
    List.iter close_client stalled
  done;
  initiate_shutdown t;
  Domain.join sched;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  (match prev_pipe with
  | Some prev -> ( try Sys.set_signal Sys.sigpipe prev with _ -> ())
  | None -> ());
  (* checkpoint root drained: no orphaned job snapshots survive *)
  decommission t
