(** The persistent multi-tenant vekt daemon (DESIGN.md §3.7).

    One process, one shared {!Vekt_runtime.Engine}, many sessions.  A
    session is a tenant-labelled {!Vekt_runtime.Api.device}: private
    global memory and allocator, private loaded modules, private
    metrics registry — but translation caches, by construction, live
    in the engine and are shared across every session with the same
    (source, config, machine) fingerprint.  The second tenant to
    launch an already-hot kernel skips tier-0/tier-1 compilation
    entirely; that is the whole point of keeping the process alive.

    Launches are not run synchronously on the connection: [submit-launch]
    enqueues a job on the admission {!Queue} and returns a job id; the
    client [poll]s for completion (or [cancel]s).  A dedicated domain
    runs {!Queue.worker_loop}; the socket loop never blocks on a
    launch.  Preemption uses per-job checkpoint directories under the
    server's checkpoint root, cleaned up when the job completes and
    swept entirely at shutdown.

    Request handling is deliberately split from transport:
    {!handle} maps request JSON to response JSON and is what the tests
    drive; {!serve} adds the Unix-socket line loop, the scheduler
    domain, and SIGTERM-clean shutdown around it.

    Concurrency note: request handling happens on the socket-loop
    domain while launches run on the scheduler domain.  The server
    mutex guards the session table; per-session metric registries are
    pre-registered at session open, so the scheduler domain only ever
    bumps existing refs while [stats] reads them — no table mutation
    races.  Reading a buffer while a launch of the same session is in
    flight is the client's race to avoid, exactly as with a real
    asynchronous device queue. *)

module Api = Vekt_runtime.Api
module Engine = Vekt_runtime.Engine
module Obs = Vekt_obs
module J = Jsonx
module P = Protocol

type session = {
  s_id : int;
  s_tenant : string;
  s_dev : Api.device;
  s_reg : Obs.Metrics.t;  (** per-session tally, merged per tenant on scrape *)
  s_sink : Obs.Sink.t;
  s_modules : (int, Api.modul) Hashtbl.t;
  mutable s_next_module : int;
  mutable s_jobs : int list;
}

type t = {
  engine : Engine.t;
  queue : Queue.t;
  lock : Mutex.t;
  sessions : (int, session) Hashtbl.t;
  closed_tallies : (string, Obs.Metrics.t) Hashtbl.t;
      (** per-tenant archive of closed sessions' tallies, so [stats]
          attribution survives session close *)
  ckpt_dir : string;
  global_bytes : int;  (** per-session arena size *)
  mutable next_session : int;
  mutable next_job_dir : int;
  mutable stopping : bool;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let create ?engine ?(quota = 16) ?(weight = 1)
    ?(global_bytes = 64 * 1024 * 1024) ?(ckpt_dir = "vekt-serve-ckpt") () : t =
  let engine =
    match engine with Some e -> e | None -> Engine.create ()
  in
  mkdir_p ckpt_dir;
  {
    engine;
    queue = Queue.create ~quota ~weight ();
    lock = Mutex.create ();
    sessions = Hashtbl.create 8;
    closed_tallies = Hashtbl.create 8;
    ckpt_dir;
    global_bytes;
    next_session = 0;
    next_job_dir = 0;
    stopping = false;
  }

let queue t = t.queue
let engine t = t.engine
let stopping t = t.stopping

(* ---- request handlers (each may raise P.Bad_request / Vekt_error) ---- *)

let session_of t req : session =
  let id = P.req_int req "session" in
  Mutex.lock t.lock;
  let s = Hashtbl.find_opt t.sessions id in
  Mutex.unlock t.lock;
  match s with
  | Some s -> s
  | None -> P.bad "unknown session %d" id

let module_of s req : Api.modul =
  let id = P.req_int req "module" in
  match Hashtbl.find_opt s.s_modules id with
  | Some m -> m
  | None -> P.bad "unknown module %d in session %d" id s.s_id

let open_session t req : J.t =
  let tenant = P.req_str req "tenant" in
  (match (P.opt_int "weight" req, P.opt_int "quota" req) with
  | None, None -> ()
  | weight, quota -> Queue.set_tenant t.queue ~name:tenant ?weight ?quota ());
  let reg = Obs.Metrics.create () in
  (* pre-register everything the scheduler domain will touch, so scrape
     never races a Hashtbl insert (see the concurrency note above) *)
  ignore (Obs.Metrics.histogram reg "queue.wait_ms");
  ignore (Obs.Metrics.counter reg "launches");
  let sink = Obs.Tally.sink reg in
  let dev =
    Api.create_device ~engine:t.engine ~global_bytes:t.global_bytes ()
  in
  let s =
    {
      s_id = 0;
      s_tenant = tenant;
      s_dev = dev;
      s_reg = reg;
      s_sink = sink;
      s_modules = Hashtbl.create 4;
      s_next_module = 0;
      s_jobs = [];
    }
  in
  Mutex.lock t.lock;
  let id = t.next_session in
  t.next_session <- id + 1;
  let s = { s with s_id = id } in
  Hashtbl.replace t.sessions id s;
  Mutex.unlock t.lock;
  P.ok [ ("session", J.Int id); ("tenant", J.Str tenant) ]

let close_session t req : J.t =
  let s = session_of t req in
  List.iter (fun id -> ignore (Queue.cancel t.queue ~id)) s.s_jobs;
  Mutex.lock t.lock;
  Hashtbl.remove t.sessions s.s_id;
  let archive =
    match Hashtbl.find_opt t.closed_tallies s.s_tenant with
    | Some reg -> reg
    | None ->
        let reg = Obs.Metrics.create () in
        Hashtbl.replace t.closed_tallies s.s_tenant reg;
        reg
  in
  Obs.Metrics.merge_into ~into:archive s.s_reg;
  Mutex.unlock t.lock;
  P.ok []

(* A config arrives as a JSON object of knobs ({"mode":"static",
   "hot-threshold":2,...}); flatten to the string-keyed spec shared
   with the CLI so both paths go through Api.config_of_spec. *)
let config_spec_of_json req : (string * string) list =
  match J.obj_mem "config" req with
  | None -> []
  | Some kvs ->
      List.map
        (fun (k, v) ->
          let sv =
            match v with
            | J.Str s -> s
            | J.Int n -> string_of_int n
            | J.Float x -> Fmt.str "%g" x
            | J.Bool b -> string_of_bool b
            | J.Null | J.List _ | J.Obj _ ->
                P.bad "config key %S: want a scalar value" k
          in
          (k, sv))
        kvs

let load_module t req : J.t =
  let s = session_of t req in
  let src = P.req_str req "src" in
  let config =
    match Api.config_of_spec (config_spec_of_json req) with
    | Ok c -> c
    | Error msg -> raise (P.Bad_request msg)
  in
  let m = Api.load_module ~config ~sink:s.s_sink s.s_dev src in
  let id = s.s_next_module in
  s.s_next_module <- id + 1;
  Hashtbl.replace s.s_modules id m;
  P.ok [ ("module", J.Int id) ]

let malloc t req : J.t =
  let s = session_of t req in
  let bytes = P.req_int req "bytes" in
  let addr = Api.malloc s.s_dev bytes in
  P.ok [ ("addr", J.Int addr) ]

let free t req : J.t =
  let s = session_of t req in
  Api.free s.s_dev (P.req_int req "addr");
  P.ok []

let reset_arena t req : J.t =
  let s = session_of t req in
  Api.reset_arena s.s_dev;
  P.ok []

let float_of_json k = function
  | J.Int n -> float_of_int n
  | J.Float x -> x
  | _ -> P.bad "field %S: want numbers" k

let write t req : J.t =
  let s = session_of t req in
  let addr = P.req_int req "addr" in
  (match (J.list_mem "f32s" req, J.list_mem "i32s" req) with
  | Some xs, _ -> Api.write_f32s s.s_dev addr (List.map (float_of_json "f32s") xs)
  | None, Some xs ->
      Api.write_i32s s.s_dev addr
        (List.map
           (function
             | J.Int n -> n | _ -> P.bad "field \"i32s\": want integers")
           xs)
  | None, None -> P.bad "write: want \"f32s\" or \"i32s\"");
  P.ok []

let read t req : J.t =
  let s = session_of t req in
  let addr = P.req_int req "addr" in
  let count = P.req_int req "count" in
  if count < 0 || count > 1 lsl 24 then P.bad "read: unreasonable count %d" count;
  let values =
    match P.req_str req "ty" with
    | "f32" -> List.map (fun x -> J.Float x) (Api.read_f32s s.s_dev addr count)
    | "i32" ->
        List.map (fun x -> J.Int x) (Api.read_i32s s.s_dev addr count)
    | ty -> P.bad "read: unknown type %S" ty
  in
  P.ok [ ("values", J.List values) ]

let submit_launch t req : J.t =
  let s = session_of t req in
  let m = module_of s req in
  let kernel = P.req_str req "kernel" in
  let grid = P.req_dim3 req "grid" in
  let block = P.req_dim3 req "block" in
  let priority = Option.value (P.opt_int "priority" req) ~default:0 in
  let label = Option.value (P.opt_str "label" req) ~default:kernel in
  let preemptible = Option.value (P.opt_bool "preemptible" req) ~default:true in
  let specs =
    match J.list_mem "args" req with
    | None -> []
    | Some l ->
        List.map
          (function J.Str s -> s | _ -> P.bad "args: want spec strings")
          l
  in
  let parsed =
    List.map
      (fun spec ->
        match Api.arg_of_spec s.s_dev spec with
        | Ok a -> a
        | Error msg -> raise (P.Bad_request msg))
      specs
  in
  let args = List.map (fun a -> a.Api.launch_arg) parsed in
  Mutex.lock t.lock;
  let jdir =
    Filename.concat t.ckpt_dir (Fmt.str "job-%d" t.next_job_dir)
  in
  t.next_job_dir <- t.next_job_dir + 1;
  Mutex.unlock t.lock;
  let run ~resume ~preempt ~wait_us =
    Obs.Metrics.observe
      (Obs.Metrics.histogram s.s_reg "queue.wait_ms")
      (int_of_float (wait_us /. 1000.0));
    let preempt = if preemptible then Some preempt else None in
    let r =
      Api.launch ?preempt ?resume ~ckpt_dir:jdir ~sink:s.s_sink m ~kernel ~grid
        ~block ~args
    in
    Obs.Metrics.incr (Obs.Metrics.counter s.s_reg "launches");
    (* done with this job's snapshots; preempted jobs keep theirs *)
    rm_rf jdir;
    r
  in
  match
    Queue.submit t.queue ~tenant:s.s_tenant ~label ~priority ~sink:s.s_sink
      ~run ()
  with
  | Error e -> P.error_json e
  | Ok j ->
      s.s_jobs <- j.Queue.id :: s.s_jobs;
      P.ok
        [
          ("job", J.Int j.Queue.id);
          ( "args",
            J.List
              (List.map
                 (fun a ->
                   match a.Api.addr with None -> J.Null | Some n -> J.Int n)
                 parsed) );
        ]

let poll t req : J.t =
  let id = P.req_int req "job" in
  match Queue.info t.queue ~id with
  | None -> P.bad "unknown job %d" id
  | Some i ->
      let base =
        [
          ("job", J.Int i.Queue.i_id);
          ("state", J.Str (Queue.state_name i.Queue.i_state));
          ("tenant", J.Str i.Queue.i_tenant);
          ("wait_us", J.Float i.Queue.i_wait_us);
          ("preemptions", J.Int i.Queue.i_preemptions);
        ]
      in
      let extra =
        match i.Queue.i_state with
        | Queue.Done (Queue.Finished r) -> [ ("result", P.report_json r) ]
        | Queue.Done (Queue.Failed e) ->
            [
              ( "error",
                J.Obj
                  [
                    ("kind", J.Str (Vekt_error.kind_name e));
                    ("message", J.Str (Vekt_error.to_string e));
                  ] );
            ]
        | _ -> []
      in
      P.ok (base @ extra)

let cancel t req : J.t =
  let id = P.req_int req "job" in
  P.ok [ ("cancelled", J.Bool (Queue.cancel t.queue ~id)) ]

(* stats: engine-wide counters plus per-tenant views.  Each tenant's
   object is the merge of its sessions' tally registries (jit.*,
   fallback.*, ckpt.*, queue.wait_ms, launches) — so cache hits and
   fallbacks are attributed to the tenant whose launch produced them
   even though the caches themselves are shared. *)
let stats t : J.t =
  let reg = Obs.Metrics.create () in
  Engine.metrics_into t.engine reg;
  Queue.metrics_into t.queue reg;
  Mutex.lock t.lock;
  let by_tenant = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ s ->
      let prev =
        Option.value (Hashtbl.find_opt by_tenant s.s_tenant) ~default:[]
      in
      Hashtbl.replace by_tenant s.s_tenant (s :: prev))
    t.sessions;
  (* tenants whose sessions have all closed still appear, from the archive *)
  Hashtbl.iter
    (fun tenant _ ->
      if not (Hashtbl.mem by_tenant tenant) then
        Hashtbl.replace by_tenant tenant [])
    t.closed_tallies;
  Mutex.unlock t.lock;
  let tstats = Queue.tenant_stats t.queue in
  let tenants =
    Hashtbl.fold
      (fun tenant sessions acc ->
        let merged = Obs.Metrics.create () in
        (match Hashtbl.find_opt t.closed_tallies tenant with
        | Some archive -> Obs.Metrics.merge_into ~into:merged archive
        | None -> ());
        List.iter (fun s -> Obs.Metrics.merge_into ~into:merged s.s_reg) sessions;
        let extra =
          match List.assoc_opt tenant tstats with
          | None -> []
          | Some (weight, quota, active) ->
              [
                ("weight", J.Int weight);
                ("quota", J.Int quota);
                ("active_jobs", J.Int active);
              ]
        in
        ( tenant,
          J.Obj
            (("sessions", J.Int (List.length sessions))
            :: extra
            @ [ ("metrics", P.metrics_json merged) ]) )
        :: acc)
      by_tenant []
    |> List.sort compare
  in
  P.ok [ ("engine", P.metrics_json reg); ("tenants", J.Obj tenants) ]

(** Map one request to one response.  Total: malformed or failing
    requests produce [ok:false] responses, never exceptions. *)
let handle t (req : J.t) : J.t =
  match
    match J.str_mem "cmd" req with
    | None -> P.bad_request "missing \"cmd\""
    | Some cmd -> (
        match cmd with
        | "ping" -> P.ok [ ("version", J.Int P.version) ]
        | "open-session" -> open_session t req
        | "close-session" -> close_session t req
        | "load-module" -> load_module t req
        | "malloc" -> malloc t req
        | "free" -> free t req
        | "reset-arena" -> reset_arena t req
        | "write" -> write t req
        | "read" -> read t req
        | "submit-launch" -> submit_launch t req
        | "poll" -> poll t req
        | "cancel" -> cancel t req
        | "stats" -> stats t
        | "shutdown" ->
            t.stopping <- true;
            P.ok []
        | cmd -> P.bad_request (Fmt.str "unknown command %S" cmd))
  with
  | resp -> resp
  | exception P.Bad_request msg -> P.bad_request msg
  | exception Vekt_error.Error e -> P.error_json e
  | exception (Invalid_argument msg | Failure msg) -> P.bad_request msg

let handle_line t (line : string) : string =
  let resp =
    match J.of_string line with
    | Error msg -> P.bad_request (Fmt.str "parse error: %s" msg)
    | Ok req -> handle t req
  in
  J.to_string resp ^ "\n"

(* ---- transport: line-delimited JSON over a Unix-domain socket ---- *)

type client = { c_fd : Unix.file_descr; mutable c_acc : string }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Peel complete lines off a client's accumulation buffer, answer each. *)
let drain_client t (c : client) =
  let rec go () =
    match String.index_opt c.c_acc '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub c.c_acc 0 i in
        c.c_acc <-
          String.sub c.c_acc (i + 1) (String.length c.c_acc - i - 1);
        if String.trim line <> "" then write_all c.c_fd (handle_line t line);
        go ()
  in
  go ()

(** Ask the serve loop (and scheduler) to wind down: cancel every live
    job so the scheduler domain reaches a safe point promptly, then
    stop the queue. *)
let initiate_shutdown t =
  t.stopping <- true;
  Queue.cancel_all t.queue;
  Queue.shutdown t.queue

(** Run the daemon on [socket] until SIGTERM/SIGINT or a [shutdown]
    request.  Cleans up on exit: scheduler domain joined, client and
    listen sockets closed, socket path unlinked, checkpoint root
    swept. *)
let serve t ~socket () =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let sched = Domain.spawn (fun () -> Queue.worker_loop t.queue) in
  let stop = ref false in
  let on_signal _ = stop := true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  let close_client fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let buf = Bytes.create 65536 in
  while not (!stop || t.stopping) do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              match Unix.accept listen_fd with
              | cfd, _ -> Hashtbl.replace clients cfd { c_fd = cfd; c_acc = "" }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some c -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> close_client fd
                  | n ->
                      c.c_acc <- c.c_acc ^ Bytes.sub_string buf 0 n;
                      (try drain_client t c
                       with Unix.Unix_error _ -> close_client fd)
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | exception Unix.Unix_error _ -> close_client fd))
          readable
  done;
  initiate_shutdown t;
  Domain.join sched;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  (* checkpoint root drained: no orphaned job snapshots survive *)
  rm_rf t.ckpt_dir
