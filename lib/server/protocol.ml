(** Wire-protocol vocabulary for the vekt daemon.

    Requests and responses are single lines of JSON over a Unix-domain
    socket.  Every request is an object with a ["cmd"] field; every
    response is an object with ["ok"] — [true] plus result fields, or
    [false] plus a structured ["error"] object carrying the stable
    {!Vekt_error.kind_name} tag and a human-readable message.  This
    module owns the response shapes so {!Server} and the [vektc]
    client agree by construction. *)

module J = Jsonx

let version = 1

(** Raised by request handlers on malformed input; the dispatcher
    renders it as an [ok:false] response.  A daemon answers a bad
    request — it does not die on one. *)
exception Bad_request of string

let bad fmt = Fmt.kstr (fun s -> raise (Bad_request s)) fmt

let ok fields : J.t = J.Obj (("ok", J.Bool true) :: fields)

let err ?(extras = []) ~kind ~message () : J.t =
  J.Obj
    [
      ("ok", J.Bool false);
      ( "error",
        J.Obj
          ([ ("kind", J.Str kind); ("message", J.Str message) ] @ extras) );
    ]

(* Machine-actionable payload fields, per error kind: an overloaded
   client needs [retry_after_ms] to back off without parsing prose, a
   deadline victim gets its budget arithmetic and the partial-progress
   snapshot path. *)
let error_extras : Vekt_error.t -> (string * J.t) list = function
  | Vekt_error.Overloaded o ->
      [
        ("retry_after_ms", J.Int o.retry_after_ms);
        ("queued", J.Int o.queued);
        ("limit", J.Int o.limit);
      ]
  | Vekt_error.Deadline d ->
      [ ("deadline_ms", J.Int d.deadline_ms); ("elapsed_ms", J.Int d.elapsed_ms) ]
      @ (match d.snapshot with
        | None -> []
        | Some p -> [ ("snapshot", J.Str p) ])
  | _ -> []

let error_json (e : Vekt_error.t) : J.t =
  err ~extras:(error_extras e) ~kind:(Vekt_error.kind_name e)
    ~message:(Vekt_error.to_string e) ()

let bad_request message : J.t = err ~kind:"bad-request" ~message ()

(* ---- request field accessors (raise Bad_request on absence) ---- *)

let req_str j k =
  match J.str_mem k j with
  | Some s -> s
  | None -> bad "missing or non-string field %S" k

let req_int j k =
  match J.int_mem k j with
  | Some n -> n
  | None -> bad "missing or non-integer field %S" k

let opt_int = J.int_mem
let opt_str = J.str_mem
let opt_bool = J.bool_mem

(** A launch dimension: either an integer ([8] means [(8,1,1)]) or a
    1–3 element array [[x,y,z]]. *)
let req_dim3 j k : Vekt_ptx.Launch.dim3 =
  match J.mem k j with
  | Some (J.Int x) -> Vekt_ptx.Launch.dim3 x
  | Some (J.List l) -> (
      let ints =
        List.map
          (function
            | J.Int n -> n | _ -> bad "field %S: dimensions must be integers" k)
          l
      in
      match ints with
      | [ x ] -> Vekt_ptx.Launch.dim3 x
      | [ x; y ] -> Vekt_ptx.Launch.dim3 ~y x
      | [ x; y; z ] -> Vekt_ptx.Launch.dim3 ~y ~z x
      | _ -> bad "field %S: want 1-3 dimensions" k)
  | Some _ | None -> bad "missing or malformed dim3 field %S" k

(** Render a finished launch report for [poll] responses. *)
let report_json (r : Vekt_runtime.Api.report) : J.t =
  J.Obj
    [
      ("cycles", J.Float r.Vekt_runtime.Api.cycles);
      ("time_ms", J.Float r.time_ms);
      ("gflops", J.Float r.gflops);
      ("avg_warp_size", J.Float r.avg_warp_size);
      ( "recovered",
        match r.recovered with
        | None -> J.Null
        | Some e -> J.Str (Vekt_error.kind_name e) );
    ]

(** Render a metrics registry as a JSON object.  {!Vekt_obs.Metrics}
    already knows how to print itself as JSON; parse that back rather
    than duplicating the serialization. *)
let metrics_json (reg : Vekt_obs.Metrics.t) : J.t =
  match J.of_string (Vekt_obs.Metrics.to_json reg) with
  | Ok j -> j
  | Error _ -> J.Obj []
