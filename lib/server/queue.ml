(** Admission queue: the scheduler *over* launches (DESIGN.md §3.7).

    The execution manager schedules warps inside one launch; a daemon
    also needs to schedule the launches themselves.  This queue gives
    every tenant a FIFO of submitted jobs and arbitrates between
    tenants with stride scheduling — tenant [T] accrues [1/weight(T)]
    of "pass" per job it runs, and the runnable tenant with the lowest
    pass goes next, so over time tenants receive service proportional
    to their weights.  Strictly higher-priority jobs bypass the stride
    order entirely, and their arrival {e preempts} a lower-priority
    running job: the queue flips the running launch's
    {!Vekt_runtime.Checkpoint.preempt} token, the launch snapshots at
    its next safe point and raises {!Vekt_runtime.Checkpoint.Stop},
    and the job re-enters the *front* of its tenant's FIFO in state
    [Preempted], to be resumed from the snapshot when it next wins
    arbitration.

    Admission control is per tenant: a tenant with [quota] jobs in
    flight (queued + running + preempted) has further submissions
    rejected with a structured {!Vekt_error.Resource} — a structured
    answer, not a crash and not silent queuing without bound.

    Locking: one mutex + condvar protect every queue structure.  Jobs
    run on whatever thread calls {!step} / {!worker_loop} (the daemon
    dedicates a domain to the latter), with the lock dropped for the
    duration of the launch; {!submit}/{!poll}/{!cancel} may be called
    from any other domain.  Within one tenant, jobs execute strictly
    in submission order — sessions rely on launch N completing before
    launch N+1 reads its output. *)

module Checkpoint = Vekt_runtime.Checkpoint
module Clock = Vekt_runtime.Clock
module Api = Vekt_runtime.Api
module Obs = Vekt_obs

type outcome = Finished of Api.report | Failed of Vekt_error.t

type state =
  | Queued
  | Running
  | Preempted  (** snapshotted at a safe point, awaiting resume *)
  | Done of outcome
  | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Preempted -> "preempted"
  | Done (Finished _) -> "done"
  | Done (Failed _) -> "failed"
  | Cancelled -> "cancelled"

type job = {
  id : int;
  tenant : string;
  label : string;
  priority : int;  (** higher runs first; arrival can preempt lower *)
  preempt : Checkpoint.preempt;
  sink : Obs.Sink.t;  (** receives the job's [Sk_queue] wait spans *)
  run :
    resume:string option ->
    preempt:Checkpoint.preempt ->
    wait_us:float ->
    Api.report;
      (** the launch body; [resume] is the snapshot to continue from,
          [wait_us] the queue wait since the last (re)enqueue *)
  mutable state : state;
  mutable resume_path : string option;
  mutable cancel_requested : bool;
  mutable enqueued_us : float;  (** monotonic clock at last (re)enqueue *)
  mutable wait_us : float;  (** cumulative time spent waiting in queue *)
  mutable preemptions : int;
}

type tenant = {
  name : string;
  mutable weight : int;  (** stride-scheduling share *)
  mutable quota : int;  (** max jobs in flight (queued+running+preempted) *)
  mutable pass : float;  (** stride pass value: lowest runnable goes next *)
  mutable active : int;
  mutable pending : job list;  (** runnable FIFO; preempted jobs re-enter front *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  tenants : (string, tenant) Hashtbl.t;
  jobs : (int, job) Hashtbl.t;
  default_quota : int;
  default_weight : int;
  mutable next_id : int;
  mutable running : job option;
  mutable stopping : bool;
  mutable completed : int;
  mutable preemptions : int;
  mutable rejected : int;
}

let create ?(quota = 16) ?(weight = 1) () : t =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    tenants = Hashtbl.create 8;
    jobs = Hashtbl.create 32;
    default_quota = max 1 quota;
    default_weight = max 1 weight;
    next_id = 0;
    running = None;
    stopping = false;
    completed = 0;
    preemptions = 0;
    rejected = 0;
  }

(* Callers hold t.lock.  A tenant joining late starts at the minimum
   live pass, not 0 — otherwise a newcomer would monopolize the queue
   until it caught up with tenants that have been running for hours. *)
let tenant_of t name : tenant =
  match Hashtbl.find_opt t.tenants name with
  | Some ten -> ten
  | None ->
      let floor_pass =
        Hashtbl.fold (fun _ ten acc -> Float.min acc ten.pass) t.tenants 0.0
      in
      let ten =
        {
          name;
          weight = t.default_weight;
          quota = t.default_quota;
          pass = floor_pass;
          active = 0;
          pending = [];
        }
      in
      Hashtbl.replace t.tenants name ten;
      ten

(** Create or retune a tenant's fairness weight and admission quota. *)
let set_tenant t ~name ?weight ?quota () =
  Mutex.lock t.lock;
  let ten = tenant_of t name in
  Option.iter (fun w -> ten.weight <- max 1 w) weight;
  Option.iter (fun q -> ten.quota <- max 1 q) quota;
  Mutex.unlock t.lock

let span_name j = "queue " ^ j.label

let emit_wait_span j ~closing =
  if Obs.Sink.enabled j.sink then begin
    let wall_us = Clock.now_us () in
    let ev =
      if closing then
        Obs.Event.Span_end
          { ts = 0.0; wall_us; worker = 0; kind = Obs.Event.Sk_queue;
            name = span_name j }
      else
        Obs.Event.Span_begin
          { ts = 0.0; wall_us; worker = 0; kind = Obs.Event.Sk_queue;
            name = span_name j }
    in
    Obs.Sink.emit j.sink ev
  end

(** Submit a job.  Rejected with a structured {!Vekt_error.Resource}
    when the tenant's quota is full.  If the new job's priority
    strictly exceeds the running job's, the running job's preemption
    token is flipped — it will snapshot and yield at its next safe
    point.  [sink] receives [Sk_queue] span begin/end pairs bracketing
    each stretch the job spends waiting. *)
let submit t ~tenant ?(label = "job") ?(priority = 0) ?(sink = Obs.Sink.noop)
    ~run () : (job, Vekt_error.t) result =
  Mutex.lock t.lock;
  let ten = tenant_of t tenant in
  if ten.active >= ten.quota then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.lock;
    Error
      (Vekt_error.Resource
         {
           what = Fmt.str "tenant %s job quota" tenant;
           requested = ten.active + 1;
           available = ten.quota;
         })
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let j =
      {
        id;
        tenant;
        label;
        priority;
        preempt = Checkpoint.preempt_token ();
        sink;
        run;
        state = Queued;
        resume_path = None;
        cancel_requested = false;
        enqueued_us = Clock.now_us ();
        wait_us = 0.0;
        preemptions = 0;
      }
    in
    Hashtbl.replace t.jobs id j;
    ten.pending <- ten.pending @ [ j ];
    ten.active <- ten.active + 1;
    emit_wait_span j ~closing:false;
    (match t.running with
    | Some r when priority > r.priority && not r.cancel_requested ->
        Checkpoint.request_preempt r.preempt
    | _ -> ());
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Ok j
  end

(* Pick the next job (caller holds the lock): highest head priority
   wins outright; within a priority level the tenant with the lowest
   stride pass goes, names breaking ties for determinism. *)
let pick_next t : job option =
  let best = ref None in
  Hashtbl.iter
    (fun _ ten ->
      match ten.pending with
      | [] -> ()
      | j :: _ -> (
          match !best with
          | None -> best := Some (j.priority, ten)
          | Some (bp, bten) ->
              if
                j.priority > bp
                || (j.priority = bp
                    && (ten.pass < bten.pass
                        || (ten.pass = bten.pass && ten.name < bten.name)))
              then best := Some (j.priority, ten)))
    t.tenants;
  match !best with
  | None -> None
  | Some (_, ten) -> (
      match ten.pending with
      | [] -> None
      | j :: rest ->
          ten.pending <- rest;
          ten.pass <- ten.pass +. (1.0 /. float_of_int (max 1 ten.weight));
          Some j)

(* Run one picked job.  Enters and leaves holding the lock; the lock is
   dropped around the launch itself. *)
let run_one t (j : job) =
  j.state <- Running;
  let now = Clock.now_us () in
  let wait = Float.max 0.0 (now -. j.enqueued_us) in
  j.wait_us <- j.wait_us +. wait;
  emit_wait_span j ~closing:true;
  t.running <- Some j;
  Mutex.unlock t.lock;
  let result =
    try `Report (j.run ~resume:j.resume_path ~preempt:j.preempt ~wait_us:wait)
    with
    | Checkpoint.Stop path -> `Stopped path
    | Vekt_error.Error e -> `Err e
    | e ->
        `Err
          (Vekt_error.Trap
             {
               kernel = j.label;
               cta = None;
               tid = None;
               entry = None;
               cycle = None;
               access = None;
               reason = Printexc.to_string e;
             })
  in
  Mutex.lock t.lock;
  t.running <- None;
  let ten = tenant_of t j.tenant in
  (match result with
  | `Report r ->
      j.state <- Done (Finished r);
      ten.active <- ten.active - 1;
      t.completed <- t.completed + 1
  | `Err e ->
      j.state <- Done (Failed e);
      ten.active <- ten.active - 1;
      t.completed <- t.completed + 1
  | `Stopped path ->
      j.resume_path <- Some path;
      if j.cancel_requested then begin
        j.state <- Cancelled;
        ten.active <- ten.active - 1
      end
      else begin
        j.state <- Preempted;
        j.preemptions <- j.preemptions + 1;
        t.preemptions <- t.preemptions + 1;
        j.enqueued_us <- Clock.now_us ();
        emit_wait_span j ~closing:false;
        (* front of the tenant FIFO: within a tenant, order is preserved *)
        ten.pending <- j :: ten.pending
      end);
  Condition.broadcast t.cond

(** Run at most one job to completion (or preemption) on the calling
    thread; [false] when nothing was runnable.  The deterministic
    single-threaded driver the tests use. *)
let step t : bool =
  Mutex.lock t.lock;
  match pick_next t with
  | None ->
      Mutex.unlock t.lock;
      false
  | Some j ->
      run_one t j;
      Mutex.unlock t.lock;
      true

(** The daemon's scheduler loop: run jobs as they become available,
    sleeping on the condvar when idle, until {!shutdown}. *)
let worker_loop t =
  Mutex.lock t.lock;
  let rec go () =
    if t.stopping then Mutex.unlock t.lock
    else
      match pick_next t with
      | Some j ->
          run_one t j;
          go ()
      | None ->
          Condition.wait t.cond t.lock;
          go ()
  in
  go ()

type info = {
  i_id : int;
  i_tenant : string;
  i_label : string;
  i_state : state;
  i_resume_path : string option;
  i_wait_us : float;
  i_preemptions : int;
}

let info t ~id : info option =
  Mutex.lock t.lock;
  let r =
    Option.map
      (fun j ->
        {
          i_id = j.id;
          i_tenant = j.tenant;
          i_label = j.label;
          i_state = j.state;
          i_resume_path = j.resume_path;
          i_wait_us = j.wait_us;
          i_preemptions = j.preemptions;
        })
      (Hashtbl.find_opt t.jobs id)
  in
  Mutex.unlock t.lock;
  r

(* Caller holds the lock. *)
let cancel_locked t (j : job) : bool =
  match j.state with
  | Done _ | Cancelled -> false
  | Running ->
      (* async: the launch yields at its next safe point and run_one
         turns the Stop into Cancelled *)
      j.cancel_requested <- true;
      Checkpoint.request_preempt j.preempt;
      true
  | Queued | Preempted ->
      let ten = tenant_of t j.tenant in
      ten.pending <- List.filter (fun j' -> j'.id <> j.id) ten.pending;
      ten.active <- ten.active - 1;
      j.state <- Cancelled;
      Condition.broadcast t.cond;
      true

(** Cancel a job: queued/preempted jobs leave the queue immediately, a
    running job is preempted at its next safe point and discarded.
    [false] when the job is unknown or already finished. *)
let cancel t ~id : bool =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> false
    | Some j -> cancel_locked t j
  in
  Mutex.unlock t.lock;
  r

(** Cancel every job that is not already finished (daemon shutdown). *)
let cancel_all t =
  Mutex.lock t.lock;
  Hashtbl.iter (fun _ j -> ignore (cancel_locked t j)) t.jobs;
  Mutex.unlock t.lock

(** Ask {!worker_loop} to exit once the current job yields. *)
let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(** Block until no job is queued, preempted or running (or the queue is
    shut down) — the test/CI barrier for "everything submitted has
    finished". *)
let quiesce t =
  Mutex.lock t.lock;
  let busy () =
    Option.is_some t.running
    || Hashtbl.fold (fun _ ten acc -> acc || ten.pending <> []) t.tenants false
  in
  while busy () && not t.stopping do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock

let tenant_stats t : (string * (int * int * int)) list =
  Mutex.lock t.lock;
  let r =
    Hashtbl.fold
      (fun name ten acc -> (name, (ten.weight, ten.quota, ten.active)) :: acc)
      t.tenants []
    |> List.sort compare
  in
  Mutex.unlock t.lock;
  r

let metrics_into t (reg : Obs.Metrics.t) =
  let module M = Obs.Metrics in
  Mutex.lock t.lock;
  M.counter reg "queue.submitted" := t.next_id;
  M.counter reg "queue.completed" := t.completed;
  M.counter reg "queue.preemptions" := t.preemptions;
  M.counter reg "queue.rejected" := t.rejected;
  let pending =
    Hashtbl.fold (fun _ ten acc -> acc + List.length ten.pending) t.tenants 0
  in
  M.set (M.gauge reg "queue.pending") (float_of_int pending);
  M.set (M.gauge reg "queue.running")
    (if Option.is_some t.running then 1.0 else 0.0);
  Mutex.unlock t.lock
