(** Admission queue: the scheduler *over* launches (DESIGN.md §3.7).

    The execution manager schedules warps inside one launch; a daemon
    also needs to schedule the launches themselves.  This queue gives
    every tenant a FIFO of submitted jobs and arbitrates between
    tenants with stride scheduling — tenant [T] accrues [1/weight(T)]
    of "pass" per job it runs, and the runnable tenant with the lowest
    pass goes next, so over time tenants receive service proportional
    to their weights.  Strictly higher-priority jobs bypass the stride
    order entirely, and their arrival {e preempts} a lower-priority
    running job: the queue flips the running launch's
    {!Vekt_runtime.Checkpoint.preempt} token, the launch snapshots at
    its next safe point and raises {!Vekt_runtime.Checkpoint.Stop},
    and the job re-enters the *front* of its tenant's FIFO in state
    [Preempted], to be resumed from the snapshot when it next wins
    arbitration.

    Admission control is per tenant: a tenant with [quota] jobs in
    flight (queued + running + preempted) has further submissions
    rejected with a structured {!Vekt_error.Resource} — a structured
    answer, not a crash and not silent queuing without bound.

    Two global backpressure mechanisms sit on top (DESIGN.md §3.8).
    {e Deadlines}: a job may carry an absolute wall-clock budget; if it
    expires while the job is still queued the job is failed with a
    structured {!Vekt_error.Deadline} without ever running, and the
    remaining budget is handed to the launch itself so a running
    overrun is killed at its next safe point.  {e Watermark shedding}:
    when the total backlog crosses [high_watermark] the queue enters
    shedding mode (left again at [low_watermark] — hysteresis, so the
    flag doesn't flap) and rejects new submits that don't strictly beat
    the best queued priority, answering with {!Vekt_error.Overloaded}
    and a [retry_after_ms] computed from an EWMA of recent job run
    times times the backlog still ahead of the caller.

    Locking: one mutex + condvar protect every queue structure.  Jobs
    run on whatever thread calls {!step} / {!worker_loop} (the daemon
    dedicates a domain to the latter), with the lock dropped for the
    duration of the launch; {!submit}/{!poll}/{!cancel} may be called
    from any other domain.  Within one tenant, jobs execute strictly
    in submission order — sessions rely on launch N completing before
    launch N+1 reads its output. *)

module Checkpoint = Vekt_runtime.Checkpoint
module Clock = Vekt_runtime.Clock
module Api = Vekt_runtime.Api
module Obs = Vekt_obs

type outcome = Finished of Api.report | Failed of Vekt_error.t

type state =
  | Queued
  | Running
  | Preempted  (** snapshotted at a safe point, awaiting resume *)
  | Done of outcome
  | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Preempted -> "preempted"
  | Done (Finished _) -> "done"
  | Done (Failed _) -> "failed"
  | Cancelled -> "cancelled"

(* A job's cleanup sweeps its checkpoint directory — filesystem I/O
   that runs while the queue lock is held.  It is allowed to fail (a
   half-swept directory is a leak, not a correctness problem) but it
   must never poison the queue by throwing through the locked
   section. *)
let run_cleanup cleanup = try cleanup () with _ -> ()

type job = {
  id : int;
  tenant : string;
  label : string;
  priority : int;  (** higher runs first; arrival can preempt lower *)
  preempt : Checkpoint.preempt;
  sink : Obs.Sink.t;  (** receives the job's [Sk_queue] wait spans *)
  deadline_ms : int option;  (** the wall budget the submit carried *)
  deadline_us : float option;  (** absolute monotonic expiry, from submit *)
  cleanup : unit -> unit;
      (** called exactly once when the job reaches a terminal state
          (done, failed, cancelled, expired) — the daemon uses it to
          sweep the job's snapshot directory, so a preempted or
          crash-interrupted job keeps its resume state and a finished
          one leaves nothing behind *)
  run :
    resume:string option ->
    preempt:Checkpoint.preempt ->
    deadline_ms:int option ->
    wait_us:float ->
    Api.report;
      (** the launch body; [resume] is the snapshot to continue from,
          [deadline_ms] the budget still unspent at dispatch,
          [wait_us] the queue wait since the last (re)enqueue *)
  mutable state : state;
  mutable resume_path : string option;
  mutable cancel_requested : bool;
  mutable enqueued_us : float;  (** monotonic clock at last (re)enqueue *)
  mutable wait_us : float;  (** cumulative time spent waiting in queue *)
  mutable preemptions : int;
}

type tenant = {
  name : string;
  mutable weight : int;  (** stride-scheduling share *)
  mutable quota : int;  (** max jobs in flight (queued+running+preempted) *)
  mutable default_deadline_ms : int option;
      (** deadline applied to this tenant's submits that carry none *)
  mutable pass : float;  (** stride pass value: lowest runnable goes next *)
  mutable active : int;
  mutable pending : job list;  (** runnable FIFO; preempted jobs re-enter front *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  tenants : (string, tenant) Hashtbl.t;
  jobs : (int, job) Hashtbl.t;
  default_quota : int;
  default_weight : int;
  high_watermark : int;  (** backlog size that trips shedding mode *)
  low_watermark : int;  (** backlog size that clears it (hysteresis) *)
  mutable next_id : int;
  mutable running : job option;
  mutable stopping : bool;
  mutable completed : int;
  mutable preemptions : int;
  mutable rejected : int;
  mutable pending_count : int;  (** jobs queued/preempted across tenants *)
  mutable shedding : bool;
  mutable shed : int;  (** submits rejected as {!Vekt_error.Overloaded} *)
  mutable expired : int;  (** queued jobs whose deadline lapsed unrun *)
  mutable deadline_kills : int;  (** running jobs killed past deadline *)
  mutable run_ewma_us : float;  (** EWMA of job run durations; 0 = no sample *)
}

let create ?(quota = 16) ?(weight = 1) ?(high_watermark = 64)
    ?(low_watermark = 48) () : t =
  let high_watermark = max 1 high_watermark in
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    tenants = Hashtbl.create 8;
    jobs = Hashtbl.create 32;
    default_quota = max 1 quota;
    default_weight = max 1 weight;
    high_watermark;
    low_watermark = min (max 0 low_watermark) (high_watermark - 1);
    next_id = 0;
    running = None;
    stopping = false;
    completed = 0;
    preemptions = 0;
    rejected = 0;
    pending_count = 0;
    shedding = false;
    shed = 0;
    expired = 0;
    deadline_kills = 0;
    run_ewma_us = 0.0;
  }

(* Callers hold t.lock.  A tenant joining late starts at the minimum
   live pass, not 0 — otherwise a newcomer would monopolize the queue
   until it caught up with tenants that have been running for hours. *)
let tenant_of t name : tenant =
  match Hashtbl.find_opt t.tenants name with
  | Some ten -> ten
  | None ->
      let floor_pass =
        Hashtbl.fold (fun _ ten acc -> Float.min acc ten.pass) t.tenants 0.0
      in
      let ten =
        {
          name;
          weight = t.default_weight;
          quota = t.default_quota;
          default_deadline_ms = None;
          pass = floor_pass;
          active = 0;
          pending = [];
        }
      in
      Hashtbl.replace t.tenants name ten;
      ten

(** Create or retune a tenant's fairness weight, admission quota, and
    default per-submit deadline ([deadline_ms = 0] clears it). *)
let set_tenant t ~name ?weight ?quota ?deadline_ms () =
  Mutex.lock t.lock;
  let ten = tenant_of t name in
  Option.iter (fun w -> ten.weight <- max 1 w) weight;
  Option.iter (fun q -> ten.quota <- max 1 q) quota;
  Option.iter
    (fun ms -> ten.default_deadline_ms <- (if ms <= 0 then None else Some ms))
    deadline_ms;
  Mutex.unlock t.lock

let span_name j = "queue " ^ j.label

let emit_wait_span j ~closing =
  if Obs.Sink.enabled j.sink then begin
    let wall_us = Clock.now_us () in
    let ev =
      if closing then
        Obs.Event.Span_end
          { ts = 0.0; wall_us; worker = 0; kind = Obs.Event.Sk_queue;
            name = span_name j }
      else
        Obs.Event.Span_begin
          { ts = 0.0; wall_us; worker = 0; kind = Obs.Event.Sk_queue;
            name = span_name j }
    in
    Obs.Sink.emit j.sink ev
  end

let emit_health sink ~tenant ~action ~detail =
  if Obs.Sink.enabled sink then
    Obs.Sink.emit sink
      (Obs.Event.Server_health
         { ts = Clock.now_us (); worker = 0; action; tenant; detail })

(* ---- overload control (callers hold t.lock) ---- *)

(* Refresh the hysteresis flag from the live backlog: shedding starts at
   the high watermark and only stops once the backlog has drained to the
   low one, so the flag can't flap on every complete/submit pair. *)
let note_backlog t =
  if t.pending_count >= t.high_watermark then t.shedding <- true
  else if t.pending_count <= t.low_watermark then t.shedding <- false

let best_pending_priority t =
  Hashtbl.fold
    (fun _ ten acc ->
      List.fold_left (fun acc j -> max acc j.priority) acc ten.pending)
    t.tenants min_int

(* How long a shed client should wait before retrying: the EWMA of
   recent job run times, times the backlog that must drain before the
   queue re-opens (down to the low watermark).  50 ms/job before the
   first sample; clamped to [10 ms, 30 s]. *)
let retry_after_ms t =
  let per_job_ms =
    if t.run_ewma_us > 0.0 then t.run_ewma_us /. 1000.0 else 50.0
  in
  let backlog = max 1 (t.pending_count - t.low_watermark + 1) in
  int_of_float
    (Float.min 30_000.0 (Float.max 10.0 (per_job_ms *. float_of_int backlog)))

(* Fail a queued/preempted job whose deadline lapsed before it ran.
   Caller holds the lock and has already removed it from its FIFO. *)
let expire_locked t (j : job) =
  let ten = tenant_of t j.tenant in
  ten.active <- ten.active - 1;
  t.pending_count <- t.pending_count - 1;
  t.expired <- t.expired + 1;
  t.completed <- t.completed + 1;
  let elapsed_ms =
    int_of_float ((j.wait_us +. Clock.now_us () -. j.enqueued_us) /. 1000.)
  in
  emit_wait_span j ~closing:true;
  j.state <-
    Done
      (Failed
         (Vekt_error.Deadline
            {
              kernel = j.label;
              deadline_ms = Option.value j.deadline_ms ~default:0;
              elapsed_ms;
              snapshot = j.resume_path;
            }));
  emit_health j.sink ~tenant:j.tenant ~action:Obs.Event.Sv_expired
    ~detail:(Fmt.str "job %d (%s)" j.id j.label);
  run_cleanup j.cleanup;
  note_backlog t;
  Condition.broadcast t.cond

let deadline_lapsed (j : job) =
  match j.deadline_us with
  | Some d -> Clock.now_us () > d
  | None -> false

(** Fail every queued/preempted job whose deadline has lapsed; returns
    how many were expired.  The daemon calls this on its poll cadence so
    expiry doesn't wait for the job to reach the head of the queue. *)
let tick t : int =
  Mutex.lock t.lock;
  let n = ref 0 in
  Hashtbl.iter
    (fun _ ten ->
      let lapsed, live = List.partition deadline_lapsed ten.pending in
      if lapsed <> [] then begin
        ten.pending <- live;
        List.iter
          (fun j ->
            incr n;
            expire_locked t j)
          lapsed
      end)
    t.tenants;
  Mutex.unlock t.lock;
  !n

(** Submit a job.  Rejected with a structured {!Vekt_error.Resource}
    when the tenant's quota is full, or {!Vekt_error.Overloaded} (with
    a [retry_after_ms] hint) when the queue is in shedding mode and the
    job's priority doesn't strictly beat everything already queued.  If
    the new job's priority strictly exceeds the running job's, the
    running job's preemption token is flipped — it will snapshot and
    yield at its next safe point.  [sink] receives [Sk_queue] span
    begin/end pairs bracketing each stretch the job spends waiting.
    [deadline_ms] bounds the job's whole life (queue wait + run) from
    this call; [front] enqueues at the head of the tenant's FIFO and
    [resume] seeds the snapshot to continue from — both are the
    restart-recovery path re-admitting launches that were in flight
    when the previous daemon process died. *)
let submit t ~tenant ?(label = "job") ?(priority = 0) ?(sink = Obs.Sink.noop)
    ?deadline_ms ?(front = false) ?resume ?(cleanup = fun () -> ()) ~run () :
    (job, Vekt_error.t) result =
  Mutex.lock t.lock;
  let ten = tenant_of t tenant in
  note_backlog t;
  if t.shedding && priority <= best_pending_priority t then begin
    t.shed <- t.shed + 1;
    t.rejected <- t.rejected + 1;
    let err =
      Vekt_error.Overloaded
        {
          queued = t.pending_count;
          limit = t.high_watermark;
          retry_after_ms = retry_after_ms t;
        }
    in
    emit_health sink ~tenant ~action:Obs.Event.Sv_shed ~detail:label;
    Mutex.unlock t.lock;
    Error err
  end
  else if ten.active >= ten.quota then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.lock;
    Error
      (Vekt_error.Resource
         {
           what = Fmt.str "tenant %s job quota" tenant;
           requested = ten.active + 1;
           available = ten.quota;
         })
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let now = Clock.now_us () in
    let deadline_ms =
      match deadline_ms with Some _ -> deadline_ms | None -> ten.default_deadline_ms
    in
    let j =
      {
        id;
        tenant;
        label;
        priority;
        preempt = Checkpoint.preempt_token ();
        sink;
        deadline_ms;
        deadline_us =
          Option.map (fun ms -> now +. (float_of_int ms *. 1000.)) deadline_ms;
        cleanup;
        run;
        state = Queued;
        resume_path = resume;
        cancel_requested = false;
        enqueued_us = now;
        wait_us = 0.0;
        preemptions = 0;
      }
    in
    Hashtbl.replace t.jobs id j;
    ten.pending <- (if front then j :: ten.pending else ten.pending @ [ j ]);
    ten.active <- ten.active + 1;
    t.pending_count <- t.pending_count + 1;
    note_backlog t;
    emit_wait_span j ~closing:false;
    (match t.running with
    | Some r when priority > r.priority && not r.cancel_requested ->
        Checkpoint.request_preempt r.preempt
    | _ -> ());
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Ok j
  end

(* Pick the next job (caller holds the lock): highest head priority
   wins outright; within a priority level the tenant with the lowest
   stride pass goes, names breaking ties for determinism.  A picked job
   whose deadline already lapsed is expired (it never runs) and the
   pick repeats. *)
let rec pick_next t : job option =
  let best = ref None in
  Hashtbl.iter
    (fun _ ten ->
      match ten.pending with
      | [] -> ()
      | j :: _ -> (
          match !best with
          | None -> best := Some (j.priority, ten)
          | Some (bp, bten) ->
              if
                j.priority > bp
                || (j.priority = bp
                    && (ten.pass < bten.pass
                        || (ten.pass = bten.pass && ten.name < bten.name)))
              then best := Some (j.priority, ten)))
    t.tenants;
  match !best with
  | None -> None
  | Some (_, ten) -> (
      match ten.pending with
      | [] -> None
      | j :: rest ->
          ten.pending <- rest;
          if deadline_lapsed j then begin
            expire_locked t j;
            pick_next t
          end
          else begin
            ten.pass <- ten.pass +. (1.0 /. float_of_int (max 1 ten.weight));
            t.pending_count <- t.pending_count - 1;
            note_backlog t;
            Some j
          end)

(* Run one picked job.  Enters and leaves holding the lock; the lock is
   dropped around the launch itself. *)
let run_one t (j : job) =
  j.state <- Running;
  let now = Clock.now_us () in
  let wait = Float.max 0.0 (now -. j.enqueued_us) in
  j.wait_us <- j.wait_us +. wait;
  emit_wait_span j ~closing:true;
  t.running <- Some j;
  (* the budget still unspent after the queue wait; clamped to 1 ms so a
     race between tick and dispatch still dies promptly, at the launch's
     first safe point, with the structured Deadline error *)
  let remaining_ms =
    Option.map
      (fun d -> max 1 (int_of_float ((d -. now) /. 1000.)))
      j.deadline_us
  in
  Mutex.unlock t.lock;
  let run_t0 = Clock.now_us () in
  let result =
    try
      `Report
        (j.run ~resume:j.resume_path ~preempt:j.preempt
           ~deadline_ms:remaining_ms ~wait_us:wait)
    with
    | Checkpoint.Stop path -> `Stopped path
    | Vekt_error.Error e -> `Err e
    | Vekt_chaos.Io.Crash as e ->
        (* simulated process death from the chaos injector (DESIGN.md
           §3.10).  Absorbing it as a job failure would be a lie — a
           dead process marks nothing failed and runs no cleanup.
           Freeze the queue exactly as kill -9 would (the job stays
           Running; the lock was already dropped for the launch) and
           let the crash propagate to the harness. *)
        raise e
    | e ->
        `Err
          (Vekt_error.Trap
             {
               kernel = j.label;
               cta = None;
               tid = None;
               entry = None;
               cycle = None;
               access = None;
               reason = Printexc.to_string e;
             })
  in
  let run_us = Clock.elapsed_us run_t0 in
  Mutex.lock t.lock;
  t.running <- None;
  t.run_ewma_us <-
    (if t.run_ewma_us = 0.0 then run_us
     else (0.8 *. t.run_ewma_us) +. (0.2 *. run_us));
  let ten = tenant_of t j.tenant in
  (match result with
  | `Report r ->
      j.state <- Done (Finished r);
      ten.active <- ten.active - 1;
      t.completed <- t.completed + 1;
      run_cleanup j.cleanup
  | `Err e ->
      (match e with
      | Vekt_error.Deadline _ ->
          t.deadline_kills <- t.deadline_kills + 1;
          emit_health j.sink ~tenant:j.tenant
            ~action:Obs.Event.Sv_deadline_kill
            ~detail:(Fmt.str "job %d (%s)" j.id j.label)
      | _ -> ());
      j.state <- Done (Failed e);
      ten.active <- ten.active - 1;
      t.completed <- t.completed + 1;
      run_cleanup j.cleanup
  | `Stopped path ->
      j.resume_path <- Some path;
      if j.cancel_requested then begin
        j.state <- Cancelled;
        ten.active <- ten.active - 1;
        run_cleanup j.cleanup
      end
      else begin
        j.state <- Preempted;
        j.preemptions <- j.preemptions + 1;
        t.preemptions <- t.preemptions + 1;
        j.enqueued_us <- Clock.now_us ();
        emit_wait_span j ~closing:false;
        (* front of the tenant FIFO: within a tenant, order is preserved *)
        ten.pending <- j :: ten.pending;
        t.pending_count <- t.pending_count + 1;
        note_backlog t
      end);
  Condition.broadcast t.cond

(** Run at most one job to completion (or preemption) on the calling
    thread; [false] when nothing was runnable.  The deterministic
    single-threaded driver the tests use. *)
let step t : bool =
  Mutex.lock t.lock;
  match pick_next t with
  | None ->
      Mutex.unlock t.lock;
      false
  | Some j ->
      run_one t j;
      Mutex.unlock t.lock;
      true

(** The daemon's scheduler loop: run jobs as they become available,
    sleeping on the condvar when idle, until {!shutdown}. *)
let worker_loop t =
  Mutex.lock t.lock;
  let rec go () =
    if t.stopping then Mutex.unlock t.lock
    else
      match pick_next t with
      | Some j ->
          run_one t j;
          go ()
      | None ->
          Condition.wait t.cond t.lock;
          go ()
  in
  go ()

type info = {
  i_id : int;
  i_tenant : string;
  i_label : string;
  i_state : state;
  i_resume_path : string option;
  i_wait_us : float;
  i_preemptions : int;
}

let info t ~id : info option =
  Mutex.lock t.lock;
  let r =
    Option.map
      (fun j ->
        {
          i_id = j.id;
          i_tenant = j.tenant;
          i_label = j.label;
          i_state = j.state;
          i_resume_path = j.resume_path;
          i_wait_us = j.wait_us;
          i_preemptions = j.preemptions;
        })
      (Hashtbl.find_opt t.jobs id)
  in
  Mutex.unlock t.lock;
  r

(* Caller holds the lock. *)
let cancel_locked t (j : job) : bool =
  match j.state with
  | Done _ | Cancelled -> false
  | Running ->
      (* async: the launch yields at its next safe point and run_one
         turns the Stop into Cancelled *)
      j.cancel_requested <- true;
      Checkpoint.request_preempt j.preempt;
      true
  | Queued | Preempted ->
      let ten = tenant_of t j.tenant in
      ten.pending <- List.filter (fun j' -> j'.id <> j.id) ten.pending;
      ten.active <- ten.active - 1;
      t.pending_count <- t.pending_count - 1;
      note_backlog t;
      j.state <- Cancelled;
      run_cleanup j.cleanup;
      Condition.broadcast t.cond;
      true

(** Cancel a job: queued/preempted jobs leave the queue immediately, a
    running job is preempted at its next safe point and discarded.
    [false] when the job is unknown or already finished. *)
let cancel t ~id : bool =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> false
    | Some j -> cancel_locked t j
  in
  Mutex.unlock t.lock;
  r

(** Arm [id]'s preemption token directly: the launch snapshots and
    yields at its next safe point.  On a job that has not started yet
    the token is armed before dispatch, so its launch preempts itself
    at its very first safe point — the deterministic way tests and
    recovery drills force a mid-flight snapshot without racing the
    scheduler domain. *)
let request_preempt t ~id =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.jobs id with
  | Some j -> Checkpoint.request_preempt j.preempt
  | None -> ());
  Mutex.unlock t.lock

(** Cancel every job that is not already finished (daemon shutdown). *)
let cancel_all t =
  Mutex.lock t.lock;
  Hashtbl.iter (fun _ j -> ignore (cancel_locked t j)) t.jobs;
  Mutex.unlock t.lock

(** Ask {!worker_loop} to exit once the current job yields. *)
let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(** Block until no job is queued, preempted or running (or the queue is
    shut down) — the test/CI barrier for "everything submitted has
    finished". *)
let quiesce t =
  Mutex.lock t.lock;
  let busy () =
    Option.is_some t.running
    || Hashtbl.fold (fun _ ten acc -> acc || ten.pending <> []) t.tenants false
  in
  while busy () && not t.stopping do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock

let tenant_stats t : (string * (int * int * int)) list =
  Mutex.lock t.lock;
  let r =
    Hashtbl.fold
      (fun name ten acc -> (name, (ten.weight, ten.quota, ten.active)) :: acc)
      t.tenants []
    |> List.sort compare
  in
  Mutex.unlock t.lock;
  r

let metrics_into t (reg : Obs.Metrics.t) =
  let module M = Obs.Metrics in
  Mutex.lock t.lock;
  M.counter reg "queue.submitted" := t.next_id;
  M.counter reg "queue.completed" := t.completed;
  M.counter reg "queue.preemptions" := t.preemptions;
  M.counter reg "queue.rejected" := t.rejected;
  M.counter reg "queue.shed" := t.shed;
  M.counter reg "queue.expired" := t.expired;
  M.counter reg "queue.deadline_kills" := t.deadline_kills;
  M.set (M.gauge reg "queue.pending") (float_of_int t.pending_count);
  M.set (M.gauge reg "queue.shedding") (if t.shedding then 1.0 else 0.0);
  M.set (M.gauge reg "queue.run_ewma_us") t.run_ewma_us;
  M.set (M.gauge reg "queue.running")
    (if Option.is_some t.running then 1.0 else 0.0);
  Mutex.unlock t.lock
