(** Local common-subexpression elimination.

    Within each block, pure instructions computing an expression already
    available in a register are rewritten to register copies.  The IR is
    not SSA, so availability is tracked with {e register versions}: every
    definition bumps its destination's version, and an expression is keyed
    by its operands' (register, version) pairs — a redefinition of any
    input or of the previous result automatically invalidates the entry.

    This is the pass that harvests thread-invariant redundancy exposed by
    vectorization (paper §6.2): under static warp formation the per-lane
    replicas of an invariant expression have identical keys and collapse
    to the lane-0 copy. *)

module Ir = Vekt_ir.Ir

(* Loads and anything effectful or context-dependent across calls stays;
   Ctx_read is constant for the duration of one kernel entry, so it is
   CSE-able. *)
let cseable = function
  | Ir.Bin _ | Ir.Un _ | Ir.Fma _ | Ir.Cmp _ | Ir.Select _ | Ir.Cvt _
  | Ir.Broadcast _ | Ir.Extract _ | Ir.Insert _ | Ir.Reduce_add _ | Ir.Ctx_read _ ->
      true
  | Ir.Mov _ | Ir.Load _ | Ir.Store _ | Ir.Vload _ | Ir.Vstore _ | Ir.Atomic _
  | Ir.Spill _ | Ir.Restore _ | Ir.Set_resume _ | Ir.Set_status _ ->
      false

(** Run over every block; returns the number of instructions replaced by
    copies (a following {!Dce} pass removes those whose result was the
    only use). *)
let run (f : Ir.func) : int =
  let replaced = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let version : (Ir.vreg, int) Hashtbl.t = Hashtbl.create 32 in
      let ver r = Option.value (Hashtbl.find_opt version r) ~default:0 in
      let bump r = Hashtbl.replace version r (ver r + 1) in
      (* expression key -> (result reg, result version at definition) *)
      let avail : (string, Ir.vreg * int) Hashtbl.t = Hashtbl.create 32 in
      let key i =
        (* Stringify with operand versions spliced in; the destination is
           normalized out by keying on the def-less instruction text. *)
        let versioned =
          Ir.map_operands
            (function
              | Ir.R r -> Ir.R ((r * 1_000_000) + ver r)
              | o -> o)
            i
        in
        let shown =
          match Ir.def versioned with
          | Some _ -> Ir.with_def 0 versioned
          | None -> versioned
        in
        Fmt.to_to_string Vekt_ir.Pp.instr shown
      in
      b.Ir.insts <-
        List.map
          (fun (li : Ir.li) ->
            let i = li.Ir.i in
            if not (cseable i) then begin
              (match Ir.def i with Some d -> bump d | None -> ());
              li
            end
            else
              let d = match Ir.def i with Some d -> d | None -> assert false in
              let k = key i in
              match Hashtbl.find_opt avail k with
              | Some (prev, pver) when prev <> d && ver prev = pver ->
                  incr replaced;
                  bump d;
                  { li with Ir.i = Ir.Mov (Ir.reg_ty f d, d, Ir.R prev) }
              | _ ->
                  bump d;
                  Hashtbl.replace avail k (d, ver d);
                  li)
          b.Ir.insts)
    (Ir.blocks f);
  !replaced
