(** Optimization pipeline applied to specialized kernels ("the translation
    cache applies existing LLVM transformation passes including traditional
    compiler optimizations such as basic block fusion and common
    subexpression elimination", paper §5.1).

    Order: constant folding exposes copies and dead branches; CSE turns
    redundant computations (including the thread-invariant replicas of
    §6.2) into copies; DCE sweeps the dead copies and pack/unpack traffic;
    fusion then merges the straightened control flow.  A second round picks
    up what fusion exposed.  The pipeline mutates the function in place and
    returns per-pass removal statistics. *)

module Ir = Vekt_ir.Ir

type stats = {
  folded : int;
  branches_folded : int;
  cse_replaced : int;
  dce_removed : int;
  blocks_fused : int;
}

let round (f : Ir.func) : stats =
  let cf = Constfold.run f in
  let cse_replaced = Cse.run f in
  let dce_removed = Dce.run f in
  let blocks_fused = Fusion.run f in
  {
    folded = cf.Constfold.folded;
    branches_folded = cf.Constfold.branches_folded;
    cse_replaced;
    dce_removed;
    blocks_fused;
  }

let add a b =
  {
    folded = a.folded + b.folded;
    branches_folded = a.branches_folded + b.branches_folded;
    cse_replaced = a.cse_replaced + b.cse_replaced;
    dce_removed = a.dce_removed + b.dce_removed;
    blocks_fused = a.blocks_fused + b.blocks_fused;
  }

let optimize (f : Ir.func) : stats =
  let s1 = round f in
  let s2 = round f in
  add s1 s2
