(** Declarative optimization pass manager ("the translation cache applies
    existing LLVM transformation passes including traditional compiler
    optimizations such as basic block fusion and common subexpression
    elimination", paper §5.1; Revec's lesson is that the pipeline should
    be retargetable data, not frozen code).

    Passes are named entries in a {!registry}; a {!pipeline} is a pass
    sequence plus an optional run-to-fixpoint bound, parseable from a
    spec string:

    {v
      constfold,cse,dce,fusion          one round, in order
      constfold,cse,dce,fusion:fix      repeat until no pass changes
                                        anything (bounded)
      cse,dce:fix=3                     fixpoint with an explicit bound
    v}

    The default pipeline runs every registered pass to fixpoint: constant
    folding exposes copies and dead branches; CSE turns redundant
    computations (including the thread-invariant replicas of §6.2) into
    copies; DCE sweeps the dead copies and pack/unpack traffic; fusion
    merges the straightened control flow, exposing work for the next
    round.  Every pass is size-non-increasing, so the fixpoint result is
    never larger than any fixed number of rounds. *)

module Ir = Vekt_ir.Ir

(** A named transformation: [run] mutates the function in place and
    returns the number of changes it made (folds, replacements,
    removals, fusions). *)
type pass = { name : string; run : Ir.func -> int }

let registry : pass list =
  [
    {
      name = "constfold";
      run =
        (fun f ->
          let s = Constfold.run f in
          s.Constfold.folded + s.Constfold.branches_folded);
    };
    { name = "cse"; run = Cse.run };
    { name = "dce"; run = Dce.run };
    { name = "fusion"; run = Fusion.run };
  ]

let find_pass name = List.find_opt (fun p -> p.name = name) registry

let pass_names () = List.map (fun p -> p.name) registry

type pipeline = {
  passes : pass list;
  fixpoint : bool;
  max_rounds : int;  (** bound on fixpoint iteration (≥ 1) *)
}

let default_max_rounds = 10

let default_pipeline =
  { passes = registry; fixpoint = true; max_rounds = default_max_rounds }

(** The paper's frozen pipeline before this refactor: two rounds of
    every pass, no convergence check.  Kept for comparison benches and
    the fixpoint-is-no-worse regression test. *)
let two_round_pipeline = { passes = registry; fixpoint = false; max_rounds = 2 }

let pp_pipeline ppf (p : pipeline) =
  Fmt.pf ppf "%s%s"
    (String.concat "," (List.map (fun x -> x.name) p.passes))
    (if p.fixpoint then Fmt.str ":fix=%d" p.max_rounds else "")

(** Parse a pipeline spec string (see module doc for the grammar). *)
let parse_pipeline (spec : string) : (pipeline, string) result =
  let body, fixpoint, max_rounds =
    match String.index_opt spec ':' with
    | None -> (spec, false, 1)
    | Some i -> (
        let body = String.sub spec 0 i in
        let suffix = String.sub spec (i + 1) (String.length spec - i - 1) in
        match suffix with
        | "fix" -> (body, true, default_max_rounds)
        | s when String.length s > 4 && String.sub s 0 4 = "fix=" -> (
            match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
            | Some n when n >= 1 -> (body, true, n)
            | _ -> (body, true, -1))
        | _ -> (body, true, -1))
  in
  if max_rounds < 1 then
    Error (Fmt.str "bad pipeline suffix in %S (want :fix or :fix=N, N>=1)" spec)
  else if body = "" then Error "empty pipeline"
  else
    let names = String.split_on_char ',' body in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match find_pass (String.trim n) with
          | Some p -> resolve (p :: acc) rest
          | None ->
              Error
                (Fmt.str "unknown pass %S (available: %s)" n
                   (String.concat ", " (pass_names ()))))
    in
    Result.map
      (fun passes -> { passes; fixpoint; max_rounds })
      (resolve [] names)

(** Per-pass cumulative change counts (first-occurrence order) plus the
    number of rounds actually run. *)
type stats = { per_pass : (string * int) list; rounds : int }

let total_changes (s : stats) =
  List.fold_left (fun acc (_, c) -> acc + c) 0 s.per_pass

let changes_of (s : stats) name =
  Option.value (List.assoc_opt name s.per_pass) ~default:0

(** Run [pipeline] over [f] in place.  Non-fixpoint pipelines run
    [max_rounds] rounds unconditionally; fixpoint pipelines stop at the
    first round in which no pass reports a change, or at the bound.

    [observe] is middleware around each individual pass execution: it
    receives the pass name, the 1-based round number and a thunk that
    runs the pass, and must return the thunk's result.  The pass manager
    itself stays clock- and sink-free; callers that want per-pass spans
    (the translation cache) wrap the thunk with their own timing. *)
let run ?(observe : (pass:string -> round:int -> (unit -> int) -> int) option)
    ?(pipeline = default_pipeline) (f : Ir.func) : stats =
  let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let bump name c =
    (match Hashtbl.find_opt totals name with
    | None ->
        order := name :: !order;
        Hashtbl.replace totals name c
    | Some prev -> Hashtbl.replace totals name (prev + c));
    c
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < pipeline.max_rounds do
    incr rounds;
    let run_pass p =
      match observe with
      | None -> p.run f
      | Some obs -> obs ~pass:p.name ~round:!rounds (fun () -> p.run f)
    in
    let changed =
      List.fold_left (fun acc p -> acc + bump p.name (run_pass p)) 0 pipeline.passes
    in
    if pipeline.fixpoint && changed = 0 then continue_ := false
  done;
  {
    per_pass =
      List.rev_map (fun n -> (n, Hashtbl.find totals n)) !order;
    rounds = !rounds;
  }

(** Optimize with the default (fixpoint) pipeline. *)
let optimize (f : Ir.func) : stats = run f
