(** Kernel-argument specialization (paper §5.1 future work: "the
    translation cache could be modified to support querying for additional
    specialization parameters beyond warp size such as optimization level
    or particular kernel argument values").

    Given a concrete parameter block, every load from the read-only
    [.param] space with a constant address becomes an immediate move.
    Downstream constant folding then propagates sizes, strides and base
    pointers, the affine analysis sees constant bases, and uniform loop
    bounds fold into the divergence structure.

    The pass runs on a {e copy} of the scalar function: the translation
    cache keys specializations by (warp size, parameter digest), so
    launches with different arguments get their own code, exactly like
    value-specializing JITs. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
open Vekt_ptx

(** Rewrite param loads against the concrete [params] block.  Returns the
    number of loads replaced. *)
let params (f : Ir.func) ~(params : Mem.t) : int =
  let replaced = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.insts <-
        List.map
          (fun (li : Ir.li) ->
            match li.Ir.i with
            | Ir.Load (Ast.Param, ty, d, Ir.Imm (Scalar_ops.I base, _), off)
              when Int64.to_int base + off + Ast.size_of ty <= Mem.size params ->
                incr replaced;
                let v = Mem.load params ty (Int64.to_int base + off) in
                { li with Ir.i = Ir.Mov (Ty.scalar ty, d, Ir.Imm (v, ty)) }
            | _ -> li)
          b.Ir.insts)
    (Ir.blocks f);
  !replaced
