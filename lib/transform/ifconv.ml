(** PTX→PTX if-conversion (paper §5.1: "a PTX to PTX transformation
    replaces non-branch predicated instructions with select").

    After this pass, guards appear only on branches, so the translator to IR
    never sees predicated instructions:

    - guarded pure instructions writing a data register become an
      unconditional compute into a fresh register followed by a [selp]
      keeping the old destination when the guard is false;
    - guarded memory/atomic instructions and guarded predicate-writers
      (PTX's [selp] cannot select predicates) are isolated into a branch
      diamond around a single-instruction block. *)

open Vekt_ptx
open Ast

type state = {
  mutable fresh_regs : (reg * dtype) list;  (* extra declarations, reversed *)
  mutable counter : int;
}

let fresh_reg st ty =
  st.counter <- st.counter + 1;
  let r = Fmt.str "%%__ifc%d" st.counter in
  st.fresh_regs <- (r, ty) :: st.fresh_regs;
  r

(* Destination register and its type for pure, selp-convertible
   instructions. *)
let pure_dst = function
  (* [mul.wide] defines at twice the instruction type's width, so the
     select temp must be declared at the widened type. *)
  | Binary (Mul_wide, ty, d, _, _) ->
      Some (d, Option.value ~default:ty (widened ty))
  | Binary (_, ty, d, _, _) when ty <> Pred -> Some (d, ty)
  | Unary (_, ty, d, _) when ty <> Pred -> Some (d, ty)
  | Mad (ty, d, _, _, _) -> Some (d, ty)
  | Selp (ty, d, _, _, _) -> Some (d, ty)
  | Mov (ty, d, _) when ty <> Pred -> Some (d, ty)
  | Cvt (dty, _, d, _) when dty <> Pred -> Some (d, dty)
  | _ -> None

let retarget i d =
  match i with
  | Binary (op, ty, _, a, b) -> Binary (op, ty, d, a, b)
  | Unary (op, ty, _, a) -> Unary (op, ty, d, a)
  | Mad (ty, _, a, b, c) -> Mad (ty, d, a, b, c)
  | Selp (ty, _, a, b, p) -> Selp (ty, d, a, b, p)
  | Mov (ty, _, a) -> Mov (ty, d, a)
  | Cvt (dty, sty, _, a) -> Cvt (dty, sty, d, a)
  | _ -> assert false

(** Convert one guarded instruction into unguarded statements, possibly
    splitting the enclosing block.  Works directly on the statement list;
    diamonds introduce fresh labels. *)
let run (k : kernel) : kernel =
  let st = { fresh_regs = []; counter = 0 } in
  let label_counter = ref 0 in
  let existing_labels = Hashtbl.create 16 in
  List.iter
    (function Label l -> Hashtbl.replace existing_labels l () | Inst _ -> ())
    k.k_body;
  let fresh_label () =
    incr label_counter;
    let rec pick () =
      let l = Fmt.str "$__ifc%d" !label_counter in
      if Hashtbl.mem existing_labels l then (
        incr label_counter;
        pick ())
      else (
        Hashtbl.replace existing_labels l ();
        l)
    in
    pick ()
  in
  (* Converted statements inherit the guarded instruction's source line so
     attribution survives if-conversion. *)
  let convert (g : guard) (i : instr) (line : int) : stmt list =
    match (g, i) with
    | Always, _ | _, Bra _ -> [ Inst (g, i, line) ]
    | (If p | Ifnot p), _ -> (
        let sense = match g with If _ -> true | _ -> false in
        match pure_dst i with
        | Some (d, ty) ->
            (* t = op(...); d = selp(t, d) or selp(d, t) depending on sense *)
            let t = fresh_reg st ty in
            let sel =
              if sense then Selp (ty, d, Reg t, Reg d, p)
              else Selp (ty, d, Reg d, Reg t, p)
            in
            [ Inst (Always, retarget i t, line); Inst (Always, sel, line) ]
        | None ->
            (* Diamond: branch around a single-instruction block. *)
            let skip = fresh_label () in
            let inv_guard = if sense then Ifnot p else If p in
            [ Inst (inv_guard, Bra skip, line); Inst (Always, i, line); Label skip ])
  in
  let body =
    List.concat_map
      (function Label l -> [ Label l ] | Inst (g, i, line) -> convert g i line)
      k.k_body
  in
  { k with k_regs = k.k_regs @ List.rev st.fresh_regs; k_body = body }

(** True when no non-branch instruction carries a guard (the pass's
    postcondition; checked in tests). *)
let is_clean (k : kernel) =
  List.for_all
    (function
      | Inst ((If _ | Ifnot _), Bra _, _) | Inst (Always, _, _) | Label _ -> true
      | Inst ((If _ | Ifnot _), _, _) -> false)
    k.k_body
