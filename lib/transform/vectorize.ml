(** Vectorization (paper §4, Algorithms 1–4).

    Transforms a scalar kernel function into a warp-size-[ws]
    specialization in which one execution of each block is equivalent to
    all [ws] threads of a warp executing the scalar block:

    - {b Algorithm 1}: every instruction is replicated per thread; bundles
      whose operator and element type the target supports are promoted to a
      single vector-typed instruction.  Loads, stores, atomics and context
      reads are never promoted — their values are explicitly packed
      ([Insert]) into vectors and unpacked ([Extract]) at boundaries.
    - {b Algorithm 2}: conditional branches become a lane-predicate sum and
      a switch: sum 0 → uniform fall-through, sum [ws] → uniform taken,
      anything else → a divergent yield through an exit handler.
    - {b Algorithm 3}: a scheduler block dispatches on the warp's entry ID
      to per-entry handlers that restore live registers from thread-local
      spill slots.
    - {b Algorithm 4}: exit handlers spill live registers, record each
      lane's resume entry ID (a [select] over the lane's branch predicate)
      and the warp's resume status, then return to the execution manager.

    With [mode = Static_tie], thread-invariant expression elimination
    (paper §6.2) is applied: warps are assumed to be consecutive [tid.x]
    threads, invariant instructions are emitted once for the whole warp
    instead of once per lane, and lane thread IDs are computed as
    [lane0.tid.x + lane]. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Builder = Vekt_ir.Builder
module Verify = Vekt_ir.Verify
module Liveness = Vekt_analysis.Liveness
module Invariance = Vekt_analysis.Invariance


open Vekt_ptx
module ISet = Set.Make (Int)

type mode = Dynamic | Static_tie

type vectorized = {
  func : Ir.func;
  mode : mode;
  entry_ids : (string * int) list;
  restores_per_entry : (int * int) list;
      (** entry id → live registers restored per thread (Figure 8) *)
}

(** How a scalar virtual register is realized in the specialized function. *)
type rep =
  | Vec of Ir.vreg  (** one vector register, lane = thread *)
  | Lanes of Ir.vreg array  (** one scalar register per thread *)
  | Uni of Ir.vreg  (** one scalar shared by all threads (invariant) *)

(** Element types with vector-register support on the modelled targets
    (SSE/AVX-class): 32-bit integers and predicates, single and double
    floats.  64-bit integer arithmetic and narrow types stay scalar. *)
let vectorizable_elt = function
  | Ast.F32 | Ast.F64 | Ast.S32 | Ast.U32 | Ast.B32 | Ast.Pred -> true
  | _ -> false

(** Operators the target supports lane-parallel at the given element type
    (integer division and [mul.hi] have no SSE/AVX forms). *)
let vectorizable_binop op (elt : Ast.dtype) =
  match (op, Ast.is_float elt) with
  | (Ast.Div | Ast.Min | Ast.Max), true -> true
  | (Ast.Div | Ast.Rem | Ast.Mul_hi), false -> false
  | Ast.Rem, true -> false
  | _ -> true

let instr_vectorizable (i : Ir.instr) =
  match i with
  | Ir.Bin (op, ty, _, _, _) -> vectorizable_elt ty.Ty.elt && vectorizable_binop op ty.elt
  | Ir.Un (_, ty, _, _) -> vectorizable_elt ty.Ty.elt
  | Ir.Fma (ty, _, _, _, _) -> vectorizable_elt ty.Ty.elt
  | Ir.Cmp (_, ty, _, _, _) -> vectorizable_elt ty.Ty.elt
  | Ir.Select (ty, _, _, _, _) -> vectorizable_elt ty.Ty.elt
  | Ir.Mov (ty, _, _) -> vectorizable_elt ty.Ty.elt
  | Ir.Cvt (dt, st, _, _) -> vectorizable_elt dt.Ty.elt && vectorizable_elt st.Ty.elt
  | Ir.Load _ | Ir.Store _ | Ir.Atomic _ | Ir.Ctx_read _ -> false
  | _ -> false

let entry_label l id = Fmt.str "%s.entry%d" l id

let run ?(mode = Dynamic) ?(affine = false) ~(plan : Plan.t) (scalar : Ir.func)
    ~(ws : int) : vectorized =
  if ws < 1 then invalid_arg "Vectorize.run: ws must be >= 1";
  let b = Builder.create ~warp_size:ws (Fmt.str "%s.w%d" scalar.Ir.fname ws) in
  let static = mode = Static_tie in
  let variants =
    if not static then ISet.empty
    else
      (* Thread-invariance holds among threads sharing a path *history*.
         A value that is live into an entry point can reach it along
         different paths in different lanes (warps reform at divergent-
         branch joins and barriers), so any register with a spill slot must
         stay per-lane; only values produced and consumed between yields
         may be realized uniformly. *)
      let seed =
        Hashtbl.fold (fun r _ acc -> ISet.add r acc) plan.Plan.slots ISet.empty
      in
      Invariance.variant_regs ~static_warps:true ~seed scalar
  in
  (* Decide the realization of each scalar register up front. *)
  let reps : (Ir.vreg, rep) Hashtbl.t = Hashtbl.create 64 in
  let rep_of (r : Ir.vreg) : rep =
    match Hashtbl.find_opt reps r with
    | Some rep -> rep
    | None ->
        let ty = Ir.reg_ty scalar r in
        let rep =
          if static && not (ISet.mem r variants) then
            Uni (Builder.fresh_reg b ty)
          else if ws > 1 && vectorizable_elt ty.Ty.elt then
            Vec (Builder.fresh_reg b (Ty.vector ty.Ty.elt ws))
          else Lanes (Array.init ws (fun _ -> Builder.fresh_reg b ty))
        in
        Hashtbl.replace reps r rep;
        rep
  in
  (* Affine/uniform address classification for the coalesced-memory-access
     optimization (paper §4 future work).  Registers live into entry points
     are seeded Unknown: their uniform component may differ per lane after
     warp reformation. *)
  let affine_cls =
    if affine && ws > 1 then
      let slotted = Hashtbl.fold (fun r _ acc -> r :: acc) plan.Plan.slots [] in
      Some (Vekt_analysis.Affine.classify ~slotted scalar)
    else None
  in
  (* Per-block local refinement of the flow-insensitive classes: the
     translator reuses PTX registers heavily, so the global join is often
     Unknown while the reaching definition inside the current block is
     plainly affine.  [local_cls] tracks in-block definitions (reset at
     each body block); block-entry values fall back to the global table,
     which is reformation-safe by construction. *)
  let local_cls : (Ir.vreg, Vekt_analysis.Affine.cls) Hashtbl.t = Hashtbl.create 16 in
  let reg_cls r =
    match Hashtbl.find_opt local_cls r with
    | Some c -> c
    | None -> (
        match affine_cls with
        | None -> Vekt_analysis.Affine.Unknown
        | Some cls ->
            Option.value (Hashtbl.find_opt cls r) ~default:Vekt_analysis.Affine.Unknown)
  in
  let addr_cls (base : Ir.operand) : Vekt_analysis.Affine.cls =
    match base with
    | Ir.Imm (Scalar_ops.I v, _) -> Vekt_analysis.Affine.Const v
    | Ir.Imm _ -> Vekt_analysis.Affine.Unknown
    | Ir.R r -> reg_cls r
  in
  let local_cls_update (i : Ir.instr) =
    if affine_cls <> None then
      match Ir.def i with
      | Some d ->
          Hashtbl.replace local_cls d (Vekt_analysis.Affine.transfer ~get:reg_cls i)
      | None -> ()
  in
  (* Per-block broadcast memo: a Uni register used in a vector position is
     splat once per block. *)
  let bcast_memo : (Ir.vreg, Ir.vreg) Hashtbl.t = Hashtbl.create 16 in
  let vector_operand elt (o : Ir.operand) : Ir.operand =
    match o with
    | Ir.Imm _ -> o (* immediates splat implicitly *)
    | Ir.R r -> (
        match rep_of r with
        | Vec v -> Ir.R v
        | Uni u -> (
            match Hashtbl.find_opt bcast_memo u with
            | Some bc -> Ir.R bc
            | None ->
                let bc =
                  Builder.emit_val b (Ty.vector elt ws) (fun d ->
                      Ir.Broadcast (Ty.vector elt ws, d, Ir.R u))
                in
                Hashtbl.replace bcast_memo u bc;
                Ir.R bc)
        | Lanes _ ->
            invalid_arg
              (Fmt.str "vectorize: scalar-only register %%%d in vector position" r))
  in
  (* Lane [l]'s scalar value of an operand. *)
  let lane_operand l (o : Ir.operand) : Ir.operand =
    match o with
    | Ir.Imm _ -> o
    | Ir.R r -> (
        match rep_of r with
        | Lanes a -> Ir.R a.(l)
        | Uni u -> Ir.R u
        | Vec v ->
            let elt = (Ir.reg_ty scalar r).Ty.elt in
            Ir.R (Builder.emit_val b (Ty.scalar elt) (fun d -> Ir.Extract (elt, d, Ir.R v, l))))
  in
  (* Write lane [l] of destination [d] from a maker of scalar instrs. *)
  let define_lane (d : Ir.vreg) l (mk : Ir.vreg -> Ir.instr) =
    match rep_of d with
    | Lanes a -> Builder.emit b (mk a.(l))
    | Uni u ->
        (* Only lane 0 defines a uniform destination. *)
        if l = 0 then Builder.emit b (mk u)
    | Vec v ->
        let elt = (Ir.reg_ty scalar d).Ty.elt in
        let tmp = Builder.emit_val b (Ty.scalar elt) mk in
        Builder.emit b (Ir.Insert (Ty.vector elt ws, v, Ir.R v, l, Ir.R tmp))
  in
  (* Is every register operand available as a vector or uniform?  Lanes
     realizations force the scalar path. *)
  let operands_promotable ops =
    List.for_all
      (fun o ->
        match o with
        | Ir.Imm _ -> true
        | Ir.R r -> ( match rep_of r with Lanes _ -> false | Vec _ | Uni _ -> true))
      ops
  in
  let scalar_reg_elt r = (Ir.reg_ty scalar r).Ty.elt in
  (* Coalesced memory accesses (paper §4 future work, enabled by [affine]):
     - an address that is affine in tid.x with stride = element size touches
       contiguous memory across a consecutive-tid warp → one vector load or
       store (static warp formation only);
     - a warp-uniform address → one scalar load broadcast to all lanes, or,
       for stores, the last lane's value (sequential lane stores to one
       address leave exactly that).
     Returns true when it handled the instruction. *)
  let coalesce_memory (i : Ir.instr) : bool =
    if ws = 1 || affine_cls = None then false
    else
      let module Aff = Vekt_analysis.Affine in
      match i with
      | Ir.Load (sp, ty, d, base, off) -> (
          match addr_cls base with
          | Aff.Affine s
            when static
                 && Int64.equal s (Int64.of_int (Ast.size_of ty))
                 && (match rep_of d with Vec _ -> true | _ -> false) ->
              let v = match rep_of d with Vec v -> v | _ -> assert false in
              Builder.emit b (Ir.Vload (sp, ty, v, lane_operand 0 base, off));
              true
          | Aff.Uniform | Aff.Const _ ->
              let s =
                Builder.emit_val b (Ty.scalar ty) (fun dd ->
                    Ir.Load (sp, ty, dd, lane_operand 0 base, off))
              in
              (match rep_of d with
              | Vec v -> Builder.emit b (Ir.Broadcast (Ty.vector ty ws, v, Ir.R s))
              | Lanes a ->
                  Array.iter
                    (fun r -> Builder.emit b (Ir.Mov (Ty.scalar ty, r, Ir.R s)))
                    a
              | Uni u -> Builder.emit b (Ir.Mov (Ty.scalar ty, u, Ir.R s)));
              true
          | _ -> false)
      | Ir.Store (sp, ty, base, off, v) -> (
          match addr_cls base with
          | Aff.Affine s
            when static && Int64.equal s (Int64.of_int (Ast.size_of ty)) -> (
              match v with
              | Ir.R r -> (
                  match rep_of r with
                  | Vec vv ->
                      Builder.emit b
                        (Ir.Vstore (sp, ty, lane_operand 0 base, off, Ir.R vv));
                      true
                  | _ -> false)
              | Ir.Imm _ ->
                  (* A scalar immediate is not a legal vector value operand:
                     splat it explicitly (the verifier rejects the shortcut). *)
                  let vv =
                    Builder.emit_val b (Ty.vector ty ws) (fun d ->
                        Ir.Broadcast (Ty.vector ty ws, d, v))
                  in
                  Builder.emit b (Ir.Vstore (sp, ty, lane_operand 0 base, off, Ir.R vv));
                  true)
          | Aff.Uniform | Aff.Const _ ->
              Builder.emit b
                (Ir.Store (sp, ty, lane_operand 0 base, off, lane_operand (ws - 1) v));
              true
          | _ -> false)
      | _ -> false
  in
  (* Algorithm 1: Vectorize(i, ws). *)
  let vectorize_instr (i : Ir.instr) =
    let dst = Ir.def i in
    (* An instruction is emitted once for the warp iff its destination is
       realized uniformly — which the variance fixpoint guarantees happens
       only when every definition (including this one) is invariant. *)
    let invariant =
      static
      && match dst with
         | Some d -> ( match rep_of d with Uni _ -> true | _ -> false)
         | None -> false
    in
    let promote =
      (not invariant) && ws > 1 && instr_vectorizable i
      && (match dst with Some d -> (match rep_of d with Vec _ -> true | _ -> false) | None -> false)
      && operands_promotable
           (match i with
           | Ir.Bin (_, _, _, a, c) -> [ a; c ]
           | Ir.Un (_, _, _, a) -> [ a ]
           | Ir.Fma (_, _, a, c, e) -> [ a; c; e ]
           | Ir.Cmp (_, _, _, a, c) -> [ a; c ]
           | Ir.Select (_, _, c, a, e) -> [ c; a; e ]
           | Ir.Mov (_, _, a) -> [ a ]
           | Ir.Cvt (_, _, _, a) -> [ a ]
           | _ -> [])
    in
    if invariant then begin
      (* §6.2: emit the warp's single copy; operands are uniform or imm. *)
      let uni_operand (o : Ir.operand) =
        match o with
        | Ir.Imm _ -> o
        | Ir.R r -> (
            match rep_of r with
            | Uni u -> Ir.R u
            | _ -> invalid_arg "vectorize: variant operand in invariant instruction")
      in
      let d = match dst with Some d -> d | None -> assert false in
      let u = match rep_of d with Uni u -> u | _ -> assert false in
      Builder.emit b (Ir.with_def u (Ir.map_operands uni_operand i));
      (* Non-SSA: a redefinition invalidates any memoized splat of the old
         value within this block. *)
      Hashtbl.remove bcast_memo u
    end
    else if promote then begin
      let d = match dst with Some d -> d | None -> assert false in
      let v = match rep_of d with Vec v -> v | _ -> assert false in
      let widen (t : Ty.t) = Ty.vector t.Ty.elt ws in
      let vec_i =
        match i with
        | Ir.Bin (op, ty, _, a, c) ->
            Ir.Bin (op, widen ty, v, vector_operand ty.elt a, vector_operand ty.elt c)
        | Ir.Un (op, ty, _, a) -> Ir.Un (op, widen ty, v, vector_operand ty.elt a)
        | Ir.Fma (ty, _, a, c, e) ->
            Ir.Fma
              ( widen ty,
                v,
                vector_operand ty.elt a,
                vector_operand ty.elt c,
                vector_operand ty.elt e )
        | Ir.Cmp (op, ty, _, a, c) ->
            Ir.Cmp (op, widen ty, v, vector_operand ty.elt a, vector_operand ty.elt c)
        | Ir.Select (ty, _, c, a, e) ->
            Ir.Select
              ( widen ty,
                v,
                vector_operand Ast.Pred c,
                vector_operand ty.elt a,
                vector_operand ty.elt e )
        | Ir.Mov (ty, _, a) -> Ir.Mov (widen ty, v, vector_operand ty.elt a)
        | Ir.Cvt (dt, st, _, a) -> Ir.Cvt (widen dt, widen st, v, vector_operand st.elt a)
        | _ -> assert false
      in
      Builder.emit b vec_i
    end
    else if coalesce_memory i then ()
    else begin
      (* Replicate per lane, packing/unpacking at vector boundaries. *)
      for l = 0 to ws - 1 do
        match i with
        | Ir.Ctx_read (d, Ir.Warp_width, _) ->
            define_lane d l (fun dd ->
                Ir.Mov (Ty.scalar Ast.U32, dd, Ir.Imm (Scalar_ops.I (Int64.of_int ws), Ast.U32)))
        | Ir.Ctx_read (d, Ir.Tid Ast.X, _) when static ->
            (* Static warp formation: lane l's tid.x = lane 0's + l. *)
            if l = 0 then define_lane d 0 (fun dd -> Ir.Ctx_read (dd, Ir.Tid Ast.X, 0))
            else
              define_lane d l (fun dd ->
                  let base = lane_operand 0 (Ir.R d) in
                  Ir.Bin
                    ( Ast.Add,
                      Ty.scalar (scalar_reg_elt d),
                      dd,
                      base,
                      Ir.Imm (Scalar_ops.I (Int64.of_int l), scalar_reg_elt d) ))
        | Ir.Ctx_read (d, field, _) ->
            define_lane d l (fun dd -> Ir.Ctx_read (dd, field, l))
        | Ir.Load (sp, ty, d, base, off) ->
            let base = lane_operand l base in
            define_lane d l (fun dd -> Ir.Load (sp, ty, dd, base, off))
        | Ir.Store (sp, ty, base, off, v) ->
            let base = lane_operand l base in
            let v = lane_operand l v in
            Builder.emit b (Ir.Store (sp, ty, base, off, v))
        | Ir.Atomic (sp, op, ty, d, base, off, v, c) ->
            let base = lane_operand l base in
            let v = lane_operand l v in
            let c = Option.map (lane_operand l) c in
            define_lane d l (fun dd -> Ir.Atomic (sp, op, ty, dd, base, off, v, c))
        | _ ->
            let i' = Ir.map_operands (lane_operand l) i in
            (match Ir.def i with
            | Some d -> define_lane d l (fun dd -> Ir.with_def dd i')
            | None -> Builder.emit b i')
      done
    end
  in
  (* --- Algorithm 3: scheduler --- *)
  let sched = Builder.start_block ~kind:Ir.Scheduler b "$scheduler" in
  ignore sched;
  let eid = Builder.emit_val b (Ty.scalar Ast.S32) (fun d -> Ir.Ctx_read (d, Ir.Entry_id, 0)) in
  (* Cases filled in after entry handlers exist. *)
  let entry_cases =
    List.map (fun (l, id) -> (id, entry_label l id)) plan.Plan.entry_ids
  in
  Builder.set_term b
    (Ir.Switch (Ir.R eid, entry_cases, entry_label scalar.Ir.entry 0));
  (* --- Entry handlers --- *)
  let restores_per_entry = ref [] in
  List.iter
    (fun (l, id) ->
      ignore (Builder.start_block ~kind:Ir.Entry_handler b (entry_label l id));
      Hashtbl.reset bcast_memo;
      let live = Plan.entry_live plan l in
      restores_per_entry := (id, ISet.cardinal live) :: !restores_per_entry;
      ISet.iter
        (fun r ->
          let slot =
            match Plan.slot plan r with
            | Some s -> s
            | None -> invalid_arg (Fmt.str "no spill slot for live-in %%%d" r)
          in
          let elt = scalar_reg_elt r in
          match rep_of r with
          | Lanes a ->
              Array.iteri
                (fun lane dst -> Builder.emit b (Ir.Restore (dst, lane, slot, elt)))
                a
          | Uni u -> Builder.emit b (Ir.Restore (u, 0, slot, elt))
          | Vec v ->
              for lane = 0 to ws - 1 do
                let tmp =
                  Builder.emit_val b (Ty.scalar elt) (fun d ->
                      Ir.Restore (d, lane, slot, elt))
                in
                Builder.emit b (Ir.Insert (Ty.vector elt ws, v, Ir.R v, lane, Ir.R tmp))
              done)
        live;
      Builder.set_term b (Ir.Jump l))
    plan.Plan.entry_ids;
  (* --- Exit-handler emission (Algorithm 4) --- *)
  let spill_regs live =
    ISet.iter
      (fun r ->
        match Plan.slot plan r with
        | None -> ()
        | Some slot ->
            let elt = scalar_reg_elt r in
            (match rep_of r with
            | Lanes a ->
                Array.iteri
                  (fun lane src -> Builder.emit b (Ir.Spill (lane, slot, elt, Ir.R src)))
                  a
            | Uni u ->
                for lane = 0 to ws - 1 do
                  Builder.emit b (Ir.Spill (lane, slot, elt, Ir.R u))
                done
            | Vec v ->
                for lane = 0 to ws - 1 do
                  Builder.emit b (Ir.Spill (lane, slot, elt, Ir.R v))
                done))
      live
  in
  (* --- Bodies --- *)
  List.iter
    (fun (blk : Ir.block) -> ignore (Builder.start_block ~kind:Ir.Body b blk.Ir.label))
    (Ir.blocks scalar);
  List.iter
    (fun (blk : Ir.block) ->
      Builder.switch_to b blk.Ir.label;
      Hashtbl.reset bcast_memo;
      Hashtbl.reset local_cls;
      List.iter
        (fun ({ Ir.i; line } : Ir.li) ->
          (* Every replica/pack/unpack of a scalar instruction inherits its
             source line. *)
          Builder.set_line b line;
          vectorize_instr i;
          local_cls_update i)
        blk.Ir.insts;
      (* Divergence checks, spills and resume bookkeeping are scheduler
         overhead, not source code: attribute them to line 0. *)
      Builder.set_line b 0;
      match blk.Ir.term with
      | Ir.Jump l -> Builder.set_term b (Ir.Jump l)
      | Ir.Switch _ -> invalid_arg "vectorize: switch in scalar input"
      | Ir.Branch (cond, taken, ft) -> (
          let id_taken =
            match Plan.id_of_label plan taken with
            | Some id -> id
            | None -> invalid_arg "branch target is not an entry point"
          in
          let id_ft =
            match Plan.id_of_label plan ft with
            | Some id -> id
            | None -> invalid_arg "branch fall-through is not an entry point"
          in
          let cond_rep =
            match cond with
            | Ir.R r -> Some (rep_of r)
            | Ir.Imm _ -> None
          in
          match (cond_rep, cond) with
          | None, cond ->
              (* Constant condition: a uniform jump.  (cond_rep is None only
                 for immediates.) *)
              let v = match cond with Ir.Imm (v, _) -> v | _ -> assert false in
              Builder.set_term b
                (Ir.Jump (if Scalar_ops.to_bool v then taken else ft))
          | Some (Uni u), _ ->
              (* Thread-invariant condition: provably convergent branch. *)
              Builder.set_term b (Ir.Branch (Ir.R u, taken, ft))
          | Some crep, _ ->
              let sum =
                match crep with
                | Vec v ->
                    Builder.emit_val b (Ty.scalar Ast.S32) (fun d ->
                        Ir.Reduce_add (d, Ir.R v))
                | Lanes a ->
                    (* per-lane predicates (ws=1 or non-vectorizable): sum
                       them as integers *)
                    let acc =
                      Builder.emit_val b (Ty.scalar Ast.S32) (fun d ->
                          Ir.Reduce_add (d, Ir.R a.(0)))
                    in
                    Array.fold_left
                      (fun acc p ->
                        let pi =
                          Builder.emit_val b (Ty.scalar Ast.S32) (fun d ->
                              Ir.Reduce_add (d, Ir.R p))
                        in
                        Builder.emit_val b (Ty.scalar Ast.S32) (fun d ->
                            Ir.Bin (Ast.Add, Ty.scalar Ast.S32, d, Ir.R acc, Ir.R pi)))
                      acc
                      (Array.sub a 1 (Array.length a - 1))
                | Uni _ -> assert false
              in
              let exit_l = Fmt.str "%s.exit" blk.Ir.label in
              Builder.set_term b
                (Ir.Switch (Ir.R sum, [ (0, ft); (ws, taken) ], exit_l));
              (* Exit handler: spill live-outs, per-lane resume points. *)
              ignore (Builder.start_block ~kind:Ir.Exit_handler b exit_l);
              spill_regs (Liveness.live_out plan.Plan.live blk.Ir.label);
              for lane = 0 to ws - 1 do
                let p_lane = lane_operand lane cond in
                let rid =
                  Builder.emit_val b (Ty.scalar Ast.S32) (fun d ->
                      Ir.Select
                        ( Ty.scalar Ast.S32,
                          d,
                          p_lane,
                          Ir.Imm (Scalar_ops.I (Int64.of_int id_taken), Ast.S32),
                          Ir.Imm (Scalar_ops.I (Int64.of_int id_ft), Ast.S32) ))
                in
                Builder.emit b (Ir.Set_resume (lane, Ir.R rid))
              done;
              Builder.emit b (Ir.Set_status Ir.Status_branch);
              Builder.set_term b Ir.Return)
      | Ir.Barrier l ->
          let id_l =
            match Plan.id_of_label plan l with
            | Some id -> id
            | None -> invalid_arg "barrier continuation is not an entry point"
          in
          let exit_l = Fmt.str "%s.barexit" blk.Ir.label in
          Builder.set_term b (Ir.Jump exit_l);
          ignore (Builder.start_block ~kind:Ir.Exit_handler b exit_l);
          spill_regs (Liveness.live_out plan.Plan.live blk.Ir.label);
          for lane = 0 to ws - 1 do
            Builder.emit b
              (Ir.Set_resume (lane, Ir.Imm (Scalar_ops.I (Int64.of_int id_l), Ast.S32)))
          done;
          Builder.emit b (Ir.Set_status Ir.Status_barrier);
          Builder.set_term b Ir.Return
      | Ir.Return ->
          let exit_l = Fmt.str "%s.exitterm" blk.Ir.label in
          Builder.set_term b (Ir.Jump exit_l);
          ignore (Builder.start_block ~kind:Ir.Exit_handler b exit_l);
          Builder.emit b (Ir.Set_status Ir.Status_exit);
          Builder.set_term b Ir.Return)
    (Ir.blocks scalar);
  let func = Builder.func b in
  {
    func;
    mode;
    entry_ids = plan.Plan.entry_ids;
    restores_per_entry = List.rev !restores_per_entry;
  }
