(** Translation from PTX kernels to scalar IR (the analogue of Ocelot's
    PTX→LLVM translator, [16] in the paper).

    Precondition: the kernel has been if-converted ({!Ifconv}), so only
    branches carry guards.  The result is a width-1 IR function in which

    - PTX registers map 1:1 to virtual registers,
    - special registers become context-object reads,
    - named variables become constant byte offsets within their address
      space, and thread-local accesses are rebased onto the thread's
      [Local_base] context field (thread-local memory is a contiguous
      arena partitioned per thread, as in the paper's implementation),
    - barriers and exits become the dedicated terminators that the
      yield-on-diverge transformation later expands. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Builder = Vekt_ir.Builder
module Verify = Vekt_ir.Verify
module Liveness = Vekt_analysis.Liveness
module Invariance = Vekt_analysis.Invariance


open Vekt_ptx
open Ast

(** A PTX construct the frontend cannot translate.  The payload is
    structured so callers (the translation cache, the host API) can fold
    it into the {!Vekt_error.Compile} taxonomy without string parsing:
    [kernel] is filled in by {!frontend} ([""] while translating),
    [construct] names what was rejected. *)
exception Unsupported of { kernel : string; construct : string }

let unsupported fmt =
  Fmt.kstr (fun construct -> raise (Unsupported { kernel = ""; construct })) fmt

type t = {
  func : Ir.func;
  shared_bytes : int;  (** static [.shared] allocation for one CTA *)
  local_decl_bytes : int;  (** declared [.local] bytes per thread *)
  reg_map : (string, Ir.vreg) Hashtbl.t;
}

let ctx_field_of_special = function
  | Tid d -> Ir.Tid d
  | Ntid d -> Ir.Ntid d
  | Ctaid d -> Ir.Ctaid d
  | Nctaid d -> Ir.Nctaid d
  | Laneid -> Ir.Lane
  | Warpsize -> Ir.Warp_width

let translate (m : modul) (k : kernel) : t =
  let b = Builder.create ~warp_size:1 k.k_name in
  let reg_map = Hashtbl.create 64 in
  List.iter
    (fun (r, ty) -> Hashtbl.replace reg_map r (Builder.fresh_reg b (Ty.scalar ty)))
    k.k_regs;
  let vreg r =
    match Hashtbl.find_opt reg_map r with
    | Some v -> v
    | None -> unsupported "undeclared register %s" r
  in
  let shared_layout, shared_bytes = Mem.layout k.k_shared in
  let local_layout, local_decl_bytes = Mem.layout k.k_local in
  let const_layout, _ = Mem.layout (List.map (fun c -> c.c_decl) m.m_consts) in
  let param_layout = Ast.param_layout k.k_params in
  let var_offset v =
    match List.assoc_opt v shared_layout with
    | Some off -> off
    | None -> (
        match List.assoc_opt v local_layout with
        | Some off -> off
        | None -> (
            match List.assoc_opt v const_layout with
            | Some off -> off
            | None -> (
                match List.assoc_opt v param_layout with
                | Some (off, _) -> off
                | None -> unsupported "unknown variable %s" v)))
  in
  (* Operands in a context expecting type [ty]. *)
  let operand ty (o : Ast.operand) : Ir.operand =
    match o with
    | Reg r -> Ir.R (vreg r)
    | Imm_int i -> Ir.Imm (Scalar_ops.I (Scalar_ops.norm_int ty i), ty)
    | Imm_float f -> Ir.Imm (Scalar_ops.F f, ty)
    | Var v -> Ir.Imm (Scalar_ops.I (Int64.of_int (var_offset v)), ty)
    | Special s ->
        (* A special register used directly as an operand: read it into a
           temporary first. *)
        let tmp = Builder.fresh_reg b (Ty.scalar U32) in
        Builder.emit b (Ir.Ctx_read (tmp, ctx_field_of_special s, 0));
        if Ast.size_of ty = 4 then Ir.R tmp
        else begin
          let w = Builder.fresh_reg b (Ty.scalar ty) in
          Builder.emit b (Ir.Cvt (Ty.scalar ty, Ty.scalar U32, w, Ir.R tmp));
          Ir.R w
        end
  in
  (* Addresses: a base operand plus constant offset; thread-local accesses
     are rebased on the lane's Local_base context field. *)
  let address space ({ base; offset } : address) : Ir.operand * int =
    let base_op =
      match base with
      | Areg r -> Ir.R (vreg r)
      | Avar v -> Ir.Imm (Scalar_ops.I (Int64.of_int (var_offset v)), S64)
    in
    match space with
    | Local ->
        let lb = Builder.fresh_reg b (Ty.scalar S64) in
        Builder.emit b (Ir.Ctx_read (lb, Ir.Local_base, 0));
        let base_ty =
          match base_op with Ir.R r -> (Ir.reg_ty b.Builder.func r).Ty.elt | Ir.Imm (_, t) -> t
        in
        let base64 =
          if Ast.size_of base_ty = 8 then base_op
          else begin
            let w = Builder.fresh_reg b (Ty.scalar S64) in
            Builder.emit b (Ir.Cvt (Ty.scalar S64, Ty.scalar base_ty, w, base_op));
            Ir.R w
          end
        in
        let sum = Builder.fresh_reg b (Ty.scalar S64) in
        Builder.emit b (Ir.Bin (Add, Ty.scalar S64, sum, Ir.R lb, base64));
        (Ir.R sum, offset)
    | _ -> (base_op, offset)
  in
  let translate_instr (i : instr) =
    match i with
    | Binary (Mul_wide, ty, d, a, bb) ->
        (* mul.wide has no IR form: widen both operands (sign/zero extend
           per the source type) and multiply at the destination width —
           exact, because the product of two n-bit values fits in 2n bits. *)
        let wide =
          match Ast.widened ty with
          | Some w -> w
          | None -> unsupported "mul.wide at type %s" (Printer.dtype_str ty)
        in
        let widen_op o =
          let w = Builder.fresh_reg b (Ty.scalar wide) in
          Builder.emit b (Ir.Cvt (Ty.scalar wide, Ty.scalar ty, w, operand ty o));
          Ir.R w
        in
        let wa = widen_op a in
        let wb = widen_op bb in
        Builder.emit b (Ir.Bin (Mul_lo, Ty.scalar wide, vreg d, wa, wb))
    | Binary (op, ty, d, a, bb) ->
        let amt_ty = if op = Shl || op = Shr then U32 else ty in
        Builder.emit b (Ir.Bin (op, Ty.scalar ty, vreg d, operand ty a, operand amt_ty bb))
    | Unary (op, ty, d, a) ->
        Builder.emit b (Ir.Un (op, Ty.scalar ty, vreg d, operand ty a))
    | Mad (ty, d, a, bb, c) ->
        Builder.emit b
          (Ir.Fma (Ty.scalar ty, vreg d, operand ty a, operand ty bb, operand ty c))
    | Setp (op, ty, d, a, bb) ->
        Builder.emit b (Ir.Cmp (op, Ty.scalar ty, vreg d, operand ty a, operand ty bb))
    | Selp (ty, d, a, bb, p) ->
        Builder.emit b
          (Ir.Select (Ty.scalar ty, vreg d, Ir.R (vreg p), operand ty a, operand ty bb))
    | Mov (ty, d, Special s) ->
        let field = ctx_field_of_special s in
        if Ast.size_of ty = 4 then Builder.emit b (Ir.Ctx_read (vreg d, field, 0))
        else begin
          let tmp = Builder.fresh_reg b (Ty.scalar U32) in
          Builder.emit b (Ir.Ctx_read (tmp, field, 0));
          Builder.emit b (Ir.Cvt (Ty.scalar ty, Ty.scalar U32, vreg d, Ir.R tmp))
        end
    | Mov (ty, d, a) -> Builder.emit b (Ir.Mov (Ty.scalar ty, vreg d, operand ty a))
    | Cvt (dty, sty, d, a) ->
        Builder.emit b (Ir.Cvt (Ty.scalar dty, Ty.scalar sty, vreg d, operand sty a))
    | Ld (sp, ty, d, addr) ->
        let base, off = address sp addr in
        Builder.emit b (Ir.Load (sp, ty, vreg d, base, off))
    | St (sp, ty, addr, v) ->
        let base, off = address sp addr in
        Builder.emit b (Ir.Store (sp, ty, base, off, operand ty v))
    | Atom (sp, op, ty, d, addr, v, c) ->
        let base, off = address sp addr in
        Builder.emit b
          (Ir.Atomic (sp, op, ty, vreg d, base, off, operand ty v, Option.map (operand ty) c))
    | Call _ -> unsupported "call survived inlining"
    | Bra _ | Bar | Ret | Exit ->
        unsupported "control flow must come from CFG terminators"
  in
  let cfg = Cfg.of_kernel k in
  (* Create all blocks first so terminators can reference them. *)
  List.iter (fun (blk : Cfg.block) -> ignore (Builder.start_block b blk.label)) cfg.blocks;
  b.Builder.func.Ir.entry <- cfg.entry;
  List.iter
    (fun (blk : Cfg.block) ->
      Builder.switch_to b blk.label;
      List.iter
        (fun (g, i, line) ->
          (* Helper instructions emitted while translating this PTX
             instruction (address arithmetic, special-register reads)
             inherit its source line. *)
          Builder.set_line b line;
          match g with
          | Always -> translate_instr i
          | If _ | Ifnot _ ->
              unsupported "guarded instruction survived if-conversion")
        blk.insts;
      Builder.set_line b 0;
      let term =
        match blk.term with
        | Cfg.Br l -> Ir.Jump l
        | Cfg.Cbr (p, sense, taken, ft) ->
            if sense then Ir.Branch (Ir.R (vreg p), taken, ft)
            else Ir.Branch (Ir.R (vreg p), ft, taken)
        | Cfg.Bar_then l -> Ir.Barrier l
        | Cfg.Exit_term -> Ir.Return
      in
      Builder.set_term b term)
    cfg.blocks;
  { func = Builder.func b; shared_bytes; local_decl_bytes; reg_map }

(** Full frontend pipeline for one kernel: typecheck, if-convert,
    translate, verify. *)
let frontend (m : modul) ~kernel : t =
  let k =
    match find_kernel m kernel with
    | Some k -> k
    | None -> raise (Unsupported { kernel; construct = Fmt.str "no kernel named %s" kernel })
  in
  (* device functions are exhaustively inlined first (paper §4.1 treats
     true calls as future work; see Inline) *)
  let k =
    try Inline.expand m k
    with Inline.Error e -> raise (Unsupported { kernel; construct = e })
  in
  let consts = List.map (fun c -> c.c_decl.a_name) m.m_consts in
  (match Typecheck.check_kernel ~consts k with
  | [] -> ()
  | e :: _ ->
      raise
        (Unsupported
           { kernel; construct = Fmt.str "type error: %a" Typecheck.pp_error e }));
  let k = Ifconv.run k in
  let t =
    try translate m k
    with Unsupported { kernel = ""; construct } -> raise (Unsupported { kernel; construct })
  in
  Verify.check_exn t.func;
  t
