(** Constant folding and local constant propagation.

    Within each block, registers holding known scalar constants are
    substituted into operand positions, pure instructions with all-constant
    operands are evaluated with the shared {!Vekt_ptx.Scalar_ops} semantics
    (so folding can never change results), and constant branch/switch
    terminators are collapsed to jumps.

    Vector-typed operations fold too when their operands are (splat)
    constants — the result is a splat immediate, which the interpreter and
    verifier both accept in vector positions. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
open Vekt_ptx

type stats = { folded : int; branches_folded : int }

let eval_pure (i : Ir.instr) : (Scalar_ops.value * Ast.dtype) option =
  let imm = function Ir.Imm (v, ty) -> Some (v, ty) | Ir.R _ -> None in
  match i with
  | Ir.Bin (op, ty, _, a, b) -> (
      match (imm a, imm b) with
      | Some (x, _), Some (y, _) -> (
          try Some (Scalar_ops.binop op ty.Ty.elt x y, ty.Ty.elt)
          with Scalar_ops.Unsupported _ -> None)
      | _ -> None)
  | Ir.Un (op, ty, _, a) -> (
      match imm a with
      | Some (x, _) -> (
          try Some (Scalar_ops.unop op ty.Ty.elt x, ty.Ty.elt)
          with Scalar_ops.Unsupported _ -> None)
      | None -> None)
  | Ir.Fma (ty, _, a, b, c) -> (
      match (imm a, imm b, imm c) with
      | Some (x, _), Some (y, _), Some (z, _) ->
          Some (Scalar_ops.mad ty.Ty.elt x y z, ty.Ty.elt)
      | _ -> None)
  | Ir.Cmp (op, ty, _, a, b) -> (
      match (imm a, imm b) with
      | Some (x, _), Some (y, _) ->
          Some (Scalar_ops.of_bool (Scalar_ops.cmp op ty.Ty.elt x y), Ast.Pred)
      | _ -> None)
  | Ir.Select (ty, _, c, a, b) -> (
      match (imm c, imm a, imm b) with
      | Some (cv, _), Some (x, _), Some (y, _) ->
          Some ((if Scalar_ops.to_bool cv then x else y), ty.Ty.elt)
      | _ -> None)
  | Ir.Cvt (dt, st, _, a) -> (
      match imm a with
      | Some (x, _) -> Some (Scalar_ops.cvt ~dst:dt.Ty.elt ~src:st.Ty.elt x, dt.Ty.elt)
      | None -> None)
  | Ir.Mov (ty, _, a) -> (
      match imm a with Some (x, _) -> Some (x, ty.Ty.elt) | None -> None)
  | _ -> None

let run (f : Ir.func) : stats =
  let folded = ref 0 and branches_folded = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      (* register -> known constant, invalidated on redefinition *)
      let consts : (Ir.vreg, Scalar_ops.value * Ast.dtype) Hashtbl.t = Hashtbl.create 16 in
      let subst o =
        match o with
        | Ir.R r -> (
            match Hashtbl.find_opt consts r with
            | Some (v, ty) when (Ir.reg_ty f r).Ty.width = 1 -> Ir.Imm (v, ty)
            | _ -> o)
        | Ir.Imm _ -> o
      in
      b.Ir.insts <-
        List.map
          (fun (li : Ir.li) ->
            let i = Ir.map_operands subst li.Ir.i in
            match Ir.def i with
            | None -> { li with Ir.i }
            | Some d -> (
                Hashtbl.remove consts d;
                match eval_pure i with
                | Some (v, vty) when Ir.is_pure i ->
                    let dty = Ir.reg_ty f d in
                    if dty.Ty.width = 1 then Hashtbl.replace consts d (v, vty);
                    (* an immediate move is already in folded form *)
                    (match i with
                    | Ir.Mov (_, _, Ir.Imm _) -> { li with Ir.i }
                    | _ ->
                        incr folded;
                        { li with Ir.i = Ir.Mov (dty, d, Ir.Imm (v, vty)) })
                | _ -> { li with Ir.i }))
          b.Ir.insts;
      (* Fold constant control flow. *)
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Branch (c, t, e) -> (
            match subst c with
            | Ir.Imm (v, _) ->
                incr branches_folded;
                Ir.Jump (if Scalar_ops.to_bool v then t else e)
            | c -> Ir.Branch (c, t, e))
        | Ir.Switch (v, cases, d) -> (
            match subst v with
            | Ir.Imm (x, _) ->
                incr branches_folded;
                let x = Int64.to_int (Scalar_ops.as_int Ast.S32 x) in
                Ir.Jump (match List.assoc_opt x cases with Some l -> l | None -> d)
            | v -> Ir.Switch (v, cases, d))
        | t -> t))
    (Ir.blocks f);
  { folded = !folded; branches_folded = !branches_folded }
