(** Divergence plan for a scalar kernel: entry points, entry IDs and spill
    slots, computed once on the scalar IR and shared by every warp-size
    specialization (the translation cache is queried by entry ID and warp
    size, so IDs must agree across specializations).

    Entry points (paper Algorithm 2): the kernel entry (ID 0), every
    successor of a conditional branch, and every barrier continuation.
    Spill slots are byte offsets in a thread's local memory, placed after
    its declared [.local] arrays; every register live into any entry point
    gets a slot. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty
module Builder = Vekt_ir.Builder
module Verify = Vekt_ir.Verify
module Liveness = Vekt_analysis.Liveness
module Invariance = Vekt_analysis.Invariance


module ISet = Set.Make (Int)

type t = {
  entry_ids : (string * int) list;  (** (block label, entry id); entry is 0 *)
  slots : (Ir.vreg, int) Hashtbl.t;
  spill_base : int;  (** first spill byte (after declared locals) *)
  spill_bytes : int;  (** size of the spill area *)
  live : Liveness.t;
}

let id_of_label t l = List.assoc_opt l t.entry_ids
let label_of_id t id = List.find_opt (fun (_, i) -> i = id) t.entry_ids |> Option.map fst
let slot t r = Hashtbl.find_opt t.slots r

(** Registers live into the entry-point block [l] (restored by its entry
    handler; Figure 8's per-entry statistic). *)
let entry_live t l = Liveness.live_in t.live l

let compute (f : Ir.func) ~(local_decl_bytes : int) : t =
  let live = Liveness.compute f in
  (* Collect entry points in a deterministic order: entry first, then in
     block layout order.  Reverse-accumulated with a membership set so a
     function with many entry points stays linear (appending with [@]
     per label is quadratic). *)
  let seen = Hashtbl.create 16 in
  let rev_entry_labels = ref [ f.Ir.entry ] in
  Hashtbl.replace seen f.Ir.entry ();
  let add l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      rev_entry_labels := l :: !rev_entry_labels
    end
  in
  List.iter
    (fun b ->
      match b.Ir.term with
      | Ir.Branch (_, t, e) ->
          add t;
          add e
      | Ir.Barrier l -> add l
      | Ir.Jump _ | Ir.Switch _ | Ir.Return -> ())
    (Ir.blocks f);
  let entry_ids = List.mapi (fun i l -> (l, i)) (List.rev !rev_entry_labels) in
  (* Slot every register live into any entry point. *)
  let slotted =
    List.fold_left
      (fun acc (l, _) -> ISet.union acc (Liveness.live_in live l))
      ISet.empty entry_ids
  in
  let slots = Hashtbl.create 32 in
  let align n a = (n + a - 1) / a * a in
  let spill_base = align local_decl_bytes 16 in
  let off = ref spill_base in
  ISet.iter
    (fun r ->
      let sz = Vekt_ptx.Ast.size_of (Ir.reg_ty f r).Ty.elt in
      off := align !off sz;
      Hashtbl.replace slots r !off;
      off := !off + sz)
    slotted;
  {
    entry_ids;
    slots;
    spill_base;
    spill_bytes = align !off 16 - spill_base;
    live;
  }

(** Thread-local bytes a thread of this kernel needs: declared locals plus
    the spill area. *)
let local_bytes t ~local_decl_bytes =
  let align n a = (n + a - 1) / a * a in
  align local_decl_bytes 16 + t.spill_bytes
