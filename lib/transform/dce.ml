(** Dead-code elimination.

    Liveness-driven: a pure instruction whose destination is dead after it
    is removed.  Run after vectorization, where it cleans up unused
    pack/unpack traffic (the paper: "a subsequent dead-code elimination
    pass removes unused instructions"). *)

module Ir = Vekt_ir.Ir
module Liveness = Vekt_analysis.Liveness
module ISet = Set.Make (Int)

(** One liveness-compute-and-sweep.  Returns the number of removed
    instructions. *)
let sweep (f : Ir.func) : int =
  let live = Liveness.compute f in
  let removed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let out = ref (Liveness.live_out live b.Ir.label) in
      List.iter (fun r -> out := ISet.add r !out) (Ir.term_uses b.Ir.term);
      (* Walk backwards, keeping instructions whose def is live or that
         have side effects. *)
      let kept =
        List.fold_left
          (fun kept (li : Ir.li) ->
            let i = li.Ir.i in
            let keep =
              (not (Ir.is_pure i))
              ||
              match Ir.def i with
              | Some d -> ISet.mem d !out
              | None -> true
            in
            if keep then begin
              (match Ir.def i with Some d -> out := ISet.remove d !out | None -> ());
              List.iter (fun r -> out := ISet.add r !out) (Ir.uses i);
              li :: kept
            end
            else begin
              incr removed;
              kept
            end)
          []
          (List.rev b.Ir.insts)
      in
      b.Ir.insts <- kept)
    (Ir.blocks f);
  !removed

(** Iterate sweeps to a fixpoint (removing one instruction can kill the
    producers of its operands). *)
let run (f : Ir.func) : int =
  let total = ref 0 in
  let rec go () =
    let n = sweep f in
    total := !total + n;
    if n > 0 then go ()
  in
  go ();
  !total
