(** Basic-block fusion (the paper's §5.1 names it among the classical
    passes the translation cache runs).

    A block ending in an unconditional jump to a block with that single
    predecessor is merged with it.  Scheduler, entry- and exit-handler
    blocks keep their boundaries so the VM's cycle attribution (Figure 9)
    stays meaningful; only [Body]-to-[Body] edges fuse, and the function
    entry is never a fusion target. *)

module Ir = Vekt_ir.Ir

let run (f : Ir.func) : int =
  let fused = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Ir.predecessors f in
    let try_fuse (b : Ir.block) =
      match b.Ir.term with
      | Ir.Jump t
        when (not (String.equal t f.Ir.entry))
             && (not (String.equal t b.Ir.label))
             && b.Ir.kind = Ir.Body ->
          let succ = Ir.block f t in
          if
            succ.Ir.kind = Ir.Body
            && (match Hashtbl.find_opt preds t with Some [ p ] -> p = b.Ir.label | _ -> false)
          then begin
            b.Ir.insts <- b.Ir.insts @ succ.Ir.insts;
            b.Ir.term <- succ.Ir.term;
            Hashtbl.remove f.Ir.btab t;
            f.Ir.order <- List.filter (fun l -> not (String.equal l t)) f.Ir.order;
            incr fused;
            continue_ := true;
            true
          end
          else false
      | _ -> false
    in
    (* Restart the scan after each fusion: the predecessor map is stale. *)
    ignore (List.exists try_fuse (Ir.blocks f))
  done;
  !fused
