(** Greedy delta-debugging of a failing fuzz kernel down to a minimal
    reproducer (DESIGN.md §3.9).

    The shrinker works on the parsed kernel body: it deletes chunks of
    statements (halving the chunk size as progress stalls), keeps a
    candidate only if it still typechecks {e and} still fails the
    caller's predicate, and finishes by dropping register declarations
    the surviving body no longer mentions.  Typechecking candidates
    before running them discards dangling branch targets and
    use-before-decl garbage cheaply; the predicate (usually "the
    differential harness still reports a divergence") does the expensive
    confirmation.  Every accepted candidate is a well-typed kernel, so
    the final artifact can be committed to [test/corpus/] as-is. *)

module A = Vekt_ptx.Ast
module Printer = Vekt_ptx.Printer
module Typecheck = Vekt_ptx.Typecheck
module Parser = Vekt_ptx.Parser

(* Cap on predicate evaluations: each one replays the whole config
   matrix, so a pathological shrink must not dominate the campaign. *)
let max_evals = 250

let rebuild (spec : Gen.t) (m : A.modul) (k : A.kernel) body regs : Gen.t =
  let k = { k with A.k_body = body; k_regs = regs } in
  let m = { m with A.m_kernels = [ k ] } in
  { spec with
    src = Gen.header ~grid:spec.grid ~block:spec.block ^ Printer.to_string m }

let used_reg_names body =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | A.Label _ -> ()
      | A.Inst (g, i, _) ->
          List.iter (fun r -> Hashtbl.replace tbl r ()) (A.used_regs g i);
          Option.iter (fun r -> Hashtbl.replace tbl r ()) (A.defined_reg i))
    body;
  tbl

(* remove [len] elements starting at [at] *)
let cut l ~at ~len =
  List.filteri (fun i _ -> i < at || i >= at + len) l

let minimize ~(still_fails : Gen.t -> bool) (spec : Gen.t) : Gen.t =
  match Parser.parse_module spec.src with
  | exception _ -> spec
  | m -> (
      match A.find_kernel m spec.kernel with
      | None -> spec
      | Some k ->
          let evals = ref 0 in
          let ok (cand : Gen.t) =
            incr evals;
            !evals <= max_evals && still_fails cand
          in
          let try_candidate body regs =
            let cand = rebuild spec m k body regs in
            match Parser.parse_module cand.src with
            | exception _ -> None
            | m' -> if Typecheck.check_module m' = [] && ok cand then Some cand else None
          in
          let body = ref k.A.k_body and regs = ref k.A.k_regs in
          let best = ref spec in
          let chunk = ref (max 1 (List.length !body / 2)) in
          while !chunk >= 1 && !evals < max_evals do
            let shrunk_this_pass = ref false in
            let i = ref 0 in
            while !i + !chunk <= List.length !body && !evals < max_evals do
              match try_candidate (cut !body ~at:!i ~len:!chunk) !regs with
              | Some cand ->
                  body := cut !body ~at:!i ~len:!chunk;
                  best := cand;
                  shrunk_this_pass := true
                  (* don't advance: the next chunk slid into place *)
              | None -> i := !i + !chunk
            done;
            if not !shrunk_this_pass then chunk := !chunk / 2
          done;
          (* drop register declarations the body no longer touches *)
          let used = used_reg_names !body in
          let live = List.filter (fun (r, _) -> Hashtbl.mem used r) !regs in
          (match try_candidate !body live with
          | Some cand -> best := cand
          | None -> ());
          !best)
