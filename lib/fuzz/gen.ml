(** Seeded generator of well-typed PTX kernels for differential fuzzing
    (DESIGN.md §3.9).

    Every generated kernel satisfies two invariants by construction:

    - {b well-typed}: the kernel passes {!Vekt_ptx.Typecheck} (asserted
      after generation — a type error here is a generator bug, not a
      finding), so the differential harness spends its budget on the
      middle-end and backend rather than on frontend rejections;

    - {b schedule-deterministic}: the final memory image is a function of
      the launch alone, never of warp width, warp-formation policy,
      worker count or checkpoint placement.  Concretely:
      - every global store site writes its own 64-cell region of the
        output buffer at a thread-unique index (the linear thread id, or
        the id XOR a constant — a bijection), so no two threads ever
        write the same cell and cross-thread store order cannot matter;
      - atomics go to a dedicated accumulator buffer, use commutative
        ops only ([add]/[min]/[max]), and their (order-dependent) old
        value is returned into a sink register that is never read;
      - barriers appear only on reconvergent paths: at top level or in
        loops with a CTA-uniform trip count, never under divergent
        control flow, and never in kernels with an early thread exit;
      - shared-memory shuffles bracket the store→load exchange with two
        barriers (the second closes the read phase against the next
        section's writes);
      - [%laneid] and [%warpsize] are never read (their values
        legitimately differ across the configuration matrix);
      - operations with undefined or machine-dependent results are
        avoided or made total by {!Vekt_ptx.Scalar_ops} (division by
        zero, oversized shifts), and loops bound their trip counts.

    Generation is driven by a splittable [Random.State] seeded from a
    single integer, so a seed fully reproduces a kernel.  A small
    fraction of seeds instead yields a {e frontier probe}: a fixed
    template exercising a real-PTX construct just outside the supported
    subset.  Probes feed the [Unsupported]-tally worklist; when a gap
    closes, the probe starts executing and is differentially checked
    like any other kernel. *)

module A = Vekt_ptx.Ast
module Printer = Vekt_ptx.Printer
module Typecheck = Vekt_ptx.Typecheck

type t = {
  seed : int;
  src : string;  (** PTX text, starting with the [// vekt-fuzz] header *)
  kernel : string;
  grid : int;  (** CTAs along x *)
  block : int;  (** threads per CTA along x *)
}

let kernel_name = "fz"

(* Buffer protocol shared with the runner: every kernel takes
   (out, in, acc, n).  The output buffer is partitioned into [out_sites]
   disjoint 64-cell regions, one per static store site. *)
let out_sites = 8
let out_region_cells = 64
let out_bytes = out_sites * out_region_cells * 4
let in_cells = 64
let in_bytes = in_cells * 4
let acc_cells = 16
let acc_bytes = acc_cells * 4

let header ~grid ~block = Fmt.str "// vekt-fuzz grid=%d block=%d\n" grid block

let parse_header src =
  try Scanf.sscanf src "// vekt-fuzz grid=%d block=%d" (fun g b -> Some (g, b))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(** Wrap existing PTX text (e.g. a corpus file) as a runnable spec,
    taking grid/block from the [// vekt-fuzz] header when present. *)
let spec_of_src ?(seed = -1) src =
  let grid, block = Option.value (parse_header src) ~default:(1, 8) in
  { seed; src; kernel = kernel_name; grid; block }

(* ------------------------------------------------------------------ *)
(* Generator state                                                     *)

type st = {
  rng : Random.State.t;
  mutable body : A.stmt list;  (* reversed *)
  mutable extra_regs : (string * A.dtype) list;  (* reversed *)
  mutable labels : int;
  mutable scratch : int;
  mutable sites : int;  (* store-site regions handed out (0..out_sites-2) *)
  blockdim : int;
  nthr : int;
  barrier_ok : bool;
}

let emitg st g i = st.body <- A.Inst (g, i, 0) :: st.body
let emit st i = emitg st A.Always i

let emit_label st l = st.body <- A.Label l :: st.body

let fresh_label st =
  let n = st.labels in
  st.labels <- n + 1;
  Fmt.str "L%d" n

let fresh st ty =
  let n = st.scratch in
  st.scratch <- n + 1;
  let r = Fmt.str "%%x%d" n in
  st.extra_regs <- (r, ty) :: st.extra_regs;
  r

let rint st n = Random.State.int st.rng n
let pick st l = List.nth l (rint st (List.length l))
let chance st pct = rint st 100 < pct

(* Register pools: the random instruction mix reads and writes these.
   Prologue/address/loop registers live outside the pools so sections
   cannot clobber loop counters or base pointers. *)
let pool_u32 = [ "%r0"; "%r1"; "%r2"; "%r3" ]
let pool_s32 = [ "%s0"; "%s1"; "%s2" ]
let pool_u64 = [ "%w0"; "%w1" ]
let pool_f32 = [ "%f0"; "%f1"; "%f2" ]
let pool_f64 = [ "%d0"; "%d1" ]
let pool_pred = [ "%q0"; "%q1"; "%q2" ]

let pool_of = function
  | A.U32 | A.B32 -> pool_u32
  | A.S32 -> pool_s32
  | A.U64 | A.S64 | A.B64 -> pool_u64
  | A.F32 -> pool_f32
  | A.F64 -> pool_f64
  | A.Pred -> pool_pred
  | _ -> pool_u32

let imm_for st (ty : A.dtype) : A.operand =
  match ty with
  | A.F32 | A.F64 ->
      (* quarter-steps in [-4, 28): exact in both f32 and f64 *)
      A.Imm_float ((float_of_int (rint st 128) /. 4.0) -. 4.0)
  | _ -> A.Imm_int (Int64.of_int (rint st 128 - 16))

let operand st ty =
  if chance st 75 then A.Reg (pick st (pool_of ty)) else imm_for st ty

(* Shift amounts are U32 and may exceed the value width (total semantics:
   oversized shifts yield 0 / sign). *)
let shift_amount st =
  if chance st 60 then A.Imm_int (Int64.of_int (rint st 40))
  else A.Reg (pick st pool_u32)

let maybe_guard st i =
  (* guards only on pure register ops; the caller guarantees purity *)
  if chance st 15 then
    let p = pick st pool_pred in
    emitg st (if chance st 50 then A.If p else A.Ifnot p) i
  else emit st i

(* ------------------------------------------------------------------ *)
(* Random pure instructions                                            *)

let int32_ops =
  [ A.Add; A.Sub; A.Mul_lo; A.Mul_hi; A.Div; A.Rem; A.Min; A.Max; A.And;
    A.Or; A.Xor; A.Shl; A.Shr ]

(* no Mul_hi / Mul_wide at 64 bits (Scalar_ops rejects them) *)
let int64_ops =
  [ A.Add; A.Sub; A.Mul_lo; A.Div; A.Rem; A.Min; A.Max; A.And; A.Or; A.Xor;
    A.Shl; A.Shr ]

let float_ops = [ A.Add; A.Sub; A.Mul_lo; A.Div; A.Min; A.Max ]

(* integer↔integer and integer↔float conversion pairs over pool types *)
let cvt_pairs =
  [ (A.U32, A.S32); (A.S32, A.U32); (A.U64, A.U32); (A.U64, A.S32);
    (A.U32, A.U64); (A.F32, A.U32); (A.F32, A.S32); (A.S32, A.F32);
    (A.U32, A.F32); (A.F64, A.F32); (A.F32, A.F64); (A.F64, A.S32);
    (A.S32, A.F64) ]

let rand_pure st =
  match rint st 100 with
  | n when n < 26 ->
      let ty = pick st [ A.U32; A.S32 ] in
      let op = pick st int32_ops in
      let b =
        if op = A.Shl || op = A.Shr then shift_amount st else operand st ty
      in
      maybe_guard st (A.Binary (op, ty, pick st (pool_of ty), operand st ty, b))
  | n when n < 34 ->
      let op = pick st int64_ops in
      let b =
        if op = A.Shl || op = A.Shr then shift_amount st else operand st A.U64
      in
      maybe_guard st
        (A.Binary (op, A.U64, pick st pool_u64, operand st A.U64, b))
  | n when n < 40 ->
      (* mul.wide: 32-bit sources, 64-bit destination *)
      let sty = pick st [ A.U32; A.S32 ] in
      maybe_guard st
        (A.Binary (A.Mul_wide, sty, pick st pool_u64, operand st sty, operand st sty))
  | n when n < 54 ->
      let ty = pick st [ A.F32; A.F64 ] in
      maybe_guard st
        (A.Binary
           (pick st float_ops, ty, pick st (pool_of ty), operand st ty, operand st ty))
  | n when n < 62 ->
      if chance st 60 then
        let ty = pick st [ A.F32; A.F64 ] in
        let op =
          pick st [ A.Neg; A.Abs; A.Sqrt; A.Rsqrt; A.Rcp; A.Sin; A.Cos; A.Ex2; A.Lg2 ]
        in
        maybe_guard st (A.Unary (op, ty, pick st (pool_of ty), operand st ty))
      else
        let ty = pick st [ A.U32; A.S32; A.U64 ] in
        maybe_guard st
          (A.Unary (pick st [ A.Neg; A.Not; A.Abs ], ty, pick st (pool_of ty), operand st ty))
  | n when n < 69 ->
      let ty = pick st [ A.U32; A.S32; A.F32; A.F64 ] in
      maybe_guard st
        (A.Mad (ty, pick st (pool_of ty), operand st ty, operand st ty, operand st ty))
  | n when n < 78 ->
      let ty = pick st [ A.U32; A.S32; A.U64; A.F32; A.F64 ] in
      maybe_guard st
        (A.Setp
           ( pick st [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ],
             ty, pick st pool_pred, operand st ty, operand st ty ))
  | n when n < 84 ->
      let ty = pick st [ A.U32; A.S32; A.F32 ] in
      maybe_guard st
        (A.Selp
           (ty, pick st (pool_of ty), operand st ty, operand st ty, pick st pool_pred))
  | n when n < 92 ->
      let dty, sty = pick st cvt_pairs in
      maybe_guard st
        (A.Cvt (dty, sty, pick st (pool_of dty), A.Reg (pick st (pool_of sty))))
  | n when n < 97 ->
      if chance st 70 then
        maybe_guard st
          (A.Binary
             ( pick st [ A.And; A.Or; A.Xor ],
               A.Pred, pick st pool_pred,
               A.Reg (pick st pool_pred), A.Reg (pick st pool_pred) ))
      else
        maybe_guard st
          (A.Unary (A.Not, A.Pred, pick st pool_pred, A.Reg (pick st pool_pred)))
  | _ ->
      let ty = pick st [ A.U32; A.S32; A.F32 ] in
      maybe_guard st (A.Mov (ty, pick st (pool_of ty), operand st ty))

let arith_run st = for _ = 1 to 2 + rint st 5 do rand_pure st done

(* ------------------------------------------------------------------ *)
(* Addressing: base + 4*idx through one of three idioms, exercising the
   affine analysis (cvt+shl, the widened-shift transfer), mul.wide, and
   plain 64-bit multiply. *)

let addr_calc st ~base ~idx =
  let a = fresh st A.U64 in
  (match rint st 3 with
  | 0 ->
      emit st (A.Cvt (A.U64, A.U32, a, A.Reg idx));
      emit st (A.Binary (A.Shl, A.B64, a, A.Reg a, A.Imm_int 2L))
  | 1 -> emit st (A.Binary (A.Mul_wide, A.U32, a, A.Reg idx, A.Imm_int 4L))
  | _ ->
      emit st (A.Cvt (A.U64, A.U32, a, A.Reg idx));
      emit st (A.Binary (A.Mul_lo, A.U64, a, A.Reg a, A.Imm_int 4L)));
  emit st (A.Binary (A.Add, A.U64, a, A.Reg base, A.Reg a));
  a

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)

let load_global st =
  let idx = fresh st A.U32 in
  if chance st 50 then emit st (A.Mov (A.U32, idx, A.Reg "%gid"))
  else
    emit st
      (A.Binary
         (A.And, A.U32, idx, A.Reg (pick st pool_u32),
          A.Imm_int (Int64.of_int (in_cells - 1))));
  let a = addr_calc st ~base:"%pi" ~idx in
  let addr = { A.base = A.Areg a; offset = 0 } in
  if chance st 33 then emit st (A.Ld (A.Global, A.F32, pick st pool_f32, addr))
  else
    let ty = pick st [ A.U32; A.S32 ] in
    emit st (A.Ld (A.Global, ty, pick st (pool_of ty), addr))

(* A store site owns region [site]: cells are written at a thread-unique
   index so the image is schedule-independent. *)
let store_global st =
  if st.sites >= out_sites - 2 then arith_run st
  else begin
    let site = st.sites in
    st.sites <- site + 1;
    let idx = fresh st A.U32 in
    if chance st 55 then emit st (A.Mov (A.U32, idx, A.Reg "%gid"))
    else
      (* gid XOR c is a bijection on [0, 64): still thread-unique *)
      emit st
        (A.Binary
           (A.Xor, A.U32, idx, A.Reg "%gid", A.Imm_int (Int64.of_int (1 + rint st 63))));
    let a = addr_calc st ~base:"%po" ~idx in
    let addr = { A.base = A.Areg a; offset = site * out_region_cells * 4 } in
    match rint st 5 with
    | 0 ->
        (* immediate store: the Vstore-splat path under affine coalescing *)
        let ty = pick st [ A.U32; A.S32 ] in
        emit st (A.St (A.Global, ty, addr, imm_for st ty))
    | 1 -> emit st (A.St (A.Global, A.F32, addr, A.Reg (pick st pool_f32)))
    | _ ->
        let ty = pick st [ A.U32; A.S32 ] in
        emit st (A.St (A.Global, ty, addr, A.Reg (pick st (pool_of ty))))
  end

let atomics st =
  if chance st 70 then begin
    (* global accumulator: commutative op, sink destination *)
    let idx = fresh st A.U32 in
    emit st
      (A.Binary
         (A.And, A.U32, idx, A.Reg (pick st pool_u32),
          A.Imm_int (Int64.of_int (acc_cells - 1))));
    let a = addr_calc st ~base:"%pa" ~idx in
    let op = pick st [ A.Atom_add; A.Atom_min; A.Atom_max ] in
    let ty = pick st [ A.U32; A.S32 ] in
    emit st
      (A.Atom (A.Global, op, ty, "%sk", { A.base = A.Areg a; offset = 0 },
               operand st ty, None))
  end
  else begin
    (* shared accumulator: result observable only through codegen crashes
       (shared memory dies with the CTA), still worth the coverage *)
    let off = fresh st A.U32 in
    emit st
      (A.Binary (A.And, A.U32, off, A.Reg (pick st pool_u32), A.Imm_int 7L));
    emit st (A.Binary (A.Shl, A.B32, off, A.Reg off, A.Imm_int 2L));
    let b = fresh st A.U32 in
    emit st (A.Mov (A.U32, b, A.Var "sacc"));
    emit st (A.Binary (A.Add, A.U32, off, A.Reg off, A.Reg b));
    emit st
      (A.Atom (A.Shared, A.Atom_add, A.U32, "%sk",
               { A.base = A.Areg off; offset = 0 }, operand st A.U32, None))
  end

(* store→barrier→load→barrier shuffle through shared memory; only legal
   on reconvergent paths *)
let shuffle st =
  let a1 = fresh st A.U32 in
  emit st (A.Binary (A.Shl, A.B32, a1, A.Reg "%ti", A.Imm_int 2L));
  let b = fresh st A.U32 in
  emit st (A.Mov (A.U32, b, A.Var "smem"));
  emit st (A.Binary (A.Add, A.U32, a1, A.Reg a1, A.Reg b));
  emit st
    (A.St (A.Shared, A.U32, { A.base = A.Areg a1; offset = 0 },
           A.Reg (pick st pool_u32)));
  emit st A.Bar;
  let d = 1 + rint st (st.blockdim - 1) in
  let a2 = fresh st A.U32 in
  emit st (A.Binary (A.Add, A.U32, a2, A.Reg "%ti", A.Imm_int (Int64.of_int d)));
  emit st
    (A.Binary (A.And, A.U32, a2, A.Reg a2, A.Imm_int (Int64.of_int (st.blockdim - 1))));
  emit st (A.Binary (A.Shl, A.B32, a2, A.Reg a2, A.Imm_int 2L));
  emit st (A.Binary (A.Add, A.U32, a2, A.Reg a2, A.Reg b));
  emit st
    (A.Ld (A.Shared, A.U32, pick st pool_u32, { A.base = A.Areg a2; offset = 0 }));
  emit st A.Bar

(* Divergence condition into a fresh predicate (pool preds could be
   clobbered by the body before the reconvergence branch reads them). *)
let div_cond st p =
  match rint st 4 with
  | 0 ->
      emit st
        (A.Setp
           ( pick st [ A.Lt; A.Ge; A.Eq; A.Ne ],
             A.U32, p, A.Reg "%ti", A.Imm_int (Int64.of_int (rint st st.blockdim)) ))
  | 1 ->
      let x = fresh st A.U32 in
      emit st
        (A.Binary (A.And, A.U32, x, A.Reg "%gid", A.Imm_int (Int64.of_int (1 + rint st 7))));
      emit st (A.Setp (A.Eq, A.U32, p, A.Reg x, A.Imm_int 0L))
  | 2 ->
      (* data-dependent: pool values derive from deterministic inputs *)
      emit st
        (A.Setp
           ( pick st [ A.Lt; A.Gt ],
             A.S32, p, A.Reg (pick st pool_s32), operand st A.S32 ))
  | _ ->
      (* uniform condition: a branch both sides of which reconverge *)
      emit st
        (A.Setp (A.Le, A.U32, p, A.Reg "%nv", A.Imm_int (Int64.of_int (rint st 64))))

let rec section st ~depth ~divergent =
  let stores_ok = st.sites < out_sites - 2 in
  let weighted =
    [ (4, `Arith); (2, `Load); (1, `Atom) ]
    @ (if depth < 3 then [ (3, `If) ] else [])
    @ (if stores_ok then [ (3, `Store) ] else [])
    @ (if depth < 2 then [ (2, `Loop_div) ] else [])
    @
    if (not divergent) && st.barrier_ok then
      [ (2, `Shuffle); (2, `Loop_uni); (1, `Bar) ]
    else []
  in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weighted in
  let rec choose n = function
    | (w, x) :: tl -> if n < w then x else choose (n - w) tl
    | [] -> `Arith
  in
  match choose (rint st total) weighted with
  | `Arith -> arith_run st
  | `Load -> load_global st
  | `Store -> store_global st
  | `Atom -> atomics st
  | `Shuffle -> shuffle st
  | `Bar -> emit st A.Bar
  | `If -> if_div st ~depth ~divergent
  | `Loop_uni -> loop_uniform st ~depth
  | `Loop_div -> loop_divergent st ~depth

and body_run st ~depth ~divergent n =
  for _ = 1 to n do
    section st ~depth ~divergent
  done

and if_div st ~depth ~divergent:_ =
  let p = fresh st A.Pred in
  div_cond st p;
  let lelse = fresh_label st and lend = fresh_label st in
  emitg st (A.Ifnot p) (A.Bra lelse);
  body_run st ~depth:(depth + 1) ~divergent:true (1 + rint st 2);
  emit st (A.Bra lend);
  emit_label st lelse;
  body_run st ~depth:(depth + 1) ~divergent:true (rint st 2);
  emit_label st lend

and loop_uniform st ~depth =
  (* constant trip count: every thread of the CTA iterates identically,
     so the body may contain barriers *)
  let c = fresh st A.U32 and p = fresh st A.Pred in
  let trip = 2 + rint st 3 in
  emit st (A.Mov (A.U32, c, A.Imm_int 0L));
  let top = fresh_label st in
  emit_label st top;
  body_run st ~depth:(depth + 1) ~divergent:false (1 + rint st 2);
  emit st (A.Binary (A.Add, A.U32, c, A.Reg c, A.Imm_int 1L));
  emit st (A.Setp (A.Lt, A.U32, p, A.Reg c, A.Imm_int (Int64.of_int trip)));
  emitg st (A.If p) (A.Bra top)

and loop_divergent st ~depth =
  (* trip = (tid & 3) + 1: threads exit the loop at different times *)
  let t = fresh st A.U32 and c = fresh st A.U32 and p = fresh st A.Pred in
  emit st (A.Binary (A.And, A.U32, t, A.Reg "%ti", A.Imm_int 3L));
  emit st (A.Binary (A.Add, A.U32, t, A.Reg t, A.Imm_int 1L));
  emit st (A.Mov (A.U32, c, A.Imm_int 0L));
  let top = fresh_label st in
  emit_label st top;
  body_run st ~depth:(depth + 1) ~divergent:true (1 + rint st 2);
  emit st (A.Binary (A.Add, A.U32, c, A.Reg c, A.Imm_int 1L));
  emit st (A.Setp (A.Lt, A.U32, p, A.Reg c, A.Reg t));
  emitg st (A.If p) (A.Bra top)

(* ------------------------------------------------------------------ *)
(* Kernel assembly                                                     *)

let base_regs =
  [ ("%ti", A.U32); ("%bs", A.U32); ("%cb", A.U32); ("%gid", A.U32);
    ("%nv", A.U32); ("%po", A.U64); ("%pi", A.U64); ("%pa", A.U64);
    ("%r0", A.U32); ("%r1", A.U32); ("%r2", A.U32); ("%r3", A.U32);
    ("%s0", A.S32); ("%s1", A.S32); ("%s2", A.S32);
    ("%w0", A.U64); ("%w1", A.U64);
    ("%f0", A.F32); ("%f1", A.F32); ("%f2", A.F32);
    ("%d0", A.F64); ("%d1", A.F64);
    ("%q0", A.Pred); ("%q1", A.Pred); ("%q2", A.Pred);
    ("%qx", A.Pred); ("%sk", A.U32) ]

let params =
  [ { A.p_name = "pout"; p_ty = A.U64 }; { A.p_name = "pin"; p_ty = A.U64 };
    { A.p_name = "pacc"; p_ty = A.U64 }; { A.p_name = "n"; p_ty = A.U32 } ]

let prologue st =
  emit st (A.Mov (A.U32, "%ti", A.Special (A.Tid A.X)));
  emit st (A.Mov (A.U32, "%bs", A.Special (A.Ntid A.X)));
  emit st (A.Mov (A.U32, "%cb", A.Special (A.Ctaid A.X)));
  emit st (A.Mad (A.U32, "%gid", A.Reg "%cb", A.Reg "%bs", A.Reg "%ti"));
  emit st (A.Ld (A.Param, A.U64, "%po", { A.base = A.Avar "pout"; offset = 0 }));
  emit st (A.Ld (A.Param, A.U64, "%pi", { A.base = A.Avar "pin"; offset = 0 }));
  emit st (A.Ld (A.Param, A.U64, "%pa", { A.base = A.Avar "pacc"; offset = 0 }));
  emit st (A.Ld (A.Param, A.U32, "%nv", { A.base = A.Avar "n"; offset = 0 }));
  (* seed the pools with thread-varying, loaded, and constant values *)
  emit st (A.Mov (A.U32, "%r0", A.Reg "%gid"));
  emit st (A.Mov (A.U32, "%r1", A.Reg "%ti"));
  emit st (A.Mov (A.U32, "%r2", imm_for st A.U32));
  let i0 = fresh st A.U32 in
  emit st (A.Mov (A.U32, i0, A.Reg "%gid"));
  let a0 = addr_calc st ~base:"%pi" ~idx:i0 in
  emit st (A.Ld (A.Global, A.U32, "%r3", { A.base = A.Areg a0; offset = 0 }));
  emit st (A.Cvt (A.S32, A.U32, "%s0", A.Reg "%gid"));
  emit st (A.Mov (A.S32, "%s1", imm_for st A.S32));
  emit st (A.Binary (A.Sub, A.S32, "%s2", A.Reg "%ti", imm_for st A.S32));
  emit st (A.Cvt (A.U64, A.U32, "%w0", A.Reg "%gid"));
  emit st (A.Mov (A.U64, "%w1", imm_for st A.U64));
  (* offset stays inside the input buffer for every gid (4*47 + 64 < 256);
     straying past it would read the atomics accumulator mid-update *)
  emit st (A.Ld (A.Global, A.F32, "%f0", { A.base = A.Areg a0; offset = 64 }));
  emit st (A.Mov (A.F32, "%f1", imm_for st A.F32));
  emit st (A.Cvt (A.F32, A.U32, "%f2", A.Reg "%ti"));
  emit st (A.Cvt (A.F64, A.F32, "%d0", A.Reg "%f1"));
  emit st (A.Mov (A.F64, "%d1", imm_for st A.F64));
  emit st
    (A.Setp (A.Lt, A.U32, "%q0", A.Reg "%ti",
             A.Imm_int (Int64.of_int (st.blockdim / 2))));
  let x = fresh st A.U32 in
  emit st (A.Binary (A.And, A.U32, x, A.Reg "%gid", A.Imm_int 1L));
  emit st (A.Setp (A.Eq, A.U32, "%q1", A.Reg x, A.Imm_int 0L));
  emit st (A.Setp (A.Gt, A.S32, "%q2", A.Reg "%s1", A.Imm_int 0L));
  emit st (A.Mov (A.U32, "%sk", A.Imm_int 0L))

(* final observable stores: fold every pool into the last two regions so
   generated values cannot silently vanish *)
let epilogue st ~early_exit =
  let f = fresh st A.U32 in
  emit st (A.Binary (A.Xor, A.U32, f, A.Reg "%r0", A.Reg "%r1"));
  emit st (A.Binary (A.Add, A.U32, f, A.Reg f, A.Reg "%r2"));
  emit st (A.Binary (A.Xor, A.U32, f, A.Reg f, A.Reg "%r3"));
  emit st (A.Binary (A.Add, A.U32, f, A.Reg f, A.Reg "%s0"));
  emit st (A.Binary (A.Xor, A.U32, f, A.Reg f, A.Reg "%s2"));
  let wl = fresh st A.U32 in
  emit st (A.Cvt (A.U32, A.U64, wl, A.Reg "%w0"));
  emit st (A.Binary (A.Add, A.U32, f, A.Reg f, A.Reg wl));
  let fi = fresh st A.S32 in
  emit st (A.Cvt (A.S32, A.F32, fi, A.Reg "%f1"));
  emit st (A.Binary (A.Add, A.U32, f, A.Reg f, A.Reg fi));
  let dl = fresh st A.F32 in
  emit st (A.Cvt (A.F32, A.F64, dl, A.Reg "%d0"));
  let di = fresh st A.S32 in
  emit st (A.Cvt (A.S32, A.F32, di, A.Reg dl));
  emit st (A.Binary (A.Xor, A.U32, f, A.Reg f, A.Reg di));
  let idx = fresh st A.U32 in
  emit st (A.Mov (A.U32, idx, A.Reg "%gid"));
  let a = addr_calc st ~base:"%po" ~idx in
  emit st
    (A.St (A.Global, A.U32,
           { A.base = A.Areg a; offset = (out_sites - 2) * out_region_cells * 4 },
           A.Reg f));
  let idx2 = fresh st A.U32 in
  emit st (A.Mov (A.U32, idx2, A.Reg "%gid"));
  let a2 = addr_calc st ~base:"%po" ~idx:idx2 in
  emit st
    (A.St (A.Global, A.F32,
           { A.base = A.Areg a2; offset = (out_sites - 1) * out_region_cells * 4 },
           A.Reg (pick st pool_f32)));
  if early_exit then emit_label st "Ldone";
  emit st A.Ret

let shared_decls =
  [ { A.a_name = "smem"; a_ty = A.U32; a_elems = 16 };
    { A.a_name = "sacc"; a_ty = A.U32; a_elems = 8 } ]

let generate_kernel ~seed : t =
  let rng = Random.State.make [| seed; 0x9e3779 |] in
  let blockdim = List.nth [ 4; 8; 16 ] (Random.State.int rng 3) in
  let grid = 1 + Random.State.int rng 3 in
  let nthr = grid * blockdim in
  (* three kernels in four keep full occupancy and may use barriers; the
     fourth exits part of the grid early and must stay barrier-free
     (exited threads do not participate in bar.sync) *)
  let barrier_ok = Random.State.int rng 4 < 3 in
  let st =
    { rng; body = []; extra_regs = []; labels = 0; scratch = 0; sites = 0;
      blockdim; nthr; barrier_ok }
  in
  prologue st;
  let early_exit = not barrier_ok in
  if early_exit then begin
    let cut = nthr - 1 - rint st (nthr / 2) in
    emit st
      (A.Setp (A.Ge, A.U32, "%qx", A.Reg "%gid", A.Imm_int (Int64.of_int cut)));
    emitg st (A.If "%qx") (A.Bra "Ldone")
  end;
  body_run st ~depth:0 ~divergent:false (3 + rint st 5);
  epilogue st ~early_exit;
  let k =
    { A.k_name = kernel_name; k_params = params;
      k_regs = base_regs @ List.rev st.extra_regs; k_shared = shared_decls;
      k_local = []; k_body = List.rev st.body }
  in
  let m = { A.m_consts = []; m_funcs = []; m_kernels = [ k ] } in
  (match Typecheck.check_module m with
  | [] -> ()
  | e :: _ ->
      invalid_arg
        (Fmt.str "fuzz generator produced an ill-typed kernel (seed %d): %a"
           seed Typecheck.pp_error e));
  { seed; src = header ~grid ~block:blockdim ^ Printer.to_string m;
    kernel = kernel_name; grid; block = blockdim }

(* ------------------------------------------------------------------ *)
(* Frontier probes: fixed kernels poking constructs at or beyond the
   edge of the subset.  Unsupported ones feed the tally; supported ones
   (e.g. cvt.rzi, ld.global.nc, mul.wide) run and are cross-checked. *)

let probe_body body regs =
  Fmt.str
    ".entry %s (.param .u64 pout, .param .u64 pin, .param .u64 pacc, .param .u32 n)\n\
     {\n\
     \t.reg .u32 %%ti, %%bs, %%cb, %%gid, %%i;\n\
     \t.reg .u64 %%po, %%pi, %%a, %%b;\n\
     %s\
     \tmov.u32 %%ti, %%tid.x;\n\
     \tmov.u32 %%bs, %%ntid.x;\n\
     \tmov.u32 %%cb, %%ctaid.x;\n\
     \tmad.lo.u32 %%gid, %%cb, %%bs, %%ti;\n\
     \tld.param.u64 %%po, [pout];\n\
     \tld.param.u64 %%pi, [pin];\n\
     \tcvt.u64.u32 %%a, %%gid;\n\
     \tshl.b64 %%a, %%a, 2;\n\
     \tadd.u64 %%b, %%pi, %%a;\n\
     \tadd.u64 %%a, %%po, %%a;\n\
     %s\
     \tret;\n\
     }\n"
    kernel_name regs body

let probes =
  [ ("cvt.rzi",
     probe_body
       "\tld.global.f32 %f0, [%b];\n\
        \tcvt.rzi.s32.f32 %r0, %f0;\n\
        \tst.global.u32 [%a], %r0;\n"
       "\t.reg .f32 %f0;\n\t.reg .u32 %r0;\n");
    ("ld.global.nc",
     probe_body
       "\tld.global.nc.u32 %r0, [%b];\n\
        \tst.global.u32 [%a], %r0;\n"
       "\t.reg .u32 %r0;\n");
    ("mul.wide.u16",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tand.b32 %r0, %r0, 1023;\n\
        \tcvt.u16.u32 %h0, %r0;\n\
        \tmul.wide.u16 %r1, %h0, %h0;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n\t.reg .u16 %h0;\n");
    ("ld.v2",
     probe_body
       "\tld.global.v2.f32 {%f0, %f1}, [%b];\n\
        \tst.global.f32 [%a], %f0;\n"
       "\t.reg .f32 %f0, %f1;\n");
    ("setp.and",
     probe_body
       "\tsetp.lt.and.u32 %p0, %gid, 8, %p1;\n\
        \t@%p0 st.global.u32 [%a], %gid;\n"
       "\t.reg .pred %p0, %p1;\n");
    ("popc",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tpopc.b32 %r1, %r0;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n");
    ("clz",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tclz.b32 %r1, %r0;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n");
    ("brev",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tbrev.b32 %r1, %r0;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n");
    ("vote.all",
     probe_body
       "\tsetp.lt.u32 %p0, %ti, 32;\n\
        \tvote.all.pred %p1, %p0;\n\
        \t@%p1 st.global.u32 [%a], %gid;\n"
       "\t.reg .pred %p0, %p1;\n");
    ("shfl.down",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tshfl.down.b32 %r1, %r0, 1, 31;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n");
    ("cvt.rni",
     probe_body
       "\tld.global.f32 %f0, [%b];\n\
        \tcvt.rni.s32.f32 %r0, %f0;\n\
        \tst.global.u32 [%a], %r0;\n"
       "\t.reg .f32 %f0;\n\t.reg .u32 %r0;\n");
    ("red.add",
     probe_body "\tred.global.add.u32 [%a], %gid;\n" "");
    ("prmt",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tprmt.b32 %r1, %r0, %r0, 30212;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n");
    ("bfind",
     probe_body
       "\tld.global.u32 %r0, [%b];\n\
        \tbfind.u32 %r1, %r0;\n\
        \tst.global.u32 [%a], %r1;\n"
       "\t.reg .u32 %r0, %r1;\n") ]

let generate ~seed : t =
  let rng = Random.State.make [| seed; 0x51f15e |] in
  if Random.State.int rng 100 < 8 then
    let tag, src = List.nth probes (Random.State.int rng (List.length probes)) in
    ignore tag;
    { seed; src = header ~grid:2 ~block:8 ^ src; kernel = kernel_name;
      grid = 2; block = 8 }
  else generate_kernel ~seed

(* ------------------------------------------------------------------ *)
(* QCheck integration                                                  *)

let qcheck_gen : t QCheck.Gen.t =
 fun rs -> generate ~seed:(Random.State.bits rs)

let arbitrary : t QCheck.arbitrary =
  QCheck.make ~print:(fun s -> s.src) qcheck_gen
