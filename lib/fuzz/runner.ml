(** Differential harness: run one fuzz kernel through the reference
    emulator (the oracle) and the full execution-configuration matrix,
    asserting bit-identical memory images and conserved integer stats
    (DESIGN.md §3.9).

    The matrix crosses warp width {1, 4, 8} × vectorization mode
    (dynamic / static-TIE) × affine coalescing (off / on) × every
    scheduler policy legal for the mode, plus a worker-pool twin
    (1 vs 4 domains must produce identical memory {e and} identical
    integer counters) and a checkpoint leg (stop after the first
    snapshot, resume from it, compare the stitched result).  All legs of
    one kernel share one {!Vekt_runtime.Engine} so the worker twin and
    the checkpoint leg reuse compiled code (the cache fingerprint
    excludes worker count and checkpointing).

    A kernel the frontend rejects is not a failure: its [Unsupported]
    construct is normalized and tallied, and the tally doubles as the
    ISA-growth worklist. *)

module A = Vekt_ptx.Ast
module Mem = Vekt_ptx.Mem
module Launch = Vekt_ptx.Launch
module Parser = Vekt_ptx.Parser
module Lexer = Vekt_ptx.Lexer
module Typecheck = Vekt_ptx.Typecheck
module Emulator = Vekt_ptx.Emulator
module Scalar_ops = Vekt_ptx.Scalar_ops
module Vectorize = Vekt_transform.Vectorize
module Api = Vekt_runtime.Api
module Engine = Vekt_runtime.Engine
module Scheduler = Vekt_runtime.Scheduler
module Checkpoint = Vekt_runtime.Checkpoint
module Stats = Vekt_runtime.Stats

type divergence = { cfg : string; what : string }

type outcome =
  | Clean of int  (** number of configurations compared against the oracle *)
  | Rejected of string  (** normalized construct tag for the tally *)
  | Diverged of divergence list

(* Instruction budget per launch / per emulated CTA: bounds runaway loops
   in shrink candidates without ever firing on a generated kernel. *)
let default_fuel = 3_000_000

(* Small device: comparing full global images per leg must stay cheap. *)
let device_bytes = 64 * 1024

(* --------------------------------------------------------------- *)
(* Tally normalization: map a construct message to a stable bucket by
   blanking register names, numbers and quoted identifiers, so "unknown
   variable %foo" and "unknown variable %bar" count as one construct. *)

let normalize msg =
  let buf = Buffer.create (String.length msg) in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '.' || c = '-'
  in
  let n = String.length msg in
  let i = ref 0 in
  while !i < n do
    let c = msg.[!i] in
    if c = '%' || (c >= '0' && c <= '9') then begin
      (* swallow the whole register name / number *)
      Buffer.add_char buf '_';
      incr i;
      while !i < n && (is_word msg.[!i] || (msg.[!i] >= '0' && msg.[!i] <= '9'))
      do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* --------------------------------------------------------------- *)
(* Launch plumbing                                                  *)

let input_word k = Int64.of_int (k * 2654435761 land 0xffffffff)

let setup (d : Api.device) =
  let o = Api.malloc d Gen.out_bytes in
  let i = Api.malloc d Gen.in_bytes in
  let a = Api.malloc d Gen.acc_bytes in
  for k = 0 to Gen.in_cells - 1 do
    Mem.store d.Api.global A.U32 (i + (4 * k)) (Scalar_ops.I (input_word k))
  done;
  [ Launch.Ptr o; Launch.Ptr i; Launch.Ptr a; Launch.I32 (Gen.in_cells) ]

(* one leg of the matrix *)
type leg = {
  cname : string;
  mode : Vectorize.mode;
  ws : int;
  affine : bool;
  sched : Scheduler.kind option;
  twin : bool;  (** also run with 4 worker domains and compare stats *)
}

let leg_name ~ws ~mode ~sched ~affine =
  Fmt.str "ws%d-%s-%s%s" ws
    (match mode with Vectorize.Dynamic -> "dyn" | Vectorize.Static_tie -> "tie")
    (match sched with None -> "def" | Some k -> Scheduler.kind_name k)
    (if affine then "-affine" else "")

let matrix : leg list =
  { cname = "scalar"; mode = Vectorize.Dynamic; ws = 1; affine = false;
    sched = None; twin = false }
  :: List.concat_map
       (fun ws ->
         List.concat_map
           (fun affine ->
             [ { cname = leg_name ~ws ~mode:Vectorize.Dynamic
                   ~sched:(Some Scheduler.Dynamic) ~affine;
                 mode = Vectorize.Dynamic; ws; affine;
                 sched = Some Scheduler.Dynamic; twin = not affine };
               { cname = leg_name ~ws ~mode:Vectorize.Dynamic
                   ~sched:(Some Scheduler.Barrier_aware) ~affine;
                 mode = Vectorize.Dynamic; ws; affine;
                 sched = Some Scheduler.Barrier_aware; twin = false };
               { cname = leg_name ~ws ~mode:Vectorize.Dynamic
                   ~sched:(Some Scheduler.Static) ~affine;
                 mode = Vectorize.Dynamic; ws; affine;
                 sched = Some Scheduler.Static; twin = false };
               (* TIE requires consecutive (static) warp formation *)
               { cname = leg_name ~ws ~mode:Vectorize.Static_tie
                   ~sched:(Some Scheduler.Static) ~affine;
                 mode = Vectorize.Static_tie; ws; affine;
                 sched = Some Scheduler.Static; twin = affine } ])
           [ false; true ])
       [ 4; 8 ]

let config_of_leg (leg : leg) : Api.config =
  { Api.default_config with
    mode = leg.mode;
    widths = List.filter (fun w -> w <= leg.ws) [ 8; 4; 1 ];
    affine = leg.affine;
    sched = leg.sched;
    workers = Some 1;
    verify = true }

let int_counters (s : Stats.t) =
  [ ("dyn_instrs", s.counters.dyn_instrs);
    ("blocks_executed", s.counters.blocks_executed);
    ("kernel_calls", s.counters.kernel_calls);
    ("restores", s.counters.restores);
    ("spills", s.counters.spills);
    ("flops", s.counters.flops);
    ("barrier_releases", s.barrier_releases);
    ("threads_launched", s.threads_launched) ]

let error_tag = function
  | Vekt_error.Error e -> Fmt.str "%a" Vekt_error.pp e
  | Scalar_ops.Unsupported s -> "scalar-ops: " ^ s
  | e -> Printexc.to_string e

let run_spec ?(fuel = default_fuel) (spec : Gen.t) : outcome =
  match Parser.parse_module spec.src with
  | exception Parser.Error (m, _) -> Rejected ("parse: " ^ normalize m)
  | exception Lexer.Error (m, _) -> Rejected ("lex: " ^ normalize m)
  | ast -> (
      match Typecheck.check_module ast with
      | e :: _ ->
          Rejected
            ("typecheck: " ^ normalize (Fmt.str "%a" Typecheck.pp_error e))
      | [] -> (
          let grid = Launch.dim3 spec.grid and block = Launch.dim3 spec.block in
          let engine = Engine.create ~workers:1 () in
          let fresh_device () =
            Api.create_device ~engine ~workers:1 ~global_bytes:device_bytes ()
          in
          (* oracle: serialize every thread through the reference emulator *)
          let dref = fresh_device () in
          let args = setup dref in
          match
            let global = Mem.copy dref.Api.global in
            ignore
              (Emulator.run ~fuel ast ~kernel:spec.kernel ~args ~global ~grid
                 ~block);
            global
          with
          | exception e -> Rejected ("oracle: " ^ normalize (error_tag e))
          | oracle -> (
              let divs = ref [] in
              let compared = ref 0 in
              let rejected = ref None in
              let diverge cfg what = divs := { cfg; what } :: !divs in
              let launch_leg cname config =
                let d = fresh_device () in
                let m = Api.load_module ~config d spec.src in
                let args = setup d in
                let rep =
                  Api.launch ~fuel m ~kernel:spec.kernel ~grid ~block ~args
                in
                incr compared;
                if not (Mem.equal d.Api.global oracle) then
                  diverge cname "memory image differs from the oracle";
                rep
              in
              let guarded cname f =
                match f () with
                | r -> Some r
                | exception Vekt_error.Error (Vekt_error.Compile c)
                  when c.stage = Vekt_error.Frontend ->
                    (* width-independent frontend gap: tally, not a bug *)
                    rejected := Some ("frontend: " ^ normalize c.reason);
                    None
                | exception e ->
                    diverge cname ("raised: " ^ error_tag e);
                    None
              in
              let baseline = ref None in
              List.iter
                (fun leg ->
                  let config = config_of_leg leg in
                  match
                    guarded leg.cname (fun () -> launch_leg leg.cname config)
                  with
                  | None -> ()
                  | Some rep ->
                      (* integer stats conservation across the matrix *)
                      if rep.Api.stats.threads_launched <> Launch.count grid * Launch.count block
                      then
                        diverge leg.cname
                          (Fmt.str "threads_launched %d, expected %d"
                             rep.Api.stats.threads_launched
                             (Launch.count grid * Launch.count block));
                      (match !baseline with
                      | None ->
                          baseline :=
                            Some (leg.cname, rep.Api.stats.barrier_releases)
                      | Some (bname, releases) ->
                          if rep.Api.stats.barrier_releases <> releases then
                            diverge leg.cname
                              (Fmt.str
                                 "barrier_releases %d, but %s released %d"
                                 rep.Api.stats.barrier_releases bname releases));
                      if leg.twin then
                        ignore
                          (guarded (leg.cname ^ "-w4") (fun () ->
                               let d4 = fresh_device () in
                               let m4 =
                                 Api.load_module
                                   ~config:{ config with workers = Some 4 }
                                   d4 spec.src
                               in
                               let args4 = setup d4 in
                               let rep4 =
                                 Api.launch ~fuel m4 ~kernel:spec.kernel ~grid
                                   ~block ~args:args4
                               in
                               incr compared;
                               if not (Mem.equal d4.Api.global oracle) then
                                 diverge (leg.cname ^ "-w4")
                                   "memory image differs from the oracle";
                               List.iter2
                                 (fun (what, a) (_, b) ->
                                   if a <> b then
                                     diverge (leg.cname ^ "-w4")
                                       (Fmt.str "%s: %d with 4 workers, %d with 1"
                                          what b a))
                                 (int_counters rep.Api.stats)
                                 (int_counters rep4.Api.stats);
                               rep4)))
                matrix;
              (* checkpoint leg: force a snapshot, resume from it, and the
                 stitched run must land on the oracle image *)
              ignore
                (guarded "ckpt-resume" (fun () ->
                     let dir = Filename.concat "_fuzz" "ckpt" in
                     (try Sys.mkdir "_fuzz" 0o755 with Sys_error _ -> ());
                     (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
                     let config =
                       { (config_of_leg
                            { cname = "ckpt"; mode = Vectorize.Dynamic; ws = 4;
                              affine = false; sched = None; twin = false })
                         with checkpoint_every = 2; checkpoint_dir = dir }
                     in
                     let d = fresh_device () in
                     let m = Api.load_module ~config d spec.src in
                     let args = setup d in
                     let snapshot = ref None in
                     (match
                        Api.launch ~fuel ~checkpoint_stop:1 m ~kernel:spec.kernel
                          ~grid ~block ~args
                      with
                     | _rep -> ()  (* too short to reach a safe point *)
                     | exception Checkpoint.Stop path ->
                         snapshot := Some path;
                         ignore
                           (Api.launch ~fuel ~resume:path m ~kernel:spec.kernel
                              ~grid ~block ~args));
                     incr compared;
                     if not (Mem.equal d.Api.global oracle) then
                       diverge "ckpt-resume"
                         "memory image differs from the oracle after resume";
                     (* the resume run keeps checkpointing to completion, so
                        sweep every snapshot this kernel left behind *)
                     Array.iter
                       (fun f ->
                         if Filename.check_suffix f ".ckpt" then
                           try Sys.remove (Filename.concat dir f)
                           with Sys_error _ -> ())
                       (try Sys.readdir dir with Sys_error _ -> [||])));
              match (!divs, !rejected) with
              | [], None -> Clean !compared
              | [], Some tag -> Rejected tag
              | divs, _ -> Diverged (List.rev divs))))

(* --------------------------------------------------------------- *)
(* Campaign driver                                                  *)

type failure = {
  seed : int;
  divergences : divergence list;
  repro : Gen.t;  (** shrunk reproducer *)
}

type summary = {
  mutable generated : int;
  mutable clean : int;
  mutable rejected_n : int;
  tally : (string, int * int) Hashtbl.t;  (** construct -> count, first seed *)
  mutable failures : failure list;
  mutable elapsed_s : float;
}

let note_tally t ~seed construct =
  match Hashtbl.find_opt t construct with
  | Some (n, first) -> Hashtbl.replace t construct (n + 1, first)
  | None -> Hashtbl.replace t construct (1, seed)

let run_campaign ?(fuel = default_fuel) ?(log = fun (_ : string) -> ())
    ?budget_s ~seed ~count () : summary =
  let s =
    { generated = 0; clean = 0; rejected_n = 0; tally = Hashtbl.create 16;
      failures = []; elapsed_s = 0.0 }
  in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match budget_s with
    | None -> false
    | Some b -> Unix.gettimeofday () -. t0 > b
  in
  (try
     for i = seed to seed + count - 1 do
       if over_budget () then raise Exit;
       let spec = Gen.generate ~seed:i in
       s.generated <- s.generated + 1;
       (match run_spec ~fuel spec with
       | Clean _ -> s.clean <- s.clean + 1
       | Rejected construct ->
           s.rejected_n <- s.rejected_n + 1;
           note_tally s.tally ~seed:i construct
       | Diverged divergences ->
           log (Fmt.str "seed %d: %d divergent configuration(s), shrinking…" i
                  (List.length divergences));
           let still_fails sp =
             match run_spec ~fuel sp with Diverged _ -> true | _ -> false
           in
           let repro = Shrink.minimize ~still_fails spec in
           s.failures <- { seed = i; divergences; repro } :: s.failures);
       if (i - seed + 1) mod 25 = 0 then
         log
           (Fmt.str "%d/%d kernels: %d clean, %d rejected, %d divergent"
              (i - seed + 1) count s.clean s.rejected_n
              (List.length s.failures))
     done
   with Exit -> log "budget exhausted, stopping early");
  s.elapsed_s <- Unix.gettimeofday () -. t0;
  s.failures <- List.rev s.failures;
  s

let pp_tally ppf (t : (string, int * int) Hashtbl.t) =
  let rows = Hashtbl.fold (fun c (n, first) acc -> (c, n, first) :: acc) t [] in
  let rows = List.sort (fun (_, a, _) (_, b, _) -> compare b a) rows in
  List.iter
    (fun (c, n, first) -> Fmt.pf ppf "  %4d× %s (e.g. seed %d)@." n c first)
    rows

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "fuzz: %d kernels in %.1fs: %d clean, %d rejected, %d divergent@."
    s.generated s.elapsed_s s.clean s.rejected_n (List.length s.failures);
  if Hashtbl.length s.tally > 0 then begin
    Fmt.pf ppf "unsupported constructs (ISA-growth worklist):@.";
    pp_tally ppf s.tally
  end;
  List.iter
    (fun f ->
      Fmt.pf ppf "seed %d diverged:@." f.seed;
      List.iter
        (fun d -> Fmt.pf ppf "  [%s] %s@." d.cfg d.what)
        f.divergences)
    s.failures
