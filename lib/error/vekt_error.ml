(** Structured fault taxonomy for the whole stack.

    Every way a launch can fail — the frontend rejecting a construct, a
    specialization failing to build, a guest memory trap, a scheduling
    deadlock, fuel exhaustion, a host-side resource limit — is one
    constructor of {!t}, carrying enough context to diagnose the failure
    without re-running: kernel name, CTA, thread linear id, entry-point
    id, the guest address and space for memory traps, and the modelled
    cycle at which the fault was observed.

    This is a leaf library (depends only on [fmt]): the PTX layer, the
    VM, the transforms and the runtime all raise {!Error}, and [vektc]
    renders every failure through the one {!pp} below.  Layers attach
    the context they own — {!Vekt_ptx.Mem} knows the segment and
    address, the interpreter knows the faulting warp's threads, the
    execution manager knows the modelled cycle — so the payload is
    assembled incrementally on the way up rather than formatted into a
    string at the raise site. *)

(** Pipeline stage at which a compile-class failure occurred. *)
type compile_stage =
  | Parse
  | Lex
  | Typecheck
  | Frontend  (** PTX→IR translation (inlining, if-conversion, lowering) *)
  | Vectorize
  | Optimize
  | Verify
  | Inject  (** deterministic fault injection (testing only) *)

let stage_name = function
  | Parse -> "parse"
  | Lex -> "lex"
  | Typecheck -> "typecheck"
  | Frontend -> "frontend"
  | Vectorize -> "vectorize"
  | Optimize -> "optimize"
  | Verify -> "verify"
  | Inject -> "inject"

(** One guest memory access, as seen by the segment that faulted.
    [space] starts out equal to [segment] (the segment's name) and is
    refined at the interpreter boundary when the PTX address space of
    the access is known. *)
type access = {
  segment : string;  (** memory segment name, e.g. "global", "shared" *)
  space : string;  (** PTX address space of the access, when known *)
  addr : int;  (** guest byte address *)
  width : int;  (** access width in bytes *)
  size : int;  (** segment size in bytes ([-1] when synthesized) *)
  op : string;  (** what kind of access: load, store, typed read, … *)
}

let pp_access ppf (a : access) =
  if a.size >= 0 then
    Fmt.pf ppf "%s: %s of %d bytes at %d outside [0,%d)" a.space a.op a.width
      a.addr a.size
  else Fmt.pf ppf "%s: %s of %d bytes at %d" a.space a.op a.width a.addr

(** Per-thread state snapshot listed by deadlock diagnostics. *)
type thread_diag = {
  t_linear : int;  (** linear thread index within the CTA *)
  t_state : string;  (** scheduler state: ready / blocked / done *)
  t_entry : int;  (** entry-point id the thread is parked at *)
}

type deadlock_kind =
  | Barrier_starvation
      (** the policy found no runnable thread and no thread was parked
          at the barrier, yet threads remain live *)
  | Livelock
      (** the progress watchdog saw a thread re-dispatched at the same
          entry point with no resume-point progress for N calls *)

let deadlock_kind_name = function
  | Barrier_starvation -> "barrier-starvation"
  | Livelock -> "livelock"

type t =
  | Compile of {
      kernel : string;
      ws : int option;  (** warp size being specialized, when applicable *)
      tier : int option;
      stage : compile_stage;
      line : int option;  (** source line for parse/lex/typecheck stages *)
      reason : string;
    }
  | Trap of {
      kernel : string;
      cta : (int * int * int) option;
      tid : int option;  (** linear thread id of (a lane of) the faulting warp *)
      entry : int option;  (** entry-point id the warp was dispatched at *)
      cycle : float option;  (** modelled cycle, attached at the EM boundary *)
      access : access option;  (** present for memory traps *)
      reason : string;
    }
  | Deadlock of {
      kernel : string;
      cta : int * int * int;
      cycle : float;
      kind : deadlock_kind;
      detail : string;
      threads : thread_diag list;  (** stuck (non-exited) threads *)
    }
  | Fuel of {
      kernel : string;
      cta : int * int * int;
      calls : int;  (** subkernel calls actually made *)
      fuel : int;  (** the budget that was exhausted *)
      cycle : float;
    }
  | Resource of { what : string; requested : int; available : int }
  | Checkpoint of {
      path : string;  (** snapshot or schedule-log file involved *)
      what : string;  (** artifact class: "checkpoint" or "replay log" *)
      reason : string;
    }
      (** a checkpoint snapshot or replay schedule log was rejected:
          truncated, failed its integrity checksum, mismatched the
          launch, or (for replay) diverged from the live execution *)
  | Deadline of {
      kernel : string;
      deadline_ms : int;  (** the budget the request carried *)
      elapsed_ms : int;  (** wall time consumed when the launch was killed *)
      snapshot : string option;
          (** partial-progress snapshot written at the safe point where
              the deadline fired, preserving span/attribution data *)
    }
      (** a launch (running or still queued) exceeded its wall-clock
          deadline; running launches are cancelled at their next safe
          point via the preemption token, queued launches are rejected
          at admission without ever running *)
  | Overloaded of {
      queued : int;  (** admission-queue depth when the submit arrived *)
      limit : int;  (** the high watermark that tripped shedding *)
      retry_after_ms : int;  (** server's estimate of when to retry *)
    }
      (** the daemon shed the submit: the admission queue was above its
          high watermark and the job's priority did not beat the
          backlog; clients should back off [retry_after_ms] and retry *)

exception Error of t

let pp_cta ppf (x, y, z) = Fmt.pf ppf "(%d,%d,%d)" x y z

let pp_thread_diag ppf d =
  Fmt.pf ppf "t%d %s@@entry %d" d.t_linear d.t_state d.t_entry

let pp ppf = function
  | Compile c ->
      Fmt.pf ppf "compile error (%s" (stage_name c.stage);
      Option.iter (fun l -> Fmt.pf ppf ":%d" l) c.line;
      Fmt.pf ppf ")";
      if c.kernel <> "" then Fmt.pf ppf " in kernel %s" c.kernel;
      Option.iter (fun w -> Fmt.pf ppf ", ws %d" w) c.ws;
      Option.iter (fun t -> Fmt.pf ppf ", tier %d" t) c.tier;
      Fmt.pf ppf ": %s" c.reason
  | Trap t ->
      Fmt.pf ppf "trap in kernel %s" t.kernel;
      Option.iter (fun c -> Fmt.pf ppf ", CTA %a" pp_cta c) t.cta;
      Option.iter (fun i -> Fmt.pf ppf ", thread %d" i) t.tid;
      Option.iter (fun e -> Fmt.pf ppf ", entry %d" e) t.entry;
      Option.iter (fun c -> Fmt.pf ppf ", cycle %.0f" c) t.cycle;
      Fmt.pf ppf ": %s" t.reason;
      Option.iter (fun a -> Fmt.pf ppf ": %a" pp_access a) t.access
  | Deadlock d ->
      Fmt.pf ppf "%s in kernel %s, CTA %a, cycle %.0f: %s"
        (deadlock_kind_name d.kind) d.kernel pp_cta d.cta d.cycle d.detail;
      if d.threads <> [] then
        Fmt.pf ppf "; stuck threads: %a"
          Fmt.(list ~sep:(any ", ") pp_thread_diag)
          d.threads
  | Fuel f ->
      Fmt.pf ppf
        "out of fuel in kernel %s, CTA %a: %d subkernel calls made (budget \
         %d, cycle %.0f)"
        f.kernel pp_cta f.cta f.calls f.fuel f.cycle
  | Resource r ->
      Fmt.pf ppf "out of %s: requested %d, available %d" r.what r.requested
        r.available
  | Checkpoint c -> Fmt.pf ppf "bad %s %s: %s" c.what c.path c.reason
  | Deadline d ->
      Fmt.pf ppf "deadline exceeded in kernel %s: %d ms elapsed (budget %d ms)"
        d.kernel d.elapsed_ms d.deadline_ms;
      Option.iter (fun p -> Fmt.pf ppf "; partial snapshot at %s" p) d.snapshot
  | Overloaded o ->
      Fmt.pf ppf
        "server overloaded: %d jobs queued (limit %d); retry after %d ms"
        o.queued o.limit o.retry_after_ms

let to_string e = Fmt.str "%a" pp e

(** The variant's class name (stable machine-readable tag, used by the
    crash bundle). *)
let kind_name = function
  | Compile _ -> "compile"
  | Trap _ -> "trap"
  | Deadlock _ -> "deadlock"
  | Fuel _ -> "fuel"
  | Resource _ -> "resource"
  | Checkpoint _ -> "checkpoint"
  | Deadline _ -> "deadline"
  | Overloaded _ -> "overloaded"

(** Faults a launch can transparently recover from by degrading to the
    reference emulator: anything wrong with the *compiled* path.  Fuel
    exhaustion is excluded — a runaway kernel would also run away (more
    slowly) under the oracle — as are host resource limits.  A rejected
    checkpoint or replay log is recoverable: the artifact is damaged,
    but the oracle can still produce the launch's result from scratch.
    Deadline and overload are policy decisions, not faults: re-running
    under the oracle would only burn more of the budget the policy just
    enforced. *)
let recoverable = function
  | Compile _ | Trap _ | Deadlock _ | Checkpoint _ -> true
  | Fuel _ | Resource _ | Deadline _ | Overloaded _ -> false
