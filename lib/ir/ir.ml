(** The vekt intermediate representation.

    A typed register-machine IR with vector types, playing the role LLVM IR
    plays in the paper.  Functions hold an unbounded set of typed virtual
    registers; instructions read operands and write a destination register.
    The IR is deliberately {e not} SSA: the yield-on-diverge transformation
    spills and restores "all live values" at kernel exits and entries, which
    is most direct when a value is a register with a live range.

    Thread identity flows through {e context reads} ([Ctx_read]): a
    vectorized function executes on behalf of a warp of [w] threads, and
    lane [l]'s context object provides its thread/CTA indices and
    thread-local base.  [Spill]/[Restore] move per-lane values to and from
    reserved slots in the lane's thread-local memory — these are the
    compiler-inserted context-switch instructions of the paper's Algorithms
    3 and 4. *)

open Vekt_ptx

type vreg = int

type operand =
  | R of vreg
  | Imm of Scalar_ops.value * Ast.dtype  (** typed scalar immediate *)

(** Per-thread context object fields (paper §4: "grid dimensions, block
    dimensions, block ID, thread ID, and base pointers"). *)
type ctx_field =
  | Tid of Ast.dim
  | Ntid of Ast.dim
  | Ctaid of Ast.dim
  | Nctaid of Ast.dim
  | Lane
  | Local_base  (** byte offset of the lane's thread-local block *)
  | Warp_width  (** number of threads in the executing warp (uniform) *)
  | Entry_id  (** the warp's entry-point ID, set by the execution manager *)

(** Why a vectorized kernel returned to the execution manager. *)
type status = Status_branch | Status_barrier | Status_exit

type instr =
  | Bin of Ast.binop * Ty.t * vreg * operand * operand
  | Un of Ast.unop * Ty.t * vreg * operand
  | Fma of Ty.t * vreg * operand * operand * operand
  | Cmp of Ast.cmpop * Ty.t * vreg * operand * operand
      (** destination is a predicate of the same width as the operand type *)
  | Select of Ty.t * vreg * operand * operand * operand
      (** [Select (ty, d, cond, a, b)]: lane-wise [cond ? a : b]; [cond] is
          a predicate of matching width *)
  | Mov of Ty.t * vreg * operand
  | Cvt of Ty.t * Ty.t * vreg * operand  (** [Cvt (dst_ty, src_ty, d, a)] *)
  | Load of Ast.space * Ast.dtype * vreg * operand * int
      (** scalar load: [d = space[base + offset]].  Loads and stores are
          never vector-typed (paper §4, "Non-vectorizable Instructions") *)
  | Store of Ast.space * Ast.dtype * operand * int * operand
      (** [Store (space, ty, base, offset, value)] *)
  | Atomic of
      Ast.space * Ast.atomop * Ast.dtype * vreg * operand * int * operand * operand option
  | Vload of Ast.space * Ast.dtype * vreg * operand * int
      (** coalesced vector load: lane [i] gets [space[base + offset + i*size]].
          Emitted only when affine analysis proves the warp's lanes access
          contiguous memory (the paper's §4 future-work optimization) *)
  | Vstore of Ast.space * Ast.dtype * operand * int * operand
      (** coalesced vector store of a vector value to contiguous lanes *)
  | Broadcast of Ty.t * vreg * operand  (** splat a scalar into every lane *)
  | Extract of Ast.dtype * vreg * operand * int
      (** [d = vector.(lane)] — "unpack" at a vector→scalar boundary *)
  | Insert of Ty.t * vreg * operand * int * operand
      (** [Insert (ty, d, vec, lane, scalar)] — "pack" *)
  | Reduce_add of vreg * operand
      (** sum of the lanes of a predicate/integer vector, as scalar .s32 —
          the divergence check of Algorithm 2 *)
  | Ctx_read of vreg * ctx_field * int  (** read a field of lane [i]'s context *)
  | Spill of int * int * Ast.dtype * operand
      (** [Spill (lane, slot, ty, v)]: store lane [lane] of [v] to the
          lane's thread-local spill slot at byte offset [slot] *)
  | Restore of vreg * int * int * Ast.dtype
      (** [Restore (d, lane, slot, ty)]: scalar load from the lane's slot *)
  | Set_resume of int * operand
      (** record lane's next entry-point ID in its context *)
  | Set_status of status  (** record the warp's resume status *)

type terminator =
  | Jump of string
  | Branch of operand * string * string
      (** scalar conditional branch — only before vectorization *)
  | Switch of operand * (int * string) list * string  (** value, cases, default *)
  | Barrier of string
      (** CTA barrier then continue — only before vectorization *)
  | Return  (** yield back to the execution manager *)

(** Block role, used for cycle attribution in the VM (Figure 9 separates
    subkernel cycles from yield save/restore cycles). *)
type bkind = Body | Scheduler | Entry_handler | Exit_handler

(** Located instruction: the instruction plus the 1-based PTX source line
    it descends from (0 = synthetic — scheduler/handler glue, packing,
    address arithmetic with no single source line).  Transforms that
    rewrite [i] must preserve [line] ([{ li with i = ... }]) so
    source-line cycle attribution survives the pass pipeline. *)
type li = { i : instr; line : int }

let at_line line i = { i; line }
let synthetic i = { i; line = 0 }

type block = {
  label : string;
  kind : bkind;
  mutable insts : li list;
  mutable term : terminator;
}

type func = {
  fname : string;
  warp_size : int;
  mutable entry : string;
  mutable order : string list;  (** block layout order *)
  btab : (string, block) Hashtbl.t;
  mutable nregs : int;
  rty : (vreg, Ty.t) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Accessors *)

let block f l =
  match Hashtbl.find_opt f.btab l with
  | Some b -> b
  | None -> invalid_arg (Fmt.str "Ir.block: no block %s in %s" l f.fname)

let blocks f = List.map (block f) f.order

let reg_ty f r =
  match Hashtbl.find_opt f.rty r with
  | Some t -> t
  | None -> invalid_arg (Fmt.str "Ir.reg_ty: unknown register %%%d" r)

let operand_ty f = function
  | R r -> reg_ty f r
  | Imm (_, ty) -> Ty.scalar ty

let successors b =
  match b.term with
  | Jump l -> [ l ]
  | Branch (_, t, e) -> [ t; e ]
  | Switch (_, cases, d) ->
      (* preserve order, drop duplicates *)
      let seen = Hashtbl.create 8 in
      List.filter
        (fun l ->
          if Hashtbl.mem seen l then false
          else (
            Hashtbl.add seen l ();
            true))
        (List.map snd cases @ [ d ])
  | Barrier l -> [ l ]
  | Return -> []

(** Register defined by an instruction, if any. *)
let def = function
  | Bin (_, _, d, _, _)
  | Un (_, _, d, _)
  | Fma (_, d, _, _, _)
  | Cmp (_, _, d, _, _)
  | Select (_, d, _, _, _)
  | Mov (_, d, _)
  | Cvt (_, _, d, _)
  | Load (_, _, d, _, _)
  | Atomic (_, _, _, d, _, _, _, _)
  | Broadcast (_, d, _)
  | Extract (_, d, _, _)
  | Insert (_, d, _, _, _)
  | Reduce_add (d, _)
  | Ctx_read (d, _, _)
  | Restore (d, _, _, _)
  | Vload (_, _, d, _, _) ->
      Some d
  | Store _ | Vstore _ | Spill _ | Set_resume _ | Set_status _ -> None

let operand_reg = function R r -> Some r | Imm _ -> None

(** Registers read by an instruction. *)
let uses i =
  let ops =
    match i with
    | Bin (_, _, _, a, b) -> [ a; b ]
    | Un (_, _, _, a) -> [ a ]
    | Fma (_, _, a, b, c) -> [ a; b; c ]
    | Cmp (_, _, _, a, b) -> [ a; b ]
    | Select (_, _, c, a, b) -> [ c; a; b ]
    | Mov (_, _, a) -> [ a ]
    | Cvt (_, _, _, a) -> [ a ]
    | Load (_, _, _, base, _) -> [ base ]
    | Store (_, _, base, _, v) -> [ base; v ]
    | Vload (_, _, _, base, _) -> [ base ]
    | Vstore (_, _, base, _, v) -> [ base; v ]
    | Atomic (_, _, _, _, base, _, b, c) -> base :: b :: Option.to_list c
    | Broadcast (_, _, a) -> [ a ]
    | Extract (_, _, a, _) -> [ a ]
    | Insert (_, _, v, _, s) -> [ v; s ]
    | Reduce_add (_, a) -> [ a ]
    | Ctx_read _ -> []
    | Spill (_, _, _, v) -> [ v ]
    | Restore _ -> []
    | Set_resume (_, v) -> [ v ]
    | Set_status _ -> []
  in
  List.filter_map operand_reg ops

let term_uses = function
  | Jump _ | Barrier _ | Return -> []
  | Branch (c, _, _) -> Option.to_list (operand_reg c)
  | Switch (v, _, _) -> Option.to_list (operand_reg v)

(** Map the operands of an instruction (destination untouched). *)
let map_operands fn i =
  match i with
  | Bin (op, ty, d, a, b) -> Bin (op, ty, d, fn a, fn b)
  | Un (op, ty, d, a) -> Un (op, ty, d, fn a)
  | Fma (ty, d, a, b, c) -> Fma (ty, d, fn a, fn b, fn c)
  | Cmp (op, ty, d, a, b) -> Cmp (op, ty, d, fn a, fn b)
  | Select (ty, d, c, a, b) -> Select (ty, d, fn c, fn a, fn b)
  | Mov (ty, d, a) -> Mov (ty, d, fn a)
  | Cvt (dt, st, d, a) -> Cvt (dt, st, d, fn a)
  | Load (sp, ty, d, base, off) -> Load (sp, ty, d, fn base, off)
  | Store (sp, ty, base, off, v) -> Store (sp, ty, fn base, off, fn v)
  | Vload (sp, ty, d, base, off) -> Vload (sp, ty, d, fn base, off)
  | Vstore (sp, ty, base, off, v) -> Vstore (sp, ty, fn base, off, fn v)
  | Atomic (sp, op, ty, d, base, off, b, c) ->
      Atomic (sp, op, ty, d, fn base, off, fn b, Option.map fn c)
  | Broadcast (ty, d, a) -> Broadcast (ty, d, fn a)
  | Extract (ty, d, a, l) -> Extract (ty, d, fn a, l)
  | Insert (ty, d, v, l, s) -> Insert (ty, d, fn v, l, fn s)
  | Reduce_add (d, a) -> Reduce_add (d, fn a)
  | Ctx_read _ -> i
  | Spill (l, s, ty, v) -> Spill (l, s, ty, fn v)
  | Restore _ -> i
  | Set_resume (l, v) -> Set_resume (l, fn v)
  | Set_status _ -> i

(** Replace the destination register. *)
let with_def d i =
  match i with
  | Bin (op, ty, _, a, b) -> Bin (op, ty, d, a, b)
  | Un (op, ty, _, a) -> Un (op, ty, d, a)
  | Fma (ty, _, a, b, c) -> Fma (ty, d, a, b, c)
  | Cmp (op, ty, _, a, b) -> Cmp (op, ty, d, a, b)
  | Select (ty, _, c, a, b) -> Select (ty, d, c, a, b)
  | Mov (ty, _, a) -> Mov (ty, d, a)
  | Cvt (dt, st, _, a) -> Cvt (dt, st, d, a)
  | Load (sp, ty, _, base, off) -> Load (sp, ty, d, base, off)
  | Vload (sp, ty, _, base, off) -> Vload (sp, ty, d, base, off)
  | Atomic (sp, op, ty, _, base, off, b, c) -> Atomic (sp, op, ty, d, base, off, b, c)
  | Broadcast (ty, _, a) -> Broadcast (ty, d, a)
  | Extract (ty, _, a, l) -> Extract (ty, d, a, l)
  | Insert (ty, _, v, l, s) -> Insert (ty, d, v, l, s)
  | Reduce_add (_, a) -> Reduce_add (d, a)
  | Ctx_read (_, f, l) -> Ctx_read (d, f, l)
  | Restore (_, l, s, ty) -> Restore (d, l, s, ty)
  | Store _ | Vstore _ | Spill _ | Set_resume _ | Set_status _ ->
      invalid_arg "Ir.with_def: instruction has no destination"

(** Instructions whose effects are invisible to other threads (candidates
    for dead-code elimination when the destination is unused). *)
let is_pure = function
  | Store _ | Vstore _ | Atomic _ | Spill _ | Set_resume _ | Set_status _ -> false
  | Load _ | Vload _ ->
      (* Loads have no side effect but may fault; we still allow DCE of
         unused loads, matching LLVM's treatment of dereferenceable
         pointers in this dialect (all addresses are segment-checked). *)
      true
  | _ -> true

let predecessors f =
  let preds = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace preds l []) f.order;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt preds s) ~default:[] in
          Hashtbl.replace preds s (b.label :: cur))
        (successors b))
    (blocks f);
  preds

(** Blocks reachable from the entry, in reverse post-order. *)
let reverse_postorder f =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (successors (block f l));
      order := l :: !order
    end
  in
  dfs f.entry;
  !order

(** Static instruction count over all blocks (terminators excluded). *)
let size f = List.fold_left (fun acc b -> acc + List.length b.insts) 0 (blocks f)

(** Deep copy: blocks are fresh records (instruction lists are immutable
    and shared), register numbering and types are preserved.  Used to
    specialize a function without disturbing the cached original. *)
let copy_func (f : func) : func =
  let btab = Hashtbl.create (Hashtbl.length f.btab) in
  Hashtbl.iter
    (fun l (b : block) ->
      Hashtbl.replace btab l { label = b.label; kind = b.kind; insts = b.insts; term = b.term })
    f.btab;
  {
    fname = f.fname;
    warp_size = f.warp_size;
    entry = f.entry;
    order = f.order;
    btab;
    nregs = f.nregs;
    rty = Hashtbl.copy f.rty;
  }
