(** IR value types: a scalar element type (reusing the PTX datatypes) and a
    lane width.  [width = 1] is scalar; [width = w > 1] is a [<w x elt>]
    vector, as in LLVM. *)

open Vekt_ptx

type t = { elt : Ast.dtype; width : int }

let scalar elt = { elt; width = 1 }
let vector elt width =
  if width < 2 then invalid_arg "Ty.vector: width must be >= 2";
  { elt; width }

let make elt width = if width = 1 then scalar elt else vector elt width
let is_vector t = t.width > 1
let is_pred t = t.elt = Ast.Pred
let equal a b = a.elt = b.elt && a.width = b.width

(** Same element type at a different width. *)
let with_width t width = make t.elt width

let pp fmt t =
  if t.width = 1 then Fmt.string fmt (Printer.dtype_str t.elt)
  else Fmt.pf fmt "<%d x %s>" t.width (Printer.dtype_str t.elt)

let to_string = Fmt.to_to_string pp

(** Bytes occupied by a value of this type in a (vector) register. *)
let byte_size t = Ast.size_of t.elt * t.width
