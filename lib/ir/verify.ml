(** Structural and type verification of IR functions.

    Run after every transformation in tests (and at translation-cache
    boundaries under a debug flag) to catch malformed IR early, in the
    spirit of LLVM's verifier. *)

open Vekt_ptx

type error = string

exception Invalid_ir of string

let check_func (f : Ir.func) : error list =
  let errors = ref [] in
  let add fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  if f.entry = "" || not (Hashtbl.mem f.btab f.entry) then add "missing entry block";
  let labels = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem labels l then add "duplicate label %s in order" l
      else Hashtbl.add labels l ())
    f.order;
  Hashtbl.iter
    (fun l _ -> if not (Hashtbl.mem labels l) then add "block %s not in order" l)
    f.btab;
  let ty_of_operand o =
    match o with
    | Ir.R r -> Hashtbl.find_opt f.rty r
    | Ir.Imm (_, ty) -> Some (Ty.scalar ty)
  in
  let check_block (b : Ir.block) =
    let ctx label i = Fmt.str "%s/%s: %s" f.fname label (Fmt.to_to_string Pp.instr i) in
    List.iter
      (fun (li : Ir.li) ->
        let i = li.Ir.i in
        let where = ctx b.label i in
        (* All used registers must have known types. *)
        List.iter
          (fun r ->
            if not (Hashtbl.mem f.rty r) then add "%s: use of unknown %%%d" where r)
          (Ir.uses i);
        (match Ir.def i with
        | Some d when not (Hashtbl.mem f.rty d) -> add "%s: def of unknown %%%d" where d
        | _ -> ());
        let expect_operand o (ty : Ty.t) =
          match ty_of_operand o with
          | None -> ()
          | Some t ->
              (* Immediates are scalar and splat into vector positions. *)
              let ok =
                match o with
                | Ir.Imm _ -> t.Ty.elt = ty.Ty.elt || Ast.size_of t.elt = Ast.size_of ty.elt
                | Ir.R _ ->
                    t.Ty.width = ty.Ty.width
                    && (t.Ty.elt = ty.Ty.elt
                       || (Ast.size_of t.elt = Ast.size_of ty.elt
                          && Ast.is_float t.elt = Ast.is_float ty.elt
                          && t.elt <> Ast.Pred && ty.elt <> Ast.Pred))
              in
              if not ok then
                add "%s: operand %s has type %s, expected %s" where
                  (Fmt.to_to_string Pp.operand o)
                  (Ty.to_string t) (Ty.to_string ty)
        in
        let expect_def d (ty : Ty.t) =
          match Hashtbl.find_opt f.rty d with
          | None -> ()
          | Some t ->
              if
                not
                  (t.Ty.width = ty.Ty.width
                  && (t.Ty.elt = ty.Ty.elt
                     || (Ast.size_of t.elt = Ast.size_of ty.elt
                        && Ast.is_float t.elt = Ast.is_float ty.elt
                        && t.elt <> Ast.Pred && ty.elt <> Ast.Pred)))
              then
                add "%s: def %%%d has type %s, expected %s" where d (Ty.to_string t)
                  (Ty.to_string ty)
        in
        match i with
        | Bin (op, ty, d, a, b) ->
            expect_def d ty;
            expect_operand a ty;
            (* Shift amounts are 32-bit regardless of the value type. *)
            if op = Ast.Shl || op = Ast.Shr then
              expect_operand b (Ty.with_width (Ty.scalar Ast.U32) ty.Ty.width)
            else expect_operand b ty
        | Un (_, ty, d, a) ->
            expect_def d ty;
            expect_operand a ty
        | Fma (ty, d, a, b, c) ->
            expect_def d ty;
            expect_operand a ty;
            expect_operand b ty;
            expect_operand c ty
        | Cmp (_, ty, d, a, b) ->
            expect_def d (Ty.with_width (Ty.scalar Ast.Pred) ty.Ty.width);
            expect_operand a ty;
            expect_operand b ty
        | Select (ty, d, c, a, b) ->
            expect_def d ty;
            expect_operand c (Ty.with_width (Ty.scalar Ast.Pred) ty.Ty.width);
            expect_operand a ty;
            expect_operand b ty
        | Mov (ty, d, a) ->
            expect_def d ty;
            expect_operand a ty
        | Cvt (dt, st, d, a) ->
            if dt.Ty.width <> st.Ty.width then add "%s: cvt width mismatch" where;
            expect_def d dt;
            expect_operand a st
        | Load (_, ty, d, base, _) ->
            expect_def d (Ty.scalar ty);
            (match ty_of_operand base with
            | Some t when t.Ty.width <> 1 -> add "%s: vector base address" where
            | _ -> ())
        | Store (_, ty, base, _, v) ->
            expect_operand v (Ty.scalar ty);
            (match ty_of_operand base with
            | Some t when t.Ty.width <> 1 -> add "%s: vector base address" where
            | _ -> ())
        | Vload (_, ty, d, base, _) ->
            expect_def d (Ty.make ty f.warp_size);
            (match ty_of_operand base with
            | Some t when t.Ty.width <> 1 -> add "%s: vector base address" where
            | _ -> ())
        | Vstore (_, ty, base, _, v) ->
            (* The value operand must be an actual vector register: scalar
               immediates splat implicitly elsewhere, but a coalesced store
               writes [warp_size] lanes and requires an explicit Broadcast
               (a scalar here has historically meant a dropped splat). *)
            (match v with
            | Ir.Imm _ -> add "%s: scalar immediate as vector store value" where
            | Ir.R _ -> ());
            expect_operand v (Ty.make ty f.warp_size);
            (match ty_of_operand base with
            | Some t when t.Ty.width <> 1 -> add "%s: vector base address" where
            | _ -> ())
        | Atomic (_, _, ty, d, base, _, b2, c) ->
            expect_def d (Ty.scalar ty);
            expect_operand b2 (Ty.scalar ty);
            Option.iter (fun c -> expect_operand c (Ty.scalar ty)) c;
            (match ty_of_operand base with
            | Some t when t.Ty.width <> 1 -> add "%s: vector base address" where
            | _ -> ())
        | Broadcast (ty, d, a) ->
            if not (Ty.is_vector ty) then add "%s: broadcast to scalar" where;
            expect_def d ty;
            expect_operand a (Ty.scalar ty.Ty.elt)
        | Extract (ty, d, a, lane) ->
            expect_def d (Ty.scalar ty);
            (match ty_of_operand a with
            | Some t ->
                if lane < 0 || lane >= t.Ty.width then add "%s: lane out of range" where
            | None -> ())
        | Insert (ty, d, v, lane, s) ->
            if lane < 0 || lane >= ty.Ty.width then add "%s: lane out of range" where;
            expect_def d ty;
            expect_operand v ty;
            expect_operand s (Ty.scalar ty.Ty.elt)
        | Reduce_add (d, a) ->
            expect_def d (Ty.scalar Ast.S32);
            (match ty_of_operand a with
            | Some t when Ast.is_float t.Ty.elt -> add "%s: reduce.add on float" where
            | _ -> ())
        | Ctx_read (_, _, lane) | Restore (_, lane, _, _) | Spill (lane, _, _, _)
        | Set_resume (lane, _) ->
            if lane < 0 || lane >= f.warp_size then
              add "%s: lane %d out of warp %d" where lane f.warp_size
        | Set_status _ -> ())
      b.insts;
    (* Terminator checks. *)
    List.iter
      (fun s ->
        if not (Hashtbl.mem labels s) then
          add "%s: branch to unknown block %s" b.label s)
      (Ir.successors b);
    match b.term with
    | Branch (c, _, _) -> (
        match ty_of_operand c with
        | Some t when not (Ty.is_pred t) || t.Ty.width <> 1 ->
            add "%s: branch condition must be scalar pred" b.label
        | _ -> ())
    | Switch (v, _, _) -> (
        match ty_of_operand v with
        | Some t when t.Ty.width <> 1 || Ast.is_float t.Ty.elt ->
            add "%s: switch value must be scalar integer" b.label
        | _ -> ())
    | _ -> ()
  in
  List.iter check_block (Ir.blocks f);
  List.rev !errors

let check_exn f =
  match check_func f with
  | [] -> ()
  | e :: _ as all ->
      raise
        (Invalid_ir (Fmt.str "%s (%d total):\n%s" e (List.length all) (String.concat "\n" all)))
