(** Imperative construction of IR functions.

    Blocks accumulate instructions in order; [set_term] seals a block.  The
    builder hands out fresh typed virtual registers and guarantees label
    uniqueness. *)

type t = {
  func : Ir.func;
  mutable current : Ir.block option;
  mutable label_counter : int;
}

let create ?(warp_size = 1) fname =
  {
    func =
      {
        Ir.fname;
        warp_size;
        entry = "";
        order = [];
        btab = Hashtbl.create 16;
        nregs = 0;
        rty = Hashtbl.create 64;
      };
    current = None;
    label_counter = 0;
  }

let func b = b.func

let fresh_reg b ty : Ir.vreg =
  let r = b.func.Ir.nregs in
  b.func.Ir.nregs <- r + 1;
  Hashtbl.replace b.func.Ir.rty r ty;
  r

let fresh_label b stem =
  b.label_counter <- b.label_counter + 1;
  let rec pick n =
    let l = Fmt.str "%s.%d" stem n in
    if Hashtbl.mem b.func.Ir.btab l then pick (n + 1) else l
  in
  pick b.label_counter

(** Create a block (appended to layout order) and make it current.  The
    first block created becomes the function entry. *)
let start_block ?(kind = Ir.Body) b label =
  if Hashtbl.mem b.func.Ir.btab label then
    invalid_arg (Fmt.str "Builder.start_block: duplicate label %s" label);
  let blk = { Ir.label; kind; insts = []; term = Ir.Return } in
  Hashtbl.replace b.func.Ir.btab label blk;
  b.func.Ir.order <- b.func.Ir.order @ [ label ];
  if b.func.Ir.entry = "" then b.func.Ir.entry <- label;
  b.current <- Some blk;
  blk

let switch_to b label =
  b.current <- Some (Ir.block b.func label)

let current b =
  match b.current with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no current block"

let emit b i =
  let blk = current b in
  blk.Ir.insts <- blk.Ir.insts @ [ i ]

(** Emit an instruction computing into a fresh register of type [ty]. *)
let emit_val b ty mk =
  let r = fresh_reg b ty in
  emit b (mk r);
  r

let set_term b term = (current b).Ir.term <- term
