(** Imperative construction of IR functions.

    Blocks accumulate instructions in order; [set_term] seals a block.  The
    builder hands out fresh typed virtual registers and guarantees label
    uniqueness.

    Instructions for the block under construction are accumulated in
    {e reverse} and flushed into the block on every block switch (and when
    {!func} is called), so emitting [n] instructions costs O(n) rather
    than the O(n²) of appending to the tail of [Ir.block.insts] per
    instruction.  The same discipline applies to the function's block
    layout [order].  Consequence: [Ir.block.insts] and [Ir.func.order]
    are only guaranteed current for blocks the builder is {e not} still
    filling — always obtain the finished function through {!func}. *)

type t = {
  func : Ir.func;
  mutable current : Ir.block option;
  mutable rev_insts : Ir.li list;
      (** pending instructions of [current], newest first *)
  mutable rev_order : string list;
      (** block layout, newest first; [func.order] is derived on {!func} *)
  mutable label_counter : int;
  mutable cur_line : int;
      (** source line stamped on instructions by {!emit}; 0 = synthetic *)
}

let create ?(warp_size = 1) fname =
  {
    func =
      {
        Ir.fname;
        warp_size;
        entry = "";
        order = [];
        btab = Hashtbl.create 16;
        nregs = 0;
        rty = Hashtbl.create 64;
      };
    current = None;
    rev_insts = [];
    rev_order = [];
    label_counter = 0;
    cur_line = 0;
  }

(** Set the source line recorded on subsequently emitted instructions
    (until the next [set_line]).  Emitters translating a source construct
    call this once per construct; helper instructions they emit inherit
    the construct's line. *)
let set_line b line = b.cur_line <- line

(* Move the pending reversed instructions into the current block.  The
   block is almost always empty here; re-entering a block via
   [switch_to] appends after its existing instructions, once per visit. *)
let flush b =
  match b.current with
  | Some blk when b.rev_insts <> [] ->
      blk.Ir.insts <-
        (match blk.Ir.insts with
        | [] -> List.rev b.rev_insts
        | old -> old @ List.rev b.rev_insts);
      b.rev_insts <- []
  | _ -> ()

let func b =
  flush b;
  b.func.Ir.order <- List.rev b.rev_order;
  b.func

let fresh_reg b ty : Ir.vreg =
  let r = b.func.Ir.nregs in
  b.func.Ir.nregs <- r + 1;
  Hashtbl.replace b.func.Ir.rty r ty;
  r

let fresh_label b stem =
  b.label_counter <- b.label_counter + 1;
  let rec pick n =
    let l = Fmt.str "%s.%d" stem n in
    if Hashtbl.mem b.func.Ir.btab l then pick (n + 1) else l
  in
  pick b.label_counter

(** Create a block (appended to layout order) and make it current.  The
    first block created becomes the function entry. *)
let start_block ?(kind = Ir.Body) b label =
  if Hashtbl.mem b.func.Ir.btab label then
    invalid_arg (Fmt.str "Builder.start_block: duplicate label %s" label);
  flush b;
  let blk = { Ir.label; kind; insts = []; term = Ir.Return } in
  Hashtbl.replace b.func.Ir.btab label blk;
  b.rev_order <- label :: b.rev_order;
  if b.func.Ir.entry = "" then b.func.Ir.entry <- label;
  b.current <- Some blk;
  blk

let switch_to b label =
  flush b;
  b.current <- Some (Ir.block b.func label)

let current b =
  match b.current with
  | Some blk ->
      flush b;
      blk
  | None -> invalid_arg "Builder: no current block"

let emit b i =
  match b.current with
  | Some _ -> b.rev_insts <- { Ir.i; line = b.cur_line } :: b.rev_insts
  | None -> invalid_arg "Builder: no current block"

(** Emit an instruction computing into a fresh register of type [ty]. *)
let emit_val b ty mk =
  let r = fresh_reg b ty in
  emit b (mk r);
  r

let set_term b term = (current b).Ir.term <- term
