(** Human-readable printing of IR functions (for tests, goldens, debug). *)

open Vekt_ptx

let reg fmt r = Fmt.pf fmt "%%%d" r

let operand fmt = function
  | Ir.R r -> reg fmt r
  | Ir.Imm (v, ty) -> Fmt.pf fmt "%a:%s" Scalar_ops.pp_value v (Printer.dtype_str ty)

let dim_str = Printer.dim_str

let ctx_field fmt = function
  | Ir.Tid d -> Fmt.pf fmt "tid.%s" (dim_str d)
  | Ir.Ntid d -> Fmt.pf fmt "ntid.%s" (dim_str d)
  | Ir.Ctaid d -> Fmt.pf fmt "ctaid.%s" (dim_str d)
  | Ir.Nctaid d -> Fmt.pf fmt "nctaid.%s" (dim_str d)
  | Ir.Lane -> Fmt.string fmt "lane"
  | Ir.Local_base -> Fmt.string fmt "local_base"
  | Ir.Warp_width -> Fmt.string fmt "warp_width"
  | Ir.Entry_id -> Fmt.string fmt "entry_id"

let status_str = function
  | Ir.Status_branch -> "branch"
  | Ir.Status_barrier -> "barrier"
  | Ir.Status_exit -> "exit"

let instr fmt (i : Ir.instr) =
  match i with
  | Bin (op, ty, d, a, b) ->
      Fmt.pf fmt "%a = %s %a %a, %a" reg d (Printer.binop_str op) Ty.pp ty operand a
        operand b
  | Un (op, ty, d, a) ->
      Fmt.pf fmt "%a = %s %a %a" reg d (Printer.unop_str op) Ty.pp ty operand a
  | Fma (ty, d, a, b, c) ->
      Fmt.pf fmt "%a = fma %a %a, %a, %a" reg d Ty.pp ty operand a operand b operand c
  | Cmp (op, ty, d, a, b) ->
      Fmt.pf fmt "%a = cmp.%s %a %a, %a" reg d (Printer.cmp_str op) Ty.pp ty operand a
        operand b
  | Select (ty, d, c, a, b) ->
      Fmt.pf fmt "%a = select %a %a ? %a : %a" reg d Ty.pp ty operand c operand a
        operand b
  | Mov (ty, d, a) -> Fmt.pf fmt "%a = mov %a %a" reg d Ty.pp ty operand a
  | Cvt (dt, st, d, a) ->
      Fmt.pf fmt "%a = cvt %a<-%a %a" reg d Ty.pp dt Ty.pp st operand a
  | Load (sp, ty, d, base, off) ->
      Fmt.pf fmt "%a = load.%s %s [%a%+d]" reg d (Printer.space_str sp)
        (Printer.dtype_str ty) operand base off
  | Store (sp, ty, base, off, v) ->
      Fmt.pf fmt "store.%s %s [%a%+d], %a" (Printer.space_str sp) (Printer.dtype_str ty)
        operand base off operand v
  | Vload (sp, ty, d, base, off) ->
      Fmt.pf fmt "%a = vload.%s %s [%a%+d]" reg d (Printer.space_str sp)
        (Printer.dtype_str ty) operand base off
  | Vstore (sp, ty, base, off, v) ->
      Fmt.pf fmt "vstore.%s %s [%a%+d], %a" (Printer.space_str sp)
        (Printer.dtype_str ty) operand base off operand v
  | Atomic (sp, op, ty, d, base, off, b, c) ->
      Fmt.pf fmt "%a = atomic.%s.%s %s [%a%+d], %a%a" reg d (Printer.space_str sp)
        (Printer.atomop_str op) (Printer.dtype_str ty) operand base off operand b
        (Fmt.option (fun fmt c -> Fmt.pf fmt ", %a" operand c))
        c
  | Broadcast (ty, d, a) -> Fmt.pf fmt "%a = broadcast %a %a" reg d Ty.pp ty operand a
  | Extract (ty, d, a, l) ->
      Fmt.pf fmt "%a = extract %s %a[%d]" reg d (Printer.dtype_str ty) operand a l
  | Insert (ty, d, v, l, s) ->
      Fmt.pf fmt "%a = insert %a %a[%d] <- %a" reg d Ty.pp ty operand v l operand s
  | Reduce_add (d, a) -> Fmt.pf fmt "%a = reduce.add %a" reg d operand a
  | Ctx_read (d, f, l) -> Fmt.pf fmt "%a = ctx[%d].%a" reg d l ctx_field f
  | Spill (l, slot, ty, v) ->
      Fmt.pf fmt "spill[%d] @%d %s, %a" l slot (Printer.dtype_str ty) operand v
  | Restore (d, l, slot, ty) ->
      Fmt.pf fmt "%a = restore[%d] @%d %s" reg d l slot (Printer.dtype_str ty)
  | Set_resume (l, v) -> Fmt.pf fmt "set_resume[%d] %a" l operand v
  | Set_status s -> Fmt.pf fmt "set_status %s" (status_str s)

let terminator fmt = function
  | Ir.Jump l -> Fmt.pf fmt "jump %s" l
  | Ir.Branch (c, t, e) -> Fmt.pf fmt "branch %a ? %s : %s" operand c t e
  | Ir.Switch (v, cases, d) ->
      Fmt.pf fmt "switch %a [%a] default %s" operand v
        (Fmt.list ~sep:Fmt.comma (fun fmt (c, l) -> Fmt.pf fmt "%d->%s" c l))
        cases d
  | Ir.Barrier l -> Fmt.pf fmt "barrier -> %s" l
  | Ir.Return -> Fmt.string fmt "return"

let kind_str = function
  | Ir.Body -> ""
  | Ir.Scheduler -> "  ; scheduler"
  | Ir.Entry_handler -> "  ; entry handler"
  | Ir.Exit_handler -> "  ; exit handler"

let block fmt (b : Ir.block) =
  Fmt.pf fmt "%s:%s@." b.label (kind_str b.kind);
  List.iter (fun (li : Ir.li) -> Fmt.pf fmt "  %a@." instr li.Ir.i) b.insts;
  Fmt.pf fmt "  %a@." terminator b.term

let func fmt (f : Ir.func) =
  Fmt.pf fmt "func %s (warp %d, %d regs) entry %s@." f.fname f.warp_size f.nregs f.entry;
  List.iter (fun b -> block fmt b) (Ir.blocks f)

let func_to_string = Fmt.to_to_string func
