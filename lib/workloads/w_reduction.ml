(** Reduction (CUDA SDK): shared-memory tree sum per CTA, barrier at every
    level — the paper's canonical sync-heavy workload. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let block = 64

let src =
  Fmt.str
    {|
.entry reduce (.param .u64 inp, .param .u64 outp, .param .u32 n)
{
  .reg .u32 %%tid, %%gid, %%r2, %%r3, %%half, %%n;
  .reg .u64 %%pin, %%pout, %%addr, %%off, %%sa, %%sb;
  .reg .f32 %%a, %%b;
  .reg .pred %%p, %%q;
  .shared .f32 buf[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%tid;
  ld.param.u32 %%n, [n];

  mov.f32 %%a, 0f00000000;
  setp.ge.u32 %%p, %%gid, %%n;
  @@%%p bra PAD;
  ld.param.u64 %%pin, [inp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%addr, %%pin, %%off;
  ld.global.f32 %%a, [%%addr];
PAD:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, buf;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%a;
  bar.sync 0;

  mov.u32 %%half, %d;
LOOP:
  setp.ge.u32 %%p, %%tid, %%half;
  @@%%p bra SKIP;
  ld.shared.f32 %%a, [%%sa];
  cvt.u64.u32 %%off, %%half;
  shl.b64 %%off, %%off, 2;
  add.u64 %%sb, %%sa, %%off;
  ld.shared.f32 %%b, [%%sb];
  add.f32 %%a, %%a, %%b;
  st.shared.f32 [%%sa], %%a;
SKIP:
  bar.sync 0;
  shr.u32 %%half, %%half, 1;
  setp.gt.u32 %%q, %%half, 0;
  @@%%q bra LOOP;

  setp.ne.u32 %%p, %%tid, 0;
  @@%%p bra DONE;
  ld.param.u64 %%pout, [outp];
  cvt.u64.u32 %%off, %%ctaid.x;
  shl.b64 %%off, %%off, 2;
  add.u64 %%pout, %%pout, %%off;
  mov.u64 %%sa, buf;
  ld.shared.f32 %%a, [%%sa];
  st.global.f32 [%%pout], %%a;
DONE:
  exit;
}
|}
    block (block / 2)

(* Host reference reproducing the tree-sum's f32 rounding order. *)
let cta_sum xs =
  let r32 = Workload.r32 in
  let buf = Array.of_list xs in
  let half = ref (block / 2) in
  while !half > 0 do
    for t = 0 to !half - 1 do
      buf.(t) <- r32 (buf.(t) +. buf.(t + !half))
    done;
    half := !half / 2
  done;
  buf.(0)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let ncta = 4 * scale in
  let n = (ncta * block) - 17 (* ragged tail exercises the pad path *) in
  let inp = Api.malloc dev (4 * ncta * block) and outp = Api.malloc dev (4 * ncta) in
  let xs = Workload.rand_f32s ~seed:7 n in
  Api.write_f32s dev inp xs;
  let padded = xs @ List.init ((ncta * block) - n) (fun _ -> 0.0) in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let c, rest = take block [] l in
        c :: chunks rest
  in
  let expected = List.map cta_sum (chunks padded) in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 n ];
    grid = Launch.dim3 ncta;
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"sum");
  }

let workload : Workload.t =
  {
    name = "reduction";
    paper_name = "Reduction";
    category = Workload.Sync_heavy;
    src;
    kernel = "reduce";
    setup;
  }
