(** RecursiveGaussian (CUDA SDK): Deriche-style IIR Gaussian filter.  One
    thread per image column, a sequential recurrence down the column —
    convergent control flow with a long dependent FP chain per thread, the
    opposite ILP profile from the throughput microbenchmark. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

(* first-order IIR: y[i] = a*x[i] + b*y[i-1], downward pass then upward *)
let src =
  {|
.entry rgauss (.param .u64 inp, .param .u64 outp, .param .u32 width, .param .u32 height)
{
  .reg .u32 %r1, %r2, %r3, %col, %row, %w, %h, %idx;
  .reg .u64 %pin, %pout, %a, %off;
  .reg .f32 %x, %y, %v;
  .reg .pred %p;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %col, %r2, %r3, %r1;
  ld.param.u32 %w, [width];
  ld.param.u32 %h, [height];
  setp.ge.u32 %p, %col, %w;
  @%p bra DONE;
  ld.param.u64 %pin, [inp];
  ld.param.u64 %pout, [outp];

  // downward pass: out[r][c] = a*in[r][c] + b*out[r-1][c]
  mov.f32 %y, 0f00000000;
  mov.u32 %row, 0;
DOWN:
  setp.ge.u32 %p, %row, %h;
  @%p bra UPINIT;
  mad.lo.u32 %idx, %row, %w, %col;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %a, %pin, %off;
  ld.global.f32 %x, [%a];
  mul.f32 %v, %x, 0f3ecccccd;       // a = 0.4
  fma.rn.f32 %y, %y, 0f3f19999a, %v; // b = 0.6
  add.u64 %a, %pout, %off;
  st.global.f32 [%a], %y;
  add.u32 %row, %row, 1;
  bra DOWN;

UPINIT:
  // upward pass: out[r][c] = a*out[r][c] + b*out[r+1][c]
  mov.f32 %y, 0f00000000;
  sub.u32 %row, %h, 1;
UP:
  mad.lo.u32 %idx, %row, %w, %col;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %a, %pout, %off;
  ld.global.f32 %x, [%a];
  mul.f32 %v, %x, 0f3ecccccd;
  fma.rn.f32 %y, %y, 0f3f19999a, %v;
  st.global.f32 [%a], %y;
  setp.eq.u32 %p, %row, 0;
  @%p bra DONE;
  sub.u32 %row, %row, 1;
  bra UP;

DONE:
  exit;
}
|}

let reference img ~w ~h =
  let r32 = Workload.r32 in
  let a = Workload.r32 0.4 and b = Workload.r32 0.6 in
  let out = Array.make (w * h) 0.0 in
  for col = 0 to w - 1 do
    let y = ref 0.0 in
    for row = 0 to h - 1 do
      let v = r32 (img.((row * w) + col) *. a) in
      y := r32 (r32 (!y *. b) +. v);
      out.((row * w) + col) <- !y
    done;
    let y = ref 0.0 in
    for row = h - 1 downto 0 do
      let v = r32 (out.((row * w) + col) *. a) in
      y := r32 (r32 (!y *. b) +. v);
      out.((row * w) + col) <- !y
    done
  done;
  Array.to_list out

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let w = 64 * scale and h = 32 in
  let inp = Api.malloc dev (4 * w * h) and outp = Api.malloc dev (4 * w * h) in
  let img = Array.of_list (Workload.rand_f32s ~seed:181 (w * h)) in
  Api.write_f32s dev inp (Array.to_list img);
  let expected = reference img ~w ~h in
  let block = 64 in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 w; Launch.I32 h ];
    grid = Launch.dim3 (w / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"iir");
  }

let workload : Workload.t =
  {
    name = "recursivegaussian";
    paper_name = "RecursiveGaussian";
    category = Workload.Uniform_compute;
    src;
    kernel = "rgauss";
    setup;
  }
