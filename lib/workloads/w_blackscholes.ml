(** BlackScholes (CUDA SDK): per-option closed-form pricing using the
    polynomial CND approximation.  Convergent control flow, transcendental-
    heavy — a showcase for vectorized [sqrt]/[lg2]/[ex2]. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

(* exp(x) = ex2(x * log2(e)); ln(x) = lg2(x) / log2(e). *)
let src =
  {|
.entry blackscholes (.param .u64 sp, .param .u64 xp, .param .u64 tp,
                     .param .u64 callp, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %i, %n;
  .reg .u64 %ps, %px, %pt, %pc, %off, %a;
  .reg .f32 %s, %x, %t, %sqrtt, %d1, %d2, %k1, %k2, %cnd1, %cnd2;
  .reg .f32 %ln, %tmp, %poly, %expd, %absd1, %absd2, %call;
  .reg .pred %p, %neg;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %i, %r2, %r3, %r1;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;

  cvt.u64.u32 %off, %i;
  shl.b64 %off, %off, 2;
  ld.param.u64 %ps, [sp];
  add.u64 %a, %ps, %off;
  ld.global.f32 %s, [%a];
  ld.param.u64 %px, [xp];
  add.u64 %a, %px, %off;
  ld.global.f32 %x, [%a];
  ld.param.u64 %pt, [tp];
  add.u64 %a, %pt, %off;
  ld.global.f32 %t, [%a];

  // d1 = (ln(S/X) + (r + v^2/2) T) / (v sqrt(T));  r=0.02, v=0.30
  sqrt.approx.f32 %sqrtt, %t;
  div.f32 %ln, %s, %x;
  lg2.approx.f32 %ln, %ln;
  mul.f32 %ln, %ln, 0f3f317218;        // * ln(2)
  fma.rn.f32 %d1, 0f3d851eb8, %t, %ln; // + 0.065*T  (r + v^2/2)
  mul.f32 %tmp, 0f3e99999a, %sqrtt;    // v*sqrt(T)
  div.f32 %d1, %d1, %tmp;
  sub.f32 %d2, %d1, %tmp;

  // CND(d) via Abramowitz-Stegun with K = 1/(1+0.2316419|d|)
  abs.f32 %absd1, %d1;
  fma.rn.f32 %k1, 0f3e6c3604, %absd1, 0f3f800000;
  rcp.approx.f32 %k1, %k1;
  // poly = K (0.31938 + K (-0.35656 + K (1.78148 + K (-1.82126 + K*1.33027))))
  fma.rn.f32 %poly, %k1, 0f3faa456d, 0fbfe91dbd;
  fma.rn.f32 %poly, %poly, %k1, 0f3fe40778;
  fma.rn.f32 %poly, %poly, %k1, 0fbeb68f07;
  fma.rn.f32 %poly, %poly, %k1, 0f3ea385ec;
  mul.f32 %poly, %poly, %k1;
  // exp(-d^2/2)/sqrt(2 pi)
  mul.f32 %expd, %absd1, %absd1;
  mul.f32 %expd, %expd, 0fbf000000;
  mul.f32 %expd, %expd, 0f3fb8aa3b;    // * log2(e)
  ex2.approx.f32 %expd, %expd;
  mul.f32 %expd, %expd, 0f3ecc422a;    // * 1/sqrt(2 pi)
  mul.f32 %cnd1, %expd, %poly;
  sub.f32 %cnd1, 0f3f800000, %cnd1;
  setp.lt.f32 %neg, %d1, 0f00000000;
  sub.f32 %tmp, 0f3f800000, %cnd1;
  selp.f32 %cnd1, %tmp, %cnd1, %neg;

  abs.f32 %absd2, %d2;
  fma.rn.f32 %k2, 0f3e6c3604, %absd2, 0f3f800000;
  rcp.approx.f32 %k2, %k2;
  fma.rn.f32 %poly, %k2, 0f3faa456d, 0fbfe91dbd;
  fma.rn.f32 %poly, %poly, %k2, 0f3fe40778;
  fma.rn.f32 %poly, %poly, %k2, 0fbeb68f07;
  fma.rn.f32 %poly, %poly, %k2, 0f3ea385ec;
  mul.f32 %poly, %poly, %k2;
  mul.f32 %expd, %absd2, %absd2;
  mul.f32 %expd, %expd, 0fbf000000;
  mul.f32 %expd, %expd, 0f3fb8aa3b;
  ex2.approx.f32 %expd, %expd;
  mul.f32 %expd, %expd, 0f3ecc422a;
  mul.f32 %cnd2, %expd, %poly;
  sub.f32 %cnd2, 0f3f800000, %cnd2;
  setp.lt.f32 %neg, %d2, 0f00000000;
  sub.f32 %tmp, 0f3f800000, %cnd2;
  selp.f32 %cnd2, %tmp, %cnd2, %neg;

  // call = S*CND(d1) - X*exp(-rT)*CND(d2)
  mul.f32 %tmp, %t, 0fbca3d70a;        // -r*T
  mul.f32 %tmp, %tmp, 0f3fb8aa3b;
  ex2.approx.f32 %tmp, %tmp;
  mul.f32 %tmp, %tmp, %x;
  mul.f32 %tmp, %tmp, %cnd2;
  mul.f32 %call, %s, %cnd1;
  sub.f32 %call, %call, %tmp;

  ld.param.u64 %pc, [callp];
  add.u64 %a, %pc, %off;
  st.global.f32 [%a], %call;
DONE:
  exit;
}
|}

(* Double-precision host reference; validated with a relative tolerance
   because the kernel uses .approx transcendentals. *)
let reference s x t =
  let r = 0.02 and v = 0.30 in
  let cnd d =
    let k = 1.0 /. (1.0 +. (0.2316419 *. Float.abs d)) in
    let poly =
      k
      *. (0.31938153
         +. (k
            *. (-0.356563782
               +. (k *. (1.781477937 +. (k *. (-1.821255978 +. (k *. 1.330274429))))))))
    in
    let w = exp (-0.5 *. d *. d) /. sqrt (2.0 *. Float.pi) *. poly in
    if d < 0.0 then w else 1.0 -. w
  in
  let d1 = (log (s /. x) +. ((r +. (v *. v /. 2.0)) *. t)) /. (v *. sqrt t) in
  let d2 = d1 -. (v *. sqrt t) in
  (s *. cnd d1) -. (x *. exp (-.r *. t) *. cnd d2)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 256 * scale in
  let sp = Api.malloc dev (4 * n)
  and xp = Api.malloc dev (4 * n)
  and tp = Api.malloc dev (4 * n)
  and callp = Api.malloc dev (4 * n) in
  let ss = List.map (fun v -> 20.0 +. (30.0 *. (v +. 0.5))) (Workload.rand_f32s ~seed:11 n) in
  let xs = List.map (fun v -> 20.0 +. (30.0 *. (v +. 0.5))) (Workload.rand_f32s ~seed:12 n) in
  let ts = List.map (fun v -> 0.25 +. (1.5 *. (v +. 0.5))) (Workload.rand_f32s ~seed:13 n) in
  Api.write_f32s dev sp ss;
  Api.write_f32s dev xp xs;
  Api.write_f32s dev tp ts;
  let expected =
    List.map2 (fun (s, x) t -> reference s x t) (List.combine ss xs) ts
  in
  let block = 128 in
  {
    Workload.args =
      [ Launch.Ptr sp; Launch.Ptr xp; Launch.Ptr tp; Launch.Ptr callp; Launch.I32 n ];
    grid = Launch.dim3 ((n + block - 1) / block);
    block = Launch.dim3 block;
    check =
      (fun dev -> Workload.check_f32s dev ~at:callp ~expected ~tol:5e-3 ~what:"call");
  }

let workload : Workload.t =
  {
    name = "blackscholes";
    paper_name = "BlackScholes";
    category = Workload.Uniform_compute;
    src;
    kernel = "blackscholes";
    setup;
  }
