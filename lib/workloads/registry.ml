(** All benchmark applications, in the order the evaluation figures list
    them. *)

let all : Workload.t list =
  [
    W_vecadd.workload;
    W_throughput.workload;
    W_reduction.workload;
    W_blackscholes.workload;
    W_mersenne.workload;
    W_matrixmul.workload;
    W_cp.workload;
    W_scan.workload;
    W_histogram.workload;
    W_transpose.workload;
    W_nbody.workload;
    W_convolution.workload;
    W_scalarprod.workload;
    W_bitonic.workload;
    W_binomial.workload;
    W_montecarlo.workload;
    W_sobol.workload;
    W_fastwalsh.workload;
    W_dwthaar.workload;
    W_boxfilter.workload;
    W_mriq.workload;
    W_eigenvalues.workload;
    W_sobel.workload;
    W_atomics.workload;
    W_recursivegaussian.workload;
    W_imagedenoising.workload;
    W_threadfence.workload;
  ]

let find name = List.find_opt (fun (w : Workload.t) -> String.equal w.name name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None -> invalid_arg (Fmt.str "unknown workload %s" name)
