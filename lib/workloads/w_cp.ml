(** cp — Coulombic Potential (Parboil): each thread computes the potential
    at one 2-D grid point by summing contributions from all atoms.
    Unrolled, fully convergent, compute-bound; the paper's best case
    (3.9×). *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry cp (.param .u64 atoms, .param .u64 outp, .param .u32 natoms, .param .u32 width)
{
  .reg .u32 %tx, %bx, %ntx, %ty, %by, %gx, %gy, %i, %natoms, %width, %idx;
  .reg .u64 %patoms, %pout, %off, %a;
  .reg .f32 %x, %y, %ax, %ay, %aq, %dx, %dy, %r2, %rinv, %pot;
  .reg .pred %p;

  mov.u32 %tx, %tid.x;
  mov.u32 %bx, %ctaid.x;
  mov.u32 %ntx, %ntid.x;
  mad.lo.u32 %gx, %bx, %ntx, %tx;
  mov.u32 %ty, %tid.y;
  mov.u32 %by, %ctaid.y;
  mov.u32 %ntx, %ntid.y;
  mad.lo.u32 %gy, %by, %ntx, %ty;
  ld.param.u32 %natoms, [natoms];
  ld.param.u32 %width, [width];

  cvt.rn.f32.u32 %x, %gx;
  mul.f32 %x, %x, 0f3dcccccd;       // spacing 0.1
  cvt.rn.f32.u32 %y, %gy;
  mul.f32 %y, %y, 0f3dcccccd;

  ld.param.u64 %patoms, [atoms];
  mov.f32 %pot, 0f00000000;
  mov.u32 %i, 0;
ATOM_LOOP:
  setp.ge.u32 %p, %i, %natoms;
  @%p bra DONE;
  mul.lo.u32 %idx, %i, 12;
  cvt.u64.u32 %off, %idx;
  add.u64 %a, %patoms, %off;
  ld.global.f32 %ax, [%a];
  ld.global.f32 %ay, [%a+4];
  ld.global.f32 %aq, [%a+8];
  sub.f32 %dx, %x, %ax;
  sub.f32 %dy, %y, %ay;
  mul.f32 %r2, %dx, %dx;
  fma.rn.f32 %r2, %dy, %dy, %r2;
  add.f32 %r2, %r2, 0f3a83126f;     // softening 0.001
  rsqrt.approx.f32 %rinv, %r2;
  fma.rn.f32 %pot, %aq, %rinv, %pot;
  add.u32 %i, %i, 1;
  bra ATOM_LOOP;

DONE:
  mad.lo.u32 %idx, %gy, %width, %gx;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  ld.param.u64 %pout, [outp];
  add.u64 %a, %pout, %off;
  st.global.f32 [%a], %pot;
  exit;
}
|}

let reference ~atoms ~width ~height =
  Array.init (width * height) (fun i ->
      let gx = i mod width and gy = i / width in
      let x = float_of_int gx *. 0.1 and y = float_of_int gy *. 0.1 in
      let pot = ref 0.0 in
      List.iter
        (fun (ax, ay, aq) ->
          let dx = x -. ax and dy = y -. ay in
          pot := !pot +. (aq /. sqrt ((dx *. dx) +. (dy *. dy) +. 0.001)))
        atoms;
      !pot)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let width = 16 * scale and height = 16 and natoms = 32 * scale in
  let axs = Workload.rand_f32s ~seed:31 natoms in
  let ays = Workload.rand_f32s ~seed:32 natoms in
  let aqs = Workload.rand_f32s ~seed:33 natoms in
  let atoms =
    List.map2
      (fun (ax, ay) aq -> ((ax +. 0.5) *. 1.6, (ay +. 0.5) *. 1.6, aq))
      (List.combine axs ays) aqs
  in
  let patoms = Api.malloc dev (12 * natoms) in
  List.iteri
    (fun i (ax, ay, aq) -> Api.write_f32s dev (patoms + (12 * i)) [ ax; ay; aq ])
    atoms;
  let pout = Api.malloc dev (4 * width * height) in
  let expected = Array.to_list (reference ~atoms ~width ~height) in
  {
    Workload.args =
      [ Launch.Ptr patoms; Launch.Ptr pout; Launch.I32 natoms; Launch.I32 width ];
    grid = Launch.dim3 (width / 8) ~y:(height / 8);
    block = Launch.dim3 8 ~y:8;
    check = (fun dev -> Workload.check_f32s dev ~at:pout ~expected ~tol:2e-3 ~what:"pot");
  }

let workload : Workload.t =
  {
    name = "cp";
    paper_name = "cp";
    category = Workload.Uniform_compute;
    src;
    kernel = "cp";
    setup;
  }
