(** MersenneTwister-like PRNG workload (CUDA SDK).

    Each thread runs a twisted-feedback generator whose inner loop branches
    on a data-dependent state bit and whose trip count depends on the
    thread index — the uncorrelated per-thread control flow that makes
    dynamic warp formation pathological in the paper (4.9× slowdown under
    DWF; recovered by static warp formation, Fig. 10). *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry mersenne (.param .u64 outp, .param .u32 rounds)
{
  .reg .u32 %r1, %r2, %r3, %gid, %state, %i, %rounds, %count, %bit, %tmp;
  .reg .u64 %pout, %off;
  .reg .pred %p, %odd;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %gid, %r2, %r3, %r1;

  // seed differs per thread
  mad.lo.u32 %state, %gid, 1812433253, 12345;
  ld.param.u32 %rounds, [rounds];
  // trip count is gid-dependent: rounds + (gid % 7)
  rem.u32 %tmp, %gid, 7;
  add.u32 %rounds, %rounds, %tmp;

  mov.u32 %i, 0;
  mov.u32 %count, 0;
LOOP:
  setp.ge.u32 %p, %i, %rounds;
  @%p bra DONE;

  // twisted feedback: branch on the low state bit (uncorrelated!)
  and.b32 %bit, %state, 1;
  shr.u32 %state, %state, 1;
  setp.eq.u32 %odd, %bit, 1;
  @!%odd bra EVEN;
  xor.b32 %state, %state, 0x9908B0DF;
  add.u32 %count, %count, 1;
  bra NEXT;
EVEN:
  mad.lo.u32 %state, %state, 69069, 1;
NEXT:
  add.u32 %i, %i, 1;
  bra LOOP;

DONE:
  xor.b32 %state, %state, %count;
  ld.param.u64 %pout, [outp];
  cvt.u64.u32 %off, %gid;
  shl.b64 %off, %off, 2;
  add.u64 %pout, %pout, %off;
  st.global.u32 [%pout], %state;
  exit;
}
|}

(* The tempering constant; keep in sync with the kernel source. *)
let form_const = 0x9908B0DF

let reference ~rounds gid =
  let mask = 0xFFFFFFFF in
  let state = ref ((gid * 1812433253) + 12345 land mask) in
  state := !state land mask;
  let rounds = rounds + (gid mod 7) in
  let count = ref 0 in
  for _i = 1 to rounds do
    let bit = !state land 1 in
    state := !state lsr 1;
    if bit = 1 then begin
      state := !state lxor form_const;
      incr count
    end
    else state := ((!state * 69069) + 1) land mask
  done;
  !state lxor !count land mask

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 256 * scale in
  let rounds = 24 in
  let outp = Api.malloc dev (4 * n) in
  let expected =
    List.init n (fun gid ->
        let v = reference ~rounds gid in
        if v land 0x80000000 <> 0 then v - (1 lsl 32) else v)
  in
  let block = 64 in
  {
    Workload.args = [ Launch.Ptr outp; Launch.I32 rounds ];
    grid = Launch.dim3 (n / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_i32s dev ~at:outp ~expected ~what:"state");
  }

let workload : Workload.t =
  {
    name = "mersenne";
    paper_name = "MersenneTwister";
    category = Workload.Divergent;
    src;
    kernel = "mersenne";
    setup;
  }
