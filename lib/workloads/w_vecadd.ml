(** VectorAdd: the canonical streaming kernel (CUDA SDK).  Memory-bound,
    fully convergent apart from the tail guard. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %i, %n;
  .reg .u64 %pa, %pb, %pc, %off;
  .reg .f32 %x, %y, %z;
  .reg .pred %p;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %i, %r2, %r3, %r1;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;

  cvt.u64.u32 %off, %i;
  shl.b64 %off, %off, 2;
  ld.param.u64 %pa, [a];
  ld.param.u64 %pb, [b];
  ld.param.u64 %pc, [c];
  add.u64 %pa, %pa, %off;
  add.u64 %pb, %pb, %off;
  add.u64 %pc, %pc, %off;
  ld.global.f32 %x, [%pa];
  ld.global.f32 %y, [%pb];
  add.f32 %z, %x, %y;
  st.global.f32 [%pc], %z;

DONE:
  exit;
}
|}

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 500 * scale in
  let a = Api.malloc dev (4 * n)
  and b = Api.malloc dev (4 * n)
  and c = Api.malloc dev (4 * n) in
  let xs = Workload.rand_f32s ~seed:1 n and ys = Workload.rand_f32s ~seed:2 n in
  Api.write_f32s dev a xs;
  Api.write_f32s dev b ys;
  let expected = List.map2 (fun x y -> Workload.r32 (x +. y)) xs ys in
  let block = 128 in
  {
    Workload.args = [ Launch.Ptr a; Launch.Ptr b; Launch.Ptr c; Launch.I32 n ];
    grid = Launch.dim3 ((n + block - 1) / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:c ~expected ~tol:0.0 ~what:"c");
  }

let workload : Workload.t =
  {
    name = "vecadd";
    paper_name = "VectorAdd";
    category = Workload.Memory_bound;
    src;
    kernel = "vecadd";
    setup;
  }
