(** FastWalshTransform (CUDA SDK): in-place Walsh–Hadamard butterfly over
    a shared-memory tile, one barrier per level; at each level half the
    threads perform the butterfly (tid-dependent divergence). *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let n_elems = 64

let src =
  Fmt.str
    {|
.entry fwt (.param .u64 inp, .param .u64 outp)
{
  .reg .u32 %%tid, %%cta, %%idx, %%step, %%pairm;
  .reg .u64 %%pin, %%pout, %%a, %%off, %%sa, %%sb;
  .reg .f32 %%x, %%y, %%sum;
  .reg .pred %%p, %%q;
  .shared .f32 buf[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%cta, %%ctaid.x;
  mul.lo.u32 %%idx, %%cta, %d;
  add.u32 %%idx, %%idx, %%tid;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pin, [inp];
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%x, [%%a];
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, buf;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%x;
  bar.sync 0;

  mov.u32 %%step, 1;
LEVEL:
  setp.ge.u32 %%p, %%step, %d;
  @@%%p bra OUT;
  and.b32 %%pairm, %%tid, %%step;
  setp.ne.u32 %%q, %%pairm, 0;
  @@%%q bra SKIP;        // only the low element of each pair works
  ld.shared.f32 %%x, [%%sa];
  cvt.u64.u32 %%off, %%step;
  shl.b64 %%off, %%off, 2;
  add.u64 %%sb, %%sa, %%off;
  ld.shared.f32 %%y, [%%sb];
  add.f32 %%sum, %%x, %%y;
  sub.f32 %%y, %%x, %%y;
  st.shared.f32 [%%sa], %%sum;
  st.shared.f32 [%%sb], %%y;
SKIP:
  bar.sync 0;
  shl.b32 %%step, %%step, 1;
  bra LEVEL;

OUT:
  ld.shared.f32 %%x, [%%sa];
  mul.lo.u32 %%idx, %%cta, %d;
  add.u32 %%idx, %%idx, %%tid;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pout, [outp];
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%x;
  exit;
}
|}
    n_elems n_elems n_elems n_elems

let reference xs =
  let r32 = Workload.r32 in
  let buf = Array.of_list xs in
  let step = ref 1 in
  while !step < n_elems do
    for t = 0 to n_elems - 1 do
      if t land !step = 0 then begin
        let x = buf.(t) and y = buf.(t + !step) in
        buf.(t) <- r32 (x +. y);
        buf.(t + !step) <- r32 (x -. y)
      end
    done;
    step := !step * 2
  done;
  Array.to_list buf

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let ncta = 4 * scale in
  let n = ncta * n_elems in
  let inp = Api.malloc dev (4 * n) and outp = Api.malloc dev (4 * n) in
  let xs = Workload.rand_f32s ~seed:121 n in
  Api.write_f32s dev inp xs;
  let rec chunks l =
    if l = [] then []
    else
      let rec take n acc = function
        | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let c, rest = take n_elems [] l in
      c :: chunks rest
  in
  let expected = List.concat_map reference (chunks xs) in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp ];
    grid = Launch.dim3 ncta;
    block = Launch.dim3 n_elems;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"fwt");
  }

let workload : Workload.t =
  {
    name = "fastwalsh";
    paper_name = "FastWalshTransform";
    category = Workload.Sync_heavy;
    src;
    kernel = "fwt";
    setup;
  }
