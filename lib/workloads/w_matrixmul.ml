(** MatrixMul (CUDA SDK): classic 8×8-tiled shared-memory matrix multiply
    with two barriers per tile — sync-heavy, 2-D thread blocks. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let tile = 8

let src =
  Fmt.str
    {|
.entry matrixmul (.param .u64 ap, .param .u64 bp, .param .u64 cp, .param .u32 dim)
{
  .reg .u32 %%tx, %%ty, %%bx, %%by, %%row, %%col, %%k, %%t, %%ntiles, %%dim, %%idx;
  .reg .u64 %%pa, %%pb, %%pc, %%off, %%sa, %%sb, %%base;
  .reg .f32 %%a, %%b, %%acc;
  .reg .pred %%p;
  .shared .f32 tileA[%d];
  .shared .f32 tileB[%d];

  mov.u32 %%tx, %%tid.x;
  mov.u32 %%ty, %%tid.y;
  mov.u32 %%bx, %%ctaid.x;
  mov.u32 %%by, %%ctaid.y;
  ld.param.u32 %%dim, [dim];

  mad.lo.u32 %%row, %%by, %d, %%ty;
  mad.lo.u32 %%col, %%bx, %d, %%tx;
  mov.f32 %%acc, 0f00000000;
  shr.u32 %%ntiles, %%dim, 3;   // dim / tile, tile = 8

  mov.u32 %%t, 0;
TILE_LOOP:
  setp.ge.u32 %%p, %%t, %%ntiles;
  @@%%p bra TILES_DONE;

  // load A[row][t*T+tx] into tileA[ty][tx]
  mul.lo.u32 %%idx, %%t, %d;
  add.u32 %%idx, %%idx, %%tx;
  mad.lo.u32 %%idx, %%row, %%dim, %%idx;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pa, [ap];
  add.u64 %%base, %%pa, %%off;
  ld.global.f32 %%a, [%%base];
  mad.lo.u32 %%idx, %%ty, %d, %%tx;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, tileA;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%a;

  // load B[t*T+ty][col] into tileB[ty][tx]
  mul.lo.u32 %%idx, %%t, %d;
  add.u32 %%idx, %%idx, %%ty;
  mad.lo.u32 %%idx, %%idx, %%dim, %%col;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pb, [bp];
  add.u64 %%base, %%pb, %%off;
  ld.global.f32 %%b, [%%base];
  mad.lo.u32 %%idx, %%ty, %d, %%tx;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sb, tileB;
  add.u64 %%sb, %%sb, %%off;
  st.shared.f32 [%%sb], %%b;

  bar.sync 0;

  mov.u32 %%k, 0;
K_LOOP:
  setp.ge.u32 %%p, %%k, %d;
  @@%%p bra K_DONE;
  mad.lo.u32 %%idx, %%ty, %d, %%k;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, tileA;
  add.u64 %%sa, %%sa, %%off;
  ld.shared.f32 %%a, [%%sa];
  mad.lo.u32 %%idx, %%k, %d, %%tx;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sb, tileB;
  add.u64 %%sb, %%sb, %%off;
  ld.shared.f32 %%b, [%%sb];
  fma.rn.f32 %%acc, %%a, %%b, %%acc;
  add.u32 %%k, %%k, 1;
  bra K_LOOP;
K_DONE:

  bar.sync 0;
  add.u32 %%t, %%t, 1;
  bra TILE_LOOP;

TILES_DONE:
  mad.lo.u32 %%idx, %%row, %%dim, %%col;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pc, [cp];
  add.u64 %%base, %%pc, %%off;
  st.global.f32 [%%base], %%acc;
  exit;
}
|}
    (tile * tile) (tile * tile) tile tile tile tile tile tile tile tile tile

(* Host reference with matching f32 fma rounding order. *)
let reference a b dim =
  let r32 = Workload.r32 in
  Array.init (dim * dim) (fun i ->
      let row = i / dim and col = i mod dim in
      let acc = ref 0.0 in
      for k = 0 to dim - 1 do
        acc := r32 (r32 (a.((row * dim) + k) *. b.((k * dim) + col)) +. !acc)
      done;
      !acc)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let dim = tile * 2 * scale in
  let bytes = 4 * dim * dim in
  let ap = Api.malloc dev bytes
  and bp = Api.malloc dev bytes
  and cp = Api.malloc dev bytes in
  let a = Workload.rand_f32s ~seed:21 (dim * dim) in
  let b = Workload.rand_f32s ~seed:22 (dim * dim) in
  Api.write_f32s dev ap a;
  Api.write_f32s dev bp b;
  let expected =
    Array.to_list (reference (Array.of_list a) (Array.of_list b) dim)
  in
  {
    Workload.args = [ Launch.Ptr ap; Launch.Ptr bp; Launch.Ptr cp; Launch.I32 dim ];
    grid = Launch.dim3 (dim / tile) ~y:(dim / tile);
    block = Launch.dim3 tile ~y:tile;
    check = (fun dev -> Workload.check_f32s dev ~at:cp ~expected ~tol:1e-5 ~what:"C");
  }

let workload : Workload.t =
  {
    name = "matrixmul";
    paper_name = "MatrixMul";
    category = Workload.Sync_heavy;
    src;
    kernel = "matrixmul";
    setup;
  }
