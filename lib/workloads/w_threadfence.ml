(** ThreadFenceReduction (CUDA SDK): single-kernel global reduction.  Each
    CTA reduces its slice in shared memory; the last CTA to finish (decided
    by a global atomic counter) reduces the per-CTA partials.  Mixes
    barriers, global atomics, and a CTA-level divergent "am I last?"
    branch. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let block = 32

let src =
  Fmt.str
    {|
.entry tfreduce (.param .u64 inp, .param .u64 partial, .param .u64 outp,
                 .param .u64 counter, .param .u32 n)
{
  .reg .u32 %%tid, %%cta, %%nt, %%gid, %%n, %%half, %%old, %%ncta, %%i;
  .reg .u64 %%pin, %%pp, %%po, %%pc, %%a, %%off, %%sa, %%sb;
  .reg .f32 %%x, %%y;
  .reg .pred %%p, %%q;
  .shared .f32 buf[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%cta, %%ctaid.x;
  mov.u32 %%nt, %%ntid.x;
  mad.lo.u32 %%gid, %%cta, %%nt, %%tid;
  ld.param.u32 %%n, [n];

  mov.f32 %%x, 0f00000000;
  setp.ge.u32 %%p, %%gid, %%n;
  @@%%p bra PAD;
  ld.param.u64 %%pin, [inp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%x, [%%a];
PAD:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, buf;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%x;
  bar.sync 0;

  mov.u32 %%half, %d;
TREE:
  setp.ge.u32 %%p, %%tid, %%half;
  @@%%p bra SKIP;
  ld.shared.f32 %%x, [%%sa];
  cvt.u64.u32 %%off, %%half;
  shl.b64 %%off, %%off, 2;
  add.u64 %%sb, %%sa, %%off;
  ld.shared.f32 %%y, [%%sb];
  add.f32 %%x, %%x, %%y;
  st.shared.f32 [%%sa], %%x;
SKIP:
  bar.sync 0;
  shr.u32 %%half, %%half, 1;
  setp.gt.u32 %%q, %%half, 0;
  @@%%q bra TREE;

  // thread 0 publishes the CTA partial and takes a ticket
  setp.ne.u32 %%p, %%tid, 0;
  @@%%p bra WAIT;
  mov.u64 %%sa, buf;
  ld.shared.f32 %%x, [%%sa];
  ld.param.u64 %%pp, [partial];
  cvt.u64.u32 %%off, %%cta;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pp, %%off;
  st.global.f32 [%%a], %%x;
  ld.param.u64 %%pc, [counter];
  atom.global.add.u32 %%old, [%%pc], 1;
  // last CTA's thread 0 reduces the partials
  mov.u32 %%ncta, %%nctaid.x;
  sub.u32 %%ncta, %%ncta, 1;
  setp.ne.u32 %%p, %%old, %%ncta;
  @@%%p bra WAIT;
  mov.f32 %%x, 0f00000000;
  mov.u32 %%i, 0;
  mov.u32 %%ncta, %%nctaid.x;
FINAL:
  setp.ge.u32 %%p, %%i, %%ncta;
  @@%%p bra PUBLISH;
  cvt.u64.u32 %%off, %%i;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pp, %%off;
  ld.global.f32 %%y, [%%a];
  add.f32 %%x, %%x, %%y;
  add.u32 %%i, %%i, 1;
  bra FINAL;
PUBLISH:
  ld.param.u64 %%po, [outp];
  st.global.f32 [%%po], %%x;
WAIT:
  exit;
}
|}
    block (block / 2)

(* Soundness note: the "last CTA reduces" idiom relies on partials being
   visible by the time the ticket says all CTAs finished.  Our CTAs run to
   completion sequentially per worker, and workers are simulated in order,
   so the partial of every earlier CTA is in global memory before the last
   ticket — the same guarantee __threadfence gives the original. *)

let cta_sum xs =
  let r32 = Workload.r32 in
  let buf = Array.of_list xs in
  let half = ref (block / 2) in
  while !half > 0 do
    for t = 0 to !half - 1 do
      buf.(t) <- r32 (buf.(t) +. buf.(t + !half))
    done;
    half := !half / 2
  done;
  buf.(0)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let ncta = 4 * scale in
  let n = (ncta * block) - 5 in
  let inp = Api.malloc dev (4 * ncta * block) in
  let partial = Api.malloc dev (4 * ncta) in
  let outp = Api.malloc dev 4 in
  let counter = Api.malloc dev 4 in
  let xs = Workload.rand_f32s ~seed:201 n in
  Api.write_f32s dev inp xs;
  let padded = xs @ List.init ((ncta * block) - n) (fun _ -> 0.0) in
  let rec chunks l =
    if l = [] then []
    else
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let c, rest = take block [] l in
      c :: chunks rest
  in
  let partials = List.map cta_sum (chunks padded) in
  let expected = List.fold_left (fun a b -> Workload.r32 (a +. b)) 0.0 partials in
  {
    Workload.args =
      [ Launch.Ptr inp; Launch.Ptr partial; Launch.Ptr outp; Launch.Ptr counter;
        Launch.I32 n ];
    grid = Launch.dim3 ncta;
    block = Launch.dim3 block;
    check =
      (fun dev -> Workload.check_f32s dev ~at:outp ~expected:[ expected ] ~tol:0.0 ~what:"sum");
  }

let workload : Workload.t =
  {
    name = "threadfence";
    paper_name = "ThreadFenceReduction";
    category = Workload.Sync_heavy;
    src;
    kernel = "tfreduce";
    setup;
  }
