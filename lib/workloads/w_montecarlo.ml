(** MonteCarlo (CUDA SDK): option pricing by simulated price paths.  Each
    thread walks a fixed number of xorshift-driven paths (integer RNG, so
    results are exactly reproducible), accumulates payoffs, and a shared
    tree combines per-thread means.  Uniform trip counts — convergent. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let block = 32
let paths_per_thread = 4
let path_steps = 8

let src =
  Fmt.str
    {|
.entry montecarlo (.param .u64 outp, .param .u32 seed0)
{
  .reg .u32 %%tid, %%cta, %%state, %%pathi, %%stepi, %%half, %%s0;
  .reg .u64 %%po, %%a, %%off, %%sa, %%sb;
  .reg .f32 %%price, %%uf, %%acc, %%other, %%pay;
  .reg .pred %%p, %%q;
  .shared .f32 payoffs[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%cta, %%ctaid.x;
  ld.param.u32 %%s0, [seed0];
  mad.lo.u32 %%state, %%cta, %d, %%tid;
  mad.lo.u32 %%state, %%state, 2654435761, %%s0;

  mov.f32 %%acc, 0f00000000;
  mov.u32 %%pathi, 0;
PATH:
  setp.ge.u32 %%p, %%pathi, %d;
  @@%%p bra REDUCE;
  mov.f32 %%price, 0f42c80000;          // S0 = 100
  mov.u32 %%stepi, 0;
STEP:
  setp.ge.u32 %%p, %%stepi, %d;
  @@%%p bra PATH_DONE;
  // xorshift32
  shl.b32 %%s0, %%state, 13;
  xor.b32 %%state, %%state, %%s0;
  shr.u32 %%s0, %%state, 17;
  xor.b32 %%state, %%state, %%s0;
  shl.b32 %%s0, %%state, 5;
  xor.b32 %%state, %%state, %%s0;
  // u in [0,1): state * 2^-32
  cvt.rn.f32.u32 %%uf, %%state;
  mul.f32 %%uf, %%uf, 0f2f800000;
  // price *= 1 + mu*dt + sig*(u - 0.5)
  sub.f32 %%uf, %%uf, 0f3f000000;
  mul.f32 %%uf, %%uf, 0f3d23d70a;       // sigma step 0.04
  add.f32 %%uf, %%uf, 0f3f804189;       // 1 + mu*dt (mu*dt = 0.001)
  mul.f32 %%price, %%price, %%uf;
  add.u32 %%stepi, %%stepi, 1;
  bra STEP;
PATH_DONE:
  sub.f32 %%pay, %%price, 0f42c60000;   // strike 99
  max.f32 %%pay, %%pay, 0f00000000;
  add.f32 %%acc, %%acc, %%pay;
  add.u32 %%pathi, %%pathi, 1;
  bra PATH;

REDUCE:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, payoffs;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%acc;
  bar.sync 0;
  mov.u32 %%half, %d;
TREE:
  setp.ge.u32 %%p, %%tid, %%half;
  @@%%p bra SKIP;
  ld.shared.f32 %%acc, [%%sa];
  cvt.u64.u32 %%off, %%half;
  shl.b64 %%off, %%off, 2;
  add.u64 %%sb, %%sa, %%off;
  ld.shared.f32 %%other, [%%sb];
  add.f32 %%acc, %%acc, %%other;
  st.shared.f32 [%%sa], %%acc;
SKIP:
  bar.sync 0;
  shr.u32 %%half, %%half, 1;
  setp.gt.u32 %%q, %%half, 0;
  @@%%q bra TREE;

  setp.ne.u32 %%p, %%tid, 0;
  @@%%p bra DONE;
  mov.u64 %%sa, payoffs;
  ld.shared.f32 %%acc, [%%sa];
  mul.f32 %%acc, %%acc, 0f%08x;         // / (block * paths)
  ld.param.u64 %%po, [outp];
  cvt.u64.u32 %%off, %%cta;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%po, %%off;
  st.global.f32 [%%a], %%acc;
DONE:
  exit;
}
|}
    block block paths_per_thread path_steps (block / 2)
    (Int32.to_int
       (Int32.bits_of_float (1.0 /. float_of_int (block * paths_per_thread))))

let reference ~seed0 cta =
  let r32 = Workload.r32 in
  let mask = 0xFFFFFFFF in
  let c1 = Int32.float_of_bits 0x2f800000l in
  let sig_ = Int32.float_of_bits 0x3d23d70al in
  let mu1 = Int32.float_of_bits 0x3f804189l in
  let partial = Array.make block 0.0 in
  for tid = 0 to block - 1 do
    let state = ref ((((cta * block) + tid) * 2654435761 + seed0) land mask) in
    let acc = ref 0.0 in
    for _path = 1 to paths_per_thread do
      let price = ref 100.0 in
      for _step = 1 to path_steps do
        state := (!state lxor (!state lsl 13)) land mask;
        state := !state lxor (!state lsr 17);
        state := (!state lxor (!state lsl 5)) land mask;
        let u = r32 (r32 (float_of_int !state) *. c1) in
        let f = r32 (r32 (r32 (u -. 0.5) *. sig_) +. mu1) in
        price := r32 (!price *. f)
      done;
      let pay = Float.max (r32 (!price -. 99.0)) 0.0 in
      acc := r32 (!acc +. pay)
    done;
    partial.(tid) <- !acc
  done;
  let half = ref (block / 2) in
  while !half > 0 do
    for t = 0 to !half - 1 do
      partial.(t) <- r32 (partial.(t) +. partial.(t + !half))
    done;
    half := !half / 2
  done;
  r32 (partial.(0) *. (1.0 /. float_of_int (block * paths_per_thread)))

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let ncta = 4 * scale in
  let seed0 = 7919 in
  let outp = Api.malloc dev (4 * ncta) in
  let expected = List.init ncta (reference ~seed0) in
  {
    Workload.args = [ Launch.Ptr outp; Launch.I32 seed0 ];
    grid = Launch.dim3 ncta;
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"mc");
  }

let workload : Workload.t =
  {
    name = "montecarlo";
    paper_name = "MonteCarlo";
    category = Workload.Uniform_compute;
    src;
    kernel = "montecarlo";
    setup;
  }
