(** DwtHaar1D (CUDA SDK): one level of the Haar discrete wavelet transform.
    Each thread produces one approximation and one detail coefficient from
    a pair of inputs — streaming and fully convergent except the tail
    guard. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

(* inv_sqrt2 as an f32 constant *)
let inv_sqrt2_bits = 0x3f3504f3

let src =
  Fmt.str
    {|
.entry dwthaar (.param .u64 inp, .param .u64 approxp, .param .u64 detailp, .param .u32 npairs)
{
  .reg .u32 %%r1, %%r2, %%r3, %%gid, %%np, %%idx;
  .reg .u64 %%pin, %%pa, %%pd, %%a, %%off;
  .reg .f32 %%x, %%y, %%s, %%d;
  .reg .pred %%p;

  mov.u32 %%r1, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%r1;
  ld.param.u32 %%np, [npairs];
  setp.ge.u32 %%p, %%gid, %%np;
  @@%%p bra DONE;

  shl.b32 %%idx, %%gid, 1;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pin, [inp];
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%x, [%%a];
  ld.global.f32 %%y, [%%a+4];

  add.f32 %%s, %%x, %%y;
  mul.f32 %%s, %%s, 0f%08x;
  sub.f32 %%d, %%x, %%y;
  mul.f32 %%d, %%d, 0f%08x;

  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pa, [approxp];
  add.u64 %%a, %%pa, %%off;
  st.global.f32 [%%a], %%s;
  ld.param.u64 %%pd, [detailp];
  add.u64 %%a, %%pd, %%off;
  st.global.f32 [%%a], %%d;
DONE:
  exit;
}
|}
    inv_sqrt2_bits inv_sqrt2_bits

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let npairs = 400 * scale in
  let inp = Api.malloc dev (8 * npairs)
  and approxp = Api.malloc dev (4 * npairs)
  and detailp = Api.malloc dev (4 * npairs) in
  let xs = Array.of_list (Workload.rand_f32s ~seed:131 (2 * npairs)) in
  Api.write_f32s dev inp (Array.to_list xs);
  let r32 = Workload.r32 in
  let is2 = Int32.float_of_bits (Int32.of_int inv_sqrt2_bits) in
  let approx =
    List.init npairs (fun i -> r32 (r32 (xs.(2 * i) +. xs.((2 * i) + 1)) *. is2))
  in
  let detail =
    List.init npairs (fun i -> r32 (r32 (xs.(2 * i) -. xs.((2 * i) + 1)) *. is2))
  in
  let block = 128 in
  {
    Workload.args =
      [ Launch.Ptr inp; Launch.Ptr approxp; Launch.Ptr detailp; Launch.I32 npairs ];
    grid = Launch.dim3 ((npairs + block - 1) / block);
    block = Launch.dim3 block;
    check =
      (fun dev ->
        match Workload.check_f32s dev ~at:approxp ~expected:approx ~tol:0.0 ~what:"approx" with
        | Error _ as e -> e
        | Ok () -> Workload.check_f32s dev ~at:detailp ~expected:detail ~tol:0.0 ~what:"detail");
  }

let workload : Workload.t =
  {
    name = "dwthaar";
    paper_name = "DwtHaar1D";
    category = Workload.Memory_bound;
    src;
    kernel = "dwthaar";
    setup;
  }
