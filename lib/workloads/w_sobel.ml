(** SobelFilter (CUDA SDK): 3×3 gradient-magnitude stencil over a 2-D
    image.  Interior threads are convergent; the border clamp diverges.
    Memory-bound with 2-D thread blocks. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry sobel (.param .u64 inp, .param .u64 outp, .param .u32 width, .param .u32 height)
{
  .reg .u32 %tx, %bx, %nt, %ty, %by, %x, %y, %w, %h, %idx, %xm, %xp, %ym, %yp;
  .reg .s32 %sx;
  .reg .u64 %pin, %pout, %a, %off;
  .reg .f32 %gx, %gy, %v, %mag;
  .reg .pred %p;

  mov.u32 %tx, %tid.x;
  mov.u32 %bx, %ctaid.x;
  mov.u32 %nt, %ntid.x;
  mad.lo.u32 %x, %bx, %nt, %tx;
  mov.u32 %ty, %tid.y;
  mov.u32 %by, %ctaid.y;
  mov.u32 %nt, %ntid.y;
  mad.lo.u32 %y, %by, %nt, %ty;
  ld.param.u32 %w, [width];
  ld.param.u32 %h, [height];
  setp.ge.u32 %p, %x, %w;
  @%p bra DONE;
  setp.ge.u32 %p, %y, %h;
  @%p bra DONE;

  // clamped neighbour coordinates
  sub.s32 %sx, %x, 1;
  max.s32 %sx, %sx, 0;
  mov.u32 %xm, %sx;
  add.u32 %xp, %x, 1;
  sub.u32 %idx, %w, 1;
  min.u32 %xp, %xp, %idx;
  sub.s32 %sx, %y, 1;
  max.s32 %sx, %sx, 0;
  mov.u32 %ym, %sx;
  add.u32 %yp, %y, 1;
  sub.u32 %idx, %h, 1;
  min.u32 %yp, %yp, %idx;

  ld.param.u64 %pin, [inp];
  // gx = (right - left) row-weighted; gy = (down - up)
  mad.lo.u32 %idx, %y, %w, %xp;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %a, %pin, %off;
  ld.global.f32 %gx, [%a];
  mad.lo.u32 %idx, %y, %w, %xm;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %a, %pin, %off;
  ld.global.f32 %v, [%a];
  sub.f32 %gx, %gx, %v;
  mad.lo.u32 %idx, %yp, %w, %x;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %a, %pin, %off;
  ld.global.f32 %gy, [%a];
  mad.lo.u32 %idx, %ym, %w, %x;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  add.u64 %a, %pin, %off;
  ld.global.f32 %v, [%a];
  sub.f32 %gy, %gy, %v;

  mul.f32 %mag, %gx, %gx;
  fma.rn.f32 %mag, %gy, %gy, %mag;
  sqrt.approx.f32 %mag, %mag;

  mad.lo.u32 %idx, %y, %w, %x;
  cvt.u64.u32 %off, %idx;
  shl.b64 %off, %off, 2;
  ld.param.u64 %pout, [outp];
  add.u64 %a, %pout, %off;
  st.global.f32 [%a], %mag;
DONE:
  exit;
}
|}

let reference img ~w ~h =
  let r32 = Workload.r32 in
  List.init (w * h) (fun i ->
      let x = i mod w and y = i / w in
      let clamp v lo hi = max lo (min hi v) in
      let at xx yy = img.((yy * w) + xx) in
      let gx = r32 (at (clamp (x + 1) 0 (w - 1)) y -. at (clamp (x - 1) 0 (w - 1)) y) in
      let gy = r32 (at x (clamp (y + 1) 0 (h - 1)) -. at x (clamp (y - 1) 0 (h - 1))) in
      r32 (sqrt (r32 (r32 (gx *. gx) +. r32 (gy *. gy)))))

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let w = 16 * scale and h = 16 in
  let inp = Api.malloc dev (4 * w * h) and outp = Api.malloc dev (4 * w * h) in
  let img = Array.of_list (Workload.rand_f32s ~seed:171 (w * h)) in
  Api.write_f32s dev inp (Array.to_list img);
  let expected = reference img ~w ~h in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 w; Launch.I32 h ];
    grid = Launch.dim3 (w / 8) ~y:(h / 8);
    block = Launch.dim3 8 ~y:8;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:1e-5 ~what:"sobel");
  }

let workload : Workload.t =
  {
    name = "sobel";
    paper_name = "SobelFilter";
    category = Workload.Memory_bound;
    src;
    kernel = "sobel";
    setup;
  }
