(** ConvolutionSeparable (CUDA SDK), row pass: radius-4 1-D convolution
    with coefficients in the constant bank.  Interior threads are fully
    convergent; boundary threads diverge on the edge guards. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let radius = 4

(* f32-exact kernel taps (powers of two), so the host reference matches
   bit-for-bit. *)
let taps = [ 0.0625; 0.125; 0.1875; 0.25; 0.375; 0.25; 0.1875; 0.125; 0.0625 ]

let src =
  Fmt.str
    {|
.const .f32 coeffs[%d] = { %s };

.entry convrow (.param .u64 inp, .param .u64 outp, .param .u32 n)
{
  .reg .u32 %%r1, %%r2, %%r3, %%gid, %%n, %%j, %%idx, %%cidx;
  .reg .u64 %%pin, %%pout, %%a, %%off, %%ca;
  .reg .f32 %%acc, %%v, %%c;
  .reg .pred %%p, %%q;

  mov.u32 %%r1, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%r1;
  ld.param.u32 %%n, [n];
  setp.ge.u32 %%p, %%gid, %%n;
  @@%%p bra DONE;

  ld.param.u64 %%pin, [inp];
  mov.f32 %%acc, 0f00000000;
  mov.u32 %%j, 0;
TAP:
  setp.gt.u32 %%p, %%j, %d;
  @@%%p bra STORE;
  // idx = gid + j - radius; skip taps outside [0, n)
  add.u32 %%idx, %%gid, %%j;
  sub.u32 %%idx, %%idx, %d;
  setp.ge.u32 %%q, %%idx, %%n;      // unsigned: also catches idx < 0
  @@%%q bra NEXT;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%v, [%%a];
  cvt.u64.u32 %%ca, %%j;
  shl.b64 %%ca, %%ca, 2;
  ld.const.f32 %%c, [%%ca];
  fma.rn.f32 %%acc, %%v, %%c, %%acc;
NEXT:
  add.u32 %%j, %%j, 1;
  bra TAP;

STORE:
  ld.param.u64 %%pout, [outp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%acc;
DONE:
  exit;
}
|}
    (List.length taps)
    (String.concat ", " (List.map (Fmt.str "%.10g") taps))
    (2 * radius) radius

let reference xs n =
  let r32 = Workload.r32 in
  let taps = Array.of_list taps in
  List.init n (fun gid ->
      let acc = ref 0.0 in
      for j = 0 to 2 * radius do
        let idx = gid + j - radius in
        if idx >= 0 && idx < n then
          acc := r32 (r32 (xs.(idx) *. taps.(j)) +. !acc)
      done;
      !acc)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 500 * scale in
  let inp = Api.malloc dev (4 * n) and outp = Api.malloc dev (4 * n) in
  let xs = Array.of_list (Workload.rand_f32s ~seed:81 n) in
  Api.write_f32s dev inp (Array.to_list xs);
  let expected = reference xs n in
  let block = 128 in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 n ];
    grid = Launch.dim3 ((n + block - 1) / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"conv");
  }

let workload : Workload.t =
  {
    name = "convolution";
    paper_name = "ConvolutionSeparable";
    category = Workload.Memory_bound;
    src;
    kernel = "convrow";
    setup;
  }
