(** The Table-1 peak-throughput microbenchmark: "back-to-back floating
    point multiply and adds within a heavily unrolled loop launched over
    576 threads" (paper §6).

    Each thread runs [iters] iterations of a loop whose body is [chains]
    independent multiply–add chains, unrolled [unroll] times.  Independent
    chains hide FP latency exactly as Volkov's analysis prescribes; the
    vectorized specialization should therefore saturate the machine's FP
    ports. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let chains = 8
let unroll = 16

(* The kernel source is generated so the unrolled body stays in sync with
   the host-side expected-value computation. *)
let src =
  let buf = Buffer.create 4096 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf ".entry throughput (.param .u64 out, .param .u32 iters)\n{\n";
  pf "  .reg .u32 %%r1, %%r2, %%r3, %%gid, %%i, %%iters;\n";
  pf "  .reg .u64 %%pout, %%off;\n";
  pf "  .reg .f32 %%m, %%s;\n";
  for c = 0 to chains - 1 do
    pf "  .reg .f32 %%a%d;\n" c
  done;
  pf "  .reg .pred %%p;\n";
  pf "  mov.u32 %%r1, %%tid.x;\n";
  pf "  mov.u32 %%r2, %%ctaid.x;\n";
  pf "  mov.u32 %%r3, %%ntid.x;\n";
  pf "  mad.lo.u32 %%gid, %%r2, %%r3, %%r1;\n";
  pf "  ld.param.u32 %%iters, [iters];\n";
  (* seed each chain differently but thread-uniformly cheap *)
  pf "  cvt.rn.f32.u32 %%s, %%gid;\n";
  pf "  mul.f32 %%s, %%s, 0f3727c5ac;\n";
  (* ~1e-5f *)
  pf "  mov.f32 %%m, 0f3f7fff58;\n";
  (* multiplier just under 1.0 keeps values bounded *)
  for c = 0 to chains - 1 do
    pf "  add.f32 %%a%d, %%s, 0f3f8%d0000;\n" c c
  done;
  pf "  mov.u32 %%i, 0;\n";
  pf "LOOP:\n";
  for _u = 1 to unroll do
    for c = 0 to chains - 1 do
      pf "  fma.rn.f32 %%a%d, %%a%d, %%m, 0f38d1b717;\n" c c
    done
  done;
  pf "  add.u32 %%i, %%i, 1;\n";
  pf "  setp.lt.u32 %%p, %%i, %%iters;\n";
  pf "  @@%%p bra LOOP;\n";
  for c = 1 to chains - 1 do
    pf "  add.f32 %%a0, %%a0, %%a%d;\n" c
  done;
  pf "  cvt.u64.u32 %%off, %%gid;\n";
  pf "  shl.b64 %%off, %%off, 2;\n";
  pf "  ld.param.u64 %%pout, [out];\n";
  pf "  add.u64 %%pout, %%pout, %%off;\n";
  pf "  st.global.f32 [%%pout], %%a0;\n";
  pf "  exit;\n}\n";
  Buffer.contents buf

(* Host-side reference, mirroring the kernel's f32 operation order. *)
let expected_for ~iters gid =
  let r32 = Workload.r32 in
  let m = Int32.float_of_bits 0x3f7fff58l in
  let c0 = Int32.float_of_bits 0x38d1b717l in
  let s = r32 (r32 (float_of_int gid) *. Int32.float_of_bits 0x3727c5acl) in
  let a =
    Array.init chains (fun c ->
        r32 (s +. Int32.float_of_bits (Int32.of_string (Fmt.str "0x3f8%d0000" c))))
  in
  for _i = 1 to iters do
    for _u = 1 to unroll do
      for c = 0 to chains - 1 do
        a.(c) <- r32 (r32 (a.(c) *. m) +. c0)
      done
    done
  done;
  let acc = ref a.(0) in
  for c = 1 to chains - 1 do
    acc := r32 (!acc +. a.(c))
  done;
  !acc

let threads = 576
let block = 144

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let iters = 8 * scale in
  let out = Api.malloc dev (4 * threads) in
  let expected = List.init threads (fun gid -> expected_for ~iters gid) in
  {
    Workload.args = [ Launch.Ptr out; Launch.I32 iters ];
    grid = Launch.dim3 (threads / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:out ~expected ~tol:0.0 ~what:"out");
  }

(** FLOPs one launch performs (for GFLOP/s reporting). *)
let flops ~iters = threads * iters * unroll * chains * 2

let workload : Workload.t =
  {
    name = "throughput";
    paper_name = "Throughput";
    category = Workload.Uniform_compute;
    src;
    kernel = "throughput";
    setup;
  }
