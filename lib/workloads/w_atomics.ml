(** SimpleAtomicIntrinsics (CUDA SDK): a bundle of global atomic
    read-modify-writes (add, min, max, exchange, compare-and-swap) hammered
    by every thread.  Exercises the serialized-RMW path of the machine
    model; convergent control flow. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry atomics (.param .u64 cells, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %gid, %old, %v, %n;
  .reg .u64 %pc, %a;
  .reg .pred %p;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %gid, %r2, %r3, %r1;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %gid, %n;
  @%p bra DONE;
  ld.param.u64 %pc, [cells];

  // cells[0] += gid
  atom.global.add.u32 %old, [%pc], %gid;
  // cells[1] = min(cells[1], gid ^ 21)
  xor.b32 %v, %gid, 21;
  add.u64 %a, %pc, 4;
  atom.global.min.s32 %old, [%a], %v;
  // cells[2] = max(cells[2], gid ^ 13)
  xor.b32 %v, %gid, 13;
  add.u64 %a, %pc, 8;
  atom.global.max.s32 %old, [%a], %v;
  // cells[3]: every thread exchanges; sum of (old values + final) is the
  // sum of everything written, so the digest below is order-independent
  add.u64 %a, %pc, 12;
  atom.global.exch.u32 %old, [%a], %gid;
  add.u64 %a, %pc, 16;
  atom.global.add.u32 %old, [%a], %old;
  // cells[5]: CAS ladder — only the thread seeing the expected value wins
  add.u64 %a, %pc, 20;
  atom.global.cas.u32 %old, [%a], %gid, 4096;
DONE:
  exit;
}
|}

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 128 * scale in
  let cells = Api.malloc dev 24 in
  (* i32 sentinels: large-but-representable bounds *)
  Api.write_i32s dev cells [ 0; 0x7FFFFFFF; -0x7FFFFFFF; 999_999; 0; 0 ];
  let sum = n * (n - 1) / 2 in
  let mins = List.init n (fun g -> g lxor 21) in
  let maxs = List.init n (fun g -> g lxor 13) in
  let block = 32 in
  {
    Workload.args = [ Launch.Ptr cells; Launch.I32 n ];
    grid = Launch.dim3 (n / block);
    block = Launch.dim3 block;
    check =
      (fun dev ->
        match Api.read_i32s dev cells 6 with
        | [ c0; c1; c2; c3; c4; c5 ] ->
            (* exchange order is nondeterministic across warps, but
               old-values + the final cell always sum to the initial value
               plus every gid written *)
            if c0 <> sum then Error (Fmt.str "add: %d <> %d" c0 sum)
            else if c1 <> List.fold_left min 0x7FFFFFFF mins then Error "min wrong"
            else if c2 <> List.fold_left max (-0x7FFFFFFF) maxs then Error "max wrong"
            else if c3 + c4 <> 999_999 + sum then
              Error (Fmt.str "exch digest: %d" (c3 + c4))
            else if c5 <> 4096 then Error "cas: winner should flip cell to 4096"
            else Ok ()
        | _ -> Error "read failed")
  }

let workload : Workload.t =
  {
    name = "atomics";
    paper_name = "SimpleAtomicIntrinsics";
    category = Workload.Memory_bound;
    src;
    kernel = "atomics";
    setup;
  }
