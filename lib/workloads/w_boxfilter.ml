(** BoxFilter (CUDA SDK): radius-8 sliding-window mean with edge clamping.
    Memory-bound with frequent re-loads; edge threads diverge on the clamp
    (the paper's ≈1.0× class). *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let radius = 8

let src =
  Fmt.str
    {|
.entry boxfilter (.param .u64 inp, .param .u64 outp, .param .u32 n)
{
  .reg .u32 %%r1, %%r2, %%r3, %%gid, %%n, %%j, %%idx, %%nm1;
  .reg .s32 %%sidx;
  .reg .u64 %%pin, %%pout, %%a, %%off;
  .reg .f32 %%acc, %%v;
  .reg .pred %%p;

  mov.u32 %%r1, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%r1;
  ld.param.u32 %%n, [n];
  setp.ge.u32 %%p, %%gid, %%n;
  @@%%p bra DONE;

  ld.param.u64 %%pin, [inp];
  sub.u32 %%nm1, %%n, 1;
  mov.f32 %%acc, 0f00000000;
  mov.u32 %%j, 0;
TAP:
  setp.gt.u32 %%p, %%j, %d;
  @@%%p bra STORE;
  // clamped index: min(max(gid + j - radius, 0), n-1) in signed arithmetic
  add.u32 %%idx, %%gid, %%j;
  sub.s32 %%sidx, %%idx, %d;
  max.s32 %%sidx, %%sidx, 0;
  min.s32 %%sidx, %%sidx, %%nm1;
  cvt.u64.u32 %%off, %%sidx;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%v, [%%a];
  add.f32 %%acc, %%acc, %%v;
  add.u32 %%j, %%j, 1;
  bra TAP;

STORE:
  mul.f32 %%acc, %%acc, 0f%08x;   // 1 / (2*radius + 1)
  ld.param.u64 %%pout, [outp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%acc;
DONE:
  exit;
}
|}
    (2 * radius) radius
    (Int32.to_int (Int32.bits_of_float (1.0 /. float_of_int ((2 * radius) + 1))))

let reference xs n =
  let r32 = Workload.r32 in
  let inv = Int32.float_of_bits (Int32.bits_of_float (1.0 /. float_of_int ((2 * radius) + 1))) in
  List.init n (fun gid ->
      let acc = ref 0.0 in
      for j = 0 to 2 * radius do
        let idx = max 0 (min (n - 1) (gid + j - radius)) in
        acc := r32 (!acc +. xs.(idx))
      done;
      r32 (!acc *. inv))

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 400 * scale in
  let inp = Api.malloc dev (4 * n) and outp = Api.malloc dev (4 * n) in
  let xs = Array.of_list (Workload.rand_f32s ~seed:141 n) in
  Api.write_f32s dev inp (Array.to_list xs);
  let expected = reference xs n in
  let block = 128 in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 n ];
    grid = Launch.dim3 ((n + block - 1) / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"box");
  }

let workload : Workload.t =
  {
    name = "boxfilter";
    paper_name = "BoxFilter";
    category = Workload.Memory_bound;
    src;
    kernel = "boxfilter";
    setup;
  }
