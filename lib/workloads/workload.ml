(** Benchmark-application harness.

    Each workload mirrors one of the CUDA SDK / Parboil applications the
    paper evaluates: a kernel in the PTX subset, host-side input setup, and
    a host-computed expected output so results are validated independently
    of both the oracle emulator and the vectorizing pipeline.

    [category] records the control-flow/synchronization character the paper
    ascribes to the application, which is what the figure shapes depend
    on. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

type category =
  | Uniform_compute  (** unrolled, convergent, compute-bound (cp, BinomialOptions) *)
  | Memory_bound  (** streaming, little arithmetic (BoxFilter, ScalarProd) *)
  | Sync_heavy  (** frequent CTA barriers (MatrixMul, Reduction, Scan) *)
  | Divergent  (** irregular control flow (MersenneTwister, mri-q) *)

let category_name = function
  | Uniform_compute -> "uniform-compute"
  | Memory_bound -> "memory-bound"
  | Sync_heavy -> "sync-heavy"
  | Divergent -> "divergent"

(** A prepared launch: inputs are in device memory; [check] validates the
    outputs against host-computed expectations. *)
type instance = {
  args : Launch.arg list;
  grid : Launch.dim3;
  block : Launch.dim3;
  check : Api.device -> (unit, string) result;
}

type t = {
  name : string;
  paper_name : string;  (** application name as the paper's figures label it *)
  category : category;
  src : string;
  kernel : string;
  setup : ?scale:int -> Api.device -> instance;
      (** [scale] grows the problem size; 1 = test-sized default *)
}

(* --- check helpers --- *)

let check_f32s dev ~at ~expected ~tol ~what : (unit, string) result =
  let actual = Api.read_f32s dev at (List.length expected) in
  let rec go i ex ac =
    match (ex, ac) with
    | [], [] -> Ok ()
    | e :: ex, a :: ac ->
        let err = Float.abs (a -. e) in
        let rel = err /. Float.max 1e-6 (Float.abs e) in
        if err > tol && rel > tol then
          Error (Fmt.str "%s[%d]: expected %g, got %g" what i e a)
        else go (i + 1) ex ac
    | _ -> Error "length mismatch"
  in
  go 0 expected actual

let check_i32s dev ~at ~expected ~what : (unit, string) result =
  let actual = Api.read_i32s dev at (List.length expected) in
  let rec go i ex ac =
    match (ex, ac) with
    | [], [] -> Ok ()
    | e :: ex, a :: ac ->
        if a <> e then Error (Fmt.str "%s[%d]: expected %d, got %d" what i e a)
        else go (i + 1) ex ac
    | _ -> Error "length mismatch"
  in
  go 0 expected actual

(** Deterministic pseudo-random input data (xorshift), so runs are
    reproducible without any global RNG state.  Values are exactly
    representable in f32 so host-side references operating in rounded
    single precision match device contents bit for bit. *)
let rand_f32s ~seed n =
  let s = ref (Int64.of_int (seed * 2654435761 + 12345)) in
  List.init n (fun _ ->
      s := Int64.logxor !s (Int64.shift_left !s 13);
      s := Int64.logxor !s (Int64.shift_right_logical !s 7);
      s := Int64.logxor !s (Int64.shift_left !s 17);
      let m = Int64.to_int (Int64.logand !s 0xFFFFFFL) in
      Scalar_ops.round_f32 ((float_of_int m /. float_of_int 0xFFFFFF) -. 0.5))

let rand_i32s ~seed ~bound n =
  let s = ref (Int64.of_int (seed * 2654435761 + 99991)) in
  List.init n (fun _ ->
      s := Int64.logxor !s (Int64.shift_left !s 13);
      s := Int64.logxor !s (Int64.shift_right_logical !s 7);
      s := Int64.logxor !s (Int64.shift_left !s 17);
      Int64.to_int (Int64.unsigned_rem !s (Int64.of_int bound)))

(** f32 rounding helper for host-side expected-value computation: keeps the
    host reference in single precision like the kernel. *)
let r32 = Scalar_ops.round_f32
