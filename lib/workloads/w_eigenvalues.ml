(** Eigenvalues (CUDA SDK): bisection for eigenvalues of a symmetric
    tridiagonal matrix.  Each thread refines one eigenvalue interval; the
    inner Sturm-sequence count has a data-dependent sign test per matrix
    row and the bisection trip count differs per interval — the archetypal
    divergent numerical kernel. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let matrix_n = 24

let src =
  Fmt.str
    {|
.entry eigen (.param .u64 diag, .param .u64 offd, .param .u64 outp, .param .u32 iters)
{
  .reg .u32 %%r1, %%r2, %%r3, %%gid, %%i, %%count, %%iters, %%it, %%idx;
  .reg .u64 %%pd, %%po, %%pout, %%a, %%off;
  .reg .f32 %%lo, %%hi, %%mid, %%d, %%e, %%q, %%tmp;
  .reg .pred %%p, %%neg;

  mov.u32 %%r1, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%r1;
  ld.param.u32 %%iters, [iters];
  ld.param.u64 %%pd, [diag];
  ld.param.u64 %%po, [offd];

  // initial interval from Gershgorin-ish bounds, staggered per thread
  cvt.rn.f32.u32 %%tmp, %%gid;
  mul.f32 %%tmp, %%tmp, 0f3c23d70a;   // 0.01 * gid
  mov.f32 %%lo, 0fc0800000;           // -4.0
  add.f32 %%lo, %%lo, %%tmp;
  mov.f32 %%hi, 0f40800000;           // +4.0
  add.f32 %%hi, %%hi, %%tmp;

  mov.u32 %%it, 0;
BISECT:
  setp.ge.u32 %%p, %%it, %%iters;
  @@%%p bra DONE;
  add.f32 %%mid, %%lo, %%hi;
  mul.f32 %%mid, %%mid, 0f3f000000;

  // Sturm count: number of eigenvalues below mid
  mov.u32 %%count, 0;
  mov.f32 %%q, 0f3f800000;
  mov.u32 %%i, 0;
STURM:
  setp.ge.u32 %%p, %%i, %d;
  @@%%p bra STURM_DONE;
  mul.lo.u32 %%idx, %%i, 4;
  cvt.u64.u32 %%off, %%idx;
  add.u64 %%a, %%pd, %%off;
  ld.global.f32 %%d, [%%a];
  add.u64 %%a, %%po, %%off;
  ld.global.f32 %%e, [%%a];
  // q = d - mid - e*e/q  (guard tiny q)
  abs.f32 %%tmp, %%q;
  setp.lt.f32 %%neg, %%tmp, 0f2edbe6ff;   // 1e-10
  @@%%neg bra TINY;
  mul.f32 %%tmp, %%e, %%e;
  div.f32 %%tmp, %%tmp, %%q;
  sub.f32 %%q, %%d, %%tmp;
  sub.f32 %%q, %%q, %%mid;
  bra QDONE;
TINY:
  sub.f32 %%q, %%d, %%mid;
QDONE:
  setp.lt.f32 %%neg, %%q, 0f00000000;
  @@!%%neg bra POS;
  add.u32 %%count, %%count, 1;
POS:
  add.u32 %%i, %%i, 1;
  bra STURM;
STURM_DONE:

  // shrink the interval towards the (gid mod n)-th eigenvalue
  rem.u32 %%idx, %%gid, %d;
  setp.gt.u32 %%p, %%count, %%idx;
  @@%%p bra GO_LO;
  mov.f32 %%lo, %%mid;
  bra NEXT;
GO_LO:
  mov.f32 %%hi, %%mid;
NEXT:
  add.u32 %%it, %%it, 1;
  bra BISECT;

DONE:
  add.f32 %%mid, %%lo, %%hi;
  mul.f32 %%mid, %%mid, 0f3f000000;
  ld.param.u64 %%pout, [outp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%mid;
  exit;
}
|}
    matrix_n matrix_n

let reference ~diag ~offd ~iters gid =
  let r32 = Workload.r32 in
  let lo = ref (r32 (-4.0 +. r32 (r32 (float_of_int gid) *. Int32.float_of_bits 0x3c23d70al))) in
  let hi = ref (r32 (4.0 +. r32 (r32 (float_of_int gid) *. Int32.float_of_bits 0x3c23d70al))) in
  for _it = 1 to iters do
    let mid = r32 (r32 (!lo +. !hi) *. 0.5) in
    let count = ref 0 in
    let q = ref 1.0 in
    for i = 0 to matrix_n - 1 do
      let d = diag.(i) and e = offd.(i) in
      if Float.abs !q < Int32.float_of_bits 0x2edbe6ffl then q := r32 (d -. mid)
      else begin
        let t = r32 (r32 (e *. e) /. !q) in
        q := r32 (r32 (d -. t) -. mid)
      end;
      if !q < 0.0 then incr count
    done;
    if !count > gid mod matrix_n then hi := mid else lo := mid
  done;
  r32 (r32 (!lo +. !hi) *. 0.5)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let nthreads = 64 * scale in
  let iters = 12 in
  let diag = Array.of_list (List.map (fun v -> v *. 4.0) (Workload.rand_f32s ~seed:161 matrix_n)) in
  let offd = Array.of_list (Workload.rand_f32s ~seed:162 matrix_n) in
  let diag = Array.map Workload.r32 diag in
  let pd = Api.malloc dev (4 * matrix_n)
  and po = Api.malloc dev (4 * matrix_n)
  and pout = Api.malloc dev (4 * nthreads) in
  Api.write_f32s dev pd (Array.to_list diag);
  Api.write_f32s dev po (Array.to_list offd);
  let expected = List.init nthreads (reference ~diag ~offd ~iters) in
  let block = 64 in
  {
    Workload.args = [ Launch.Ptr pd; Launch.Ptr po; Launch.Ptr pout; Launch.I32 iters ];
    grid = Launch.dim3 (nthreads / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:pout ~expected ~tol:1e-4 ~what:"eig");
  }

let workload : Workload.t =
  {
    name = "eigenvalues";
    paper_name = "Eigenvalues";
    category = Workload.Divergent;
    src;
    kernel = "eigen";
    setup;
  }
