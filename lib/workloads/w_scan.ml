(** Scan (CUDA SDK): Hillis–Steele inclusive prefix sum per CTA in shared
    memory, double-buffered, one barrier per step — sync-heavy with a
    tid-dependent guard each round. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let block = 64

let src =
  Fmt.str
    {|
.entry scan (.param .u64 inp, .param .u64 outp)
{
  .reg .u32 %%tid, %%gid, %%r2, %%r3, %%offset, %%idx;
  .reg .u64 %%pin, %%pout, %%a, %%off, %%src, %%dst, %%tmp;
  .reg .f32 %%x, %%y;
  .reg .pred %%p, %%q;
  .shared .f32 buf0[%d];
  .shared .f32 buf1[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%tid;

  ld.param.u64 %%pin, [inp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%x, [%%a];
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%src, buf0;
  mov.u64 %%dst, buf1;
  add.u64 %%a, %%src, %%off;
  st.shared.f32 [%%a], %%x;
  bar.sync 0;

  mov.u32 %%offset, 1;
STEP:
  setp.ge.u32 %%p, %%offset, %d;
  @@%%p bra DONE;

  // read own value (and neighbour when in range) from src buffer
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%src, %%off;
  ld.shared.f32 %%x, [%%a];
  setp.lt.u32 %%q, %%tid, %%offset;
  @@%%q bra NOADD;
  sub.u32 %%idx, %%tid, %%offset;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%src, %%off;
  ld.shared.f32 %%y, [%%a];
  add.f32 %%x, %%x, %%y;
NOADD:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%dst, %%off;
  st.shared.f32 [%%a], %%x;
  bar.sync 0;

  mov.u64 %%tmp, %%src;
  mov.u64 %%src, %%dst;
  mov.u64 %%dst, %%tmp;
  shl.b32 %%offset, %%offset, 1;
  bra STEP;

DONE:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%src, %%off;
  ld.shared.f32 %%x, [%%a];
  ld.param.u64 %%pout, [outp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%x;
  exit;
}
|}
    block block block

(* Host reference reproducing the double-buffered rounding order. *)
let cta_scan xs =
  let r32 = Workload.r32 in
  let src = Array.of_list xs in
  let dst = Array.make block 0.0 in
  let rec go src dst offset =
    if offset >= block then src
    else begin
      for t = 0 to block - 1 do
        if t < offset then dst.(t) <- src.(t)
        else dst.(t) <- r32 (src.(t) +. src.(t - offset))
      done;
      go dst src (offset * 2)
    end
  in
  Array.to_list (go src dst 1)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let ncta = 4 * scale in
  let n = ncta * block in
  let inp = Api.malloc dev (4 * n) and outp = Api.malloc dev (4 * n) in
  let xs = Workload.rand_f32s ~seed:41 n in
  Api.write_f32s dev inp xs;
  let rec chunks l =
    if l = [] then []
    else
      let rec take n acc = function
        | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let c, rest = take block [] l in
      c :: chunks rest
  in
  let expected = List.concat_map cta_scan (chunks xs) in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp ];
    grid = Launch.dim3 ncta;
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"scan");
  }

let workload : Workload.t =
  {
    name = "scan";
    paper_name = "Scan";
    category = Workload.Sync_heavy;
    src;
    kernel = "scan";
    setup;
  }
