(** mri-q (Parboil): Q-matrix computation for non-Cartesian MRI
    reconstruction.  Each voxel accumulates sin/cos contributions from the
    k-space samples; samples with negligible magnitude are skipped, which
    makes the inner loop's control flow data-dependent per thread — the
    irregularity the paper blames for mri-q's slowdown under dynamic warp
    formation. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let src =
  {|
.entry mriq (.param .u64 kvals, .param .u64 xyz, .param .u64 qrp, .param .u64 qip,
             .param .u32 nk, .param .u32 nx)
{
  .reg .u32 %r1, %r2, %r3, %gid, %k, %nk, %nx, %idx;
  .reg .u64 %pk, %px, %pqr, %pqi, %a, %off;
  .reg .f32 %x, %y, %z, %kx, %ky, %kz, %phi, %arg, %qr, %qi, %c, %s;
  .reg .pred %p, %skip;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %gid, %r2, %r3, %r1;
  ld.param.u32 %nx, [nx];
  setp.ge.u32 %p, %gid, %nx;
  @%p bra DONE;

  ld.param.u64 %px, [xyz];
  mul.lo.u32 %idx, %gid, 12;
  cvt.u64.u32 %off, %idx;
  add.u64 %a, %px, %off;
  ld.global.f32 %x, [%a];
  ld.global.f32 %y, [%a+4];
  ld.global.f32 %z, [%a+8];

  ld.param.u32 %nk, [nk];
  ld.param.u64 %pk, [kvals];
  mov.f32 %qr, 0f00000000;
  mov.f32 %qi, 0f00000000;
  mov.u32 %k, 0;
KLOOP:
  setp.ge.u32 %p, %k, %nk;
  @%p bra STORE;
  mul.lo.u32 %idx, %k, 16;
  cvt.u64.u32 %off, %idx;
  add.u64 %a, %pk, %off;
  ld.global.f32 %phi, [%a+12];
  // importance cut: skip samples whose contribution at THIS voxel is
  // negligible (|phi * x| < 0.0625) — per-thread, uncorrelated divergence
  mul.f32 %arg, %phi, %x;
  abs.f32 %arg, %arg;
  setp.lt.f32 %skip, %arg, 0f3d800000;
  @%skip bra NEXT;
  ld.global.f32 %kx, [%a];
  ld.global.f32 %ky, [%a+4];
  ld.global.f32 %kz, [%a+8];
  mul.f32 %arg, %kx, %x;
  fma.rn.f32 %arg, %ky, %y, %arg;
  fma.rn.f32 %arg, %kz, %z, %arg;
  mul.f32 %arg, %arg, 0f40c90fdb;   // 2*pi
  cos.approx.f32 %c, %arg;
  sin.approx.f32 %s, %arg;
  fma.rn.f32 %qr, %phi, %c, %qr;
  fma.rn.f32 %qi, %phi, %s, %qi;
NEXT:
  add.u32 %k, %k, 1;
  bra KLOOP;

STORE:
  cvt.u64.u32 %off, %gid;
  shl.b64 %off, %off, 2;
  ld.param.u64 %pqr, [qrp];
  add.u64 %a, %pqr, %off;
  st.global.f32 [%a], %qr;
  ld.param.u64 %pqi, [qip];
  add.u64 %a, %pqi, %off;
  st.global.f32 [%a], %qi;
DONE:
  exit;
}
|}

let reference ~samples ~voxels =
  List.map
    (fun (x, y, z) ->
      let qr = ref 0.0 and qi = ref 0.0 in
      List.iter
        (fun (kx, ky, kz, phi) ->
          if Float.abs (Workload.r32 (phi *. x)) >= 0.0625 then begin
            let arg = 2.0 *. Float.pi *. ((kx *. x) +. (ky *. y) +. (kz *. z)) in
            qr := !qr +. (phi *. cos arg);
            qi := !qi +. (phi *. sin arg)
          end)
        samples;
      (!qr, !qi))
    voxels

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let nk = 64 * scale and nx = 128 * scale in
  (* indexing with List.nth per element is quadratic in the problem
     size; zip through arrays instead *)
  let kx = Array.of_list (Workload.rand_f32s ~seed:151 nk) in
  let ky = Array.of_list (Workload.rand_f32s ~seed:152 nk) in
  let kz = Array.of_list (Workload.rand_f32s ~seed:153 nk) in
  let phi = Array.of_list (Workload.rand_f32s ~seed:154 nk) in
  let samples = List.init nk (fun i -> (kx.(i), ky.(i), kz.(i), phi.(i))) in
  let pk = Api.malloc dev (16 * nk) in
  List.iteri
    (fun i (a, b, c, d) -> Api.write_f32s dev (pk + (16 * i)) [ a; b; c; d ])
    samples;
  let vx = Array.of_list (Workload.rand_f32s ~seed:155 nx) in
  let vy = Array.of_list (Workload.rand_f32s ~seed:156 nx) in
  let vz = Array.of_list (Workload.rand_f32s ~seed:157 nx) in
  let voxels = List.init nx (fun i -> (vx.(i), vy.(i), vz.(i))) in
  let px = Api.malloc dev (12 * nx) in
  List.iteri (fun i (a, b, c) -> Api.write_f32s dev (px + (12 * i)) [ a; b; c ]) voxels;
  let qrp = Api.malloc dev (4 * nx) and qip = Api.malloc dev (4 * nx) in
  let expected = reference ~samples ~voxels in
  let block = 64 in
  {
    Workload.args =
      [ Launch.Ptr pk; Launch.Ptr px; Launch.Ptr qrp; Launch.Ptr qip;
        Launch.I32 nk; Launch.I32 nx ];
    grid = Launch.dim3 (nx / block);
    block = Launch.dim3 block;
    check =
      (fun dev ->
        match
          Workload.check_f32s dev ~at:qrp ~expected:(List.map fst expected) ~tol:5e-3
            ~what:"Qr"
        with
        | Error _ as e -> e
        | Ok () ->
            Workload.check_f32s dev ~at:qip ~expected:(List.map snd expected) ~tol:5e-3
              ~what:"Qi");
  }

let workload : Workload.t =
  {
    name = "mriq";
    paper_name = "mri-q";
    category = Workload.Divergent;
    src;
    kernel = "mriq";
    setup;
  }
