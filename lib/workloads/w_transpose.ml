(** Transpose (CUDA SDK): tiled matrix transpose staged through shared
    memory with one barrier — the classic memory-bound kernel. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let tile = 8

let src =
  Fmt.str
    {|
.entry transpose (.param .u64 inp, .param .u64 outp, .param .u32 width, .param .u32 height)
{
  .reg .u32 %%tx, %%ty, %%bx, %%by, %%x, %%y, %%ox, %%oy, %%idx, %%width, %%height;
  .reg .u64 %%pin, %%pout, %%a, %%off, %%sa;
  .reg .f32 %%v;
  .shared .f32 tilebuf[%d];

  mov.u32 %%tx, %%tid.x;
  mov.u32 %%ty, %%tid.y;
  mov.u32 %%bx, %%ctaid.x;
  mov.u32 %%by, %%ctaid.y;
  ld.param.u32 %%width, [width];
  ld.param.u32 %%height, [height];

  mad.lo.u32 %%x, %%bx, %d, %%tx;
  mad.lo.u32 %%y, %%by, %d, %%ty;
  mad.lo.u32 %%idx, %%y, %%width, %%x;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pin, [inp];
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%v, [%%a];

  mad.lo.u32 %%idx, %%ty, %d, %%tx;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, tilebuf;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%v;
  bar.sync 0;

  // write transposed: out[(bx*T+ty') * height + by*T+tx'] from tile[tx'][ty']
  mad.lo.u32 %%ox, %%by, %d, %%tx;
  mad.lo.u32 %%oy, %%bx, %d, %%ty;
  mad.lo.u32 %%idx, %%tx, %d, %%ty;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, tilebuf;
  add.u64 %%sa, %%sa, %%off;
  ld.shared.f32 %%v, [%%sa];
  mad.lo.u32 %%idx, %%oy, %%height, %%ox;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pout, [outp];
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%v;
  exit;
}
|}
    (tile * tile) tile tile tile tile tile tile

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let width = tile * 2 * scale and height = tile * 2 in
  let n = width * height in
  let inp = Api.malloc dev (4 * n) and outp = Api.malloc dev (4 * n) in
  let xs = Array.of_list (Workload.rand_f32s ~seed:61 n) in
  Api.write_f32s dev inp (Array.to_list xs);
  let expected =
    List.init n (fun i ->
        let ox = i mod height and oy = i / height in
        xs.((ox * width) + oy))
  in
  {
    Workload.args =
      [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 width; Launch.I32 height ];
    grid = Launch.dim3 (width / tile) ~y:(height / tile);
    block = Launch.dim3 tile ~y:tile;
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:0.0 ~what:"T");
  }

let workload : Workload.t =
  {
    name = "transpose";
    paper_name = "Transpose";
    category = Workload.Memory_bound;
    src;
    kernel = "transpose";
    setup;
  }
