(** BinomialOptions (CUDA SDK): binomial-tree option pricing by backward
    induction, one option per CTA, one barrier per level.  Uniform control
    flow with an unrolled-style inner loop — the paper reports 2.25×. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let steps = 64 (* = block size; thread i owns node i *)

let src =
  Fmt.str
    {|
.entry binomial (.param .u64 sp, .param .u64 xp, .param .u64 outp)
{
  .reg .u32 %%tid, %%cta, %%lvl, %%i2;
  .reg .u64 %%ps, %%px, %%po, %%a, %%off, %%sa, %%sb;
  .reg .f32 %%s, %%x, %%u, %%exp_arg, %%leaf, %%va, %%vb, %%payoff;
  .reg .pred %%p, %%q;
  .shared .f32 vals[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%cta, %%ctaid.x;
  cvt.u64.u32 %%off, %%cta;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%ps, [sp];
  add.u64 %%a, %%ps, %%off;
  ld.global.f32 %%s, [%%a];
  ld.param.u64 %%px, [xp];
  add.u64 %%a, %%px, %%off;
  ld.global.f32 %%x, [%%a];

  // leaf value: payoff of S * exp(vsd * (2*tid - steps)) against X
  cvt.rn.f32.u32 %%u, %%tid;
  mul.f32 %%u, %%u, 0f40000000;
  sub.f32 %%exp_arg, %%u, 0f%08x;           // 2*tid - steps
  mul.f32 %%exp_arg, %%exp_arg, 0f3d4ccccd; // vsd = 0.05
  mul.f32 %%exp_arg, %%exp_arg, 0f3fb8aa3b; // * log2(e)
  ex2.approx.f32 %%exp_arg, %%exp_arg;
  mul.f32 %%leaf, %%s, %%exp_arg;
  sub.f32 %%payoff, %%leaf, %%x;
  max.f32 %%payoff, %%payoff, 0f00000000;

  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, vals;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%payoff;
  bar.sync 0;

  // backward induction: V[i] = (pu*V[i+1] + pd*V[i]) * df
  mov.u32 %%lvl, %d;
LEVEL:
  setp.eq.u32 %%p, %%lvl, 0;
  @@%%p bra PRICED;
  setp.ge.u32 %%q, %%tid, %%lvl;
  @@%%q bra SKIP;
  ld.shared.f32 %%va, [%%sa];
  add.u64 %%sb, %%sa, 4;
  ld.shared.f32 %%vb, [%%sb];
  mul.f32 %%vb, %%vb, 0f3f028f5c;     // pu = 0.51
  fma.rn.f32 %%va, %%va, 0f3efae148, %%vb;  // pd = 0.49
  mul.f32 %%va, %%va, 0f3f7fbe77;     // df = 0.999
SKIP:
  bar.sync 0;
  @@%%q bra NOSTORE;
  st.shared.f32 [%%sa], %%va;
NOSTORE:
  bar.sync 0;
  sub.u32 %%lvl, %%lvl, 1;
  bra LEVEL;

PRICED:
  setp.ne.u32 %%p, %%tid, 0;
  @@%%p bra DONE;
  mov.u64 %%sa, vals;
  ld.shared.f32 %%va, [%%sa];
  ld.param.u64 %%po, [outp];
  cvt.u64.u32 %%off, %%cta;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%po, %%off;
  st.global.f32 [%%a], %%va;
DONE:
  exit;
}
|}
    (steps + 1)
    (Int32.to_int (Int32.bits_of_float (float_of_int steps)))
    steps

let reference s x =
  let r32 = Workload.r32 in
  let log2e = Int32.float_of_bits 0x3fb8aa3bl in
  let vsd = Int32.float_of_bits 0x3d4ccccdl in
  let pu = Int32.float_of_bits 0x3f028f5cl in
  let pd = Int32.float_of_bits 0x3efae148l in
  let df = Int32.float_of_bits 0x3f7fbe77l in
  let vals =
    Array.init (steps + 1) (fun i ->
        if i > steps then 0.0
        else begin
          let u = r32 (r32 (float_of_int i) *. 2.0) in
          let e = r32 (r32 (r32 (u -. float_of_int steps) *. vsd) *. log2e) in
          let e = Workload.r32 (Float.exp2 e) in
          let leaf = r32 (s *. e) in
          Float.max (r32 (leaf -. x)) 0.0
        end)
  in
  for lvl = steps downto 1 do
    for i = 0 to lvl - 1 do
      let vb = r32 (vals.(i + 1) *. pu) in
      vals.(i) <- r32 (r32 (r32 (vals.(i) *. pd) +. vb) *. df)
    done
  done;
  vals.(0)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let opts = 4 * scale in
  let sp = Api.malloc dev (4 * opts)
  and xp = Api.malloc dev (4 * opts)
  and outp = Api.malloc dev (4 * opts) in
  let ss = List.map (fun v -> Workload.r32 (25.0 +. (20.0 *. (v +. 0.5)))) (Workload.rand_f32s ~seed:111 opts) in
  let xs = List.map (fun v -> Workload.r32 (25.0 +. (20.0 *. (v +. 0.5)))) (Workload.rand_f32s ~seed:112 opts) in
  Api.write_f32s dev sp ss;
  Api.write_f32s dev xp xs;
  let expected = List.map2 reference ss xs in
  {
    Workload.args = [ Launch.Ptr sp; Launch.Ptr xp; Launch.Ptr outp ];
    grid = Launch.dim3 opts;
    block = Launch.dim3 (steps + 1);
    check = (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:1e-4 ~what:"price");
  }

let workload : Workload.t =
  {
    name = "binomial";
    paper_name = "BinomialOptions";
    category = Workload.Sync_heavy;
    src;
    kernel = "binomial";
    setup;
  }
