(** ScalarProd (CUDA SDK): batched dot products.  One CTA per vector pair;
    each thread strides through the pair accumulating privately, then a
    shared-memory tree combines the partials.  Memory-bound with frequent
    synchronization — the paper reports ≈1.0× for this class. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let block = 32
let veclen = 256

let src =
  Fmt.str
    {|
.entry scalarprod (.param .u64 ap, .param .u64 bp, .param .u64 cp, .param .u32 len)
{
  .reg .u32 %%tid, %%cta, %%i, %%len, %%base, %%idx, %%half;
  .reg .u64 %%pa, %%pb, %%pc, %%a, %%b, %%off, %%sa, %%sb;
  .reg .f32 %%x, %%y, %%acc, %%other;
  .reg .pred %%p, %%q;
  .shared .f32 partial[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%cta, %%ctaid.x;
  ld.param.u32 %%len, [len];
  ld.param.u64 %%pa, [ap];
  ld.param.u64 %%pb, [bp];
  mul.lo.u32 %%base, %%cta, %%len;

  mov.f32 %%acc, 0f00000000;
  mov.u32 %%i, %%tid;
ACC:
  setp.ge.u32 %%p, %%i, %%len;
  @@%%p bra REDUCE;
  add.u32 %%idx, %%base, %%i;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pa, %%off;
  add.u64 %%b, %%pb, %%off;
  ld.global.f32 %%x, [%%a];
  ld.global.f32 %%y, [%%b];
  fma.rn.f32 %%acc, %%x, %%y, %%acc;
  add.u32 %%i, %%i, %d;
  bra ACC;

REDUCE:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, partial;
  add.u64 %%sa, %%sa, %%off;
  st.shared.f32 [%%sa], %%acc;
  bar.sync 0;

  mov.u32 %%half, %d;
TREE:
  setp.ge.u32 %%p, %%tid, %%half;
  @@%%p bra SKIP;
  ld.shared.f32 %%acc, [%%sa];
  cvt.u64.u32 %%off, %%half;
  shl.b64 %%off, %%off, 2;
  add.u64 %%sb, %%sa, %%off;
  ld.shared.f32 %%other, [%%sb];
  add.f32 %%acc, %%acc, %%other;
  st.shared.f32 [%%sa], %%acc;
SKIP:
  bar.sync 0;
  shr.u32 %%half, %%half, 1;
  setp.gt.u32 %%q, %%half, 0;
  @@%%q bra TREE;

  setp.ne.u32 %%p, %%tid, 0;
  @@%%p bra DONE;
  ld.param.u64 %%pc, [cp];
  cvt.u64.u32 %%off, %%cta;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pc, %%off;
  mov.u64 %%sa, partial;
  ld.shared.f32 %%x, [%%sa];
  st.global.f32 [%%a], %%x;
DONE:
  exit;
}
|}
    block block (block / 2)

let reference a b =
  let r32 = Workload.r32 in
  (* per-thread strided accumulation, then the tree *)
  let partial = Array.make block 0.0 in
  for t = 0 to block - 1 do
    let i = ref t in
    while !i < veclen do
      partial.(t) <- r32 (r32 (a.(!i) *. b.(!i)) +. partial.(t));
      i := !i + block
    done
  done;
  let half = ref (block / 2) in
  while !half > 0 do
    for t = 0 to !half - 1 do
      partial.(t) <- r32 (partial.(t) +. partial.(t + !half))
    done;
    half := !half / 2
  done;
  partial.(0)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let pairs = 4 * scale in
  let n = pairs * veclen in
  let ap = Api.malloc dev (4 * n)
  and bp = Api.malloc dev (4 * n)
  and cp = Api.malloc dev (4 * pairs) in
  let xs = Array.of_list (Workload.rand_f32s ~seed:91 n) in
  let ys = Array.of_list (Workload.rand_f32s ~seed:92 n) in
  Api.write_f32s dev ap (Array.to_list xs);
  Api.write_f32s dev bp (Array.to_list ys);
  let expected =
    List.init pairs (fun p ->
        reference
          (Array.sub xs (p * veclen) veclen)
          (Array.sub ys (p * veclen) veclen))
  in
  {
    Workload.args = [ Launch.Ptr ap; Launch.Ptr bp; Launch.Ptr cp; Launch.I32 veclen ];
    grid = Launch.dim3 pairs;
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:cp ~expected ~tol:0.0 ~what:"dot");
  }

let workload : Workload.t =
  {
    name = "scalarprod";
    paper_name = "ScalarProd";
    category = Workload.Memory_bound;
    src;
    kernel = "scalarprod";
    setup;
  }
