(** Nbody (CUDA SDK): all-pairs gravitational accelerations.  One thread
    per body, an O(N) inner loop of fma/rsqrt work — compute-bound and
    fully convergent (the paper's Figure 9 shows it almost entirely inside
    the subkernel). *)

module Api = Vekt_runtime.Api
open Vekt_ptx

(* body layout: x, y, z, mass — 16 bytes *)
let src =
  {|
.entry nbody (.param .u64 bodies, .param .u64 accp, .param .u32 n)
{
  .reg .u32 %r1, %r2, %r3, %gid, %i, %n, %idx;
  .reg .u64 %pb, %pa, %a, %off;
  .reg .f32 %x, %y, %z, %bx, %by, %bz, %bm, %dx, %dy, %dz;
  .reg .f32 %r2v, %inv, %inv3, %s, %ax, %ay, %az;
  .reg .pred %p;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mad.lo.u32 %gid, %r2, %r3, %r1;
  ld.param.u32 %n, [n];
  ld.param.u64 %pb, [bodies];

  mul.lo.u32 %idx, %gid, 16;
  cvt.u64.u32 %off, %idx;
  add.u64 %a, %pb, %off;
  ld.global.f32 %x, [%a];
  ld.global.f32 %y, [%a+4];
  ld.global.f32 %z, [%a+8];

  mov.f32 %ax, 0f00000000;
  mov.f32 %ay, 0f00000000;
  mov.f32 %az, 0f00000000;
  mov.u32 %i, 0;
LOOP:
  setp.ge.u32 %p, %i, %n;
  @%p bra DONE;
  mul.lo.u32 %idx, %i, 16;
  cvt.u64.u32 %off, %idx;
  add.u64 %a, %pb, %off;
  ld.global.f32 %bx, [%a];
  ld.global.f32 %by, [%a+4];
  ld.global.f32 %bz, [%a+8];
  ld.global.f32 %bm, [%a+12];
  sub.f32 %dx, %bx, %x;
  sub.f32 %dy, %by, %y;
  sub.f32 %dz, %bz, %z;
  mul.f32 %r2v, %dx, %dx;
  fma.rn.f32 %r2v, %dy, %dy, %r2v;
  fma.rn.f32 %r2v, %dz, %dz, %r2v;
  add.f32 %r2v, %r2v, 0f3a83126f;     // softening^2
  rsqrt.approx.f32 %inv, %r2v;
  mul.f32 %inv3, %inv, %inv;
  mul.f32 %inv3, %inv3, %inv;
  mul.f32 %s, %bm, %inv3;
  fma.rn.f32 %ax, %s, %dx, %ax;
  fma.rn.f32 %ay, %s, %dy, %ay;
  fma.rn.f32 %az, %s, %dz, %az;
  add.u32 %i, %i, 1;
  bra LOOP;

DONE:
  mul.lo.u32 %idx, %gid, 12;
  cvt.u64.u32 %off, %idx;
  ld.param.u64 %pa, [accp];
  add.u64 %a, %pa, %off;
  st.global.f32 [%a], %ax;
  st.global.f32 [%a+4], %ay;
  st.global.f32 [%a+8], %az;
  exit;
}
|}

let reference bodies =
  let n = Array.length bodies in
  Array.init n (fun i ->
      let x, y, z, _ = bodies.(i) in
      let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
      for j = 0 to n - 1 do
        let bx, by, bz, bm = bodies.(j) in
        let dx = bx -. x and dy = by -. y and dz = bz -. z in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 0.001 in
        let inv = 1.0 /. sqrt r2 in
        let s = bm *. inv *. inv *. inv in
        ax := !ax +. (s *. dx);
        ay := !ay +. (s *. dy);
        az := !az +. (s *. dz)
      done;
      (!ax, !ay, !az))

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 128 * scale in
  let pb = Api.malloc dev (16 * n) and pa = Api.malloc dev (12 * n) in
  let xs = Array.of_list (Workload.rand_f32s ~seed:71 n) in
  let ys = Array.of_list (Workload.rand_f32s ~seed:72 n) in
  let zs = Array.of_list (Workload.rand_f32s ~seed:73 n) in
  let ms = Array.of_list (List.map (fun v -> v +. 0.6) (Workload.rand_f32s ~seed:74 n)) in
  let bodies = Array.init n (fun i -> (xs.(i), ys.(i), zs.(i), ms.(i))) in
  Array.iteri
    (fun i (x, y, z, m) -> Api.write_f32s dev (pb + (16 * i)) [ x; y; z; m ])
    bodies;
  let expected =
    reference bodies |> Array.to_list
    |> List.concat_map (fun (ax, ay, az) -> [ ax; ay; az ])
  in
  let block = 64 in
  {
    Workload.args = [ Launch.Ptr pb; Launch.Ptr pa; Launch.I32 n ];
    grid = Launch.dim3 (n / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_f32s dev ~at:pa ~expected ~tol:5e-3 ~what:"acc");
  }

let workload : Workload.t =
  {
    name = "nbody";
    paper_name = "Nbody";
    category = Workload.Uniform_compute;
    src;
    kernel = "nbody";
    setup;
  }
