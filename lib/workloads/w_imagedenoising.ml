(** ImageDenoising (CUDA SDK), NLM-lite: each pixel is replaced by a
    similarity-weighted average of its 5×5 neighbourhood, weights from
    [ex2] of the colour distance.  Compute-bound with nested uniform loops
    and boundary divergence. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let radius = 2

let src =
  Fmt.str
    {|
.entry denoise (.param .u64 inp, .param .u64 outp, .param .u32 width, .param .u32 height)
{
  .reg .u32 %%tx, %%bx, %%nt, %%ty, %%by, %%x, %%y, %%w, %%h, %%dx, %%dy, %%idx;
  .reg .s32 %%nx, %%ny;
  .reg .u64 %%pin, %%pout, %%a, %%off;
  .reg .f32 %%center, %%v, %%d, %%wgt, %%acc, %%norm;
  .reg .pred %%p;

  mov.u32 %%tx, %%tid.x;
  mov.u32 %%bx, %%ctaid.x;
  mov.u32 %%nt, %%ntid.x;
  mad.lo.u32 %%x, %%bx, %%nt, %%tx;
  mov.u32 %%ty, %%tid.y;
  mov.u32 %%by, %%ctaid.y;
  mov.u32 %%nt, %%ntid.y;
  mad.lo.u32 %%y, %%by, %%nt, %%ty;
  ld.param.u32 %%w, [width];
  ld.param.u32 %%h, [height];
  setp.ge.u32 %%p, %%x, %%w;
  @@%%p bra DONE;
  setp.ge.u32 %%p, %%y, %%h;
  @@%%p bra DONE;

  ld.param.u64 %%pin, [inp];
  mad.lo.u32 %%idx, %%y, %%w, %%x;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%center, [%%a];

  mov.f32 %%acc, 0f00000000;
  mov.f32 %%norm, 0f00000000;
  mov.u32 %%dy, 0;
ROW:
  setp.gt.u32 %%p, %%dy, %d;
  @@%%p bra STORE;
  mov.u32 %%dx, 0;
COL:
  setp.gt.u32 %%p, %%dx, %d;
  @@%%p bra ROW_NEXT;
  // neighbour coordinates, skipped when off the image
  add.u32 %%idx, %%x, %%dx;
  sub.s32 %%nx, %%idx, %d;
  add.u32 %%idx, %%y, %%dy;
  sub.s32 %%ny, %%idx, %d;
  setp.lt.s32 %%p, %%nx, 0;
  @@%%p bra COL_NEXT;
  setp.ge.s32 %%p, %%nx, %%w;
  @@%%p bra COL_NEXT;
  setp.lt.s32 %%p, %%ny, 0;
  @@%%p bra COL_NEXT;
  setp.ge.s32 %%p, %%ny, %%h;
  @@%%p bra COL_NEXT;

  mad.lo.u32 %%idx, %%ny, %%w, %%nx;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.f32 %%v, [%%a];
  sub.f32 %%d, %%v, %%center;
  mul.f32 %%d, %%d, %%d;
  mul.f32 %%d, %%d, 0fc1200000;   // * -10
  mul.f32 %%d, %%d, 0f3fb8aa3b;   // * log2(e)
  ex2.approx.f32 %%wgt, %%d;
  fma.rn.f32 %%acc, %%wgt, %%v, %%acc;
  add.f32 %%norm, %%norm, %%wgt;

COL_NEXT:
  add.u32 %%dx, %%dx, 1;
  bra COL;
ROW_NEXT:
  add.u32 %%dy, %%dy, 1;
  bra ROW;

STORE:
  div.f32 %%acc, %%acc, %%norm;
  mad.lo.u32 %%idx, %%y, %%w, %%x;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pout, [outp];
  add.u64 %%a, %%pout, %%off;
  st.global.f32 [%%a], %%acc;
DONE:
  exit;
}
|}
    (2 * radius) (2 * radius) radius radius

let reference img ~w ~h =
  List.init (w * h) (fun i ->
      let x = i mod w and y = i / w in
      let center = img.((y * w) + x) in
      let acc = ref 0.0 and norm = ref 0.0 in
      for dy = -radius to radius do
        for dx = -radius to radius do
          let nx = x + dx and ny = y + dy in
          if nx >= 0 && nx < w && ny >= 0 && ny < h then begin
            let v = img.((ny * w) + nx) in
            let d = v -. center in
            let wgt = Float.exp2 (d *. d *. -10.0 *. 1.4426950408889634) in
            acc := !acc +. (wgt *. v);
            norm := !norm +. wgt
          end
        done
      done;
      !acc /. !norm)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let w = 16 * scale and h = 16 in
  let inp = Api.malloc dev (4 * w * h) and outp = Api.malloc dev (4 * w * h) in
  let img = Array.of_list (Workload.rand_f32s ~seed:191 (w * h)) in
  Api.write_f32s dev inp (Array.to_list img);
  let expected = reference img ~w ~h in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp; Launch.I32 w; Launch.I32 h ];
    grid = Launch.dim3 (w / 8) ~y:(h / 8);
    block = Launch.dim3 8 ~y:8;
    check =
      (fun dev -> Workload.check_f32s dev ~at:outp ~expected ~tol:1e-3 ~what:"denoise");
  }

let workload : Workload.t =
  {
    name = "imagedenoising";
    paper_name = "ImageDenoising";
    category = Workload.Uniform_compute;
    src;
    kernel = "denoise";
    setup;
  }
