(** Bitonic sort (CUDA SDK): sorts one shared-memory array per CTA with
    the classic k/j compare-exchange network — a barrier per stage and a
    tid-dependent partner/direction test, i.e. structured divergence. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let n_elems = 64

let src =
  Fmt.str
    {|
.entry bitonic (.param .u64 inp, .param .u64 outp)
{
  .reg .u32 %%tid, %%cta, %%gbase, %%k, %%j, %%ixj, %%dir, %%vi, %%vj, %%lo, %%hi, %%idx;
  .reg .u64 %%pin, %%pout, %%a, %%off, %%sa, %%sb;
  .reg .pred %%p, %%q, %%asc;
  .shared .s32 buf[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%cta, %%ctaid.x;
  mul.lo.u32 %%gbase, %%cta, %d;

  // load
  add.u32 %%idx, %%gbase, %%tid;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pin, [inp];
  add.u64 %%a, %%pin, %%off;
  ld.global.s32 %%vi, [%%a];
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, buf;
  add.u64 %%sa, %%sa, %%off;
  st.shared.s32 [%%sa], %%vi;
  bar.sync 0;

  mov.u32 %%k, 2;
K_LOOP:
  setp.gt.u32 %%p, %%k, %d;
  @@%%p bra SORTED;
  shr.u32 %%j, %%k, 1;
J_LOOP:
  setp.eq.u32 %%p, %%j, 0;
  @@%%p bra J_DONE;

  xor.b32 %%ixj, %%tid, %%j;
  setp.le.u32 %%p, %%ixj, %%tid;
  @@%%p bra NOSWAP;         // only the lower index of each pair works

  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, buf;
  add.u64 %%sa, %%sa, %%off;
  ld.shared.s32 %%vi, [%%sa];
  cvt.u64.u32 %%off, %%ixj;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sb, buf;
  add.u64 %%sb, %%sb, %%off;
  ld.shared.s32 %%vj, [%%sb];

  // ascending iff (tid & k) == 0
  and.b32 %%dir, %%tid, %%k;
  setp.eq.u32 %%asc, %%dir, 0;
  min.s32 %%lo, %%vi, %%vj;
  max.s32 %%hi, %%vi, %%vj;
  selp.s32 %%vi, %%lo, %%hi, %%asc;
  selp.s32 %%vj, %%hi, %%lo, %%asc;
  st.shared.s32 [%%sa], %%vi;
  st.shared.s32 [%%sb], %%vj;

NOSWAP:
  bar.sync 0;
  shr.u32 %%j, %%j, 1;
  bra J_LOOP;
J_DONE:
  shl.b32 %%k, %%k, 1;
  bra K_LOOP;

SORTED:
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, buf;
  add.u64 %%sa, %%sa, %%off;
  ld.shared.s32 %%vi, [%%sa];
  add.u32 %%idx, %%gbase, %%tid;
  cvt.u64.u32 %%off, %%idx;
  shl.b64 %%off, %%off, 2;
  ld.param.u64 %%pout, [outp];
  add.u64 %%a, %%pout, %%off;
  st.global.s32 [%%a], %%vi;
  exit;
}
|}
    n_elems n_elems n_elems

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let ncta = 2 * scale in
  let n = ncta * n_elems in
  let inp = Api.malloc dev (4 * n) and outp = Api.malloc dev (4 * n) in
  let data = Workload.rand_i32s ~seed:101 ~bound:10_000 n in
  Api.write_i32s dev inp data;
  let expected =
    List.concat
      (List.init ncta (fun c ->
           List.sort compare (List.filteri (fun i _ -> i / n_elems = c) data)))
  in
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr outp ];
    grid = Launch.dim3 ncta;
    block = Launch.dim3 n_elems;
    check = (fun dev -> Workload.check_i32s dev ~at:outp ~expected ~what:"sorted");
  }

let workload : Workload.t =
  {
    name = "bitonic";
    paper_name = "BitonicSort";
    category = Workload.Divergent;
    src;
    kernel = "bitonic";
    setup;
  }
