(** SobolQRNG (CUDA SDK): quasi-random sequence generation from direction
    vectors in the constant bank.  The inner loop XORs a direction vector
    per set bit of the gray-coded index — a data-dependent branch per bit,
    but neighbouring indices mostly agree (the paper's ≈1.0× class). *)

module Api = Vekt_runtime.Api
open Vekt_ptx

(* Direction vectors for one dimension: v[j] = 1 << (31 - j). *)
let directions = List.init 32 (fun j -> Int64.shift_left 1L (31 - j))

let src =
  Fmt.str
    {|
.const .u32 dirs[32] = { %s };

.entry sobol (.param .u64 outp, .param .u32 n)
{
  .reg .u32 %%r1, %%r2, %%r3, %%gid, %%n, %%gray, %%x, %%j, %%bit;
  .reg .u64 %%po, %%a, %%off, %%ca;
  .reg .pred %%p, %%q;

  mov.u32 %%r1, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%r1;
  ld.param.u32 %%n, [n];
  setp.ge.u32 %%p, %%gid, %%n;
  @@%%p bra DONE;

  // gray code of the index
  shr.u32 %%gray, %%gid, 1;
  xor.b32 %%gray, %%gray, %%gid;

  mov.u32 %%x, 0;
  mov.u32 %%j, 0;
BIT:
  setp.ge.u32 %%p, %%j, 32;
  @@%%p bra STORE;
  shr.u32 %%bit, %%gray, %%j;
  and.b32 %%bit, %%bit, 1;
  setp.eq.u32 %%q, %%bit, 0;
  @@%%q bra NEXT;
  cvt.u64.u32 %%ca, %%j;
  shl.b64 %%ca, %%ca, 2;
  ld.const.u32 %%bit, [%%ca];
  xor.b32 %%x, %%x, %%bit;
NEXT:
  add.u32 %%j, %%j, 1;
  bra BIT;

STORE:
  ld.param.u64 %%po, [outp];
  cvt.u64.u32 %%off, %%gid;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%po, %%off;
  st.global.u32 [%%a], %%x;
DONE:
  exit;
}
|}
    (String.concat ", " (List.map Int64.to_string directions))

let reference gid =
  let gray = gid lxor (gid lsr 1) in
  let x = ref 0 in
  List.iteri
    (fun j v -> if gray land (1 lsl j) <> 0 then x := !x lxor Int64.to_int v)
    directions;
  if !x land 0x80000000 <> 0 then !x - (1 lsl 32) else !x

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 500 * scale in
  let outp = Api.malloc dev (4 * n) in
  let expected = List.init n reference in
  let block = 128 in
  {
    Workload.args = [ Launch.Ptr outp; Launch.I32 n ];
    grid = Launch.dim3 ((n + block - 1) / block);
    block = Launch.dim3 block;
    check = (fun dev -> Workload.check_i32s dev ~at:outp ~expected ~what:"sobol");
  }

let workload : Workload.t =
  {
    name = "sobolqrng";
    paper_name = "SobolQRNG";
    category = Workload.Memory_bound;
    src;
    kernel = "sobol";
    setup;
  }
