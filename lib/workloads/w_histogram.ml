(** Histogram64 (CUDA SDK): 64-bin histogram with shared-memory atomics
    per CTA and a global atomic merge — data-dependent bin selection. *)

module Api = Vekt_runtime.Api
open Vekt_ptx

let bins = 64
let block = 64

let src =
  Fmt.str
    {|
.entry histogram (.param .u64 inp, .param .u64 histp, .param .u32 n)
{
  .reg .u32 %%tid, %%gid, %%r2, %%r3, %%v, %%bin, %%old, %%cnt, %%stride, %%i;
  .reg .u64 %%pin, %%ph, %%a, %%off, %%sa;
  .reg .pred %%p;
  .shared .u32 hist[%d];

  mov.u32 %%tid, %%tid.x;
  mov.u32 %%r2, %%ctaid.x;
  mov.u32 %%r3, %%ntid.x;
  mad.lo.u32 %%gid, %%r2, %%r3, %%tid;
  ld.param.u32 %%cnt, [n];

  // zero this CTA's bins (one per thread; block == bins)
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, hist;
  add.u64 %%sa, %%sa, %%off;
  st.shared.u32 [%%sa], 0;
  bar.sync 0;

  // grid-stride loop over the input
  mul.lo.u32 %%stride, %%r3, %%nctaid.x;
  mov.u32 %%i, %%gid;
LOOP:
  setp.ge.u32 %%p, %%i, %%cnt;
  @@%%p bra MERGE;
  ld.param.u64 %%pin, [inp];
  cvt.u64.u32 %%off, %%i;
  shl.b64 %%off, %%off, 2;
  add.u64 %%a, %%pin, %%off;
  ld.global.u32 %%v, [%%a];
  and.b32 %%bin, %%v, %d;
  cvt.u64.u32 %%off, %%bin;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, hist;
  add.u64 %%sa, %%sa, %%off;
  atom.shared.add.u32 %%old, [%%sa], 1;
  add.u32 %%i, %%i, %%stride;
  bra LOOP;

MERGE:
  bar.sync 0;
  cvt.u64.u32 %%off, %%tid;
  shl.b64 %%off, %%off, 2;
  mov.u64 %%sa, hist;
  add.u64 %%sa, %%sa, %%off;
  ld.shared.u32 %%v, [%%sa];
  ld.param.u64 %%ph, [histp];
  add.u64 %%a, %%ph, %%off;
  atom.global.add.u32 %%old, [%%a], %%v;
  exit;
}
|}
    bins (bins - 1)

let setup ?(scale = 1) (dev : Api.device) : Workload.instance =
  let n = 600 * scale in
  let inp = Api.malloc dev (4 * n) and histp = Api.malloc dev (4 * bins) in
  let data = Workload.rand_i32s ~seed:51 ~bound:1_000_000 n in
  Api.write_i32s dev inp data;
  let expected = Array.make bins 0 in
  List.iter (fun v -> expected.(v land (bins - 1)) <- expected.(v land (bins - 1)) + 1) data;
  {
    Workload.args = [ Launch.Ptr inp; Launch.Ptr histp; Launch.I32 n ];
    grid = Launch.dim3 4;
    block = Launch.dim3 block;
    check =
      (fun dev ->
        Workload.check_i32s dev ~at:histp ~expected:(Array.to_list expected) ~what:"bin");
  }

let workload : Workload.t =
  {
    name = "histogram";
    paper_name = "Histogram64";
    category = Workload.Divergent;
    src;
    kernel = "histogram";
    setup;
  }
