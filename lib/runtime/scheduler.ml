(** Warp-formation scheduling policies (paper §5.2 as one point in a
    policy space; DARM shows divergence-aware formation choices are a
    live design axis).

    The execution manager used to hardwire round-robin pick + greedy
    same-entry packing inside [run_cta].  This module makes the policy a
    first-class value over a thread-context {!pool}: [select] picks the
    thread to schedule next, [form] packs a warp around it.  The driver
    in {!Exec_manager} is policy-agnostic; any policy that only selects
    [Ready] threads and only packs [Ready] threads parked at the same
    entry point preserves results bit-exactly (barrier semantics release
    the parked set only when [select] returns [None]).

    Three built-in policies:

    - {b dynamic}: round-robin pick, greedy same-entry packing scanning
      the whole pool with wraparound (the paper's dynamic warp
      formation).
    - {b static}: round-robin pick, packing only consecutive linear
      thread indices of one [tid.y]/[tid.z] row.  The only policy whose
      warps satisfy the consecutive-tid assumption of thread-invariant
      elimination, so {!Vekt_transform.Vectorize.Static_tie} code
      requires it (enforced by {!validate}).
    - {b barrier-aware}: while any CTA-mate is parked at a barrier, pick
      the ready thread whose same-entry cohort is largest so the
      remaining runnable threads drain to the barrier in the fewest,
      fullest warps; with nobody parked it reduces to round-robin.
      Packing is dynamic-greedy. *)

module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize

type tstate = Ready | Blocked | Done

let tstate_name = function Ready -> "ready" | Blocked -> "blocked" | Done -> "done"

type thr = {
  info : Interp.thread_info;
  linear : int;  (** linear thread index within the CTA *)
  row : int;  (** tid.y/tid.z row identifier (static warps never cross rows) *)
  mutable state : tstate;
}

(** One CTA's thread contexts plus the round-robin cursor the driver
    advances after each dispatch. *)
type pool = { threads : thr array; n : int; mutable cursor : int }

(** A formed warp: member indices in scan order, the member count the
    scan already tracked (so the dispatch path never recounts), and the
    number of candidate contexts examined (charged to the EM cycle
    model). *)
type warp = { members : int list; count : int; scanned : int }

type t = {
  name : string;
  consecutive : bool;
      (** warps are guaranteed to be consecutive linear tids of one row
          (the contract {!Vekt_transform.Vectorize.Static_tie} code needs) *)
  select : pool -> int option;
  form : pool -> start:int -> want:int -> warp;
}

type kind = Dynamic | Static | Barrier_aware

(* ---- selection ---- *)

let round_robin (p : pool) : int option =
  let rec go tried i =
    if tried >= p.n then None
    else if p.threads.(i).state = Ready then Some i
    else go (tried + 1) ((i + 1) mod p.n)
  in
  go 0 p.cursor

(* With part of the CTA parked at a barrier, prefer the ready thread
   whose entry-point cohort is largest (ties: first in round-robin order
   from the cursor), so the barrier opens in as few dispatches as
   possible. *)
let barrier_aware_select (p : pool) : int option =
  let any_blocked =
    Array.exists (fun (t : thr) -> t.state = Blocked) p.threads
  in
  if not any_blocked then round_robin p
  else begin
    let cohort : (int, int) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun (t : thr) ->
        if t.state = Ready then
          let e = t.info.Interp.resume_point in
          Hashtbl.replace cohort e
            (Option.value (Hashtbl.find_opt cohort e) ~default:0 + 1))
      p.threads;
    let best = ref None in
    for tried = 0 to p.n - 1 do
      let i = (p.cursor + tried) mod p.n in
      let t = p.threads.(i) in
      if t.state = Ready then begin
        let c =
          Option.value
            (Hashtbl.find_opt cohort t.info.Interp.resume_point)
            ~default:0
        in
        match !best with
        | Some (_, bc) when bc >= c -> ()
        | _ -> best := Some (i, c)
      end
    done;
    Option.map fst !best
  end

(* ---- formation ---- *)

(* The one scan loop behind every packing strategy.  [consecutive]
   restricts members to threads adjacent to [start] (first mismatch ends
   the warp, and only accepted candidates count as scanned — the static
   scan stops at the mismatch rather than examining past it);
   otherwise the scan wraps around the whole pool, skipping mismatches
   and counting every context examined. *)
let scan (p : pool) ~start ~want ~consecutive ~same_row : warp =
  let t0 = p.threads.(start) in
  let entry = t0.info.Interp.resume_point in
  let ok (t : thr) =
    t.state = Ready
    && t.info.Interp.resume_point = entry
    && ((not same_row) || t.row = t0.row)
  in
  let members = ref [ start ] in
  let count = ref 1 in
  let scanned = ref 0 in
  if consecutive then begin
    let i = ref (start + 1) in
    while !count < want && !i < p.n && ok p.threads.(!i) do
      incr scanned;
      members := !i :: !members;
      incr count;
      incr i
    done
  end
  else begin
    let i = ref ((start + 1) mod p.n) in
    while !count < want && !i <> start do
      incr scanned;
      if ok p.threads.(!i) then begin
        members := !i :: !members;
        incr count
      end;
      i := (!i + 1) mod p.n
    done
  end;
  { members = List.rev !members; count = !count; scanned = !scanned }

(* ---- built-in policies ---- *)

let dynamic =
  {
    name = "dynamic";
    consecutive = false;
    select = round_robin;
    form = (fun p ~start ~want -> scan p ~start ~want ~consecutive:false ~same_row:false);
  }

let static_policy =
  {
    name = "static";
    consecutive = true;
    select = round_robin;
    form = (fun p ~start ~want -> scan p ~start ~want ~consecutive:true ~same_row:true);
  }

let barrier_aware =
  {
    name = "barrier-aware";
    consecutive = false;
    select = barrier_aware_select;
    form = (fun p ~start ~want -> scan p ~start ~want ~consecutive:false ~same_row:false);
  }

let of_kind = function
  | Dynamic -> dynamic
  | Static -> static_policy
  | Barrier_aware -> barrier_aware

let kind_name = function
  | Dynamic -> "dynamic"
  | Static -> "static"
  | Barrier_aware -> "barrier-aware"

let kind_of_string = function
  | "dynamic" -> Some Dynamic
  | "static" -> Some Static
  | "barrier" | "barrier-aware" -> Some Barrier_aware
  | _ -> None

(** The policy matching the paper's behaviour for a vectorization mode:
    dynamic formation for dynamically-vectorized code, consecutive-tid
    formation for TIE code. *)
let default_kind_for (mode : Vectorize.mode) : kind =
  match mode with Vectorize.Dynamic -> Dynamic | Vectorize.Static_tie -> Static

(** Thread-invariant elimination bakes "lane [i] = lane 0's tid + [i]"
    into the code, so [Static_tie] specializations are only correct
    under policies whose warps are consecutive-tid. *)
let validate ~(mode : Vectorize.mode) (p : t) : unit =
  match mode with
  | Vectorize.Static_tie when not p.consecutive ->
      invalid_arg
        (Fmt.str
           "scheduler policy %s cannot run Static_tie-vectorized code (TIE \
            assumes consecutive-tid warps; use the static policy)"
           p.name)
  | _ -> ()
