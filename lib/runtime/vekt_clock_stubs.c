/* Monotonic clock stub: clock_gettime(CLOCK_MONOTONIC) as int64
 * nanoseconds.  Used instead of Unix.gettimeofday for runtime
 * self-measurement so compile-time accounting can never observe the
 * wall clock stepping backwards (see clock.ml). */

#include <stdint.h>
#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

int64_t vekt_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
#endif
  {
    /* last resort: realtime clock (still better than failing) */
    clock_gettime(CLOCK_REALTIME, &ts);
  }
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value vekt_clock_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(vekt_clock_monotonic_ns(unit));
}
