(** CUDA-Runtime-style host API (paper §3: "the proposed compilation model
    is wrapped by an API front-end for heterogeneous computing").

    Typical use:
    {[
      let dev = Api.create_device () in
      let m = Api.load_module dev ptx_source in
      let a = Api.malloc dev (4 * n) in
      Api.write_f32s dev a data;
      let r = Api.launch dev m ~kernel:"vecadd" ~grid:(Launch.dim3 g)
                ~block:(Launch.dim3 b) ~args:[ Ptr a; I32 n ] in
      Fmt.pr "%.2f GFLOP/s@." r.Api.gflops
    ]} *)

module Machine = Vekt_vm.Machine
module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx

exception Api_error of string

type device = {
  machine : Machine.t;
  workers : int;
  global : Mem.t;
  mutable brk : int;  (** bump-allocator watermark *)
  em_costs : Exec_manager.costs;
}

(** Launch-configuration knobs, fixed when a module is loaded. *)
type config = {
  mode : Vectorize.mode;
  widths : int list;
  optimize : bool;
  affine : bool;
      (** coalesce provably-contiguous/uniform memory accesses (the
          paper's §4 future-work optimization) *)
  specialize_args : bool;
      (** bake concrete kernel-argument values into the code (the paper's
          §5.1 future-work specialization parameter) *)
  verify : bool;
  sched : Scheduler.kind option;
      (** warp-formation policy; [None] follows the vectorization mode
          (dynamic mode → dynamic formation, TIE → static formation) *)
  pipeline : Vekt_transform.Passes.pipeline;
      (** optimization pass pipeline for (tier-1) specializations *)
  tiering : Translation_cache.tiering;
      (** eager full compilation, or tier-0-then-promote-on-hotness *)
  cache_capacity : int option;
      (** bound on live specializations per kernel (LRU eviction) *)
}

let default_config =
  { mode = Vectorize.Dynamic; widths = Translation_cache.default_widths;
    optimize = true; affine = false; specialize_args = false; verify = false;
    sched = None; pipeline = Vekt_transform.Passes.default_pipeline;
    tiering = Translation_cache.Eager; cache_capacity = None }

(** The scheduling policy a config resolves to. *)
let sched_policy (c : config) : Scheduler.t =
  Scheduler.of_kind
    (Option.value c.sched ~default:(Scheduler.default_kind_for c.mode))

type modul = {
  ast : Ast.modul;
  config : config;
  device : device;
  consts : Mem.t;
  caches : (string, Translation_cache.t) Hashtbl.t;
}

let create_device ?(machine = Machine.sse4) ?workers ?(global_bytes = 64 * 1024 * 1024)
    ?(em_costs = Exec_manager.default_costs) () : device =
  {
    machine;
    workers = Option.value workers ~default:machine.Machine.cores;
    global = Mem.create ~name:"global" global_bytes;
    brk = 64 (* keep address 0 unallocated to catch null-ish bugs *);
    em_costs;
  }

(** Allocate [bytes] of device global memory (16-byte aligned). *)
let malloc (d : device) bytes : int =
  if bytes < 0 then raise (Api_error "malloc: negative size");
  let base = (d.brk + 15) / 16 * 16 in
  if base + bytes > Mem.size d.global then raise (Api_error "malloc: out of device memory");
  d.brk <- base + bytes;
  base

let write_f32s d addr xs = Mem.write_f32s d.global ~at:addr xs
let write_i32s d addr xs = Mem.write_i32s d.global ~at:addr xs
let read_f32s d addr n = Mem.read_f32s d.global ~at:addr n
let read_i32s d addr n = Mem.read_i32s d.global ~at:addr n

(** Parse, type-check and register a PTX module.  Kernels are analyzed and
    translated lazily on first launch (the translation cache is shared by
    all launches of this module). *)
let load_module ?(config = default_config) (d : device) (src : string) : modul =
  let ast =
    try Parser.parse_module src with
    | Parser.Error (msg, line) -> raise (Api_error (Fmt.str "parse error:%d: %s" line msg))
    | Lexer.Error (msg, line) -> raise (Api_error (Fmt.str "lex error:%d: %s" line msg))
  in
  (match Typecheck.check_module ast with
  | [] -> ()
  | e :: _ -> raise (Api_error (Fmt.str "type error: %a" Typecheck.pp_error e)));
  (* reject incompatible policy × vectorization combinations up front *)
  (try Scheduler.validate ~mode:config.mode (sched_policy config)
   with Invalid_argument e -> raise (Api_error e));
  let consts, _ = Emulator.build_consts ast in
  { ast; config; device = d; consts; caches = Hashtbl.create 4 }

let kernel_cache (m : modul) ~kernel : Translation_cache.t =
  match Hashtbl.find_opt m.caches kernel with
  | Some c -> c
  | None ->
      let c =
        Translation_cache.prepare ~mode:m.config.mode ~affine:m.config.affine
          ~specialize_args:m.config.specialize_args ~machine:m.device.machine
          ~widths:m.config.widths ~optimize:m.config.optimize
          ~pipeline:m.config.pipeline ~tiering:m.config.tiering
          ?capacity:m.config.cache_capacity ~verify:m.config.verify m.ast
          ~kernel
      in
      Hashtbl.replace m.caches kernel c;
      c

type report = {
  stats : Stats.t;
  cycles : float;  (** wall cycles: max over parallel workers *)
  time_ms : float;
  gflops : float;
  avg_warp_size : float;
}

let launch ?fuel ?(sink = Vekt_obs.Sink.noop)
    ?(profile : Vekt_obs.Divergence.t option) (m : modul) ~kernel
    ~(grid : Launch.dim3) ~(block : Launch.dim3) ~(args : Launch.arg list) :
    report =
  let k =
    match Ast.find_kernel m.ast kernel with
    | Some k -> k
    | None -> raise (Api_error (Fmt.str "no kernel named %s" kernel))
  in
  let cache = kernel_cache m ~kernel in
  let params = Launch.param_block k args in
  let stats =
    Exec_manager.launch_kernel ~costs:m.device.em_costs ?fuel ~workers:m.device.workers
      ~sink ?profile ~sched:(sched_policy m.config) cache ~grid ~block
      ~global:m.device.global ~params ~consts:m.consts
  in
  let cycles = Float.max stats.Stats.wall_cycles 1.0 in
  let time_s = cycles /. (m.device.machine.Machine.clock_ghz *. 1e9) in
  let flops = float_of_int stats.Stats.counters.Interp.flops in
  {
    stats;
    cycles;
    time_ms = time_s *. 1e3;
    gflops = (flops /. time_s) /. 1e9;
    avg_warp_size = Stats.average_warp_size stats;
  }

(** Export a launch report plus the kernel's JIT-cache state (hit/miss
    rates, per-specialization compile cost) into one metrics registry —
    the machine-readable form behind [vektc run --metrics]. *)
let metrics (m : modul) ~kernel (r : report) : Vekt_obs.Metrics.t =
  let reg = Stats.to_metrics r.stats in
  let module M = Vekt_obs.Metrics in
  M.set (M.gauge reg "launch.time_ms") r.time_ms;
  M.set (M.gauge reg "launch.gflops") r.gflops;
  (match Hashtbl.find_opt m.caches kernel with
  | Some c -> Translation_cache.metrics_into c reg
  | None -> ());
  reg

(** Run the same launch through the reference PTX emulator (the oracle) on
    a copy of device memory; returns the resulting global memory for
    comparison with the vectorized pipeline's. *)
let launch_reference (m : modul) ~kernel ~grid ~block ~(args : Launch.arg list) :
    Mem.t =
  let global = Mem.copy m.device.global in
  ignore (Emulator.run m.ast ~kernel ~args ~global ~grid ~block);
  global
